// Wall-clock self-measurement of the sweep engine and simulator hot
// paths. This is the repo's perf trajectory: every run appends hard
// numbers to BENCH_sweep.json, so a future change that regresses the
// simulator's host-side speed (or the sweep engine's scaling) shows up
// as a diff against the committed baseline.
//
// Two kinds of measurements:
//  * sweeps  — miniature fig04/fig05/fig16-style grids run twice, once
//              with jobs=1 (serial baseline) and once with the requested
//              job count. Reports both wall times, the speedup, and
//              whether the two result vectors were bit-identical (the
//              sweep engine's core guarantee).
//  * hot paths — single simulations that stress the optimized inner
//              loops: sequential loads (SparseImage page cache),
//              single-thread runs (scheduler fast path + whole-access
//              steps), and a multi-MB flush-after write (per-step
//              dispatch elimination).
//
// Usage: bench_timing [--jobs N] [--out FILE]   (default FILE:
// BENCH_sweep.json in the working directory).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "lattester/runner.h"
#include "sweep/sweep.h"
#include "telemetry/session.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Cfg {
  hw::Device device = hw::Device::kXp;
  bool interleaved = true;
  lat::Op op = lat::Op::kLoad;
  lat::Pattern pattern = lat::Pattern::kSeq;
  std::size_t access = 256;
  std::size_t flush_every = 64;
  unsigned threads = 1;
  unsigned dimms_per_thread = 0;
  sim::Time duration = sim::ms(1);
};

lat::Result run_cfg_impl(const Cfg& c, bool telemetry,
                         std::string* summary) {
  hw::Platform platform;
  std::unique_ptr<telemetry::Session> tel;
  if (telemetry) tel = std::make_unique<telemetry::Session>(platform);
  hw::NamespaceOptions o;
  o.device = c.device;
  o.interleaved = c.interleaved;
  o.size = 8ull << 30;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);
  lat::WorkloadSpec spec;
  spec.op = c.op;
  spec.pattern = c.pattern;
  spec.access_size = c.access;
  spec.flush_every = c.flush_every;
  spec.threads = c.threads;
  spec.dimms_per_thread = c.dimms_per_thread;
  spec.region_size = o.size;
  spec.duration = c.duration;
  const lat::Result r = lat::run(platform, ns, spec);
  if (tel != nullptr && summary != nullptr) {
    tel->finish();
    *summary = tel->summary_json();
  }
  return r;
}

lat::Result run_cfg(const Cfg& c) { return run_cfg_impl(c, false, nullptr); }

bool results_equal(const std::vector<lat::Result>& a,
                   const std::vector<lat::Result>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].ops != b[i].ops || a[i].bytes != b[i].bytes ||
        a[i].bandwidth_gbps != b[i].bandwidth_gbps ||
        a[i].ewr != b[i].ewr ||
        a[i].latency.count() != b[i].latency.count() ||
        a[i].latency.mean() != b[i].latency.mean())
      return false;
  }
  return true;
}

struct SweepEntry {
  std::string name;
  std::size_t points;
  double serial_s;
  double parallel_s;
  bool identical;
};

SweepEntry measure_sweep(const char* name, const sweep::Grid<Cfg>& grid,
                         sweep::Pool& serial, sweep::Pool& parallel) {
  benchutil::row("%-14s %3zu points ...", name, grid.size());
  Clock::time_point t0 = Clock::now();
  const auto base = sweep::run_points(serial, grid, run_cfg);
  const double serial_s = seconds_since(t0);
  t0 = Clock::now();
  const auto par = sweep::run_points(parallel, grid, run_cfg);
  const double parallel_s = seconds_since(t0);
  const bool identical = results_equal(base, par);
  benchutil::row("%-14s serial %.2fs  jobs=%u %.2fs  speedup %.2fx  %s",
                 name, serial_s, parallel.jobs(), parallel_s,
                 serial_s / parallel_s,
                 identical ? "identical" : "MISMATCH");
  return {name, grid.size(), serial_s, parallel_s, identical};
}

struct HotPathEntry {
  std::string name;
  double wall_s;            // telemetry disabled: the canary number
  double telemetry_wall_s;  // same config with a Session attached
  double sim_gbps;
  bool neutral;  // telemetry run produced identical simulated results
};

HotPathEntry measure_hot_path(const char* name, const Cfg& c) {
  Clock::time_point t0 = Clock::now();
  const lat::Result r = run_cfg(c);
  const double wall_s = seconds_since(t0);
  t0 = Clock::now();
  const lat::Result rt = run_cfg_impl(c, true, nullptr);
  const double tel_s = seconds_since(t0);
  const bool neutral = results_equal({r}, {rt});
  benchutil::row("%-24s %.2fs wall  +tel %.2fs  (%.1f simulated GB/s)%s",
                 name, wall_s, tel_s, r.bandwidth_gbps,
                 neutral ? "" : "  TIMING NOT NEUTRAL");
  return {name, wall_s, tel_s, r.bandwidth_gbps, neutral};
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_sweep.json";
  // hardware_concurrency() can under-report inside containers; the
  // driver script passes the real count via --host-cores so the JSON
  // header records the machine the numbers came from.
  unsigned host_cores = std::thread::hardware_concurrency();
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
    if (std::strcmp(argv[i], "--host-cores") == 0)
      host_cores = static_cast<unsigned>(std::atoi(argv[i + 1]));
  }
  const unsigned jobs = sweep::jobs_from_args(argc, argv);

  benchutil::banner("bench_timing",
                    "sweep engine + simulator hot-path wall clock");
  benchutil::note("host cores %u, jobs %u", host_cores, jobs);

  sweep::Pool serial(1);
  sweep::Pool parallel(jobs);

  // fig04-style: thread scaling, sequential 256 B, all three ops.
  sweep::Grid<Cfg> fig04;
  for (unsigned threads : {1u, 2u, 4u, 8u})
    for (lat::Op op :
         {lat::Op::kLoad, lat::Op::kNtStore, lat::Op::kStoreClwb})
      fig04.add({.device = hw::Device::kXp, .interleaved = false, .op = op,
                 .threads = threads});

  // fig05-style: access-size scaling, random, interleaved.
  sweep::Grid<Cfg> fig05;
  for (std::size_t access : {256u, 4096u, 65536u})
    for (lat::Op op :
         {lat::Op::kLoad, lat::Op::kNtStore, lat::Op::kStoreClwb})
      fig05.add({.op = op, .pattern = lat::Pattern::kRand, .access = access,
                 .threads = 4});

  // fig16-style: DIMM spreading under contention.
  sweep::Grid<Cfg> fig16;
  for (std::size_t access : {256u, 4096u})
    for (unsigned dimms : {1u, 2u, 6u})
      fig16.add({.pattern = lat::Pattern::kRand, .access = access,
                 .threads = 8, .dimms_per_thread = dimms});

  std::vector<SweepEntry> sweeps;
  sweeps.push_back(measure_sweep("fig04_mini", fig04, serial, parallel));
  sweeps.push_back(measure_sweep("fig05_mini", fig05, serial, parallel));
  sweeps.push_back(measure_sweep("fig16_mini", fig16, serial, parallel));

  benchutil::row("");
  std::vector<HotPathEntry> hot;
  // Sequential 1-thread loads: SparseImage page cache + scheduler fast
  // path + whole-access steps, all on the load path.
  hot.push_back(measure_hot_path(
      "seq_load_1thr", {.op = lat::Op::kLoad, .duration = sim::ms(4)}));
  // Non-temporal store stream, the paper's preferred write instruction.
  hot.push_back(measure_hot_path(
      "seq_ntstore_1thr",
      {.op = lat::Op::kNtStore, .duration = sim::ms(4)}));
  // 1 MB writes flushed at the end: one access used to be 2048 scheduler
  // steps through std::function; now it is one step.
  hot.push_back(measure_hot_path(
      "clwb_after_1M_1thr",
      {.interleaved = false, .op = lat::Op::kStoreClwb, .access = 1 << 20,
       .flush_every = 0, .duration = sim::ms(40)}));
  // 8-thread random reads: the heap path the fast path must not hurt.
  hot.push_back(measure_hot_path(
      "rand_load_8thr", {.op = lat::Op::kLoad,
                         .pattern = lat::Pattern::kRand,
                         .threads = 8,
                         .duration = sim::ms(1)}));

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"sweep\",\n");
  std::fprintf(f, "  \"host_cores\": %u,\n", host_cores);
  std::fprintf(f, "  \"jobs\": %u,\n", jobs);
  std::fprintf(f, "  \"sweeps\": [\n");
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    const SweepEntry& s = sweeps[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"points\": %zu, "
                 "\"serial_s\": %.3f, \"parallel_s\": %.3f, "
                 "\"speedup\": %.2f, \"identical\": %s}%s\n",
                 s.name.c_str(), s.points, s.serial_s, s.parallel_s,
                 s.serial_s / s.parallel_s,
                 s.identical ? "true" : "false",
                 i + 1 < sweeps.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"hot_paths\": [\n");
  for (std::size_t i = 0; i < hot.size(); ++i) {
    const HotPathEntry& h = hot[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"wall_s\": %.3f, "
                 "\"telemetry_wall_s\": %.3f, \"sim_gbps\": %.2f, "
                 "\"telemetry_neutral\": %s}%s\n",
                 h.name.c_str(), h.wall_s, h.telemetry_wall_s, h.sim_gbps,
                 h.neutral ? "true" : "false",
                 i + 1 < hot.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");

  // One instrumented reference run whose summary rides along in the
  // perf log: proof the sampler/registry produce sane numbers on the
  // same workload the canaries time.
  std::string summary;
  run_cfg_impl({.op = lat::Op::kNtStore, .duration = sim::ms(1)}, true,
               &summary);
  std::fprintf(f, "  \"telemetry_summary\": %s\n", summary.c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  benchutil::row("");
  benchutil::note("wrote %s", out_path);

  for (const SweepEntry& s : sweeps)
    if (!s.identical) return 1;  // determinism is part of the contract
  for (const HotPathEntry& h : hot)
    if (!h.neutral) return 1;  // telemetry must not perturb simulation
  return 0;
}
