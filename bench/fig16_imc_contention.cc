// Reproduces paper Figure 16: iMC contention from DIMM spreading.
//
// A fixed thread pool (24 readers / 6 writers) spreads each thread's
// random accesses over N DIMMs. As N grows, more threads target each
// DIMM concurrently; with the per-thread WPQ credit (256 B) and the
// controller's limited stream trackers, per-DIMM efficiency falls —
// pinning threads to DIMMs maximizes bandwidth. The 32 points run
// through the host-parallel sweep pool.
#include <vector>

#include "bench/bench_util.h"
#include "lattester/runner.h"
#include "sweep/sweep.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

struct Cfg {
  lat::Op op;
  unsigned threads;
  unsigned dimms_per_thread;
  std::size_t access;
};

benchutil::TraceOpts g_trace;

double point(const Cfg& c, std::size_t idx) {
  hw::Platform platform;
  const auto tel = g_trace.session(platform, idx);
  hw::NamespaceOptions o;
  o.device = hw::Device::kXp;
  o.size = 8ull << 30;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);
  lat::WorkloadSpec spec;
  spec.op = c.op;
  spec.pattern = lat::Pattern::kRand;
  spec.access_size = c.access;
  spec.threads = c.threads;
  spec.dimms_per_thread = c.dimms_per_thread;
  spec.region_size = o.size;
  spec.duration = sim::ms(1);
  return lat::run(platform, ns, spec).bandwidth_gbps;
}

struct Panel {
  const char* name;
  lat::Op op;
  unsigned threads;
};

constexpr Panel kPanels[] = {
    {"Read", lat::Op::kLoad, 24},
    {"Write (ntstore)", lat::Op::kNtStore, 6},
};
constexpr std::size_t kSizes[] = {64u, 256u, 1024u, 4096u};
constexpr unsigned kDimms[] = {1, 2, 3, 6};

}  // namespace

int main(int argc, char** argv) {
  sweep::Pool pool(sweep::jobs_from_args(argc, argv));
  g_trace = benchutil::TraceOpts::from_args(argc, argv);

  sweep::Grid<Cfg> grid;
  for (const Panel& p : kPanels)
    for (std::size_t access : kSizes)
      for (unsigned dimms : kDimms) grid.add({p.op, p.threads, dimms, access});
  const std::vector<double> bw = sweep::run_points(pool, grid, point);

  benchutil::banner("Figure 16",
                    "Bandwidth (GB/s) as threads spread across DIMMs");
  std::size_t k = 0;
  for (const Panel& p : kPanels) {
    benchutil::row("%s (%u threads)", p.name, p.threads);
    benchutil::row("%8s %12s %12s %12s %12s", "size", "1 DIMM/thr",
                   "2 DIMMs/thr", "3 DIMMs/thr", "6 DIMMs/thr");
    for (std::size_t access : kSizes) {
      const double d1 = bw[k++], d2 = bw[k++], d3 = bw[k++], d6 = bw[k++];
      benchutil::row("%8s %12.1f %12.1f %12.1f %12.1f",
                     benchutil::human_size(access).c_str(), d1, d2, d3, d6);
    }
  }
  benchutil::note("paper: bandwidth drops as each thread touches more "
                  "DIMMs; for maximal bandwidth pin threads to DIMMs");
  return 0;
}
