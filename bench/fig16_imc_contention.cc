// Reproduces paper Figure 16: iMC contention from DIMM spreading.
//
// A fixed thread pool (24 readers / 6 writers) spreads each thread's
// random accesses over N DIMMs. As N grows, more threads target each
// DIMM concurrently; with the per-thread WPQ credit (256 B) and the
// controller's limited stream trackers, per-DIMM efficiency falls —
// pinning threads to DIMMs maximizes bandwidth.
#include "bench/bench_util.h"
#include "lattester/runner.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

double point(lat::Op op, unsigned threads, unsigned dimms_per_thread,
             std::size_t access) {
  hw::Platform platform;
  hw::NamespaceOptions o;
  o.device = hw::Device::kXp;
  o.size = 8ull << 30;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);
  lat::WorkloadSpec spec;
  spec.op = op;
  spec.pattern = lat::Pattern::kRand;
  spec.access_size = access;
  spec.threads = threads;
  spec.dimms_per_thread = dimms_per_thread;
  spec.region_size = o.size;
  spec.duration = sim::ms(1);
  return lat::run(platform, ns, spec).bandwidth_gbps;
}

void panel(const char* name, lat::Op op, unsigned threads) {
  benchutil::row("%s (%u threads)", name, threads);
  benchutil::row("%8s %12s %12s %12s %12s", "size", "1 DIMM/thr",
                 "2 DIMMs/thr", "3 DIMMs/thr", "6 DIMMs/thr");
  for (std::size_t access : {64u, 256u, 1024u, 4096u}) {
    benchutil::row("%8s %12.1f %12.1f %12.1f %12.1f",
                   benchutil::human_size(access).c_str(),
                   point(op, threads, 1, access),
                   point(op, threads, 2, access),
                   point(op, threads, 3, access),
                   point(op, threads, 6, access));
  }
}

}  // namespace

int main() {
  benchutil::banner("Figure 16",
                    "Bandwidth (GB/s) as threads spread across DIMMs");
  panel("Read", lat::Op::kLoad, 24);
  panel("Write (ntstore)", lat::Op::kNtStore, 6);
  benchutil::note("paper: bandwidth drops as each thread touches more "
                  "DIMMs; for maximal bandwidth pin threads to DIMMs");
  return 0;
}
