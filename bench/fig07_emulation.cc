// Reproduces paper Figure 7: NVM-emulation methodologies vs real Optane.
//
// Left panel: sequential-write latency/bandwidth curves for DRAM,
// DRAM-Remote, PMEP (DRAM + 300 ns load latency + 1/8 write bandwidth),
// and Optane. Right panel: bandwidth under read/write thread mixes.
// The point of the figure: none of the emulations lands anywhere near
// real Optane on either axis.
#include "bench/bench_util.h"
#include "lattester/runner.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

struct Config {
  const char* name;
  hw::Device device;
  unsigned thread_socket;  // DRAM-Remote: threads on the other socket
  hw::EmulationKnobs knobs;
};

std::vector<Config> configs() {
  return {
      {"DRAM", hw::Device::kDram, 0, {}},
      {"DRAM-Remote", hw::Device::kDram, 1, {}},
      {"PMEP", hw::Device::kDram, 0, hw::pmep_knobs()},
      {"Optane", hw::Device::kXp, 0, {}},
  };
}

hw::PmemNamespace& make_ns(hw::Platform& platform, const Config& c) {
  hw::NamespaceOptions o;
  o.device = c.device;
  o.socket = 0;
  o.size = 8ull << 30;
  o.emulation = c.knobs;
  o.discard_data = true;
  return platform.add_namespace(o);
}

benchutil::TraceOpts g_trace;
std::size_t g_point = 0;

}  // namespace

int main(int argc, char** argv) {
  g_trace = benchutil::TraceOpts::from_args(argc, argv);
  benchutil::banner("Figure 7", "Emulation mechanisms vs real Optane");

  benchutil::row("Idle latency (ns) and peak sequential-write bandwidth");
  benchutil::row("%-12s %12s %12s %16s", "config", "read lat", "write lat",
                 "seq wr BW(GB/s)");
  for (const Config& c : configs()) {
    // Idle read latency (dependent loads).
    hw::Platform p1;
    const auto tel1 = g_trace.session(p1, g_point++);
    auto& ns1 = make_ns(p1, c);
    lat::WorkloadSpec rd;
    rd.op = lat::Op::kLoad;
    rd.pattern = lat::Pattern::kRand;
    rd.access_size = 64;
    rd.threads = 1;
    rd.mlp = 1;
    rd.fence_each_op = true;
    rd.socket = c.thread_socket;
    rd.region_size = ns1.size();
    rd.duration = sim::ms(1);
    const double read_lat = lat::run(p1, ns1, rd).avg_latency_ns();

    // Idle write latency.
    hw::Platform p2;
    const auto tel2 = g_trace.session(p2, g_point++);
    auto& ns2 = make_ns(p2, c);
    lat::WorkloadSpec wr = rd;
    wr.op = lat::Op::kNtStore;
    wr.pattern = lat::Pattern::kSeq;
    const double write_lat = lat::run(p2, ns2, wr).avg_latency_ns();

    // Peak sequential ntstore bandwidth (8 threads, pipelined).
    hw::Platform p3;
    const auto tel3 = g_trace.session(p3, g_point++);
    auto& ns3 = make_ns(p3, c);
    lat::WorkloadSpec bw;
    bw.op = lat::Op::kNtStore;
    bw.access_size = 256;
    bw.threads = 8;
    bw.socket = c.thread_socket;
    bw.region_size = ns3.size();
    bw.duration = sim::ms(1);
    const double wbw = lat::run(p3, ns3, bw).bandwidth_gbps;

    benchutil::row("%-12s %12.0f %12.0f %16.2f", c.name, read_lat,
                   write_lat, wbw);
  }

  benchutil::row("");
  benchutil::row("Bandwidth by thread mix (8 threads, 256 B random)");
  benchutil::row("%-12s %12s %12s %12s", "config", "all-write", "1:1 mix",
                 "all-read");
  for (const Config& c : configs()) {
    double bw[3];
    int i = 0;
    for (double read_fraction : {0.0, 0.5, 1.0}) {
      hw::Platform platform;
      const auto tel = g_trace.session(platform, g_point++);
      auto& ns = make_ns(platform, c);
      lat::WorkloadSpec spec;
      spec.op = lat::Op::kMixed;
      spec.read_fraction = read_fraction;
      spec.pattern = lat::Pattern::kRand;
      spec.access_size = 256;
      spec.threads = 8;
      spec.socket = c.thread_socket;
      spec.region_size = ns.size();
      spec.duration = sim::ms(1);
      bw[i++] = lat::run(platform, ns, spec).bandwidth_gbps;
    }
    benchutil::row("%-12s %12.1f %12.1f %12.1f", c.name, bw[0], bw[1],
                   bw[2]);
  }

  benchutil::note("paper shape: every emulation misses Optane badly — "
                  "wrong latency, wrong bandwidth, no read/write "
                  "asymmetry, no sequential preference");
  return 0;
}
