// Reproduces paper Figure 19: NUMA degradation for PMemKV.
//
// The cmap engine's `overwrite` workload (read-modify-write of 512 B
// values) with the server's threads local or remote to the pool, on
// Optane and on DRAM-as-pmem, sweeping thread count. The paper's
// takeaway: migrating to the remote socket costs Optane ~4.5x but DRAM
// only ~8%.
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "pmemkv/cmap.h"
#include "sim/scheduler.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

benchutil::TraceOpts g_trace;
std::size_t g_point = 0;

double overwrite_bw(hw::Device device, unsigned server_socket,
                    unsigned threads) {
  hw::Platform platform;
  const auto tel = g_trace.session(platform, g_point++);
  hw::PmemNamespace& ns = device == hw::Device::kXp
                              ? platform.optane(1024ull << 20, 0)
                              : platform.dram(1024ull << 20, 0);
  pmem::Pool pool(ns);
  pmemkv::CMap map(pool);
  {
    sim::ThreadCtx t({.id = 100, .socket = 0, .mlp = 16, .seed = 1});
    pool.create(t, 64);
    map.create(t);
    for (int i = 0; i < 4000; ++i)
      map.put(t, "key" + std::to_string(i), std::string(512, 'x'));
  }
  platform.reset_timing();

  sim::Scheduler sched;
  std::vector<std::uint64_t> bytes(threads, 0);
  const sim::Time window = sim::ms(1);
  for (unsigned j = 0; j < threads; ++j) {
    sched.spawn({.id = j, .socket = server_socket, .mlp = 16, .seed = j + 5},
                [&, j](sim::ThreadCtx& ctx) {
                  if (ctx.now() >= window) return false;
                  const int k = static_cast<int>(ctx.rng().uniform(4000));
                  std::string v;
                  map.get(ctx, "key" + std::to_string(k), &v);
                  map.put(ctx, "key" + std::to_string(k),
                          std::string(512, 'y'));
                  bytes[j] += 1024;
                  return true;
                });
  }
  sched.run();
  std::uint64_t total = 0;
  for (auto b : bytes) total += b;
  return sim::gbps(total, window);
}

}  // namespace

int main(int argc, char** argv) {
  g_trace = benchutil::TraceOpts::from_args(argc, argv);
  benchutil::banner("Figure 19",
                    "PMemKV cmap overwrite bandwidth (GB/s) vs threads");
  benchutil::row("%8s %10s %14s %10s %14s", "threads", "DRAM",
                 "DRAM-Remote", "Optane", "Optane-Remote");
  for (unsigned threads : {1u, 2u, 4u, 8u, 12u}) {
    benchutil::row("%8u %10.2f %14.2f %10.2f %14.2f", threads,
                   overwrite_bw(hw::Device::kDram, 0, threads),
                   overwrite_bw(hw::Device::kDram, 1, threads),
                   overwrite_bw(hw::Device::kXp, 0, threads),
                   overwrite_bw(hw::Device::kXp, 1, threads));
  }
  benchutil::note("paper: beyond 2 threads the remote-Optane store "
                  "collapses (~4.5x loss, 18x vs DRAM); remote DRAM loses "
                  "only ~8%%");
  return 0;
}
