// Ablation: sensitivity of the paper's guidelines to the XPBuffer size.
//
// §6 of the paper argues the 256 B-locality guideline is a direct product
// of the 16 KB XPBuffer; if future devices grow it, the working-set limit
// relaxes. We sweep the modeled buffer capacity and re-run (a) the Fig 10
// capacity probe and (b) random 64 B ntstore EWR/bandwidth.
#include "bench/bench_util.h"
#include "lattester/kernels.h"
#include "lattester/runner.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

}  // namespace

int main(int argc, char** argv) {
  const auto trace = benchutil::TraceOpts::from_args(argc, argv);
  std::size_t point = 0;
  benchutil::banner("Ablation", "XPBuffer capacity sensitivity");
  benchutil::row("%10s %14s %14s %12s %12s", "buffer", "WA@16K-probe",
                 "WA@64K-probe", "rand64B EWR", "rand64B GB/s");
  for (unsigned lines : {16u, 32u, 64u, 128u, 256u}) {
    hw::Timing timing;
    timing.xpbuffer_lines = lines;

    hw::Platform p1(timing);
    const auto tel1 = trace.session(p1, point++);
    auto& probe_ns = p1.optane_ni(64 << 20);
    const double wa16 = lat::xpbuffer_write_amp_probe(p1, probe_ns, 16384);
    const double wa64 = lat::xpbuffer_write_amp_probe(p1, probe_ns, 65536);

    hw::Platform p2(timing);
    const auto tel2 = trace.session(p2, point++);
    hw::NamespaceOptions o;
    o.device = hw::Device::kXp;
    o.interleaved = false;
    o.size = 2ull << 30;
    o.discard_data = true;
    auto& ns = p2.add_namespace(o);
    lat::WorkloadSpec spec;
    spec.op = lat::Op::kNtStore;
    spec.pattern = lat::Pattern::kRand;
    spec.access_size = 64;
    spec.threads = 1;
    spec.region_size = o.size;
    spec.duration = sim::ms(1);
    const lat::Result r = lat::run(p2, ns, spec);

    benchutil::row("%9uL %14.2f %14.2f %12.2f %12.2f", lines, wa16, wa64,
                   r.ewr, r.bandwidth_gbps);
  }
  benchutil::note("expected: the WA cliff tracks the configured capacity; "
                  "random 64 B EWR stays ~0.25 regardless (locality, not "
                  "capacity, is the fix)");
  return 0;
}
