// Ablation: the per-thread WPQ credit (256 B) behind guideline #3.
//
// The paper hypothesizes the iMC "cannot queue more than 256 B from a
// single thread", making single-thread-to-one-DIMM writes latency-bound
// and DIMM spreading harmful. We sweep the credit and measure
// single-thread ntstore bandwidth to one DIMM plus the Fig 16 spreading
// penalty.
#include "bench/bench_util.h"
#include "lattester/runner.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

benchutil::TraceOpts g_trace;
std::size_t g_point = 0;

double ni_1thread(const hw::Timing& timing) {
  hw::Platform platform(timing);
  const auto tel = g_trace.session(platform, g_point++);
  hw::NamespaceOptions o;
  o.device = hw::Device::kXp;
  o.interleaved = false;
  o.size = 2ull << 30;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);
  lat::WorkloadSpec spec;
  spec.op = lat::Op::kNtStore;
  spec.access_size = 256;
  spec.threads = 1;
  spec.region_size = o.size;
  spec.duration = sim::ms(1);
  return lat::run(platform, ns, spec).bandwidth_gbps;
}

double spread(const hw::Timing& timing, unsigned dimms_per_thread) {
  hw::Platform platform(timing);
  const auto tel = g_trace.session(platform, g_point++);
  hw::NamespaceOptions o;
  o.device = hw::Device::kXp;
  o.size = 8ull << 30;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);
  lat::WorkloadSpec spec;
  spec.op = lat::Op::kNtStore;
  spec.pattern = lat::Pattern::kRand;
  spec.access_size = 256;
  spec.threads = 6;
  spec.dimms_per_thread = dimms_per_thread;
  spec.region_size = o.size;
  spec.duration = sim::ms(1);
  return lat::run(platform, ns, spec).bandwidth_gbps;
}

}  // namespace

int main(int argc, char** argv) {
  g_trace = benchutil::TraceOpts::from_args(argc, argv);
  benchutil::banner("Ablation", "Per-thread WPQ credit sensitivity");
  benchutil::row("%8s %14s %14s %14s %12s", "credit", "NI 1-thr GB/s",
                 "6thr pinned", "6thr spread-6", "spread loss");
  for (unsigned credit : {1u, 2u, 4u, 8u, 16u, 64u}) {
    hw::Timing timing;
    timing.wpq_thread_credit = credit;
    const double one = ni_1thread(timing);
    const double pinned = spread(timing, 1);
    const double spread6 = spread(timing, 6);
    benchutil::row("%7uB %14.2f %14.2f %14.2f %11.0f%%", credit * 64, one,
                   pinned, spread6, (1 - spread6 / pinned) * 100);
  }
  benchutil::note("expected: deeper credits raise single-thread write "
                  "bandwidth toward the media cap and shrink the "
                  "DIMM-spreading penalty — the guideline is an artifact "
                  "of the 256 B credit, as §6 predicts");
  return 0;
}
