// Store-level write-combining sweep: measures what the shared
// LineBatcher layer (src/pmemlib/linebatch.h) buys each store, with the
// optimizations off (stock behavior) and on, across value sizes and
// thread counts. Writes BENCH_stores.json:
//
//  * lsmkv  — per-record WAL appends vs group commit (§5.1/§5.2):
//             simulated write throughput and the WAL's EWR. The
//             per-record path fences a 4-byte terminator per put and
//             measures heavily iMC-amplified; group commit writes one
//             full-line burst + one terminator patch per group.
//  * novafs — per-entry log appends vs batched multi-entry bursts for
//             multi-segment writes and rename.
//  * pmemkv — fig19 overwrite workload with the per-DIMM admission
//             throttle (§5.3) and NUMA-local placement (§5.4) off/on.
//
// Every row records simulated throughput, interval EWR (XP write-
// combining buffers are drained into the media counters before the
// final snapshot so buffered residue cannot flatter the ratio), and
// per-DIMM EWR from telemetry::Snapshot deltas. All metrics are
// simulated quantities, so the output file is bit-reproducible; the
// sweep runs once serially and once with --jobs N and fails if the two
// result vectors differ (the sweep engine's determinism contract).
//
// Usage: bench_stores [--mini] [--jobs N] [--out FILE] [--host-cores N]
// (default FILE: BENCH_stores.json in the working directory).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "lsmkv/db.h"
#include "novafs/novafs.h"
#include "pmemkv/cmap.h"
#include "pmemkv/stree.h"
#include "sim/scheduler.h"
#include "sweep/sweep.h"
#include "telemetry/registry.h"
#include "telemetry/session.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

// ---------------------------------------------------------------------
// Configuration grid. One discriminated Cfg type keeps a single grid,
// one runner, and one determinism comparison for all three stores.

enum class Store { kLsmkv, kNovafs, kPmemkv, kStree };

struct Cfg {
  Store store = Store::kLsmkv;
  bool optimized = false;  // the LineBatcher-backed path for this store
  // read grid (§5.1): point reads with line-granular read combining and
  // the DRAM read cache, measured in the small-LLC regime the paper's
  // read guidelines target (working set > LLC and > XPBuffer, < DRAM).
  bool read = false;           // run the read benchmark for this store
  std::size_t cache_lines = 4096;  // ReadCache capacity (0 = no cache)
  int rounds = 3;              // repeat-read rounds over the working set
  // lsmkv
  kv::WalMode wal = kv::WalMode::kFlex;
  std::size_t group_size = 32;
  std::size_t vlen = 24;
  unsigned threads = 1;
  int records = 8000;
  // novafs
  const char* fs_op = "write";  // "write" (multi-segment) or "rename"
  int fs_ops = 400;
  // pmemkv
  pmemkv::Placement placement = pmemkv::Placement::kFixed;
  unsigned server_socket = 1;  // kFixed pool lives on socket 0: remote
  unsigned writers_cap = 0;
  bool single_dimm = false;  // non-interleaved pool: all writers, 1 DIMM
  sim::Time window = sim::us(500);
};

struct Row {
  std::string store;
  std::string name;
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
  double gbps = 0;
  double kops = 0;
  double ewr = 0;
  std::uint64_t imc_write_bytes = 0;
  std::uint64_t media_write_bytes = 0;
  double err = 0;  // media read bytes / iMC read bytes (0/0 -> 1)
  std::uint64_t imc_read_bytes = 0;
  std::uint64_t media_read_bytes = 0;
  std::vector<double> dimm_ewr;  // socket-major; NaN for idle DIMMs
};

bool rows_equal(const std::vector<Row>& a, const std::vector<Row>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].store != b[i].store || a[i].name != b[i].name ||
        a[i].ops != b[i].ops || a[i].bytes != b[i].bytes ||
        a[i].gbps != b[i].gbps || a[i].kops != b[i].kops ||
        a[i].ewr != b[i].ewr ||
        a[i].imc_write_bytes != b[i].imc_write_bytes ||
        a[i].media_write_bytes != b[i].media_write_bytes ||
        a[i].err != b[i].err ||
        a[i].imc_read_bytes != b[i].imc_read_bytes ||
        a[i].media_read_bytes != b[i].media_read_bytes ||
        a[i].dimm_ewr.size() != b[i].dimm_ewr.size())
      return false;
    for (std::size_t d = 0; d < a[i].dimm_ewr.size(); ++d) {
      const bool an = std::isnan(a[i].dimm_ewr[d]);
      const bool bn = std::isnan(b[i].dimm_ewr[d]);
      if (an != bn || (!an && a[i].dimm_ewr[d] != b[i].dimm_ewr[d]))
        return false;
    }
  }
  return true;
}

// Write back every dirty line still sitting in the XP write-combining
// buffers so the media counters reflect the whole workload. Without
// this, a short run whose working set fits in the 16 KB buffers reports
// almost no media writes and an absurdly flattering EWR.
void drain_xp_buffers(hw::Platform& p, sim::Time t) {
  for (unsigned s = 0; s < p.timing().sockets; ++s)
    for (unsigned c = 0; c < p.timing().channels_per_socket; ++c) {
      auto& d = p.xp_dimm(s, c);
      d.buffer().flush_all(t, d.counters());
    }
}

void fill_counters(Row& r, const telemetry::Delta& d, sim::Time elapsed) {
  const hw::XpCounters xc = d.xp_total();
  r.ewr = xc.ewr();
  r.imc_write_bytes = xc.imc_write_bytes;
  r.media_write_bytes = xc.media_write_bytes;
  r.err = xc.err();
  r.imc_read_bytes = xc.imc_read_bytes;
  r.media_read_bytes = xc.media_read_bytes;
  r.gbps = sim::gbps(r.bytes, elapsed);
  r.kops = static_cast<double>(r.ops) / sim::to_s(elapsed) / 1e3;
  for (unsigned s = 0; s < d.sockets(); ++s)
    for (unsigned c = 0; c < d.channels(); ++c) {
      const hw::XpCounters& dc = d.xp[s][c].counters;
      r.dimm_ewr.push_back(dc.media_write_bytes == 0 ? std::nan("")
                                                     : dc.ewr());
    }
}

// ---------------------------------------------------------------------
// lsmkv: N writer threads share one Db; sync after every put. With
// group commit on, puts are acknowledged at group boundaries and the
// group leader persists one contiguous burst for the whole batch.

Row run_lsmkv(const Cfg& c) {
  Row r;
  r.store = "lsmkv";
  char name[96];
  std::snprintf(name, sizeof name, "%s-%s-v%zu-t%u",
                c.wal == kv::WalMode::kPosix ? "posix" : "flex",
                c.optimized ? "group" : "per-record", c.vlen, c.threads);
  r.name = name;

  hw::Platform platform;
  auto& ns = platform.optane(256ull << 20);
  kv::DbOptions o;
  o.wal = c.wal;
  o.sync_every_op = true;
  o.wal_group_commit = c.optimized;
  o.wal_group_size = c.group_size;
  o.memtable_bytes = 32 << 20;  // keep flushes out of the window
  kv::Db db(ns, o);
  sim::ThreadCtx setup({.id = 100, .socket = 0, .mlp = 8, .seed = 1});
  db.create(setup);
  platform.reset_timing();

  const auto s0 = telemetry::Snapshot::capture(platform);
  const std::string value(c.vlen, 'v');
  const int per_thread = c.records / static_cast<int>(c.threads);
  sim::Scheduler sched;
  sim::Time t_end = 0;
  for (unsigned t = 0; t < c.threads; ++t) {
    sched.spawn({.id = t, .socket = 0, .mlp = 8, .seed = t + 1},
                [&, t, i = 0](sim::ThreadCtx& ctx) mutable {
                  if (i >= per_thread) {
                    if (ctx.now() > t_end) t_end = ctx.now();
                    return false;
                  }
                  char key[16];
                  std::snprintf(key, sizeof key, "k%02u%06d", t, i);
                  db.put(ctx, key, value);
                  r.bytes += 9 + c.vlen;
                  ++r.ops;
                  ++i;
                  return true;
                });
  }
  sched.run();
  db.commit_pending(setup);
  setup.drain();
  if (setup.now() > t_end) t_end = setup.now();
  drain_xp_buffers(platform, t_end);
  fill_counters(r, telemetry::Snapshot::capture(platform) - s0, t_end);
  return r;
}

// ---------------------------------------------------------------------
// novafs: multi-entry log operations. "write" issues page-size writes
// at a half-page offset with datalog on, so every call splits into two
// embedded sub-page entries; "rename" moves files between names (two
// dirent entries). With batching on, each operation commits all of its
// entries as one burst.

Row run_novafs(const Cfg& c) {
  Row r;
  r.store = "novafs";
  r.name = std::string(c.fs_op) +
           (c.optimized ? "-batched" : "-per-entry");

  hw::Platform platform;
  auto& ns = platform.optane(512ull << 20);
  nova::NovaOptions o;
  o.datalog = true;
  o.batch_log_appends = c.optimized;
  nova::NovaFs fs(ns, o);
  sim::ThreadCtx ctx({.id = 0, .socket = 0, .mlp = 8, .seed = 1});
  fs.format(ctx);

  if (std::strcmp(c.fs_op, "write") == 0) {
    const int ino = fs.create(ctx, "bench.dat");
    platform.reset_timing();
    const auto s0 = telemetry::Snapshot::capture(platform);
    const sim::Time t0 = ctx.now();
    // Each write straddles a page boundary mid-page: always exactly two
    // embedded sub-page entries, small enough that both (plus the batch
    // terminator) coalesce into one log page.
    const std::size_t wlen = 3072;
    std::vector<std::uint8_t> buf(wlen, 0xab);
    for (int i = 0; i < c.fs_ops; ++i) {
      fs.write(ctx, ino, 2560 + static_cast<std::uint64_t>(i) * 4096, buf);
      r.bytes += wlen;
      ++r.ops;
    }
    ctx.drain();
    drain_xp_buffers(platform, ctx.now());
    fill_counters(r, telemetry::Snapshot::capture(platform) - s0,
                  ctx.now() - t0);
    return r;
  }

  // rename ping-pong over a small population of files.
  const int kFiles = 32;
  for (int i = 0; i < kFiles; ++i) {
    char fname[16];
    std::snprintf(fname, sizeof fname, "a%03d", i);
    fs.create(ctx, fname);
  }
  platform.reset_timing();
  const auto s0 = telemetry::Snapshot::capture(platform);
  const sim::Time t0 = ctx.now();
  for (int i = 0; i < c.fs_ops; ++i) {
    const int f = i % kFiles;
    char from[16], to[16];
    std::snprintf(from, sizeof from, "%c%03d", (i / kFiles) % 2 ? 'b' : 'a',
                  f);
    std::snprintf(to, sizeof to, "%c%03d", (i / kFiles) % 2 ? 'a' : 'b', f);
    fs.rename(ctx, from, to);
    ++r.ops;
  }
  ctx.drain();
  drain_xp_buffers(platform, ctx.now());
  fill_counters(r, telemetry::Snapshot::capture(platform) - s0,
                ctx.now() - t0);
  return r;
}

// ---------------------------------------------------------------------
// pmemkv: the fig19 overwrite workload (read + in-place 512 B value
// update). Stock configuration: pool fixed on socket 0 while the
// serving threads run on socket 1 (the paper's migration scenario) and
// no write admission control. Optimized: NUMA-local placement plus the
// §5.3 per-DIMM writer cap.

Row run_pmemkv(const Cfg& c) {
  Row r;
  r.store = "pmemkv";
  char name[96];
  std::snprintf(name, sizeof name, "overwrite-%s-cap%u-t%u",
                c.single_dimm
                    ? "1dimm"
                    : (c.placement == pmemkv::Placement::kNumaLocal
                           ? "local"
                           : "remote"),
                c.writers_cap, c.threads);
  r.name = name;

  hw::Platform platform;
  const unsigned pool_socket =
      pmemkv::placement_socket(c.placement, c.server_socket);
  auto& ns = c.single_dimm
                 ? platform.optane_ni(1024ull << 20, pool_socket)
                 : platform.optane(1024ull << 20, pool_socket);
  pmem::Pool pool(ns);
  pmemkv::CMap map(pool, {.max_writers_per_dimm = c.writers_cap});
  {
    sim::ThreadCtx t({.id = 100, .socket = pool_socket, .mlp = 16,
                      .seed = 1});
    pool.create(t, 64);
    map.create(t);
    for (int i = 0; i < 4000; ++i)
      map.put(t, "key" + std::to_string(i), std::string(512, 'x'));
  }
  platform.reset_timing();
  map.reset_admission();  // new epoch: seeding-time bookkeeping is stale

  const auto s0 = telemetry::Snapshot::capture(platform);
  sim::Scheduler sched;
  for (unsigned j = 0; j < c.threads; ++j) {
    sched.spawn({.id = j, .socket = c.server_socket, .mlp = 16,
                 .seed = j + 5},
                [&, this_window = c.window](sim::ThreadCtx& ctx) {
                  if (ctx.now() >= this_window) return false;
                  const int k = static_cast<int>(ctx.rng().uniform(4000));
                  std::string v;
                  map.get(ctx, "key" + std::to_string(k), &v);
                  map.put(ctx, "key" + std::to_string(k),
                          std::string(512, 'y'));
                  r.bytes += 1024;
                  ++r.ops;
                  return true;
                });
  }
  sched.run();
  drain_xp_buffers(platform, c.window);
  fill_counters(r, telemetry::Snapshot::capture(platform) - s0, c.window);
  return r;
}

// ---------------------------------------------------------------------
// Read grid (§5.1). Every read benchmark shrinks the LLC below the
// working set: with the default 32 MB cache each repeat read is a CPU-
// cache hit and no read-path configuration could show media traffic.
// Working sets are sized past the aggregate XPBuffer capacity
// (6 DIMMs x 16 KB) so the uncombined path pays media reads each round.

hw::Timing small_llc_timing() {
  hw::Timing tm;
  tm.llc_lines = 512;  // 32 KB
  return tm;
}

// lsmkv point gets: per-probe uncombined binary search vs combined
// fetches + DRAM-resident filters/offsets + line cache.
Row run_lsmkv_read(const Cfg& c) {
  Row r;
  r.store = "lsmkv";
  char name[96];
  std::snprintf(name, sizeof name, "get-%s-cache%zu",
                c.optimized ? "combined" : "stock",
                c.optimized ? c.cache_lines : 0);
  r.name = name;

  hw::Platform platform(small_llc_timing(), /*seed=*/1);
  auto& ns = platform.optane(256ull << 20);
  sim::ThreadCtx t({.id = 0, .socket = 0, .mlp = 8, .seed = 1});
  kv::DbOptions o;
  o.memtable_bytes = 16 << 10;  // force SSTables: reads hit the media
  o.sst_residency = c.optimized;
  o.read_combine = c.optimized;
  o.read_cache_lines = c.optimized ? c.cache_lines : 0;
  kv::Db db(ns, o);
  db.create(t);
  auto key_of = [](int i) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "key%06d", i);
    return std::string(buf);
  };
  const std::size_t vlen = 100;
  for (int i = 0; i < c.records; ++i)
    db.put(t, key_of(i), std::string(vlen, 'v'));
  db.flush(t);

  platform.reset_timing();
  t.drain();
  drain_xp_buffers(platform, t.now());
  const auto s0 = telemetry::Snapshot::capture(platform);
  const sim::Time t0 = t.now();
  std::string v;
  for (int round = 0; round < c.rounds; ++round)
    for (int i = 0; i < c.records; i += 2)
      if (db.get(t, key_of(i), &v)) {
        r.bytes += vlen;
        ++r.ops;
      }
  t.drain();
  drain_xp_buffers(platform, t.now());
  fill_counters(r, telemetry::Snapshot::capture(platform) - s0,
                t.now() - t0);
  return r;
}

// novafs: combined log replay on mount plus repeat whole-file reads.
Row run_novafs_read(const Cfg& c) {
  Row r;
  r.store = "novafs";
  r.name = std::string("read-") + (c.optimized ? "combined" : "stock");

  hw::Platform platform(small_llc_timing(), /*seed=*/1);
  auto& ns = platform.optane(128ull << 20);
  sim::ThreadCtx t({.id = 0, .socket = 0, .mlp = 8, .seed = 1});
  nova::NovaOptions wo;
  wo.datalog = true;  // write phase identical in both configurations
  nova::NovaFs fs(ns, wo);
  fs.format(t);
  const int fd = fs.create(t, "bench.dat");
  std::vector<std::uint8_t> buf(200, 0xab);
  for (int i = 0; i < c.fs_ops; ++i)
    fs.write(t, fd, (static_cast<std::uint64_t>(i) * 613) % (64 << 10), buf);

  nova::NovaOptions ro = wo;
  ro.read_combine = c.optimized;
  ro.read_cache_lines = c.optimized ? c.cache_lines : 0;
  nova::NovaFs fs2(ns, ro);
  platform.reset_timing();
  t.drain();
  drain_xp_buffers(platform, t.now());
  const auto s0 = telemetry::Snapshot::capture(platform);
  const sim::Time t0 = t.now();
  fs2.mount(t);
  const int fd2 = fs2.open(t, "bench.dat");
  std::vector<std::uint8_t> out(64 << 10);
  for (int round = 0; round < c.rounds; ++round) {
    r.bytes += fs2.read(t, fd2, 0, out);
    ++r.ops;
  }
  t.drain();
  drain_xp_buffers(platform, t.now());
  fill_counters(r, telemetry::Snapshot::capture(platform) - s0,
                t.now() - t0);
  return r;
}

// pmemkv cmap / stree point gets over a super-XPBuffer key population.
Row run_pmemkv_read(const Cfg& c) {
  Row r;
  r.store = c.store == Store::kStree ? "stree" : "cmap";
  char name[96];
  std::snprintf(name, sizeof name, "get-%s-cache%zu",
                c.optimized ? "combined" : "stock",
                c.optimized ? c.cache_lines : 0);
  r.name = name;

  hw::Platform platform(small_llc_timing(), /*seed=*/1);
  auto& ns = platform.optane(256ull << 20);
  sim::ThreadCtx t({.id = 0, .socket = 0, .mlp = 8, .seed = 1});
  pmem::Pool pool(ns);
  pool.create(t, 64);
  const int keys = c.records;
  const std::size_t vlen = 64;
  auto bench = [&](auto& map) {
    map.create(t);
    for (int i = 0; i < keys; ++i)
      map.put(t, "key" + std::to_string(i), std::string(vlen, 'x'));
    platform.reset_timing();
    t.drain();
    drain_xp_buffers(platform, t.now());
    const auto s0 = telemetry::Snapshot::capture(platform);
    const sim::Time t0 = t.now();
    std::string v;
    for (int round = 0; round < c.rounds; ++round)
      for (int i = 0; i < keys; ++i)
        if (map.get(t, "key" + std::to_string(i), &v)) {
          r.bytes += vlen;
          ++r.ops;
        }
    t.drain();
    drain_xp_buffers(platform, t.now());
    fill_counters(r, telemetry::Snapshot::capture(platform) - s0,
                  t.now() - t0);
  };
  if (c.store == Store::kStree) {
    pmemkv::STreeOptions o;
    o.read_combine = c.optimized;
    o.read_cache_lines = c.optimized ? c.cache_lines : 0;
    pmemkv::STree tree(pool, o);
    bench(tree);
  } else {
    pmemkv::CMapOptions o;
    o.read_combine = c.optimized;
    o.read_cache_lines = c.optimized ? c.cache_lines : 0;
    pmemkv::CMap map(pool, o);
    bench(map);
  }
  return r;
}

Row run_point(const Cfg& c) {
  if (c.read) {
    switch (c.store) {
      case Store::kLsmkv:
        return run_lsmkv_read(c);
      case Store::kNovafs:
        return run_novafs_read(c);
      case Store::kPmemkv:
      case Store::kStree:
        return run_pmemkv_read(c);
    }
  }
  switch (c.store) {
    case Store::kLsmkv:
      return run_lsmkv(c);
    case Store::kNovafs:
      return run_novafs(c);
    case Store::kPmemkv:
      return run_pmemkv(c);
    case Store::kStree:
      break;  // stree only appears in the read grid
  }
  return {};
}

// ---------------------------------------------------------------------

void json_rows(std::FILE* f, const std::vector<Row>& rows) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"store\": \"%s\", \"name\": \"%s\", "
                 "\"ops\": %llu, \"bytes\": %llu, \"gbps\": %.4f, "
                 "\"kops\": %.2f, \"ewr\": %.4f, "
                 "\"imc_write_bytes\": %llu, \"media_write_bytes\": %llu, "
                 "\"err\": %.4f, "
                 "\"imc_read_bytes\": %llu, \"media_read_bytes\": %llu, "
                 "\"dimm_ewr\": [",
                 r.store.c_str(), r.name.c_str(),
                 static_cast<unsigned long long>(r.ops),
                 static_cast<unsigned long long>(r.bytes), r.gbps, r.kops,
                 r.ewr, static_cast<unsigned long long>(r.imc_write_bytes),
                 static_cast<unsigned long long>(r.media_write_bytes),
                 std::isfinite(r.err) ? r.err : -1.0,
                 static_cast<unsigned long long>(r.imc_read_bytes),
                 static_cast<unsigned long long>(r.media_read_bytes));
    for (std::size_t d = 0; d < r.dimm_ewr.size(); ++d) {
      if (std::isnan(r.dimm_ewr[d]))
        std::fprintf(f, "null%s", d + 1 < r.dimm_ewr.size() ? "," : "");
      else
        std::fprintf(f, "%.4f%s", r.dimm_ewr[d],
                     d + 1 < r.dimm_ewr.size() ? "," : "");
    }
    std::fprintf(f, "]}%s\n", i + 1 < rows.size() ? "," : "");
  }
}

const Row* find_row(const std::vector<Row>& rows, const char* name) {
  for (const Row& r : rows)
    if (r.name == name) return &r;
  return nullptr;
}

const Row* find_row(const std::vector<Row>& rows, const char* store,
                    const char* name) {
  for (const Row& r : rows)
    if (r.store == store && r.name == name) return &r;
  return nullptr;
}

// ERR normalized to user-requested bytes: media read traffic per byte
// the application actually asked for. (The raw media/iMC ratio is
// floored near 1.0 for line-aligned combined fetches; what the §5.1
// guidelines lower is media traffic per useful byte.)
double user_err(const Row* r) {
  if (r == nullptr || r->bytes == 0) return 0;
  return static_cast<double>(r->media_read_bytes) /
         static_cast<double>(r->bytes);
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_stores.json";
  bool mini = false;
  unsigned host_cores = std::thread::hardware_concurrency();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[i + 1];
    if (std::strcmp(argv[i], "--mini") == 0) mini = true;
    if (std::strcmp(argv[i], "--host-cores") == 0 && i + 1 < argc)
      host_cores = static_cast<unsigned>(std::atoi(argv[i + 1]));
  }
  const unsigned jobs = sweep::jobs_from_args(argc, argv);

  benchutil::banner("bench_stores",
                    "store-level write combining: off vs on, per store");
  benchutil::note("host cores %u, jobs %u%s", host_cores, jobs,
                  mini ? ", mini" : "");

  sweep::Grid<Cfg> grid;
  // lsmkv: both WAL modes, small and page-ish values, thread scaling.
  const int nrec = mini ? 2000 : 8000;
  for (kv::WalMode wal : {kv::WalMode::kFlex, kv::WalMode::kPosix})
    for (std::size_t vlen : mini ? std::vector<std::size_t>{24}
                                 : std::vector<std::size_t>{24, 256})
      for (unsigned threads : mini ? std::vector<unsigned>{1, 8}
                                   : std::vector<unsigned>{1, 4, 8})
        for (bool opt : {false, true})
          grid.add({.store = Store::kLsmkv, .optimized = opt, .wal = wal,
                    .vlen = vlen, .threads = threads, .records = nrec});
  // novafs: multi-segment writes and renames.
  const int fs_ops = mini ? 100 : 400;
  for (const char* op : {"write", "rename"})
    for (bool opt : {false, true})
      grid.add({.store = Store::kNovafs, .optimized = opt, .fs_op = op,
                .fs_ops = fs_ops});
  // pmemkv: stock (remote pool, no cap) vs placement and throttle,
  // separately and combined, at the collapse thread count.
  const unsigned kv_threads = mini ? 4 : 8;
  grid.add({.store = Store::kPmemkv, .optimized = false,
            .threads = kv_threads});
  grid.add({.store = Store::kPmemkv, .optimized = true,
            .threads = kv_threads, .writers_cap = 4});
  grid.add({.store = Store::kPmemkv, .optimized = true,
            .threads = kv_threads,
            .placement = pmemkv::Placement::kNumaLocal});
  grid.add({.store = Store::kPmemkv, .optimized = true,
            .threads = kv_threads,
            .placement = pmemkv::Placement::kNumaLocal, .writers_cap = 4});
  // Single-DIMM pool, writers >> 4 stream trackers: the configuration
  // §5.3 warns about, local placement to isolate the throttle's effect.
  const unsigned crowd = mini ? 8 : 12;
  grid.add({.store = Store::kPmemkv, .optimized = false, .threads = crowd,
            .server_socket = 0, .single_dimm = true});
  grid.add({.store = Store::kPmemkv, .optimized = true, .threads = crowd,
            .server_socket = 0, .writers_cap = 4, .single_dimm = true});

  // Read grid (§5.1): stock vs combined+cached point reads per store,
  // plus a read-amplification sweep over the lsmkv cache capacity.
  // Identical in mini and full runs — the read benches are single-
  // threaded and cheap, and the CI headline floor (>= 2x point gets)
  // gates the same regime either way.
  const int read_recs = 2000;
  const int read_rounds = 3;
  for (bool opt : {false, true})
    grid.add({.store = Store::kLsmkv, .optimized = opt, .read = true,
              .rounds = read_rounds, .records = read_recs});
  for (std::size_t cl : {std::size_t{0}, std::size_t{512},
                         std::size_t{16384}})
    grid.add({.store = Store::kLsmkv, .optimized = true, .read = true,
              .cache_lines = cl, .rounds = read_rounds,
              .records = read_recs});
  for (bool opt : {false, true})
    grid.add({.store = Store::kNovafs, .optimized = opt, .read = true,
              .rounds = read_rounds, .fs_ops = 400});
  const int kv_read_keys = 1500;
  for (Store st : {Store::kPmemkv, Store::kStree})
    for (bool opt : {false, true})
      grid.add({.store = st, .optimized = opt, .read = true,
                .rounds = read_rounds + 1, .records = kv_read_keys});

  // Determinism guard: the whole grid serial, then parallel; the result
  // vectors must match bit for bit.
  sweep::Pool serial(1);
  sweep::Pool parallel(jobs);
  const auto rows = sweep::run_points(serial, grid, run_point);
  const auto rows_par = sweep::run_points(parallel, grid, run_point);
  const bool identical = rows_equal(rows, rows_par);

  benchutil::row("%-28s %10s %10s %8s", "point", "GB/s", "kops/s", "EWR");
  for (const Row& r : rows)
    benchutil::row("%-28s %10.3f %10.1f %8.3f",
                   (r.store + "/" + r.name).c_str(), r.gbps, r.kops, r.ewr);
  benchutil::row("");
  benchutil::row("determinism (--jobs 1 vs --jobs %u): %s", jobs,
                 identical ? "identical" : "MISMATCH");

  // Headline ratios the acceptance criteria key on: small-value group
  // commit vs per-record appends at the highest thread count.
  const Row* base = find_row(rows, "flex-per-record-v24-t8");
  const Row* group = find_row(rows, "flex-group-v24-t8");
  const double speedup =
      (base != nullptr && group != nullptr && base->gbps > 0)
          ? group->gbps / base->gbps
          : 0;
  if (base != nullptr && group != nullptr)
    benchutil::row("lsmkv small-value group commit: %.2fx throughput, "
                   "EWR %.3f -> %.3f",
                   speedup, base->ewr, group->ewr);

  // Read-path headline: stock vs combined+cached point gets. Same op
  // count both sides, so the kops ratio is the point-get speedup.
  const Row* rd_off = find_row(rows, "lsmkv", "get-stock-cache0");
  const Row* rd_on = find_row(rows, "lsmkv", "get-combined-cache4096");
  const double read_speedup =
      (rd_off != nullptr && rd_on != nullptr && rd_off->kops > 0)
          ? rd_on->kops / rd_off->kops
          : 0;
  if (rd_off != nullptr && rd_on != nullptr)
    benchutil::row("lsmkv point gets (read path on): %.2fx throughput, "
                   "ERR/user-byte %.3f -> %.3f",
                   read_speedup, user_err(rd_off), user_err(rd_on));

  // One instrumented run's summary rides along: per-DIMM timelines for
  // the group-commit WAL under telemetry, with a coarse sample interval
  // to keep the file small.
  std::string summary;
  {
    hw::Platform platform;
    telemetry::Options topt;
    topt.sample_interval = sim::ms(1);
    telemetry::Session tel(platform, topt);
    auto& ns = platform.optane(256ull << 20);
    kv::DbOptions o;
    o.wal = kv::WalMode::kFlex;
    o.sync_every_op = true;
    o.wal_group_commit = true;
    kv::Db db(ns, o);
    sim::ThreadCtx t({.id = 0, .socket = 0, .mlp = 8, .seed = 1});
    db.create(t);
    const std::string value(24, 'v');
    for (int i = 0; i < (mini ? 500 : 2000); ++i) {
      char key[16];
      std::snprintf(key, sizeof key, "k%06d", i);
      db.put(t, key, value);
    }
    db.commit_pending(t);
    t.drain();
    tel.finish();
    summary = tel.summary_json();
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"stores\",\n");
  std::fprintf(f, "  \"host_cores\": %u,\n", host_cores);
  std::fprintf(f, "  \"jobs\": %u,\n", jobs);
  std::fprintf(f, "  \"mini\": %s,\n", mini ? "true" : "false");
  std::fprintf(f, "  \"deterministic\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"headline\": {\"lsmkv_group_speedup\": %.3f, "
               "\"lsmkv_baseline_ewr\": %.4f, "
               "\"lsmkv_group_ewr\": %.4f, "
               "\"lsmkv_read_speedup\": %.3f, "
               "\"lsmkv_read_err_stock\": %.4f, "
               "\"lsmkv_read_err_combined\": %.4f},\n",
               speedup, base != nullptr ? base->ewr : 0,
               group != nullptr ? group->ewr : 0, read_speedup,
               user_err(rd_off), user_err(rd_on));
  std::fprintf(f, "  \"rows\": [\n");
  json_rows(f, rows);
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"telemetry_summary\": %s\n", summary.c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  benchutil::row("");
  benchutil::note("wrote %s", out_path);

  return identical ? 0 : 1;
}
