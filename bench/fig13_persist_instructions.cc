// Reproduces paper Figure 13: choosing persistence instructions.
//
// Left: bandwidth of sequential writes at 6 threads for ntstore,
// store+clwb, and bare store. Right: fenced single-thread latency of
// ntstore vs store+clwb over access sizes. Key claims: flushing right
// after each store keeps the stream sequential (EWR 0.26 -> 0.98) and
// beats bare stores; ntstore avoids the RFO read and wins for >=512 B.
// Both tables are one grid through the host-parallel sweep pool.
#include <vector>

#include "bench/bench_util.h"
#include "lattester/runner.h"
#include "sweep/sweep.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

struct Cfg {
  lat::Op op;
  std::size_t access;
  unsigned threads;
  bool fenced;
};

benchutil::TraceOpts g_trace;

lat::Result run_case(const Cfg& c, std::size_t idx) {
  hw::Platform platform;
  const auto tel = g_trace.session(platform, idx);
  hw::NamespaceOptions o;
  o.device = hw::Device::kXp;
  o.size = 8ull << 30;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);
  lat::WorkloadSpec spec;
  spec.op = c.op;
  spec.pattern = lat::Pattern::kSeq;
  spec.access_size = c.access;
  spec.threads = c.threads;
  spec.mlp = c.fenced ? 1 : 0;
  spec.fence_each_op = c.fenced;
  if (c.fenced) {
    // Latency methodology: warm, cache-resident lines (Fig 2 style).
    spec.region_size = 128 << 10;
    spec.warmup = sim::us(500);
    spec.duration = sim::ms(1);
  } else {
    spec.region_size = o.size;
    // Bare stores need to stream well past the LLC capacity before the
    // natural-eviction steady state (the regime the paper measures) is
    // reached.
    spec.warmup = c.op == lat::Op::kStore ? sim::ms(4) : sim::us(50);
    spec.duration = sim::ms(4);
  }
  return lat::run(platform, ns, spec);
}

constexpr std::size_t kBwSizes[] = {64u, 128u, 256u, 512u, 1024u, 4096u};
constexpr std::size_t kLatSizes[] = {64u, 256u, 1024u, 4096u};

}  // namespace

int main(int argc, char** argv) {
  sweep::Pool pool(sweep::jobs_from_args(argc, argv));
  g_trace = benchutil::TraceOpts::from_args(argc, argv);

  sweep::Grid<Cfg> grid;
  for (std::size_t access : kBwSizes) {
    grid.add({lat::Op::kNtStore, access, 6, false});
    grid.add({lat::Op::kStoreClwb, access, 6, false});
    grid.add({lat::Op::kStore, access, 6, false});
  }
  for (std::size_t access : kLatSizes) {
    grid.add({lat::Op::kNtStore, access, 1, true});
    grid.add({lat::Op::kStoreClwb, access, 1, true});
  }
  const std::vector<lat::Result> r = sweep::run_points(pool, grid, run_case);

  benchutil::banner("Figure 13", "Persistence instruction choice");

  std::size_t k = 0;
  benchutil::row("Bandwidth (GB/s), 6 threads, sequential — plus EWR");
  benchutil::row("%8s %16s %16s %16s", "size", "ntstore", "store+clwb",
                 "store");
  for (std::size_t access : kBwSizes) {
    const lat::Result& nt = r[k++];
    const lat::Result& cl = r[k++];
    const lat::Result& st = r[k++];
    benchutil::row("%8s %9.1f (e%.2f) %9.1f (e%.2f) %9.1f (e%.2f)",
                   benchutil::human_size(access).c_str(), nt.bandwidth_gbps,
                   nt.ewr, cl.bandwidth_gbps, cl.ewr, st.bandwidth_gbps,
                   st.ewr);
  }

  benchutil::row("");
  benchutil::row("Latency (ns), 1 thread, fenced");
  benchutil::row("%8s %12s %14s", "size", "ntstore", "store+clwb");
  for (std::size_t access : kLatSizes) {
    const lat::Result& nt = r[k++];
    const lat::Result& cl = r[k++];
    benchutil::row("%8s %12.0f %14.0f",
                   benchutil::human_size(access).c_str(),
                   nt.avg_latency_ns(), cl.avg_latency_ns());
  }

  benchutil::note("paper: store+clwb beats bare store beyond 64 B "
                  "(explicit flushes keep the stream ordered, EWR 0.26 -> "
                  "0.98); ntstore has the best bandwidth above 256 B and "
                  "the best latency above 512 B (no RFO read)");
  return 0;
}
