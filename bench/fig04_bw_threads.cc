// Reproduces paper Figure 4: bandwidth vs. thread count.
//
// Sequential 256 B accesses; loads, non-temporal stores, and cached
// stores + clwb; three panels: local DRAM, non-interleaved Optane (one
// DIMM), interleaved Optane (six DIMMs). A fresh platform per data point
// (cold caches, empty queues) keeps points independent, which also lets
// the whole sweep run through the host-parallel sweep pool.
#include <vector>

#include "bench/bench_util.h"
#include "lattester/runner.h"
#include "sweep/sweep.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

struct Cfg {
  hw::Device device;
  bool interleaved;
  lat::Op op;
  unsigned threads;
};

benchutil::TraceOpts g_trace;

double point(const Cfg& c, std::size_t idx) {
  hw::Platform platform;
  const auto tel = g_trace.session(platform, idx);
  hw::NamespaceOptions o;
  o.device = c.device;
  o.interleaved = c.interleaved;
  o.size = 8ull << 30;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);

  lat::WorkloadSpec spec;
  spec.op = c.op;
  spec.pattern = lat::Pattern::kSeq;
  spec.access_size = 256;
  spec.threads = c.threads;
  spec.region_size = o.size;
  spec.duration = sim::ms(1);
  return lat::run(platform, ns, spec).bandwidth_gbps;
}

struct Panel {
  const char* name;
  hw::Device device;
  bool interleaved;
};

constexpr Panel kPanels[] = {
    {"DRAM (interleaved)", hw::Device::kDram, true},
    {"Optane-NI (single DIMM)", hw::Device::kXp, false},
    {"Optane (6-DIMM interleaved)", hw::Device::kXp, true},
};
constexpr unsigned kThreads[] = {1, 2, 4, 8, 12, 16, 20, 24};
constexpr lat::Op kOps[] = {lat::Op::kLoad, lat::Op::kNtStore,
                            lat::Op::kStoreClwb};

}  // namespace

int main(int argc, char** argv) {
  sweep::Pool pool(sweep::jobs_from_args(argc, argv));
  g_trace = benchutil::TraceOpts::from_args(argc, argv);

  sweep::Grid<Cfg> grid;
  for (const Panel& p : kPanels)
    for (unsigned threads : kThreads)
      for (lat::Op op : kOps) grid.add({p.device, p.interleaved, op, threads});
  const std::vector<double> bw = sweep::run_points(pool, grid, point);

  benchutil::banner("Figure 4",
                    "Bandwidth (GB/s) vs thread count, 256 B sequential");
  std::size_t k = 0;
  for (const Panel& p : kPanels) {
    benchutil::row("%s", p.name);
    benchutil::row("%8s %10s %14s %14s", "threads", "Read",
                   "Write(ntstore)", "Write(clwb)");
    for (unsigned threads : kThreads) {
      const double rd = bw[k++], nt = bw[k++], cl = bw[k++];
      benchutil::row("%8u %10.1f %14.1f %14.1f", threads, rd, nt, cl);
    }
  }
  benchutil::note("paper shapes: DRAM scales monotonically to ~100 GB/s "
                  "read; Optane-NI read peaks ~6.6 GB/s at 4 threads then "
                  "tails off; Optane-NI ntstore peaks 2.3 GB/s at 1-4 "
                  "threads then falls; interleaving multiplies peaks ~6x "
                  "(read ~38-40, ntstore ~13 at 4-8 threads, clwb ~9-11 at "
                  "12 threads, falling at 24)");
  return 0;
}
