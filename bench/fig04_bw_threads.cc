// Reproduces paper Figure 4: bandwidth vs. thread count.
//
// Sequential 256 B accesses; loads, non-temporal stores, and cached
// stores + clwb; three panels: local DRAM, non-interleaved Optane (one
// DIMM), interleaved Optane (six DIMMs). A fresh platform per data point
// (cold caches, empty queues) keeps points independent.
#include <vector>

#include "bench/bench_util.h"
#include "lattester/runner.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

double point(hw::Device device, bool interleaved, lat::Op op,
             unsigned threads) {
  hw::Platform platform;
  hw::NamespaceOptions o;
  o.device = device;
  o.interleaved = interleaved;
  o.size = 8ull << 30;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);

  lat::WorkloadSpec spec;
  spec.op = op;
  spec.pattern = lat::Pattern::kSeq;
  spec.access_size = 256;
  spec.threads = threads;
  spec.region_size = o.size;
  spec.duration = sim::ms(1);
  return lat::run(platform, ns, spec).bandwidth_gbps;
}

void panel(const char* name, hw::Device device, bool interleaved) {
  benchutil::row("%s", name);
  benchutil::row("%8s %10s %14s %14s", "threads", "Read",
                 "Write(ntstore)", "Write(clwb)");
  for (unsigned threads : {1u, 2u, 4u, 8u, 12u, 16u, 20u, 24u}) {
    benchutil::row("%8u %10.1f %14.1f %14.1f", threads,
                   point(device, interleaved, lat::Op::kLoad, threads),
                   point(device, interleaved, lat::Op::kNtStore, threads),
                   point(device, interleaved, lat::Op::kStoreClwb, threads));
  }
}

}  // namespace

int main() {
  benchutil::banner("Figure 4",
                    "Bandwidth (GB/s) vs thread count, 256 B sequential");
  panel("DRAM (interleaved)", hw::Device::kDram, true);
  panel("Optane-NI (single DIMM)", hw::Device::kXp, false);
  panel("Optane (6-DIMM interleaved)", hw::Device::kXp, true);
  benchutil::note("paper shapes: DRAM scales monotonically to ~100 GB/s "
                  "read; Optane-NI read peaks ~6.6 GB/s at 4 threads then "
                  "tails off; Optane-NI ntstore peaks 2.3 GB/s at 1-4 "
                  "threads then falls; interleaving multiplies peaks ~6x "
                  "(read ~38-40, ntstore ~13 at 4-8 threads, clwb ~9-11 at "
                  "12 threads, falling at 24)");
  return 0;
}
