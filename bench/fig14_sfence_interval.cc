// Reproduces paper Figure 14: bandwidth over sfence intervals.
//
// A single thread writes `write size` bytes sequentially to Optane-NI,
// with one sfence per write. Three variants: clwb after every 64 B store,
// clwb for the whole range at the end of the write, and ntstore. For
// writes larger than the cache, deferring the flush lets natural
// evictions shuffle the stream and duplicates write-backs — the paper's
// "cache capacity invalidation" penalty. The 21 points are independent
// and run through the host-parallel sweep pool.
#include <vector>

#include "bench/bench_util.h"
#include "lattester/runner.h"
#include "sweep/sweep.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

struct Cfg {
  lat::Op op;
  std::size_t flush_every;
  std::size_t write_size;
};

benchutil::TraceOpts g_trace;

double point(const Cfg& c, std::size_t idx) {
  hw::Platform platform;
  const auto tel = g_trace.session(platform, idx);
  hw::NamespaceOptions o;
  o.device = hw::Device::kXp;
  o.interleaved = false;
  o.size = 2ull << 30;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);
  lat::WorkloadSpec spec;
  spec.op = c.op;
  spec.flush_every = c.flush_every;
  spec.pattern = lat::Pattern::kSeq;
  spec.access_size = c.write_size;
  spec.threads = 1;
  spec.fence_each_op = true;  // one sfence per write
  spec.region_size = o.size;
  // Multi-MB writes take ~10 ms each; give the window room for several.
  spec.duration = c.write_size >= (1 << 20) ? sim::ms(120) : sim::ms(2);
  spec.warmup = c.write_size >= (1 << 20) ? 0 : spec.warmup;
  return lat::run(platform, ns, spec).bandwidth_gbps;
}

constexpr std::size_t kSizes[] = {64u,    256u,     1024u,    4096u,
                                  65536u, 1048576u, 16777216u};

}  // namespace

int main(int argc, char** argv) {
  sweep::Pool pool(sweep::jobs_from_args(argc, argv));
  g_trace = benchutil::TraceOpts::from_args(argc, argv);

  sweep::Grid<Cfg> grid;
  for (std::size_t size : kSizes) {
    grid.add({lat::Op::kStoreClwb, 64, size});
    grid.add({lat::Op::kStoreClwb, 0, size});
    grid.add({lat::Op::kNtStore, 64, size});
  }
  const std::vector<double> bw = sweep::run_points(pool, grid, point);

  benchutil::banner("Figure 14",
                    "Bandwidth (GB/s) vs sfence interval, Optane-NI");
  benchutil::row("%8s %16s %18s %10s", "size", "clwb(every 64B)",
                 "clwb(write size)", "ntstore");
  std::size_t k = 0;
  for (std::size_t size : kSizes) {
    const double every64 = bw[k++], whole = bw[k++], nt = bw[k++];
    benchutil::row("%8s %16.2f %18.2f %10.2f",
                   benchutil::human_size(size).c_str(), every64, whole, nt);
  }
  benchutil::note("paper: bandwidth peaks around a 256 B interval; "
                  "flush-during vs flush-after are equivalent for medium "
                  "writes; beyond ~8 MB flushing after the write loses to "
                  "cache-capacity evictions");
  return 0;
}
