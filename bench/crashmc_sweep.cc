// Crash-point model-checking sweep over every persistent store.
//
// For each store the explorer runs its deterministic workload once to
// count persist events, then re-runs it crashing at enumerated points
// (exhaustive below the threshold, seeded-sampled above), re-opens the
// store and evaluates its recovery invariants. Reports points-explored
// per second; exits non-zero if any invariant is violated.
//
// Usage: crashmc_sweep [--points N] [--seed S] [--store NAME] [--trace F]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/crashmc/explorer.h"
#include "src/crashmc/workloads.h"
#include "telemetry/session.h"
#include "telemetry/trace.h"

namespace {

// Records every fired crash point as a Chrome-trace instant, one trace
// "process" per store. Attached to each platform the explorer builds.
class CrashTraceSink : public xp::hw::TelemetrySink {
 public:
  explicit CrashTraceSink(xp::telemetry::TraceWriter* writer)
      : writer_(writer) {}

  void begin_store(const std::string& name) {
    pid_ = next_pid_++;
    writer_->name_process(pid_, name);
  }

  void crash_fired(xp::sim::Time t, std::uint64_t seq) override {
    char args[64];
    std::snprintf(args, sizeof(args), "{\"seq\":%llu}",
                  static_cast<unsigned long long>(seq));
    writer_->instant("crash_point", "crashmc", t, pid_, 0, args);
  }

 private:
  xp::telemetry::TraceWriter* writer_;
  unsigned pid_ = 0;
  unsigned next_pid_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = xp::telemetry::trace_path_from_args(argc, argv);
  std::uint64_t points = 200;
  std::uint64_t seed = 1;
  std::string only;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--points") == 0 && i + 1 < argc) {
      points = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      only = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      ++i;  // value already consumed by trace_path_from_args
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      // parsed by trace_path_from_args
    } else {
      std::fprintf(stderr,
                   "usage: %s [--points N] [--seed S] [--store NAME] "
                   "[--trace FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  xp::telemetry::TraceWriter writer;
  CrashTraceSink sink(&writer);

  xp::crashmc::Options opts;
  opts.max_exhaustive = points;
  opts.samples = points;
  opts.seed = seed;
  if (!trace_path.empty()) opts.sink = &sink;

  std::printf("# crashmc_sweep: <= %llu crash points per store, seed %llu\n",
              static_cast<unsigned long long>(points),
              static_cast<unsigned long long>(seed));
  std::printf("%-14s %10s %10s %10s %11s %12s\n", "store", "events",
              "points", "fired", "violations", "points/sec");

  bool failed = false;
  std::uint64_t total_points = 0;
  for (auto& target : xp::crashmc::all_targets()) {
    if (!only.empty() && target->name() != only) continue;
    if (opts.sink) sink.begin_store(target->name());
    const xp::crashmc::Result r = xp::crashmc::explore(*target, opts);
    std::printf("%-14s %10llu %10llu %10llu %11zu %12.1f\n",
                target->name().c_str(),
                static_cast<unsigned long long>(r.total_events),
                static_cast<unsigned long long>(r.points_explored),
                static_cast<unsigned long long>(r.crashes_fired),
                r.violations.size(), r.points_per_sec());
    total_points += r.points_explored;
    for (const auto& v : r.violations) {
      std::fprintf(stderr, "VIOLATION %s @ crash point %llu: %s\n",
                   target->name().c_str(),
                   static_cast<unsigned long long>(v.point),
                   v.detail.c_str());
      failed = true;
    }
  }
  std::printf("# total crash points explored: %llu\n",
              static_cast<unsigned long long>(total_points));
  if (!trace_path.empty()) {
    if (!writer.write_file(trace_path)) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_path.c_str());
      return 2;
    }
    std::printf("# trace: %s (%zu events)\n", trace_path.c_str(),
                writer.events());
  }
  return failed ? 1 : 0;
}
