// Crash-point model-checking sweep over every persistent store.
//
// For each store the explorer runs its deterministic workload once to
// count persist events, then re-runs it crashing at enumerated points
// (exhaustive below the threshold, seeded-sampled above), re-opens the
// store and evaluates its recovery invariants. Reports points-explored
// per second; exits non-zero if any invariant is violated.
//
// Usage: crashmc_sweep [--points N] [--seed S] [--store NAME]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/crashmc/explorer.h"
#include "src/crashmc/workloads.h"

int main(int argc, char** argv) {
  std::uint64_t points = 200;
  std::uint64_t seed = 1;
  std::string only;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--points") == 0 && i + 1 < argc) {
      points = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      only = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--points N] [--seed S] [--store NAME]\n",
                   argv[0]);
      return 2;
    }
  }

  xp::crashmc::Options opts;
  opts.max_exhaustive = points;
  opts.samples = points;
  opts.seed = seed;

  std::printf("# crashmc_sweep: <= %llu crash points per store, seed %llu\n",
              static_cast<unsigned long long>(points),
              static_cast<unsigned long long>(seed));
  std::printf("%-14s %10s %10s %10s %11s %12s\n", "store", "events",
              "points", "fired", "violations", "points/sec");

  bool failed = false;
  std::uint64_t total_points = 0;
  for (auto& target : xp::crashmc::all_targets()) {
    if (!only.empty() && target->name() != only) continue;
    const xp::crashmc::Result r = xp::crashmc::explore(*target, opts);
    std::printf("%-14s %10llu %10llu %10llu %11zu %12.1f\n",
                target->name().c_str(),
                static_cast<unsigned long long>(r.total_events),
                static_cast<unsigned long long>(r.points_explored),
                static_cast<unsigned long long>(r.crashes_fired),
                r.violations.size(), r.points_per_sec());
    total_points += r.points_explored;
    for (const auto& v : r.violations) {
      std::fprintf(stderr, "VIOLATION %s @ crash point %llu: %s\n",
                   target->name().c_str(),
                   static_cast<unsigned long long>(v.point),
                   v.detail.c_str());
      failed = true;
    }
  }
  std::printf("# total crash points explored: %llu\n",
              static_cast<unsigned long long>(total_points));
  return failed ? 1 : 0;
}
