// Crash-point model-checking sweep over every persistent store.
//
// For each store the explorer runs its deterministic workload once to
// count persist events, then re-runs it crashing at enumerated points
// (exhaustive below the threshold, seeded-sampled above), re-opens the
// store and evaluates its recovery invariants. Reports points-explored
// per second; exits non-zero if any invariant is violated.
//
// --faults switches to the media fault-injection campaign: instead of
// crashing at persist events it poisons the XPLine under enumerated
// device reads (plus --poison-points at-rest scatter points), runs each
// store's repair path, and checks the containment contract — recovery or
// a typed error, never silent corruption. --checksums turns on the
// optional WAL/log record checksums for the stores that have them.
//
// Usage: crashmc_sweep [--points N] [--seed S] [--store NAME] [--trace F]
//                      [--faults] [--poison-points N] [--checksums]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/crashmc/explorer.h"
#include "src/crashmc/faultcampaign.h"
#include "src/crashmc/workloads.h"
#include "telemetry/session.h"
#include "telemetry/trace.h"

namespace {

// Records every fired crash point as a Chrome-trace instant, one trace
// "process" per store. Attached to each platform the explorer builds.
class CrashTraceSink : public xp::hw::TelemetrySink {
 public:
  explicit CrashTraceSink(xp::telemetry::TraceWriter* writer)
      : writer_(writer) {}

  void begin_store(const std::string& name) {
    pid_ = next_pid_++;
    writer_->name_process(pid_, name);
  }

  void crash_fired(xp::sim::Time t, std::uint64_t seq) override {
    char args[64];
    std::snprintf(args, sizeof(args), "{\"seq\":%llu}",
                  static_cast<unsigned long long>(seq));
    writer_->instant("crash_point", "crashmc", t, pid_, 0, args);
  }

  void media_fault(xp::hw::MediaFaultKind kind, xp::sim::Time t,
                   unsigned /*socket*/, unsigned channel,
                   std::uint64_t line_off) override {
    const char* name = "media_fault";
    switch (kind) {
      case xp::hw::MediaFaultKind::kCorrected: name = "ecc_corrected"; break;
      case xp::hw::MediaFaultKind::kPoisoned: name = "poisoned"; break;
      case xp::hw::MediaFaultKind::kUncorrectable:
        name = "uncorrectable";
        break;
      case xp::hw::MediaFaultKind::kClearedByWrite:
        name = "cleared_by_write";
        break;
      case xp::hw::MediaFaultKind::kScrubFound: name = "scrub_found"; break;
    }
    char args[64];
    std::snprintf(args, sizeof(args), "{\"line_off\":%llu}",
                  static_cast<unsigned long long>(line_off));
    writer_->instant(name, "media_fault", t, pid_, channel, args);
  }

 private:
  xp::telemetry::TraceWriter* writer_;
  unsigned pid_ = 0;
  unsigned next_pid_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = xp::telemetry::trace_path_from_args(argc, argv);
  std::uint64_t points = 200;
  std::uint64_t seed = 1;
  std::uint64_t poison_points = 64;
  bool faults = false;
  bool checksums = false;
  std::string only;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--points") == 0 && i + 1 < argc) {
      points = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      only = argv[++i];
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      faults = true;
    } else if (std::strcmp(argv[i], "--poison-points") == 0 && i + 1 < argc) {
      poison_points = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--checksums") == 0) {
      checksums = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      ++i;  // value already consumed by trace_path_from_args
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      // parsed by trace_path_from_args
    } else {
      std::fprintf(stderr,
                   "usage: %s [--points N] [--seed S] [--store NAME] "
                   "[--trace FILE] [--faults] [--poison-points N] "
                   "[--checksums]\n",
                   argv[0]);
      return 2;
    }
  }

  xp::telemetry::TraceWriter writer;
  CrashTraceSink sink(&writer);

  if (faults) {
    xp::crashmc::FaultOptions fopts;
    fopts.max_exhaustive = points;
    fopts.samples = points;
    fopts.poison_points = poison_points;
    fopts.seed = seed;
    if (!trace_path.empty()) fopts.sink = &sink;

    std::printf(
        "# crashmc_sweep --faults: <= %llu read points + %llu at-rest "
        "points per store, seed %llu, checksums %s\n",
        static_cast<unsigned long long>(points),
        static_cast<unsigned long long>(poison_points),
        static_cast<unsigned long long>(seed), checksums ? "on" : "off");
    std::printf("%-14s %10s %10s %10s %10s %11s %12s\n", "store", "reads",
                "points", "fired", "poisoned", "violations", "points/sec");

    bool failed = false;
    std::uint64_t total_points = 0;
    for (auto& target : xp::crashmc::all_targets(checksums)) {
      if (!only.empty() && target->name() != only) continue;
      if (fopts.sink) sink.begin_store(target->name());
      const xp::crashmc::FaultResult r =
          xp::crashmc::explore_faults(*target, fopts);
      std::printf("%-14s %10llu %10llu %10llu %10llu %11zu %12.1f\n",
                  target->name().c_str(),
                  static_cast<unsigned long long>(r.total_reads),
                  static_cast<unsigned long long>(r.points_explored),
                  static_cast<unsigned long long>(r.faults_fired),
                  static_cast<unsigned long long>(r.lines_poisoned),
                  r.violations.size(),
                  r.seconds > 0.0
                      ? static_cast<double>(r.points_explored) / r.seconds
                      : 0.0);
      total_points += r.points_explored;
      for (const auto& v : r.violations) {
        std::fprintf(stderr, "VIOLATION %s @ fault point %llu: %s\n",
                     target->name().c_str(),
                     static_cast<unsigned long long>(v.point),
                     v.detail.c_str());
        failed = true;
      }
    }
    std::printf("# total fault points explored: %llu\n",
                static_cast<unsigned long long>(total_points));
    if (!trace_path.empty()) {
      if (!writer.write_file(trace_path)) {
        std::fprintf(stderr, "failed to write trace to %s\n",
                     trace_path.c_str());
        return 2;
      }
      std::printf("# trace: %s (%zu events)\n", trace_path.c_str(),
                  writer.events());
    }
    return failed ? 1 : 0;
  }

  xp::crashmc::Options opts;
  opts.max_exhaustive = points;
  opts.samples = points;
  opts.seed = seed;
  if (!trace_path.empty()) opts.sink = &sink;

  std::printf("# crashmc_sweep: <= %llu crash points per store, seed %llu\n",
              static_cast<unsigned long long>(points),
              static_cast<unsigned long long>(seed));
  std::printf("%-14s %10s %10s %10s %11s %12s\n", "store", "events",
              "points", "fired", "violations", "points/sec");

  bool failed = false;
  std::uint64_t total_points = 0;
  for (auto& target : xp::crashmc::all_targets()) {
    if (!only.empty() && target->name() != only) continue;
    if (opts.sink) sink.begin_store(target->name());
    const xp::crashmc::Result r = xp::crashmc::explore(*target, opts);
    std::printf("%-14s %10llu %10llu %10llu %11zu %12.1f\n",
                target->name().c_str(),
                static_cast<unsigned long long>(r.total_events),
                static_cast<unsigned long long>(r.points_explored),
                static_cast<unsigned long long>(r.crashes_fired),
                r.violations.size(), r.points_per_sec());
    total_points += r.points_explored;
    for (const auto& v : r.violations) {
      std::fprintf(stderr, "VIOLATION %s @ crash point %llu: %s\n",
                   target->name().c_str(),
                   static_cast<unsigned long long>(v.point),
                   v.detail.c_str());
      failed = true;
    }
  }
  std::printf("# total crash points explored: %llu\n",
              static_cast<unsigned long long>(total_points));
  if (!trace_path.empty()) {
    if (!writer.write_file(trace_path)) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_path.c_str());
      return 2;
    }
    std::printf("# trace: %s (%zu events)\n", trace_path.c_str(),
                writer.events());
  }
  return failed ? 1 : 0;
}
