// Ablation: eADR — the persistence domain extended to the caches.
//
// Paper §6: "there are proposals to extend the ADR down to the last-level
// cache [43, 67] which would eliminate the problem" (of needing flushes).
// With eADR, software can drop every clwb and rely on plain stores +
// fences; this bench measures what that buys a transaction-like workload
// (store + persist of small records) and what it does to EWR: without
// explicit flushes, write-backs leave the cache in shuffled order, so
// the XPBuffer sees less sequential traffic.
#include "bench/bench_util.h"
#include "lattester/runner.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

benchutil::TraceOpts g_trace;
std::size_t g_point = 0;

lat::Result run_case(bool eadr, lat::Op op) {
  hw::Timing timing;
  timing.eadr = eadr;
  hw::Platform platform(timing);
  const auto tel = g_trace.session(platform, g_point++);
  hw::NamespaceOptions o;
  o.device = hw::Device::kXp;
  o.size = 8ull << 30;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);
  lat::WorkloadSpec spec;
  spec.op = op;
  spec.pattern = lat::Pattern::kSeq;
  spec.access_size = 256;
  spec.threads = 6;
  spec.fence_each_op = true;
  spec.region_size = o.size;
  // Cached stores must stream well past the LLC before the
  // natural-eviction steady state is reached.
  spec.warmup = op == lat::Op::kStore ? sim::ms(14) : sim::us(50);
  spec.duration = sim::ms(4);
  return lat::run(platform, ns, spec);
}

}  // namespace

int main(int argc, char** argv) {
  g_trace = benchutil::TraceOpts::from_args(argc, argv);
  benchutil::banner("Ablation",
                    "eADR: persistence without flushes (256 B records, "
                    "6 threads, fence per record)");
  benchutil::row("%-26s %12s %8s", "persistence strategy", "GB/s", "EWR");

  const lat::Result clwb = run_case(false, lat::Op::kStoreClwb);
  benchutil::row("%-26s %12.2f %8.2f", "ADR: store+clwb+sfence",
                 clwb.bandwidth_gbps, clwb.ewr);
  const lat::Result nt = run_case(false, lat::Op::kNtStore);
  benchutil::row("%-26s %12.2f %8.2f", "ADR: ntstore+sfence",
                 nt.bandwidth_gbps, nt.ewr);
  const lat::Result eadr = run_case(true, lat::Op::kStore);
  benchutil::row("%-26s %12.2f %8.2f", "eADR: store+sfence only",
                 eadr.bandwidth_gbps, eadr.ewr);

  benchutil::note("with eADR plain stores are durable (tests verify), and "
                  "per-record latency drops to cache speed — but natural "
                  "evictions shuffle the write-back stream, so sustained "
                  "bandwidth is EWR-bound unless software still flushes "
                  "large sequential runs (the paper's guideline #2 "
                  "partially survives eADR)");
  return 0;
}
