// Reproduces paper Figure 6: latency under varying load.
//
// Classic loaded-latency methodology (as in Intel MLC): N-1 loader
// threads issue pipelined accesses with a tunable inter-op delay to set
// the offered load; one probe thread issues dependent (fenced, one at a
// time) accesses and records true latency. Sweeping the delay traces the
// latency/bandwidth curve up to the queueing wall. Every (curve, delay)
// point owns its platform and scheduler, so the sweep fans out over the
// host-parallel pool.
#include <vector>

#include "bench/bench_util.h"
#include "sim/histogram.h"
#include "sim/scheduler.h"
#include "sweep/sweep.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

struct Point {
  double bw_gbps;
  double lat_ns;
};

struct Cfg {
  hw::Device device;
  bool random;
  bool write;
  unsigned threads;
  double delay_ns;
};

benchutil::TraceOpts g_trace;

Point measure(const Cfg& c, std::size_t idx) {
  hw::Platform platform;
  const auto tel = g_trace.session(platform, idx);
  hw::NamespaceOptions o;
  o.device = c.device;
  o.size = 8ull << 30;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);

  const sim::Time window = sim::ms(1);
  const std::uint64_t slots = o.size / 256;
  sim::Scheduler sched;
  std::vector<std::uint64_t> bytes(c.threads, 0);
  sim::Histogram probe_lat;

  for (unsigned j = 0; j < c.threads; ++j) {
    const bool is_probe = j == 0;
    sched.spawn(
        {.id = j, .socket = 0,
         .mlp = is_probe ? 1u : platform.timing().default_mlp,
         .seed = j + 3},
        [&, j, is_probe, cursor = std::uint64_t(j) * (o.size / c.threads)](
            sim::ThreadCtx& ctx) mutable {
          if (ctx.now() >= window) return false;
          std::uint64_t off;
          if (c.random) {
            off = ctx.rng().uniform(slots) * 256;
          } else {
            off = cursor;
            // True sequential: 64 B reads walk every cache line (so the
            // XPBuffer sees 4 hits per line); writes walk 256 B records.
            cursor = (cursor + (c.write ? 256 : 64)) % (o.size - 256);
          }
          std::uint8_t buf[256] = {1};
          const sim::Time t0 = ctx.now();
          if (c.write) {
            ns.ntstore(ctx, off, std::span<const std::uint8_t>(buf, 256));
          } else {
            ns.load(ctx, off, std::span<std::uint8_t>(buf, 64));
          }
          if (is_probe) {
            ns.mfence(ctx);
            probe_lat.record(ctx.now() - t0);
          } else {
            bytes[j] += c.write ? 256 : 64;
            if (c.delay_ns > 0) ctx.advance_by(sim::ns(c.delay_ns));
          }
          return true;
        });
  }
  sched.run();
  std::uint64_t total = 0;
  for (auto b : bytes) total += b;
  // Probe latency reported per 64 B (reads) / per 256 B op (writes).
  return {sim::gbps(total, window), probe_lat.mean() / 1e3};
}

struct Curve {
  const char* name;
  hw::Device device;
  bool random;
  bool write;
  unsigned threads;
};

constexpr Curve kCurves[] = {
    {"DRAM read, sequential (16 threads)", hw::Device::kDram, false, false,
     16},
    {"DRAM read, random (16 threads)", hw::Device::kDram, true, false, 16},
    {"Optane read, sequential (16 threads)", hw::Device::kXp, false, false,
     16},
    {"Optane read, random (16 threads)", hw::Device::kXp, true, false, 16},
    {"DRAM ntstore, sequential (4 threads)", hw::Device::kDram, false, true,
     4},
    {"Optane ntstore, sequential (4 threads)", hw::Device::kXp, false, true,
     4},
    {"Optane ntstore, random (4 threads)", hw::Device::kXp, true, true, 4},
};
constexpr double kDelays[] = {0.0,    50.0,    150.0,   400.0,
                              1000.0, 4000.0, 20000.0, 80000.0};

}  // namespace

int main(int argc, char** argv) {
  sweep::Pool pool(sweep::jobs_from_args(argc, argv));
  g_trace = benchutil::TraceOpts::from_args(argc, argv);

  sweep::Grid<Cfg> grid;
  for (const Curve& c : kCurves)
    for (double delay_ns : kDelays)
      grid.add({c.device, c.random, c.write, c.threads, delay_ns});
  const std::vector<Point> points = sweep::run_points(pool, grid, measure);

  benchutil::banner("Figure 6",
                    "Loaded latency: probe thread + delay-throttled "
                    "loaders");
  std::size_t k = 0;
  for (const Curve& c : kCurves) {
    benchutil::row("%s", c.name);
    benchutil::row("%12s %12s %14s", "delay(ns)", "BW(GB/s)", "latency(ns)");
    for (double delay_ns : kDelays) {
      const Point p = points[k++];
      benchutil::row("%12.0f %12.2f %14.0f", delay_ns, p.bw_gbps, p.lat_ns);
    }
  }
  benchutil::note("paper shapes: latency flat at low load, rising sharply "
                  "at the bandwidth wall; the wall comes much earlier for "
                  "Optane; Optane strongly pattern-dependent, DRAM not");
  return 0;
}
