// Host-side performance of the simulator itself (google-benchmark).
//
// Unlike the fig* benches (which report *simulated* time), this measures
// how fast the simulation runs on the host — useful for keeping the
// figure sweeps cheap and for spotting host-side regressions in the hot
// access paths.
#include <benchmark/benchmark.h>

#include <vector>

#include "xpsim/platform.h"

namespace {

using namespace xp;

void BM_Load64(benchmark::State& state) {
  hw::Platform platform;
  hw::NamespaceOptions o;
  o.device = hw::Device::kXp;
  o.size = 1ull << 30;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);
  sim::ThreadCtx t({.id = 0, .socket = 0, .mlp = 20, .seed = 1});
  std::vector<std::uint8_t> buf(64);
  std::uint64_t off = 0;
  for (auto _ : state) {
    ns.load(t, off, buf);
    off = (off + 64) & ((1ull << 30) - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Load64);

void BM_NtStore256(benchmark::State& state) {
  hw::Platform platform;
  hw::NamespaceOptions o;
  o.device = hw::Device::kXp;
  o.size = 1ull << 30;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);
  sim::ThreadCtx t({.id = 0, .socket = 0, .mlp = 20, .seed = 1});
  std::vector<std::uint8_t> buf(256, 0xaa);
  std::uint64_t off = 0;
  for (auto _ : state) {
    ns.ntstore(t, off, buf);
    off = (off + 256) & ((1ull << 30) - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NtStore256);

void BM_StorePersist64(benchmark::State& state) {
  hw::Platform platform;
  auto& ns = platform.optane(64 << 20);
  sim::ThreadCtx t({.id = 0, .socket = 0, .mlp = 20, .seed = 1});
  std::vector<std::uint8_t> buf(64, 0x5a);
  std::uint64_t off = 0;
  for (auto _ : state) {
    ns.store_persist(t, off, buf);
    off = (off + 64) & ((64ull << 20) - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StorePersist64);

void BM_SchedulerStep(benchmark::State& state) {
  // Round-trip cost of the scheduler with 8 idle-spinning threads.
  const std::int64_t steps = state.range(0);
  for (auto _ : state) {
    sim::Scheduler sched;
    for (unsigned i = 0; i < 8; ++i) {
      sched.spawn({.id = i, .socket = 0, .mlp = 1, .seed = i},
                  [n = std::int64_t{0}, steps](sim::ThreadCtx& ctx) mutable {
                    ctx.advance_by(sim::ns(10));
                    return ++n < steps;
                  });
    }
    sched.run();
  }
  state.SetItemsProcessed(state.iterations() * steps * 8);
}
BENCHMARK(BM_SchedulerStep)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
