// YCSB-style mixed-workload sweep over the four store families and the
// sharded frontend (src/workload/). Writes BENCH_YCSB.json:
//
//  * workloads A-F per family, stock single-shard configuration —
//    the paper's device-level rules under skewed mixed traffic;
//  * lsmkv workload A (update-heavy) at shards=1 vs shards=4 with the
//    fast paths on: per-DIMM sharding + writer lanes (§5.3/§5.4)
//    scaling headline;
//  * lsmkv workload B (95% read) stock vs read-path + sharding: the
//    >= 2x acceptance headline.
//
// Rows carry per-workload simulated kops/s, p50/p99 op latency, the
// run checksum (order-insensitive digest of every op result), interval
// EWR/ERR, and per-shard EWR/ERR read from each shard's own DIMM
// counters (shards are non-interleaved, one DIMM each). All metrics
// are simulated quantities: the grid runs once serially and once with
// --jobs N and the binary exits non-zero if any row differs (the
// workload engine's any-`--jobs` byte-identical contract).
//
// With --faults the binary appends a degraded-mode grid: the same
// replicated frontend measured healthy vs. with one of four shards
// quarantined + poisoned mid-service (online rebuild on the engine's
// background thread), plus a fault-free replicas=1 vs replicas=2
// result-identity check. Gates (exit non-zero on violation): zero
// silent corruptions under the host-side read oracle, degraded
// throughput >= 0.6x healthy, the rebuilt shard byte-identical to its
// surviving replica, and the identity checksums equal.
//
// Usage: bench_ycsb [--mini] [--faults] [--jobs N] [--out FILE]
//                   [--host-cores N]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "sweep/sweep.h"
#include "telemetry/registry.h"
#include "telemetry/session.h"
#include "workload/engine.h"
#include "workload/shard.h"
#include "xpsim/fault.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

struct Cfg {
  workload::StoreKind kind = workload::StoreKind::kLsmkv;
  char wl = 'A';
  unsigned shards = 1;
  unsigned threads = 4;
  bool knobs = false;  // write combining + read path + lanes (+ bg lsmkv)
  std::uint64_t records = 600;
  std::uint64_t ops = 1500;
};

struct Row {
  std::string store;
  std::string name;
  std::uint64_t ops = 0;
  std::uint64_t read_hits = 0;
  std::uint64_t checksum = 0;
  std::uint64_t p50 = 0, p99 = 0;  // simulated ps
  double kops = 0;
  double ewr = 0, err = 0;
  std::vector<double> shard_ewr, shard_err;
};

// Bitwise-equal doubles, with NaN == NaN (idle shards report NaN).
bool deq(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool an = std::isnan(a[i]), bn = std::isnan(b[i]);
    if (an != bn || (!an && a[i] != b[i])) return false;
  }
  return true;
}

bool rows_equal(const std::vector<Row>& a, const std::vector<Row>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].store != b[i].store || a[i].name != b[i].name ||
        a[i].ops != b[i].ops || a[i].read_hits != b[i].read_hits ||
        a[i].checksum != b[i].checksum || a[i].p50 != b[i].p50 ||
        a[i].p99 != b[i].p99 || a[i].kops != b[i].kops ||
        a[i].ewr != b[i].ewr || a[i].err != b[i].err ||
        !deq(a[i].shard_ewr, b[i].shard_ewr) ||
        !deq(a[i].shard_err, b[i].shard_err))
      return false;
  }
  return true;
}

void drain_xp_buffers(hw::Platform& p, sim::Time t) {
  for (unsigned s = 0; s < p.timing().sockets; ++s)
    for (unsigned c = 0; c < p.timing().channels_per_socket; ++c) {
      auto& d = p.xp_dimm(s, c);
      d.buffer().flush_all(t, d.counters());
    }
}

// The read benches' regime: LLC below the working set so repeat reads
// actually reach the DIMMs (paper §5.1); used for every YCSB row so
// read-heavy and update-heavy mixes are measured on one platform.
hw::Timing small_llc_timing() {
  hw::Timing tm;
  tm.llc_lines = 512;  // 32 KB
  return tm;
}

workload::StoreTuning tuning_for(const Cfg& c) {
  workload::StoreTuning t;
  t.memtable_bytes = 16 << 10;  // mixed traffic must reach SSTables
  if (c.knobs) {
    t.write_combine = true;
    t.read_path = true;
    t.read_cache_lines = 2048;
    t.background_compaction = c.kind == workload::StoreKind::kLsmkv;
  }
  return t;
}

Row run_point(const Cfg& c) {
  Row r;
  r.store = workload::store_kind_name(c.kind);
  char name[96];
  std::snprintf(name, sizeof name, "%c-s%u-t%u-%s", c.wl, c.shards,
                c.threads, c.knobs ? "knobs" : "stock");
  r.name = name;

  hw::Platform platform(small_llc_timing(), /*seed=*/1);
  const auto shard_ns = workload::ShardedStore::make_namespaces(
      platform, c.shards, 64ull << 20);
  workload::ShardOptions so;
  so.kind = c.kind;
  so.tuning = tuning_for(c);
  so.writer_lanes = c.knobs;
  workload::ShardedStore store(shard_ns, so);

  workload::Spec spec = workload::ycsb(c.wl);
  spec.records = c.records;
  spec.ops = c.ops;

  sim::ThreadCtx setup({.id = 100, .socket = 0, .mlp = 8, .seed = 1});
  store.create(setup);
  workload::load(store, spec, setup);
  platform.reset_timing();
  setup.drain();
  drain_xp_buffers(platform, setup.now());

  const auto s0 = telemetry::Snapshot::capture(platform);
  workload::EngineOptions eo;
  eo.threads = c.threads;
  eo.background_thread = so.tuning.background_compaction;
  const workload::Result res = workload::run(store, spec, eo);
  drain_xp_buffers(platform, res.elapsed);
  const telemetry::Delta d = telemetry::Snapshot::capture(platform) - s0;

  r.ops = res.ops;
  r.read_hits = res.read_hits;
  r.checksum = res.checksum;
  r.p50 = res.p50;
  r.p99 = res.p99;
  r.kops = res.kops();
  const hw::XpCounters xc = d.xp_total();
  r.ewr = xc.ewr();
  r.err = xc.err();
  const unsigned channels = platform.timing().channels_per_socket;
  for (unsigned s = 0; s < c.shards; ++s) {
    // Shard s lives alone on DIMM (socket 0, channel s % channels).
    const hw::XpCounters& sc = d.xp[0][s % channels].counters;
    r.shard_ewr.push_back(sc.media_write_bytes == 0 ? std::nan("")
                                                    : sc.ewr());
    r.shard_err.push_back(sc.imc_read_bytes == 0 ? std::nan("") : sc.err());
  }
  return r;
}

void json_rows(std::FILE* f, const std::vector<Row>& rows) {
  auto arr = [&](const std::vector<double>& v) {
    std::fprintf(f, "[");
    for (std::size_t i = 0; i < v.size(); ++i)
      if (std::isnan(v[i]))
        std::fprintf(f, "null%s", i + 1 < v.size() ? "," : "");
      else
        std::fprintf(f, "%.4f%s", v[i], i + 1 < v.size() ? "," : "");
    std::fprintf(f, "]");
  };
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"store\": \"%s\", \"name\": \"%s\", \"ops\": %llu, "
                 "\"checksum\": \"%016llx\", \"kops\": %.2f, "
                 "\"p50_ns\": %.1f, \"p99_ns\": %.1f, "
                 "\"ewr\": %.4f, \"err\": %.4f, \"shard_ewr\": ",
                 r.store.c_str(), r.name.c_str(),
                 static_cast<unsigned long long>(r.ops),
                 static_cast<unsigned long long>(r.checksum), r.kops,
                 sim::to_ns(r.p50), sim::to_ns(r.p99),
                 std::isfinite(r.ewr) ? r.ewr : -1.0,
                 std::isfinite(r.err) ? r.err : -1.0);
    arr(r.shard_ewr);
    std::fprintf(f, ", \"shard_err\": ");
    arr(r.shard_err);
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
}

const Row* find_row(const std::vector<Row>& rows, const char* store,
                    const char* name) {
  for (const Row& r : rows)
    if (r.store == store && r.name == name) return &r;
  return nullptr;
}

// ---- --faults: degraded-mode grid and resilience gates ------------------

// Poison up to `max_lines` nonzero XPLines of the namespace image, so
// the injected faults sit under live store data.
unsigned poison_live_lines(hw::PmemNamespace& ns, unsigned max_lines,
                           unsigned stride = 1) {
  std::vector<std::uint8_t> img(ns.size());
  ns.peek(0, img);
  hw::FaultInjector inj(ns.platform());
  unsigned planted = 0, seen = 0;
  for (std::uint64_t off = 0; off + hw::Platform::kXpLineBytes <= img.size();
       off += hw::Platform::kXpLineBytes) {
    bool live = false;
    for (unsigned b = 0; b < hw::Platform::kXpLineBytes && !live; ++b)
      live = img[off + b] != 0;
    if (!live) continue;
    if (seen++ % stride != 0) continue;
    inj.poison(ns, off);
    if (++planted >= max_lines) break;
  }
  return planted;
}

struct FaultRow {
  std::string name;
  double kops = 0;
  std::uint64_t ops = 0;
  std::uint64_t checksum = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t typed_errors = 0;
  std::uint64_t failovers = 0;
  std::uint64_t retries = 0;
  workload::ResilienceStats stats;
  bool healthy_at_end = false;
  bool rebuild_verified = true;  // vacuous on fault-free rows
};

FaultRow run_fault_point(const char* name, bool degraded, unsigned replicas,
                         unsigned threads, std::uint64_t records,
                         std::uint64_t ops) {
  FaultRow row;
  row.name = name;

  hw::Platform platform(small_llc_timing(), /*seed=*/1);
  const auto shard_ns =
      workload::ShardedStore::make_namespaces(platform, 4, 64ull << 20);
  workload::ShardOptions so;
  so.kind = workload::StoreKind::kLsmkv;
  so.tuning = tuning_for({.knobs = true});
  so.replicas = replicas;
  workload::ShardedStore store(shard_ns, so);

  workload::Spec spec = workload::ycsb('B');
  spec.records = records;
  spec.ops = ops;

  sim::ThreadCtx setup({.id = 100, .socket = 0, .mlp = 8, .seed = 1});
  store.create(setup);
  workload::load(store, spec, setup);
  if (degraded) {
    // One of four failure domains goes bad under live traffic: the shard
    // is pulled from service and its DIMM carries at-rest poison the
    // online rebuild must scrub and heal.
    store.quarantine_shard(setup, 0);
    poison_live_lines(*shard_ns[0], 16, /*stride=*/4);
  }
  platform.reset_timing();

  workload::EngineOptions eo;
  eo.threads = threads;
  eo.background_thread = true;
  eo.validate_reads = true;
  const workload::Result res = workload::run(store, spec, eo);

  row.ops = res.ops;
  row.kops = res.kops();
  row.checksum = res.checksum;
  row.corruptions = res.corruptions;
  row.typed_errors = res.typed_errors;
  row.failovers = res.failovers;
  row.retries = res.retries;

  // Finish any repair still in flight, then audit the outcome.
  sim::ThreadCtx after({.id = 200, .socket = 0, .mlp = 8, .seed = 2});
  for (int turn = 0; turn < 20000 && !store.all_healthy(); ++turn)
    store.background_turn(after);
  store.flush_pending(after);
  row.healthy_at_end = store.all_healthy() && store.check(after).ok();
  row.stats = store.resilience();

  if (degraded && row.healthy_at_end) {
    // The rebuilt store's keyspace must byte-match the surviving copies
    // it was re-silvered from: store 0 hosts logical shard 0 (other copy
    // on store 1) and logical shard 3 (other copy on store 3).
    std::size_t compared = 0;
    const auto rebuilt =
        store.shard(0).scan(after, "", static_cast<std::size_t>(-1));
    for (const auto& [k, v] : rebuilt) {
      const unsigned s = workload::shard_of(k, 4);
      if (s != 0 && s != 3) {
        row.rebuild_verified = false;  // hosting a shard it doesn't own
        continue;
      }
      std::string other;
      if (!store.shard(s == 0 ? 1 : 3).get(after, k, &other) || other != v)
        row.rebuild_verified = false;
      ++compared;
    }
    if (compared == 0) row.rebuild_verified = false;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_YCSB.json";
  bool mini = false;
  bool faults = false;
  unsigned host_cores = std::thread::hardware_concurrency();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[i + 1];
    if (std::strcmp(argv[i], "--mini") == 0) mini = true;
    if (std::strcmp(argv[i], "--faults") == 0) faults = true;
    if (std::strcmp(argv[i], "--host-cores") == 0 && i + 1 < argc)
      host_cores = static_cast<unsigned>(std::atoi(argv[i + 1]));
  }
  const unsigned jobs = sweep::jobs_from_args(argc, argv);

  benchutil::banner("bench_ycsb",
                    "YCSB A-F over the four stores + sharded frontend");
  benchutil::note("host cores %u, jobs %u%s", host_cores, jobs,
                  mini ? ", mini" : "");

  // Working sets sized past the 32 KB LLC and the aggregate XPBuffer so
  // the stock read path pays media loads (the regime §5.1 targets).
  const std::uint64_t recs = mini ? 1200 : 2000;
  const std::uint64_t ops = mini ? 2000 : 4000;

  sweep::Grid<Cfg> grid;
  // Stock single-shard A-F per family (lsmkv-only in mini runs; the
  // other families ride in the full grid and the differential oracle).
  const auto families =
      mini ? std::vector<workload::StoreKind>{workload::StoreKind::kLsmkv}
           : std::vector<workload::StoreKind>{
                 workload::StoreKind::kLsmkv, workload::StoreKind::kCmap,
                 workload::StoreKind::kStree, workload::StoreKind::kNova};
  const auto workloads = mini ? std::vector<char>{'A', 'B'}
                              : std::vector<char>{'A', 'B', 'C',
                                                  'D', 'E', 'F'};
  for (workload::StoreKind k : families)
    for (char wl : workloads) {
      // lsmkv range scans merge the memtable and every run, so E's 95%
      // scan mix is ~O(records) per op there; a smaller population
      // keeps the row meaningful without dominating the grid's runtime.
      const bool heavy_scan = wl == 'E' && k == workload::StoreKind::kLsmkv;
      grid.add({.kind = k, .wl = wl,
                .records = heavy_scan ? recs / 4 : recs,
                .ops = heavy_scan ? ops / 4 : ops});
    }

  // Headline rows (always present — CI gates on them).
  // 1) update-heavy scaling: A, knobs on, 8 threads, shards 1 vs 4.
  for (unsigned shards : {1u, 4u})
    grid.add({.kind = workload::StoreKind::kLsmkv, .wl = 'A',
              .shards = shards, .threads = 8, .knobs = true,
              .records = recs, .ops = ops});
  // 2) 95%-read speedup: B stock single shard vs read-path + 4 shards.
  grid.add({.kind = workload::StoreKind::kLsmkv, .wl = 'B', .shards = 1,
            .threads = 8, .knobs = false, .records = recs, .ops = ops});
  grid.add({.kind = workload::StoreKind::kLsmkv, .wl = 'B', .shards = 4,
            .threads = 8, .knobs = true, .records = recs, .ops = ops});

  sweep::Pool serial(1);
  sweep::Pool parallel(jobs);
  const auto rows = sweep::run_points(serial, grid, run_point);
  const auto rows_par = sweep::run_points(parallel, grid, run_point);
  const bool identical = rows_equal(rows, rows_par);

  benchutil::row("%-26s %10s %10s %10s %8s", "point", "kops/s", "p50 ns",
                 "p99 ns", "EWR");
  for (const Row& r : rows)
    benchutil::row("%-26s %10.1f %10.1f %10.1f %8.3f",
                   (r.store + "/" + r.name).c_str(), r.kops,
                   sim::to_ns(r.p50), sim::to_ns(r.p99), r.ewr);
  benchutil::row("");
  benchutil::row("determinism (--jobs 1 vs --jobs %u): %s", jobs,
                 identical ? "identical" : "MISMATCH");

  const Row* a1 = find_row(rows, "lsmkv", "A-s1-t8-knobs");
  const Row* a4 = find_row(rows, "lsmkv", "A-s4-t8-knobs");
  const double scaling =
      (a1 != nullptr && a4 != nullptr && a1->kops > 0) ? a4->kops / a1->kops
                                                       : 0;
  if (a1 != nullptr && a4 != nullptr)
    benchutil::row("workload A shards 4 vs 1 (update-heavy): %.2fx", scaling);

  const Row* b_stock = find_row(rows, "lsmkv", "B-s1-t8-stock");
  const Row* b_fast = find_row(rows, "lsmkv", "B-s4-t8-knobs");
  const double b_speedup =
      (b_stock != nullptr && b_fast != nullptr && b_stock->kops > 0)
          ? b_fast->kops / b_stock->kops
          : 0;
  if (b_stock != nullptr && b_fast != nullptr)
    benchutil::row("workload B read-path + sharding vs stock: %.2fx",
                   b_speedup);

  // ---- --faults: degraded-mode grid + resilience gates ------------------
  bool fault_gates_ok = true;
  std::vector<FaultRow> fault_rows;
  double degraded_ratio = 0;
  bool identity_ok = true;
  if (faults) {
    const std::uint64_t frecs = mini ? 800 : 2000;
    const std::uint64_t fops = mini ? 1600 : 4000;
    fault_rows.push_back(run_fault_point("B-r2-healthy", /*degraded=*/false,
                                         /*replicas=*/2, 8, frecs, fops));
    fault_rows.push_back(run_fault_point("B-r2-degraded", /*degraded=*/true,
                                         /*replicas=*/2, 8, frecs, fops));
    // Replication result-identity: fault-free, single worker (so the op
    // interleaving is a pure function of program order), replicas=1 and
    // replicas=2 must observe byte-identical results.
    fault_rows.push_back(run_fault_point("B-r1-identity", false, 1, 1,
                                         mini ? 300 : 600, mini ? 600 : 1200));
    fault_rows.push_back(run_fault_point("B-r2-identity", false, 2, 1,
                                         mini ? 300 : 600, mini ? 600 : 1200));
    // Bind references only once the vector is final: push_back may
    // reallocate and would leave earlier references dangling.
    const FaultRow& healthy = fault_rows[0];
    const FaultRow& degraded = fault_rows[1];
    degraded_ratio =
        healthy.kops > 0 ? degraded.kops / healthy.kops : 0;
    identity_ok = fault_rows[2].checksum == fault_rows[3].checksum;

    benchutil::row("");
    benchutil::row("%-18s %10s %8s %8s %8s %8s %8s", "fault point",
                   "kops/s", "corrupt", "typed", "failover", "resilver",
                   "healthy");
    for (const FaultRow& r : fault_rows)
      benchutil::row("%-18s %10.1f %8llu %8llu %8llu %8llu %8s",
                     r.name.c_str(), r.kops,
                     static_cast<unsigned long long>(r.corruptions),
                     static_cast<unsigned long long>(r.typed_errors),
                     static_cast<unsigned long long>(r.failovers),
                     static_cast<unsigned long long>(r.stats.keys_resilvered),
                     r.healthy_at_end ? "yes" : "NO");
    benchutil::row("degraded/healthy throughput: %.2fx (gate >= 0.60x)",
                   degraded_ratio);
    benchutil::row("replicas=1 vs replicas=2 identity: %s",
                   identity_ok ? "identical" : "MISMATCH");

    for (const FaultRow& r : fault_rows) {
      if (r.corruptions != 0) {
        benchutil::row("GATE: %s saw %llu silent corruptions", r.name.c_str(),
                       static_cast<unsigned long long>(r.corruptions));
        fault_gates_ok = false;
      }
      if (!r.healthy_at_end || !r.rebuild_verified) {
        benchutil::row("GATE: %s did not return to verified health",
                       r.name.c_str());
        fault_gates_ok = false;
      }
    }
    if (degraded.stats.keys_lost != 0) {
      benchutil::row("GATE: degraded run lost %llu acked keys",
                     static_cast<unsigned long long>(
                         degraded.stats.keys_lost));
      fault_gates_ok = false;
    }
    if (degraded_ratio < 0.6) {
      benchutil::row("GATE: degraded throughput below 0.6x healthy");
      fault_gates_ok = false;
    }
    if (degraded.failovers == 0 || degraded.stats.keys_resilvered == 0) {
      benchutil::row("GATE: degraded run never exercised failover/rebuild");
      fault_gates_ok = false;
    }
    if (!identity_ok) fault_gates_ok = false;
  }

  // One instrumented sharded run's telemetry summary rides along: the
  // per-DIMM (= per-shard) EWR/ERR timelines under workload A.
  std::string summary;
  {
    hw::Platform platform(small_llc_timing(), /*seed=*/1);
    telemetry::Options topt;
    topt.sample_interval = sim::ms(1);
    telemetry::Session tel(platform, topt);
    const auto shard_ns =
        workload::ShardedStore::make_namespaces(platform, 4, 64ull << 20);
    workload::ShardOptions so;
    so.kind = workload::StoreKind::kLsmkv;
    so.tuning = tuning_for({.knobs = true});
    workload::ShardedStore store(shard_ns, so);
    workload::Spec spec = workload::ycsb('A');
    spec.records = mini ? 300 : 500;
    spec.ops = mini ? 600 : 1000;
    sim::ThreadCtx setup({.id = 100, .socket = 0, .mlp = 8, .seed = 1});
    store.create(setup);
    workload::load(store, spec, setup);
    workload::EngineOptions eo;
    eo.threads = 4;
    eo.background_thread = true;
    workload::run(store, spec, eo);
    tel.finish();
    summary = tel.summary_json();
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"ycsb\",\n");
  std::fprintf(f, "  \"host_cores\": %u,\n", host_cores);
  std::fprintf(f, "  \"jobs\": %u,\n", jobs);
  std::fprintf(f, "  \"mini\": %s,\n", mini ? "true" : "false");
  std::fprintf(f, "  \"deterministic\": %s,\n", identical ? "true" : "false");
  std::fprintf(f,
               "  \"headline\": {\"ycsb_update_scaling\": %.3f, "
               "\"lsmkv_b_speedup\": %.3f},\n",
               scaling, b_speedup);
  std::fprintf(f, "  \"rows\": [\n");
  json_rows(f, rows);
  std::fprintf(f, "  ],\n");
  if (faults) {
    std::fprintf(f,
                 "  \"resilience\": {\"gates_ok\": %s, "
                 "\"degraded_ratio\": %.3f, \"identity_ok\": %s, "
                 "\"fault_rows\": [\n",
                 fault_gates_ok ? "true" : "false", degraded_ratio,
                 identity_ok ? "true" : "false");
    for (std::size_t i = 0; i < fault_rows.size(); ++i) {
      const FaultRow& r = fault_rows[i];
      std::fprintf(
          f,
          "    {\"name\": \"%s\", \"kops\": %.2f, \"checksum\": \"%016llx\", "
          "\"corruptions\": %llu, \"typed_errors\": %llu, "
          "\"failovers\": %llu, \"retries\": %llu, "
          "\"keys_resilvered\": %llu, \"keys_lost\": %llu, "
          "\"lines_healed\": %llu, \"recovered\": %llu, "
          "\"healthy_at_end\": %s, \"rebuild_verified\": %s}%s\n",
          r.name.c_str(), r.kops,
          static_cast<unsigned long long>(r.checksum),
          static_cast<unsigned long long>(r.corruptions),
          static_cast<unsigned long long>(r.typed_errors),
          static_cast<unsigned long long>(r.failovers),
          static_cast<unsigned long long>(r.retries),
          static_cast<unsigned long long>(r.stats.keys_resilvered),
          static_cast<unsigned long long>(r.stats.keys_lost),
          static_cast<unsigned long long>(r.stats.lines_healed),
          static_cast<unsigned long long>(r.stats.recovered),
          r.healthy_at_end ? "true" : "false",
          r.rebuild_verified ? "true" : "false",
          i + 1 < fault_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]},\n");
  }
  std::fprintf(f, "  \"telemetry_summary\": %s\n", summary.c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  benchutil::row("");
  benchutil::note("wrote %s", out_path);

  return identical && fault_gates_ok ? 0 : 1;
}
