// Reproduces paper Figure 8: migrating RocksDB to persistent memory.
//
// db_bench-style SET workload (20 B keys, 100 B values, sync after every
// SET) against the three persistence strategies from Xu et al. [59]:
// WAL through a POSIX file, WAL via FLEX (user-space pmem append), and a
// fine-grained persistent-skiplist memtable with no WAL — on emulated
// pmem (plain DRAM) and on the simulated Optane DIMMs.
//
// The headline result: the winner INVERTS between DRAM and Optane.
#include <string>

#include "bench/bench_util.h"
#include "lsmkv/db.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

std::string key_of(int i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "k%018d", i);  // 19 chars + NUL ~ 20 B
  return buf;
}

benchutil::TraceOpts g_trace;
std::size_t g_point = 0;

double set_kops(hw::Device device, kv::WalMode wal, kv::MemtableMode mem) {
  hw::Platform platform;
  const auto tel = g_trace.session(platform, g_point++);
  hw::PmemNamespace& ns = device == hw::Device::kXp
                              ? platform.optane(2048ull << 20)
                              : platform.dram(2048ull << 20);
  sim::ThreadCtx t({.id = 0, .socket = 0, .mlp = 16, .seed = 3});
  kv::DbOptions o;
  o.wal = wal;
  o.memtable = mem;
  o.sync_every_op = true;
  kv::Db db(ns, o);
  db.create(t);

  const std::string value(100, 'v');
  const int n = 20000;
  sim::Rng rng(17);
  const sim::Time t0 = t.now();
  for (int i = 0; i < n; ++i)
    db.put(t, key_of(static_cast<int>(rng.uniform(1000000))), value);
  const sim::Time elapsed = t.now() - t0;
  return n / sim::to_s(elapsed) / 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  g_trace = benchutil::TraceOpts::from_args(argc, argv);
  benchutil::banner("Figure 8",
                    "RocksDB SET throughput (KOps/s), sync per op");
  benchutil::row("%-24s %12s %12s", "strategy", "DRAM", "Optane");

  const double dram_posix = set_kops(hw::Device::kDram, kv::WalMode::kPosix,
                                     kv::MemtableMode::kVolatile);
  const double xp_posix = set_kops(hw::Device::kXp, kv::WalMode::kPosix,
                                   kv::MemtableMode::kVolatile);
  benchutil::row("%-24s %12.0f %12.0f", "WAL (POSIX file)", dram_posix,
                 xp_posix);

  const double dram_flex = set_kops(hw::Device::kDram, kv::WalMode::kFlex,
                                    kv::MemtableMode::kVolatile);
  const double xp_flex = set_kops(hw::Device::kXp, kv::WalMode::kFlex,
                                  kv::MemtableMode::kVolatile);
  benchutil::row("%-24s %12.0f %12.0f", "WAL (FLEX)", dram_flex, xp_flex);

  const double dram_pskip = set_kops(hw::Device::kDram, kv::WalMode::kNone,
                                     kv::MemtableMode::kPersistent);
  const double xp_pskip = set_kops(hw::Device::kXp, kv::WalMode::kNone,
                                   kv::MemtableMode::kPersistent);
  benchutil::row("%-24s %12.0f %12.0f", "Persistent skiplist", dram_pskip,
                 xp_pskip);

  benchutil::row("");
  benchutil::row("pskip vs FLEX: DRAM %+.0f%%, Optane %+.0f%%",
                 (dram_pskip / dram_flex - 1) * 100,
                 (xp_pskip / xp_flex - 1) * 100);
  benchutil::note("paper: persistent skiplist wins by ~19%% on DRAM; on "
                  "real Optane the conclusion inverts and FLEX wins by "
                  "~10%% (small random persists run at EWR 0.43 vs the "
                  "WAL's 0.999)");
  return 0;
}
