// Reproduces paper Figure 10: inferring the XPBuffer capacity.
//
// For a region of N XPLines, each round writes the first half (128 B) of
// every line, then the second half. While the region fits the buffer the
// second halves coalesce and write amplification stays ~1; above the
// capacity the first halves are evicted partially dirty and WA jumps
// toward 2. The cliff position reveals the 16 KB buffer.
#include "bench/bench_util.h"
#include "lattester/kernels.h"
#include "xpsim/platform.h"

int main(int argc, char** argv) {
  using namespace xp;
  const auto trace = benchutil::TraceOpts::from_args(argc, argv);
  std::size_t point = 0;
  benchutil::banner("Figure 10",
                    "Write amplification vs region size (XPBuffer probe)");
  benchutil::row("%10s %20s", "region", "write amplification");
  for (std::uint64_t region : {64ull, 512ull, 2048ull, 4096ull, 8192ull,
                               16384ull, 32768ull, 131072ull, 262144ull,
                               2097152ull}) {
    hw::Platform platform;
    const auto tel = trace.session(platform, point++);
    auto& ns = platform.optane_ni(64 << 20);
    const double wa = lat::xpbuffer_write_amp_probe(platform, ns, region);
    benchutil::row("%10s %20.2f", benchutil::human_size(region).c_str(), wa);
  }
  benchutil::note("paper: WA ~1 up to 16 KB (64 XPLines), jumping toward "
                  "~2 beyond — the buffer coalesces writes spread across "
                  "up to 64 lines");
  return 0;
}
