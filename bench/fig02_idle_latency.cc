// Reproduces paper Figure 2: best-case (idle) latency.
//
// Random and sequential read latency plus write latency via
// store+clwb+fence and ntstore+fence, for local DRAM and Optane.
// Methodology per §3.2: single thread, one access in flight (mlp = 1),
// fence between operations. Each device is measured on its own fresh
// platform (cold caches, like every other figure bench), so the two
// points run concurrently through the sweep pool.
#include <vector>

#include "bench/bench_util.h"
#include "lattester/kernels.h"
#include "sweep/sweep.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

benchutil::TraceOpts g_trace;

lat::IdleLatency point(const hw::Device& device, std::size_t idx) {
  hw::Platform platform;
  const auto tel = g_trace.session(platform, idx);
  auto& ns = device == hw::Device::kDram ? platform.dram(512 << 20)
                                         : platform.optane(512 << 20);
  return lat::idle_latency(platform, ns);
}

}  // namespace

int main(int argc, char** argv) {
  sweep::Pool pool(sweep::jobs_from_args(argc, argv));
  g_trace = benchutil::TraceOpts::from_args(argc, argv);

  sweep::Grid<hw::Device> grid;
  grid.add(hw::Device::kDram);
  grid.add(hw::Device::kXp);
  const std::vector<lat::IdleLatency> r = sweep::run_points(pool, grid,
                                                            point);
  const lat::IdleLatency& dram = r[0];
  const lat::IdleLatency& xp = r[1];

  benchutil::banner("Figure 2", "Best-case (idle) latency, ns");
  benchutil::row("%-22s %10s %10s", "", "DRAM", "Optane");
  benchutil::row("%-22s %10.0f %10.0f", "Read sequential", dram.read_seq_ns,
                 xp.read_seq_ns);
  benchutil::row("%-22s %10.0f %10.0f", "Read random", dram.read_rand_ns,
                 xp.read_rand_ns);
  benchutil::row("%-22s %10.0f %10.0f", "Write (ntstore)", dram.write_nt_ns,
                 xp.write_nt_ns);
  benchutil::row("%-22s %10.0f %10.0f", "Write (clwb)", dram.write_clwb_ns,
                 xp.write_clwb_ns);

  benchutil::note("paper: DRAM 81/101/86/57, Optane 169/305/90/62");
  benchutil::note("shape: Optane reads 2-3x DRAM; 80%% seq/rand gap on "
                  "Optane vs ~20%% on DRAM; write latencies similar across "
                  "devices (ADR commit at the iMC)");
  return 0;
}
