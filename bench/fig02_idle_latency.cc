// Reproduces paper Figure 2: best-case (idle) latency.
//
// Random and sequential read latency plus write latency via
// store+clwb+fence and ntstore+fence, for local DRAM and Optane.
// Methodology per §3.2: single thread, one access in flight (mlp = 1),
// fence between operations.
#include "bench/bench_util.h"
#include "lattester/kernels.h"
#include "xpsim/platform.h"

int main() {
  using namespace xp;
  benchutil::banner("Figure 2", "Best-case (idle) latency, ns");

  hw::Platform platform;
  const lat::IdleLatency dram =
      lat::idle_latency(platform, platform.dram(512 << 20));
  const lat::IdleLatency xp =
      lat::idle_latency(platform, platform.optane(512 << 20));

  benchutil::row("%-22s %10s %10s", "", "DRAM", "Optane");
  benchutil::row("%-22s %10.0f %10.0f", "Read sequential", dram.read_seq_ns,
                 xp.read_seq_ns);
  benchutil::row("%-22s %10.0f %10.0f", "Read random", dram.read_rand_ns,
                 xp.read_rand_ns);
  benchutil::row("%-22s %10.0f %10.0f", "Write (ntstore)", dram.write_nt_ns,
                 xp.write_nt_ns);
  benchutil::row("%-22s %10.0f %10.0f", "Write (clwb)", dram.write_clwb_ns,
                 xp.write_clwb_ns);

  benchutil::note("paper: DRAM 81/101/86/57, Optane 169/305/90/62");
  benchutil::note("shape: Optane reads 2-3x DRAM; 80%% seq/rand gap on "
                  "Optane vs ~20%% on DRAM; write latencies similar across "
                  "devices (ADR commit at the iMC)");
  return 0;
}
