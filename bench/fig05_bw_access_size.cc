// Reproduces paper Figure 5: bandwidth vs. access size (random accesses).
//
// Aggregate random-access bandwidth over access sizes 64 B .. 2 MB with
// the paper's best-performing thread counts per curve (given in the
// original captions as Read/Write(ntstore)/Write(clwb)): DRAM 24/24/24,
// Optane-NI 4/1/2, Optane 16/4/12. Two effects to look for: the 256 B
// "knee" (XPLine granularity) and the interleaved 4 KB dip (iMC
// contention at the interleaving size, §5.3).
#include "bench/bench_util.h"
#include "lattester/runner.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

double point(hw::Device device, bool interleaved, lat::Op op,
             unsigned threads, std::size_t access) {
  hw::Platform platform;
  hw::NamespaceOptions o;
  o.device = device;
  o.interleaved = interleaved;
  o.size = 8ull << 30;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);

  lat::WorkloadSpec spec;
  spec.op = op;
  spec.pattern = lat::Pattern::kRand;
  spec.access_size = access;
  spec.threads = threads;
  spec.region_size = o.size;
  // Multi-hundred-KB accesses need a window that fits many ops.
  spec.duration = access >= (256 << 10) ? sim::ms(10) : sim::ms(1);
  return lat::run(platform, ns, spec).bandwidth_gbps;
}

void panel(const char* name, hw::Device device, bool interleaved,
           unsigned rd_threads, unsigned nt_threads, unsigned clwb_threads) {
  benchutil::row("%s (%u/%u/%u threads)", name, rd_threads, nt_threads,
                 clwb_threads);
  benchutil::row("%8s %10s %14s %14s", "size", "Read", "Write(ntstore)",
                 "Write(clwb)");
  for (std::size_t access : {64u, 256u, 1024u, 4096u, 16384u, 65536u,
                             262144u, 2097152u}) {
    benchutil::row(
        "%8s %10.1f %14.1f %14.1f",
        benchutil::human_size(access).c_str(),
        point(device, interleaved, lat::Op::kLoad, rd_threads, access),
        point(device, interleaved, lat::Op::kNtStore, nt_threads, access),
        point(device, interleaved, lat::Op::kStoreClwb, clwb_threads,
              access));
  }
}

}  // namespace

int main() {
  benchutil::banner("Figure 5",
                    "Bandwidth (GB/s) vs access size, random accesses");
  panel("DRAM", hw::Device::kDram, true, 24, 24, 24);
  panel("Optane-NI (single DIMM)", hw::Device::kXp, false, 4, 1, 2);
  panel("Optane (interleaved)", hw::Device::kXp, true, 16, 4, 12);
  benchutil::note("paper shapes: DRAM mostly size-independent; Optane poor "
                  "below 256 B (XPLine RMW); interleaved writes dip at 4 KB "
                  "(one access = one DIMM; iMC head-of-line) and recover "
                  "beyond as accesses span DIMMs");
  return 0;
}
