// Reproduces paper Figure 5: bandwidth vs. access size (random accesses).
//
// Aggregate random-access bandwidth over access sizes 64 B .. 2 MB with
// the paper's best-performing thread counts per curve (given in the
// original captions as Read/Write(ntstore)/Write(clwb)): DRAM 24/24/24,
// Optane-NI 4/1/2, Optane 16/4/12. Two effects to look for: the 256 B
// "knee" (XPLine granularity) and the interleaved 4 KB dip (iMC
// contention at the interleaving size, §5.3). Points are independent
// (fresh platform each) and run through the host-parallel sweep pool.
#include <vector>

#include "bench/bench_util.h"
#include "lattester/runner.h"
#include "sweep/sweep.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

struct Cfg {
  hw::Device device;
  bool interleaved;
  lat::Op op;
  unsigned threads;
  std::size_t access;
};

benchutil::TraceOpts g_trace;

double point(const Cfg& c, std::size_t idx) {
  hw::Platform platform;
  const auto tel = g_trace.session(platform, idx);
  hw::NamespaceOptions o;
  o.device = c.device;
  o.interleaved = c.interleaved;
  o.size = 8ull << 30;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);

  lat::WorkloadSpec spec;
  spec.op = c.op;
  spec.pattern = lat::Pattern::kRand;
  spec.access_size = c.access;
  spec.threads = c.threads;
  spec.region_size = o.size;
  // Multi-hundred-KB accesses need a window that fits many ops.
  spec.duration = c.access >= (256 << 10) ? sim::ms(10) : sim::ms(1);
  return lat::run(platform, ns, spec).bandwidth_gbps;
}

struct Panel {
  const char* name;
  hw::Device device;
  bool interleaved;
  unsigned rd_threads, nt_threads, clwb_threads;
};

constexpr Panel kPanels[] = {
    {"DRAM", hw::Device::kDram, true, 24, 24, 24},
    {"Optane-NI (single DIMM)", hw::Device::kXp, false, 4, 1, 2},
    {"Optane (interleaved)", hw::Device::kXp, true, 16, 4, 12},
};
constexpr std::size_t kSizes[] = {64u,    256u,    1024u,   4096u,
                                  16384u, 65536u, 262144u, 2097152u};

}  // namespace

int main(int argc, char** argv) {
  sweep::Pool pool(sweep::jobs_from_args(argc, argv));
  g_trace = benchutil::TraceOpts::from_args(argc, argv);

  sweep::Grid<Cfg> grid;
  for (const Panel& p : kPanels)
    for (std::size_t access : kSizes) {
      grid.add({p.device, p.interleaved, lat::Op::kLoad, p.rd_threads,
                access});
      grid.add({p.device, p.interleaved, lat::Op::kNtStore, p.nt_threads,
                access});
      grid.add({p.device, p.interleaved, lat::Op::kStoreClwb,
                p.clwb_threads, access});
    }
  const std::vector<double> bw = sweep::run_points(pool, grid, point);

  benchutil::banner("Figure 5",
                    "Bandwidth (GB/s) vs access size, random accesses");
  std::size_t k = 0;
  for (const Panel& p : kPanels) {
    benchutil::row("%s (%u/%u/%u threads)", p.name, p.rd_threads,
                   p.nt_threads, p.clwb_threads);
    benchutil::row("%8s %10s %14s %14s", "size", "Read", "Write(ntstore)",
                   "Write(clwb)");
    for (std::size_t access : kSizes) {
      const double rd = bw[k++], nt = bw[k++], cl = bw[k++];
      benchutil::row("%8s %10.1f %14.1f %14.1f",
                     benchutil::human_size(access).c_str(), rd, nt, cl);
    }
  }
  benchutil::note("paper shapes: DRAM mostly size-independent; Optane poor "
                  "below 256 B (XPLine RMW); interleaved writes dip at 4 KB "
                  "(one access = one DIMM; iMC head-of-line) and recover "
                  "beyond as accesses span DIMMs");
  return 0;
}
