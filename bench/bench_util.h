// Shared output helpers for the figure-reproduction benches.
//
// Every bench prints (a) a banner naming the paper figure it regenerates,
// (b) the measured series in the same rows/units the paper reports, and
// (c) where useful, the paper's qualitative expectation for eyeballing.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace xp::benchutil {

inline void banner(const char* fig, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", fig, title);
  std::printf("================================================================\n");
}

inline void note(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::printf("  # ");
  std::vprintf(fmt, ap);
  std::printf("\n");
  va_end(ap);
}

inline void row(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::printf("  ");
  std::vprintf(fmt, ap);
  std::printf("\n");
  va_end(ap);
}

inline std::string human_size(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= (1u << 20) && bytes % (1u << 20) == 0)
    std::snprintf(buf, sizeof(buf), "%lluM",
                  static_cast<unsigned long long>(bytes >> 20));
  else if (bytes >= 1024 && bytes % 1024 == 0)
    std::snprintf(buf, sizeof(buf), "%lluK",
                  static_cast<unsigned long long>(bytes >> 10));
  else
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  return buf;
}

}  // namespace xp::benchutil
