// Shared output helpers for the figure-reproduction benches.
//
// Every bench prints (a) a banner naming the paper figure it regenerates,
// (b) the measured series in the same rows/units the paper reports, and
// (c) where useful, the paper's qualitative expectation for eyeballing.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/session.h"
#include "xpsim/platform.h"

namespace xp::benchutil {

// `--trace <file>` / XP_TRACE plumbing shared by every bench. When
// enabled, each sweep point writes its own Chrome-trace file derived
// from the base path by point index (grid order), so the produced file
// set is identical at any --jobs count. Sessions are timing-neutral:
// traced tables are byte-identical to untraced ones.
struct TraceOpts {
  std::string base;  // empty = tracing disabled

  static TraceOpts from_args(int argc, char** argv) {
    return TraceOpts{telemetry::trace_path_from_args(argc, argv)};
  }
  bool enabled() const { return !base.empty(); }

  // Per-sweep-point session; null when tracing is disabled. Keep the
  // returned handle alive for the duration of the point: its destructor
  // detaches from the platform and writes the trace file.
  std::unique_ptr<telemetry::Session> session(hw::Platform& platform,
                                              std::size_t point) const {
    if (base.empty()) return nullptr;
    telemetry::Options o;
    o.trace_path = telemetry::trace_point_path(base, point);
    return std::make_unique<telemetry::Session>(platform, std::move(o));
  }

  // Whole-bench session for single-platform benches.
  std::unique_ptr<telemetry::Session> session(hw::Platform& platform) const {
    if (base.empty()) return nullptr;
    telemetry::Options o;
    o.trace_path = base;
    return std::make_unique<telemetry::Session>(platform, std::move(o));
  }
};

inline void banner(const char* fig, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", fig, title);
  std::printf("================================================================\n");
}

inline void note(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::printf("  # ");
  std::vprintf(fmt, ap);
  std::printf("\n");
  va_end(ap);
}

inline void row(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::printf("  ");
  std::vprintf(fmt, ap);
  std::printf("\n");
  va_end(ap);
}

inline std::string human_size(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= (1u << 20) && bytes % (1u << 20) == 0)
    std::snprintf(buf, sizeof(buf), "%lluM",
                  static_cast<unsigned long long>(bytes >> 20));
  else if (bytes >= 1024 && bytes % 1024 == 0)
    std::snprintf(buf, sizeof(buf), "%lluK",
                  static_cast<unsigned long long>(bytes >> 10));
  else
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  return buf;
}

}  // namespace xp::benchutil
