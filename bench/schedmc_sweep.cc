// Schedule-exploration sweep over every persistent store.
//
// For each store family the schedmc explorer runs PCT random-priority
// schedules plus a preemption-bounded DFS pass, checks every history
// against the linearizability oracle, and optionally composes crashes
// with interleavings (a crash at any (schedule, persist-event) pair must
// recover to a linearizable prefix). Reports schedules explored per
// second and checker search throughput; exits non-zero on any
// linearizability, deadlock, or recovery violation.
//
// Usage: schedmc_sweep [--schedules N] [--dfs N] [--crash N] [--seed S]
//                      [--store NAME] [--fault]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/schedmc/explorer.h"
#include "src/schedmc/targets.h"

int main(int argc, char** argv) {
  using namespace xp;

  schedmc::Options opts;
  opts.pct_schedules = 200;
  opts.dfs_schedules = 64;
  opts.crash_schedules = 2;
  opts.keep_going = true;
  schedmc::TargetOptions topts;
  std::string only;

  for (int i = 1; i < argc; ++i) {
    const auto num = [&](const char* flag) -> long {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc)
        return std::atol(argv[++i]);
      return -1;
    };
    if (long v = num("--schedules"); v >= 0)
      opts.pct_schedules = static_cast<unsigned>(v);
    else if (long v2 = num("--dfs"); v2 >= 0)
      opts.dfs_schedules = static_cast<unsigned>(v2);
    else if (long v3 = num("--crash"); v3 >= 0)
      opts.crash_schedules = static_cast<unsigned>(v3);
    else if (long v4 = num("--seed"); v4 >= 0)
      opts.seed = static_cast<std::uint64_t>(v4);
    else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc)
      only = argv[++i];
    else if (std::strcmp(argv[i], "--fault") == 0)
      topts.fault = schedmc::TestFault::kElideRmwLock;
  }

  benchutil::banner("schedmc", "Schedule exploration x linearizability");
  benchutil::row("%-10s %10s %9s %10s %10s %12s %10s %6s", "store",
                 "schedules", "distinct", "crash_runs", "histories",
                 "chk_states", "sched/s", "viol");

  bool failed = false;
  for (auto& target : schedmc::all_targets(topts)) {
    if (!only.empty() && only != target->name()) continue;
    const schedmc::Result r = schedmc::explore(*target, opts);
    benchutil::row(
        "%-10s %10llu %9llu %10llu %10llu %12llu %10.0f %6zu",
        target->name(), static_cast<unsigned long long>(r.schedules_run),
        static_cast<unsigned long long>(r.distinct_schedules),
        static_cast<unsigned long long>(r.crash_runs),
        static_cast<unsigned long long>(r.histories_checked),
        static_cast<unsigned long long>(r.checker_states),
        r.seconds > 0 ? (r.schedules_run + r.crash_runs) / r.seconds : 0.0,
        r.violations.size());
    if (!r.ok()) {
      failed = true;
      std::printf("%s\n", schedmc::summarize(r).c_str());
    }
  }
  if (topts.fault != schedmc::TestFault::kNone) {
    // --fault inverts the exit contract: the seeded regression must be
    // caught.
    benchutil::note("seeded fault %s", failed ? "caught" : "MISSED");
    return failed ? 0 : 1;
  }
  return failed ? 1 : 0;
}
