// Reproduces paper Figure 18: local vs remote Optane bandwidth over
// read/write mixes.
//
// 256 B random accesses at 1 and 4 threads; mixes from pure read to pure
// write. Remote traffic crosses the UPI link, where writes hold the
// outbound lane until the (slow, write-pressured) XP DIMM admits them —
// collapsing multi-threaded mixed workloads.
#include "bench/bench_util.h"
#include "lattester/runner.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

benchutil::TraceOpts g_trace;
std::size_t g_point = 0;

double point(unsigned socket, unsigned threads, double read_fraction) {
  hw::Platform platform;
  const auto tel = g_trace.session(platform, g_point++);
  hw::NamespaceOptions o;
  o.device = hw::Device::kXp;
  o.socket = 0;
  o.size = 8ull << 30;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);
  lat::WorkloadSpec spec;
  spec.op = read_fraction >= 1.0
                ? lat::Op::kLoad
                : (read_fraction <= 0.0 ? lat::Op::kNtStore
                                        : lat::Op::kMixed);
  spec.read_fraction = read_fraction;
  spec.pattern = lat::Pattern::kRand;
  spec.access_size = 256;
  spec.threads = threads;
  spec.socket = socket;
  spec.region_size = o.size;
  spec.duration = sim::ms(1);
  return lat::run(platform, ns, spec).bandwidth_gbps;
}

}  // namespace

int main(int argc, char** argv) {
  g_trace = benchutil::TraceOpts::from_args(argc, argv);
  benchutil::banner("Figure 18",
                    "Optane bandwidth (GB/s) vs R:W mix, local vs remote");
  benchutil::row("%-10s %10s %16s %10s %16s", "mix", "Optane-1",
                 "Optane-Remote-1", "Optane-4", "Optane-Remote-4");
  struct Mix {
    const char* name;
    double read_fraction;
  };
  for (const Mix& m : {Mix{"R", 1.0}, Mix{"R:W 4:1", 0.8},
                       Mix{"R:W 3:1", 0.75}, Mix{"R:W 2:1", 0.667},
                       Mix{"R:W 1:1", 0.5}, Mix{"W", 0.0}}) {
    benchutil::row("%-10s %10.2f %16.2f %10.2f %16.2f", m.name,
                   point(0, 1, m.read_fraction),
                   point(1, 1, m.read_fraction),
                   point(0, 4, m.read_fraction),
                   point(1, 4, m.read_fraction));
  }
  benchutil::note("paper: single-threaded local ~= remote; with 4 threads "
                  "remote falls off sharply as store intensity rises; "
                  "pure reads/writes degrade far less than mixes");
  return 0;
}
