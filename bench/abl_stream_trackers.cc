// Ablation: controller write-stream trackers (the thread-count collapse).
//
// Guideline #3's root cause in this model: the XPController coalesces
// efficiently for a limited number of concurrent write streams. Sweeping
// the tracker count moves the peak of the bandwidth-vs-threads curve —
// if future controllers track more streams, the "limit concurrent
// threads" guideline relaxes (paper §6).
#include "bench/bench_util.h"
#include "lattester/runner.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

benchutil::TraceOpts g_trace;
std::size_t g_point = 0;

double point(unsigned streams, unsigned threads) {
  hw::Timing timing;
  timing.xp_write_streams = streams;
  hw::Platform platform(timing);
  const auto tel = g_trace.session(platform, g_point++);
  hw::NamespaceOptions o;
  o.device = hw::Device::kXp;
  o.interleaved = false;
  o.size = 2ull << 30;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);
  lat::WorkloadSpec spec;
  spec.op = lat::Op::kNtStore;
  spec.access_size = 256;
  spec.threads = threads;
  spec.region_size = o.size;
  spec.duration = sim::ms(1);
  return lat::run(platform, ns, spec).bandwidth_gbps;
}

}  // namespace

int main(int argc, char** argv) {
  g_trace = benchutil::TraceOpts::from_args(argc, argv);
  benchutil::banner("Ablation",
                    "Write-stream trackers vs thread scaling (Optane-NI)");
  benchutil::row("%10s %8s %8s %8s %8s %8s", "trackers", "1 thr", "2 thr",
                 "4 thr", "8 thr", "16 thr");
  for (unsigned streams : {1u, 2u, 4u, 8u, 24u}) {
    benchutil::row("%10u %8.2f %8.2f %8.2f %8.2f %8.2f", streams,
                   point(streams, 1), point(streams, 2), point(streams, 4),
                   point(streams, 8), point(streams, 16));
  }
  benchutil::note("expected: with few trackers the curve peaks early and "
                  "collapses; with many it saturates flat at the media "
                  "write cap (~2.3 GB/s)");
  return 0;
}
