// Reproduces paper Figure 17: multi-DIMM-aware NOVA under FIO.
//
// 24 FIO jobs on NOVA, four access patterns, sync and async engines,
// with the stock spreading allocator ("I", interleaved striping) vs the
// multi-DIMM-aware pinned allocator ("NI", each thread's pages on its own
// DIMM). Pinning levels the per-DIMM load and lifts bandwidth.
#include "bench/bench_util.h"
#include "fio/fio.h"
#include "novafs/novafs.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

benchutil::TraceOpts g_trace;
std::size_t g_point = 0;

double point(nova::AllocPolicy policy, fio::Rw rw, bool sync_engine) {
  hw::Platform platform;
  const auto tel = g_trace.session(platform, g_point++);
  auto& ns = platform.optane(6ull << 30);
  nova::NovaOptions o;
  o.alloc = policy;
  nova::NovaFs fs(ns, o);
  sim::ThreadCtx t({.id = 0, .socket = 0, .mlp = 16, .seed = 1});
  fs.format(t);

  fio::Job job;
  job.rw = rw;
  job.numjobs = 24;
  job.file_size = 8 << 20;
  job.sync_engine = sync_engine;
  job.iodepth = 4;
  job.runtime = sim::ms(1);
  return fio::run(platform, fs, job).bandwidth_gbps;
}

}  // namespace

int main(int argc, char** argv) {
  g_trace = benchutil::TraceOpts::from_args(argc, argv);
  benchutil::banner("Figure 17",
                    "Multi-DIMM NOVA, FIO 24 jobs, 4 KB blocks (GB/s)");
  benchutil::row("%-14s %10s %10s %10s %10s", "op", "I,sync", "NI,sync",
                 "I,async", "NI,async");
  struct OpCase {
    const char* name;
    fio::Rw rw;
  };
  double sum_i = 0, sum_ni = 0;
  for (const OpCase& c :
       {OpCase{"read seq", fio::Rw::kSeqRead},
        OpCase{"read rand", fio::Rw::kRandRead},
        OpCase{"write seq", fio::Rw::kSeqWrite},
        OpCase{"write rand", fio::Rw::kRandWrite}}) {
    const double i_sync = point(nova::AllocPolicy::kSpread, c.rw, true);
    const double ni_sync = point(nova::AllocPolicy::kPinned, c.rw, true);
    const double i_async = point(nova::AllocPolicy::kSpread, c.rw, false);
    const double ni_async = point(nova::AllocPolicy::kPinned, c.rw, false);
    sum_i += i_sync + i_async;
    sum_ni += ni_sync + ni_async;
    benchutil::row("%-14s %10.1f %10.1f %10.1f %10.1f", c.name, i_sync,
                   ni_sync, i_async, ni_async);
  }
  benchutil::row("");
  benchutil::row("average NI/I improvement: %+.0f%%",
                 (sum_ni / sum_i - 1) * 100);
  benchutil::note("paper: multi-DIMM awareness improves NOVA by 3-34%% "
                  "(average 17%%) on this workload");
  return 0;
}
