// Reproduces paper Figure 12: file-IO latency across file systems.
//
// Random 64 B and 256 B overwrites plus 4 KB reads on: XFS-DAX and
// Ext4-DAX (each with and without fsync-per-write), NOVA, and
// NOVA-datalog. NOVA(-datalog) provides data consistency; the DAX file
// systems do not — which is the context for NOVA-datalog matching or
// beating them.
#include <functional>
#include <memory>

#include "bench/bench_util.h"
#include "novafs/daxfs.h"
#include "novafs/novafs.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

constexpr std::uint64_t kFileSize = 16 << 20;

struct Case {
  const char* name;
  std::function<nova::FileSystem*(hw::Platform&, sim::ThreadCtx&)> make;
};

struct Latencies {
  double ow64_us, ow256_us, rd4k_us;
};

benchutil::TraceOpts g_trace;
std::size_t g_point = 0;

Latencies measure(const Case& c) {
  hw::Platform platform;
  const auto tel = g_trace.session(platform, g_point++);
  sim::ThreadCtx t({.id = 0, .socket = 0, .mlp = 16, .seed = 1});
  std::unique_ptr<nova::FileSystem> fs(c.make(platform, t));
  const int f = fs->create(t, "bench");
  std::vector<std::uint8_t> block(4096, 0x42);
  for (std::uint64_t off = 0; off < kFileSize; off += 4096)
    fs->write(t, f, off, block);

  platform.reset_timing();
  sim::Rng rng(11);
  auto overwrite = [&](std::size_t size) {
    sim::ThreadCtx tt({.id = 0, .socket = 0, .mlp = 16, .seed = 2});
    std::vector<std::uint8_t> data(size, 0x7e);
    const int n = 300;
    const sim::Time t0 = tt.now();
    for (int i = 0; i < n; ++i) {
      const std::uint64_t off = rng.uniform(kFileSize / size) * size;
      fs->write(tt, f, off, data);
    }
    return sim::to_us(tt.now() - t0) / n;
  };
  auto read4k = [&] {
    sim::ThreadCtx tt({.id = 0, .socket = 0, .mlp = 16, .seed = 3});
    std::vector<std::uint8_t> out(4096);
    const int n = 300;
    const sim::Time t0 = tt.now();
    for (int i = 0; i < n; ++i) {
      const std::uint64_t off = rng.uniform(kFileSize / 4096) * 4096;
      fs->read(tt, f, off, out);
    }
    return sim::to_us(tt.now() - t0) / n;
  };

  Latencies l;
  l.ow64_us = overwrite(64);
  l.ow256_us = overwrite(256);
  l.rd4k_us = read4k();
  return l;
}

}  // namespace

int main(int argc, char** argv) {
  g_trace = benchutil::TraceOpts::from_args(argc, argv);
  benchutil::banner("Figure 12", "File IO latency (us), single thread");

  std::vector<Case> cases;
  cases.push_back({"XFS-DAX-sync", [](hw::Platform& p, sim::ThreadCtx&) {
                     return new nova::DaxFs(p.optane(512 << 20),
                                            nova::xfs_profile(), true);
                   }});
  cases.push_back({"XFS-DAX", [](hw::Platform& p, sim::ThreadCtx&) {
                     return new nova::DaxFs(p.optane(512 << 20),
                                            nova::xfs_profile(), false);
                   }});
  cases.push_back({"Ext4-DAX-sync", [](hw::Platform& p, sim::ThreadCtx&) {
                     return new nova::DaxFs(p.optane(512 << 20),
                                            nova::ext4_profile(), true);
                   }});
  cases.push_back({"Ext4-DAX", [](hw::Platform& p, sim::ThreadCtx&) {
                     return new nova::DaxFs(p.optane(512 << 20),
                                            nova::ext4_profile(), false);
                   }});
  cases.push_back({"NOVA", [](hw::Platform& p, sim::ThreadCtx& t) {
                     auto* fs = new nova::NovaFs(p.optane(512 << 20),
                                                 nova::NovaOptions{});
                     fs->format(t);
                     return fs;
                   }});
  cases.push_back({"NOVA-datalog", [](hw::Platform& p, sim::ThreadCtx& t) {
                     nova::NovaOptions o;
                     o.datalog = true;
                     auto* fs = new nova::NovaFs(p.optane(512 << 20), o);
                     fs->format(t);
                     return fs;
                   }});

  benchutil::row("%-16s %14s %14s %12s", "fs", "overwrite 64B",
                 "overwrite 256B", "read 4KB");
  Latencies nova_l{}, datalog_l{};
  for (const Case& c : cases) {
    const Latencies l = measure(c);
    benchutil::row("%-16s %14.2f %14.2f %12.2f", c.name, l.ow64_us,
                   l.ow256_us, l.rd4k_us);
    if (std::string(c.name) == "NOVA") nova_l = l;
    if (std::string(c.name) == "NOVA-datalog") datalog_l = l;
  }
  benchutil::row("");
  benchutil::row("NOVA-datalog speedup over NOVA: %.1fx (64B), %.1fx (256B)",
                 nova_l.ow64_us / datalog_l.ow64_us,
                 nova_l.ow256_us / datalog_l.ow256_us);
  benchutil::note("paper: datalog improves small random overwrites 7x/6.5x "
                  "(64/256 B), matching or beating the DAX file systems "
                  "while keeping data consistency; reads pay slightly for "
                  "the merge; Ext4-DAX-sync bars clip at 40/57 us");
  return 0;
}
