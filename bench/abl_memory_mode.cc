// Ablation: Memory Mode vs App Direct (paper §2.1.2 and §6).
//
// The paper studies its guidelines only in App Direct mode, noting that
// Memory Mode's DRAM cache "mitigates most or all of the effects". We
// verify: random 64 B accesses whose working set fits the near-memory
// cache run at DRAM speed in Memory Mode, while App Direct pays the full
// XPLine read-modify-write penalty; a working set far beyond the cache
// degrades Memory Mode back toward raw XP behavior.
#include "bench/bench_util.h"
#include "lattester/runner.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

benchutil::TraceOpts g_trace;
std::size_t g_point = 0;

double point(bool memory_mode, lat::Op op, std::uint64_t region) {
  hw::Timing timing;
  // Scale near memory down 64x (32 GB -> 512 MB) so the direct-mapped tag
  // array reaches steady state within the simulated window; worksets are
  // scaled accordingly.
  timing.memory_mode_near_bytes = 512ull << 20;
  hw::Platform platform(timing);
  const auto tel = g_trace.session(platform, g_point++);
  hw::NamespaceOptions o;
  o.device = hw::Device::kXp;
  o.memory_mode = memory_mode;
  o.size = 16ull << 30;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);
  lat::WorkloadSpec spec;
  spec.op = op;
  spec.pattern = lat::Pattern::kRand;
  spec.access_size = 64;
  spec.threads = 8;
  spec.region_size = region;
  // Long warmup so the near-memory cache (and CPU cache) reach steady
  // state before the measured window.
  spec.warmup = sim::ms(25);
  spec.duration = sim::ms(3);
  return lat::run(platform, ns, spec).bandwidth_gbps;
}

}  // namespace

int main(int argc, char** argv) {
  g_trace = benchutil::TraceOpts::from_args(argc, argv);
  benchutil::banner("Ablation",
                    "Memory Mode vs App Direct, random 64 B, 8 threads");
  benchutil::row("%10s %18s %18s %18s %18s", "workset", "AppDirect rd",
                 "MemMode rd", "AppDirect wr", "MemMode wr");
  for (std::uint64_t region : {96ull << 20, 8ull << 30}) {
    benchutil::row("%10s %18.1f %18.1f %18.1f %18.1f",
                   benchutil::human_size(region).c_str(),
                   point(false, lat::Op::kLoad, region),
                   point(true, lat::Op::kLoad, region),
                   point(false, lat::Op::kNtStore, region),
                   point(true, lat::Op::kNtStore, region));
  }
  benchutil::note("expected: with a cache-resident working set Memory "
                  "Mode runs near DRAM speed, hiding the small-access "
                  "pathologies; far beyond the cache it converges to XP "
                  "behavior plus miss overhead");
  return 0;
}
