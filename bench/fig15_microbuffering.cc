// Reproduces paper Figure 15: tuning persistence instructions for
// micro-buffering (Pangolin).
//
// No-op transaction latency over object sizes for PGL-NT (always
// non-temporal write-back) vs PGL-CLWB (store+clwb write-back), on cold
// objects. Guideline #2 predicts a crossover near 1 KB.
#include "bench/bench_util.h"
#include "pmemlib/microbuf.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

benchutil::TraceOpts g_trace;
std::size_t g_point = 0;

double txn_latency_us(pmem::WriteBack mode, std::size_t size) {
  hw::Platform platform;
  const auto tel = g_trace.session(platform, g_point++);
  auto& ns = platform.optane(512 << 20);
  sim::ThreadCtx setup({.id = 9, .socket = 0, .mlp = 16, .seed = 1});
  pmem::Pool pool(ns);
  pool.create(setup, 64);
  std::uint64_t arena;
  {
    pmem::Tx tx(pool, setup);
    arena = pool.tx_alloc(tx, 256ull * 16384);
    tx.commit();
  }
  platform.reset_timing();

  pmem::MicroBuf mb(pool, mode);
  sim::ThreadCtx t({.id = 0, .socket = 0, .mlp = 16, .seed = 2});
  const int n = 128;
  const sim::Time t0 = t.now();
  for (int i = 0; i < n; ++i) {
    mb.update(t, arena + static_cast<std::uint64_t>(i) * 16384, size,
              [](std::span<std::uint8_t>) {});
  }
  return sim::to_us(t.now() - t0) / n;
}

}  // namespace

int main(int argc, char** argv) {
  g_trace = benchutil::TraceOpts::from_args(argc, argv);
  benchutil::banner("Figure 15",
                    "Micro-buffering no-op transaction latency (us)");
  benchutil::row("%8s %10s %10s %12s", "object", "PGL-NT", "PGL-CLWB",
                 "winner");
  for (std::size_t size : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u,
                           8192u}) {
    const double nt = txn_latency_us(pmem::WriteBack::kNt, size);
    const double cl = txn_latency_us(pmem::WriteBack::kClwb, size);
    benchutil::row("%8s %10.2f %10.2f %12s",
                   benchutil::human_size(size).c_str(), nt, cl,
                   nt < cl ? "PGL-NT" : "PGL-CLWB");
  }
  benchutil::note("paper: PGL-CLWB wins for small objects, PGL-NT for "
                  "large; crossover near 1 KB — the basis for the "
                  "adaptive write-back policy (WriteBack::kAdaptive)");
  return 0;
}
