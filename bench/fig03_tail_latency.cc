// Reproduces paper Figure 3: tail latency vs. write-hotspot size.
//
// A single thread repeatedly overwrites a small region ("hotspot")
// sequentially with fenced 256 B non-temporal stores. On Optane, rare
// wear-leveling migrations stall the XPController for ~50 us; the smaller
// the hotspot, the faster per-line wear accumulates and the more outliers
// appear. DRAM shows none.
#include "bench/bench_util.h"
#include "lattester/runner.h"
#include "xpsim/platform.h"

int main(int argc, char** argv) {
  using namespace xp;
  const auto trace = benchutil::TraceOpts::from_args(argc, argv);
  std::size_t point = 0;
  benchutil::banner("Figure 3",
                    "Write tail latency vs hotspot size (one thread)");
  benchutil::row("%-10s %12s %12s %12s %12s", "hotspot", "p50(us)",
                 "p99.99(us)", "p99.999(us)", "max(us)");

  for (std::uint64_t hotspot : {256ull, 2048ull, 16384ull, 131072ull,
                                1048576ull, 8388608ull, 67108864ull}) {
    hw::Timing timing;
    // Scale the wear threshold down so the simulated 10 ms window
    // exercises per-line write counts comparable (relative to threshold)
    // to the paper's multi-second runs; the outlier-frequency-vs-hotspot
    // trend is preserved, compressed to smaller hotspot sizes.
    timing.wear_threshold = 256;
    hw::Platform platform(timing);
    const auto tel = trace.session(platform, point++);
    hw::NamespaceOptions o;
    o.device = hw::Device::kXp;
    o.size = std::max<std::uint64_t>(hotspot, 1 << 20);
    o.discard_data = true;
    auto& ns = platform.add_namespace(o);

    lat::WorkloadSpec spec;
    spec.op = lat::Op::kNtStore;
    spec.pattern = lat::Pattern::kSeq;
    spec.access_size = 256;
    spec.region_size = hotspot;
    spec.threads = 1;
    spec.mlp = 1;
    spec.fence_each_op = true;
    spec.duration = sim::ms(10);
    const lat::Result r = lat::run(platform, ns, spec);

    benchutil::row("%-10s %12.2f %12.2f %12.2f %12.2f",
                   benchutil::human_size(hotspot).c_str(), r.p_ns(0.5) / 1e3,
                   r.p_ns(0.9999) / 1e3, r.p_ns(0.99999) / 1e3,
                   r.p_ns(1.0) / 1e3);
  }

  // DRAM baseline: no outliers at any hotspot size.
  {
    hw::Platform platform;
    const auto tel = trace.session(platform, point++);
    hw::NamespaceOptions o;
    o.device = hw::Device::kDram;
    o.size = 1 << 20;
    o.discard_data = true;
    auto& ns = platform.add_namespace(o);
    lat::WorkloadSpec spec;
    spec.op = lat::Op::kNtStore;
    spec.access_size = 256;
    spec.region_size = 256;
    spec.threads = 1;
    spec.mlp = 1;
    spec.fence_each_op = true;
    spec.duration = sim::ms(5);
    const lat::Result r = lat::run(platform, ns, spec);
    benchutil::row("%-10s %12.2f %12.2f %12.2f %12.2f  (DRAM 256B hotspot)",
                   "DRAM", r.p_ns(0.5) / 1e3, r.p_ns(0.9999) / 1e3,
                   r.p_ns(0.99999) / 1e3, r.p_ns(1.0) / 1e3);
  }

  benchutil::note("paper: rare outliers up to ~50 us (100x the common "
                  "case), frequency falling as the hotspot grows; absent "
                  "on DRAM");
  return 0;
}
