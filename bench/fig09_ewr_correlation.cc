// Reproduces paper Figure 9: EWR vs device throughput on a single DIMM.
//
// Sweeps access size x thread count x pattern for each store kind and
// plots (EWR, bandwidth) pairs plus the per-kind linear-fit r^2 — the
// paper's evidence that maximizing EWR maximizes bandwidth.
#include <cmath>
#include <vector>

#include "bench/bench_util.h"
#include "lattester/runner.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

struct PointR {
  double ewr;
  double bw;
};

benchutil::TraceOpts g_trace;
std::size_t g_point = 0;  // serial sweep; stable grid-order numbering

std::vector<PointR> sweep(lat::Op op) {
  std::vector<PointR> points;
  for (std::size_t access : {64u, 128u, 256u, 1024u, 4096u}) {
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      for (lat::Pattern pattern : {lat::Pattern::kSeq, lat::Pattern::kRand}) {
        hw::Platform platform;
        const auto tel = g_trace.session(platform, g_point++);
        hw::NamespaceOptions o;
        o.device = hw::Device::kXp;
        o.interleaved = false;
        o.size = 2ull << 30;
        o.discard_data = true;
        auto& ns = platform.add_namespace(o);
        lat::WorkloadSpec spec;
        spec.op = op;
        spec.pattern = pattern;
        spec.access_size = access;
        spec.threads = threads;
        spec.region_size = o.size;
        // Cached-store curves only reach the natural-eviction steady
        // state after streaming past the LLC capacity.
        const bool cached = op != lat::Op::kNtStore;
        spec.warmup = cached ? sim::ms(3) : sim::us(50);
        spec.duration = cached ? sim::ms(3) : sim::ms(1);
        const lat::Result r = lat::run(platform, ns, spec);
        if (r.xp_delta.media_write_bytes > 0)
          points.push_back({std::min(r.ewr, 1.5), r.bandwidth_gbps});
      }
    }
  }
  return points;
}

struct Fit {
  double slope, r2;
};

Fit fit(const std::vector<PointR>& pts) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  const double n = static_cast<double>(pts.size());
  for (const auto& p : pts) {
    sx += p.ewr;
    sy += p.bw;
    sxx += p.ewr * p.ewr;
    sxy += p.ewr * p.bw;
    syy += p.bw * p.bw;
  }
  const double cov = sxy - sx * sy / n;
  const double varx = sxx - sx * sx / n;
  const double vary = syy - sy * sy / n;
  Fit f;
  f.slope = cov / varx;
  f.r2 = (cov * cov) / (varx * vary);
  return f;
}

void panel(const char* name, lat::Op op) {
  const auto pts = sweep(op);
  const Fit f = fit(pts);
  benchutil::row("%s: %zu points, slope=%.2f GB/s per EWR, r^2=%.2f", name,
                 pts.size(), f.slope, f.r2);
  for (const auto& p : pts)
    benchutil::row("    ewr=%.2f  bw=%.2f", p.ewr, p.bw);
}

// One representative workload re-run under a telemetry Session so the
// bench output carries a machine-readable summary (counter totals plus
// the per-DIMM EWR / bandwidth / queue-depth timeline).
void telemetry_summary() {
  using namespace xp;
  hw::Platform platform;
  telemetry::Options topts;
  topts.trace_path = g_trace.enabled()
                         ? telemetry::trace_point_path(g_trace.base, g_point)
                         : std::string{};
  telemetry::Session session(platform, std::move(topts));
  hw::NamespaceOptions o;
  o.device = hw::Device::kXp;
  o.interleaved = false;
  o.size = 2ull << 30;
  o.discard_data = true;
  auto& ns = platform.add_namespace(o);
  lat::WorkloadSpec spec;
  spec.op = lat::Op::kNtStore;
  spec.pattern = lat::Pattern::kSeq;
  spec.access_size = 256;
  spec.threads = 4;
  spec.region_size = o.size;
  spec.duration = sim::ms(1);
  lat::run(platform, ns, spec);
  std::printf("\n  telemetry_summary %s\n", session.summary_json().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  g_trace = benchutil::TraceOpts::from_args(argc, argv);
  benchutil::banner("Figure 9",
                    "EWR vs bandwidth on a single DIMM (scatter + fit)");
  panel("NT store", lat::Op::kNtStore);
  panel("Store", lat::Op::kStore);
  panel("Store+clwb", lat::Op::kStoreClwb);
  benchutil::note("paper: strong positive correlation for every store "
                  "kind (r^2 = 0.97/0.60/0.74); EWR is the lever for "
                  "write bandwidth");
  telemetry_summary();
  return 0;
}
