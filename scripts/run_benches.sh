#!/usr/bin/env bash
# Build Release, run the self-measurement harnesses (bench_timing writes
# BENCH_sweep.json, bench_stores writes BENCH_stores.json), and guard
# the sweep engine's determinism contract: every converted figure bench
# must print byte-identical tables with --jobs 1 and --jobs N. Intended
# for CI and for refreshing the committed JSON baselines.
#
# Usage: scripts/run_benches.sh [jobs]
#   jobs  defaults to the machine's core count (or XP_JOBS if set).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-${XP_JOBS:-$(nproc)}}"
# std::thread::hardware_concurrency() under-reports in containers; pass
# the real core count so the JSON headers record the actual machine.
CORES="$(nproc)"
BUILD=build-release

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD" -j "$(nproc)" --target \
    bench_timing bench_stores bench_ycsb fig02_idle_latency \
    fig04_bw_threads fig05_bw_access_size fig06_latency_under_load \
    fig13_persist_instructions fig14_sfence_interval \
    fig16_imc_contention > /dev/null

echo "== bench_timing (jobs=$JOBS) =="
"$BUILD/bench/bench_timing" --jobs "$JOBS" --host-cores "$CORES" \
    --out BENCH_sweep.json

echo
echo "== bench_stores (jobs=$JOBS) =="
# Write-combining grid plus the §5.1 read grid (stock vs combined point
# reads per store and the lsmkv read-cache capacity sweep). Exits
# non-zero if its serial vs parallel grids diverge (determinism).
"$BUILD/bench/bench_stores" --jobs "$JOBS" --host-cores "$CORES" \
    --out BENCH_stores.json

echo
echo "== bench_ycsb (jobs=$JOBS) =="
# YCSB A-F over all four stores plus the sharded per-DIMM frontend, and
# the --faults degraded-mode grid (healthy vs one-of-four shards
# quarantined under replication, plus the replicas=1 identity check).
# Exits non-zero if its serial vs parallel grids diverge (the engine's
# byte-identical-at-any---jobs contract) or a resilience gate fails.
"$BUILD/bench/bench_ycsb" --faults --jobs "$JOBS" --host-cores "$CORES" \
    --out BENCH_YCSB.json

# Determinism guard: byte-identical tables regardless of job count. The
# quick benches run their full sweeps; the long ones are already covered
# point-for-point by bench_timing's identical-results check above.
echo
echo "== determinism: --jobs 1 vs --jobs $JOBS =="
status=0
for bench in fig02_idle_latency fig13_persist_instructions \
             fig14_sfence_interval fig16_imc_contention; do
  a=$(mktemp) b=$(mktemp)
  "$BUILD/bench/$bench" --jobs 1       > "$a"
  "$BUILD/bench/$bench" --jobs "$JOBS" > "$b"
  if diff -q "$a" "$b" > /dev/null; then
    echo "  $bench: identical"
  else
    echo "  $bench: MISMATCH"
    diff "$a" "$b" | head -20
    status=1
  fi
  rm -f "$a" "$b"
done

# Golden-trace guard: the per-point Chrome-trace files a traced sweep
# writes must be byte-identical at --jobs 1 and --jobs N (point indices
# name the files, so the file set is job-count-invariant too).
echo
echo "== golden traces: fig13 --trace, --jobs 1 vs --jobs $JOBS =="
t1=$(mktemp -d) tn=$(mktemp -d)
"$BUILD/bench/fig13_persist_instructions" --jobs 1 \
    --trace "$t1/trace.json" > /dev/null
"$BUILD/bench/fig13_persist_instructions" --jobs "$JOBS" \
    --trace "$tn/trace.json" > /dev/null
if diff -rq "$t1" "$tn" > /dev/null; then
  echo "  traces: identical ($(ls "$t1" | wc -l) files)"
else
  echo "  traces: MISMATCH"
  diff -rq "$t1" "$tn" | head -10
  status=1
fi
rm -rf "$t1" "$tn"
exit $status
