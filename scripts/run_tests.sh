#!/usr/bin/env bash
# Full test gate: a Debug build with ASan+UBSan and a Release build, both
# running the complete ctest suite, then a bounded crash-point sweep
# (~200 points per store) as a smoke check that every persistent store's
# recovery invariants hold. Intended for CI and for pre-commit runs.
#
# Usage: scripts/run_tests.sh [jobs]
#   jobs  defaults to the machine's core count (or XP_JOBS if set).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-${XP_JOBS:-$(nproc)}}"

echo "== Debug + ASan/UBSan =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" > /dev/null
cmake --build build-asan -j "$JOBS" > /dev/null
(cd build-asan && ctest --output-on-failure -j "$JOBS")

echo
echo "== Release =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build build-release -j "$JOBS" > /dev/null
(cd build-release && ctest --output-on-failure -j "$JOBS")

echo
echo "== crashmc smoke sweep (~200 points per store) =="
build-release/bench/crashmc_sweep --points 200

echo
echo "All test gates passed."
