#!/usr/bin/env bash
# Full test gate: a Debug build with ASan+UBSan and a Release build, both
# running the complete ctest suite, then a bounded crash-point sweep
# (~200 points per store) plus a bounded media fault-injection campaign
# (fixed seed, ~100 points per store) as smoke checks that every
# persistent store's recovery invariants and poison-containment contract
# hold, and a bounded schedmc schedule-exploration sweep (PCT + DFS +
# crash composition, linearizability-checked, plus the seeded-fault
# negative run). Intended for CI and for pre-commit runs.
#
# Usage: scripts/run_tests.sh [--tier1] [jobs]
#   --tier1  run only the fast always-on gate (`ctest -L tier1`, Release
#            build only) — the quick pre-push loop; the full run remains
#            the merge gate.
#   jobs     defaults to the machine's core count (or XP_JOBS if set).
#
# When ccache is installed it fronts the compiler automatically, so
# repeated CI runs rebuild only what changed.
set -euo pipefail

cd "$(dirname "$0")/.."

TIER1=0
if [[ "${1:-}" == "--tier1" ]]; then
  TIER1=1
  shift
fi
JOBS="${1:-${XP_JOBS:-$(nproc)}}"

LAUNCHER_ARGS=()
if command -v ccache > /dev/null; then
  LAUNCHER_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

if [[ "$TIER1" == "1" ]]; then
  echo "== tier1 gate (Release, ctest -L tier1) =="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release \
      "${LAUNCHER_ARGS[@]}" > /dev/null
  cmake --build build-release -j "$JOBS" > /dev/null
  (cd build-release && ctest -L tier1 --output-on-failure -j "$JOBS")
  echo
  echo "tier1 gate passed."
  exit 0
fi

echo "== Debug + ASan/UBSan =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
    "${LAUNCHER_ARGS[@]}" \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" > /dev/null
cmake --build build-asan -j "$JOBS" > /dev/null
(cd build-asan && ctest --output-on-failure -j "$JOBS")

echo
echo "== Release =="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release \
    "${LAUNCHER_ARGS[@]}" > /dev/null
cmake --build build-release -j "$JOBS" > /dev/null
(cd build-release && ctest --output-on-failure -j "$JOBS")

echo
echo "== crashmc smoke sweep (~200 points per store) =="
build-release/bench/crashmc_sweep --points 200

echo
echo "== media fault-injection smoke campaign (~100 points per store) =="
build-release/bench/crashmc_sweep --faults --points 80 --poison-points 20 \
    --seed 42 --checksums

echo
echo "== resilience fault smoke (bench_ycsb --faults, ASan/UBSan) =="
# Degraded-mode grid on the replicated sharded frontend: zero silent
# corruptions under the read oracle, degraded throughput >= 0.6x
# healthy, the rebuilt shard byte-identical to its surviving replica,
# and replicas=1 result-identity. The binary exits non-zero if any
# resilience gate fails.
build-asan/bench/bench_ycsb --mini --faults --out "$(mktemp)"

echo
echo "== schedmc smoke sweep (bounded schedule exploration) =="
build-release/bench/schedmc_sweep --schedules 60 --dfs 24 --crash 2
# Negative run: the seeded lock-elision regression must be caught (the
# binary exits non-zero if the oracle misses it).
build-release/bench/schedmc_sweep --schedules 60 --dfs 24 --crash 0 --fault

echo
echo "All test gates passed."
