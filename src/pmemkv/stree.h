// Mini-PMemKV "stree" engine: a persistent B+-tree in the FPTree style
// (Oukid et al., SIGMOD'16 — cited by the paper's related work [45]).
//
// Hybrid SCM-DRAM design: only the *leaves* are persistent — a singly
// linked list of fixed-capacity nodes with unsorted slots and a validity
// bitmap — while the inner search structure lives in DRAM and is rebuilt
// by walking the leaf chain on open. This shape is exactly what the
// paper's guidelines favor on real Optane:
//
//  * the common-case insert is slot write + persist + one atomic 4-byte
//    bitmap persist (no shifting, minimal small random writes);
//  * value updates are out-of-place blob writes committed by one atomic
//    8-byte pointer persist;
//  * leaf splits, the only multi-word structural change, run inside a
//    pmemlib undo-log transaction.
//
// Keys up to 31 bytes inline; values are pool-allocated blobs. Freed
// blobs and crash-orphaned allocations are leaked (a real engine adds
// epoch GC); tests bound the churn.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pmemlib/linereader.h"
#include "pmemlib/pool.h"
#include "sim/status.h"

namespace xp::pmemkv {

struct STreeOptions {
  // ---- Read path (§5.1), both off by default so the stock read behavior
  // ---- and timing are unchanged -----------------------------------------
  // XPLine-granular read combining: the first touch of a leaf stages the
  // whole node as one line-aligned burst through a pmem::LineReader, so
  // the slot scan and value reads slice DRAM instead of issuing a 40 B
  // load per slot.
  bool read_combine = false;
  // DRAM read-cache capacity in 256 B lines (0 = no cache; 4096 = 1 MiB).
  // Backs the LineReader — effective only with read_combine — so hot
  // leaves are re-served from DRAM with no DIMM traffic.
  std::size_t read_cache_lines = 0;
};

class STree {
 public:
  static constexpr std::size_t kMaxKey = 31;
  static constexpr unsigned kLeafSlots = 32;

  explicit STree(pmem::Pool& pool, STreeOptions opts = {})
      : pool_(pool), opts_(opts) {}

  // Root slot layout: {u64 first_leaf}.
  void create(sim::ThreadCtx& ctx);
  void open(sim::ThreadCtx& ctx);  // rebuilds the DRAM index

  // Returns false (and does nothing) if the key exceeds kMaxKey.
  bool put(sim::ThreadCtx& ctx, std::string_view key, std::string_view value);
  bool get(sim::ThreadCtx& ctx, std::string_view key, std::string* value);
  bool remove(sim::ThreadCtx& ctx, std::string_view key);

  // In-order scan: up to max_results pairs with key >= start_key.
  std::vector<std::pair<std::string, std::string>> scan(
      sim::ThreadCtx& ctx, std::string_view start_key,
      std::size_t max_results);

  std::uint64_t count(sim::ThreadCtx& ctx);

  // Recovery invariants (crashmc checker entry point). Call after open():
  // validates the leaf chain against the durable image (untimed peeks):
  // leaves in-bounds and acyclic, valid slots with key_len <= kMaxKey and
  // value blobs inside the allocated heap, keys globally unique, and the
  // chain key-ordered (every key in a leaf below every key in the next).
  Status check(sim::ThreadCtx& ctx);

  // Excise media damage from the tree, then scrub it: a leaf with a bad
  // header or slot line truncates the chain there (everything after is
  // dropped, reported); a slot whose value blob sits on a bad line has
  // its bitmap bit cleared. The DRAM index is rebuilt afterwards. Reads
  // after repair() never raise MediaError and never return garbage.
  void repair(sim::ThreadCtx& ctx);

  struct RecoveryInfo {
    unsigned leaves_dropped = 0;  // unreadable leaf: chain truncated
    unsigned slots_dropped = 0;   // value blob on a bad line
    bool root_reset = false;      // first leaf unreadable: tree emptied
    bool damaged() const {
      return leaves_dropped != 0 || slots_dropped != 0 || root_reset;
    }
  };
  const RecoveryInfo& recovery() const { return recovery_; }

 private:
  struct Slot {  // 40 bytes
    std::uint8_t key_len;
    char key[kMaxKey];
    std::uint64_t val_off;  // -> {u32 len, bytes}
  };
  struct LeafHeader {  // 16 bytes; slots follow
    std::uint64_t next;
    std::uint32_t bitmap;  // bit i: slot i valid
    std::uint32_t pad;
  };
  static constexpr std::uint64_t kLeafSize =
      sizeof(LeafHeader) + kLeafSlots * sizeof(Slot);

  static std::uint64_t slot_off(std::uint64_t leaf, unsigned i) {
    return leaf + sizeof(LeafHeader) + i * sizeof(Slot);
  }

  LeafHeader read_header(sim::ThreadCtx& ctx, std::uint64_t leaf);
  Slot read_slot(sim::ThreadCtx& ctx, std::uint64_t leaf, unsigned i);
  std::string read_value(sim::ThreadCtx& ctx, std::uint64_t val_off);
  std::uint64_t write_value_blob(sim::ThreadCtx& ctx, std::string_view v);

  // Leaf that may contain `key` (via the DRAM index).
  std::uint64_t find_leaf(std::string_view key) const;
  // Slot index of `key` within the leaf, or -1.
  int find_slot(sim::ThreadCtx& ctx, std::uint64_t leaf,
                const LeafHeader& h, std::string_view key,
                Slot* out = nullptr);

  // Split `leaf` (full) into two; returns the leaf that should receive
  // `key` afterward. Transactional.
  std::uint64_t split_leaf(sim::ThreadCtx& ctx, std::uint64_t leaf,
                           std::string_view key);

  void index_leaf(sim::ThreadCtx& ctx, std::uint64_t leaf);
  std::string check_impl(sim::ThreadCtx& ctx);
  // Construct the per-create/open read-path state (fresh LineReader and,
  // if configured, the DRAM line cache). No-op beyond the reset with the
  // read knobs off.
  void init_read_path();

  pmem::Pool& pool_;
  STreeOptions opts_;
  std::uint64_t first_leaf_ = 0;
  // DRAM inner index: smallest key in leaf -> leaf offset.
  std::map<std::string, std::uint64_t> index_;
  RecoveryInfo recovery_;
  // ---- read-path state (STreeOptions::read_combine), idle when off -------
  std::unique_ptr<pmem::ReadCache> rcache_;
  pmem::LineReader reader_;
};

}  // namespace xp::pmemkv
