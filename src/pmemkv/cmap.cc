#include "pmemkv/cmap.h"

#include <cstring>
#include <set>
#include <unordered_set>
#include <vector>

#include "pmemlib/pmem_ops.h"

namespace xp::pmemkv {

namespace {

template <typename T>
T peek_pod(const hw::PmemNamespace& ns, std::uint64_t off) {
  T t{};
  ns.peek(off, std::span<std::uint8_t>(
                   reinterpret_cast<std::uint8_t*>(&t), sizeof(t)));
  return t;
}

// Software cost per engine operation: bucket locking, hashing, string
// handling and allocator bookkeeping. PMemKV's measured per-op overhead
// is high (its DRAM curve tops out near 10 GB/s in the paper's Fig 19);
// this constant reproduces that software-bound ceiling.
constexpr sim::Time kCpuOpCost = sim::ns(600);

// Writer-lane stream ids live far above any simulated thread id, so a
// lane never aliases a real thread's stream in the DIMM tracker.
constexpr unsigned kLaneStreamBase = 1u << 16;
}  // namespace

void CMap::create(sim::ThreadCtx& ctx) {
  table_ = pool_.alloc_raw(ctx, kBuckets * 8);
  // Zero the bucket array in 4 KB strides.
  std::vector<std::uint8_t> zeros(4096, 0);
  for (std::uint64_t p = 0; p < kBuckets * 8; p += zeros.size())
    pool_.ns().ntstore(ctx, table_ + p, zeros);
  pool_.ns().sfence(ctx);
  pmem::store_persist_pod(ctx, pool_.ns(), pool_.root(ctx), table_);
  init_read_path();
}

void CMap::open(sim::ThreadCtx& ctx) {
  table_ = pool_.ns().load_pod<std::uint64_t>(ctx, pool_.root(ctx));
  reset_admission();  // queue contents never survive a restart
  init_read_path();
}

void CMap::init_read_path() {
  reader_ = pmem::LineReader{};
  rcache_.reset();
  if (opts_.read_combine && opts_.read_cache_lines > 0) {
    pmem::ReadCacheOptions co;
    co.capacity_lines = opts_.read_cache_lines;
    rcache_ = std::make_unique<pmem::ReadCache>(pool_.ns(), co);
    reader_.attach_cache(rcache_.get());
  }
}

void CMap::admit_writer(sim::ThreadCtx& ctx, std::uint64_t off) {
  if (opts_.max_writers_per_dimm == 0) return;
  // Writer-lane admission (§5.3 thread cap): a contended resource the
  // schedule explorer perturbs — which thread wins a lane decides which
  // write stream the DIMM sees next.
  ctx.sched_point(sim::SchedPoint::kLaneAcquire);
  auto& ns = pool_.ns();
  if (lanes_.empty())
    lanes_.assign(ns.platform().timing().channels_per_socket, {});
  const unsigned ch = ns.decode(off).channel % lanes_.size();
  auto& free_at = lanes_[ch].free_at;
  if (free_at.empty()) free_at.assign(opts_.max_writers_per_dimm, 0);
  // Take the lane that frees up earliest, waiting for it if every lane
  // is still busy. The lane — not the issuing thread — is the stream
  // identity the DIMM sees, so a capped DIMM observes at most `cap`
  // write streams and its 4-entry stream tracker stays hot instead of
  // missing on every new XPLine under a rotating thread set.
  unsigned lane = 0;
  for (unsigned i = 1; i < free_at.size(); ++i)
    if (free_at[i] < free_at[lane]) lane = i;
  ctx.advance_to(free_at[lane]);
  admitted_lane_ = lane;
  ctx.set_write_stream(kLaneStreamBase + ch * opts_.max_writers_per_dimm +
                       lane);
}

void CMap::release_writer(sim::ThreadCtx& ctx, std::uint64_t off) {
  if (opts_.max_writers_per_dimm == 0) return;
  auto& lanes = lanes_[pool_.ns().decode(off).channel % lanes_.size()];
  lanes.free_at[admitted_lane_] = ctx.now();
  ctx.clear_write_stream();
  ctx.sched_point(sim::SchedPoint::kLaneRelease);
}

CMap::Located CMap::locate(sim::ThreadCtx& ctx, std::string_view key) {
  auto& ns = pool_.ns();
  const std::uint64_t h = hash(key);
  std::uint64_t link = bucket_off(h);
  if (opts_.read_combine) {
    // Combined walk (§5.1): each hop fetches the node's header + expected
    // key as one line burst and compares the key in place — no per-probe
    // heap string, and hot lines come from the DRAM cache.
    std::uint64_t node = reader_.fetch_pod<std::uint64_t>(ctx, ns, link);
    while (node != 0) {
      const auto hd = reader_.fetch_pod<NodeHeader>(
          ctx, ns, node, sizeof(NodeHeader) + key.size());
      if (hd.klen == key.size()) {
        const std::uint8_t* kb =
            reader_.fetch(ctx, ns, node + sizeof(NodeHeader), hd.klen);
        if (hd.klen == 0 || std::memcmp(kb, key.data(), hd.klen) == 0)
          return {node, link, hd};
      }
      link = node + offsetof(NodeHeader, next);
      node = hd.next;
    }
    return {0, link, {}};
  }
  std::uint64_t node = ns.load_pod<std::uint64_t>(ctx, link);
  while (node != 0) {
    const auto hd = ns.load_pod<NodeHeader>(ctx, node);
    if (hd.klen == key.size()) {
      std::string k(hd.klen, '\0');
      ns.load(ctx, node + sizeof(NodeHeader),
              std::span<std::uint8_t>(
                  reinterpret_cast<std::uint8_t*>(k.data()), hd.klen));
      if (k == key) return {node, link, hd};
    }
    link = node + offsetof(NodeHeader, next);
    node = hd.next;
  }
  return {0, link, {}};
}

void CMap::put(sim::ThreadCtx& ctx, std::string_view key,
               std::string_view value) {
  ctx.advance_by(kCpuOpCost);
  auto& ns = pool_.ns();
  Located loc = locate(ctx, key);
  if (loc.node != 0 && loc.header.vlen == value.size()) {
    // In-place value update (the `overwrite` fast path).
    const std::uint64_t dst =
        loc.node + sizeof(NodeHeader) + loc.header.klen;
    admit_writer(ctx, dst);
    ns.store_flush(ctx, dst,
                   std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(value.data()),
                       value.size()));
    ns.sfence(ctx);
    release_writer(ctx, dst);
    reader_.discard();  // the staged span may overlap the updated value
    return;
  }

  // Insert (or size-changing replace): new node, then swing the link.
  const std::size_t node_size =
      sizeof(NodeHeader) + key.size() + value.size();
  pmem::Tx tx(pool_, ctx);
  const std::uint64_t node = pool_.tx_alloc(tx, node_size);
  admit_writer(ctx, node);
  NodeHeader hd{};
  hd.next = loc.node != 0 ? loc.header.next
                          : ns.load_pod<std::uint64_t>(ctx, loc.pred_link);
  hd.klen = static_cast<std::uint32_t>(key.size());
  hd.vlen = static_cast<std::uint32_t>(value.size());
  std::vector<std::uint8_t> buf(node_size);
  std::memcpy(buf.data(), &hd, sizeof(hd));
  std::memcpy(buf.data() + sizeof(hd), key.data(), key.size());
  std::memcpy(buf.data() + sizeof(hd) + key.size(), value.data(),
              value.size());
  ns.store_flush(ctx, node, buf);
  tx.add(loc.pred_link, 8);
  tx.store(loc.pred_link,
           std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(&node), 8));
  if (loc.node != 0)
    pool_.tx_free(tx, loc.node,
                  sizeof(NodeHeader) + loc.header.klen + loc.header.vlen);
  tx.commit();
  release_writer(ctx, node);
  reader_.discard();  // the staged span may overlap the mutated chain
}

bool CMap::get(sim::ThreadCtx& ctx, std::string_view key,
               std::string* value) {
  ctx.advance_by(kCpuOpCost);
  auto& ns = pool_.ns();
  const Located loc = locate(ctx, key);
  if (loc.node == 0) return false;
  if (value != nullptr) {
    value->resize(loc.header.vlen);
    std::span<std::uint8_t> out(
        reinterpret_cast<std::uint8_t*>(value->data()), loc.header.vlen);
    const std::uint64_t voff =
        loc.node + sizeof(NodeHeader) + loc.header.klen;
    if (opts_.read_combine) {
      reader_.read(ctx, ns, voff, out);
    } else {
      ns.load(ctx, voff, out);
    }
  }
  return true;
}

bool CMap::remove(sim::ThreadCtx& ctx, std::string_view key) {
  ctx.advance_by(kCpuOpCost);
  const Located loc = locate(ctx, key);
  if (loc.node == 0) return false;
  pmem::Tx tx(pool_, ctx);
  tx.add(loc.pred_link, 8);
  tx.store(loc.pred_link,
           std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(&loc.header.next), 8));
  pool_.tx_free(tx, loc.node,
                sizeof(NodeHeader) + loc.header.klen + loc.header.vlen);
  tx.commit();
  reader_.discard();  // the staged span may overlap the unlinked node
  return true;
}

Status CMap::check(sim::ThreadCtx& ctx) {
  try {
    const std::string err = check_impl(ctx);
    if (err.empty()) return Status::Ok();
    return Status::Corruption(err);
  } catch (const hw::MediaError& e) {
    return Status::MediaFault(e.what());
  }
}

void CMap::repair(sim::ThreadCtx& ctx) {
  auto& ns = pool_.ns();
  const auto bad = ns.platform().ars(ns, 0, ns.size());
  if (bad.empty()) return;
  const std::set<std::uint64_t> bad_lines(bad.begin(), bad.end());
  constexpr std::uint64_t kLine = hw::Platform::kXpLineBytes;
  auto range_bad = [&](std::uint64_t off, std::uint64_t len) {
    for (std::uint64_t l = off & ~(kLine - 1); l < off + len; l += kLine)
      if (bad_lines.count(l) != 0) return true;
    return false;
  };

  for (std::uint32_t b = 0; b < kBuckets; ++b) {
    std::uint64_t link = table_ + b * 8;
    if (range_bad(link, 8)) {
      // The head pointer itself is gone; scrubbing below zeroes it, so
      // this bucket comes back empty and its whole chain leaks.
      ++recovery_.buckets_zeroed;
      continue;
    }
    std::uint64_t node = peek_pod<std::uint64_t>(ns, link);
    while (node != 0) {
      if (range_bad(node, sizeof(NodeHeader))) {
        // Header (and its next pointer) unreadable: cut the chain here.
        // `link` is on a clean line — it was just read.
        pmem::store_persist_pod(ctx, ns, link, std::uint64_t{0});
        ++recovery_.chains_cut;
        break;
      }
      const auto hd = peek_pod<NodeHeader>(ns, node);
      if (range_bad(node + sizeof(NodeHeader), hd.klen + hd.vlen)) {
        // Payload damaged but the header is intact: splice the node out
        // and keep walking the preserved tail.
        pmem::store_persist_pod(ctx, ns, link, hd.next);
        ++recovery_.nodes_spliced;
        node = hd.next;
        continue;
      }
      link = node + offsetof(NodeHeader, next);
      node = hd.next;
    }
  }
  // Only now is it safe to zero the bad lines — nothing references them.
  for (const std::uint64_t l : bad) pool_.scrub_line(ctx, l);
  reader_.discard();  // splices/scrubs rewrote lines the span may cover
}

std::string CMap::check_impl(sim::ThreadCtx& ctx) {
  const auto& ns = pool_.ns();
  const std::uint64_t heap_lo = pmem::Pool::heap_base();
  const std::uint64_t heap_hi = pool_.heap_top(ctx);
  if (table_ < heap_lo || table_ % 64 != 0 ||
      table_ + kBuckets * 8 > heap_hi)
    return "bucket table outside allocated heap";

  const std::uint64_t max_nodes = (heap_hi - heap_lo) / 64;
  for (std::uint32_t b = 0; b < kBuckets; ++b) {
    std::unordered_set<std::string> keys;
    std::uint64_t node = peek_pod<std::uint64_t>(ns, table_ + b * 8);
    std::uint64_t steps = 0;
    while (node != 0) {
      const std::string tag =
          "bucket " + std::to_string(b) + " node @" + std::to_string(node);
      if (++steps > max_nodes) return "bucket " + std::to_string(b) + ": cycle";
      if (node % 64 != 0 || node < heap_lo ||
          node + sizeof(NodeHeader) > heap_hi)
        return tag + ": offset outside allocated heap";
      const auto hd = peek_pod<NodeHeader>(ns, node);
      if (node + sizeof(NodeHeader) + hd.klen + hd.vlen > heap_hi)
        return tag + ": key/value overrun heap";
      std::string k(hd.klen, '\0');
      ns.peek(node + sizeof(NodeHeader),
              std::span<std::uint8_t>(
                  reinterpret_cast<std::uint8_t*>(k.data()), hd.klen));
      if ((hash(k) & (kBuckets - 1)) != b)
        return tag + ": key hashes to the wrong bucket";
      if (!keys.insert(k).second) return tag + ": duplicate key in chain";
      node = hd.next;
    }
  }
  return "";
}

std::uint64_t CMap::count(sim::ThreadCtx& ctx) {
  auto& ns = pool_.ns();
  std::uint64_t n = 0;
  for (std::uint32_t b = 0; b < kBuckets; ++b) {
    std::uint64_t node = ns.load_pod<std::uint64_t>(ctx, table_ + b * 8);
    while (node != 0) {
      ++n;
      node = ns.load_pod<NodeHeader>(ctx, node).next;
    }
  }
  return n;
}

}  // namespace xp::pmemkv
