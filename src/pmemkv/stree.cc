#include "pmemkv/stree.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <set>

#include "pmemlib/pmem_ops.h"

namespace xp::pmemkv {

namespace {
std::span<const std::uint8_t> bytes_of(const void* p, std::size_t n) {
  return {static_cast<const std::uint8_t*>(p), n};
}

template <typename T>
T peek_pod(const hw::PmemNamespace& ns, std::uint64_t off) {
  T t{};
  ns.peek(off, std::span<std::uint8_t>(
                   reinterpret_cast<std::uint8_t*>(&t), sizeof(t)));
  return t;
}
}  // namespace

STree::LeafHeader STree::read_header(sim::ThreadCtx& ctx,
                                     std::uint64_t leaf) {
  // With read_combine the header fetch stages the whole leaf (header +
  // all slots) as one line burst, so the slot scans that follow are pure
  // DRAM slicing — the §5.1 "access whole XPLines" guideline.
  if (opts_.read_combine)
    return reader_.fetch_pod<LeafHeader>(ctx, pool_.ns(), leaf, kLeafSize);
  return pool_.ns().load_pod<LeafHeader>(ctx, leaf);
}

STree::Slot STree::read_slot(sim::ThreadCtx& ctx, std::uint64_t leaf,
                             unsigned i) {
  if (opts_.read_combine)
    return reader_.fetch_pod<Slot>(ctx, pool_.ns(), slot_off(leaf, i));
  return pool_.ns().load_pod<Slot>(ctx, slot_off(leaf, i));
}

std::string STree::read_value(sim::ThreadCtx& ctx, std::uint64_t val_off) {
  if (opts_.read_combine) {
    const auto len = reader_.fetch_pod<std::uint32_t>(ctx, pool_.ns(),
                                                      val_off);
    std::string v(len, '\0');
    reader_.read(ctx, pool_.ns(), val_off + 4,
                 std::span<std::uint8_t>(
                     reinterpret_cast<std::uint8_t*>(v.data()), len));
    return v;
  }
  const auto len = pool_.ns().load_pod<std::uint32_t>(ctx, val_off);
  std::string v(len, '\0');
  pool_.ns().load(ctx, val_off + 4,
                  std::span<std::uint8_t>(
                      reinterpret_cast<std::uint8_t*>(v.data()), len));
  return v;
}

std::uint64_t STree::write_value_blob(sim::ThreadCtx& ctx,
                                      std::string_view v) {
  // Leak-on-crash allocation is safe: the blob becomes reachable only via
  // the atomic val_off persist that follows.
  const std::uint64_t off = pool_.alloc_raw(ctx, 4 + v.size());
  std::vector<std::uint8_t> buf(4 + v.size());
  const auto len = static_cast<std::uint32_t>(v.size());
  std::memcpy(buf.data(), &len, 4);
  std::memcpy(buf.data() + 4, v.data(), v.size());
  pmem::memcpy_persist(ctx, pool_.ns(), off, buf);
  return off;
}

void STree::create(sim::ThreadCtx& ctx) {
  first_leaf_ = pool_.alloc_raw(ctx, kLeafSize);
  LeafHeader h{0, 0, 0};
  pool_.ns().ntstore_persist(ctx, first_leaf_, bytes_of(&h, sizeof(h)));
  pmem::store_persist_pod(ctx, pool_.ns(), pool_.root(ctx), first_leaf_);
  index_.clear();
  index_[""] = first_leaf_;
  init_read_path();
}

void STree::init_read_path() {
  reader_ = pmem::LineReader{};
  rcache_.reset();
  if (opts_.read_combine && opts_.read_cache_lines > 0) {
    pmem::ReadCacheOptions co;
    co.capacity_lines = opts_.read_cache_lines;
    rcache_ = std::make_unique<pmem::ReadCache>(pool_.ns(), co);
    reader_.attach_cache(rcache_.get());
  }
}

void STree::open(sim::ThreadCtx& ctx) {
  first_leaf_ = pool_.ns().load_pod<std::uint64_t>(ctx, pool_.root(ctx));
  init_read_path();
  index_.clear();
  index_[""] = first_leaf_;
  for (std::uint64_t leaf = first_leaf_; leaf != 0;) {
    index_leaf(ctx, leaf);
    leaf = read_header(ctx, leaf).next;
  }
}

void STree::index_leaf(sim::ThreadCtx& ctx, std::uint64_t leaf) {
  const LeafHeader h = read_header(ctx, leaf);
  std::string smallest;
  bool have = false;
  for (unsigned i = 0; i < kLeafSlots; ++i) {
    if ((h.bitmap & (1u << i)) == 0) continue;
    const Slot s = read_slot(ctx, leaf, i);
    std::string k(s.key, s.key_len);
    if (!have || k < smallest) {
      smallest = std::move(k);
      have = true;
    }
  }
  if (leaf == first_leaf_) smallest.clear();  // root leaf owns [-inf, ..)
  if (have || leaf == first_leaf_) index_[smallest] = leaf;
}

std::uint64_t STree::find_leaf(std::string_view key) const {
  auto it = index_.upper_bound(std::string(key));
  assert(it != index_.begin());
  --it;
  return it->second;
}

int STree::find_slot(sim::ThreadCtx& ctx, std::uint64_t leaf,
                     const LeafHeader& h, std::string_view key, Slot* out) {
  for (unsigned i = 0; i < kLeafSlots; ++i) {
    if ((h.bitmap & (1u << i)) == 0) continue;
    const Slot s = read_slot(ctx, leaf, i);
    if (s.key_len == key.size() &&
        std::memcmp(s.key, key.data(), key.size()) == 0) {
      if (out != nullptr) *out = s;
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool STree::put(sim::ThreadCtx& ctx, std::string_view key,
                std::string_view value) {
  if (key.size() > kMaxKey) return false;
  std::uint64_t leaf = find_leaf(key);
  LeafHeader h = read_header(ctx, leaf);

  Slot existing;
  const int idx = find_slot(ctx, leaf, h, key, &existing);
  if (idx >= 0) {
    // Out-of-place value update, committed by one 8-byte persist.
    const std::uint64_t blob = write_value_blob(ctx, value);
    pmem::store_persist_pod(
        ctx, pool_.ns(),
        slot_off(leaf, static_cast<unsigned>(idx)) + offsetof(Slot, val_off),
        blob);
    reader_.discard();  // the staged leaf now holds a stale val_off
    return true;
  }

  if (std::popcount(h.bitmap) == static_cast<int>(kLeafSlots)) {
    leaf = split_leaf(ctx, leaf, key);
    h = read_header(ctx, leaf);
  }

  // Free slot: write it fully, persist, then flip the bitmap bit (the
  // atomic commit point).
  unsigned free_slot = 0;
  while (h.bitmap & (1u << free_slot)) ++free_slot;
  Slot s{};
  s.key_len = static_cast<std::uint8_t>(key.size());
  std::memcpy(s.key, key.data(), key.size());
  s.val_off = write_value_blob(ctx, value);
  pool_.ns().store_persist(ctx, slot_off(leaf, free_slot),
                           bytes_of(&s, sizeof(s)));
  const std::uint32_t new_bitmap = h.bitmap | (1u << free_slot);
  pmem::store_persist_pod(ctx, pool_.ns(),
                          leaf + offsetof(LeafHeader, bitmap), new_bitmap);

  reader_.discard();  // the staged leaf now holds the stale slot/bitmap
  return true;
}

std::uint64_t STree::split_leaf(sim::ThreadCtx& ctx, std::uint64_t leaf,
                                std::string_view key) {
  // A structural modification: readers racing a split are the classic
  // B-tree hazard, so announce it to the schedule explorer.
  ctx.sched_point(sim::SchedPoint::kHandoff);
  // Collect and sort the slots to pick the median.
  const LeafHeader h = read_header(ctx, leaf);
  std::vector<std::pair<std::string, unsigned>> keys;
  for (unsigned i = 0; i < kLeafSlots; ++i) {
    const Slot s = read_slot(ctx, leaf, i);
    keys.emplace_back(std::string(s.key, s.key_len), i);
  }
  std::sort(keys.begin(), keys.end());
  const std::string& median = keys[kLeafSlots / 2].first;

  pmem::Tx tx(pool_, ctx);
  const std::uint64_t right = pool_.tx_alloc(tx, kLeafSize);

  // Build the right leaf: upper half of the keys.
  LeafHeader rh{h.next, 0, 0};
  std::uint32_t moved = 0;
  std::vector<std::uint8_t> leafbuf(kLeafSize, 0);
  for (unsigned j = kLeafSlots / 2; j < kLeafSlots; ++j) {
    const unsigned src = keys[j].second;
    const Slot s = read_slot(ctx, leaf, src);
    std::memcpy(leafbuf.data() + sizeof(LeafHeader) + src * sizeof(Slot),
                &s, sizeof(s));
    moved |= 1u << src;
  }
  rh.bitmap = moved;
  std::memcpy(leafbuf.data(), &rh, sizeof(rh));
  pool_.ns().ntstore(ctx, right, leafbuf);
  pool_.ns().sfence(ctx);

  // Atomically (via the undo log) unlink the moved slots from the left
  // leaf and link the right leaf.
  const std::uint32_t left_bitmap = h.bitmap & ~moved;
  tx.add(leaf, sizeof(LeafHeader));
  LeafHeader lh{right, left_bitmap, 0};
  tx.store(leaf, bytes_of(&lh, sizeof(lh)));
  tx.commit();
  // The caller re-reads the left leaf's header right after the split, so
  // the staged (pre-split) copy must go now, not at end of put().
  reader_.discard();

  index_[median] = right;
  return key >= median ? right : leaf;
}

bool STree::get(sim::ThreadCtx& ctx, std::string_view key,
                std::string* value) {
  if (key.size() > kMaxKey) return false;
  const std::uint64_t leaf = find_leaf(key);
  const LeafHeader h = read_header(ctx, leaf);
  Slot s;
  if (find_slot(ctx, leaf, h, key, &s) < 0) return false;
  if (value != nullptr) *value = read_value(ctx, s.val_off);
  return true;
}

bool STree::remove(sim::ThreadCtx& ctx, std::string_view key) {
  if (key.size() > kMaxKey) return false;
  const std::uint64_t leaf = find_leaf(key);
  const LeafHeader h = read_header(ctx, leaf);
  const int idx = find_slot(ctx, leaf, h, key);
  if (idx < 0) return false;
  const std::uint32_t new_bitmap = h.bitmap & ~(1u << idx);
  pmem::store_persist_pod(ctx, pool_.ns(),
                          leaf + offsetof(LeafHeader, bitmap), new_bitmap);
  reader_.discard();  // the staged leaf now holds the stale bitmap
  return true;
}

std::vector<std::pair<std::string, std::string>> STree::scan(
    sim::ThreadCtx& ctx, std::string_view start_key,
    std::size_t max_results) {
  std::vector<std::pair<std::string, std::string>> out;
  auto it = index_.upper_bound(std::string(start_key));
  if (it != index_.begin()) --it;
  for (; it != index_.end() && out.size() < max_results; ++it) {
    const std::uint64_t leaf = it->second;
    const LeafHeader h = read_header(ctx, leaf);
    std::vector<std::pair<std::string, std::string>> in_leaf;
    for (unsigned i = 0; i < kLeafSlots; ++i) {
      if ((h.bitmap & (1u << i)) == 0) continue;
      const Slot s = read_slot(ctx, leaf, i);
      std::string k(s.key, s.key_len);
      if (k < start_key) continue;
      in_leaf.emplace_back(std::move(k), read_value(ctx, s.val_off));
    }
    std::sort(in_leaf.begin(), in_leaf.end());
    for (auto& kv : in_leaf) {
      if (out.size() >= max_results) break;
      out.push_back(std::move(kv));
    }
  }
  return out;
}

Status STree::check(sim::ThreadCtx& ctx) {
  try {
    const std::string err = check_impl(ctx);
    if (err.empty()) return Status::Ok();
    return Status::Corruption(err);
  } catch (const hw::MediaError& e) {
    return Status::MediaFault(e.what());
  }
}

void STree::repair(sim::ThreadCtx& ctx) {
  auto& ns = pool_.ns();
  const auto bad = ns.platform().ars(ns, 0, ns.size());
  if (bad.empty()) return;
  const std::set<std::uint64_t> bad_lines(bad.begin(), bad.end());
  constexpr std::uint64_t kLine = hw::Platform::kXpLineBytes;
  auto range_bad = [&](std::uint64_t off, std::uint64_t len) {
    for (std::uint64_t l = off & ~(kLine - 1); l < off + len; l += kLine)
      if (bad_lines.count(l) != 0) return true;
    return false;
  };

  if (range_bad(pool_.root(ctx), 8)) {
    // The root pointer itself is gone, so the whole chain is unreachable
    // (a reported total loss). Scrub everything and re-create an empty
    // tree so later opens see a valid structure.
    for (const std::uint64_t l : bad) pool_.scrub_line(ctx, l);
    create(ctx);
    recovery_.root_reset = true;
    return;
  }
  if (first_leaf_ == 0)  // open() never completed; the root line is clean
    first_leaf_ = peek_pod<std::uint64_t>(ns, pool_.root(ctx));

  std::uint64_t prev = 0;
  for (std::uint64_t leaf = first_leaf_; leaf != 0;) {
    if (range_bad(leaf, sizeof(LeafHeader))) {
      // Header (next pointer + bitmap) unreadable: everything from here
      // on is unreachable. Scrubbing zeroes the header, which for the
      // first leaf *is* a fresh empty leaf {next=0, bitmap=0}.
      if (prev == 0) {
        recovery_.root_reset = true;
      } else {
        pmem::store_persist_pod(ctx, ns, prev + offsetof(LeafHeader, next),
                                std::uint64_t{0});
      }
      ++recovery_.leaves_dropped;
      break;
    }
    const auto h = peek_pod<LeafHeader>(ns, leaf);
    std::uint32_t bitmap = h.bitmap;
    for (unsigned i = 0; i < kLeafSlots; ++i) {
      if ((bitmap & (1u << i)) == 0) continue;
      bool drop = range_bad(slot_off(leaf, i), sizeof(Slot));
      if (!drop) {
        const auto s = peek_pod<Slot>(ns, slot_off(leaf, i));
        drop = range_bad(s.val_off, 4) ||
               range_bad(s.val_off, 4 + peek_pod<std::uint32_t>(ns, s.val_off));
      }
      if (drop) {
        bitmap &= ~(1u << i);
        ++recovery_.slots_dropped;
      }
    }
    if (bitmap != h.bitmap)
      pmem::store_persist_pod(ctx, ns, leaf + offsetof(LeafHeader, bitmap),
                              bitmap);
    prev = leaf;
    leaf = h.next;
  }

  // Nothing references the bad lines any more; zero them and rebuild the
  // DRAM index from the surviving chain.
  for (const std::uint64_t l : bad) pool_.scrub_line(ctx, l);
  open(ctx);
}

std::string STree::check_impl(sim::ThreadCtx& ctx) {
  const auto& ns = pool_.ns();
  const std::uint64_t heap_lo = pmem::Pool::heap_base();
  const std::uint64_t heap_hi = pool_.heap_top(ctx);
  if (first_leaf_ == 0) return "no root leaf";

  std::set<std::string> keys;
  std::string prev_leaf_max;
  bool have_prev = false;
  std::uint64_t leaves = 0;
  const std::uint64_t max_leaves = (heap_hi - heap_lo) / kLeafSize + 1;
  for (std::uint64_t leaf = first_leaf_; leaf != 0;) {
    const std::string tag = "leaf @" + std::to_string(leaf);
    if (++leaves > max_leaves) return "leaf chain: cycle";
    if (leaf % 64 != 0 || leaf < heap_lo || leaf + kLeafSize > heap_hi)
      return tag + ": outside allocated heap";
    const auto h = peek_pod<LeafHeader>(ns, leaf);
    std::string leaf_min, leaf_max;
    bool have_any = false;
    for (unsigned i = 0; i < kLeafSlots; ++i) {
      if ((h.bitmap & (1u << i)) == 0) continue;
      const auto s = peek_pod<Slot>(ns, slot_off(leaf, i));
      if (s.key_len > kMaxKey)
        return tag + " slot " + std::to_string(i) + ": bad key_len";
      std::string k(s.key, s.key_len);
      if (s.val_off < heap_lo || s.val_off + 4 > heap_hi)
        return tag + " key '" + k + "': val_off outside heap";
      const auto vlen = peek_pod<std::uint32_t>(ns, s.val_off);
      if (s.val_off + 4 + vlen > heap_hi)
        return tag + " key '" + k + "': value blob overruns heap";
      if (!keys.insert(k).second) return "duplicate key '" + k + "'";
      if (!have_any || k < leaf_min) leaf_min = k;
      if (!have_any || k > leaf_max) leaf_max = k;
      have_any = true;
    }
    if (have_any && have_prev && leaf_min <= prev_leaf_max)
      return tag + ": chain not key-ordered ('" + leaf_min +
             "' after '" + prev_leaf_max + "')";
    if (have_any) {
      prev_leaf_max = leaf_max;
      have_prev = true;
    }
    leaf = h.next;
  }
  return "";
}

std::uint64_t STree::count(sim::ThreadCtx& ctx) {
  std::uint64_t n = 0;
  for (std::uint64_t leaf = first_leaf_; leaf != 0;) {
    const LeafHeader h = read_header(ctx, leaf);
    n += static_cast<unsigned>(std::popcount(h.bitmap));
    leaf = h.next;
  }
  return n;
}

}  // namespace xp::pmemkv
