// Mini-PMemKV "cmap" engine: a persistent chained hash map (paper §5.4.1).
//
// Mirrors PMemKV's concurrent hash map: a fixed bucket array of head
// pointers in persistent memory, per-bucket chains of nodes, in-place
// value updates when sizes match (the common case for the `overwrite`
// benchmark of Fig 19), and atomic 8-byte pointer swaps for inserts.
// Simulated-thread concurrency is modeled with a per-bucket lock cost.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pmemlib/linereader.h"
#include "pmemlib/pool.h"
#include "sim/simtime.h"
#include "sim/status.h"

namespace xp::pmemkv {

// Where the engine's pool should live relative to the serving threads
// (paper §5.4: NUMA-remote pmem access collapses under load).
enum class Placement {
  kFixed,      // pool socket chosen independently of the servers
  kNumaLocal,  // pool socket = the socket serving the requests
};

inline unsigned placement_socket(Placement p, unsigned server_socket,
                                 unsigned fixed_socket = 0) {
  return p == Placement::kNumaLocal ? server_socket : fixed_socket;
}

struct CMapOptions {
  // §5.3: cap the number of distinct writers per XP DIMM. The DIMM
  // tracks only 4 write streams; more rotating writer threads than that
  // miss the stream tracker on nearly every new XPLine and serialize on
  // the controller. With a cap, the engine funnels every put through one
  // of `cap` per-DIMM writer lanes: the lane (not the issuing thread) is
  // the write-stream identity the DIMM sees, and a put waits for the
  // earliest-free lane when all are busy. 0 = unthrottled (stock
  // behavior, the fig19 configuration).
  unsigned max_writers_per_dimm = 0;

  // ---- Read path (§5.1), both off by default so the stock read behavior
  // ---- and timing are unchanged -----------------------------------------
  // XPLine-granular read combining: the bucket-chain walk fetches each
  // node's header + key as one line-aligned burst through a
  // pmem::LineReader instead of two dependent sub-64 B loads.
  bool read_combine = false;
  // DRAM read-cache capacity in 256 B lines (0 = no cache; 4096 = 1 MiB).
  // Backs the LineReader — effective only with read_combine — so hot
  // bucket-table lines and chain nodes are re-served from DRAM.
  std::size_t read_cache_lines = 0;
};

class CMap {
 public:
  static constexpr std::uint32_t kBuckets = 1 << 16;

  explicit CMap(pmem::Pool& pool, CMapOptions opts = {})
      : pool_(pool), opts_(opts) {}

  // Allocate the bucket array (root object must hold >= 8 bytes; the
  // bucket table is referenced from it).
  void create(sim::ThreadCtx& ctx);
  void open(sim::ThreadCtx& ctx);

  void put(sim::ThreadCtx& ctx, std::string_view key, std::string_view value);
  bool get(sim::ThreadCtx& ctx, std::string_view key, std::string* value);
  bool remove(sim::ThreadCtx& ctx, std::string_view key);

  // Forget all writer-lane bookkeeping. Lane-free times are absolute, so
  // they must be cleared when the caller starts a new measurement epoch
  // (Platform::reset_timing) — stale times from the old epoch would read
  // as lanes still busy far in the new epoch's future and stall every
  // admission behind them.
  void reset_admission() { lanes_.clear(); }

  std::uint64_t count(sim::ThreadCtx& ctx);

  // Recovery invariants (crashmc checker entry point). Call after open():
  // validates the bucket table and every chain against the durable image
  // (untimed peeks — the 64K-bucket scan would swamp simulated time):
  // node offsets aligned and inside the allocated heap, chains acyclic,
  // keys hashing to their bucket, no duplicate key within a chain.
  Status check(sim::ThreadCtx& ctx);

  // Excise media damage from the map, then scrub it: a node whose payload
  // is on a bad line is spliced out of its chain, a node whose header is
  // unreadable cuts the chain there (the tail leaks, reported), and a bad
  // bucket-table line zeroes its buckets (their chains leak). Reads after
  // repair() never raise MediaError and never return garbage.
  void repair(sim::ThreadCtx& ctx);

  struct RecoveryInfo {
    unsigned chains_cut = 0;      // unreadable node header: tail dropped
    unsigned nodes_spliced = 0;   // unreadable payload: node dropped
    unsigned buckets_zeroed = 0;  // bucket-table line lost
    bool damaged() const {
      return chains_cut != 0 || nodes_spliced != 0 || buckets_zeroed != 0;
    }
  };
  const RecoveryInfo& recovery() const { return recovery_; }

 private:
  struct NodeHeader {
    std::uint64_t next;
    std::uint32_t klen;
    std::uint32_t vlen;
  };

  static std::uint64_t hash(std::string_view s) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
    return h;
  }

  std::uint64_t bucket_off(std::uint64_t h) const {
    return table_ + (h & (kBuckets - 1)) * 8;
  }

  // Find the node for `key` in its chain; returns {node_off, pred_link_off}
  // where pred_link_off is the address of the pointer that references it.
  struct Located {
    std::uint64_t node = 0;
    std::uint64_t pred_link = 0;
    NodeHeader header{};
  };
  Located locate(sim::ThreadCtx& ctx, std::string_view key);
  std::string check_impl(sim::ThreadCtx& ctx);
  // Construct the per-create/open read-path state (fresh LineReader and,
  // if configured, the DRAM line cache). No-op beyond the reset with the
  // read knobs off.
  void init_read_path();

  // Per-DIMM write admission (§5.3): take the earliest-free writer lane
  // for the target DIMM (waiting for it when all lanes are busy) and
  // present the lane as the thread's write-stream identity until release.
  void admit_writer(sim::ThreadCtx& ctx, std::uint64_t off);
  void release_writer(sim::ThreadCtx& ctx, std::uint64_t off);

  pmem::Pool& pool_;
  CMapOptions opts_;
  std::uint64_t table_ = 0;
  // One lane set per channel of the pool's namespace, sized lazily.
  // free_at[i] is the absolute time lane i's last write finished.
  // Simulated threads cooperate through the shared CMap, and a put is
  // atomic within one scheduler step, so one admitted-lane slot suffices.
  struct Lanes {
    std::vector<sim::Time> free_at;
  };
  std::vector<Lanes> lanes_;
  unsigned admitted_lane_ = 0;
  RecoveryInfo recovery_;
  // ---- read-path state (CMapOptions::read_combine), idle when off --------
  std::unique_ptr<pmem::ReadCache> rcache_;
  pmem::LineReader reader_;
};

}  // namespace xp::pmemkv
