// Every timing and capacity parameter of the simulated platform.
//
// Defaults model the paper's testbed: dual-socket 24-core Cascade Lake,
// 6 memory channels per socket, one 256 GB Optane DIMM ("XP DIMM") and one
// 32 GB DDR4 DIMM per channel. Values are calibrated so the *published*
// first-order numbers come out of the mechanism (see EXPERIMENTS.md):
// idle read latency 81/101 ns DRAM, 169/305 ns Optane (seq/rand); write
// latency ~57/62 ns (store+clwb) and ~86/90 ns (ntstore); per-DIMM peak
// read 6.6 GB/s, write 2.3 GB/s; XPBuffer 16 KB; WPQ per-thread 256 B.
#pragma once

#include <cstddef>

#include "sim/simtime.h"

namespace xp::hw {

using sim::Time;

struct Timing {
  // ---- Topology ---------------------------------------------------------
  unsigned sockets = 2;
  unsigned channels_per_socket = 6;  // 2 iMCs x 3 channels
  unsigned cores_per_socket = 24;

  // ---- Granularities ----------------------------------------------------
  std::size_t cacheline = 64;          // CPU + DDR-T transfer unit
  std::size_t xpline = 256;            // 3D XPoint internal access unit
  std::size_t interleave_chunk = 4096; // per-DIMM contiguous block

  // ---- Core & on-chip interconnect ---------------------------------------
  Time issue_gap = sim::ns(1.5);       // min gap between issued accesses
  Time store_hit = sim::ns(1.0);       // store into an L1-resident line
  Time cache_hit = sim::ns(5);         // load serviced by the cache model
  Time mesh = sim::ns(35);             // core <-> iMC on-chip latency
  Time fence_overhead = sim::ns(8);    // sfence/mfence fixed cost
  // Effective outstanding 64 B requests per core under streaming access
  // (line-fill buffers plus L2 prefetch streams). Latency experiments use
  // dependent accesses (mlp = 1) instead.
  unsigned default_mlp = 20;

  // ---- CPU cache model ---------------------------------------------------
  std::size_t llc_lines = 512 * 1024;  // 32 MB per socket
  Time ntstore_wc_flush = sim::ns(22); // write-combining buffer drain
  // eADR (paper §6, [43]/[67]): extend the persistence domain down to the
  // caches. On power failure dirty lines are flushed on reserve energy
  // instead of lost, so plain stores are durable and clwb is unnecessary.
  bool eadr = false;

  // ---- iMC pending queues ------------------------------------------------
  std::size_t wpq_depth = 24;          // 64 B entries per XP DIMM WPQ
  std::size_t rpq_depth = 48;
  std::size_t wpq_thread_credit = 4;   // 256 B in-flight per thread (§5.3)
  Time wpq_sched = sim::ns(4);         // iMC scheduling per entry
  Time rpq_sched = sim::ns(6);

  // ---- DDR-T (XP DIMM interface) -----------------------------------------
  double ddrt_gbps = 15.0;             // per DIMM, per direction
  Time ddrt_cmd = sim::ns(4);

  // ---- XP DIMM controller -------------------------------------------------
  std::size_t xpbuffer_lines = 64;     // 64 x 256 B = 16 KB (Fig 10)
  Time xpbuffer_merge = sim::ns(6);    // coalesce one 64 B into a line
  Time xpbuffer_read = sim::ns(60);    // read 64 B out of the buffer
  // Optional age-based eager drain (0 = disabled; see bench/abl_xpbuffer).
  Time xpbuffer_drain_age = 0;
  Time xp_write_ack = sim::ns(4);      // controller accept for a write
  unsigned ait_cache_entries = 16384;  // cached 4 KB translation regions
  Time ait_hit = sim::ns(8);          // translation when cached
  Time ait_miss = sim::ns(12);         // fetch from the on-DIMM AIT DRAM
  // Stream trackers: the controller handles at most this many concurrent
  // write (resp. read) streams efficiently; an XPLine allocation by an
  // untracked stream pays a controller-serialized re-setup. This is the
  // mechanism that makes per-DIMM bandwidth *fall* (not just saturate) as
  // threads are added (§5.3, Fig 4 center, Fig 16).
  unsigned xp_write_streams = 4;
  unsigned xp_read_streams = 4;
  Time xp_ctrl_op = sim::ns(3);        // controller occupancy per 64 B
  Time xp_write_stream_miss = sim::ns(150);  // per untracked line alloc
  Time xp_read_stream_miss = sim::ns(35);

  // ---- 3D XPoint media ----------------------------------------------------
  unsigned xp_banks = 6;               // concurrent media units per DIMM
  Time xp_media_read = sim::ns(241);   // 256 B line read occupancy
  Time xp_media_write = sim::ns(662);  // 256 B line write occupancy
  std::uint64_t wear_threshold = 16384;  // writes per line before migration
  Time wear_migration = sim::us(50);   // controller blocked during remap

  // ---- DRAM DIMM ----------------------------------------------------------
  unsigned dram_banks = 16;
  std::size_t dram_row = 8192;         // row-buffer coverage
  Time dram_row_hit = sim::ns(26);     // 64 B access latency, open row
  Time dram_row_miss = sim::ns(47);    // precharge + activate + access
  // Bank *occupancy* per access is much shorter than the access latency:
  // open-row column reads pipeline every few ns; a row miss holds the
  // bank for the precharge+activate window.
  Time dram_row_hit_busy = sim::ns(4);
  Time dram_row_miss_busy = sim::ns(34);
  double dram_bus_gbps = 18.0;         // per channel
  std::size_t dram_wpq_depth = 48;
  Time dram_write_ack = sim::ns(6);

  // ---- Cross-socket (UPI) -------------------------------------------------
  Time upi_latency = sim::ns(62);      // one-way command adder
  double upi_gbps = 23.0;              // payload bandwidth per direction
  // A remote write holds the outbound lane until the target iMC accepts
  // it. Acceptance within `upi_hold_floor` is pipelined away (DRAM and an
  // unloaded XP DIMM); only the excess (a backed-up XP DIMM) blocks the
  // lane, scaled by upi_write_hold.
  Time upi_hold_floor = sim::ns(30);
  double upi_write_hold = 1.0;

  // ---- Memory Mode (DRAM as direct-mapped cache for XP) -------------------
  // Per-socket near-memory (DRAM cache) capacity. The testbed has 32 GB;
  // ablations scale it down so tag-array fill fits a short simulation.
  std::uint64_t memory_mode_near_bytes = 32ull << 30;

  // Convenience
  unsigned total_cores() const { return sockets * cores_per_socket; }
};

// Emulation knobs applied per namespace; models the methodologies the
// paper compares against in Section 4.
struct EmulationKnobs {
  Time extra_load_latency = 0;         // PMEP: +300 ns on loads
  double write_slowdown = 1.0;         // PMEP: write bandwidth / 8
};

inline EmulationKnobs pmep_knobs() {
  return EmulationKnobs{sim::ns(300), 8.0};
}

}  // namespace xp::hw
