// Cross-socket interconnect (UPI) model.
//
// Remote accesses pay a one-way command latency plus payload transfer
// over per-direction lanes. The key asymmetry (§5.4, Figs 18/19): a
// remote *write* holds its outbound lane until the target iMC admits the
// data. A DRAM WPQ drains in nanoseconds, so DRAM barely notices; an XP
// DIMM under write pressure drains slowly, so remote writes serialize on
// the link and drag down any reads whose commands share the outbound
// lane — which is why multi-threaded mixed read/write remote traffic to
// Optane collapses (>30x in the paper's sweep) while pure reads only
// lose ~40%.
#pragma once

#include "sim/simtime.h"
#include "xpsim/timing.h"

namespace xp::hw {

class UpiLink {
 public:
  explicit UpiLink(const Timing& t)
      : timing_(t),
        per64_(sim::transfer_time(t.cacheline, t.upi_gbps)) {}

  Time command_latency() const { return timing_.upi_latency; }

  // Outbound (to the remote socket): commands and store data.
  Time outbound(Time t, Time service) {
    const Time start = t > out_free_ ? t : out_free_;
    out_free_ = start + service;
    return out_free_;
  }

  // Keep the outbound lane busy until `until` (home agent waiting for the
  // target iMC to accept a write).
  void hold_outbound(Time until) {
    if (until > out_free_) out_free_ = until;
  }

  // Inbound (back to the requesting socket): load data returns.
  Time inbound(Time t, Time service) {
    const Time start = t > in_free_ ? t : in_free_;
    in_free_ = start + service;
    return in_free_;
  }

  Time data64() const { return per64_; }

  void reset_timing() {
    out_free_ = 0;
    in_free_ = 0;
  }

 private:
  const Timing& timing_;
  Time per64_;
  Time out_free_ = 0;
  Time in_free_ = 0;
};

}  // namespace xp::hw
