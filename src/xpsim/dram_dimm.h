// DDR4 DRAM DIMM model: per-bank row buffers behind a channel bus.
//
// Used both as the DRAM baseline in every figure and as the substrate for
// the emulation methodologies of Section 4 (plain DRAM-as-pmem,
// DRAM-Remote, and PMEP via EmulationKnobs). Row-buffer hits vs. misses
// produce the paper's modest 20% sequential/random gap, in contrast to
// Optane's 80%.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/resource.h"
#include "sim/simtime.h"
#include "xpsim/counters.h"
#include "xpsim/timing.h"

namespace xp::hw {

class DramDimm {
 public:
  explicit DramDimm(const Timing& t)
      : timing_(t),
        bus_rd_(1),
        bus_wr_(1),
        wpq_(t.dram_wpq_depth),
        bank_free_(t.dram_banks, 0),
        bank_row_(t.dram_banks, ~std::uint64_t{0}),
        bus_64b_(sim::transfer_time(t.cacheline, t.dram_bus_gbps)) {}

  // 64 B read; returns data arrival time at the iMC.
  Time read64(Time t, std::uint64_t addr) {
    counters_.read_bytes += timing_.cacheline;
    const Time bank_done = bank_access(t + timing_.rpq_sched, addr, 1.0);
    return bus_rd_.acquire(bank_done, bus_64b_).end;
  }

  // 64 B write; returns the persist-ack time (WPQ admission). The bank
  // write drains asynchronously but backs up the WPQ when slow, which is
  // how PMEP's 1/8 write-bandwidth throttle manifests.
  Time write64(Time t, std::uint64_t addr, double write_slowdown,
               Time* admit_wait = nullptr) {
    counters_.write_bytes += timing_.cacheline;
    const Time slot = wpq_.admission_time(t);
    if (admit_wait != nullptr) *admit_wait = slot - t;
    const Time admit = slot + timing_.wpq_sched;
    const Time bus_done = bus_wr_.acquire(admit, bus_64b_).end;
    const Time drained = bank_access(bus_done, addr, write_slowdown);
    wpq_.push(drained);
    return admit + timing_.dram_write_ack;
  }

  const DramCounters& counters() const { return counters_; }

  // New measurement epoch: forget reservations; row state and counters
  // persist.
  void reset_timing() {
    bus_rd_.reset();
    bus_wr_.reset();
    wpq_.reset();
    std::fill(bank_free_.begin(), bank_free_.end(), Time{0});
  }

 private:
  Time bank_access(Time t, std::uint64_t addr, double slowdown) {
    const std::uint64_t global_row = addr / timing_.dram_row;
    const std::size_t bank = global_row % timing_.dram_banks;
    const std::uint64_t row = global_row / timing_.dram_banks;
    Time latency, busy;
    if (bank_row_[bank] == row) {
      latency = timing_.dram_row_hit;
      busy = timing_.dram_row_hit_busy;
      ++counters_.row_hits;
    } else {
      latency = timing_.dram_row_miss;
      busy = timing_.dram_row_miss_busy;
      bank_row_[bank] = row;
      ++counters_.row_misses;
    }
    latency = static_cast<Time>(static_cast<double>(latency) * slowdown);
    busy = static_cast<Time>(static_cast<double>(busy) * slowdown);
    const Time start = std::max(t, bank_free_[bank]);
    bank_free_[bank] = start + busy;
    return start + latency;
  }

  const Timing& timing_;
  // Separate read/write data paths so in-flight read returns (reserved at
  // bank-completion times) don't ratchet ahead of write transfers issued
  // at earlier times.
  sim::Resource bus_rd_;
  sim::Resource bus_wr_;
  sim::BoundedQueue wpq_;
  std::vector<Time> bank_free_;
  std::vector<std::uint64_t> bank_row_;
  Time bus_64b_;
  DramCounters counters_;
};

}  // namespace xp::hw
