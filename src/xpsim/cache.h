// CPU cache model (per socket), holding real data.
//
// The cache is the volatile layer above the ADR domain: dirty lines here
// are LOST on a crash, which is what makes clwb/clflush/ntstore + sfence
// necessary for persistence. Three behaviors it must capture:
//
//  * store-allocate (RFO): a store to an uncached line first reads the
//    line from memory — the extra read traffic that makes ntstore win for
//    large transfers (Fig 13);
//  * natural evictions pick a pseudo-random victim, so write-back order is
//    shuffled relative to program order — destroying the sequentiality the
//    XPBuffer needs and dropping EWR from ~0.98 to ~0.26 (§5.2);
//  * clwb writes a line back but keeps it cached clean; clflush(opt)
//    evict it.
//
// Capacity is llc_lines 64 B lines (32 MB default). Implemented as a hash
// map plus an address vector for O(1) random victim selection.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/rng.h"
#include "xpsim/counters.h"

namespace xp::hw {

class CacheModel {
 public:
  static constexpr std::size_t kLineSize = 64;
  using LineData = std::array<std::uint8_t, kLineSize>;

  struct Victim {
    std::uint64_t line_addr;
    LineData data;
    bool dirty;
  };

  CacheModel(std::size_t capacity_lines, std::uint64_t seed)
      : capacity_(capacity_lines), rng_(seed) {
    map_.reserve(capacity_lines / 4);
  }

  // Returns the cached data for `line_addr`, or nullptr.
  std::uint8_t* find(std::uint64_t line_addr) {
    auto it = map_.find(line_addr);
    return it == map_.end() ? nullptr : it->second.data.data();
  }

  bool is_dirty(std::uint64_t line_addr) const {
    auto it = map_.find(line_addr);
    return it != map_.end() && it->second.dirty;
  }

  bool contains(std::uint64_t line_addr) const {
    return map_.count(line_addr) != 0;
  }

  void mark_dirty(std::uint64_t line_addr, bool dirty) {
    auto it = map_.find(line_addr);
    if (it != map_.end()) it->second.dirty = dirty;
  }

  // Install a line. If the cache is full, a pseudo-random victim is
  // evicted and returned so the caller can write it back.
  std::optional<Victim> insert(std::uint64_t line_addr, const LineData& data,
                               bool dirty, CacheCounters& c) {
    std::optional<Victim> victim;
    if (map_.size() >= capacity_ && map_.count(line_addr) == 0) {
      victim = evict_random(c);
    }
    auto [it, inserted] = map_.try_emplace(line_addr);
    it->second.data = data;
    it->second.dirty = it->second.dirty || dirty;
    if (inserted) {
      it->second.pos = order_.size();
      order_.push_back(line_addr);
    }
    return victim;
  }

  // Remove a line (clflush / ntstore invalidation). Returns its data if it
  // was present and dirty (caller decides whether to write back).
  std::optional<Victim> erase(std::uint64_t line_addr) {
    auto it = map_.find(line_addr);
    if (it == map_.end()) return std::nullopt;
    Victim v{line_addr, it->second.data, it->second.dirty};
    remove_from_order(it->second.pos);
    map_.erase(it);
    if (!v.dirty) return std::nullopt;
    return v;
  }

  // Power failure: all dirty lines vanish (they never reached the ADR).
  // Returns how many lines of data were lost.
  std::size_t drop_all(std::size_t* dirty_lost = nullptr) {
    std::size_t lost = 0;
    for (const auto& [addr, line] : map_)
      if (line.dirty) ++lost;
    const std::size_t n = map_.size();
    map_.clear();
    order_.clear();
    if (dirty_lost) *dirty_lost = lost;
    return n;
  }

  // Write back every dirty line through `writeback(line_addr, data)` and
  // mark clean (used by tests and by an orderly shutdown).
  template <typename Fn>
  void writeback_all(Fn&& writeback) {
    for (auto& [addr, line] : map_) {
      if (line.dirty) {
        writeback(addr, line.data);
        line.dirty = false;
      }
    }
  }

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  struct Line {
    LineData data{};
    bool dirty = false;
    std::size_t pos = 0;  // index into order_
  };

  Victim evict_random(CacheCounters& c) {
    const std::size_t idx = static_cast<std::size_t>(
        rng_.uniform(order_.size()));
    const std::uint64_t addr = order_[idx];
    auto it = map_.find(addr);
    Victim v{addr, it->second.data, it->second.dirty};
    remove_from_order(idx);
    map_.erase(it);
    ++c.natural_evictions;
    return v;
  }

  void remove_from_order(std::size_t idx) {
    const std::uint64_t moved = order_.back();
    order_[idx] = moved;
    order_.pop_back();
    if (idx < order_.size()) map_.find(moved)->second.pos = idx;
  }

  std::size_t capacity_;
  sim::Rng rng_;
  std::unordered_map<std::uint64_t, Line> map_;
  std::vector<std::uint64_t> order_;
};

}  // namespace xp::hw
