#include "xpsim/xpdimm.h"

#include <algorithm>

namespace xp::hw {

Time XpDimm::ait_lookup(Time t, std::uint64_t dimm_addr) {
  const std::uint64_t region = dimm_addr / 4096;
  if (ait_.access(region)) return t + timing_.ait_hit;
  // Translation miss: fetch the entry from the DIMM's dedicated AIT DRAM.
  ++counters_.ait_misses;
  if (sink_) sink_->ait_miss(t, socket_, channel_);
  return t + timing_.ait_hit + timing_.ait_miss;
}

bool XpDimm::touch_stream(std::vector<unsigned>& lru, unsigned capacity,
                          unsigned thread) {
  auto it = std::find(lru.begin(), lru.end(), thread);
  if (it != lru.end()) {
    lru.erase(it);
    lru.insert(lru.begin(), thread);
    return true;
  }
  lru.insert(lru.begin(), thread);
  if (lru.size() > capacity) lru.pop_back();
  return false;
}

Time XpDimm::write64(Time t, std::uint64_t dimm_addr, unsigned thread,
                     Time* admit_wait) {
  // Per-thread WPQ credit: at most wpq_thread_credit 64 B entries in
  // flight from one thread (256 B, §5.3).
  auto& credit = thread_credits_[thread];
  if (credit.size() >= timing_.wpq_thread_credit) {
    t = std::max(t, credit.front());
    credit.pop_front();
  }
  // Per-DIMM WPQ slot.
  const Time slot = wpq_.admission_time(t);
  if (admit_wait != nullptr) *admit_wait = slot - t;
  const Time admit = slot + timing_.wpq_sched;
  counters_.imc_write_bytes += timing_.cacheline;

  // DDR-T handoff to the XPController.
  Time at_ctrl = ddrt_req_.acquire(admit, ddrt_64b_).end;
  // Wear-leveling migrations stall the whole controller.
  at_ctrl = media_.gate(at_ctrl);
  Time cursor = ctrl_.acquire(at_ctrl, timing_.xp_ctrl_op).end;

  const std::uint64_t line = dimm_addr / timing_.xpline;
  const unsigned sub = static_cast<unsigned>(
      (dimm_addr % timing_.xpline) / timing_.cacheline);
  if (!buffer_.contains(line)) {
    // New combining line: an untracked write stream pays a controller-
    // serialized tracker re-setup before the line can start combining.
    if (!touch_stream(write_streams_, timing_.xp_write_streams, thread))
      cursor = ctrl_.acquire(cursor, timing_.xp_write_stream_miss).end;
    cursor = ait_lookup(cursor, dimm_addr);
  }
  const Time merged = buffer_.write64(cursor, line, sub, counters_);
  const Time done = merged + timing_.xp_write_ack;

  wpq_.push(done);
  credit.push_back(done);
  return done;
}

Time XpDimm::read64(Time t, std::uint64_t dimm_addr, unsigned thread) {
  const Time admit = rpq_.admission_time(t) + timing_.rpq_sched;
  counters_.imc_read_bytes += timing_.cacheline;

  Time at_ctrl = ddrt_req_.acquire(admit, timing_.ddrt_cmd).end;
  at_ctrl = media_.gate(at_ctrl);
  Time cursor = ctrl_.acquire(at_ctrl, timing_.xp_ctrl_op).end;

  const std::uint64_t line = dimm_addr / timing_.xpline;
  if (!buffer_.contains(line)) {
    if (!touch_stream(read_streams_, timing_.xp_read_streams, thread))
      cursor = ctrl_.acquire(cursor, timing_.xp_read_stream_miss).end;
    cursor = ait_lookup(cursor, dimm_addr);
  }
  const Time data_at_ctrl = buffer_.read64(cursor, line, counters_);

  // Data transfer back over DDR-T (response channel).
  const Time done = ddrt_rsp_.acquire(data_at_ctrl, ddrt_64b_).end;
  rpq_.push(done);
  return done;
}

void XpDimm::reset_timing() {
  media_.reset_timing();
  buffer_.reset_timing();
  ddrt_req_.reset();
  ddrt_rsp_.reset();
  ctrl_.reset();
  wpq_.reset();
  rpq_.reset();
  thread_credits_.clear();
  write_streams_.clear();
  read_streams_.clear();
}

}  // namespace xp::hw
