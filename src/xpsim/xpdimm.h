// One 3D XPoint DIMM behind its iMC pending queues.
//
// Composition per the paper's Figure 1(b): the iMC keeps a bounded write
// pending queue (WPQ, inside the ADR power-fail domain) and read pending
// queue per DIMM; requests cross the DDR-T interface in 64 B units to the
// XPController, which runs the AIT translation, the XPBuffer, and the
// banked media.
//
// Concurrency effects from §5.3 modeled here:
//  * the WPQ holds at most `wpq_depth` 64 B entries per DIMM, so a slow
//    DIMM backs up into the cores (head-of-line blocking);
//  * a single thread may have at most `wpq_thread_credit` entries
//    (4 x 64 B = 256 B) in flight, which the paper identifies as a reason
//    spreading one thread across DIMMs wastes queue parallelism (Fig 16);
//  * the controller coalesces efficiently for at most `xp_write_streams`
//    concurrent writers; more writers thrash the write-combining stream
//    trackers and serialize on the controller, which is what makes
//    per-DIMM bandwidth *fall* (not just saturate) as writers are added
//    (Fig 4 center/right, Fig 16).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "sim/resource.h"
#include "sim/simtime.h"
#include "xpsim/counters.h"
#include "xpsim/media.h"
#include "xpsim/telemetry_sink.h"
#include "xpsim/timing.h"
#include "xpsim/xpbuffer.h"

namespace xp::hw {

class XpDimm {
 public:
  explicit XpDimm(const Timing& t)
      : timing_(t),
        media_(t),
        buffer_(t, media_),
        ait_(t.ait_cache_entries),
        ddrt_req_(1),
        ddrt_rsp_(1),
        ctrl_(1),
        wpq_(t.wpq_depth),
        rpq_(t.rpq_depth),
        ddrt_64b_(sim::transfer_time(t.cacheline, t.ddrt_gbps)) {}

  // One 64 B write arriving at the iMC at time `t` from `thread`.
  // Returns the time the write is accepted into the ADR domain (WPQ
  // admission + DDR-T handoff + XPBuffer merge + controller ack). Stores
  // are *persistent* from the WPQ onward; this return value is what an
  // sfence waits for. If `admit_wait` is non-null it receives the time
  // the write spent waiting for a WPQ slot (used by the UPI lane-hold
  // model for remote writes).
  Time write64(Time t, std::uint64_t dimm_addr, unsigned thread,
               Time* admit_wait = nullptr);

  // One 64 B read. Returns data-arrival time at the iMC.
  Time read64(Time t, std::uint64_t dimm_addr, unsigned thread);

  const XpCounters& counters() const { return counters_; }
  XpCounters& counters() { return counters_; }
  Media& media() { return media_; }
  XpBuffer& buffer() { return buffer_; }
  const XpBuffer& buffer() const { return buffer_; }

  // Residual pending-queue occupancy (entries whose drain time has not
  // yet been observed to pass; see sim::BoundedQueue). Telemetry gauges.
  std::size_t wpq_occupancy() const { return wpq_.occupancy(); }
  std::size_t rpq_occupancy() const { return rpq_.occupancy(); }

  // Telemetry: attach `sink` for AIT-miss and XPBuffer-eviction events,
  // tagged with this DIMM's (socket, channel). Null detaches.
  void set_telemetry(TelemetrySink* sink, unsigned socket, unsigned channel) {
    sink_ = sink;
    socket_ = socket;
    channel_ = channel;
    buffer_.set_telemetry(sink, socket, channel);
  }

  // New measurement epoch: forget all reservation state (queues, banks,
  // credits). Wear, AIT contents and counters persist.
  void reset_timing();

 private:
  Time ait_lookup(Time t, std::uint64_t dimm_addr);
  static bool touch_stream(std::vector<unsigned>& lru, unsigned capacity,
                           unsigned thread);

  const Timing& timing_;
  Media media_;
  XpBuffer buffer_;
  AitCache ait_;
  // DDR-T modeled as separate request (commands + write data) and
  // response (read data) channels so in-flight read returns don't block
  // later commands.
  sim::Resource ddrt_req_;
  sim::Resource ddrt_rsp_;
  sim::Resource ctrl_;
  sim::BoundedQueue wpq_;
  sim::BoundedQueue rpq_;
  Time ddrt_64b_;
  XpCounters counters_;
  TelemetrySink* sink_ = nullptr;
  unsigned socket_ = 0;
  unsigned channel_ = 0;
  std::unordered_map<unsigned, std::deque<Time>> thread_credits_;
  std::vector<unsigned> write_streams_;  // LRU, front = most recent
  std::vector<unsigned> read_streams_;
};

}  // namespace xp::hw
