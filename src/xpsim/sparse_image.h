// Sparse byte image backing a persistent-memory namespace.
//
// Holds the *durable* contents of a namespace: every byte that has reached
// the ADR domain (WPQ admission or deeper). Pages materialize lazily;
// unwritten bytes read as zero, matching a freshly provisioned region.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <unordered_map>

namespace xp::hw {

class SparseImage {
 public:
  explicit SparseImage(std::uint64_t size) : size_(size) {}

  std::uint64_t size() const { return size_; }

  void read(std::uint64_t off, std::span<std::uint8_t> out) const {
    assert(off + out.size() <= size_);
    std::size_t done = 0;
    while (done < out.size()) {
      const std::uint64_t pos = off + done;
      const std::uint64_t page = pos / kPage;
      const std::size_t in_page = static_cast<std::size_t>(pos % kPage);
      const std::size_t n =
          std::min(out.size() - done, kPage - in_page);
      auto it = pages_.find(page);
      if (it == pages_.end()) {
        std::memset(out.data() + done, 0, n);
      } else {
        std::memcpy(out.data() + done, it->second->data() + in_page, n);
      }
      done += n;
    }
  }

  void write(std::uint64_t off, std::span<const std::uint8_t> in) {
    assert(off + in.size() <= size_);
    std::size_t done = 0;
    while (done < in.size()) {
      const std::uint64_t pos = off + done;
      const std::uint64_t page = pos / kPage;
      const std::size_t in_page = static_cast<std::size_t>(pos % kPage);
      const std::size_t n = std::min(in.size() - done, kPage - in_page);
      auto& p = pages_[page];
      if (!p) {
        p = std::make_unique<Page>();
        p->fill(0);
      }
      std::memcpy(p->data() + in_page, in.data() + done, n);
      done += n;
    }
  }

  std::size_t resident_pages() const { return pages_.size(); }

  // Drop all contents (used for Memory-Mode namespaces on power failure:
  // they are volatile by construction).
  void clear() { pages_.clear(); }

 private:
  static constexpr std::uint64_t kPage = 64 * 1024;
  using Page = std::array<std::uint8_t, kPage>;

  std::uint64_t size_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

}  // namespace xp::hw
