// Sparse byte image backing a persistent-memory namespace.
//
// Holds the *durable* contents of a namespace: every byte that has reached
// the ADR domain (WPQ admission or deeper). Pages materialize lazily;
// unwritten bytes read as zero, matching a freshly provisioned region.
//
// The timed data path touches the image once per 64 B cache line, so a
// sequential access would pay one hash lookup per line. A one-entry
// last-page cache short-circuits that: consecutive lines land on the same
// 64 KB page 1023 times out of 1024. The cache also remembers *absent*
// pages, which is what the discard-data bandwidth namespaces hit on every
// load. Like the rest of a Platform, a SparseImage may only be touched by
// one host thread at a time (the sweep engine gives each point its own
// Platform), so the mutable cache needs no synchronization.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <unordered_map>

namespace xp::hw {

class SparseImage {
 public:
  explicit SparseImage(std::uint64_t size) : size_(size) {}

  std::uint64_t size() const { return size_; }

  void read(std::uint64_t off, std::span<std::uint8_t> out) const {
    assert(off + out.size() <= size_);
    std::size_t done = 0;
    while (done < out.size()) {
      const std::uint64_t pos = off + done;
      const std::uint64_t page = pos / kPage;
      const std::size_t in_page = static_cast<std::size_t>(pos % kPage);
      const std::size_t n =
          std::min(out.size() - done, kPage - in_page);
      const Page* p = find_page(page);
      if (p == nullptr) {
        std::memset(out.data() + done, 0, n);
      } else {
        std::memcpy(out.data() + done, p->data() + in_page, n);
      }
      done += n;
    }
  }

  void write(std::uint64_t off, std::span<const std::uint8_t> in) {
    assert(off + in.size() <= size_);
    std::size_t done = 0;
    while (done < in.size()) {
      const std::uint64_t pos = off + done;
      const std::uint64_t page = pos / kPage;
      const std::size_t in_page = static_cast<std::size_t>(pos % kPage);
      const std::size_t n = std::min(in.size() - done, kPage - in_page);
      std::memcpy(ensure_page(page)->data() + in_page, in.data() + done, n);
      done += n;
    }
  }

  std::size_t resident_pages() const { return pages_.size(); }

  // Drop all contents (used for Memory-Mode namespaces on power failure:
  // they are volatile by construction).
  void clear() {
    pages_.clear();
    cached_index_ = kNoPage;
    cached_page_ = nullptr;
  }

 private:
  static constexpr std::uint64_t kPage = 64 * 1024;
  static constexpr std::uint64_t kNoPage = ~std::uint64_t{0};
  using Page = std::array<std::uint8_t, kPage>;

  // Cached lookup. A null result ("page absent") is cached too; it stays
  // valid because the only way a page materializes is ensure_page(),
  // which refreshes the cache. Page storage is heap-allocated, so cached
  // pointers survive rehashing of the map.
  const Page* find_page(std::uint64_t page) const {
    if (page == cached_index_) return cached_page_;
    auto it = pages_.find(page);
    cached_index_ = page;
    cached_page_ = it == pages_.end() ? nullptr : it->second.get();
    return cached_page_;
  }

  Page* ensure_page(std::uint64_t page) {
    if (page == cached_index_ && cached_page_ != nullptr)
      return cached_page_;
    auto& p = pages_[page];
    if (!p) {
      p = std::make_unique<Page>();
      p->fill(0);
    }
    cached_index_ = page;
    cached_page_ = p.get();
    return cached_page_;
  }

  std::uint64_t size_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
  mutable std::uint64_t cached_index_ = kNoPage;
  mutable Page* cached_page_ = nullptr;
};

}  // namespace xp::hw
