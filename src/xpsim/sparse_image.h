// Sparse byte image backing a persistent-memory namespace.
//
// Holds the *durable* contents of a namespace: every byte that has reached
// the ADR domain (WPQ admission or deeper). Pages materialize lazily;
// unwritten bytes read as zero, matching a freshly provisioned region.
//
// The timed data path touches the image once per 64 B cache line, so a
// sequential access would pay one hash lookup per line. A one-entry
// last-page cache short-circuits that: consecutive lines land on the same
// 64 KB page 1023 times out of 1024. The cache also remembers *absent*
// pages, which is what the discard-data bandwidth namespaces hit on every
// load.
//
// THREADING CONTRACT: like the rest of a Platform, a SparseImage is
// single-owner — only one host thread may touch it, ever (the sweep
// engine gives each point its own Platform). Because the cache is
// mutable, even concurrent const read() calls are a data race. Debug
// builds latch the first accessing thread and assert on any other, so a
// sweep that accidentally shares a Platform fails loudly instead of
// racing.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <thread>
#include <unordered_map>

namespace xp::hw {

class SparseImage {
 public:
  explicit SparseImage(std::uint64_t size) : size_(size) {}

  std::uint64_t size() const { return size_; }

  void read(std::uint64_t off, std::span<std::uint8_t> out) const {
    check_owner();
    assert(off + out.size() <= size_);
    std::size_t done = 0;
    while (done < out.size()) {
      const std::uint64_t pos = off + done;
      const std::uint64_t page = pos / kPage;
      const std::size_t in_page = static_cast<std::size_t>(pos % kPage);
      const std::size_t n =
          std::min(out.size() - done, kPage - in_page);
      const Page* p = find_page(page);
      if (p == nullptr) {
        std::memset(out.data() + done, 0, n);
      } else {
        std::memcpy(out.data() + done, p->data() + in_page, n);
      }
      done += n;
    }
  }

  void write(std::uint64_t off, std::span<const std::uint8_t> in) {
    check_owner();
    assert(off + in.size() <= size_);
    std::size_t done = 0;
    while (done < in.size()) {
      const std::uint64_t pos = off + done;
      const std::uint64_t page = pos / kPage;
      const std::size_t in_page = static_cast<std::size_t>(pos % kPage);
      const std::size_t n = std::min(in.size() - done, kPage - in_page);
      std::memcpy(ensure_page(page)->data() + in_page, in.data() + done, n);
      done += n;
    }
  }

  std::size_t resident_pages() const { return pages_.size(); }

  // Hand the debug single-owner latch to the calling host thread. Only
  // the schedmc interleaver uses this: it runs logical threads on
  // distinct host threads strictly serialized by a run token, and each
  // newly granted token holder adopts the latch — so check_owner() still
  // fails fast on genuinely concurrent access. Release builds: no-op.
  void rebind_owner() const {
#ifndef NDEBUG
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }

  // Drop all contents (used for Memory-Mode namespaces on power failure:
  // they are volatile by construction).
  void clear() {
    check_owner();
    pages_.clear();
    cached_index_ = kNoPage;
    cached_page_ = nullptr;
  }

 private:
  static constexpr std::uint64_t kPage = 64 * 1024;
  static constexpr std::uint64_t kNoPage = ~std::uint64_t{0};
  using Page = std::array<std::uint8_t, kPage>;

  // Cached lookup. A null result ("page absent") is cached too; it stays
  // valid because the only way a page materializes is ensure_page(),
  // which refreshes the cache. Page storage is heap-allocated, so cached
  // pointers survive rehashing of the map.
  const Page* find_page(std::uint64_t page) const {
    if (page == cached_index_) return cached_page_;
    auto it = pages_.find(page);
    cached_index_ = page;
    cached_page_ = it == pages_.end() ? nullptr : it->second.get();
    return cached_page_;
  }

  Page* ensure_page(std::uint64_t page) {
    if (page == cached_index_ && cached_page_ != nullptr)
      return cached_page_;
    auto& p = pages_[page];
    if (!p) {
      p = std::make_unique<Page>();
      p->fill(0);
    }
    cached_index_ = page;
    cached_page_ = p.get();
    return cached_page_;
  }

#ifndef NDEBUG
  // Latch the first host thread that touches the image and fail fast on
  // any other. The mutable page cache makes even const reads writes, so
  // shared use is a data race no matter how it is interleaved.
  void check_owner() const {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};
    if (!owner_.compare_exchange_strong(expected, self,
                                        std::memory_order_relaxed) &&
        expected != self) {
      assert(false &&
             "SparseImage (and its Platform) is single-owner; run each "
             "sweep point on its own Platform");
    }
  }
#else
  void check_owner() const {}
#endif

  std::uint64_t size_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
  mutable std::uint64_t cached_index_ = kNoPage;
  mutable Page* cached_page_ = nullptr;
#ifndef NDEBUG
  mutable std::atomic<std::thread::id> owner_{};
#endif
};

}  // namespace xp::hw
