#include "xpsim/xpbuffer.h"

#include <algorithm>

namespace xp::hw {

const XpBuffer::Entry* XpBuffer::find(std::uint64_t line) const {
  for (const Entry& e : entries_)
    if (e.line == line) return &e;
  return nullptr;
}

XpBuffer::Entry* XpBuffer::find(std::uint64_t line) {
  for (Entry& e : entries_)
    if (e.line == line) return &e;
  return nullptr;
}

Time XpBuffer::write64(Time t, std::uint64_t line, unsigned sub,
                       XpCounters& c) {
  drain_aged(t, c);
  if (Entry* e = find(line)) {
    if (e->dirty_mask == kFullMask) {
      // Rewriting an already fully combined line: the controller flushes
      // the combined line to media and starts a fresh combining round.
      // (This is what exposes hot-line wear and Fig 3's tail outliers.)
      ++c.evictions_full;
      if (sink_) sink_->buffer_eviction(EvictKind::kRewrite, t, socket_,
                                        channel_);
      const Time start = std::max(t, e->ready_at);
      const auto g = media_.write_line(start, e->line, c);
      e->dirty_mask = static_cast<std::uint8_t>(1u << sub);
      // Combining register is reusable once the media write has begun.
      e->ready_at = g.start;
      const Time done = std::max(t, g.start) + timing_.xpbuffer_merge;
      e->last_touch = done;
      return done;
    }
    e->dirty_mask |= static_cast<std::uint8_t>(1u << sub);
    const Time done = std::max(t, e->ready_at) + timing_.xpbuffer_merge;
    e->last_touch = done;
    return done;
  }
  const Time slot_at = make_room(t, c);
  const Time done = slot_at + timing_.xpbuffer_merge;
  entries_.push_back(Entry{line, static_cast<std::uint8_t>(1u << sub),
                           done, slot_at});
  return done;
}

Time XpBuffer::read64(Time t, std::uint64_t line, XpCounters& c) {
  drain_aged(t, c);
  if (Entry* e = find(line)) {
    ++c.buffer_hit_reads;
    const Time done = std::max(t, e->ready_at) + timing_.xpbuffer_read;
    e->last_touch = done;
    return done;
  }
  ++c.buffer_miss_reads;
  const Time slot_at = make_room(t, c);
  const Time fetched = media_.read_line(slot_at, line, c).end;
  entries_.push_back(Entry{line, 0, fetched, fetched});
  return fetched;
}

Time XpBuffer::make_room(Time t, XpCounters& c) {
  if (entries_.size() < timing_.xpbuffer_lines) return t;
  // Victim: least-recently-touched entry (reads and writes both refresh
  // recency, which is why reads compete for buffer space, §5.1).
  std::size_t victim = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i)
    if (entries_[i].last_touch < entries_[victim].last_touch) victim = i;
  return evict(victim, t, c);
}

Time XpBuffer::evict(std::size_t idx, Time t, XpCounters& c) {
  Entry e = entries_[idx];
  entries_[idx] = entries_.back();
  entries_.pop_back();

  const Time start = std::max(t, e.ready_at);
  if (e.dirty_mask == 0) {
    ++c.evictions_clean;
    if (sink_) sink_->buffer_eviction(EvictKind::kClean, start, socket_,
                                      channel_);
    return start;  // clean: slot free immediately
  }
  if (e.dirty_mask == kFullMask) {
    ++c.evictions_full;
    if (sink_) sink_->buffer_eviction(EvictKind::kFull, start, socket_,
                                      channel_);
    // The slot is reusable once the media write has *started* (the data
    // moves to the media write register); store latency stays decoupled
    // from the 662 ns media write while throughput is still capped by it.
    return media_.write_line(start, e.line, c).start;
  }
  // Partial line: read-modify-write against the media.
  ++c.evictions_partial;
  if (sink_) sink_->buffer_eviction(EvictKind::kPartial, start, socket_,
                                    channel_);
  const Time read_done = media_.read_line(start, e.line, c).end;
  return media_.write_line(read_done, e.line, c).start;
}

void XpBuffer::drain_aged(Time t, XpCounters& c) {
  if (timing_.xpbuffer_drain_age == 0) return;
  // Optional eager drain (disabled by default; see bench/abl_xpbuffer):
  // write out up to two lines idle longer than the drain age.
  for (int pass = 0; pass < 2; ++pass) {
    std::size_t oldest = entries_.size();
    Time oldest_touch = ~Time{0};
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].last_touch < oldest_touch) {
        oldest_touch = entries_[i].last_touch;
        oldest = i;
      }
    }
    if (oldest == entries_.size()) return;
    if (oldest_touch + timing_.xpbuffer_drain_age > t) return;
    evict(oldest, t, c);  // caller does not wait; slot simply frees
  }
}

void XpBuffer::flush_all(Time t, XpCounters& c) {
  while (!entries_.empty()) evict(entries_.size() - 1, t, c);
}

void XpBuffer::reset_timing() {
  for (Entry& e : entries_) {
    e.last_touch = 0;
    e.ready_at = 0;
  }
}

}  // namespace xp::hw
