// Memory Mode: the XP DIMM as volatile far memory behind a DRAM cache.
//
// Paper §2.1.2: in Memory Mode the DRAM DIMM on the same channel becomes
// a direct-mapped cache for the XP DIMM, managed transparently by the
// memory controller at 64 B block granularity; the CPU sees one large
// *volatile* memory. §6 observes that this cache masks most of the
// App-Direct performance pathologies — bench/abl_memory_mode shows it.
//
// Model: a per-channel direct-mapped tag array (near-memory set -> far
// tag + dirty bit). Hits pay DRAM timing; misses fetch the block from the
// XP DIMM, fill DRAM, and write back the evicted block if dirty. Nothing
// here is in the ADR domain: a power failure loses the contents.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/resource.h"
#include "sim/simtime.h"
#include "xpsim/dram_dimm.h"
#include "xpsim/timing.h"
#include "xpsim/xpdimm.h"

namespace xp::hw {

class MemoryModeChannel {
 public:
  MemoryModeChannel(const Timing& t, DramDimm& near_mem, XpDimm& far_mem)
      : timing_(t), near_(near_mem), far_(far_mem), writeback_(16) {
    // Direct-mapped: this channel's share of the socket's near memory
    // divided into 64 B blocks (the testbed pairs 32 GB of DRAM with
    // 256 GB of XP per socket, 1:8).
    sets_ = timing_.memory_mode_near_bytes / timing_.channels_per_socket /
            timing_.cacheline;
  }

  // 64 B read at a far-memory (XP DIMM-local) address.
  Time read64(Time t, std::uint64_t far_addr, unsigned thread) {
    const std::uint64_t block = far_addr / timing_.cacheline;
    const std::uint64_t set = block % sets_;
    const std::uint64_t near_addr = set * timing_.cacheline;
    auto it = tags_.find(set);
    if (it != tags_.end() && it->second.tag == block) {
      ++hits_;
      return near_.read64(t, near_addr);
    }
    ++misses_;
    const Time evicted = evict_if_dirty(t, set, near_addr, thread);
    // Fetch from far memory, fill near memory.
    const Time fetched = far_.read64(std::max(t, evicted), far_addr, thread);
    near_.write64(fetched, near_addr, 1.0);
    tags_[set] = TagEntry{block, false};
    return fetched;
  }

  // 64 B write. Returns completion (write-back cache: DRAM accept time).
  Time write64(Time t, std::uint64_t far_addr, unsigned thread) {
    const std::uint64_t block = far_addr / timing_.cacheline;
    const std::uint64_t set = block % sets_;
    const std::uint64_t near_addr = set * timing_.cacheline;
    auto it = tags_.find(set);
    if (it != tags_.end() && it->second.tag == block) {
      ++hits_;
      it->second.dirty = true;
      return near_.write64(t, near_addr, 1.0);
    }
    ++misses_;
    const Time evicted = evict_if_dirty(t, set, near_addr, thread);
    // A full 64 B write allocates without fetching.
    const Time done = near_.write64(std::max(t, evicted), near_addr, 1.0);
    tags_[set] = TagEntry{block, true};
    return done;
  }

  std::uint64_t sets() const { return sets_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double hit_rate() const {
    const double total = static_cast<double>(hits_ + misses_);
    return total == 0 ? 1.0 : static_cast<double>(hits_) / total;
  }

 private:
  struct TagEntry {
    std::uint64_t tag;
    bool dirty;
  };

  Time evict_if_dirty(Time t, std::uint64_t set, std::uint64_t near_addr,
                      unsigned thread) {
    auto it = tags_.find(set);
    if (it == tags_.end() || !it->second.dirty) return t;
    // Read the victim out of DRAM and push it to the XP DIMM through a
    // bounded writeback queue: when the (slow) XP DIMM falls behind, the
    // queue fills and miss handling throttles to the far-memory write
    // rate — dirty-miss-heavy workloads converge to XP write bandwidth.
    const Time read_back = near_.read64(t, near_addr);
    const Time admit = writeback_.admission_time(read_back);
    const Time ack =
        far_.write64(admit, it->second.tag * timing_.cacheline, thread);
    writeback_.push(ack);
    return admit;
  }

  const Timing& timing_;
  DramDimm& near_;
  XpDimm& far_;
  sim::BoundedQueue writeback_;
  std::uint64_t sets_;
  std::unordered_map<std::uint64_t, TagEntry> tags_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace xp::hw
