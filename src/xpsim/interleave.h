// Channel interleaving address decode (paper Fig 1(c)).
//
// In interleaved mode the namespace address space is striped across the
// socket's six XP DIMMs in 4 KB chunks, giving a 24 KB stripe: an access
// within one 4 KB page touches exactly one DIMM; accesses >24 KB touch all
// six. Non-interleaved namespaces map 1:1 onto a single DIMM.
#pragma once

#include <cstdint>

namespace xp::hw {

struct DimmAddr {
  unsigned channel;     // which DIMM on the socket
  std::uint64_t addr;   // DIMM-local byte address
};

class InterleaveDecoder {
 public:
  InterleaveDecoder(unsigned channels, std::uint64_t chunk)
      : channels_(channels), chunk_(chunk) {}

  DimmAddr decode(std::uint64_t offset) const {
    const std::uint64_t chunk_index = offset / chunk_;
    const std::uint64_t within = offset % chunk_;
    const unsigned channel = static_cast<unsigned>(chunk_index % channels_);
    const std::uint64_t dimm_chunk = chunk_index / channels_;
    return {channel, dimm_chunk * chunk_ + within};
  }

  // Inverse mapping (used by tests to prove the decode is a bijection).
  std::uint64_t encode(const DimmAddr& da) const {
    const std::uint64_t dimm_chunk = da.addr / chunk_;
    const std::uint64_t within = da.addr % chunk_;
    return (dimm_chunk * channels_ + da.channel) * chunk_ + within;
  }

  unsigned channels() const { return channels_; }
  std::uint64_t chunk() const { return chunk_; }
  std::uint64_t stripe() const { return chunk_ * channels_; }

 private:
  unsigned channels_;
  std::uint64_t chunk_;
};

}  // namespace xp::hw
