// Media fault model: XPLine errors, poison, scrubbing (paper §2.1).
//
// Real Optane DIMMs protect the 256 B XPLine with ECC and remap worn
// lines through the AIT; when ECC cannot correct, the line is *poisoned*
// and a load of it raises a machine-check (surfaced to software as
// SIGBUS / a poisoned DAX page). Firmware exposes an Address Range Scrub
// (ARS) that walks the media and reports the bad-line list, and a full
// 256 B overwrite of a poisoned line re-establishes ECC and clears the
// poison.
//
// The simulator reproduces those semantics deterministically:
//  * a timed read (cache-line fill or RFO) of a poisoned XPLine throws
//    MediaError instead of returning data; the backing image holds
//    deterministic garbage for the line, so untimed peeks see clobber,
//    not stale valid bytes;
//  * ntstore covering an entire 256 B XPLine clears its poison;
//  * Platform::ars() reports the poisoned lines in a namespace range;
//  * FaultInjector plants faults: targeted (poison this offset), seeded
//    scatter, ECC-corrected transients, and campaign mode (arm the n-th
//    device read to fail), plus wear-out coupling (a line whose AIT
//    migration count crosses a threshold goes bad on its next write).
//
// With no injector attached nothing changes: the fault checks sit behind
// one disabled branch and every counter stays zero, so fault-free runs
// are bit-identical to a build without this subsystem.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/rng.h"
#include "xpsim/platform.h"

namespace xp::hw {

class FaultInjector {
 public:
  // The injector only arms Platform state; it holds no fault state of its
  // own and may be destroyed once the faults are planted.
  FaultInjector(Platform& platform, std::uint64_t seed = 1)
      : platform_(platform), rng_(seed * 0x9e3779b97f4a7c15ULL + 0x5eedULL) {}

  // Poison the XPLine containing `off` (targeted injection).
  void poison(PmemNamespace& ns, std::uint64_t off) {
    platform_.poison_line(ns, off);
  }

  // Seeded scatter: poison `n` distinct XPLines inside [off, off+len).
  void poison_random(PmemNamespace& ns, std::uint64_t off, std::uint64_t len,
                     unsigned n) {
    const std::uint64_t lines = len / Platform::kXpLineBytes;
    for (unsigned planted = 0; planted < n && planted < lines;) {
      const std::uint64_t line =
          off / Platform::kXpLineBytes + rng_.uniform(lines);
      const std::uint64_t line_off = line * Platform::kXpLineBytes;
      if (platform_.line_poisoned(ns, line_off)) continue;
      platform_.poison_line(ns, line_off);
      ++planted;
    }
  }

  // Mark the XPLine containing `off` for one ECC-corrected transient: the
  // next read succeeds normally but counts an ecc_corrected event.
  void mark_transient(PmemNamespace& ns, std::uint64_t off) {
    platform_.mark_ecc_transient(ns, off);
  }

  // Campaign mode: the n-th device read from now (n >= 1, counted across
  // every XP namespace) poisons the line it touches and fails — the
  // platform crashes, freezes, and the read throws MediaError.
  void arm_nth_device_read(std::uint64_t n) { platform_.arm_read_fault(n); }

  // Wear-out coupling: any XPLine whose AIT migration count reaches
  // `migrations` goes uncorrectable on its next write. 0 disables.
  void set_wear_fail_migrations(std::uint64_t migrations) {
    platform_.set_wear_fail_migrations(migrations);
  }

 private:
  Platform& platform_;
  sim::Rng rng_;
};

}  // namespace xp::hw
