// Hardware-counter equivalents exposed by the simulated devices.
//
// These mirror the counters LATTester reads on real hardware: the iMC's
// DIMM-interface byte counts and the on-DIMM media byte counts, from which
// the paper defines the Effective Write Ratio (EWR, §5.1).
#pragma once

#include <cstdint>
#include <limits>

namespace xp::hw {

struct XpCounters {
  // Bytes crossing the DDR-T interface (what the iMC issued).
  std::uint64_t imc_read_bytes = 0;
  std::uint64_t imc_write_bytes = 0;
  // Bytes the 3D XPoint media actually transferred (256 B granularity).
  std::uint64_t media_read_bytes = 0;
  std::uint64_t media_write_bytes = 0;

  std::uint64_t buffer_hit_reads = 0;
  std::uint64_t buffer_miss_reads = 0;
  std::uint64_t evictions_clean = 0;
  std::uint64_t evictions_full = 0;     // fully dirty line: one media write
  std::uint64_t evictions_partial = 0;  // RMW: media read + write
  std::uint64_t ait_misses = 0;
  std::uint64_t wear_migrations = 0;

  // Media error-model events (src/xpsim/fault.h). All stay zero unless a
  // fault injector is used, so fault-free runs are unaffected.
  std::uint64_t ecc_corrected = 0;        // transient, ECC fixed it
  std::uint64_t lines_poisoned = 0;       // XPLines turned uncorrectable
  std::uint64_t uncorrectable_reads = 0;  // reads that returned MediaError
  std::uint64_t poison_cleared = 0;       // poison cleared by full-line write
  std::uint64_t lines_scrubbed = 0;       // bad lines reported by ARS

  // EWR = iMC write bytes / media write bytes (inverse of write
  // amplification). > 1 is possible via coalescing (paper §5.1).
  //
  // Edge cases: with no write traffic at all the ratio is defined as 1.0
  // (nothing was amplified). With iMC writes but zero media writes —
  // every write still coalescing in the XPBuffer — the EWR is +infinity:
  // finitely many interface bytes over zero media bytes. (This replaces
  // an old magic 99.0 sentinel; callers that bin or plot EWR should clamp
  // with std::min.) ewr() * write_amplification() == 1 exactly whenever
  // both byte counts are nonzero.
  double ewr() const {
    if (media_write_bytes == 0) {
      return imc_write_bytes == 0
                 ? 1.0
                 : std::numeric_limits<double>::infinity();
    }
    return static_cast<double>(imc_write_bytes) /
           static_cast<double>(media_write_bytes);
  }
  double write_amplification() const {
    if (imc_write_bytes == 0) {
      return media_write_bytes == 0
                 ? 1.0
                 : std::numeric_limits<double>::infinity();
    }
    return static_cast<double>(media_write_bytes) /
           static_cast<double>(imc_write_bytes);
  }

  // ERR (Effective Read Ratio) = media read bytes / iMC read bytes — the
  // read-side analogue of write_amplification(), lower is better. 1.0
  // means every media byte transferred was requested at the interface;
  // isolated 64 B reads each dragging a full 256 B XPLine off the media
  // approach 4.0 (paper §5.1's "avoid small random reads"); values below
  // 1.0 mean the XPBuffer served repeat interface reads without media
  // traffic.
  //
  // Edge cases mirror ewr(): no read traffic at all is 1.0 (nothing was
  // amplified); media reads with zero iMC reads (possible on write-only
  // workloads — partial-line evictions RMW the media without any
  // interface read) is +infinity.
  double err() const {
    if (imc_read_bytes == 0) {
      return media_read_bytes == 0 ? 1.0
                                   : std::numeric_limits<double>::infinity();
    }
    return static_cast<double>(media_read_bytes) /
           static_cast<double>(imc_read_bytes);
  }

  XpCounters& operator+=(const XpCounters& o) {
    imc_read_bytes += o.imc_read_bytes;
    imc_write_bytes += o.imc_write_bytes;
    media_read_bytes += o.media_read_bytes;
    media_write_bytes += o.media_write_bytes;
    buffer_hit_reads += o.buffer_hit_reads;
    buffer_miss_reads += o.buffer_miss_reads;
    evictions_clean += o.evictions_clean;
    evictions_full += o.evictions_full;
    evictions_partial += o.evictions_partial;
    ait_misses += o.ait_misses;
    wear_migrations += o.wear_migrations;
    ecc_corrected += o.ecc_corrected;
    lines_poisoned += o.lines_poisoned;
    uncorrectable_reads += o.uncorrectable_reads;
    poison_cleared += o.poison_cleared;
    lines_scrubbed += o.lines_scrubbed;
    return *this;
  }
  XpCounters operator-(const XpCounters& o) const {
    XpCounters r = *this;
    r.imc_read_bytes -= o.imc_read_bytes;
    r.imc_write_bytes -= o.imc_write_bytes;
    r.media_read_bytes -= o.media_read_bytes;
    r.media_write_bytes -= o.media_write_bytes;
    r.buffer_hit_reads -= o.buffer_hit_reads;
    r.buffer_miss_reads -= o.buffer_miss_reads;
    r.evictions_clean -= o.evictions_clean;
    r.evictions_full -= o.evictions_full;
    r.evictions_partial -= o.evictions_partial;
    r.ait_misses -= o.ait_misses;
    r.wear_migrations -= o.wear_migrations;
    r.ecc_corrected -= o.ecc_corrected;
    r.lines_poisoned -= o.lines_poisoned;
    r.uncorrectable_reads -= o.uncorrectable_reads;
    r.poison_cleared -= o.poison_cleared;
    r.lines_scrubbed -= o.lines_scrubbed;
    return r;
  }
};

struct DramCounters {
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;

  DramCounters& operator+=(const DramCounters& o) {
    read_bytes += o.read_bytes;
    write_bytes += o.write_bytes;
    row_hits += o.row_hits;
    row_misses += o.row_misses;
    return *this;
  }
  DramCounters operator-(const DramCounters& o) const {
    DramCounters r = *this;
    r.read_bytes -= o.read_bytes;
    r.write_bytes -= o.write_bytes;
    r.row_hits -= o.row_hits;
    r.row_misses -= o.row_misses;
    return r;
  }
};

struct CacheCounters {
  std::uint64_t load_hits = 0;
  std::uint64_t load_misses = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t store_misses = 0;  // triggered an RFO fill
  std::uint64_t natural_evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t explicit_flushes = 0;

  CacheCounters& operator+=(const CacheCounters& o) {
    load_hits += o.load_hits;
    load_misses += o.load_misses;
    store_hits += o.store_hits;
    store_misses += o.store_misses;
    natural_evictions += o.natural_evictions;
    writebacks += o.writebacks;
    explicit_flushes += o.explicit_flushes;
    return *this;
  }
  CacheCounters operator-(const CacheCounters& o) const {
    CacheCounters r = *this;
    r.load_hits -= o.load_hits;
    r.load_misses -= o.load_misses;
    r.store_hits -= o.store_hits;
    r.store_misses -= o.store_misses;
    r.natural_evictions -= o.natural_evictions;
    r.writebacks -= o.writebacks;
    r.explicit_flushes -= o.explicit_flushes;
    return r;
  }
};

}  // namespace xp::hw
