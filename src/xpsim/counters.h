// Hardware-counter equivalents exposed by the simulated devices.
//
// These mirror the counters LATTester reads on real hardware: the iMC's
// DIMM-interface byte counts and the on-DIMM media byte counts, from which
// the paper defines the Effective Write Ratio (EWR, §5.1).
#pragma once

#include <cstdint>

namespace xp::hw {

struct XpCounters {
  // Bytes crossing the DDR-T interface (what the iMC issued).
  std::uint64_t imc_read_bytes = 0;
  std::uint64_t imc_write_bytes = 0;
  // Bytes the 3D XPoint media actually transferred (256 B granularity).
  std::uint64_t media_read_bytes = 0;
  std::uint64_t media_write_bytes = 0;

  std::uint64_t buffer_hit_reads = 0;
  std::uint64_t buffer_miss_reads = 0;
  std::uint64_t evictions_clean = 0;
  std::uint64_t evictions_full = 0;     // fully dirty line: one media write
  std::uint64_t evictions_partial = 0;  // RMW: media read + write
  std::uint64_t ait_misses = 0;
  std::uint64_t wear_migrations = 0;

  // EWR = iMC write bytes / media write bytes (inverse of write
  // amplification). > 1 is possible via coalescing (paper §5.1).
  double ewr() const {
    if (media_write_bytes == 0) return imc_write_bytes == 0 ? 1.0 : 99.0;
    return static_cast<double>(imc_write_bytes) /
           static_cast<double>(media_write_bytes);
  }
  double write_amplification() const {
    if (imc_write_bytes == 0) return 1.0;
    return static_cast<double>(media_write_bytes) /
           static_cast<double>(imc_write_bytes);
  }

  XpCounters& operator+=(const XpCounters& o) {
    imc_read_bytes += o.imc_read_bytes;
    imc_write_bytes += o.imc_write_bytes;
    media_read_bytes += o.media_read_bytes;
    media_write_bytes += o.media_write_bytes;
    buffer_hit_reads += o.buffer_hit_reads;
    buffer_miss_reads += o.buffer_miss_reads;
    evictions_clean += o.evictions_clean;
    evictions_full += o.evictions_full;
    evictions_partial += o.evictions_partial;
    ait_misses += o.ait_misses;
    wear_migrations += o.wear_migrations;
    return *this;
  }
  XpCounters operator-(const XpCounters& o) const {
    XpCounters r = *this;
    r.imc_read_bytes -= o.imc_read_bytes;
    r.imc_write_bytes -= o.imc_write_bytes;
    r.media_read_bytes -= o.media_read_bytes;
    r.media_write_bytes -= o.media_write_bytes;
    r.buffer_hit_reads -= o.buffer_hit_reads;
    r.buffer_miss_reads -= o.buffer_miss_reads;
    r.evictions_clean -= o.evictions_clean;
    r.evictions_full -= o.evictions_full;
    r.evictions_partial -= o.evictions_partial;
    r.ait_misses -= o.ait_misses;
    r.wear_migrations -= o.wear_migrations;
    return r;
  }
};

struct DramCounters {
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;

  DramCounters& operator+=(const DramCounters& o) {
    read_bytes += o.read_bytes;
    write_bytes += o.write_bytes;
    row_hits += o.row_hits;
    row_misses += o.row_misses;
    return *this;
  }
};

struct CacheCounters {
  std::uint64_t load_hits = 0;
  std::uint64_t load_misses = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t store_misses = 0;  // triggered an RFO fill
  std::uint64_t natural_evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t explicit_flushes = 0;
};

}  // namespace xp::hw
