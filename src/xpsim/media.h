// 3D XPoint media model: banked storage accessed in 256 B XPLines.
//
// The media is a timing-and-wear model only; data contents live in the
// namespace backing image (see pmem_namespace.h). Reads and writes occupy
// one of `xp_banks` concurrent units for a technology-dependent service
// time; this makes latency and 1/throughput distinct (6 banks x 256 B /
// 241 ns ~= 6.4 GB/s read, / 662 ns ~= 2.3 GB/s write), reproducing the
// paper's single-DIMM peaks.
//
// Wear leveling: each XPLine write increments a wear counter; at
// `wear_threshold` the controller migrates the line, stalling the whole
// XPController (the AIT is a shared structure) for ~50 us. These
// migrations are the rare 100x tail-latency outliers of Figure 3, and
// they concentrate in small write hotspots exactly as the paper observes
// (a small hotspot reaches the threshold during the run; a large one does
// not).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/resource.h"
#include "sim/simtime.h"
#include "xpsim/counters.h"
#include "xpsim/timing.h"

namespace xp::hw {

class Media {
 public:
  using Grant = sim::Resource::Grant;

  explicit Media(const Timing& t) : timing_(t), banks_(t.xp_banks) {}

  // Read one XPLine. Returns the service grant (data available at .end).
  Grant read_line(Time t, [[maybe_unused]] std::uint64_t line_index,
                  XpCounters& c) {
    c.media_read_bytes += timing_.xpline;
    return banks_.acquire(t, timing_.xp_media_read);
  }

  // Write one XPLine. May trigger a wear-leveling migration that stalls
  // the controller (see stall_until()).
  Grant write_line(Time t, std::uint64_t line_index, XpCounters& c) {
    c.media_write_bytes += timing_.xpline;
    const Grant g = banks_.acquire(t, timing_.xp_media_write);
    if (timing_.wear_threshold != 0) {
      std::uint64_t& wear = wear_[line_index];
      if (++wear % timing_.wear_threshold == 0) {
        ++c.wear_migrations;
        // The relocation copies the line: one media read from the worn
        // location plus one media write to the fresh one. The copy's
        // occupancy is subsumed by the controller-wide migration stall,
        // so only the byte counters move. This keeps the conservation
        // laws exact: media_write_bytes == xpline * (evictions_full +
        // evictions_partial + wear_migrations), and symmetrically for
        // reads (tests/telemetry_test.cc).
        c.media_read_bytes += timing_.xpline;
        c.media_write_bytes += timing_.xpline;
        const Time until = g.start + timing_.wear_migration;
        if (until > stall_until_) stall_until_ = until;
      }
    }
    return g;
  }

  // Requests arriving while a wear-leveling migration is in progress wait
  // until the controller is responsive again.
  Time gate(Time t) const { return t < stall_until_ ? stall_until_ : t; }
  Time stall_until() const { return stall_until_; }

  // Earliest time a bank could begin servicing a request arriving at `t`.
  Time next_free(Time t) const { return banks_.next_free(t); }

  std::uint64_t wear_of(std::uint64_t line_index) const {
    auto it = wear_.find(line_index);
    return it == wear_.end() ? 0 : it->second;
  }

  // Forget reservation state (new measurement epoch); wear persists.
  void reset_timing() {
    banks_.reset();
    stall_until_ = 0;
  }

 private:
  const Timing& timing_;
  sim::Resource banks_;
  Time stall_until_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> wear_;
};

// Address Indirection Table cache: the XPController translates 4 KB
// logical regions to physical media locations. A translation miss costs an
// extra media read. Modeled as an LRU set of region ids.
class AitCache {
 public:
  explicit AitCache(unsigned entries) : capacity_(entries) {}

  // Returns true on hit; on miss, installs the region (evicting LRU).
  bool access(std::uint64_t region) {
    auto it = map_.find(region);
    if (it != map_.end()) {
      touch(it);
      return true;
    }
    if (map_.size() >= capacity_) {
      map_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(region);
    map_[region] = lru_.begin();
    return false;
  }

  std::size_t size() const { return map_.size(); }

 private:
  using List = std::list<std::uint64_t>;
  void touch(std::unordered_map<std::uint64_t, List::iterator>::iterator it) {
    lru_.splice(lru_.begin(), lru_, it->second);
  }

  std::size_t capacity_;
  List lru_;
  std::unordered_map<std::uint64_t, List::iterator> map_;
};

}  // namespace xp::hw
