// The whole simulated machine, and the persistent-memory programming API.
//
// Platform models the paper's testbed: two sockets, each with a CPU cache,
// six memory channels, and one XP DIMM + one DRAM DIMM per channel,
// connected by a UPI link. Software (LATTester, the file systems, the KV
// stores) runs as simulated threads (sim::ThreadCtx) and accesses memory
// through PmemNamespace, which both moves real bytes and charges simulated
// time.
//
// Persistence semantics follow the hardware contract exactly (§2.1):
//  * plain stores land in the (volatile) CPU cache;
//  * clwb/clflush/clflushopt/ntstore move data into the iMC's WPQ, which
//    is inside the ADR domain and therefore durable;
//  * sfence waits for prior flushes/ntstores to reach the WPQ;
//  * Platform::crash() drops all dirty cache lines — anything not flushed
//    is gone, anything flushed survives. Tests exploit this for
//    crash-consistency checking.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/scheduler.h"
#include "sim/simtime.h"
#include "xpsim/cache.h"
#include "xpsim/counters.h"
#include "xpsim/dram_dimm.h"
#include "xpsim/interleave.h"
#include "xpsim/memory_mode.h"
#include "xpsim/sparse_image.h"
#include "xpsim/telemetry_sink.h"
#include "xpsim/timing.h"
#include "xpsim/upi.h"
#include "xpsim/xpdimm.h"

namespace xp::hw {

using sim::ThreadCtx;
using sim::Time;

enum class Device { kXp, kDram };

struct NamespaceOptions {
  Device device = Device::kXp;
  unsigned socket = 0;
  bool interleaved = true;  // XP only: stripe over all 6 DIMMs vs. 1 DIMM
  unsigned dimm = 0;        // target DIMM for non-interleaved namespaces
  std::uint64_t size = std::uint64_t{1} << 30;
  // Memory Mode (paper §2.1.2): the XP DIMMs serve as *volatile* far
  // memory behind the channel's DRAM cache. Contents do not survive
  // crash(); persistence instructions are accepted but meaningless.
  bool memory_mode = false;
  EmulationKnobs emulation{};
  // Timing-only namespace: stores are not materialized in the backing
  // image (loads return zeros). Used by bandwidth benches so multi-GB
  // sweep regions don't consume host memory. Never use together with
  // data-integrity checks.
  bool discard_data = false;
  std::string name = "pmem";
};

class Platform;

// Thrown (by the data path) when a crash point armed with
// Platform::crash_after() fires: the machine has already crashed — dirty
// cache lines are gone — and the platform is frozen, so the workload must
// unwind. Catch it at the harness level (crashmc::explore does); never
// inside store code.
struct CrashPointHit {};

// Thrown by a timed read (cache-line fill or RFO) that hits an
// uncorrectable — poisoned — 256 B XPLine: the simulator's analogue of
// the machine check / SIGBUS a poisoned DAX mapping raises on real
// Optane. Reads of pre-existing poison throw with the platform still
// live, so recovery code can catch, scrub and continue; a campaign-armed
// injection (Platform::arm_read_fault) additionally crashes and freezes
// the platform before throwing, modeling the faulting process dying at
// the MCE.
struct MediaError : std::runtime_error {
  MediaError(const std::string& ns_name, std::uint64_t off, unsigned sock,
             unsigned chan)
      : std::runtime_error("uncorrectable media error: " + ns_name + "+" +
                           std::to_string(off)),
        nspace(ns_name),
        line_off(off),
        socket(sock),
        channel(chan) {}

  std::string nspace;
  std::uint64_t line_off;  // 256 B-aligned namespace offset
  unsigned socket;
  unsigned channel;
};

// Observer of writes into a namespace, notified of every byte range that
// changes the namespace's contents through any path — timed stores,
// non-temporal stores, untimed pokes, and media-fault clobbers. The
// software read-cache layer (pmem::ReadCache) uses this to drop stale
// DRAM copies. A namespace holds at most one observer; every notify site
// is a single null-pointer branch, so a namespace with no observer pays
// one predictable branch per write and nothing else. Observers must be
// timing-neutral: they may bookkeep but never touch simulated clocks or
// device state.
class StoreObserver {
 public:
  virtual ~StoreObserver() = default;
  virtual void on_store(std::uint64_t off, std::size_t len) = 0;
};

// A byte-addressable persistent (or pseudo-persistent) region, the unit of
// App-Direct provisioning (an fsdax namespace in Linux terms).
class PmemNamespace {
 public:
  PmemNamespace(Platform& platform, NamespaceOptions opts,
                std::uint64_t base);

  // ---- Timed data path (the public programming interface) ---------------
  void load(ThreadCtx& ctx, std::uint64_t off, std::span<std::uint8_t> out);
  void store(ThreadCtx& ctx, std::uint64_t off,
             std::span<const std::uint8_t> data);
  void ntstore(ThreadCtx& ctx, std::uint64_t off,
               std::span<const std::uint8_t> data);
  void clwb(ThreadCtx& ctx, std::uint64_t off, std::size_t len);
  void clflushopt(ThreadCtx& ctx, std::uint64_t off, std::size_t len);
  void clflush(ThreadCtx& ctx, std::uint64_t off, std::size_t len);
  void sfence(ThreadCtx& ctx);
  void mfence(ThreadCtx& ctx);

  // Convenience compositions used throughout the upper layers.
  // persist(): clwb the range, then sfence (PMDK's pmem_persist).
  void persist(ThreadCtx& ctx, std::uint64_t off, std::size_t len);
  // store + clwb, no fence (caller batches the sfence).
  void store_flush(ThreadCtx& ctx, std::uint64_t off,
                   std::span<const std::uint8_t> data);
  // store + clwb + sfence.
  void store_persist(ThreadCtx& ctx, std::uint64_t off,
                     std::span<const std::uint8_t> data);
  // ntstore + sfence.
  void ntstore_persist(ThreadCtx& ctx, std::uint64_t off,
                       std::span<const std::uint8_t> data);

  template <typename T>
  T load_pod(ThreadCtx& ctx, std::uint64_t off) {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    load(ctx, off, std::span<std::uint8_t>(
                       reinterpret_cast<std::uint8_t*>(&v), sizeof(T)));
    return v;
  }
  template <typename T>
  void store_pod(ThreadCtx& ctx, std::uint64_t off, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    store(ctx, off, std::span<const std::uint8_t>(
                        reinterpret_cast<const std::uint8_t*>(&v), sizeof(T)));
  }

  // ---- Untimed debug/test access (bypasses cache AND durability) --------
  // peek() reads the *durable* image — what would survive a crash.
  void peek(std::uint64_t off, std::span<std::uint8_t> out) const;
  void poke(std::uint64_t off, std::span<const std::uint8_t> in);

  // ---- Introspection -----------------------------------------------------
  std::uint64_t size() const { return opts_.size; }
  unsigned socket() const { return opts_.socket; }
  Device device() const { return opts_.device; }
  bool interleaved() const { return opts_.interleaved; }
  const std::string& name() const { return opts_.name; }
  std::uint64_t base() const { return base_; }
  Platform& platform() { return platform_; }

  // Aggregated DIMM hardware counters for the DIMMs this namespace spans.
  XpCounters xp_counters() const;
  DramCounters dram_counters() const;

  // Maps a namespace offset to (channel, DIMM-local address).
  DimmAddr decode(std::uint64_t off) const;

  // Attach a write observer (see StoreObserver above). At most one; the
  // previous one is detached. Null detaches.
  void set_store_observer(StoreObserver* o) { observer_ = o; }
  StoreObserver* store_observer() const { return observer_; }

 private:
  friend class Platform;

  void notify_store(std::uint64_t off, std::size_t len) {
    if (observer_) observer_->on_store(off, len);
  }

  void image_write(std::uint64_t off, std::span<const std::uint8_t> in) {
    if (!opts_.discard_data) image_.write(off, in);
  }

  Platform& platform_;
  NamespaceOptions opts_;
  std::uint64_t base_;  // position in the global physical address space
  InterleaveDecoder decoder_;
  SparseImage image_;
  // Media error state, keyed by 256 B-aligned namespace offset (valid
  // because the interleave chunk is a multiple of the XPLine size, so one
  // namespace XPLine maps to exactly one DIMM XPLine). Empty unless a
  // FaultInjector has planted faults.
  std::set<std::uint64_t> poison_;         // uncorrectable lines
  std::set<std::uint64_t> ecc_transient_;  // one-shot correctable events
  StoreObserver* observer_ = nullptr;
};

class Platform {
 public:
  explicit Platform(Timing timing = {}, std::uint64_t seed = 42);
  ~Platform();

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  const Timing& timing() const { return timing_; }

  PmemNamespace& add_namespace(NamespaceOptions opts);

  // Canonical configurations from the paper (§2.3). `socket` defaults to
  // the local socket; "remote" in the paper means the *thread* runs on the
  // other socket, which the caller controls via ThreadCtx::socket.
  PmemNamespace& optane(std::uint64_t size, unsigned socket = 0);
  PmemNamespace& optane_ni(std::uint64_t size, unsigned socket = 0,
                           unsigned dimm = 0);
  PmemNamespace& dram(std::uint64_t size, unsigned socket = 0);
  PmemNamespace& pmep(std::uint64_t size, unsigned socket = 0);
  // XP DIMMs in Memory Mode (volatile, DRAM-cached far memory).
  PmemNamespace& optane_memory_mode(std::uint64_t size, unsigned socket = 0);

  // Power failure: every dirty CPU-cache line is lost; the ADR domain
  // (WPQ + XPBuffer) has already reached the durable image. Returns the
  // number of dirty lines that were lost.
  std::size_t crash();

  // Orderly flush of all caches (not available on real hardware at this
  // granularity; used by tests and shutdown paths).
  void writeback_all_caches();

  // ---- Crash-point instrumentation (src/crashmc) -------------------------
  // Every durability-relevant event is counted: a dirty line entering the
  // WPQ (clwb/clflush/clflushopt of a dirty line, a natural eviction
  // write-back, a coherence ownership flush), a non-temporal store
  // draining to the iMC (per 64 B line), and an sfence retiring. The
  // counter is timing-neutral, so instrumented runs stay byte-identical
  // to uninstrumented ones.
  std::uint64_t persist_events() const { return persist_events_; }

  // Arm a crash trigger: when `n` more persist events have occurred
  // (n >= 1, counted from now), the platform crashes exactly as crash()
  // does, freezes — every subsequent timed data-path operation becomes a
  // no-op, so RAII cleanup in the unwinding workload cannot touch the
  // durable image — and throws CrashPointHit. Deterministic workloads
  // therefore crash at exactly the same machine state for the same `n`.
  void crash_after(std::uint64_t n);

  // Disarm and unfreeze after a fired (or abandoned) trigger; the durable
  // image is left exactly as the crash produced it, ready for recovery.
  void clear_crash_trigger();

  bool crash_fired() const { return crash_fired_; }
  bool frozen() const { return frozen_; }

  // ---- Media fault model (src/xpsim/fault.h) -----------------------------
  // Inert until a FaultInjector plants a fault or arms a trigger: with no
  // faults in use, every timed read takes one disabled branch and all
  // error counters stay zero, so fault-free runs are bit-identical to the
  // pre-fault-subsystem simulator.
  static constexpr std::uint64_t kXpLineBytes = 256;

  // Timed device reads (cache fills + RFOs) served by App-Direct XP
  // namespaces, counted unconditionally — the read-site numbering that
  // arm_read_fault() uses, mirroring persist_events()/crash_after().
  std::uint64_t device_reads() const { return device_reads_; }

  // Mark the XPLine containing `off` uncorrectable: its durable bytes are
  // clobbered deterministically, cached copies of the line are discarded,
  // and every later timed read of it throws MediaError until a full-line
  // ntstore rewrites it.
  void poison_line(PmemNamespace& ns, std::uint64_t off);
  bool line_poisoned(const PmemNamespace& ns, std::uint64_t off) const;

  // Plant a one-shot ECC-corrected transient on the XPLine containing
  // `off`: the next read succeeds but counts an ecc_corrected event.
  void mark_ecc_transient(PmemNamespace& ns, std::uint64_t off);

  // Campaign trigger: the n-th device read from now (n >= 1) poisons the
  // XPLine it touches, crashes and freezes the platform (the faulting
  // process dies at the MCE), and throws MediaError.
  void arm_read_fault(std::uint64_t n);
  bool media_fault_fired() const { return media_fault_fired_; }

  // Disarm and unfreeze after a fired (or abandoned) injection; the
  // poison stays, ready for recovery. Analogue of clear_crash_trigger().
  void clear_media_fault();

  // Wear-out coupling: an XPLine whose AIT wear-migration count has
  // reached `m` goes uncorrectable on its next write. 0 disables.
  void set_wear_fail_migrations(std::uint64_t m);

  // Address Range Scrub: report the 256 B-aligned offsets of every
  // poisoned XPLine inside [off, off+len) of `ns`, sorted ascending.
  // Untimed firmware maintenance — no simulated clock is charged; counts
  // lines_scrubbed and emits kScrubFound telemetry per bad line.
  std::vector<std::uint64_t> ars(PmemNamespace& ns, std::uint64_t off,
                                 std::uint64_t len);

  // Start a new measurement epoch: forget every queue/bank/link
  // reservation so freshly spawned ThreadCtx clocks (which start at 0)
  // don't wait behind stale far-future reservations from a previous run.
  // Data contents, caches, wear and counters are untouched. Call this
  // before every independent sim::Scheduler run on a reused Platform.
  void reset_timing();

  // Adopt every namespace image's debug single-owner latch for the
  // calling host thread (see SparseImage::rebind_owner). The schedmc
  // interleaver calls this on each run-token handoff so its strictly
  // serialized host threads pass the latch instead of tripping it; any
  // access without holding the token still fails fast. Release: no-op.
  void adopt_host_owner() {
    for (auto& ns : namespaces_) ns->image_.rebind_owner();
  }

  // ---- Telemetry (src/telemetry) -----------------------------------------
  // Attach a sink to receive structured events from every device and a
  // tick per data-path call (see telemetry_sink.h). At most one sink; the
  // previous one is detached. Sinks are timing-neutral, so attaching one
  // never changes simulated results. Null detaches.
  void attach_telemetry(TelemetrySink* sink);
  TelemetrySink* telemetry() const { return telemetry_; }

  CacheModel& cache(unsigned socket) { return *caches_[socket]; }
  const CacheCounters& cache_counters(unsigned socket) const {
    return cache_counters_[socket];
  }
  XpDimm& xp_dimm(unsigned socket, unsigned channel) {
    return *sockets_[socket].xp[channel];
  }
  const XpDimm& xp_dimm(unsigned socket, unsigned channel) const {
    return *sockets_[socket].xp[channel];
  }
  DramDimm& dram_dimm(unsigned socket, unsigned channel) {
    return *sockets_[socket].dram[channel];
  }
  const DramDimm& dram_dimm(unsigned socket, unsigned channel) const {
    return *sockets_[socket].dram[channel];
  }
  UpiLink& upi() { return *upi_; }
  MemoryModeChannel& memory_mode_channel(unsigned socket, unsigned channel) {
    return *sockets_[socket].mm[channel];
  }

  friend class PmemNamespace;

 private:
  struct SocketHw {
    std::vector<std::unique_ptr<XpDimm>> xp;
    std::vector<std::unique_ptr<DramDimm>> dram;
    std::vector<std::unique_ptr<MemoryModeChannel>> mm;
  };

  // ---- internal timed paths (per 64 B line) ------------------------------
  // Read one cache line's worth of data from the device into `out`
  // (durable image content). Returns data-arrival completion time.
  Time device_read_line(ThreadCtx& ctx, PmemNamespace& ns,
                        std::uint64_t line_off, Time t);
  // Send one 64 B write to the device (enters ADR). Returns persist-ack.
  Time device_write64(ThreadCtx& ctx, PmemNamespace& ns,
                      std::uint64_t line_off, Time t);

  // Write back a victim cache line to its home namespace (applies data to
  // the durable image). Returns persist-ack time.
  Time writeback_line(ThreadCtx& ctx, std::uint64_t paddr_line,
                      const CacheModel::LineData& data, Time t);

  // If any *other* socket caches this line dirty, flush it to the image
  // (simplified MESI ownership transfer). `t` is the requester's clock,
  // used only to timestamp the telemetry event (the flush itself is
  // data-movement only).
  void coherence_flush(unsigned requesting_socket, std::uint64_t paddr_line,
                       Time t);

  PmemNamespace* namespace_of(std::uint64_t paddr);

  // One cache-line-granular step of load/store; used by PmemNamespace.
  void do_load(ThreadCtx& ctx, PmemNamespace& ns, std::uint64_t off,
               std::span<std::uint8_t> out);
  void do_store(ThreadCtx& ctx, PmemNamespace& ns, std::uint64_t off,
                std::span<const std::uint8_t> data);
  void do_ntstore(ThreadCtx& ctx, PmemNamespace& ns, std::uint64_t off,
                  std::span<const std::uint8_t> data);
  enum class FlushKind { kClwb, kClflushopt, kClflush };
  void do_flush(ThreadCtx& ctx, PmemNamespace& ns, std::uint64_t off,
                std::size_t len, FlushKind kind);

  // Record one durability-relevant event; fires the armed crash trigger
  // (crash + freeze + throw CrashPointHit) when the count is reached.
  // `kind` and `t` only feed the telemetry sink — the count itself (and
  // therefore every crash point) is independent of them.
  void note_persist_event(PersistEventKind kind, Time t);

  // ---- media fault internals (fault paths only) --------------------------
  // Counters of the DIMM owning `xpline` of `ns`.
  XpCounters& fault_counters(PmemNamespace& ns, std::uint64_t xpline);
  // poison_line() after alignment; idempotent.
  void do_poison(PmemNamespace& ns, std::uint64_t xpline);
  // Clear poison because a full-XPLine write just reached the ADR domain.
  void clear_poison_by_write(PmemNamespace& ns, std::uint64_t xpline, Time t);
  // Per-device-read fault gate, called with an access in flight; on a
  // fault it completes the access, then throws MediaError (after crash +
  // freeze if the armed trigger fired).
  void media_fault_check(ThreadCtx& ctx, PmemNamespace& ns,
                         std::uint64_t line_off, Time done);
  [[noreturn]] void fire_media_error(ThreadCtx& ctx, PmemNamespace& ns,
                                     std::uint64_t xpline, Time done,
                                     bool injected);

  Timing timing_;
  std::vector<std::unique_ptr<CacheModel>> caches_;  // one per socket
  std::vector<CacheCounters> cache_counters_;
  std::vector<SocketHw> sockets_;
  std::unique_ptr<UpiLink> upi_;
  std::vector<std::unique_ptr<PmemNamespace>> namespaces_;
  std::uint64_t next_base_ = 0;

  std::uint64_t persist_events_ = 0;
  std::uint64_t crash_at_ = 0;  // 0 = disarmed
  bool frozen_ = false;
  bool crash_fired_ = false;
  TelemetrySink* telemetry_ = nullptr;

  std::uint64_t device_reads_ = 0;
  std::uint64_t read_fault_at_ = 0;  // 0 = disarmed
  std::uint64_t wear_fail_migrations_ = 0;
  bool media_faults_enabled_ = false;
  bool media_fault_fired_ = false;
};

}  // namespace xp::hw
