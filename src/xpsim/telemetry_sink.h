// Telemetry hook interface implemented by src/telemetry.
//
// The simulator's devices emit structured events (durability boundaries,
// XPBuffer evictions, AIT misses, crash points) through this interface so
// that xpsim carries no dependency on the telemetry subsystem. A Platform
// holds at most one sink; every emission site is guarded by a single
// null-pointer branch, so a platform with no sink attached pays one
// predictable branch per data-path call and nothing else (verified by the
// bench_timing hot-path canaries).
//
// Sinks must be timing-neutral: they may read counters and record events
// but never touch simulated clocks or device state, so an instrumented
// run is byte-identical to an uninstrumented one.
#pragma once

#include <cstdint>

#include "sim/simtime.h"

namespace xp::hw {

// Which durability boundary produced a persist event. The order matches
// the enumeration in Platform::note_persist_event's call sites.
enum class PersistEventKind : std::uint8_t {
  kWpqEntry,         // dirty line flushed into the WPQ (clwb/clflush(opt))
  kNtStoreDrain,     // one 64 B line of an ntstore draining to the iMC
  kWriteback,        // natural cache-eviction write-back
  kCoherenceFlush,   // cross-socket ownership flush
  kSfence,           // sfence/mfence retirement
};
inline constexpr unsigned kPersistEventKinds = 5;

// What kind of XPBuffer slot release occurred.
enum class EvictKind : std::uint8_t {
  kClean,    // no dirty sub-blocks: slot freed, no media traffic
  kFull,     // fully dirty line: one 256 B media write
  kPartial,  // partially dirty: read-modify-write (256 B read + write)
  kRewrite,  // fully dirty line rewritten in place: flushed, fresh round
};

// Media (XPLine) error-model events, emitted by the fault-injection
// subsystem (src/xpsim/fault.h). Only produced when faults are in use, so
// fault-free runs emit no such events.
enum class MediaFaultKind : std::uint8_t {
  kCorrected,       // ECC-corrected transient: data served, event logged
  kPoisoned,        // a 256 B XPLine became uncorrectable (injected/wear)
  kUncorrectable,   // a read hit a poisoned line and returned MediaError
  kClearedByWrite,  // a full-XPLine overwrite cleared the poison state
  kScrubFound,      // ARS reported this line in its bad-line list
};
inline constexpr unsigned kMediaFaultKinds = 5;

// Software read-path events, emitted by the shared read-combining layer
// (src/pmemlib/linereader.h, readcache.h). Only produced when a store has
// its read knobs enabled, so default-configuration runs emit no such
// events.
enum class ReadPathEventKind : std::uint8_t {
  kCombinedFetch,    // a LineReader staged an XPLine-aligned span from PM
  kStagedServe,      // a fetch served from the already-staged span
  kCacheHitLine,     // a 256 B line served from the DRAM ReadCache
  kCacheFillLine,    // a line fetched from PM and installed in the cache
  kCacheInvalidate,  // a write dropped a cached line
};
inline constexpr unsigned kReadPathEventKinds = 5;

// Serving-layer resilience events, emitted by the self-healing sharded
// frontend (src/workload/shard.h). The first four are the per-shard
// health state machine's transitions (healthy -> degraded -> quarantined
// -> rebuilding -> healthy); the rest are request-level outcomes and
// rebuild progress. Only produced on fault paths (or operator-initiated
// quarantine), so fault-free runs emit no such events.
enum class ResilienceEventKind : std::uint8_t {
  kDegraded,      // shard took its first contained media error
  kQuarantined,   // shard pulled from service (error budget / write error)
  kRebuilding,    // online scrub/rebuild started on donated turns
  kRecovered,     // shard verified and returned to healthy
  kFailoverRead,  // a read served by a replica copy
  kRetry,         // an op retried after a deterministic simulated backoff
  kUnavailable,   // an op exhausted its deadline budget (typed error)
  kResilverKey,   // one key copied back into a rebuilding shard
};
inline constexpr unsigned kResilienceEventKinds = 8;
// Op-level events (kRetry, kUnavailable) describe a request, not one
// physical store; they carry this sentinel in the `shard` argument.
inline constexpr unsigned kResilienceNoShard = ~0u;

class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;

  // One durability boundary crossed. `seq` is the post-increment value of
  // Platform::persist_events() — the same numbering crash_after() uses.
  virtual void persist_event(PersistEventKind /*kind*/, sim::Time /*t*/,
                             std::uint64_t /*seq*/) {}

  // An XPBuffer slot release on DIMM (socket, channel).
  virtual void buffer_eviction(EvictKind /*kind*/, sim::Time /*t*/,
                               unsigned /*socket*/, unsigned /*channel*/) {}

  // An AIT translation miss on DIMM (socket, channel).
  virtual void ait_miss(sim::Time /*t*/, unsigned /*socket*/,
                        unsigned /*channel*/) {}

  // An armed crash trigger fired at persist event `seq`. Emitted before
  // CrashPointHit is thrown.
  virtual void crash_fired(sim::Time /*t*/, std::uint64_t /*seq*/) {}

  // A media error-model event on DIMM (socket, channel). `line_off` is
  // the 256 B-aligned namespace offset of the affected XPLine. ARS events
  // carry t == 0 (scrubbing is an untimed maintenance operation).
  virtual void media_fault(MediaFaultKind /*kind*/, sim::Time /*t*/,
                           unsigned /*socket*/, unsigned /*channel*/,
                           std::uint64_t /*line_off*/) {}

  // A software read-path event (LineReader/ReadCache). `bytes` is the
  // span the event covers: PM bytes fetched for kCombinedFetch, user
  // bytes served for kStagedServe, 256 per line for the cache events.
  // Invalidations triggered by untimed writes carry t == 0.
  virtual void read_path(ReadPathEventKind /*kind*/, sim::Time /*t*/,
                         std::uint64_t /*bytes*/) {}

  // A serving-layer resilience event on shard `shard` (a physical store
  // index in the sharded frontend, or kResilienceNoShard for op-level
  // events not tied to one store). Health transitions and request-level
  // outcomes both arrive here; fault-free runs emit none.
  virtual void resilience(ResilienceEventKind /*kind*/, sim::Time /*t*/,
                          unsigned /*shard*/) {}

  // A schedule-exploration yield point (src/schedmc) announced by a
  // hooked thread. `kind` indexes sim::SchedPoint (sched_point_name()).
  // Only schedmc interleaver runs emit these; production runs carry no
  // hook and emit none.
  virtual void sched_point(unsigned /*kind*/, unsigned /*thread*/) {}

  // Called once per timed data-path operation (load/store/ntstore/flush/
  // fence) with the issuing thread's clock; drives periodic samplers.
  virtual void tick(sim::Time /*now*/) {}

  // A workload runner finished a measured run on this platform.
  virtual void run_complete(const char* /*name*/, sim::Time /*start*/,
                            sim::Time /*end*/) {}
};

}  // namespace xp::hw
