#include "xpsim/platform.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>

namespace xp::hw {

namespace {

// Iterate the cache-line-granular segments of a byte range.
// fn(line_off, seg_off, seg_len): seg_off is the absolute namespace
// offset of the segment, line_off its containing line's start.
template <typename Fn>
void for_each_line_segment(std::uint64_t off, std::size_t len, Fn&& fn) {
  std::uint64_t pos = off;
  std::size_t remaining = len;
  while (remaining > 0) {
    const std::uint64_t line_off = pos & ~std::uint64_t{63};
    const std::size_t in_line = static_cast<std::size_t>(pos - line_off);
    const std::size_t n = std::min(remaining, std::size_t{64} - in_line);
    fn(line_off, pos, n);
    pos += n;
    remaining -= n;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// PmemNamespace
// ---------------------------------------------------------------------------

PmemNamespace::PmemNamespace(Platform& platform, NamespaceOptions opts,
                             std::uint64_t base)
    : platform_(platform),
      opts_(std::move(opts)),
      base_(base),
      decoder_(
          (opts_.device == Device::kXp && !opts_.interleaved)
              ? 1
              : platform.timing().channels_per_socket,
          opts_.device == Device::kXp ? platform.timing().interleave_chunk
                                      : 256),
      image_(opts_.size) {}

DimmAddr PmemNamespace::decode(std::uint64_t off) const {
  if (decoder_.channels() == 1) return DimmAddr{opts_.dimm, off};
  return decoder_.decode(off);
}

void PmemNamespace::load(ThreadCtx& ctx, std::uint64_t off,
                         std::span<std::uint8_t> out) {
  assert(off + out.size() <= opts_.size);
  platform_.do_load(ctx, *this, off, out);
}

void PmemNamespace::store(ThreadCtx& ctx, std::uint64_t off,
                          std::span<const std::uint8_t> data) {
  assert(off + data.size() <= opts_.size);
  if (!platform_.frozen()) {
    notify_store(off, data.size());
    // With a DRAM read cache attached the invalidation just performed is
    // a cross-thread visibility edge — let the schedule explorer preempt
    // here. Observer-free stores announce nothing.
    if (observer_ != nullptr)
      ctx.sched_point(sim::SchedPoint::kCacheInvalidate);
  }
  platform_.do_store(ctx, *this, off, data);
}

void PmemNamespace::ntstore(ThreadCtx& ctx, std::uint64_t off,
                            std::span<const std::uint8_t> data) {
  assert(off + data.size() <= opts_.size);
  if (!platform_.frozen()) {
    notify_store(off, data.size());
    if (observer_ != nullptr)
      ctx.sched_point(sim::SchedPoint::kCacheInvalidate);
  }
  platform_.do_ntstore(ctx, *this, off, data);
}

void PmemNamespace::clwb(ThreadCtx& ctx, std::uint64_t off, std::size_t len) {
  platform_.do_flush(ctx, *this, off, len, Platform::FlushKind::kClwb);
}

void PmemNamespace::clflushopt(ThreadCtx& ctx, std::uint64_t off,
                               std::size_t len) {
  platform_.do_flush(ctx, *this, off, len, Platform::FlushKind::kClflushopt);
}

void PmemNamespace::clflush(ThreadCtx& ctx, std::uint64_t off,
                            std::size_t len) {
  platform_.do_flush(ctx, *this, off, len, Platform::FlushKind::kClflush);
}

void PmemNamespace::sfence(ThreadCtx& ctx) {
  // Fence retirement is the durability edge every persistence protocol
  // hinges on — announce it before the frozen check, so threads that
  // outlive a crash under the schedule explorer are unwound at their next
  // fence instead of running on against a dead machine.
  ctx.sched_point(sim::SchedPoint::kFence);
  if (platform_.frozen()) return;
  ctx.drain();
  ctx.advance_by(platform_.timing().fence_overhead);
  platform_.note_persist_event(PersistEventKind::kSfence, ctx.now());
  if (TelemetrySink* sink = platform_.telemetry()) sink->tick(ctx.now());
}

void PmemNamespace::mfence(ThreadCtx& ctx) { sfence(ctx); }

void PmemNamespace::persist(ThreadCtx& ctx, std::uint64_t off,
                            std::size_t len) {
  clwb(ctx, off, len);
  sfence(ctx);
}

void PmemNamespace::store_flush(ThreadCtx& ctx, std::uint64_t off,
                                std::span<const std::uint8_t> data) {
  store(ctx, off, data);
  clwb(ctx, off, data.size());
}

void PmemNamespace::store_persist(ThreadCtx& ctx, std::uint64_t off,
                                  std::span<const std::uint8_t> data) {
  store_flush(ctx, off, data);
  sfence(ctx);
}

void PmemNamespace::ntstore_persist(ThreadCtx& ctx, std::uint64_t off,
                                    std::span<const std::uint8_t> data) {
  ntstore(ctx, off, data);
  sfence(ctx);
}

void PmemNamespace::peek(std::uint64_t off,
                         std::span<std::uint8_t> out) const {
  image_.read(off, out);
}

void PmemNamespace::poke(std::uint64_t off,
                         std::span<const std::uint8_t> in) {
  notify_store(off, in.size());
  image_.write(off, in);
}

XpCounters PmemNamespace::xp_counters() const {
  XpCounters sum;
  if (opts_.device != Device::kXp) return sum;
  if (opts_.interleaved) {
    for (unsigned ch = 0; ch < platform_.timing().channels_per_socket; ++ch)
      sum += platform_.sockets_[opts_.socket].xp[ch]->counters();
  } else {
    sum += platform_.sockets_[opts_.socket].xp[opts_.dimm]->counters();
  }
  return sum;
}

DramCounters PmemNamespace::dram_counters() const {
  DramCounters sum;
  if (opts_.device != Device::kDram) return sum;
  for (unsigned ch = 0; ch < platform_.timing().channels_per_socket; ++ch)
    sum += platform_.sockets_[opts_.socket].dram[ch]->counters();
  return sum;
}

// ---------------------------------------------------------------------------
// Platform
// ---------------------------------------------------------------------------

Platform::Platform(Timing timing, std::uint64_t seed) : timing_(timing) {
  caches_.reserve(timing_.sockets);
  cache_counters_.resize(timing_.sockets);
  sockets_.resize(timing_.sockets);
  for (unsigned s = 0; s < timing_.sockets; ++s) {
    caches_.push_back(
        std::make_unique<CacheModel>(timing_.llc_lines, seed + s * 977));
    for (unsigned ch = 0; ch < timing_.channels_per_socket; ++ch) {
      sockets_[s].xp.push_back(std::make_unique<XpDimm>(timing_));
      sockets_[s].dram.push_back(std::make_unique<DramDimm>(timing_));
      sockets_[s].mm.push_back(std::make_unique<MemoryModeChannel>(
          timing_, *sockets_[s].dram.back(), *sockets_[s].xp.back()));
    }
  }
  upi_ = std::make_unique<UpiLink>(timing_);
}

Platform::~Platform() = default;

PmemNamespace& Platform::add_namespace(NamespaceOptions opts) {
  assert(opts.socket < timing_.sockets);
  // 1 GB-align bases so cache-line addresses never straddle namespaces.
  constexpr std::uint64_t kAlign = std::uint64_t{1} << 30;
  next_base_ = (next_base_ + kAlign - 1) / kAlign * kAlign;
  namespaces_.push_back(
      std::make_unique<PmemNamespace>(*this, opts, next_base_));
  next_base_ += (opts.size + kAlign - 1) / kAlign * kAlign;
  return *namespaces_.back();
}

PmemNamespace& Platform::optane(std::uint64_t size, unsigned socket) {
  return add_namespace({.device = Device::kXp,
                        .socket = socket,
                        .interleaved = true,
                        .size = size,
                        .name = "optane"});
}

PmemNamespace& Platform::optane_ni(std::uint64_t size, unsigned socket,
                                   unsigned dimm) {
  return add_namespace({.device = Device::kXp,
                        .socket = socket,
                        .interleaved = false,
                        .dimm = dimm,
                        .size = size,
                        .name = "optane-ni"});
}

PmemNamespace& Platform::dram(std::uint64_t size, unsigned socket) {
  return add_namespace({.device = Device::kDram,
                        .socket = socket,
                        .size = size,
                        .name = "dram"});
}

PmemNamespace& Platform::pmep(std::uint64_t size, unsigned socket) {
  return add_namespace({.device = Device::kDram,
                        .socket = socket,
                        .size = size,
                        .emulation = pmep_knobs(),
                        .name = "pmep"});
}

PmemNamespace& Platform::optane_memory_mode(std::uint64_t size,
                                            unsigned socket) {
  return add_namespace({.device = Device::kXp,
                        .socket = socket,
                        .interleaved = true,
                        .size = size,
                        .memory_mode = true,
                        .name = "optane-memory-mode"});
}

std::size_t Platform::crash() {
  std::size_t lost_total = 0;
  if (timing_.eadr) {
    // eADR: the caches are inside the persistence domain; reserve energy
    // flushes every dirty line before the machine dies.
    writeback_all_caches();
  }
  for (auto& cache : caches_) {
    std::size_t lost = 0;
    cache->drop_all(&lost);
    lost_total += lost;
  }
  // Memory-Mode namespaces are volatile: their contents are gone too.
  for (auto& ns : namespaces_) {
    if (ns->opts_.memory_mode) ns->image_.clear();
  }
  return lost_total;
}

void Platform::crash_after(std::uint64_t n) {
  assert(n >= 1);
  assert(!frozen_);
  crash_at_ = persist_events_ + n;
  crash_fired_ = false;
}

void Platform::clear_crash_trigger() {
  crash_at_ = 0;
  frozen_ = false;
}

void Platform::note_persist_event(PersistEventKind kind, Time t) {
  ++persist_events_;
  if (telemetry_) telemetry_->persist_event(kind, t, persist_events_);
  if (crash_at_ != 0 && persist_events_ >= crash_at_) {
    crash_at_ = 0;
    crash_fired_ = true;
    if (telemetry_) telemetry_->crash_fired(t, persist_events_);
    crash();
    frozen_ = true;
    throw CrashPointHit{};
  }
}

// ---------------------------------------------------------------------------
// Media fault model
// ---------------------------------------------------------------------------

XpCounters& Platform::fault_counters(PmemNamespace& ns, std::uint64_t xpline) {
  const DimmAddr da = ns.decode(xpline);
  return sockets_[ns.socket()].xp[da.channel]->counters();
}

void Platform::poison_line(PmemNamespace& ns, std::uint64_t off) {
  do_poison(ns, off & ~(kXpLineBytes - 1));
}

bool Platform::line_poisoned(const PmemNamespace& ns,
                             std::uint64_t off) const {
  return ns.poison_.count(off & ~(kXpLineBytes - 1)) != 0;
}

void Platform::mark_ecc_transient(PmemNamespace& ns, std::uint64_t off) {
  assert(ns.device() == Device::kXp && !ns.opts_.memory_mode);
  media_faults_enabled_ = true;
  ns.ecc_transient_.insert(off & ~(kXpLineBytes - 1));
}

void Platform::arm_read_fault(std::uint64_t n) {
  assert(n >= 1);
  assert(!frozen_);
  media_faults_enabled_ = true;
  read_fault_at_ = device_reads_ + n;
  media_fault_fired_ = false;
}

void Platform::clear_media_fault() {
  read_fault_at_ = 0;
  media_fault_fired_ = false;
  frozen_ = false;
}

void Platform::set_wear_fail_migrations(std::uint64_t m) {
  wear_fail_migrations_ = m;
  if (m != 0) media_faults_enabled_ = true;
}

void Platform::do_poison(PmemNamespace& ns, std::uint64_t xpline) {
  assert(ns.device() == Device::kXp && !ns.opts_.memory_mode);
  media_faults_enabled_ = true;
  if (!ns.poison_.insert(xpline).second) return;
  // Deterministic clobber of the line's durable bytes (SplitMix64 keyed
  // by physical line address), so untimed peeks see garbage rather than
  // stale-but-plausible data — an uncorrectable line has no data.
  std::array<std::uint8_t, kXpLineBytes> junk;
  std::uint64_t x = (ns.base_ + xpline) ^ 0x9e3779b97f4a7c15ULL;
  for (std::size_t w = 0; w < kXpLineBytes; w += 8) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    std::memcpy(junk.data() + w, &z, 8);
  }
  ns.image_write(xpline, junk);
  ns.notify_store(xpline, kXpLineBytes);
  // Discard cached copies of the line's four 64 B sub-lines so later
  // reads must refetch from media and take the fault (dirty copies are
  // lost — the media under them failed).
  for (auto& cache : caches_)
    for (std::uint64_t sub = 0; sub < kXpLineBytes; sub += 64)
      cache->erase(ns.base_ + xpline + sub);
  ++fault_counters(ns, xpline).lines_poisoned;
  if (telemetry_)
    telemetry_->media_fault(MediaFaultKind::kPoisoned, 0, ns.socket(),
                            ns.decode(xpline).channel, xpline);
}

void Platform::clear_poison_by_write(PmemNamespace& ns, std::uint64_t xpline,
                                     Time t) {
  auto it = ns.poison_.find(xpline);
  if (it == ns.poison_.end()) return;
  ns.poison_.erase(it);
  ++fault_counters(ns, xpline).poison_cleared;
  if (telemetry_)
    telemetry_->media_fault(MediaFaultKind::kClearedByWrite, t, ns.socket(),
                            ns.decode(xpline).channel, xpline);
}

void Platform::media_fault_check(ThreadCtx& ctx, PmemNamespace& ns,
                                 std::uint64_t line_off, Time done) {
  const std::uint64_t xpline = line_off & ~(kXpLineBytes - 1);
  if (read_fault_at_ != 0 && device_reads_ >= read_fault_at_) {
    read_fault_at_ = 0;
    fire_media_error(ctx, ns, xpline, done, /*injected=*/true);
  }
  if (ns.poison_.count(xpline) != 0)
    fire_media_error(ctx, ns, xpline, done, /*injected=*/false);
  if (auto it = ns.ecc_transient_.find(xpline);
      it != ns.ecc_transient_.end()) {
    ns.ecc_transient_.erase(it);
    ++fault_counters(ns, xpline).ecc_corrected;
    if (telemetry_)
      telemetry_->media_fault(MediaFaultKind::kCorrected, done, ns.socket(),
                              ns.decode(xpline).channel, xpline);
  }
}

void Platform::fire_media_error(ThreadCtx& ctx, PmemNamespace& ns,
                                std::uint64_t xpline, Time done,
                                bool injected) {
  const unsigned channel = ns.decode(xpline).channel;
  if (injected) {
    do_poison(ns, xpline);
    media_fault_fired_ = true;
  }
  ++fault_counters(ns, xpline).uncorrectable_reads;
  if (telemetry_)
    telemetry_->media_fault(MediaFaultKind::kUncorrectable, done,
                            ns.socket(), channel, xpline);
  // Complete the in-flight access before unwinding so the thread's clock
  // state stays coherent for whoever catches the error.
  ctx.complete_access(done);
  if (injected) {
    // The faulting process dies at the MCE: model it exactly like a power
    // failure, then freeze so RAII cleanup in the unwinding workload
    // cannot touch the durable image.
    crash();
    frozen_ = true;
  }
  throw MediaError(ns.name(), xpline, ns.socket(), channel);
}

std::vector<std::uint64_t> Platform::ars(PmemNamespace& ns, std::uint64_t off,
                                         std::uint64_t len) {
  std::vector<std::uint64_t> bad;
  const std::uint64_t lo = off & ~(kXpLineBytes - 1);
  for (auto it = ns.poison_.lower_bound(lo);
       it != ns.poison_.end() && *it < off + len; ++it)
    bad.push_back(*it);
  for (const std::uint64_t line : bad) {
    ++fault_counters(ns, line).lines_scrubbed;
    if (telemetry_)
      telemetry_->media_fault(MediaFaultKind::kScrubFound, 0, ns.socket(),
                              ns.decode(line).channel, line);
  }
  return bad;
}

void Platform::attach_telemetry(TelemetrySink* sink) {
  telemetry_ = sink;
  for (unsigned s = 0; s < timing_.sockets; ++s)
    for (unsigned ch = 0; ch < timing_.channels_per_socket; ++ch)
      sockets_[s].xp[ch]->set_telemetry(sink, s, ch);
}

void Platform::reset_timing() {
  for (auto& socket : sockets_) {
    for (auto& dimm : socket.xp) dimm->reset_timing();
    for (auto& dimm : socket.dram) dimm->reset_timing();
  }
  upi_->reset_timing();
}

void Platform::writeback_all_caches() {
  for (auto& cache : caches_) {
    cache->writeback_all(
        [this](std::uint64_t paddr_line, const CacheModel::LineData& data) {
          PmemNamespace* ns = namespace_of(paddr_line);
          if (ns != nullptr) ns->image_write(paddr_line - ns->base_, data);
        });
  }
}

PmemNamespace* Platform::namespace_of(std::uint64_t paddr) {
  for (auto& ns : namespaces_) {
    if (paddr >= ns->base_ && paddr < ns->base_ + ns->size()) return ns.get();
  }
  return nullptr;
}

void Platform::coherence_flush(unsigned requesting_socket,
                               std::uint64_t paddr_line, Time t) {
  for (unsigned s = 0; s < timing_.sockets; ++s) {
    if (s == requesting_socket) continue;
    CacheModel& cache = *caches_[s];
    if (cache.is_dirty(paddr_line)) {
      const std::uint8_t* p = cache.find(paddr_line);
      PmemNamespace* ns = namespace_of(paddr_line);
      if (ns != nullptr) {
        ns->image_write(paddr_line - ns->base_,
                        std::span<const std::uint8_t>(p, 64));
      }
      cache.mark_dirty(paddr_line, false);
      note_persist_event(PersistEventKind::kCoherenceFlush, t);
    }
  }
}

Time Platform::device_read_line(ThreadCtx& ctx, PmemNamespace& ns,
                                std::uint64_t line_off, Time t) {
  t += timing_.mesh;
  const bool remote = ctx.socket() != ns.socket();
  if (remote) {
    // Read command crosses on the outbound lane (may queue behind
    // lane-holding remote writes — the mixed-traffic pathology).
    t = upi_->outbound(t + upi_->command_latency(), timing_.ddrt_cmd);
  }
  const DimmAddr da = ns.decode(line_off);
  Time done;
  if (ns.opts_.memory_mode) {
    done = sockets_[ns.socket()].mm[da.channel]->read64(t, da.addr,
                                                        ctx.id());
  } else if (ns.device() == Device::kXp) {
    done = sockets_[ns.socket()].xp[da.channel]->read64(t, da.addr, ctx.id());
  } else {
    done = sockets_[ns.socket()].dram[da.channel]->read64(t, da.addr);
  }
  if (remote) done = upi_->inbound(done, upi_->data64());
  done += ns.opts_.emulation.extra_load_latency;
  return done;
}

Time Platform::device_write64(ThreadCtx& ctx, PmemNamespace& ns,
                              std::uint64_t line_off, Time t) {
  t += timing_.mesh;
  const bool remote = ctx.socket() != ns.socket();
  if (remote) {
    t = upi_->outbound(t + upi_->command_latency(), upi_->data64());
  }
  const DimmAddr da = ns.decode(line_off);
  Time ack;
  Time admit_wait = 0;
  if (ns.opts_.memory_mode) {
    ack = sockets_[ns.socket()].mm[da.channel]->write64(t, da.addr,
                                                        ctx.id());
  } else if (ns.device() == Device::kXp) {
    ack = sockets_[ns.socket()].xp[da.channel]->write64(
        t, da.addr, ctx.write_stream(), &admit_wait);
  } else {
    ack = sockets_[ns.socket()].dram[da.channel]->write64(
        t, da.addr, ns.opts_.emulation.write_slowdown, &admit_wait);
  }
  (void)admit_wait;
  if (wear_fail_migrations_ != 0 && timing_.wear_threshold != 0 &&
      ns.device() == Device::kXp && !ns.opts_.memory_mode) {
    // Wear-out coupling: once the line's AIT migration count has crossed
    // the threshold, the media fails under this write and the line goes
    // uncorrectable (the just-written data is part of what is lost).
    Media& media = sockets_[ns.socket()].xp[da.channel]->media();
    const std::uint64_t media_line = da.addr / timing_.xpline;
    if (media.wear_of(media_line) / timing_.wear_threshold >=
        wear_fail_migrations_)
      do_poison(ns, line_off & ~(kXpLineBytes - 1));
  }
  if (remote && ack > t + timing_.upi_hold_floor) {
    // The outbound lane stays busy until the target iMC accepts the
    // data, beyond the pipelined floor. DRAM acks in nanoseconds (no
    // hold); a write-saturated XP DIMM backs up into the link, which is
    // what collapses multi-threaded mixed remote traffic (Figs 18/19).
    const Time excess = ack - t - timing_.upi_hold_floor;
    upi_->hold_outbound(
        t + static_cast<Time>(static_cast<double>(excess) *
                              timing_.upi_write_hold));
  }
  return ack;
}

Time Platform::writeback_line(ThreadCtx& ctx, std::uint64_t paddr_line,
                              const CacheModel::LineData& data, Time t) {
  PmemNamespace* home = namespace_of(paddr_line);
  if (home == nullptr) return t;
  const std::uint64_t off = paddr_line - home->base_;
  home->image_write(off, data);
  const Time ack = device_write64(ctx, *home, off, t);
  note_persist_event(PersistEventKind::kWriteback, ack);
  return ack;
}

void Platform::do_load(ThreadCtx& ctx, PmemNamespace& ns, std::uint64_t off,
                       std::span<std::uint8_t> out) {
  if (frozen_) {
    // Post-crash: the machine is dead. Reads during unwinding (e.g. an
    // aborting transaction's rollback scan) see zeros and touch nothing.
    std::fill(out.begin(), out.end(), std::uint8_t{0});
    return;
  }
  std::size_t out_pos = 0;
  for_each_line_segment(off, out.size(), [&](std::uint64_t line_off,
                                             std::uint64_t seg_off,
                                             std::size_t n) {
    const std::uint64_t paddr_line = ns.base_ + line_off;
    const std::size_t in_line = static_cast<std::size_t>(seg_off - line_off);
    CacheModel& cache = *caches_[ctx.socket()];
    CacheCounters& cc = cache_counters_[ctx.socket()];

    const Time t0 = ctx.begin_access(timing_.issue_gap);
    Time done;
    if (const std::uint8_t* p = cache.find(paddr_line)) {
      std::memcpy(out.data() + out_pos, p + in_line, n);
      done = t0 + timing_.cache_hit;
      ++cc.load_hits;
    } else {
      ++cc.load_misses;
      coherence_flush(ctx.socket(), paddr_line, t0);
      done = device_read_line(ctx, ns, line_off, t0);
      if (ns.device() == Device::kXp && !ns.opts_.memory_mode) {
        ++device_reads_;
        if (media_faults_enabled_)
          media_fault_check(ctx, ns, line_off, done);  // may throw
      }
      CacheModel::LineData d;
      ns.image_.read(line_off, std::span<std::uint8_t>(d));
      std::memcpy(out.data() + out_pos, d.data() + in_line, n);
      auto victim = cache.insert(paddr_line, d, /*dirty=*/false, cc);
      if (victim && victim->dirty) {
        ++cc.writebacks;
        writeback_line(ctx, victim->line_addr, victim->data, done);
      }
    }
    ctx.complete_access(done);
    out_pos += n;
  });
  if (telemetry_) telemetry_->tick(ctx.now());
}

void Platform::do_store(ThreadCtx& ctx, PmemNamespace& ns, std::uint64_t off,
                        std::span<const std::uint8_t> data) {
  if (frozen_) return;
  std::size_t in_pos = 0;
  for_each_line_segment(off, data.size(), [&](std::uint64_t line_off,
                                              std::uint64_t seg_off,
                                              std::size_t n) {
    const std::uint64_t paddr_line = ns.base_ + line_off;
    const std::size_t in_line = static_cast<std::size_t>(seg_off - line_off);
    CacheModel& cache = *caches_[ctx.socket()];
    CacheCounters& cc = cache_counters_[ctx.socket()];

    const Time t0 = ctx.begin_access(timing_.issue_gap);
    Time done;
    if (std::uint8_t* p = cache.find(paddr_line)) {
      std::memcpy(p + in_line, data.data() + in_pos, n);
      cache.mark_dirty(paddr_line, true);
      done = t0 + timing_.store_hit;
      ++cc.store_hits;
    } else {
      // Read-for-ownership: fill the line, then modify it in cache.
      ++cc.store_misses;
      coherence_flush(ctx.socket(), paddr_line, t0);
      const Time fill = device_read_line(ctx, ns, line_off, t0);
      if (ns.device() == Device::kXp && !ns.opts_.memory_mode) {
        ++device_reads_;
        if (media_faults_enabled_)
          media_fault_check(ctx, ns, line_off, fill);  // may throw
      }
      CacheModel::LineData d;
      ns.image_.read(line_off, std::span<std::uint8_t>(d));
      std::memcpy(d.data() + in_line, data.data() + in_pos, n);
      auto victim = cache.insert(paddr_line, d, /*dirty=*/true, cc);
      Time wb_ack = 0;
      if (victim && victim->dirty) {
        ++cc.writebacks;
        wb_ack = writeback_line(ctx, victim->line_addr, victim->data, t0);
      }
      done = std::max(fill, wb_ack);
    }
    ctx.complete_access(done);
    in_pos += n;
  });
  if (telemetry_) telemetry_->tick(ctx.now());
}

void Platform::do_ntstore(ThreadCtx& ctx, PmemNamespace& ns,
                          std::uint64_t off,
                          std::span<const std::uint8_t> data) {
  if (frozen_) return;
  std::size_t in_pos = 0;
  for_each_line_segment(off, data.size(), [&](std::uint64_t line_off,
                                              std::uint64_t seg_off,
                                              std::size_t n) {
    const std::uint64_t paddr_line = ns.base_ + line_off;
    CacheModel& cache = *caches_[ctx.socket()];

    const Time t0 = ctx.begin_access(timing_.issue_gap);
    // Non-temporal stores bypass and invalidate the cache hierarchy.
    coherence_flush(ctx.socket(), paddr_line, t0);
    if (auto victim = cache.erase(paddr_line)) {
      // A dirty cached copy existed: its bytes reach the image first, then
      // the non-temporal data overwrites the target segment.
      ns.image_write(line_off, victim->data);
    }
    ns.image_write(seg_off, data.subspan(in_pos, n));
    const Time done =
        device_write64(ctx, ns, line_off, t0 + timing_.ntstore_wc_flush);
    ctx.complete_access(done);
    in_pos += n;
    if (media_faults_enabled_) {
      // A full-XPLine overwrite re-establishes ECC: when this segment
      // completes a 256 B line wholly covered by the ntstore — every
      // sub-line already in the ADR domain — its poison clears.
      const std::uint64_t xpline = line_off & ~(kXpLineBytes - 1);
      if (xpline >= off && seg_off + n == xpline + kXpLineBytes)
        clear_poison_by_write(ns, xpline, done);
    }
    note_persist_event(PersistEventKind::kNtStoreDrain, done);
  });
  if (telemetry_) telemetry_->tick(ctx.now());
}

void Platform::do_flush(ThreadCtx& ctx, PmemNamespace& ns, std::uint64_t off,
                        std::size_t len, FlushKind kind) {
  if (frozen_ || len == 0) return;
  const std::uint64_t first = off & ~std::uint64_t{63};
  const std::uint64_t last = (off + len - 1) & ~std::uint64_t{63};
  CacheModel& cache = *caches_[ctx.socket()];
  CacheCounters& cc = cache_counters_[ctx.socket()];
  for (std::uint64_t line_off = first; line_off <= last; line_off += 64) {
    const std::uint64_t paddr_line = ns.base_ + line_off;
    const Time t0 = ctx.begin_access(timing_.issue_gap);
    ++cc.explicit_flushes;
    Time done = t0 + sim::ns(2);
    bool entered_wpq = false;
    if (cache.is_dirty(paddr_line)) {
      const std::uint8_t* p = cache.find(paddr_line);
      ns.image_write(line_off, std::span<const std::uint8_t>(p, 64));
      done = device_write64(ctx, ns, line_off, t0);
      if (kind == FlushKind::kClwb) {
        cache.mark_dirty(paddr_line, false);
      } else {
        cache.mark_dirty(paddr_line, false);
        cache.erase(paddr_line);
      }
      entered_wpq = true;
    } else if (kind != FlushKind::kClwb) {
      cache.erase(paddr_line);
    }
    ctx.complete_access(done);
    if (entered_wpq) note_persist_event(PersistEventKind::kWpqEntry, done);
    if (kind == FlushKind::kClflush) ctx.drain();  // serialized legacy flush
  }
  if (telemetry_) telemetry_->tick(ctx.now());
}

}  // namespace xp::hw
