// XPBuffer: the XPController's small write-combining buffer.
//
// The paper infers (Fig 10) a ~16 KB buffer of 256 B lines that coalesces
// 64 B DDR-T accesses into 256 B media accesses; reads compete for its
// space. This model is the root cause of most of the paper's guidelines:
//
//  * Effective Write Ratio: a line evicted fully dirty costs one 256 B
//    media write; a *partially* dirty line costs a read-modify-write
//    (256 B read + 256 B write). Random 64 B stores therefore run at
//    EWR 0.25; sequential ones at ~1.0.
//  * The 16 KB locality cliff (Fig 10): updates that return to a line
//    still resident coalesce for free; beyond 64 lines they miss.
//  * Thread-count collapse (§5.3): an age-based eager drain writes out
//    lines idle for `xpbuffer_drain_age`; with many writers per DIMM each
//    stream's arrival rate drops, lines get drained partially dirty, and
//    EWR (and thus bandwidth) falls.
//
// The buffer tracks dirty *masks* only; actual bytes live in the
// namespace backing image (writes are applied at WPQ admission, which is
// inside the ADR persistence domain along with this buffer).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simtime.h"
#include "xpsim/counters.h"
#include "xpsim/media.h"
#include "xpsim/telemetry_sink.h"
#include "xpsim/timing.h"

namespace xp::hw {

class XpBuffer {
 public:
  XpBuffer(const Timing& t, Media& media)
      : timing_(t), media_(media) {
    entries_.reserve(t.xpbuffer_lines);
  }

  // Merge one 64 B write into the buffer. `line` is the XPLine index,
  // `sub` the 64 B sub-block (0..3). Returns the time the controller has
  // accepted the write (allocation may stall on an eviction).
  Time write64(Time t, std::uint64_t line, unsigned sub, XpCounters& c);

  // Service a 64 B read. Hits return quickly out of the buffer; misses
  // fetch the whole XPLine from media and install it (clean).
  Time read64(Time t, std::uint64_t line, XpCounters& c);

  bool contains(std::uint64_t line) const {
    return find(line) != nullptr;
  }

  std::size_t occupancy() const { return entries_.size(); }

  // Lines currently holding at least one dirty 64 B sub-block (linear
  // scan over <= xpbuffer_lines entries; telemetry-sampling only).
  std::size_t dirty_lines() const {
    std::size_t n = 0;
    for (const Entry& e : entries_)
      if (e.dirty_mask != 0) ++n;
    return n;
  }

  // Telemetry: emit eviction events to `sink` tagged (socket, channel).
  // Set by the owning XpDimm; null detaches.
  void set_telemetry(TelemetrySink* sink, unsigned socket, unsigned channel) {
    sink_ = sink;
    socket_ = socket;
    channel_ = channel;
  }

  // Write back every dirty line (used by tests and power-fail flush).
  void flush_all(Time t, XpCounters& c);

  // Forget reservation timestamps (new measurement epoch); contents stay.
  void reset_timing();

 private:
  struct Entry {
    std::uint64_t line = 0;
    std::uint8_t dirty_mask = 0;   // bit per 64 B sub-block
    Time last_touch = 0;
    Time ready_at = 0;             // install completes (media fetch)
  };

  const Entry* find(std::uint64_t line) const;
  Entry* find(std::uint64_t line);

  // Ensure a free slot exists at time `t`; returns the time the slot is
  // usable. Also opportunistically drains aged entries.
  Time make_room(Time t, XpCounters& c);

  // Evict `entries_[idx]`; returns the time the slot becomes free.
  Time evict(std::size_t idx, Time t, XpCounters& c);

  void drain_aged(Time t, XpCounters& c);

  static constexpr std::uint8_t kFullMask = 0x0f;

  const Timing& timing_;
  Media& media_;
  std::vector<Entry> entries_;  // <= xpbuffer_lines; linear scan (64 max)
  TelemetrySink* sink_ = nullptr;
  unsigned socket_ = 0;
  unsigned channel_ = 0;
};

}  // namespace xp::hw
