// Chrome-trace ("Trace Event Format") JSON writer.
//
// Collects instant/counter/metadata events in memory and writes a
// `{"traceEvents":[...]}` file loadable by chrome://tracing or Perfetto.
// Simulated picoseconds map to trace microseconds (ts = ps / 1e6),
// formatted with a fixed %.6f so output is byte-deterministic for a
// deterministic simulation.
//
// Event volume is bounded: past `max_events` further events are counted
// but dropped, and the drop count is recorded as a metadata event, so an
// adversarial workload cannot balloon the trace (or host memory) without
// the file saying so.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/simtime.h"

namespace xp::telemetry {

class TraceWriter {
 public:
  explicit TraceWriter(std::size_t max_events = std::size_t{1} << 20)
      : max_events_(max_events) {}

  // ph:"i" instant event. `args_json` is either empty or a complete JSON
  // object ("{...}"); pid/tid convey (socket, channel) for device events.
  void instant(const std::string& name, const char* category, sim::Time t,
               unsigned pid, unsigned tid, std::string args_json = {});

  // ph:"C" counter event; `series_json` is the args object, one numeric
  // member per series ({"wpq":3,"rpq":1}).
  void counter(const std::string& name, sim::Time t, unsigned pid,
               unsigned tid, std::string series_json);

  // ph:"X" complete event spanning [start, start+dur].
  void complete(const std::string& name, const char* category,
                sim::Time start, sim::Time dur, unsigned pid, unsigned tid,
                std::string args_json = {});

  // ph:"M" process/thread naming metadata (ts-less).
  void name_process(unsigned pid, const std::string& name);
  void name_thread(unsigned pid, unsigned tid, const std::string& name);

  std::size_t events() const { return events_.size(); }
  std::uint64_t dropped() const { return dropped_; }

  // Serialize all events. Returns false (and leaves no partial file
  // behind its own fault — the stream is simply closed) on I/O failure.
  bool write_file(const std::string& path) const;
  std::string to_json() const;

 private:
  struct Event {
    char ph;            // 'i', 'C', 'X', 'M'
    sim::Time ts;       // ignored for 'M'
    unsigned pid, tid;
    std::string name;
    const char* cat;    // nullptr for no category
    std::string args;   // pre-rendered JSON object or empty
    sim::Time dur = 0;  // 'X' only
  };

  bool push(Event e);

  std::size_t max_events_;
  std::uint64_t dropped_ = 0;
  std::vector<Event> events_;
};

}  // namespace xp::telemetry
