#include "telemetry/registry.h"

#include <cassert>

#include "xpsim/platform.h"

namespace xp::telemetry {

Snapshot Snapshot::capture(const hw::Platform& platform) {
  const hw::Timing& t = platform.timing();
  Snapshot s;
  s.xp.resize(t.sockets);
  s.dram.resize(t.sockets);
  s.cache.resize(t.sockets);
  for (unsigned so = 0; so < t.sockets; ++so) {
    s.xp[so].resize(t.channels_per_socket);
    s.dram[so].resize(t.channels_per_socket);
    for (unsigned ch = 0; ch < t.channels_per_socket; ++ch) {
      const hw::XpDimm& d = platform.xp_dimm(so, ch);
      XpDimmSnapshot& out = s.xp[so][ch];
      out.counters = d.counters();
      out.wpq_occupancy = d.wpq_occupancy();
      out.rpq_occupancy = d.rpq_occupancy();
      out.buffer_occupancy = d.buffer().occupancy();
      out.buffer_dirty_lines = d.buffer().dirty_lines();
      s.dram[so][ch] = platform.dram_dimm(so, ch).counters();
    }
    s.cache[so] = platform.cache_counters(so);
  }
  s.persist_events = platform.persist_events();
  return s;
}

hw::XpCounters Snapshot::xp_total() const {
  hw::XpCounters sum;
  for (const auto& socket : xp)
    for (const XpDimmSnapshot& d : socket) sum += d.counters;
  return sum;
}

hw::DramCounters Snapshot::dram_total() const {
  hw::DramCounters sum;
  for (const auto& socket : dram)
    for (const hw::DramCounters& d : socket) sum += d;
  return sum;
}

hw::CacheCounters Snapshot::cache_total() const {
  hw::CacheCounters sum;
  for (const hw::CacheCounters& c : cache) sum += c;
  return sum;
}

Snapshot Snapshot::operator-(const Snapshot& start) const {
  assert(xp.size() == start.xp.size());
  Snapshot d = *this;  // gauges keep interval-end values
  for (std::size_t so = 0; so < xp.size(); ++so) {
    assert(xp[so].size() == start.xp[so].size());
    for (std::size_t ch = 0; ch < xp[so].size(); ++ch) {
      d.xp[so][ch].counters =
          xp[so][ch].counters - start.xp[so][ch].counters;
      d.dram[so][ch] = dram[so][ch] - start.dram[so][ch];
    }
    d.cache[so] = cache[so] - start.cache[so];
  }
  d.persist_events = persist_events - start.persist_events;
  return d;
}

}  // namespace xp::telemetry
