#include "telemetry/sampler.h"

#include <algorithm>

#include "xpsim/platform.h"

namespace xp::telemetry {

Sampler::Sampler(const hw::Platform& platform, Options opts)
    : platform_(platform),
      interval_(std::max<sim::Time>(opts.interval, 1)),
      capacity_(std::max<std::size_t>(opts.capacity, 4)) {
  const hw::Timing& t = platform.timing();
  channels_ = t.channels_per_socket;
  dimms_ = t.sockets * t.channels_per_socket;
  samples_.reserve(capacity_);
}

void Sampler::sample(sim::Time now) {
  // Keep the timeline strictly monotone: a reused Platform restarts
  // thread clocks at 0 for each measurement epoch (reset_timing), so a
  // later run's early ticks may lie before an earlier run's samples.
  if (!samples_.empty() && now <= samples_.back().t) return;
  Sample s;
  s.t = now;
  s.dimms.resize(dimms_);
  const hw::Timing& t = platform_.timing();
  for (unsigned so = 0; so < t.sockets; ++so) {
    for (unsigned ch = 0; ch < channels_; ++ch) {
      const hw::XpDimm& d = platform_.xp_dimm(so, ch);
      DimmSample& out = s.dimms[so * channels_ + ch];
      const hw::XpCounters& c = d.counters();
      out.imc_read_bytes = c.imc_read_bytes;
      out.imc_write_bytes = c.imc_write_bytes;
      out.media_read_bytes = c.media_read_bytes;
      out.media_write_bytes = c.media_write_bytes;
      out.wpq_occupancy = static_cast<std::uint32_t>(d.wpq_occupancy());
      out.rpq_occupancy = static_cast<std::uint32_t>(d.rpq_occupancy());
      out.buffer_dirty_lines =
          static_cast<std::uint32_t>(d.buffer().dirty_lines());
    }
  }
  samples_.push_back(std::move(s));
  next_due_ = now + interval_;

  if (samples_.size() >= capacity_) {
    // Ring full: keep every 2nd sample and double the interval. The
    // retained timeline still spans the whole run.
    std::size_t w = 0;
    for (std::size_t r = 0; r < samples_.size(); r += 2)
      samples_[w++] = std::move(samples_[r]);
    samples_.resize(w);
    interval_ *= 2;
    ++decimations_;
    next_due_ = samples_.back().t + interval_;
  }
}

}  // namespace xp::telemetry
