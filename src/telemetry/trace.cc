#include "telemetry/trace.h"

#include <cstdio>
#include <fstream>

namespace xp::telemetry {

namespace {

// ps -> trace microseconds with fixed six decimals (exact: 1 ps = 1e-6 us).
void append_ts(std::string& out, sim::Time t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%06llu",
                static_cast<unsigned long long>(t / 1000000),
                static_cast<unsigned long long>(t % 1000000));
  out += buf;
}

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

bool TraceWriter::push(Event e) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return false;
  }
  events_.push_back(std::move(e));
  return true;
}

void TraceWriter::instant(const std::string& name, const char* category,
                          sim::Time t, unsigned pid, unsigned tid,
                          std::string args_json) {
  push(Event{'i', t, pid, tid, name, category, std::move(args_json)});
}

void TraceWriter::counter(const std::string& name, sim::Time t, unsigned pid,
                          unsigned tid, std::string series_json) {
  push(Event{'C', t, pid, tid, name, nullptr, std::move(series_json)});
}

void TraceWriter::complete(const std::string& name, const char* category,
                           sim::Time start, sim::Time dur, unsigned pid,
                           unsigned tid, std::string args_json) {
  push(Event{'X', start, pid, tid, name, category, std::move(args_json), dur});
}

void TraceWriter::name_process(unsigned pid, const std::string& name) {
  push(Event{'M', 0, pid, 0, "process_name", nullptr,
             "{\"name\":\"" + name + "\"}"});
}

void TraceWriter::name_thread(unsigned pid, unsigned tid,
                              const std::string& name) {
  push(Event{'M', 0, pid, tid, "thread_name", nullptr,
             "{\"name\":\"" + name + "\"}"});
}

std::string TraceWriter::to_json() const {
  std::string out;
  out.reserve(events_.size() * 96 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, e.name);
    out += '"';
    if (e.cat != nullptr) {
      out += ",\"cat\":\"";
      out += e.cat;
      out += '"';
    }
    out += ",\"ph\":\"";
    out += e.ph;
    out += '"';
    if (e.ph != 'M') {
      out += ",\"ts\":";
      append_ts(out, e.ts);
      if (e.ph == 'i') out += ",\"s\":\"t\"";  // thread-scoped instant
      if (e.ph == 'X') {
        out += ",\"dur\":";
        append_ts(out, e.dur);
      }
    }
    char ids[48];
    std::snprintf(ids, sizeof ids, ",\"pid\":%u,\"tid\":%u", e.pid, e.tid);
    out += ids;
    if (!e.args.empty()) {
      out += ",\"args\":";
      out += e.args;
    }
    out += '}';
  }
  if (dropped_ > 0) {
    if (!first) out += ',';
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"trace_truncated\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":0,\"args\":{\"dropped_events\":%llu}}",
                  static_cast<unsigned long long>(dropped_));
    out += buf;
  }
  out += "],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

bool TraceWriter::write_file(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  const std::string json = to_json();
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(f);
}

}  // namespace xp::telemetry
