// Counter registry: uniform snapshot/delta access to every hardware
// counter the simulated platform exposes.
//
// A Snapshot is a point-in-time copy of all per-DIMM XpCounters, per-DIMM
// DramCounters, per-socket CacheCounters, the platform persist-event
// count, and the instantaneous queue/buffer gauges (WPQ/RPQ occupancy,
// XPBuffer occupancy and dirty-line count). Snapshots subtract: `end -
// start` yields a Delta whose counters cover the interval and whose
// gauges are taken from `end` (gauges are levels, not flows — they do not
// subtract meaningfully).
//
// This is the one place that knows how to walk the Platform topology;
// everything above (sampler, conservation tests, summary JSON) works on
// Snapshots and Deltas only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "xpsim/counters.h"

namespace xp::hw {
class Platform;
}

namespace xp::telemetry {

// One XP DIMM: its hardware counters plus instantaneous gauges.
struct XpDimmSnapshot {
  hw::XpCounters counters;
  // Gauges (levels at snapshot time; carried over unchanged by operator-).
  std::size_t wpq_occupancy = 0;
  std::size_t rpq_occupancy = 0;
  std::size_t buffer_occupancy = 0;
  std::size_t buffer_dirty_lines = 0;
};

struct Snapshot {
  // Indexed [socket][channel]; dimensions match Timing::sockets x
  // Timing::channels_per_socket of the captured platform.
  std::vector<std::vector<XpDimmSnapshot>> xp;
  std::vector<std::vector<hw::DramCounters>> dram;
  std::vector<hw::CacheCounters> cache;  // per socket
  std::uint64_t persist_events = 0;

  static Snapshot capture(const hw::Platform& platform);

  unsigned sockets() const { return static_cast<unsigned>(xp.size()); }
  unsigned channels() const {
    return xp.empty() ? 0 : static_cast<unsigned>(xp.front().size());
  }

  // Sums across all DIMMs / sockets.
  hw::XpCounters xp_total() const;
  hw::DramCounters dram_total() const;
  hw::CacheCounters cache_total() const;

  // Interval delta: counters subtract, gauges keep *this* (interval-end)
  // values. Both snapshots must come from the same platform.
  Snapshot operator-(const Snapshot& start) const;
};

// A Delta is shape-identical to a Snapshot; the alias marks intent.
using Delta = Snapshot;

}  // namespace xp::telemetry
