// Periodic timeline sampler driven by *simulated* time.
//
// The owning Session forwards every data-path tick; once the configured
// interval has elapsed the sampler records one Sample — cumulative per-
// DIMM byte counters plus queue/buffer gauges — into a fixed-capacity
// ring. When the ring fills it decimates (keeps every 2nd sample) and
// doubles the interval, so an arbitrarily long run costs a bounded amount
// of memory while the timeline keeps covering the whole run at uniformly
// coarser resolution.
//
// Samples store cumulative counts; consumers difference consecutive
// samples to get interval EWR and bandwidth (see Session::summary_json).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/simtime.h"

namespace xp::hw {
class Platform;
}

namespace xp::telemetry {

class Sampler {
 public:
  struct Options {
    sim::Time interval = sim::us(10);
    std::size_t capacity = 1024;  // >= 4; decimation halves occupancy
  };

  // One DIMM at one instant (cumulative counters, instantaneous gauges).
  struct DimmSample {
    std::uint64_t imc_read_bytes = 0;
    std::uint64_t imc_write_bytes = 0;
    std::uint64_t media_read_bytes = 0;
    std::uint64_t media_write_bytes = 0;
    std::uint32_t wpq_occupancy = 0;
    std::uint32_t rpq_occupancy = 0;
    std::uint32_t buffer_dirty_lines = 0;
  };

  struct Sample {
    sim::Time t = 0;
    std::vector<DimmSample> dimms;  // flattened socket * channels + channel
  };

  Sampler(const hw::Platform& platform, Options opts);

  // Hot-path entry: returns immediately unless `now` crossed the next
  // due time (one compare on the common path).
  void tick(sim::Time now) {
    if (now < next_due_) return;
    sample(now);
  }

  // Force one sample (used at run boundaries so the last interval is
  // always closed).
  void sample(sim::Time now);

  const std::vector<Sample>& samples() const { return samples_; }
  sim::Time interval() const { return interval_; }
  unsigned decimations() const { return decimations_; }
  unsigned dimms() const { return dimms_; }
  unsigned channels_per_socket() const { return channels_; }

 private:
  const hw::Platform& platform_;
  sim::Time interval_;
  std::size_t capacity_;
  sim::Time next_due_ = 0;
  unsigned decimations_ = 0;
  unsigned dimms_ = 0;
  unsigned channels_ = 0;
  std::vector<Sample> samples_;
};

}  // namespace xp::telemetry
