#include "telemetry/session.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "xpsim/platform.h"

namespace xp::telemetry {

namespace {

const char* persist_kind_name(hw::PersistEventKind k) {
  switch (k) {
    case hw::PersistEventKind::kWpqEntry: return "wpq_entry";
    case hw::PersistEventKind::kNtStoreDrain: return "ntstore_drain";
    case hw::PersistEventKind::kWriteback: return "writeback";
    case hw::PersistEventKind::kCoherenceFlush: return "coherence_flush";
    case hw::PersistEventKind::kSfence: return "sfence";
  }
  return "unknown";
}

const char* evict_kind_name(hw::EvictKind k) {
  switch (k) {
    case hw::EvictKind::kClean: return "evict_clean";
    case hw::EvictKind::kFull: return "evict_full";
    case hw::EvictKind::kPartial: return "evict_partial";
    case hw::EvictKind::kRewrite: return "evict_rewrite";
  }
  return "evict_unknown";
}

const char* read_path_kind_name(hw::ReadPathEventKind k) {
  switch (k) {
    case hw::ReadPathEventKind::kCombinedFetch: return "combined_fetches";
    case hw::ReadPathEventKind::kStagedServe: return "staged_serves";
    case hw::ReadPathEventKind::kCacheHitLine: return "cache_hit_lines";
    case hw::ReadPathEventKind::kCacheFillLine: return "cache_fill_lines";
    case hw::ReadPathEventKind::kCacheInvalidate: return "cache_invalidations";
  }
  return "read_path_unknown";
}

const char* resilience_kind_name(hw::ResilienceEventKind k) {
  switch (k) {
    case hw::ResilienceEventKind::kDegraded: return "shards_degraded";
    case hw::ResilienceEventKind::kQuarantined: return "shards_quarantined";
    case hw::ResilienceEventKind::kRebuilding: return "shards_rebuilding";
    case hw::ResilienceEventKind::kRecovered: return "shards_recovered";
    case hw::ResilienceEventKind::kFailoverRead: return "failover_reads";
    case hw::ResilienceEventKind::kRetry: return "op_retries";
    case hw::ResilienceEventKind::kUnavailable: return "ops_unavailable";
    case hw::ResilienceEventKind::kResilverKey: return "keys_resilvered";
  }
  return "resilience_unknown";
}

const char* media_fault_kind_name(hw::MediaFaultKind k) {
  switch (k) {
    case hw::MediaFaultKind::kCorrected: return "ecc_corrected";
    case hw::MediaFaultKind::kPoisoned: return "poisoned";
    case hw::MediaFaultKind::kUncorrectable: return "uncorrectable";
    case hw::MediaFaultKind::kClearedByWrite: return "cleared_by_write";
    case hw::MediaFaultKind::kScrubFound: return "scrub_found";
  }
  return "media_fault_unknown";
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

// Deterministic double formatting; non-finite values become null (JSON
// has no Infinity/NaN).
void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  out += buf;
}

void append_kv(std::string& out, const char* key, std::uint64_t v,
               bool* first) {
  if (!*first) out += ',';
  *first = false;
  out += '"';
  out += key;
  out += "\":";
  append_u64(out, v);
}

}  // namespace

std::string trace_path_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      return argv[i + 1];
    if (std::strncmp(argv[i], "--trace=", 8) == 0) return argv[i] + 8;
  }
  if (const char* env = std::getenv("XP_TRACE"); env != nullptr && *env)
    return env;
  return {};
}

std::string trace_point_path(const std::string& base, std::size_t index) {
  if (base.empty()) return {};
  char suffix[32];
  std::snprintf(suffix, sizeof suffix, ".point%04llu",
                static_cast<unsigned long long>(index));
  const std::size_t dot = base.rfind('.');
  const std::size_t slash = base.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return base + suffix;
  }
  return base.substr(0, dot) + suffix + base.substr(dot);
}

Session::Session(hw::Platform& platform, Options opts)
    : platform_(platform),
      opts_(std::move(opts)),
      sampler_(platform,
               {.interval = opts_.sample_interval,
                .capacity = opts_.ring_capacity}) {
  if (!opts_.trace_path.empty()) {
    trace_ = std::make_unique<TraceWriter>(opts_.max_trace_events);
    const hw::Timing& t = platform_.timing();
    for (unsigned s = 0; s < t.sockets; ++s) {
      char name[32];
      std::snprintf(name, sizeof name, "socket%u", s);
      trace_->name_process(s, name);
      for (unsigned ch = 0; ch < t.channels_per_socket; ++ch) {
        char tn[32];
        std::snprintf(tn, sizeof tn, "channel%u", ch);
        trace_->name_thread(s, ch, tn);
      }
    }
  }
  platform_.attach_telemetry(this);
}

Session::~Session() { finish(); }

void Session::persist_event(hw::PersistEventKind kind, sim::Time t,
                            std::uint64_t seq) {
  ++persist_counts_[static_cast<unsigned>(kind)];
  last_event_time_ = std::max(last_event_time_, t);
  if (trace_) {
    std::string args = "{\"seq\":";
    append_u64(args, seq);
    args += '}';
    trace_->instant(persist_kind_name(kind), "persist", t, 0, 0,
                    std::move(args));
  }
}

void Session::buffer_eviction(hw::EvictKind kind, sim::Time t, unsigned socket,
                              unsigned channel) {
  ++evict_counts_[static_cast<unsigned>(kind)];
  last_event_time_ = std::max(last_event_time_, t);
  if (trace_)
    trace_->instant(evict_kind_name(kind), "xpbuffer", t, socket, channel);
}

void Session::ait_miss(sim::Time t, unsigned socket, unsigned channel) {
  ++ait_misses_;
  last_event_time_ = std::max(last_event_time_, t);
  if (trace_) trace_->instant("ait_miss", "ait", t, socket, channel);
}

void Session::crash_fired(sim::Time t, std::uint64_t seq) {
  ++crash_points_;
  last_event_time_ = std::max(last_event_time_, t);
  if (trace_) {
    std::string args = "{\"persist_event\":";
    append_u64(args, seq);
    args += '}';
    trace_->instant("crash_point", "crashmc", t, 0, 0, std::move(args));
  }
}

void Session::media_fault(hw::MediaFaultKind kind, sim::Time t,
                          unsigned socket, unsigned channel,
                          std::uint64_t line_off) {
  ++media_fault_counts_[static_cast<unsigned>(kind)];
  last_event_time_ = std::max(last_event_time_, t);
  if (kind == hw::MediaFaultKind::kScrubFound) {
    // Keep the ARS bad-line list sorted and unique; repeated scrubs of a
    // still-poisoned namespace re-report the same lines.
    const auto it =
        std::lower_bound(ars_bad_lines_.begin(), ars_bad_lines_.end(),
                         line_off);
    if (it == ars_bad_lines_.end() || *it != line_off)
      ars_bad_lines_.insert(it, line_off);
  }
  if (trace_) {
    std::string args = "{\"line_off\":";
    append_u64(args, line_off);
    args += '}';
    trace_->instant(media_fault_kind_name(kind), "media_fault", t, socket,
                    channel, std::move(args));
  }
}

void Session::read_path(hw::ReadPathEventKind kind, sim::Time t,
                        std::uint64_t bytes) {
  ++read_path_counts_[static_cast<unsigned>(kind)];
  read_path_bytes_[static_cast<unsigned>(kind)] += bytes;
  last_event_time_ = std::max(last_event_time_, t);
  if (trace_) {
    std::string args = "{\"bytes\":";
    append_u64(args, bytes);
    args += '}';
    trace_->instant(read_path_kind_name(kind), "read_path", t, 0, 0,
                    std::move(args));
  }
}

void Session::resilience(hw::ResilienceEventKind kind, sim::Time t,
                         unsigned shard) {
  ++resilience_counts_[static_cast<unsigned>(kind)];
  last_event_time_ = std::max(last_event_time_, t);
  if (trace_) {
    // Op-level events carry the no-shard sentinel: emit no shard field
    // rather than a plausible-looking out-of-range index.
    std::string args = "{";
    if (shard != hw::kResilienceNoShard) {
      args += "\"shard\":";
      append_u64(args, shard);
    }
    args += '}';
    trace_->instant(resilience_kind_name(kind), "resilience", t, 0, 0,
                    std::move(args));
  }
}

void Session::sched_point(unsigned kind, unsigned /*thread*/) {
  // Untimed (schedule exploration does not advance simulated clocks), so
  // no last_event_time_ update and no trace event — the counters feed the
  // schedmc summary section only.
  if (kind < sched_point_counts_.size()) ++sched_point_counts_[kind];
}

void Session::run_complete(const char* name, sim::Time start, sim::Time end) {
  last_event_time_ = std::max(last_event_time_, end);
  sampler_.sample(end);  // close the final interval at the run boundary
  if (trace_)
    trace_->complete(name != nullptr ? name : "run", "run", start,
                     end > start ? end - start : 0, 0, 0);
}

bool Session::finish() {
  if (finished_) return true;
  finished_ = true;
  if (platform_.telemetry() == this) platform_.attach_telemetry(nullptr);
  // Make sure the timeline reaches the last observed event.
  const auto& samples = sampler_.samples();
  if (samples.empty() || samples.back().t < last_event_time_)
    sampler_.sample(last_event_time_);

  bool ok = true;
  if (trace_) {
    // Queue-depth and bandwidth counter tracks, derived from the sampled
    // timeline so the trace stays bounded.
    const auto& ss = sampler_.samples();
    const unsigned channels = sampler_.channels_per_socket();
    for (std::size_t i = 0; i < ss.size(); ++i) {
      for (unsigned d = 0; d < sampler_.dimms(); ++d) {
        const Sampler::DimmSample& ds = ss[i].dimms[d];
        std::string series = "{\"wpq\":";
        append_u64(series, ds.wpq_occupancy);
        series += ",\"rpq\":";
        append_u64(series, ds.rpq_occupancy);
        series += ",\"dirty_lines\":";
        append_u64(series, ds.buffer_dirty_lines);
        series += '}';
        trace_->counter("queues", ss[i].t, d / channels, d % channels,
                        std::move(series));
      }
      if (i > 0) {
        std::uint64_t dw = 0, dr = 0;
        for (unsigned d = 0; d < sampler_.dimms(); ++d) {
          dw += ss[i].dimms[d].imc_write_bytes -
                ss[i - 1].dimms[d].imc_write_bytes;
          dr += ss[i].dimms[d].imc_read_bytes -
                ss[i - 1].dimms[d].imc_read_bytes;
        }
        const sim::Time dt = ss[i].t - ss[i - 1].t;
        std::string series = "{\"write_gbps\":";
        append_double(series, sim::gbps(dw, dt));
        series += ",\"read_gbps\":";
        append_double(series, sim::gbps(dr, dt));
        series += '}';
        trace_->counter("imc_bandwidth", ss[i].t, 0, 0, std::move(series));
      }
    }
    ok = trace_->write_file(opts_.trace_path);
  }
  return ok;
}

std::string Session::summary_json() const {
  const Snapshot snap = Snapshot::capture(platform_);
  const hw::XpCounters total = snap.xp_total();
  const unsigned channels = sampler_.channels_per_socket();

  std::string out;
  out.reserve(4096);
  out += "{\"counters\":{";
  {
    bool first = true;
    append_kv(out, "imc_read_bytes", total.imc_read_bytes, &first);
    append_kv(out, "imc_write_bytes", total.imc_write_bytes, &first);
    append_kv(out, "media_read_bytes", total.media_read_bytes, &first);
    append_kv(out, "media_write_bytes", total.media_write_bytes, &first);
    append_kv(out, "buffer_hit_reads", total.buffer_hit_reads, &first);
    append_kv(out, "buffer_miss_reads", total.buffer_miss_reads, &first);
    append_kv(out, "evictions_clean", total.evictions_clean, &first);
    append_kv(out, "evictions_full", total.evictions_full, &first);
    append_kv(out, "evictions_partial", total.evictions_partial, &first);
    append_kv(out, "ait_misses", total.ait_misses, &first);
    append_kv(out, "wear_migrations", total.wear_migrations, &first);
  }
  out += "},\"ewr\":";
  append_double(out, total.ewr());
  out += ",\"err\":";
  append_double(out, total.err());

  out += ",\"persist_events\":{";
  {
    bool first = true;
    std::uint64_t sum = 0;
    for (unsigned k = 0; k < hw::kPersistEventKinds; ++k) {
      append_kv(out, persist_kind_name(static_cast<hw::PersistEventKind>(k)),
                persist_counts_[k], &first);
      sum += persist_counts_[k];
    }
    append_kv(out, "total", sum, &first);
  }
  out += "},\"buffer_evictions\":{";
  {
    bool first = true;
    append_kv(out, "clean",
              evict_counts_[static_cast<unsigned>(hw::EvictKind::kClean)],
              &first);
    append_kv(out, "full",
              evict_counts_[static_cast<unsigned>(hw::EvictKind::kFull)],
              &first);
    append_kv(out, "partial",
              evict_counts_[static_cast<unsigned>(hw::EvictKind::kPartial)],
              &first);
    append_kv(out, "rewrite",
              evict_counts_[static_cast<unsigned>(hw::EvictKind::kRewrite)],
              &first);
  }
  out += "},\"ait_misses\":";
  append_u64(out, ait_misses_);
  out += ",\"crash_points\":";
  append_u64(out, crash_points_);

  // Media error-model section — present only when the fault-injection
  // subsystem produced events, so fault-free summaries (and the checked-in
  // BENCH_sweep.json formats) are unchanged byte for byte.
  {
    std::uint64_t any = 0;
    for (const std::uint64_t c : media_fault_counts_) any += c;
    if (any != 0 || !ars_bad_lines_.empty()) {
      out += ",\"media_faults\":{";
      bool first = true;
      for (unsigned k = 0; k < hw::kMediaFaultKinds; ++k) {
        append_kv(out,
                  media_fault_kind_name(static_cast<hw::MediaFaultKind>(k)),
                  media_fault_counts_[k], &first);
      }
      out += ",\"ars_bad_lines\":[";
      for (std::size_t i = 0; i < ars_bad_lines_.size(); ++i) {
        if (i > 0) out += ',';
        append_u64(out, ars_bad_lines_[i]);
      }
      out += "]}";
    }
  }

  // Serving-layer resilience section — present only when the sharded
  // frontend took a health transition or a request-level resilience
  // outcome, so fault-free summaries are unchanged byte for byte.
  {
    std::uint64_t any = 0;
    for (const std::uint64_t c : resilience_counts_) any += c;
    if (any != 0) {
      out += ",\"resilience\":{";
      bool first = true;
      for (unsigned k = 0; k < hw::kResilienceEventKinds; ++k) {
        append_kv(out,
                  resilience_kind_name(static_cast<hw::ResilienceEventKind>(k)),
                  resilience_counts_[k], &first);
      }
      out += '}';
    }
  }

  // Software read-path section — present only when a store ran with read
  // combining or caching enabled, so default-configuration summaries are
  // unchanged byte for byte.
  {
    std::uint64_t any = 0;
    for (const std::uint64_t c : read_path_counts_) any += c;
    if (any != 0) {
      out += ",\"read_path\":{";
      bool first = true;
      for (unsigned k = 0; k < hw::kReadPathEventKinds; ++k) {
        append_kv(out,
                  read_path_kind_name(static_cast<hw::ReadPathEventKind>(k)),
                  read_path_counts_[k], &first);
      }
      append_kv(out, "combined_fetch_bytes",
                read_path_bytes_[static_cast<unsigned>(
                    hw::ReadPathEventKind::kCombinedFetch)],
                &first);
      append_kv(out, "staged_serve_bytes",
                read_path_bytes_[static_cast<unsigned>(
                    hw::ReadPathEventKind::kStagedServe)],
                &first);
      out += '}';
    }
  }

  // Schedule-exploration section — present only when a schedmc interleaver
  // drove the run, so ordinary summaries are unchanged byte for byte.
  {
    std::uint64_t any = 0;
    for (const std::uint64_t c : sched_point_counts_) any += c;
    if (any != 0) {
      out += ",\"schedmc\":{";
      bool first = true;
      for (unsigned k = 0; k < sim::kNumSchedPoints; ++k) {
        append_kv(out, sim::sched_point_name(static_cast<sim::SchedPoint>(k)),
                  sched_point_counts_[k], &first);
      }
      append_kv(out, "total", any, &first);
      out += '}';
    }
  }

  out += ",\"dimm_labels\":[";
  for (unsigned d = 0; d < sampler_.dimms(); ++d) {
    if (d > 0) out += ',';
    char buf[32];
    std::snprintf(buf, sizeof buf, "\"s%uc%u\"", d / channels, d % channels);
    out += buf;
  }
  out += "],\"sample_interval_us\":";
  append_double(out, sim::to_us(sampler_.interval()));
  out += ",\"decimations\":";
  append_u64(out, sampler_.decimations());

  // Interval timeline: entry k covers (sample[k-1], sample[k]]. Per-DIMM
  // interval EWR (null where no media writes happened), aggregate iMC
  // bandwidth, and per-DIMM gauges at interval end.
  out += ",\"timeline\":[";
  const auto& ss = sampler_.samples();
  for (std::size_t i = 1; i < ss.size(); ++i) {
    if (i > 1) out += ',';
    const sim::Time dt = ss[i].t - ss[i - 1].t;
    out += "{\"t_us\":";
    append_double(out, sim::to_us(ss[i].t));
    out += ",\"ewr\":[";
    std::uint64_t dw_total = 0, dr_total = 0;
    for (unsigned d = 0; d < sampler_.dimms(); ++d) {
      if (d > 0) out += ',';
      const std::uint64_t imc_w =
          ss[i].dimms[d].imc_write_bytes - ss[i - 1].dimms[d].imc_write_bytes;
      const std::uint64_t media_w = ss[i].dimms[d].media_write_bytes -
                                    ss[i - 1].dimms[d].media_write_bytes;
      dw_total += imc_w;
      dr_total +=
          ss[i].dimms[d].imc_read_bytes - ss[i - 1].dimms[d].imc_read_bytes;
      if (media_w == 0) {
        out += "null";
      } else {
        append_double(out, static_cast<double>(imc_w) /
                               static_cast<double>(media_w));
      }
    }
    // Per-DIMM interval ERR = media read bytes / iMC read bytes (null
    // where the DIMM served no interface reads this interval).
    out += "],\"err\":[";
    for (unsigned d = 0; d < sampler_.dimms(); ++d) {
      if (d > 0) out += ',';
      const std::uint64_t imc_r =
          ss[i].dimms[d].imc_read_bytes - ss[i - 1].dimms[d].imc_read_bytes;
      const std::uint64_t media_r = ss[i].dimms[d].media_read_bytes -
                                    ss[i - 1].dimms[d].media_read_bytes;
      if (imc_r == 0) {
        out += "null";
      } else {
        append_double(out, static_cast<double>(media_r) /
                               static_cast<double>(imc_r));
      }
    }
    out += "],\"write_gbps\":";
    append_double(out, sim::gbps(dw_total, dt));
    out += ",\"read_gbps\":";
    append_double(out, sim::gbps(dr_total, dt));
    out += ",\"wpq\":[";
    for (unsigned d = 0; d < sampler_.dimms(); ++d) {
      if (d > 0) out += ',';
      append_u64(out, ss[i].dimms[d].wpq_occupancy);
    }
    out += "],\"buffer_dirty\":[";
    for (unsigned d = 0; d < sampler_.dimms(); ++d) {
      if (d > 0) out += ',';
      append_u64(out, ss[i].dimms[d].buffer_dirty_lines);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace xp::telemetry
