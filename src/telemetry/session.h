// Telemetry session: the one object benches and tests instantiate.
//
// A Session implements hw::TelemetrySink and attaches itself to a
// Platform on construction. It
//  * samples EWR / bandwidth / queue-depth timelines on simulated time
//    (Sampler, fixed-cost ring with decimation);
//  * histograms persist events, XPBuffer evictions, and AIT misses by
//    kind;
//  * optionally records a Chrome-trace event stream (durability
//    boundaries, evictions, AIT misses, crash points) when a trace path
//    is configured via --trace / XP_TRACE.
//
// When NO session is attached the platform's telemetry pointer is null
// and the hot-path cost is a single predictable branch per data-path
// call — bench_timing's hot-path canaries guard this.
//
// finish() detaches from the platform, closes the last sample interval,
// and writes the trace file; the destructor calls it if the caller did
// not. Timing neutrality is a hard contract: a Session never changes
// simulated timestamps, so traced runs are byte-identical to untraced
// ones.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.h"
#include "sim/simtime.h"
#include "telemetry/registry.h"
#include "telemetry/sampler.h"
#include "telemetry/trace.h"
#include "xpsim/telemetry_sink.h"

namespace xp::hw {
class Platform;
}

namespace xp::telemetry {

struct Options {
  std::string trace_path;  // empty = timelines/histograms only, no file
  sim::Time sample_interval = sim::us(10);
  std::size_t ring_capacity = 1024;
  std::size_t max_trace_events = std::size_t{1} << 20;
};

// Resolve the trace path for a bench/test binary: an explicit
// `--trace <file>` argument wins, else the XP_TRACE environment
// variable, else "" (disabled).
std::string trace_path_from_args(int argc, char** argv);

// Derive a per-sweep-point trace path from a base path by inserting the
// point index before the extension: ("out/run.json", 7) ->
// "out/run.point0007.json". Point indices are grid order, so the file
// set is identical at any --jobs count. Returns "" for an empty base.
std::string trace_point_path(const std::string& base, std::size_t index);

class Session final : public hw::TelemetrySink {
 public:
  Session(hw::Platform& platform, Options opts = {});
  ~Session() override;

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Detach from the platform, close the final sample interval, and write
  // the trace file (if configured). Idempotent. Returns false if the
  // trace file could not be written.
  bool finish();

  // Machine-readable run summary: counter totals, per-kind event
  // histograms, and the per-DIMM EWR / bandwidth / queue-depth timeline.
  // Non-finite ratios (e.g. EWR with zero media writes) serialize as
  // null. Valid JSON, deterministic formatting.
  std::string summary_json() const;

  const Sampler& sampler() const { return sampler_; }
  bool tracing() const { return trace_ != nullptr; }
  const TraceWriter* trace() const { return trace_.get(); }

  std::uint64_t persist_count(hw::PersistEventKind k) const {
    return persist_counts_[static_cast<unsigned>(k)];
  }
  std::uint64_t eviction_count(hw::EvictKind k) const {
    return evict_counts_[static_cast<unsigned>(k)];
  }
  std::uint64_t ait_miss_count() const { return ait_misses_; }
  std::uint64_t media_fault_count(hw::MediaFaultKind k) const {
    return media_fault_counts_[static_cast<unsigned>(k)];
  }
  std::uint64_t read_path_count(hw::ReadPathEventKind k) const {
    return read_path_counts_[static_cast<unsigned>(k)];
  }
  std::uint64_t read_path_bytes(hw::ReadPathEventKind k) const {
    return read_path_bytes_[static_cast<unsigned>(k)];
  }
  std::uint64_t resilience_count(hw::ResilienceEventKind k) const {
    return resilience_counts_[static_cast<unsigned>(k)];
  }
  std::uint64_t sched_point_count(sim::SchedPoint p) const {
    return sched_point_counts_[static_cast<unsigned>(p)];
  }
  // Distinct XPLine offsets ARS reported bad (sorted, deduplicated).
  const std::vector<std::uint64_t>& ars_bad_lines() const {
    return ars_bad_lines_;
  }

  // ---- hw::TelemetrySink --------------------------------------------------
  void persist_event(hw::PersistEventKind kind, sim::Time t,
                     std::uint64_t seq) override;
  void buffer_eviction(hw::EvictKind kind, sim::Time t, unsigned socket,
                       unsigned channel) override;
  void ait_miss(sim::Time t, unsigned socket, unsigned channel) override;
  void crash_fired(sim::Time t, std::uint64_t seq) override;
  void media_fault(hw::MediaFaultKind kind, sim::Time t, unsigned socket,
                   unsigned channel, std::uint64_t line_off) override;
  void read_path(hw::ReadPathEventKind kind, sim::Time t,
                 std::uint64_t bytes) override;
  void resilience(hw::ResilienceEventKind kind, sim::Time t,
                  unsigned shard) override;
  void sched_point(unsigned kind, unsigned thread) override;
  void tick(sim::Time now) override { sampler_.tick(now); }
  void run_complete(const char* name, sim::Time start, sim::Time end) override;

 private:
  hw::Platform& platform_;
  Options opts_;
  Sampler sampler_;
  std::unique_ptr<TraceWriter> trace_;  // null when not tracing
  std::array<std::uint64_t, hw::kPersistEventKinds> persist_counts_{};
  std::array<std::uint64_t, 4> evict_counts_{};
  std::uint64_t ait_misses_ = 0;
  std::uint64_t crash_points_ = 0;
  std::array<std::uint64_t, hw::kMediaFaultKinds> media_fault_counts_{};
  std::array<std::uint64_t, hw::kReadPathEventKinds> read_path_counts_{};
  std::array<std::uint64_t, hw::kReadPathEventKinds> read_path_bytes_{};
  std::array<std::uint64_t, hw::kResilienceEventKinds> resilience_counts_{};
  std::array<std::uint64_t, sim::kNumSchedPoints> sched_point_counts_{};
  std::vector<std::uint64_t> ars_bad_lines_;  // sorted unique line offsets
  sim::Time last_event_time_ = 0;
  bool finished_ = false;
};

}  // namespace xp::telemetry
