#include "schedmc/targets.h"

#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <string>

#include "lsmkv/db.h"
#include "novafs/novafs.h"
#include "pmemkv/cmap.h"
#include "pmemkv/stree.h"
#include "pmemlib/pmem_ops.h"
#include "pmemlib/pool.h"
#include "sim/rng.h"
#include "workload/shard.h"
#include "xpsim/platform.h"

namespace xp::schedmc {

using sim::SchedLock;
using sim::SchedLockGuard;

namespace {

sim::ThreadCtx::Options worker_opts(const TargetOptions& o, unsigned t) {
  return {.id = t, .socket = 0, .mlp = 8, .seed = o.workload_seed * 97 + t + 1};
}

// Setup/recovery/state-reading contexts run outside the interleaver (no
// hook), with ids above every worker so histories stay unambiguous.
sim::ThreadCtx service_ctx(unsigned id = 32) {
  return sim::ThreadCtx({.id = id, .socket = 0, .mlp = 8, .seed = id + 1});
}

// Per-(thread, run) RNG stream: pure function of the options, so a
// replayed schedule re-executes the identical op sequence.
sim::Rng body_rng(const TargetOptions& o, unsigned t) {
  return sim::Rng(o.workload_seed * 1315423911ULL + t * 2654435761ULL + 1);
}

bool elide(const TargetOptions& o) {
  return o.fault == TestFault::kElideRmwLock;
}

// ------------------------------------------------------------- pmemlib --

// Four 8-byte counters in the root object, each guarded by its own
// SchedLock; threads pick a slot and increment it through an undo-log
// transaction (lane = thread id). No allocator churn: the pool free list
// is shared state the Tx layer does not lock, and this workload models
// an implementation that partitions data, not the allocator.
class PmemlibTarget final : public Target {
 public:
  explicit PmemlibTarget(const TargetOptions& o) : opts_(o) {}

  const char* name() const override { return "pmemlib"; }

  void reset() override {
    platform_ = std::make_unique<hw::Platform>();
    ns_ = &platform_->optane(8 << 20);
    pool_ = std::make_unique<pmem::Pool>(*ns_);
    sim::ThreadCtx ctx = service_ctx();
    pool_->create(ctx, kSlots * 8);
    root_ = pool_->root(ctx);
    for (unsigned s = 0; s < kSlots; ++s)
      pmem::store_persist_pod(ctx, *ns_, root_ + s * 8, std::uint64_t{0});
    platform_->reset_timing();
    history_.clear();
  }

  hw::Platform& platform() override { return *platform_; }
  History& history() override { return history_; }

  std::vector<ThreadSpec> specs() override {
    std::vector<ThreadSpec> v;
    for (unsigned t = 0; t < opts_.threads; ++t)
      v.push_back({worker_opts(opts_, t),
                   [this, t](sim::ThreadCtx& ctx) { body(ctx, t); }});
    return v;
  }

  std::map<std::string, std::string> live_state() override {
    sim::ThreadCtx ctx = service_ctx();
    return read_slots(ctx);
  }

  bool recover(std::map<std::string, std::string>* out,
               std::string* error) override {
    sim::ThreadCtx ctx = service_ctx(33);
    pmem::Pool pool(*ns_);
    if (!pool.open(ctx)) {
      *error = "pool.open() found no valid pool";
      return false;
    }
    if (Status st = pool.check(ctx); !st.ok()) {
      *error = st.to_string();
      return false;
    }
    *out = read_slots(ctx);
    return true;
  }

  std::map<std::string, std::string> initial_state() override {
    std::map<std::string, std::string> s;
    for (unsigned i = 0; i < kSlots; ++i) s[key(i)] = "0";
    return s;
  }

 private:
  static constexpr unsigned kSlots = 4;

  static std::string key(unsigned slot) { return "s" + std::to_string(slot); }

  std::map<std::string, std::string> read_slots(sim::ThreadCtx& ctx) {
    std::map<std::string, std::string> s;
    for (unsigned i = 0; i < kSlots; ++i)
      s[key(i)] = std::to_string(
          ns_->load_pod<std::uint64_t>(ctx, root_ + i * 8));
    return s;
  }

  void body(sim::ThreadCtx& ctx, unsigned t) {
    sim::Rng rng = body_rng(opts_, t);
    for (unsigned op = 0; op < opts_.ops_per_thread; ++op) {
      const unsigned slot = static_cast<unsigned>(rng.uniform(kSlots));
      if (rng.uniform(4) == 0)
        read_slot(ctx, t, slot);
      else
        bump_slot(ctx, t, slot);
    }
  }

  void read_slot(sim::ThreadCtx& ctx, unsigned t, unsigned slot) {
    ctx.sched_point(sim::SchedPoint::kOpBegin);
    const bool locked = !elide(opts_);
    if (locked) locks_[slot].lock(ctx);
    const std::size_t id = history_.invoke(t, OpKind::kGet, key(slot));
    const auto v = ns_->load_pod<std::uint64_t>(ctx, root_ + slot * 8);
    history_.respond(id, true, std::to_string(v));
    history_.mark_must_include(id);
    if (locked) locks_[slot].unlock(ctx);
  }

  void bump_slot(sim::ThreadCtx& ctx, unsigned t, unsigned slot) {
    ctx.sched_point(sim::SchedPoint::kOpBegin);
    const std::uint64_t off = root_ + slot * 8;
    const bool locked = !elide(opts_);
    if (locked) locks_[slot].lock(ctx);
    const auto old = ns_->load_pod<std::uint64_t>(ctx, off);
    const std::uint64_t nv = old + 1;
    const std::size_t id = history_.invoke(t, OpKind::kRmw, key(slot));
    history_.stage_write(id, true, std::to_string(old), std::to_string(nv));
    {
      pmem::Tx tx(*pool_, ctx);
      tx.store(off, std::span<const std::uint8_t>(
                        reinterpret_cast<const std::uint8_t*>(&nv), 8));
      tx.commit();
    }
    history_.respond(id, true, std::to_string(old));
    history_.mark_must_include(id);
    if (locked) locks_[slot].unlock(ctx);
  }

  TargetOptions opts_;
  std::unique_ptr<hw::Platform> platform_;
  hw::PmemNamespace* ns_ = nullptr;
  std::unique_ptr<pmem::Pool> pool_;
  std::uint64_t root_ = 0;
  SchedLock locks_[kSlots];
  History history_;
};

// --------------------------------------------------------------- lsmkv --

// Group-committed LSM store under one db-wide lock (memtable, WAL, and
// manifest are shared). Durability tracking mirrors the leader/follower
// protocol: every mutation joins the current group-commit window; when
// pending_records() drains to zero the whole window became durable and
// its ops are promoted to must-include.
class LsmkvTarget final : public Target {
 public:
  explicit LsmkvTarget(const TargetOptions& o) : opts_(o) {}

  const char* name() const override { return "lsmkv"; }

  void reset() override {
    platform_ = std::make_unique<hw::Platform>();
    ns_ = &platform_->optane(8 << 20);
    db_ = std::make_unique<kv::Db>(*ns_, db_options());
    sim::ThreadCtx ctx = service_ctx();
    db_->create(ctx);
    platform_->reset_timing();
    history_.clear();
    window_ops_.clear();
    window_id_ = 1;
  }

  hw::Platform& platform() override { return *platform_; }
  History& history() override { return history_; }

  std::vector<ThreadSpec> specs() override {
    std::vector<ThreadSpec> v;
    for (unsigned t = 0; t < opts_.threads; ++t)
      v.push_back({worker_opts(opts_, t),
                   [this, t](sim::ThreadCtx& ctx) { body(ctx, t); }});
    return v;
  }

  std::map<std::string, std::string> live_state() override {
    sim::ThreadCtx ctx = service_ctx();
    return read_all(*db_, ctx);
  }

  bool recover(std::map<std::string, std::string>* out,
               std::string* error) override {
    sim::ThreadCtx ctx = service_ctx(33);
    kv::Db db(*ns_, db_options());
    if (!db.open(ctx)) {
      *error = "db.open() failed";
      return false;
    }
    if (Status st = db.check(ctx); !st.ok()) {
      *error = st.to_string();
      return false;
    }
    *out = read_all(db, ctx);
    return true;
  }

 private:
  static constexpr unsigned kKeys = 5;

  static std::string key(unsigned i) { return "k" + std::to_string(i); }

  kv::DbOptions db_options() const {
    kv::DbOptions o;
    o.wal = kv::WalMode::kFlex;
    o.memtable = kv::MemtableMode::kVolatile;
    o.wal_capacity = 1 << 20;
    o.memtable_bytes = 2 << 10;
    o.l0_compaction_trigger = 2;
    o.sync_every_op = true;
    o.wal_checksum = true;
    o.wal_group_commit = true;
    o.wal_group_size = 3;
    return o;
  }

  std::map<std::string, std::string> read_all(kv::Db& db,
                                              sim::ThreadCtx& ctx) {
    std::map<std::string, std::string> s;
    for (unsigned i = 0; i < kKeys; ++i) {
      std::string v;
      if (db.get(ctx, key(i), &v)) s[key(i)] = v;
    }
    std::string v;
    if (db.get(ctx, "ctr", &v)) s["ctr"] = v;
    return s;
  }

  // Called with db_lock_ held, right after the mutation `id` was issued.
  void ack_write(std::size_t id) {
    history_.respond(id);
    history_.set_group(id, window_id_);
    window_ops_.push_back(id);
    if (db_->pending_records() == 0) {
      // The group committed (threshold reached or a flush drained it):
      // every op in the window is now acknowledged durable.
      for (const std::size_t w : window_ops_) history_.mark_must_include(w);
      window_ops_.clear();
      ++window_id_;
    }
  }

  // Called with db_lock_ held, right after the read `id` was answered.
  // A get may have observed memtable data whose WAL records still sit in
  // the open group-commit window; if the machine dies before that group
  // syncs, the observed write is gone, and an observation that *must*
  // linearize would then be unexplainable (the dirty-read durability
  // anomaly inherent to group commit). Reads therefore inherit the open
  // window's commit dependency: immediately durable only when nothing is
  // pending, otherwise promoted together with the window they read under.
  void ack_read(std::size_t id) {
    if (db_->pending_records() == 0) {
      history_.mark_must_include(id);
    } else {
      history_.set_group(id, window_id_);
      window_ops_.push_back(id);
    }
  }

  void body(sim::ThreadCtx& ctx, unsigned t) {
    sim::Rng rng = body_rng(opts_, t);
    for (unsigned op = 0; op < opts_.ops_per_thread; ++op) {
      const unsigned r = static_cast<unsigned>(rng.uniform(8));
      const std::string k = key(static_cast<unsigned>(rng.uniform(kKeys)));
      ctx.sched_point(sim::SchedPoint::kOpBegin);
      if (r < 3) {
        const std::string val =
            "v" + std::to_string(t) + "_" + std::to_string(op);
        SchedLockGuard g(db_lock_, ctx);
        const std::size_t id = history_.invoke(t, OpKind::kPut, k, val);
        history_.stage_write(id);
        db_->put(ctx, k, val);
        ack_write(id);
      } else if (r < 5) {
        SchedLockGuard g(db_lock_, ctx);
        const std::size_t id = history_.invoke(t, OpKind::kGet, k);
        std::string v;
        const bool found = db_->get(ctx, k, &v);
        history_.respond(id, found, v);
        ack_read(id);
      } else if (r < 6) {
        SchedLockGuard g(db_lock_, ctx);
        const std::size_t id = history_.invoke(t, OpKind::kDel, k);
        history_.stage_write(id);
        db_->del(ctx, k);
        ack_write(id);
      } else {
        bump_counter(ctx, t);
      }
    }
  }

  // Counter increment: get + put composed into one atomic RMW under the
  // db lock — unless the fault elides it into two separate critical
  // sections, re-creating the classic lost-update race.
  void bump_counter(sim::ThreadCtx& ctx, unsigned t) {
    const std::size_t id = history_.invoke(t, OpKind::kRmw, "ctr");
    if (elide(opts_)) {
      bool found;
      std::string v;
      {
        SchedLockGuard g(db_lock_, ctx);
        found = db_->get(ctx, "ctr", &v);
      }
      // Lock dropped between read and write: the seeded regression.
      ctx.sched_point(sim::SchedPoint::kHandoff);
      const std::string nv = next_value(found, v);
      history_.stage_write(id, found, found ? v : std::string(), nv);
      SchedLockGuard g(db_lock_, ctx);
      db_->put(ctx, "ctr", nv);
      ack_write(id);
    } else {
      SchedLockGuard g(db_lock_, ctx);
      std::string v;
      const bool found = db_->get(ctx, "ctr", &v);
      const std::string nv = next_value(found, v);
      history_.stage_write(id, found, found ? v : std::string(), nv);
      db_->put(ctx, "ctr", nv);
      ack_write(id);
    }
  }

  static std::string next_value(bool found, const std::string& v) {
    return std::to_string((found ? std::stoll(v) : 0) + 1);
  }

  TargetOptions opts_;
  std::unique_ptr<hw::Platform> platform_;
  hw::PmemNamespace* ns_ = nullptr;
  std::unique_ptr<kv::Db> db_;
  SchedLock db_lock_;
  std::vector<std::size_t> window_ops_;
  std::uint64_t window_id_ = 1;
  History history_;
};

// -------------------------------------------------------------- novafs --

// Files as map entries: a file's content (fixed-length writes at offset
// 0) is its value, create is a put of "". One fs-wide lock — the
// directory log, page allocator, and read staging are all shared.
class NovafsTarget final : public Target {
 public:
  explicit NovafsTarget(const TargetOptions& o) : opts_(o) {}

  const char* name() const override { return "novafs"; }

  void reset() override {
    platform_ = std::make_unique<hw::Platform>();
    ns_ = &platform_->optane(8 << 20);
    fs_ = std::make_unique<nova::NovaFs>(*ns_, fs_options());
    sim::ThreadCtx ctx = service_ctx();
    fs_->format(ctx);
    platform_->reset_timing();
    history_.clear();
  }

  hw::Platform& platform() override { return *platform_; }
  History& history() override { return history_; }

  std::vector<ThreadSpec> specs() override {
    std::vector<ThreadSpec> v;
    for (unsigned t = 0; t < opts_.threads; ++t)
      v.push_back({worker_opts(opts_, t),
                   [this, t](sim::ThreadCtx& ctx) { body(ctx, t); }});
    return v;
  }

  std::map<std::string, std::string> live_state() override {
    sim::ThreadCtx ctx = service_ctx();
    return read_all(*fs_, ctx);
  }

  bool recover(std::map<std::string, std::string>* out,
               std::string* error) override {
    sim::ThreadCtx ctx = service_ctx(33);
    nova::NovaFs fs(*ns_, fs_options());
    if (!fs.mount(ctx)) {
      *error = "mount() failed";
      return false;
    }
    if (Status st = fs.fsck(ctx); !st.ok()) {
      *error = st.to_string();
      return false;
    }
    *out = read_all(fs, ctx);
    return true;
  }

 private:
  static constexpr unsigned kNames = 4;
  static constexpr std::size_t kLen = 32;  // every write is full-content

  static std::string fname(unsigned i) { return "f" + std::to_string(i); }

  nova::NovaOptions fs_options() const {
    nova::NovaOptions o;
    o.datalog = true;
    o.merge_threshold = 4;
    o.clean_threshold = 8;
    o.log_checksum = true;
    o.batch_log_appends = true;  // atomic rename
    return o;
  }

  std::map<std::string, std::string> read_all(nova::NovaFs& fs,
                                              sim::ThreadCtx& ctx) {
    std::map<std::string, std::string> s;
    for (unsigned i = 0; i < kNames; ++i) {
      const int ino = fs.open(ctx, fname(i));
      if (ino < 0) continue;
      const std::uint64_t sz = fs.size(ctx, ino);
      std::string content(sz, '\0');
      if (sz != 0)
        fs.read(ctx, ino, 0,
                std::span<std::uint8_t>(
                    reinterpret_cast<std::uint8_t*>(content.data()), sz));
      s[fname(i)] = content;
    }
    return s;
  }

  void body(sim::ThreadCtx& ctx, unsigned t) {
    sim::Rng rng = body_rng(opts_, t);
    for (unsigned op = 0; op < opts_.ops_per_thread; ++op) {
      const unsigned r = static_cast<unsigned>(rng.uniform(8));
      const unsigned fi = static_cast<unsigned>(rng.uniform(kNames));
      ctx.sched_point(sim::SchedPoint::kOpBegin);
      SchedLockGuard g(fs_lock_, ctx);
      if (r < 3) {
        write_file(ctx, t, fi, static_cast<char>('a' + (t * 7 + op) % 26));
      } else if (r < 4) {
        const std::size_t id = history_.invoke(t, OpKind::kDel, fname(fi));
        history_.stage_write(id);
        const bool ok = fs_->unlink(ctx, fname(fi));
        history_.respond(id, ok);
        history_.mark_must_include(id);
      } else if (r < 5) {
        const unsigned to = (fi + 1 + static_cast<unsigned>(rng.uniform(
                                          kNames - 1))) % kNames;
        const std::size_t id = history_.invoke(t, OpKind::kRename, fname(fi),
                                               std::string(), fname(to));
        history_.stage_write(id);
        const bool ok = fs_->rename(ctx, fname(fi), fname(to));
        history_.respond(id, ok);
        history_.mark_must_include(id);
      } else {
        const std::size_t id = history_.invoke(t, OpKind::kGet, fname(fi));
        const int ino = fs_->open(ctx, fname(fi));
        if (ino < 0) {
          history_.respond(id, false);
        } else {
          const std::uint64_t sz = fs_->size(ctx, ino);
          std::string content(sz, '\0');
          if (sz != 0)
            fs_->read(ctx, ino, 0,
                      std::span<std::uint8_t>(
                          reinterpret_cast<std::uint8_t*>(content.data()),
                          sz));
          history_.respond(id, true, content);
        }
        history_.mark_must_include(id);
      }
    }
  }

  void write_file(sim::ThreadCtx& ctx, unsigned t, unsigned fi, char fill) {
    int ino = fs_->open(ctx, fname(fi));
    if (ino < 0) {
      const std::size_t id = history_.invoke(t, OpKind::kPut, fname(fi));
      history_.stage_write(id);
      fs_->create(ctx, fname(fi));
      history_.respond(id);
      history_.mark_must_include(id);
      return;
    }
    const std::string content(kLen, fill);
    const std::size_t id = history_.invoke(t, OpKind::kPut, fname(fi), content);
    history_.stage_write(id);
    fs_->write(ctx, ino, 0,
               std::span<const std::uint8_t>(
                   reinterpret_cast<const std::uint8_t*>(content.data()),
                   content.size()));
    history_.respond(id);
    history_.mark_must_include(id);
  }

  TargetOptions opts_;
  std::unique_ptr<hw::Platform> platform_;
  hw::PmemNamespace* ns_ = nullptr;
  std::unique_ptr<nova::NovaFs> fs_;
  SchedLock fs_lock_;
  History history_;
};

// ---------------------------------------------------------- pmemkv -----

// cmap: hashed buckets over a pool, bounded writer lanes per DIMM (the
// lane admission/release points are schedmc yields). Value length picks
// the engine path: 8 bytes stays in-place, 24 goes transactional.
class CmapTarget final : public Target {
 public:
  explicit CmapTarget(const TargetOptions& o) : opts_(o) {}

  const char* name() const override { return "cmap"; }

  void reset() override {
    platform_ = std::make_unique<hw::Platform>();
    ns_ = &platform_->optane(8 << 20);
    pool_ = std::make_unique<pmem::Pool>(*ns_);
    sim::ThreadCtx ctx = service_ctx();
    pool_->create(ctx, 64);
    map_ = std::make_unique<pmemkv::CMap>(*pool_, map_options());
    map_->create(ctx);
    platform_->reset_timing();
    history_.clear();
  }

  hw::Platform& platform() override { return *platform_; }
  History& history() override { return history_; }

  std::vector<ThreadSpec> specs() override {
    std::vector<ThreadSpec> v;
    for (unsigned t = 0; t < opts_.threads; ++t)
      v.push_back({worker_opts(opts_, t),
                   [this, t](sim::ThreadCtx& ctx) { body(ctx, t); }});
    return v;
  }

  std::map<std::string, std::string> live_state() override {
    sim::ThreadCtx ctx = service_ctx();
    return read_all(*map_, ctx);
  }

  bool recover(std::map<std::string, std::string>* out,
               std::string* error) override {
    sim::ThreadCtx ctx = service_ctx(33);
    pmem::Pool pool(*ns_);
    if (!pool.open(ctx)) {
      *error = "pool.open() found no valid pool";
      return false;
    }
    if (Status st = pool.check(ctx); !st.ok()) {
      *error = st.to_string();
      return false;
    }
    pmemkv::CMap map(pool, map_options());
    map.open(ctx);
    if (Status st = map.check(ctx); !st.ok()) {
      *error = st.to_string();
      return false;
    }
    *out = read_all(map, ctx);
    return true;
  }

 private:
  static constexpr unsigned kKeys = 6;

  static std::string key(unsigned i) { return "c" + std::to_string(i); }

  pmemkv::CMapOptions map_options() const {
    pmemkv::CMapOptions o;
    o.max_writers_per_dimm = 2;
    return o;
  }

  std::map<std::string, std::string> read_all(pmemkv::CMap& map,
                                              sim::ThreadCtx& ctx) {
    std::map<std::string, std::string> s;
    for (unsigned i = 0; i < kKeys; ++i) {
      std::string v;
      if (map.get(ctx, key(i), &v)) s[key(i)] = v;
    }
    return s;
  }

  void body(sim::ThreadCtx& ctx, unsigned t) {
    sim::Rng rng = body_rng(opts_, t);
    for (unsigned op = 0; op < opts_.ops_per_thread; ++op) {
      const unsigned r = static_cast<unsigned>(rng.uniform(8));
      const std::string k = key(static_cast<unsigned>(rng.uniform(kKeys)));
      ctx.sched_point(sim::SchedPoint::kOpBegin);
      SchedLockGuard g(map_lock_, ctx);
      if (r < 4) {
        // 8-byte value = in-place update path; 24-byte = transactional.
        const std::size_t len = (rng.uniform(2) == 0) ? 8 : 24;
        std::string val = "w" + std::to_string(t) + "_" + std::to_string(op);
        val.resize(len, 'x');
        const std::size_t id = history_.invoke(t, OpKind::kPut, k, val);
        history_.stage_write(id);
        map_->put(ctx, k, val);
        history_.respond(id);
        history_.mark_must_include(id);
      } else if (r < 6) {
        const std::size_t id = history_.invoke(t, OpKind::kGet, k);
        std::string v;
        const bool found = map_->get(ctx, k, &v);
        history_.respond(id, found, v);
        history_.mark_must_include(id);
      } else {
        const std::size_t id = history_.invoke(t, OpKind::kDel, k);
        history_.stage_write(id);
        const bool ok = map_->remove(ctx, k);
        history_.respond(id, ok);
        history_.mark_must_include(id);
      }
    }
  }

  TargetOptions opts_;
  std::unique_ptr<hw::Platform> platform_;
  hw::PmemNamespace* ns_ = nullptr;
  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<pmemkv::CMap> map_;
  SchedLock map_lock_;
  History history_;
};

// stree: sorted leaves with splits. Enough keys that the 3-thread run
// splits at least one leaf mid-schedule.
class StreeTarget final : public Target {
 public:
  explicit StreeTarget(const TargetOptions& o) : opts_(o) {}

  const char* name() const override { return "stree"; }

  void reset() override {
    platform_ = std::make_unique<hw::Platform>();
    ns_ = &platform_->optane(8 << 20);
    pool_ = std::make_unique<pmem::Pool>(*ns_);
    sim::ThreadCtx ctx = service_ctx();
    pool_->create(ctx, 64);
    tree_ = std::make_unique<pmemkv::STree>(*pool_);
    tree_->create(ctx);
    platform_->reset_timing();
    history_.clear();
  }

  hw::Platform& platform() override { return *platform_; }
  History& history() override { return history_; }

  std::vector<ThreadSpec> specs() override {
    std::vector<ThreadSpec> v;
    for (unsigned t = 0; t < opts_.threads; ++t)
      v.push_back({worker_opts(opts_, t),
                   [this, t](sim::ThreadCtx& ctx) { body(ctx, t); }});
    return v;
  }

  std::map<std::string, std::string> live_state() override {
    sim::ThreadCtx ctx = service_ctx();
    return read_all(*tree_, ctx);
  }

  bool recover(std::map<std::string, std::string>* out,
               std::string* error) override {
    sim::ThreadCtx ctx = service_ctx(33);
    pmem::Pool pool(*ns_);
    if (!pool.open(ctx)) {
      *error = "pool.open() found no valid pool";
      return false;
    }
    if (Status st = pool.check(ctx); !st.ok()) {
      *error = st.to_string();
      return false;
    }
    pmemkv::STree tree(pool);
    tree.open(ctx);
    if (Status st = tree.check(ctx); !st.ok()) {
      *error = st.to_string();
      return false;
    }
    *out = read_all(tree, ctx);
    return true;
  }

 private:
  static constexpr unsigned kKeys = 12;

  static std::string key(unsigned i) {
    return "t" + std::string(i < 10 ? "0" : "") + std::to_string(i);
  }

  std::map<std::string, std::string> read_all(pmemkv::STree& tree,
                                              sim::ThreadCtx& ctx) {
    std::map<std::string, std::string> s;
    for (unsigned i = 0; i < kKeys; ++i) {
      std::string v;
      if (tree.get(ctx, key(i), &v)) s[key(i)] = v;
    }
    return s;
  }

  void body(sim::ThreadCtx& ctx, unsigned t) {
    sim::Rng rng = body_rng(opts_, t);
    for (unsigned op = 0; op < opts_.ops_per_thread; ++op) {
      const unsigned r = static_cast<unsigned>(rng.uniform(8));
      const std::string k = key(static_cast<unsigned>(rng.uniform(kKeys)));
      ctx.sched_point(sim::SchedPoint::kOpBegin);
      SchedLockGuard g(tree_lock_, ctx);
      if (r < 5) {
        const std::string val =
            "n" + std::to_string(t) + "_" + std::to_string(op);
        const std::size_t id = history_.invoke(t, OpKind::kPut, k, val);
        history_.stage_write(id);
        tree_->put(ctx, k, val);
        history_.respond(id);
        history_.mark_must_include(id);
      } else if (r < 7) {
        const std::size_t id = history_.invoke(t, OpKind::kGet, k);
        std::string v;
        const bool found = tree_->get(ctx, k, &v);
        history_.respond(id, found, v);
        history_.mark_must_include(id);
      } else {
        const std::size_t id = history_.invoke(t, OpKind::kDel, k);
        history_.stage_write(id);
        const bool ok = tree_->remove(ctx, k);
        history_.respond(id, ok);
        history_.mark_must_include(id);
      }
    }
  }

  TargetOptions opts_;
  std::unique_ptr<hw::Platform> platform_;
  hw::PmemNamespace* ns_ = nullptr;
  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<pmemkv::STree> tree_;
  SchedLock tree_lock_;
  History history_;
};

// ------------------------------------------------------------- sharded --

// workload::ShardedStore over two per-DIMM lsmkv shards with deferred
// background compaction. Locking model: each shard instance is
// single-threaded code, so it gets its own SchedLock; single-key ops
// take the owning shard's lock, cross-shard batches take every involved
// lock in ascending shard order (no deadlock by construction) and hold
// them across the whole dispatch. One extra logical thread donates
// background-compaction turns, shard lock held — reset() pre-populates
// enough data that both shards start with compaction debt pending, so
// exploration interleaves real L0 merges with foreground traffic.
//
// Durability: sync_every_op is on and write-combining is off, so a
// single put/del is durable when it returns, and a per-shard batch
// group (Db::put_batch, one WAL group burst) is durable — atomically —
// when the dispatch returns. History groups mirror exactly that unit:
// one group id per (batch, shard), never one spanning shards.
class ShardedTarget final : public Target {
 public:
  explicit ShardedTarget(const TargetOptions& o) : opts_(o) {}

  const char* name() const override { return "sharded-lsmkv"; }

  void reset() override {
    platform_ = std::make_unique<hw::Platform>();
    ns_ = workload::ShardedStore::make_namespaces(*platform_, kShards,
                                                  16ull << 20);
    store_ = std::make_unique<workload::ShardedStore>(ns_, shard_options());
    sim::ThreadCtx ctx = service_ctx();
    store_->create(ctx);
    // Pre-populate until every shard has scheduled (not run) a merge:
    // the explorer then interleaves the donated compaction turns with
    // live traffic instead of exploring an empty background thread.
    filler_.clear();
    for (unsigned i = 0; i < kFillers; ++i) {
      const std::string k = "f" + std::to_string(i);
      const std::string v(400, 'a' + static_cast<char>(i % 26));
      store_->put(ctx, k, v);
      filler_[k] = v;
    }
    platform_->reset_timing();
    history_.clear();
    next_group_ = 1;
  }

  hw::Platform& platform() override { return *platform_; }
  History& history() override { return history_; }

  std::vector<ThreadSpec> specs() override {
    std::vector<ThreadSpec> v;
    for (unsigned t = 0; t < opts_.threads; ++t)
      v.push_back({worker_opts(opts_, t),
                   [this, t](sim::ThreadCtx& ctx) { body(ctx, t); }});
    // The background-compaction donor: walks the shards a few times,
    // paying one deferred merge per turn under that shard's lock.
    v.push_back({worker_opts(opts_, opts_.threads),
                 [this](sim::ThreadCtx& ctx) {
                   for (unsigned round = 0; round < 3; ++round)
                     for (unsigned s = 0; s < kShards; ++s) {
                       ctx.sched_point(sim::SchedPoint::kOpBegin);
                       SchedLockGuard g(locks_[s], ctx);
                       store_->shard(s).background_turn(ctx);
                     }
                 }});
    return v;
  }

  std::map<std::string, std::string> live_state() override {
    sim::ThreadCtx ctx = service_ctx();
    return read_all(*store_, ctx);
  }

  bool recover(std::map<std::string, std::string>* out,
               std::string* error) override {
    sim::ThreadCtx ctx = service_ctx(33);
    workload::ShardedStore store(ns_, shard_options());
    if (!store.open(ctx)) {
      *error = "sharded open() failed";
      return false;
    }
    if (Status st = store.check(ctx); !st.ok()) {
      *error = st.to_string();
      return false;
    }
    *out = read_all(store, ctx);
    return true;
  }

  std::map<std::string, std::string> initial_state() override {
    return filler_;
  }

 private:
  static constexpr unsigned kShards = 2;
  static constexpr unsigned kKeys = 6;
  // 48 x 400 B spread over two 2 KB-memtable shards: ~9 flushes per
  // shard, past the default l0_compaction_trigger, so both shards carry
  // pending debt when the run starts.
  static constexpr unsigned kFillers = 48;

  static std::string key(unsigned i) { return "k" + std::to_string(i); }

  workload::ShardOptions shard_options() const {
    workload::ShardOptions so;
    so.kind = workload::StoreKind::kLsmkv;
    so.tuning.memtable_bytes = 2 << 10;
    so.tuning.background_compaction = true;
    so.writer_lanes = true;
    return so;
  }

  std::map<std::string, std::string> read_all(workload::ShardedStore& s,
                                              sim::ThreadCtx& ctx) {
    std::map<std::string, std::string> out;
    auto probe = [&](const std::string& k) {
      std::string v;
      if (s.get(ctx, k, &v)) out[k] = v;
    };
    for (unsigned i = 0; i < kKeys; ++i) probe(key(i));
    probe("ctr");
    for (const auto& [k, v] : filler_) probe(k);
    return out;
  }

  void body(sim::ThreadCtx& ctx, unsigned t) {
    sim::Rng rng = body_rng(opts_, t);
    for (unsigned op = 0; op < opts_.ops_per_thread; ++op) {
      const unsigned r = static_cast<unsigned>(rng.uniform(10));
      const std::string k = key(static_cast<unsigned>(rng.uniform(kKeys)));
      const unsigned s = workload::shard_of(k, kShards);
      ctx.sched_point(sim::SchedPoint::kOpBegin);
      if (r < 3) {
        const std::string val =
            "v" + std::to_string(t) + "_" + std::to_string(op);
        SchedLockGuard g(locks_[s], ctx);
        const std::size_t id = history_.invoke(t, OpKind::kPut, k, val);
        history_.stage_write(id);
        store_->put(ctx, k, val);
        history_.respond(id);
        history_.mark_must_include(id);
      } else if (r < 5) {
        SchedLockGuard g(locks_[s], ctx);
        const std::size_t id = history_.invoke(t, OpKind::kGet, k);
        std::string v;
        const bool found = store_->get(ctx, k, &v);
        history_.respond(id, found, v);
        history_.mark_must_include(id);
      } else if (r < 6) {
        SchedLockGuard g(locks_[s], ctx);
        const std::size_t id = history_.invoke(t, OpKind::kDel, k);
        history_.stage_write(id);
        store_->del(ctx, k);
        history_.respond(id);  // lsmkv dels are blind; no found to check
        history_.mark_must_include(id);
      } else if (r < 8) {
        batch(ctx, t, op, rng);
      } else {
        bump_counter(ctx, t);
      }
    }
  }

  // Cross-shard batched dispatch: 2-3 keys, locks taken in ascending
  // shard order and held across the dispatch; ShardedStore::apply_batch
  // commits one WAL group per involved shard, so each shard's slice of
  // the history shares one group id and distinct shards never do.
  void batch(sim::ThreadCtx& ctx, unsigned t, unsigned op, sim::Rng& rng) {
    const unsigned n = 2 + static_cast<unsigned>(rng.uniform(2));
    std::vector<workload::BatchOp> ops;
    for (unsigned i = 0; i < n; ++i) {
      workload::BatchOp b;
      b.key = key(static_cast<unsigned>(rng.uniform(kKeys)));
      b.del = rng.uniform(5) == 0;
      if (!b.del)
        b.value = "b" + std::to_string(t) + "_" + std::to_string(op) + "_" +
                  std::to_string(i);
      ops.push_back(std::move(b));
    }
    bool involved[kShards] = {};
    for (const auto& b : ops) involved[workload::shard_of(b.key, kShards)] = true;
    for (unsigned s = 0; s < kShards; ++s)
      if (involved[s]) locks_[s].lock(ctx);
    std::uint64_t group_of[kShards];
    for (unsigned s = 0; s < kShards; ++s)
      if (involved[s]) group_of[s] = next_group_++;
    std::vector<std::size_t> ids;
    for (const auto& b : ops) {
      const std::size_t id = history_.invoke(
          t, b.del ? OpKind::kDel : OpKind::kPut, b.key, b.value);
      history_.stage_write(id);
      history_.set_group(id, group_of[workload::shard_of(b.key, kShards)]);
      ids.push_back(id);
    }
    store_->apply_batch(ctx, ops);
    for (const std::size_t id : ids) {
      history_.respond(id);
      history_.mark_must_include(id);
    }
    for (unsigned s = kShards; s-- > 0;)
      if (involved[s]) locks_[s].unlock(ctx);
  }

  // Counter RMW under the counter's owning shard lock — or, with the
  // fault armed, split into two critical sections (the lost update the
  // oracle must catch, now through the sharded frontend).
  void bump_counter(sim::ThreadCtx& ctx, unsigned t) {
    const unsigned s = workload::shard_of("ctr", kShards);
    const std::size_t id = history_.invoke(t, OpKind::kRmw, "ctr");
    if (elide(opts_)) {
      bool found;
      std::string v;
      {
        SchedLockGuard g(locks_[s], ctx);
        found = store_->get(ctx, "ctr", &v);
      }
      ctx.sched_point(sim::SchedPoint::kHandoff);
      const std::string nv = next_value(found, v);
      history_.stage_write(id, found, found ? v : std::string(), nv);
      SchedLockGuard g(locks_[s], ctx);
      store_->put(ctx, "ctr", nv);
      history_.respond(id, found, found ? v : std::string());
      history_.mark_must_include(id);
    } else {
      SchedLockGuard g(locks_[s], ctx);
      std::string v;
      const bool found = store_->get(ctx, "ctr", &v);
      const std::string nv = next_value(found, v);
      history_.stage_write(id, found, found ? v : std::string(), nv);
      store_->put(ctx, "ctr", nv);
      history_.respond(id, found, found ? v : std::string());
      history_.mark_must_include(id);
    }
  }

  static std::string next_value(bool found, const std::string& v) {
    return std::to_string((found ? std::stoll(v) : 0) + 1);
  }

  TargetOptions opts_;
  std::unique_ptr<hw::Platform> platform_;
  std::vector<hw::PmemNamespace*> ns_;
  std::unique_ptr<workload::ShardedStore> store_;
  SchedLock locks_[kShards];
  std::map<std::string, std::string> filler_;
  std::uint64_t next_group_ = 1;
  History history_;
};

}  // namespace

std::unique_ptr<Target> make_pmemlib_target(const TargetOptions& opts) {
  return std::make_unique<PmemlibTarget>(opts);
}
std::unique_ptr<Target> make_lsmkv_target(const TargetOptions& opts) {
  return std::make_unique<LsmkvTarget>(opts);
}
std::unique_ptr<Target> make_novafs_target(const TargetOptions& opts) {
  return std::make_unique<NovafsTarget>(opts);
}
std::unique_ptr<Target> make_cmap_target(const TargetOptions& opts) {
  return std::make_unique<CmapTarget>(opts);
}
std::unique_ptr<Target> make_stree_target(const TargetOptions& opts) {
  return std::make_unique<StreeTarget>(opts);
}
std::unique_ptr<Target> make_sharded_target(const TargetOptions& opts) {
  return std::make_unique<ShardedTarget>(opts);
}

std::vector<std::unique_ptr<Target>> all_targets(const TargetOptions& opts) {
  std::vector<std::unique_ptr<Target>> v;
  v.push_back(make_pmemlib_target(opts));
  v.push_back(make_lsmkv_target(opts));
  v.push_back(make_novafs_target(opts));
  v.push_back(make_cmap_target(opts));
  v.push_back(make_stree_target(opts));
  return v;
}

}  // namespace xp::schedmc
