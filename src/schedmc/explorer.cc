#include "schedmc/explorer.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <set>

#include "crashmc/explorer.h"
#include "xpsim/platform.h"

namespace xp::schedmc {

namespace {

// Preemptions in a decision sequence: decision k preempts when it picks
// a different thread than k-1 while k-1's thread was still runnable.
std::uint64_t count_preemptions(
    const std::vector<unsigned>& seq,
    const std::vector<std::vector<unsigned>>& runnable_at) {
  std::uint64_t n = 0;
  for (std::size_t k = 1; k < seq.size() && k < runnable_at.size(); ++k) {
    if (seq[k] != seq[k - 1] &&
        std::find(runnable_at[k].begin(), runnable_at[k].end(),
                  seq[k - 1]) != runnable_at[k].end())
      ++n;
  }
  return n;
}

struct Driver {
  Target& target;
  const Options& opts;
  Result& res;
  std::set<std::uint64_t> signatures;

  Interleaver::Options il_opts() {
    Interleaver::Options io;
    io.platform = &target.platform();
    io.sink = opts.sink;
    io.record_runnable = opts.dfs_branch_horizon;
    return io;
  }

  // Run one live schedule and check its history. Returns the run record.
  Interleaver::RunResult run_live(SchedulePolicy& policy,
                                  std::uint64_t schedule_seed) {
    target.reset();
    Interleaver il;
    const std::vector<ThreadSpec> specs = target.specs();
    const Interleaver::RunResult rr = il.run(specs, policy, il_opts());
    ++res.schedules_run;
    signatures.insert(rr.signature);
    check_live(rr, schedule_seed);
    return rr;
  }

  void check_live(const Interleaver::RunResult& rr,
                  std::uint64_t schedule_seed) {
    if (!rr.error.empty()) {
      res.violations.push_back({target.name(), "error", schedule_seed,
                                rr.signature, 0, rr.error});
      return;
    }
    if (rr.deadlocked) {
      ++res.deadlocks;
      res.violations.push_back({target.name(), "deadlock", schedule_seed,
                                rr.signature, 0,
                                "all live threads blocked on SchedLocks"});
      return;
    }
    const std::map<std::string, std::string> state = target.live_state();
    const std::map<std::string, std::string> init = target.initial_state();
    const CheckResult cr =
        check_history(target.history().ops(), &state, false, &init);
    ++res.histories_checked;
    res.checker_states += cr.states_explored;
    if (!cr.ok)
      res.violations.push_back({target.name(), "linearizability",
                                schedule_seed, rr.signature, 0, cr.detail});
  }

  bool stop() const { return !opts.keep_going && !res.violations.empty(); }

  // Phase 3 helper: crash-sweep one recorded schedule.
  void crash_sweep(const std::vector<unsigned>& trace,
                   std::uint64_t schedule_seed) {
    // Baseline replay counts this schedule's persist events (each
    // interleaving flushes differently, so the event total is per
    // schedule, not per workload).
    target.reset();
    // crash_after(n) counts persist events from arming, which happens
    // after reset(); setup traffic inside reset() must not shift the
    // sweep, so count only the events the run itself produced.
    const std::uint64_t setup_events = target.platform().persist_events();
    Interleaver il0;
    ReplayPolicy base(trace);
    const Interleaver::RunResult rr0 =
        il0.run(target.specs(), base, il_opts());
    if (!rr0.error.empty() || rr0.deadlocked) return;  // phase 1 reported it
    const std::uint64_t total =
        target.platform().persist_events() - setup_events;
    const std::uint64_t sig = rr0.signature;

    for (const std::uint64_t k : crashmc::choose_points(
             total, opts.crash_max_exhaustive, opts.crash_points_per_schedule,
             opts.seed + schedule_seed)) {
      target.reset();
      target.platform().crash_after(k);
      Interleaver il;
      ReplayPolicy replay(trace);
      const Interleaver::RunResult rr =
          il.run(target.specs(), replay, il_opts());
      ++res.crash_runs;
      const bool crashed = target.platform().crash_fired();
      target.platform().clear_crash_trigger();
      target.platform().reset_timing();
      if (!rr.error.empty()) {
        res.violations.push_back({target.name(), "error", schedule_seed, sig,
                                  k, rr.error});
        if (stop()) return;
        continue;
      }
      std::map<std::string, std::string> recovered;
      std::string err;
      if (!target.recover(&recovered, &err)) {
        res.violations.push_back({target.name(), "recovery", schedule_seed,
                                  sig, k, err});
        if (stop()) return;
        continue;
      }
      ++res.recoveries_checked;
      const std::map<std::string, std::string> init = target.initial_state();
      // Crash-mode check even if the trigger never fired (k past the end):
      // a clean image must still match a durable linearization.
      (void)crashed;
      const CheckResult cr =
          check_history(target.history().ops(), &recovered, true, &init);
      ++res.histories_checked;
      res.checker_states += cr.states_explored;
      if (!cr.ok) {
        res.violations.push_back({target.name(), "linearizability",
                                  schedule_seed, sig, k, cr.detail});
        if (stop()) return;
      }
    }
  }
};

}  // namespace

Result explore(Target& target, const Options& opts) {
  Result res;
  const auto t0 = std::chrono::steady_clock::now();
  Driver d{target, opts, res, {}};

  // ---- Phase 1: PCT ------------------------------------------------------
  // Serial baseline first: it is a real schedule (counted and checked)
  // and its decision count calibrates the PCT horizon — change points
  // drawn past the end of the run never fire, so an oversized horizon
  // collapses schedules onto the few base priority orders.
  std::vector<std::vector<unsigned>> crash_traces;
  std::uint64_t horizon = opts.pct_horizon;
  {
    ReplayPolicy serial({});
    const Interleaver::RunResult rr = d.run_live(serial, opts.seed);
    if (rr.error.empty() && !rr.deadlocked && rr.decisions > 8)
      horizon = std::min<std::uint64_t>(horizon, rr.decisions);
    if (crash_traces.size() < opts.crash_schedules)
      crash_traces.push_back(rr.trace);
  }
  for (unsigned s = 0; s < opts.pct_schedules && !d.stop(); ++s) {
    target.reset();
    const std::size_t nthreads = target.specs().size();
    // Cycle the preemption depth: deeper schedules distinguish runs the
    // base priority orders cannot.
    const unsigned depth = opts.pct_depth + s % 4;
    PctPolicy policy(opts.seed + s, static_cast<unsigned>(nthreads), depth,
                     horizon);
    const Interleaver::RunResult rr = d.run_live(policy, opts.seed + s);
    if (crash_traces.size() < opts.crash_schedules)
      crash_traces.push_back(rr.trace);
  }

  // ---- Phase 2: preemption-bounded DFS -----------------------------------
  if (opts.dfs_schedules > 0 && !d.stop()) {
    std::deque<std::vector<unsigned>> frontier;
    frontier.push_back({});  // empty prefix = non-preemptive baseline
    std::uint64_t budget = opts.dfs_schedules;
    while (!frontier.empty() && budget > 0 && !d.stop()) {
      const std::vector<unsigned> prefix = std::move(frontier.front());
      frontier.pop_front();
      --budget;
      ReplayPolicy policy(prefix);
      const Interleaver::RunResult rr = d.run_live(policy, 0);
      // Branch at decisions >= |prefix| (earlier branches were enumerated
      // by this run's ancestors), inside the recorded horizon.
      const std::size_t lim =
          std::min(rr.runnable_at.size(), opts.dfs_branch_horizon);
      for (std::size_t i = prefix.size(); i < lim; ++i) {
        for (const unsigned alt : rr.runnable_at[i]) {
          if (alt == rr.trace[i]) continue;
          std::vector<unsigned> child(rr.trace.begin(),
                                      rr.trace.begin() +
                                          static_cast<std::ptrdiff_t>(i));
          child.push_back(alt);
          if (count_preemptions(child, rr.runnable_at) <=
              opts.dfs_preemption_bound)
            frontier.push_back(std::move(child));
        }
      }
    }
  }

  // ---- Phase 3: crash composition ----------------------------------------
  for (std::size_t k = 0; k < crash_traces.size() && !d.stop(); ++k)
    d.crash_sweep(crash_traces[k], opts.seed + k);

  res.distinct_schedules = d.signatures.size();
  res.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

std::string summarize(const Result& r) {
  std::string out = "schedules=" + std::to_string(r.schedules_run) +
                    " distinct=" + std::to_string(r.distinct_schedules) +
                    " crash_runs=" + std::to_string(r.crash_runs) +
                    " recoveries=" + std::to_string(r.recoveries_checked) +
                    " histories=" + std::to_string(r.histories_checked) +
                    " checker_states=" + std::to_string(r.checker_states) +
                    " violations=" + std::to_string(r.violations.size());
  for (const Violation& v : r.violations) {
    out += "\n[" + v.target + "] " + v.kind + " seed=" +
           std::to_string(v.schedule_seed) + " sig=" +
           std::to_string(v.signature) + " crash_point=" +
           std::to_string(v.crash_point) + "\n" + v.detail;
  }
  return out;
}

}  // namespace xp::schedmc
