// Schedule exploration over concurrent store workloads (schedmc).
//
// A Target packages one store family as a concurrent workload: fresh
// platform + store per run, a set of logical-thread bodies that record
// into a History, a sequential-map view of the live store, and a
// recovery path that rebuilds the store from the (possibly crashed)
// durable image.
//
// explore() drives the Target through three phases:
//   1. PCT: `pct_schedules` runs under seeded random-priority schedules
//      (PctPolicy), each history checked for linearizability against the
//      live store state.
//   2. Preemption-bounded DFS: replay-based exhaustive search — branch
//      the recorded decision prefix at every yield point within the
//      branch horizon, bounded by preemption count and run budget.
//   3. Crash composition: for the first `crash_schedules` PCT schedules,
//      replay the identical interleaving with a crash armed at
//      crashmc::choose_points-selected persist events, recover with
//      fresh objects, and require the history to have a linearizable
//      prefix that explains the recovered state exactly (crash-mode
//      check in history.h) — a crash at any (schedule, persist-event)
//      pair must still look like a clean prefix.
//
// Every phase is deterministic: the same Options always explore the same
// schedules, crash points, and verdicts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "schedmc/history.h"
#include "schedmc/interleave.h"

namespace xp::hw {
class Platform;
}

namespace xp::schedmc {

// One store family as a concurrent, crash-recoverable workload.
class Target {
 public:
  virtual ~Target() = default;

  virtual const char* name() const = 0;

  // Build a fresh platform + store and clear the history. Called before
  // every run.
  virtual void reset() = 0;

  virtual hw::Platform& platform() = 0;
  virtual History& history() = 0;

  // The logical threads of one run; bodies record into history(). Spec
  // ids must equal their index.
  virtual std::vector<ThreadSpec> specs() = 0;

  // Sequential-map view of the live store (valid after a completed run).
  virtual std::map<std::string, std::string> live_state() = 0;

  // Rebuild the store from the durable image with fresh objects and
  // return its state; false + *error on a recovery failure.
  virtual bool recover(std::map<std::string, std::string>* out,
                       std::string* error) = 0;

  // Pre-populated keys present before any recorded op (default none).
  virtual std::map<std::string, std::string> initial_state() { return {}; }
};

struct Violation {
  std::string target;
  std::string kind;  // "linearizability", "deadlock", "error", "recovery"
  std::uint64_t schedule_seed = 0;  // PCT seed (0 for DFS/replayed runs)
  std::uint64_t signature = 0;      // schedule signature
  std::uint64_t crash_point = 0;    // persist-event index (0 = live run)
  std::string detail;
};

struct Options {
  std::uint64_t seed = 1;
  // Phase 1: PCT.
  unsigned pct_schedules = 200;
  unsigned pct_depth = 3;
  std::uint64_t pct_horizon = 256;  // expected decisions per run
  // Phase 2: preemption-bounded DFS.
  unsigned dfs_schedules = 64;          // run budget
  unsigned dfs_preemption_bound = 2;    // max preemptions per schedule
  std::size_t dfs_branch_horizon = 96;  // branch in the first N decisions
  // Phase 3: crash composition.
  unsigned crash_schedules = 0;  // how many PCT schedules to crash-sweep
  unsigned crash_points_per_schedule = 16;
  unsigned crash_max_exhaustive = 8;

  hw::TelemetrySink* sink = nullptr;  // schedule-point counters
  bool keep_going = false;  // collect every violation instead of stopping
};

struct Result {
  std::uint64_t schedules_run = 0;       // live interleavings executed
  std::uint64_t distinct_schedules = 0;  // unique schedule signatures
  std::uint64_t crash_runs = 0;          // (schedule, crash point) pairs
  std::uint64_t recoveries_checked = 0;
  std::uint64_t histories_checked = 0;
  std::uint64_t checker_states = 0;  // linearization search nodes
  std::uint64_t deadlocks = 0;
  double seconds = 0.0;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
};

Result explore(Target& target, const Options& opts);

// Render a result for logs/assert messages.
std::string summarize(const Result& r);

}  // namespace xp::schedmc
