// Concurrent schedmc workloads for the four store families.
//
// Each factory builds a Target (schedmc/explorer.h) that runs a small
// multi-threaded put/get/delete/rename workload against one store,
// records every operation into a History, and knows how to rebuild the
// store from the durable image after a crash. The workloads are
// deterministic functions of (workload_seed, thread id), which is what
// lets the explorer replay a recorded schedule exactly.
//
// Locking model: the logical threads are strictly serialized by the
// interleaver, but the stores themselves are single-threaded code, so
// each target takes the SchedLocks a real concurrent implementation
// would take (a per-slot lock for pmemlib's counters, one store-wide
// lock where internal state is shared — the LSM memtable/WAL, the NOVA
// directory log, the cmap/stree structures). The explored interleavings
// then reorder whole critical sections and everything outside them.
//
// TestFault::kElideRmwLock deliberately breaks the read-modify-write
// critical section — the lock is dropped between the read and the
// write — so two racing increments can both observe the same old value.
// The resulting lost update is invisible to the store's own checkers
// (every individual write is well-formed); only the linearizability
// oracle can catch it, which is exactly what the negative tests assert.
#pragma once

#include <memory>
#include <vector>

#include "schedmc/explorer.h"

namespace xp::schedmc {

enum class TestFault {
  kNone,
  // Drop the lock between an increment's read and its write.
  kElideRmwLock,
};

struct TargetOptions {
  std::uint64_t workload_seed = 7;
  unsigned threads = 3;
  unsigned ops_per_thread = 5;
  TestFault fault = TestFault::kNone;
};

// pmemlib: per-slot locked counter increments through undo-log
// transactions (distinct tx lanes per thread).
std::unique_ptr<Target> make_pmemlib_target(const TargetOptions& opts = {});

// lsmkv: puts/gets/deletes plus a counter RMW under one db lock, with
// group commit on — durability is acknowledged per WAL group, recorded
// as all-or-nothing history groups.
std::unique_ptr<Target> make_lsmkv_target(const TargetOptions& opts = {});

// novafs: create/write/unlink/rename over a small set of names with
// batched log appends (atomic rename).
std::unique_ptr<Target> make_novafs_target(const TargetOptions& opts = {});

// pmemkv cmap: put/get/remove with bounded writer lanes
// (max_writers_per_dimm), mixing in-place and transactional value sizes.
std::unique_ptr<Target> make_cmap_target(const TargetOptions& opts = {});

// pmemkv stree: put/get/remove over enough keys to split leaves.
std::unique_ptr<Target> make_stree_target(const TargetOptions& opts = {});

// Sharded frontend (workload::ShardedStore over per-DIMM lsmkv shards,
// deferred background compaction on): puts/gets/deletes under per-shard
// locks, cross-shard batched dispatch holding the involved shard locks
// in ascending order (each shard's group is one crash-atomic WAL burst,
// the cross-shard batch as a whole is not), a counter RMW under its
// owning shard's lock, plus one extra thread donating background-
// compaction turns shard by shard. reset() pre-populates enough data to
// leave compaction debt pending, so exploration interleaves real merges
// with foreground traffic. Not part of all_targets(): the five-family
// panels (and their sweep baselines) stay as they were.
std::unique_ptr<Target> make_sharded_target(const TargetOptions& opts = {});

// All five, in the order above.
std::vector<std::unique_ptr<Target>> all_targets(const TargetOptions& opts = {});

}  // namespace xp::schedmc
