#include "schedmc/interleave.h"

#include <algorithm>
#include <cassert>
#include <exception>

#include "sim/rng.h"
#include "xpsim/platform.h"

namespace xp::schedmc {

// ---------------------------------------------------------------- PCT ----

PctPolicy::PctPolicy(std::uint64_t seed, unsigned nthreads, unsigned depth,
                     std::uint64_t horizon) {
  assert(depth >= 1);
  sim::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x5ca1ab1eULL);
  // Distinct random base priorities in [depth, depth + n): always above
  // every change-point priority, which counts down from depth - 1.
  prio_.resize(nthreads);
  for (unsigned i = 0; i < nthreads; ++i)
    prio_[i] = static_cast<int>(depth + i);
  for (unsigned i = nthreads; i > 1; --i)
    std::swap(prio_[i - 1], prio_[static_cast<std::size_t>(rng.uniform(i))]);
  for (unsigned d = 1; d < depth; ++d)
    change_points_.push_back(rng.uniform(horizon ? horizon : 1));
  std::sort(change_points_.begin(), change_points_.end());
  next_low_ = static_cast<int>(depth) - 1;
}

unsigned PctPolicy::pick(unsigned current,
                         const std::vector<unsigned>& runnable,
                         std::uint64_t decision, sim::SchedPoint /*point*/) {
  if (current != kNone &&
      std::binary_search(change_points_.begin(), change_points_.end(),
                         decision))
    prio_[current] = next_low_--;
  unsigned best = runnable.front();
  for (const unsigned t : runnable)
    if (prio_[t] > prio_[best]) best = t;
  return best;
}

// ------------------------------------------------------------- Replay ----

unsigned ReplayPolicy::pick(unsigned current,
                            const std::vector<unsigned>& runnable,
                            std::uint64_t decision, sim::SchedPoint /*point*/) {
  const auto has = [&runnable](unsigned t) {
    return std::find(runnable.begin(), runnable.end(), t) != runnable.end();
  };
  if (decision < prefix_.size() && has(prefix_[decision]))
    return prefix_[decision];
  if (current != kNone && has(current)) return current;
  return runnable.front();
}

// -------------------------------------------------------- Interleaver ----

Interleaver::RunResult Interleaver::run(const std::vector<ThreadSpec>& specs,
                                        SchedulePolicy& policy,
                                        const Options& opts) {
  const unsigned n = static_cast<unsigned>(specs.size());
  assert(n >= 1);
  opts_ = opts;
  policy_ = &policy;
  ctxs_.clear();
  state_.assign(n, TState::kReady);
  blocked_on_.assign(n, nullptr);
  lock_owner_.clear();
  active_ = kNobody;
  abort_ = false;
  all_done_ = false;
  trace_.clear();
  runnable_at_.clear();
  signature_ = 0xcbf29ce484222325ULL;
  decisions_ = 0;
  preemptions_ = 0;
  points_.fill(0);
  crashed_ = false;
  deadlocked_ = false;
  budget_exhausted_ = false;
  error_.clear();

  ctxs_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    // ctx.id() is the interleaver's thread identity; it must match the
    // spec's index or scheduling decisions would target the wrong thread.
    assert(specs[i].opts.id == i);
    ctxs_.push_back(std::make_unique<sim::ThreadCtx>(specs[i].opts));
    ctxs_.back()->set_sched_hook(this);
  }

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    threads.emplace_back(
        [this, i, &specs] { thread_main(i, specs[i].body); });

  {
    std::unique_lock<std::mutex> lk(mu_);
    const unsigned first =
        decide(SchedulePolicy::kNone, sim::SchedPoint::kOpBegin);
    grant(first == kNobody ? 0 : first);
  }
  for (auto& t : threads) t.join();
  adopt_platform();  // the calling host thread owns the image again

  RunResult r;
  r.trace = std::move(trace_);
  r.runnable_at = std::move(runnable_at_);
  r.signature = signature_;
  r.decisions = decisions_;
  r.preemptions = preemptions_;
  r.points = points_;
  r.crashed = crashed_;
  r.deadlocked = deadlocked_;
  r.budget_exhausted = budget_exhausted_;
  r.error = error_;
  return r;
}

void Interleaver::thread_main(
    unsigned self, const std::function<void(sim::ThreadCtx&)>& body) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return active_ == self; });
    adopt_platform();
  }
  try {
    body(*ctxs_[self]);
  } catch (const AbortRun&) {
    // Normal unwind of an aborted run.
  } catch (const hw::CrashPointHit&) {
    std::lock_guard<std::mutex> g(mu_);
    crashed_ = true;
    abort_ = true;
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> g(mu_);
    if (error_.empty()) error_ = e.what();
    abort_ = true;
  } catch (...) {
    std::lock_guard<std::mutex> g(mu_);
    if (error_.empty()) error_ = "unknown exception";
    abort_ = true;
  }
  finish(self);
}

unsigned Interleaver::decide(unsigned current, sim::SchedPoint point) {
  std::vector<unsigned> runnable;
  for (unsigned i = 0; i < state_.size(); ++i)
    if (state_[i] == TState::kReady) runnable.push_back(i);
  if (runnable.empty()) {
    // Every live thread is blocked on a SchedLock: a real deadlock in
    // the explored schedule. Abort and unwind everyone.
    deadlocked_ = true;
    abort_ = true;
    return kNobody;
  }
  if (budget_exhausted_ || decisions_ >= opts_.max_decisions) {
    // Out of decision budget: stop branching and finish the run serially
    // (keep the current thread while it can run).
    budget_exhausted_ = true;
    if (current != SchedulePolicy::kNone &&
        std::find(runnable.begin(), runnable.end(), current) !=
            runnable.end())
      return current;
    return runnable.front();
  }
  unsigned choice = policy_->pick(current, runnable, decisions_, point);
  if (std::find(runnable.begin(), runnable.end(), choice) == runnable.end())
    choice = runnable.front();
  if (trace_.size() < opts_.record_runnable)
    runnable_at_.push_back(runnable);
  trace_.push_back(choice);
  // Schedule signature: position-sensitive hash over (thread, point)
  // decisions. No host addresses, so equal schedules hash equally across
  // runs and processes.
  signature_ = (signature_ ^ ((static_cast<std::uint64_t>(choice) << 8) ^
                              static_cast<std::uint64_t>(point) ^ 0x9e37)) *
               0x100000001b3ULL;
  if (current != SchedulePolicy::kNone && choice != current &&
      std::find(runnable.begin(), runnable.end(), current) != runnable.end())
    ++preemptions_;
  ++decisions_;
  return choice;
}

void Interleaver::grant(unsigned next) {
  active_ = next;
  cv_.notify_all();
}

void Interleaver::grant_next_for_abort() {
  for (unsigned i = 0; i < state_.size(); ++i) {
    if (state_[i] != TState::kDone) {
      grant(i);
      return;
    }
  }
  all_done_ = true;
  active_ = kNobody;
  cv_.notify_all();
}

void Interleaver::wait_for_token(std::unique_lock<std::mutex>& lk,
                                 unsigned self) {
  cv_.wait(lk, [&] { return active_ == self; });
  adopt_platform();
}

void Interleaver::finish(unsigned self) {
  std::unique_lock<std::mutex> lk(mu_);
  state_[self] = TState::kDone;
  const bool alldone =
      std::all_of(state_.begin(), state_.end(),
                  [](TState s) { return s == TState::kDone; });
  if (alldone) {
    all_done_ = true;
    active_ = kNobody;
    cv_.notify_all();
    return;
  }
  if (abort_) {
    grant_next_for_abort();
    return;
  }
  // Thread completion hands the token onward — a recorded decision like
  // any other, so replays reproduce it.
  const unsigned next =
      decide(SchedulePolicy::kNone, sim::SchedPoint::kOpBegin);
  if (next == kNobody) {
    grant_next_for_abort();  // the rest deadlocked; unwind them
    return;
  }
  grant(next);
}

void Interleaver::adopt_platform() const {
  if (opts_.platform != nullptr) opts_.platform->adopt_host_owner();
}

void Interleaver::yield(sim::ThreadCtx& ctx, sim::SchedPoint point) {
  // Never schedule while an exception unwinds: cleanup code (Tx rollback
  // after a crash) must run to completion on its own thread, and AbortRun
  // must not be thrown across it.
  if (std::uncaught_exceptions() > 0) return;
  std::unique_lock<std::mutex> lk(mu_);
  ++points_[static_cast<unsigned>(point)];
  if (opts_.sink != nullptr)
    opts_.sink->sched_point(static_cast<unsigned>(point), ctx.id());
  if (abort_) throw AbortRun{};
  const unsigned self = ctx.id();
  const unsigned next = decide(self, point);
  if (next == kNobody) throw AbortRun{};  // unreachable: self is runnable
  if (next != self) {
    grant(next);
    wait_for_token(lk, self);
    if (abort_) throw AbortRun{};
  }
}

void Interleaver::lock(sim::ThreadCtx& ctx, const void* id) {
  if (std::uncaught_exceptions() > 0) return;  // cleanup never blocks
  std::unique_lock<std::mutex> lk(mu_);
  ++points_[static_cast<unsigned>(sim::SchedPoint::kLockAcquire)];
  if (opts_.sink != nullptr)
    opts_.sink->sched_point(
        static_cast<unsigned>(sim::SchedPoint::kLockAcquire), ctx.id());
  if (abort_) throw AbortRun{};
  const unsigned self = ctx.id();
  // Acquisition is a decision point even when uncontended: whether the
  // caller keeps running into its critical section is up to the policy.
  const unsigned next = decide(self, sim::SchedPoint::kLockAcquire);
  if (next != kNobody && next != self) {
    grant(next);
    wait_for_token(lk, self);
    if (abort_) throw AbortRun{};
  }
  while (lock_owner_.count(id) != 0) {
    state_[self] = TState::kBlocked;
    blocked_on_[self] = id;
    const unsigned n2 =
        decide(SchedulePolicy::kNone, sim::SchedPoint::kLockAcquire);
    if (n2 == kNobody)
      grant_next_for_abort();  // deadlock: wake threads one by one to unwind
    else
      grant(n2);
    wait_for_token(lk, self);
    if (abort_) throw AbortRun{};
    // unlock() marked us ready before we could be granted; another woken
    // waiter may have re-taken the lock first, so re-check.
  }
  lock_owner_[id] = self;
}

void Interleaver::unlock(sim::ThreadCtx& ctx, const void* id) {
  std::unique_lock<std::mutex> lk(mu_);
  ++points_[static_cast<unsigned>(sim::SchedPoint::kLockRelease)];
  if (opts_.sink != nullptr)
    opts_.sink->sched_point(
        static_cast<unsigned>(sim::SchedPoint::kLockRelease), ctx.id());
  const unsigned self = ctx.id();
  const auto it = lock_owner_.find(id);
  if (it == lock_owner_.end()) return;  // lock() was a no-op mid-unwind
  assert(it->second == self);
  (void)self;
  lock_owner_.erase(it);
  for (unsigned j = 0; j < state_.size(); ++j) {
    if (state_[j] == TState::kBlocked && blocked_on_[j] == id) {
      state_[j] = TState::kReady;
      blocked_on_[j] = nullptr;
    }
  }
  // Releases on cleanup paths and aborting runs schedule nothing — this
  // is reached from destructors (SchedLockGuard), where an AbortRun may
  // only be raised when no other exception is in flight.
  if (std::uncaught_exceptions() > 0 || abort_) return;
  const unsigned next = decide(self, sim::SchedPoint::kLockRelease);
  if (next != kNobody && next != self) {
    grant(next);
    wait_for_token(lk, self);
    if (abort_) throw AbortRun{};
  }
}

}  // namespace xp::schedmc
