#include "schedmc/history.h"

#include <cassert>
#include <unordered_set>

namespace xp::schedmc {

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kPut: return "put";
    case OpKind::kGet: return "get";
    case OpKind::kDel: return "del";
    case OpKind::kRmw: return "rmw";
    case OpKind::kRename: return "rename";
  }
  return "?";
}

std::size_t History::invoke(unsigned thread, OpKind kind, std::string key,
                            std::string wval, std::string key2) {
  Op op;
  op.thread = thread;
  op.kind = kind;
  op.key = std::move(key);
  op.key2 = std::move(key2);
  op.wval = std::move(wval);
  op.invoke_seq = seq_++;
  op.response_seq = kPendingSeq;
  ops_.push_back(std::move(op));
  return ops_.size() - 1;
}

void History::stage_write(std::size_t id, bool found, std::string observed,
                          std::string wval) {
  Op& op = ops_[id];
  op.staged = true;
  op.found = found;
  op.check_found = true;
  op.rval = std::move(observed);
  op.wval = std::move(wval);
}

void History::stage_write(std::size_t id) { ops_[id].staged = true; }

void History::respond(std::size_t id) { ops_[id].response_seq = seq_++; }

void History::respond(std::size_t id, bool found, std::string rval) {
  Op& op = ops_[id];
  op.response_seq = seq_++;
  op.found = found;
  op.check_found = true;
  if (!rval.empty() || op.kind == OpKind::kGet) op.rval = std::move(rval);
}

void History::set_group(std::size_t id, std::uint64_t group) {
  ops_[id].group = group;
}

void History::mark_must_include(std::size_t id) {
  ops_[id].must_include = true;
}

void History::clear() {
  seq_ = 0;
  ops_.clear();
}

namespace {

using State = std::map<std::string, std::string>;

std::uint64_t hash_state(const State& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](const std::string& str) {
    for (const char c : str) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    h ^= 0xff;
    h *= 0x100000001b3ULL;
  };
  for (const auto& [k, v] : s) {
    mix(k);
    mix(v);
  }
  return h;
}

// Apply op semantics to `state`. Returns false (state unchanged) when the
// op's recorded observation contradicts the state it would linearize in.
bool apply(const Op& op, State& state) {
  const auto it = state.find(op.key);
  const bool present = it != state.end();
  switch (op.kind) {
    case OpKind::kPut:
      state[op.key] = op.wval;
      return true;
    case OpKind::kDel:
      if (op.check_found && op.completed() && op.found != present)
        return false;
      if (present) state.erase(it);
      return true;
    case OpKind::kGet:
      if (op.found != present) return false;
      if (present && op.rval != it->second) return false;
      return true;
    case OpKind::kRmw:
      // The observed (found, rval) pair was recorded at the stage point,
      // so it constrains staged-but-unacked ops too.
      if (op.check_found) {
        if (op.found != present) return false;
        if (present && op.rval != it->second) return false;
      }
      state[op.key] = op.wval;
      return true;
    case OpKind::kRename:
      if (op.check_found && op.completed() && op.found != present)
        return false;
      if (present) {
        std::string v = std::move(it->second);
        state.erase(it);
        state[op.key2] = std::move(v);
      }
      return true;
  }
  return false;
}

struct Search {
  const std::vector<Op>& ops;
  const State* final_state;
  std::vector<bool> includable;
  std::vector<bool> must;
  std::uint64_t must_mask = 0;
  std::map<std::uint64_t, unsigned> group_size;
  std::unordered_set<std::uint64_t> seen;
  std::uint64_t states = 0;

  bool groups_whole(std::uint64_t lin) const {
    std::map<std::uint64_t, unsigned> in;
    for (std::size_t i = 0; i < ops.size(); ++i)
      if ((lin >> i) & 1 && ops[i].group != 0) ++in[ops[i].group];
    for (const auto& [g, n] : in)
      if (n != group_size.at(g)) return false;
    return true;
  }

  bool accepted(std::uint64_t lin, const State& state) const {
    if ((lin & must_mask) != must_mask) return false;
    if (!groups_whole(lin)) return false;
    if (final_state != nullptr && state != *final_state) return false;
    return true;
  }

  bool dfs(std::uint64_t lin, std::uint64_t dropped, const State& state) {
    ++states;
    if (accepted(lin, state)) return true;
    const std::uint64_t key =
        hash_state(state) ^ (lin * 0x9e3779b97f4a7c15ULL) ^
        (dropped * 0xc2b2ae3d27d4eb4fULL);
    if (!seen.insert(key).second) return false;

    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (((lin | dropped) >> i) & 1) continue;
      if (!includable[i]) continue;
      // Real time: an undecided MUST op that responded before op i was
      // invoked has to linearize first, so i is not yet eligible.
      bool blocked = false;
      for (std::size_t j = 0; j < ops.size() && !blocked; ++j) {
        if (j == i || ((lin >> j) & 1)) continue;
        if (must[j] && ops[j].response_seq < ops[i].invoke_seq)
          blocked = true;
      }
      if (blocked) continue;

      State next = state;
      if (!apply(ops[i], next)) continue;

      // Linearizing i commits every optional op that responded before i
      // invoked to exclusion — it can no longer appear after i.
      std::uint64_t ndropped = dropped;
      for (std::size_t j = 0; j < ops.size(); ++j) {
        if (j == i || (((lin | ndropped) >> j) & 1)) continue;
        if (ops[j].response_seq < ops[i].invoke_seq)
          ndropped |= std::uint64_t{1} << j;
      }
      if (dfs(lin | (std::uint64_t{1} << i), ndropped, next)) return true;
    }
    return false;
  }
};

}  // namespace

CheckResult check_history(const std::vector<Op>& ops,
                          const std::map<std::string, std::string>* final_state,
                          bool crashed,
                          const std::map<std::string, std::string>* initial) {
  CheckResult res;
  if (ops.size() > 64) {
    res.detail = "history too long for the 64-op mask (got " +
                 std::to_string(ops.size()) + ")";
    return res;
  }
  if (crashed && final_state == nullptr) {
    res.detail = "crash-mode check requires the recovered state";
    return res;
  }

  Search s{ops, final_state, {}, {}, 0, {}, {}, 0};
  s.includable.resize(ops.size());
  s.must.resize(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (crashed) {
      s.includable[i] = ops[i].staged || ops[i].completed();
      s.must[i] = ops[i].must_include;
    } else {
      s.includable[i] = ops[i].completed();
      s.must[i] = ops[i].completed();
    }
    if (s.must[i]) s.must_mask |= std::uint64_t{1} << i;
    if (ops[i].group != 0 && s.includable[i]) ++s.group_size[ops[i].group];
  }

  const State empty;
  const bool ok = s.dfs(0, 0, initial != nullptr ? *initial : empty);
  res.ok = ok;
  res.states_explored = s.states;
  if (!ok)
    res.detail = (crashed ? "no linearizable prefix explains the recovered "
                            "state\n"
                          : "history is not linearizable\n") +
                 format_history(ops);
  return res;
}

std::string format_history(const std::vector<Op>& ops) {
  std::string out;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    out += "  #" + std::to_string(i) + " t" + std::to_string(op.thread) +
           ' ' + op_kind_name(op.kind) + '(' + op.key;
    if (!op.key2.empty()) out += "->" + op.key2;
    if (op.kind == OpKind::kPut || op.kind == OpKind::kRmw)
      out += "=" + op.wval;
    out += ')';
    if (op.check_found)
      out += op.found ? (" saw=" + op.rval) : " saw=absent";
    out += " [" + std::to_string(op.invoke_seq) + ',';
    out += op.completed() ? std::to_string(op.response_seq) : "pending";
    out += ']';
    if (op.staged) out += " staged";
    if (op.must_include) out += " durable";
    if (op.group != 0) out += " g" + std::to_string(op.group);
    out += '\n';
  }
  return out;
}

}  // namespace xp::schedmc
