// Concurrent-history recording and a linearizability oracle (schedmc).
//
// Workload threads running under the schedmc interleaver record every
// store operation (invoke -> optional write-stage -> response) into a
// History. The checker then searches for a sequential order of the
// recorded operations that (a) respects real time — an operation that
// responded before another was invoked must come first — and (b) is
// legal against a sequential map: every get sees exactly the latest
// included put, every read-modify-write observes the value it will
// overwrite, renames move exactly one binding. This is the Wing & Gong
// linearizability search with Lowe-style memoization on (decided-set,
// state) pairs.
//
// Crash mode extends the search to durability: operations whose
// durability was acknowledged before the crash MUST appear; operations
// that had reached their write phase (staged) MAY appear; everything
// else is excluded. Group-commit windows are all-or-nothing: either a
// whole window of ops linearizes or none of it does. The linearized
// history must additionally reproduce the post-recovery state exactly —
// i.e. recovery yields a linearizable prefix of the concurrent history.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace xp::schedmc {

enum class OpKind : unsigned char { kPut, kGet, kDel, kRmw, kRename };

const char* op_kind_name(OpKind k);

struct Op {
  unsigned thread = 0;
  OpKind kind = OpKind::kPut;
  std::string key;
  std::string key2;  // rename destination
  std::string wval;  // value written (put: at invoke; rmw: at stage)
  std::string rval;  // value observed (get/rmw response)
  // get/rmw: key existed; del/rename: the op took effect. Only checked
  // when `check_found` (a del that does not report hit/miss leaves it
  // false).
  bool found = false;
  bool check_found = false;
  // The op reached its write phase: its effect may be durable even
  // without a recorded response (crash mode may-include).
  bool staged = false;
  // Durability acknowledged (crash mode must-include). Reads are marked
  // at response: a completed observation must be explained.
  bool must_include = false;
  // Group-commit window: ops sharing a nonzero group linearize
  // all-or-nothing in crash mode. 0 = the op is its own group.
  std::uint64_t group = 0;
  std::uint64_t invoke_seq = 0;
  std::uint64_t response_seq = 0;  // kPendingSeq until respond()
  bool completed() const;
};

inline constexpr std::uint64_t kPendingSeq = ~std::uint64_t{0};
inline bool Op::completed() const { return response_seq != kPendingSeq; }

// Records one concurrent run. Not thread-safe by itself — the schedmc
// interleaver strictly serializes the logical threads that call it.
class History {
 public:
  // Begin an operation; returns its id. `wval` is the value a put will
  // write (rmw values arrive at stage_write).
  std::size_t invoke(unsigned thread, OpKind kind, std::string key,
                     std::string wval = std::string(),
                     std::string key2 = std::string());

  // A read-modify-write records what it observed and what it is about to
  // write, BEFORE issuing the write — so a crash mid-write leaves an op
  // the checker may include.
  void stage_write(std::size_t id, bool found, std::string observed,
                   std::string wval);
  // A blind write (put/del/rename) reached its write phase.
  void stage_write(std::size_t id);

  void respond(std::size_t id);  // put (durability via mark_must_include)
  void respond(std::size_t id, bool found,
               std::string rval = std::string());  // get/del/rename/rmw

  void set_group(std::size_t id, std::uint64_t group);
  void mark_must_include(std::size_t id);

  const std::vector<Op>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }
  void clear();

 private:
  std::uint64_t seq_ = 0;
  std::vector<Op> ops_;
};

struct CheckResult {
  bool ok = false;
  std::string detail;  // why the search failed (empty on success)
  std::uint64_t states_explored = 0;
};

// Search for a linearization of `ops`.
//
// Live mode (crashed = false): every op completed (pending ops are
// excluded); all completed ops must linearize; if `final_state` is
// non-null the full linearization must end in exactly that state.
//
// Crash mode (crashed = true): must_include ops must linearize; staged
// or completed ops may; groups are all-or-nothing; the linearization
// must end in exactly `*final_state` (the recovered state; required).
//
// `initial_state` seeds the sequential map (empty when null).
CheckResult check_history(
    const std::vector<Op>& ops,
    const std::map<std::string, std::string>* final_state, bool crashed,
    const std::map<std::string, std::string>* initial_state = nullptr);

// Human-readable dump for failure messages.
std::string format_history(const std::vector<Op>& ops);

}  // namespace xp::schedmc
