// Deterministic thread interleaving for the schedule explorer (schedmc).
//
// The Interleaver runs each logical sim::ThreadCtx on its own host
// thread, strictly serialized by a run token: exactly one thread is
// runnable at any instant, and every handoff goes through one mutex, so
// the execution is data-race-free by construction (TSan-clean) and the
// interleaving is decided entirely by a SchedulePolicy. At every
// announced sim::SchedPoint (fence retirement, lock acquire/release,
// batch commit, lane admission, ...) the policy picks the next thread
// from the runnable set; because the decision depends only on the
// policy's seed and the yield sequence, the same (policy, workload)
// pair always reproduces the same schedule — the determinism the
// explorer's replay-based search relies on.
//
// SchedLock acquisition is a blocking decision: the hook parks the
// caller while another thread owns the lock and wakes it when the owner
// releases, so mutual exclusion is real under exploration while
// remaining free on production paths (no hook installed).
//
// Aborts: when a crash fires (hw::CrashPointHit), a deadlock is
// detected, or a thread dies on an unexpected exception, the run aborts.
// Every other thread receives AbortRun at its next yield — but never
// while it is already unwinding an exception (yields during unwinding
// return immediately and schedule nothing), so destructor-driven
// cleanup (Tx rollback against the frozen platform) stays safe.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/scheduler.h"
#include "xpsim/telemetry_sink.h"

namespace xp::hw {
class Platform;
}

namespace xp::schedmc {

// Thrown into logical threads to unwind an aborted run. Not derived from
// std::exception on purpose: workload code that catches std::exception
// must not swallow it.
struct AbortRun {};

// Picks the next thread at every yield point. Implementations must be
// pure functions of (construction seed, call sequence) — no host
// entropy — so a schedule replays exactly.
class SchedulePolicy {
 public:
  static constexpr unsigned kNone = ~0u;

  virtual ~SchedulePolicy() = default;

  // `current` is the thread that just yielded (kNone when it blocked,
  // finished, or the run is starting). `runnable` is non-empty and
  // sorted ascending. `decision` counts prior decisions this run.
  // Must return a member of `runnable`.
  virtual unsigned pick(unsigned current, const std::vector<unsigned>& runnable,
                        std::uint64_t decision, sim::SchedPoint point) = 0;
};

// PCT-style random-priority scheduling (Burckhardt et al.): each thread
// gets a distinct random priority; the highest-priority runnable thread
// always runs; at `depth`-1 pre-chosen decision indices the current
// thread's priority drops below all others. Depth d probabilistically
// covers every bug of preemption depth < d.
class PctPolicy final : public SchedulePolicy {
 public:
  PctPolicy(std::uint64_t seed, unsigned nthreads, unsigned depth,
            std::uint64_t horizon);

  unsigned pick(unsigned current, const std::vector<unsigned>& runnable,
                std::uint64_t decision, sim::SchedPoint point) override;

 private:
  std::vector<int> prio_;
  std::vector<std::uint64_t> change_points_;  // sorted decision indices
  int next_low_;
};

// Replays a recorded decision prefix, then runs non-preemptively (keep
// the current thread whenever it is runnable). The explorer's
// preemption-bounded DFS branches by extending prefixes.
class ReplayPolicy final : public SchedulePolicy {
 public:
  explicit ReplayPolicy(std::vector<unsigned> prefix)
      : prefix_(std::move(prefix)) {}

  unsigned pick(unsigned current, const std::vector<unsigned>& runnable,
                std::uint64_t decision, sim::SchedPoint point) override;

 private:
  std::vector<unsigned> prefix_;
};

struct ThreadSpec {
  sim::ThreadCtx::Options opts;
  std::function<void(sim::ThreadCtx&)> body;
};

class Interleaver final : public sim::SchedHook {
 public:
  struct Options {
    // Adopt this platform's debug image-owner latch on every token
    // handoff (required whenever the bodies touch a Platform).
    hw::Platform* platform = nullptr;
    hw::TelemetrySink* sink = nullptr;  // schedule-point counters
    std::uint64_t max_decisions = std::uint64_t{1} << 20;  // runaway guard
    // Record the runnable set for the first N decisions (DFS branching).
    std::size_t record_runnable = 512;
  };

  struct RunResult {
    std::vector<unsigned> trace;  // decision sequence (replayable)
    std::vector<std::vector<unsigned>> runnable_at;  // per early decision
    std::uint64_t signature = 0;  // hash of (thread, point) decisions
    std::uint64_t decisions = 0;
    std::uint64_t preemptions = 0;
    std::array<std::uint64_t, sim::kNumSchedPoints> points{};
    bool crashed = false;       // a CrashPointHit fired mid-run
    bool deadlocked = false;    // every live thread blocked on a SchedLock
    bool budget_exhausted = false;  // max_decisions hit; run finished serially
    std::string error;          // unexpected exception text ("" = none)
  };

  // Run the specs to completion (or abort) under `policy`. Reentrant per
  // object: each call resets all run state.
  RunResult run(const std::vector<ThreadSpec>& specs, SchedulePolicy& policy,
                const Options& opts);

  // ---- sim::SchedHook -----------------------------------------------------
  void yield(sim::ThreadCtx& ctx, sim::SchedPoint point) override;
  void lock(sim::ThreadCtx& ctx, const void* id) override;
  void unlock(sim::ThreadCtx& ctx, const void* id) override;

 private:
  enum class TState : unsigned char { kReady, kBlocked, kDone };
  static constexpr unsigned kNobody = ~0u;

  void thread_main(unsigned self, const std::function<void(sim::ThreadCtx&)>& body);
  // All private helpers below require mu_ held.
  unsigned decide(unsigned current, sim::SchedPoint point);
  void grant(unsigned next);
  void grant_next_for_abort();
  void wait_for_token(std::unique_lock<std::mutex>& lk, unsigned self);
  void finish(unsigned self);
  void adopt_platform() const;

  std::mutex mu_;
  std::condition_variable cv_;
  Options opts_;
  SchedulePolicy* policy_ = nullptr;

  std::vector<std::unique_ptr<sim::ThreadCtx>> ctxs_;
  std::vector<TState> state_;
  std::vector<const void*> blocked_on_;
  std::map<const void*, unsigned> lock_owner_;
  unsigned active_ = kNobody;
  bool abort_ = false;
  bool all_done_ = false;

  std::vector<unsigned> trace_;
  std::vector<std::vector<unsigned>> runnable_at_;
  std::uint64_t signature_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t preemptions_ = 0;
  std::array<std::uint64_t, sim::kNumSchedPoints> points_{};
  bool crashed_ = false;
  bool deadlocked_ = false;
  bool budget_exhausted_ = false;
  std::string error_;
};

}  // namespace xp::schedmc
