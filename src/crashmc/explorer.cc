#include "crashmc/explorer.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "sim/rng.h"

namespace xp::crashmc {

std::vector<std::uint64_t> choose_points(std::uint64_t total,
                                         std::uint64_t max_exhaustive,
                                         std::uint64_t samples,
                                         std::uint64_t seed) {
  std::vector<std::uint64_t> points;
  if (total == 0) return points;
  if (total <= max_exhaustive || samples >= total) {
    points.resize(static_cast<std::size_t>(total));
    for (std::uint64_t k = 0; k < total; ++k) points[k] = k + 1;
    return points;
  }
  sim::Rng rng(seed * 0x9e3779b97f4a7c15ULL + total);
  std::unordered_set<std::uint64_t> seen;
  while (seen.size() < samples) seen.insert(1 + rng.uniform(total));
  points.assign(seen.begin(), seen.end());
  std::sort(points.begin(), points.end());
  return points;
}

Result explore(Target& target, const Options& opts) {
  Result r;
  const auto t0 = std::chrono::steady_clock::now();

  // Baseline: a crash-free run measures the event count and must itself
  // pass recovery (re-opening a cleanly written store is a recovery too).
  {
    hw::Platform& platform = target.reset();
    if (opts.sink) platform.attach_telemetry(opts.sink);
    const std::uint64_t before = platform.persist_events();
    target.run();
    r.total_events = platform.persist_events() - before;
    platform.reset_timing();
    ++r.points_explored;
    if (std::string err = target.recover_and_check(); !err.empty())
      r.violations.push_back({0, "crash-free run: " + err});
  }

  if (opts.keep_going || r.violations.empty()) {
    for (const std::uint64_t k :
         choose_points(r.total_events, opts.max_exhaustive, opts.samples,
                       opts.seed)) {
      hw::Platform& platform = target.reset();
      if (opts.sink) platform.attach_telemetry(opts.sink);
      platform.crash_after(k);
      try {
        target.run();
      } catch (const hw::CrashPointHit&) {
      }
      if (platform.crash_fired()) ++r.crashes_fired;
      platform.clear_crash_trigger();
      platform.reset_timing();
      ++r.points_explored;
      if (std::string err = target.recover_and_check(); !err.empty()) {
        r.violations.push_back({k, err});
        if (!opts.keep_going) break;
      }
    }
  }

  r.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  return r;
}

}  // namespace xp::crashmc
