#include "crashmc/workloads.h"

#include <cstring>
#include <map>
#include <set>
#include <string>

#include "lsmkv/db.h"
#include "novafs/novafs.h"
#include "pmemkv/cmap.h"
#include "pmemkv/stree.h"
#include "pmemlib/pmem_ops.h"
#include "pmemlib/pool.h"
#include "sim/rng.h"
#include "workload/shard.h"
#include "xpsim/fault.h"

namespace xp::crashmc {

namespace {

sim::ThreadCtx make_thread(unsigned id) {
  return sim::ThreadCtx({.id = id, .socket = 0, .mlp = 8, .seed = id + 1});
}

// ------------------------------------------------------------- pmemlib --

// Versioned-slot workload: each thread owns half of the root's slots and
// bumps two of them per transaction (with allocator churn in the same
// tx). Slot s at version v holds encode(s, v), so recovery can verify
// both the version window [acked, attempted] and the exact bytes.
class PmemlibTarget final : public Target {
 public:
  explicit PmemlibTarget(bool inject) : inject_(inject) {}

  std::string name() const override {
    return inject_ ? "pmemlib-faulty" : "pmemlib";
  }

  hw::Platform& reset() override {
    platform_ = std::make_unique<hw::Platform>();
    ns_ = &platform_->optane(8 << 20);
    sim::ThreadCtx ctx = make_thread(0);
    pmem::Pool pool(*ns_);
    pool.create(ctx, kSlots * 8);
    root_ = pool.root(ctx);
    for (unsigned s = 0; s < kSlots; ++s) {
      pmem::store_persist_pod(ctx, *ns_, root_ + s * 8, encode(s, 0));
      acked_[s] = attempted_[s] = 0;
    }
    platform_->reset_timing();
    return *platform_;
  }

  hw::PmemNamespace& nspace() override { return *ns_; }

  void run() override {
    pmem::Pool pool(*ns_);
    if (inject_) pool.set_test_fault(pmem::Pool::TestFault::kSkipCommitFlush);
    sim::ThreadCtx ta = make_thread(0);  // lane 0, slots [0, kSlots/2)
    sim::ThreadCtx tb = make_thread(1);  // lane 1, slots [kSlots/2, kSlots)
    sim::Rng rng(7);
    std::uint64_t held_a = 0, held_b = 0;
    const unsigned rounds = inject_ ? 3 : 5;
    for (unsigned r = 1; r <= rounds; ++r) {
      do_round(pool, ta, 0, r, held_a, rng);
      do_round(pool, tb, kSlots / 2, r, held_b, rng);
    }
  }

  std::string recover_and_check() override {
    sim::ThreadCtx ctx = make_thread(5);
    pmem::Pool pool(*ns_);
    if (!pool.open(ctx)) return "open() found no valid pool";
    if (Status st = pool.check(ctx); !st.ok()) return st.to_string();
    for (unsigned s = 0; s < kSlots; ++s) {
      const auto v = ns_->load_pod<std::uint64_t>(ctx, root_ + s * 8);
      if (v != encode(s, acked_[s]) && v != encode(s, attempted_[s]))
        return "slot " + std::to_string(s) + ": recovered " +
               std::to_string(v) + ", want version " +
               std::to_string(acked_[s]) + " or " +
               std::to_string(attempted_[s]);
    }
    return "";
  }

  std::string repair_and_check() override {
    sim::ThreadCtx ctx = make_thread(5);
    pmem::Pool pool(*ns_);
    // Both header copies gone is a typed, reported total loss — only
    // *silent* corruption violates the containment contract.
    if (!pool.open(ctx)) return "";
    pool.repair(ctx);
    if (Status st = pool.check(ctx); !st.ok()) return st.to_string();
    const bool reported = pool.recovery().damaged();
    for (unsigned s = 0; s < kSlots; ++s) {
      const auto v = ns_->load_pod<std::uint64_t>(ctx, root_ + s * 8);
      if (v == encode(s, acked_[s]) || v == encode(s, attempted_[s]))
        continue;
      // Off the crash-consistent window: allowed only as *reported* media
      // loss, and only to a value the slot actually held (or scrub zeros)
      // — anything else is silent corruption.
      bool historical = v == 0;
      for (std::uint64_t q = 0; q <= attempted_[s] && !historical; ++q)
        historical = v == encode(s, q);
      if (!reported || !historical)
        return "slot " + std::to_string(s) + ": silent corruption (holds " +
               std::to_string(v) + ", damage reported: " +
               (reported ? "yes" : "no") + ")";
    }
    return "";
  }

 private:
  static constexpr unsigned kSlots = 16;

  static std::uint64_t encode(unsigned slot, std::uint64_t seq) {
    return (static_cast<std::uint64_t>(slot) << 32) | seq;
  }

  void do_round(pmem::Pool& pool, sim::ThreadCtx& ctx, unsigned base,
                std::uint64_t seq, std::uint64_t& held, sim::Rng& rng) {
    const unsigned s1 = base + static_cast<unsigned>(rng.uniform(kSlots / 2));
    unsigned s2 = base + static_cast<unsigned>(rng.uniform(kSlots / 2));
    if (s2 == s1) s2 = base + (s1 - base + 1) % (kSlots / 2);

    attempted_[s1] = seq;
    attempted_[s2] = seq;
    pmem::Tx tx(pool, ctx);
    for (unsigned s : {s1, s2}) {
      tx.add(root_ + s * 8, 8);
      const std::uint64_t v = encode(s, seq);
      tx.store(root_ + s * 8,
               std::span<const std::uint8_t>(
                   reinterpret_cast<const std::uint8_t*>(&v), 8));
    }
    // Allocator churn: free last round's block, grab a new one.
    if (held != 0) pool.tx_free(tx, held, 64);
    held = pool.tx_alloc(tx, 64 + 64 * rng.uniform(3));
    tx.commit();
    acked_[s1] = seq;
    acked_[s2] = seq;
  }

  bool inject_;
  std::unique_ptr<hw::Platform> platform_;
  hw::PmemNamespace* ns_ = nullptr;
  std::uint64_t root_ = 0;
  std::uint64_t acked_[kSlots] = {};
  std::uint64_t attempted_[kSlots] = {};
};

// --------------------------------------------------------------- lsmkv --

// Every operation is WAL-synced before it returns, so the recovered
// logical state (over the whole key universe) must byte-match the state
// before or after the single in-flight operation. Small memtable and a
// low L0 trigger pull flushes and a compaction into the crash window.
class LsmkvTarget final : public Target {
 public:
  LsmkvTarget(kv::WalMode mode, bool wal_checksum, bool group_commit)
      : mode_(mode), wal_checksum_(wal_checksum),
        group_commit_(group_commit) {}

  std::string name() const override {
    std::string n = mode_ == kv::WalMode::kPosix ? "lsmkv-posix"
                                                 : "lsmkv-flex";
    if (group_commit_) n += "-group";
    return n;
  }

  hw::Platform& reset() override {
    platform_ = std::make_unique<hw::Platform>();
    ns_ = &platform_->optane(32 << 20);
    opts_ = kv::DbOptions{};
    opts_.wal = mode_;
    opts_.wal_checksum = wal_checksum_;
    opts_.memtable = kv::MemtableMode::kVolatile;
    opts_.wal_capacity = 1 << 20;
    opts_.memtable_bytes = 512;
    opts_.l0_compaction_trigger = 2;
    opts_.sync_every_op = true;
    opts_.wal_group_commit = group_commit_;
    db_ = std::make_unique<kv::Db>(*ns_, opts_);
    sim::ThreadCtx ctx = make_thread(0);
    db_->create(ctx);
    prev_.clear();
    cur_.clear();
    history_.clear();
    platform_->reset_timing();
    return *platform_;
  }

  hw::PmemNamespace& nspace() override { return *ns_; }

  void run() override {
    sim::ThreadCtx ctx = make_thread(0);
    sim::Rng rng(11);
    if (group_commit_) {
      // Batched mode: the acknowledged unit is a put_batch group. A crash
      // anywhere inside the group must roll back to the previous group
      // boundary — the group appears atomically or not at all — so the
      // model state advances a whole batch at a time. Groups coalesce
      // several records into one persist burst, so run 2x the ops to keep
      // the crash-point count comparable to the per-record target.
      const unsigned ops = 2 * kOps;
      for (unsigned op = 0; op < ops;) {
        const unsigned batch = std::min<unsigned>(
            ops - op, 1 + static_cast<unsigned>(rng.uniform(3)));
        prev_ = cur_;
        std::vector<std::string> keys(batch), vals(batch);
        std::vector<kv::WalRecord> recs(batch);
        for (unsigned i = 0; i < batch; ++i, ++op) {
          keys[i] = "key" + std::to_string(rng.uniform(kKeys));
          if (rng.uniform(4) == 0 && cur_.count(keys[i]) != 0) {
            cur_.erase(keys[i]);
            recs[i] = {keys[i], {}, /*tombstone=*/true};
          } else {
            vals[i] = keys[i] + "#" + std::to_string(op) +
                      std::string(4 + rng.uniform(16),
                                  'a' + static_cast<char>(op % 26));
            cur_[keys[i]] = vals[i];
            history_[keys[i]].insert(vals[i]);
            recs[i] = {keys[i], vals[i], false};
          }
        }
        db_->put_batch(ctx, recs);
      }
      return;
    }
    for (unsigned op = 0; op < kOps; ++op) {
      const std::string key = "key" + std::to_string(rng.uniform(kKeys));
      prev_ = cur_;
      if (rng.uniform(4) == 0 && cur_.count(key) != 0) {
        cur_.erase(key);
        db_->del(ctx, key);
      } else {
        const std::string val =
            key + "#" + std::to_string(op) +
            std::string(4 + rng.uniform(16), 'a' + static_cast<char>(op % 26));
        cur_[key] = val;
        history_[key].insert(val);
        db_->put(ctx, key, val);
      }
    }
  }

  std::string recover_and_check() override {
    sim::ThreadCtx ctx = make_thread(5);
    kv::Db db(*ns_, opts_);
    if (!db.open(ctx)) return "open() found no valid database";
    if (Status st = db.check(ctx); !st.ok()) return st.to_string();
    std::map<std::string, std::string> got;
    for (unsigned k = 0; k < kKeys; ++k) {
      const std::string key = "key" + std::to_string(k);
      std::string v;
      if (db.get(ctx, key, &v)) got[key] = v;
    }
    if (got != prev_ && got != cur_)
      return "recovered state matches neither the pre-op nor the post-op "
             "state (" +
             std::to_string(got.size()) + " live keys)";
    return "";
  }

  std::string repair_and_check() override {
    sim::ThreadCtx ctx = make_thread(5);
    kv::Db db(*ns_, opts_);
    bool opened = false;
    try {
      opened = db.open(ctx);
    } catch (const hw::MediaError&) {
      // Unreadable critical metadata even after the built-in fallbacks: a
      // typed, reported total loss — the contract forbids only *silent*
      // corruption. Nothing left to verify.
      return "";
    }
    if (!opened) return "";  // reported total loss (backup invalid too)
    db.repair(ctx);
    if (Status st = db.check(ctx); !st.ok()) return st.to_string();
    std::map<std::string, std::string> got;
    for (unsigned k = 0; k < kKeys; ++k) {
      const std::string key = "key" + std::to_string(k);
      std::string v;
      if (db.get(ctx, key, &v)) got[key] = v;
    }
    if (got == prev_ || got == cur_) return "";
    if (!db.recovery().damaged() && !db.pool().recovery().damaged())
      return "silent corruption: recovered state diverges from the pre-/"
             "post-op states with no damage reported";
    // Reported loss may drop committed records, but every surviving value
    // must be one this key actually held.
    for (const auto& [key, val] : got) {
      const auto it = history_.find(key);
      if (it == history_.end() || it->second.count(val) == 0)
        return "silent corruption: key " + key + " holds a never-written "
               "value";
    }
    return "";
  }

 private:
  static constexpr unsigned kKeys = 8;
  static constexpr unsigned kOps = 48;

  kv::WalMode mode_;
  bool wal_checksum_;
  bool group_commit_;
  std::unique_ptr<hw::Platform> platform_;
  hw::PmemNamespace* ns_ = nullptr;
  kv::DbOptions opts_;
  std::unique_ptr<kv::Db> db_;
  std::map<std::string, std::string> prev_, cur_;
  std::map<std::string, std::set<std::string>> history_;
};

// -------------------------------------------------------------- novafs --

// Single-page writes (embedded and CoW), page-aligned truncates and
// create/unlink are each committed by one atomic log append, so the
// recovered file set must byte-match the pre- or post-op state. Low
// merge/clean thresholds pull the overlay merge and the log cleaner into
// the crash window.
class NovafsTarget final : public Target {
 public:
  NovafsTarget(bool log_checksum, bool batch_appends)
      : log_checksum_(log_checksum), batch_appends_(batch_appends) {}

  std::string name() const override {
    return batch_appends_ ? "novafs-batch" : "novafs";
  }

  hw::Platform& reset() override {
    platform_ = std::make_unique<hw::Platform>();
    ns_ = &platform_->optane(8 << 20);
    opt_ = nova::NovaOptions{};
    opt_.datalog = true;
    opt_.merge_threshold = 4;
    opt_.clean_threshold = 6;
    opt_.log_checksum = log_checksum_;
    opt_.batch_log_appends = batch_appends_;
    fs_ = std::make_unique<nova::NovaFs>(*ns_, opt_);
    sim::ThreadCtx ctx = make_thread(0);
    fs_->format(ctx);
    prev_.clear();
    cur_.clear();
    platform_->reset_timing();
    return *platform_;
  }

  hw::PmemNamespace& nspace() override { return *ns_; }

  void run() override {
    sim::ThreadCtx ctx = make_thread(0);
    sim::Rng rng(13);
    const std::string names[] = {"alpha", "beta", "gamma"};
    for (unsigned op = 0; op < kOps; ++op) {
      const std::string& name = names[rng.uniform(3)];
      prev_ = cur_;
      const std::uint64_t action = rng.uniform(8);
      if (cur_.count(name) == 0) {
        // Bring the file into existence (atomic: inode + dirent append).
        cur_[name] = "";
        fs_->create(ctx, name);
      } else if (action == 0) {
        cur_.erase(name);
        fs_->unlink(ctx, name);
      } else if (action == 1) {
        const std::uint64_t new_size = rng.uniform(4) * nova::NovaFs::kPageSize;
        cur_[name].resize(new_size, '\0');
        const int ino = fs_->open(ctx, name);
        fs_->truncate(ctx, ino, new_size);
      } else if (action == 2) {
        // Full-page CoW write.
        const std::uint64_t page = rng.uniform(3);
        write_model(name, page * nova::NovaFs::kPageSize,
                    nova::NovaFs::kPageSize, static_cast<char>('A' + op % 26));
        std::vector<std::uint8_t> buf(nova::NovaFs::kPageSize,
                                      static_cast<std::uint8_t>('A' + op % 26));
        const int ino = fs_->open(ctx, name);
        fs_->write(ctx, ino, page * nova::NovaFs::kPageSize, buf);
      } else if (batch_appends_ && action == 3) {
        // Rename onto another live name. Batched, the deletion + insertion
        // dirents commit as one atomic directory-log burst, so the model
        // can move the file atomically; the per-entry path cannot promise
        // this (a crash between the dirents loses both names).
        const std::string& to = names[rng.uniform(3)];
        if (to != name) {
          cur_[to] = cur_[name];
          cur_.erase(name);
          fs_->rename(ctx, name, to);
        }
      } else if (batch_appends_ && action == 4) {
        // Write straddling a page boundary: two embedded entries, which
        // only the batched log path commits atomically (one chunk).
        const std::uint64_t page = rng.uniform(2);
        const std::uint64_t len = 200 + rng.uniform(400);
        const std::uint64_t off =
            (page + 1) * nova::NovaFs::kPageSize - len / 2;
        write_model(name, off, len, static_cast<char>('a' + op % 26));
        std::vector<std::uint8_t> buf(len,
                                      static_cast<std::uint8_t>('a' + op % 26));
        const int ino = fs_->open(ctx, name);
        fs_->write(ctx, ino, off, buf);
      } else {
        // Small write, embedded in the log; stays inside one page.
        const std::uint64_t page = rng.uniform(3);
        const std::uint64_t len = 1 + rng.uniform(400);
        const std::uint64_t in_page =
            rng.uniform(nova::NovaFs::kPageSize - len);
        write_model(name, page * nova::NovaFs::kPageSize + in_page, len,
                    static_cast<char>('a' + op % 26));
        std::vector<std::uint8_t> buf(len,
                                      static_cast<std::uint8_t>('a' + op % 26));
        const int ino = fs_->open(ctx, name);
        fs_->write(ctx, ino, page * nova::NovaFs::kPageSize + in_page, buf);
      }
    }
  }

  std::string recover_and_check() override {
    sim::ThreadCtx ctx = make_thread(5);
    nova::NovaFs fs(*ns_, opt_);
    if (!fs.mount(ctx)) return "mount() found no valid file system";
    if (Status st = fs.fsck(ctx); !st.ok()) return st.to_string();
    std::map<std::string, std::string> got;
    for (const char* name : {"alpha", "beta", "gamma"}) {
      const int ino = fs.open(ctx, name);
      if (ino < 0) continue;
      const std::uint64_t size = fs.size(ctx, ino);
      std::string content(size, '\0');
      fs.read(ctx, ino, 0,
              std::span<std::uint8_t>(
                  reinterpret_cast<std::uint8_t*>(content.data()), size));
      got[name] = std::move(content);
    }
    if (got != prev_ && got != cur_)
      return "recovered file set matches neither the pre-op nor the "
             "post-op state";
    return "";
  }

  std::string repair_and_check() override {
    sim::ThreadCtx ctx = make_thread(5);
    nova::NovaFs fs(*ns_, opt_);
    bool mounted = false;
    try {
      mounted = fs.mount(ctx);
    } catch (const hw::MediaError&) {
      return "";  // typed, reported total loss
    }
    if (!mounted) return "";  // both superblock copies gone: reported loss
    fs.repair(ctx);
    if (Status st = fs.fsck(ctx); !st.ok()) return st.to_string();
    std::map<std::string, std::string> got;
    for (const char* name : {"alpha", "beta", "gamma"}) {
      const int ino = fs.open(ctx, name);
      if (ino < 0) continue;
      const std::uint64_t size = fs.size(ctx, ino);
      std::string content(size, '\0');
      fs.read(ctx, ino, 0,
              std::span<std::uint8_t>(
                  reinterpret_cast<std::uint8_t*>(content.data()), size));
      got[name] = std::move(content);
    }
    if (got == prev_ || got == cur_) return "";
    // Repair may legally drop overlays/log suffixes (older committed
    // bytes resurface) — but only as *reported* damage.
    if (!fs.recovery().damaged())
      return "silent corruption: recovered file set diverges from the "
             "pre-/post-op states with no damage reported";
    return "";
  }

 private:
  static constexpr unsigned kOps = 28;

  void write_model(const std::string& name, std::uint64_t off,
                   std::uint64_t len, char fill) {
    std::string& content = cur_[name];
    if (content.size() < off + len) content.resize(off + len, '\0');
    std::memset(content.data() + off, fill, len);
  }

  bool log_checksum_;
  bool batch_appends_;
  std::unique_ptr<hw::Platform> platform_;
  hw::PmemNamespace* ns_ = nullptr;
  nova::NovaOptions opt_;
  std::unique_ptr<nova::NovaFs> fs_;
  std::map<std::string, std::string> prev_, cur_;
};

// ---------------------------------------------------------------- cmap --

// Values stay short enough (header + key + value inside one 64 B line)
// that the in-place update path is a single-line atomic persist; length
// changes exercise the transactional insert path and removes the
// transactional unlink. Recovered state is pre- or post-op.
class CmapTarget final : public Target {
 public:
  std::string name() const override { return "pmemkv-cmap"; }

  hw::Platform& reset() override {
    platform_ = std::make_unique<hw::Platform>();
    ns_ = &platform_->optane(8 << 20);
    pool_ = std::make_unique<pmem::Pool>(*ns_);
    sim::ThreadCtx ctx = make_thread(0);
    pool_->create(ctx, 64);
    map_ = std::make_unique<pmemkv::CMap>(*pool_);
    map_->create(ctx);
    prev_.clear();
    cur_.clear();
    history_.clear();
    platform_->reset_timing();
    return *platform_;
  }

  hw::PmemNamespace& nspace() override { return *ns_; }

  void run() override {
    sim::ThreadCtx ctx = make_thread(0);
    sim::Rng rng(17);
    for (unsigned op = 0; op < kOps; ++op) {
      const std::string key = "k" + std::to_string(rng.uniform(kKeys));
      prev_ = cur_;
      if (rng.uniform(5) == 0 && cur_.count(key) != 0) {
        cur_.erase(key);
        map_->remove(ctx, key);
      } else {
        // Two sizes: matching size -> in-place update, differing size ->
        // transactional replace.
        const std::size_t len = rng.uniform(2) == 0 ? 8 : 24;
        std::string val = key + "#" + std::to_string(op);
        val.resize(len, 'x');
        cur_[key] = val;
        history_[key].insert(val);
        map_->put(ctx, key, val);
      }
    }
  }

  std::string recover_and_check() override {
    sim::ThreadCtx ctx = make_thread(5);
    pmem::Pool pool(*ns_);
    if (!pool.open(ctx)) return "open() found no valid pool";
    if (Status st = pool.check(ctx); !st.ok()) return st.to_string();
    pmemkv::CMap map(pool);
    map.open(ctx);
    if (Status st = map.check(ctx); !st.ok()) return st.to_string();
    std::map<std::string, std::string> got;
    for (unsigned k = 0; k < kKeys; ++k) {
      const std::string key = "k" + std::to_string(k);
      std::string v;
      if (map.get(ctx, key, &v)) got[key] = v;
    }
    if (got != prev_ && got != cur_)
      return "recovered map matches neither the pre-op nor the post-op "
             "state";
    return "";
  }

  std::string repair_and_check() override {
    sim::ThreadCtx ctx = make_thread(5);
    pmem::Pool pool(*ns_);
    if (!pool.open(ctx)) return "";  // reported total loss
    pmemkv::CMap map(pool);
    try {
      map.open(ctx);
    } catch (const hw::MediaError&) {
      // The root pointer to the bucket table is gone: reported total
      // loss. Scrub so the namespace is at least readable again.
      pool.repair(ctx);
      return "";
    }
    map.repair(ctx);   // quarantine chain damage, then scrub
    pool.repair(ctx);  // revalidate the free list over the scrubbed lines
    if (Status st = pool.check(ctx); !st.ok()) return st.to_string();
    if (Status st = map.check(ctx); !st.ok()) return st.to_string();
    std::map<std::string, std::string> got;
    for (unsigned k = 0; k < kKeys; ++k) {
      const std::string key = "k" + std::to_string(k);
      std::string v;
      if (map.get(ctx, key, &v)) got[key] = v;
    }
    if (got == prev_ || got == cur_) return "";
    if (!map.recovery().damaged() && !pool.recovery().damaged())
      return "silent corruption: recovered map diverges from the pre-/"
             "post-op states with no damage reported";
    for (const auto& [key, val] : got) {
      const auto it = history_.find(key);
      if (it == history_.end() || it->second.count(val) == 0)
        return "silent corruption: key " + key + " holds a never-written "
               "value";
    }
    return "";
  }

 private:
  static constexpr unsigned kKeys = 12;
  static constexpr unsigned kOps = 40;

  std::unique_ptr<hw::Platform> platform_;
  hw::PmemNamespace* ns_ = nullptr;
  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<pmemkv::CMap> map_;
  std::map<std::string, std::string> prev_, cur_;
  std::map<std::string, std::set<std::string>> history_;
};

// --------------------------------------------------------------- stree --

// Enough keys to force leaf splits (transactional); inserts commit via
// the bitmap persist, updates via the val_off persist, removes via the
// bitmap persist — all atomic, so recovered state is pre- or post-op.
class StreeTarget final : public Target {
 public:
  std::string name() const override { return "pmemkv-stree"; }

  hw::Platform& reset() override {
    platform_ = std::make_unique<hw::Platform>();
    ns_ = &platform_->optane(8 << 20);
    pool_ = std::make_unique<pmem::Pool>(*ns_);
    sim::ThreadCtx ctx = make_thread(0);
    pool_->create(ctx, 64);
    tree_ = std::make_unique<pmemkv::STree>(*pool_);
    tree_->create(ctx);
    prev_.clear();
    cur_.clear();
    history_.clear();
    platform_->reset_timing();
    return *platform_;
  }

  hw::PmemNamespace& nspace() override { return *ns_; }

  void run() override {
    sim::ThreadCtx ctx = make_thread(0);
    sim::Rng rng(19);
    for (unsigned op = 0; op < kOps; ++op) {
      char key[8];
      std::snprintf(key, sizeof(key), "key%02u",
                    static_cast<unsigned>(rng.uniform(kKeys)));
      prev_ = cur_;
      if (rng.uniform(6) == 0 && cur_.count(key) != 0) {
        cur_.erase(key);
        tree_->remove(ctx, key);
      } else {
        const std::string val =
            std::string(key) + "=" + std::to_string(op) +
            std::string(rng.uniform(12), 'v');
        cur_[key] = val;
        history_[key].insert(val);
        tree_->put(ctx, key, val);
      }
    }
  }

  std::string recover_and_check() override {
    sim::ThreadCtx ctx = make_thread(5);
    pmem::Pool pool(*ns_);
    if (!pool.open(ctx)) return "open() found no valid pool";
    if (Status st = pool.check(ctx); !st.ok()) return st.to_string();
    pmemkv::STree tree(pool);
    tree.open(ctx);
    if (Status st = tree.check(ctx); !st.ok()) return st.to_string();
    std::map<std::string, std::string> got;
    for (unsigned k = 0; k < kKeys; ++k) {
      char key[8];
      std::snprintf(key, sizeof(key), "key%02u", k);
      std::string v;
      if (tree.get(ctx, key, &v)) got[key] = v;
    }
    if (got != prev_ && got != cur_)
      return "recovered tree matches neither the pre-op nor the post-op "
             "state";
    return "";
  }

  std::string repair_and_check() override {
    sim::ThreadCtx ctx = make_thread(5);
    pmem::Pool pool(*ns_);
    if (!pool.open(ctx)) return "";  // reported total loss
    pmemkv::STree tree(pool);
    try {
      tree.open(ctx);
    } catch (const hw::MediaError&) {
      // repair() below copes with a half-built index (it re-reads the
      // root via the durable image once the damage is mapped).
    }
    tree.repair(ctx);  // quarantine chain damage, scrub, rebuild index
    pool.repair(ctx);  // revalidate the free list over the scrubbed lines
    if (Status st = pool.check(ctx); !st.ok()) return st.to_string();
    if (Status st = tree.check(ctx); !st.ok()) return st.to_string();
    std::map<std::string, std::string> got;
    for (unsigned k = 0; k < kKeys; ++k) {
      char key[8];
      std::snprintf(key, sizeof(key), "key%02u", k);
      std::string v;
      if (tree.get(ctx, key, &v)) got[key] = v;
    }
    if (got == prev_ || got == cur_) return "";
    if (!tree.recovery().damaged() && !pool.recovery().damaged())
      return "silent corruption: recovered tree diverges from the pre-/"
             "post-op states with no damage reported";
    for (const auto& [key, val] : got) {
      const auto it = history_.find(key);
      if (it == history_.end() || it->second.count(val) == 0)
        return "silent corruption: key " + key + " holds a never-written "
               "value";
    }
    return "";
  }

 private:
  static constexpr unsigned kKeys = 48;
  static constexpr unsigned kOps = 60;

  std::unique_ptr<hw::Platform> platform_;
  hw::PmemNamespace* ns_ = nullptr;
  std::unique_ptr<pmem::Pool> pool_;
  std::unique_ptr<pmemkv::STree> tree_;
  std::map<std::string, std::string> prev_, cur_;
  std::map<std::string, std::set<std::string>> history_;
};

// ------------------------------------------------------------- sharded --

// ShardedStore over two per-DIMM lsmkv shards, write-combining and
// deferred background compaction on. The workload mixes single-key
// puts/deletes, cross-shard batched dispatches, and donated compaction
// turns. Crash-atomicity is per (dispatch, shard): a shard's slice of a
// batch is one WAL group burst, but the batch does not commit across
// shards as a unit — so the model keeps per-shard pre/post states and
// recovery is checked shard by shard.
class ShardedTarget final : public Target {
 public:
  std::string name() const override { return "sharded-lsmkv"; }

  hw::Platform& reset() override {
    platform_ = std::make_unique<hw::Platform>();
    ns_ = workload::ShardedStore::make_namespaces(*platform_, kShards,
                                                  16ull << 20);
    store_ = std::make_unique<workload::ShardedStore>(ns_, shard_options());
    sim::ThreadCtx ctx = make_thread(0);
    store_->create(ctx);
    for (unsigned s = 0; s < kShards; ++s) {
      prev_[s].clear();
      cur_[s].clear();
    }
    platform_->reset_timing();
    return *platform_;
  }

  hw::PmemNamespace& nspace() override { return *ns_[0]; }

  void run() override {
    sim::ThreadCtx ctx = make_thread(0);
    sim::Rng rng(13);
    for (unsigned op = 0; op < kOps; ++op) {
      if (rng.uniform(3) == 0) {
        // Cross-shard batched dispatch: 2-4 ops, partitioned by the
        // router; each involved shard's slice commits atomically, and
        // the shard's model state advances by the whole slice.
        const unsigned n = 2 + static_cast<unsigned>(rng.uniform(3));
        std::vector<workload::BatchOp> batch;
        for (unsigned i = 0; i < n; ++i) {
          workload::BatchOp b;
          b.key = "key" + std::to_string(rng.uniform(kKeys));
          const unsigned s = workload::shard_of(b.key, kShards);
          b.del = rng.uniform(4) == 0 && cur_[s].count(b.key) != 0;
          if (!b.del)
            b.value = b.key + "#" + std::to_string(op) + "_" +
                      std::string(4 + rng.uniform(12),
                                  'a' + static_cast<char>(op % 26));
          batch.push_back(std::move(b));
        }
        bool involved[kShards] = {};
        for (const auto& b : batch)
          involved[workload::shard_of(b.key, kShards)] = true;
        for (unsigned s = 0; s < kShards; ++s)
          if (involved[s]) prev_[s] = cur_[s];
        for (const auto& b : batch) {
          const unsigned s = workload::shard_of(b.key, kShards);
          if (b.del)
            cur_[s].erase(b.key);
          else
            cur_[s][b.key] = b.value;
        }
        store_->apply_batch(ctx, batch);
      } else {
        const std::string key = "key" + std::to_string(rng.uniform(kKeys));
        const unsigned s = workload::shard_of(key, kShards);
        prev_[s] = cur_[s];
        if (rng.uniform(4) == 0 && cur_[s].count(key) != 0) {
          cur_[s].erase(key);
          store_->del(ctx, key);
        } else {
          const std::string val =
              key + "#" + std::to_string(op) +
              std::string(4 + rng.uniform(12),
                          'a' + static_cast<char>(op % 26));
          cur_[s][key] = val;
          store_->put(ctx, key, val);
        }
      }
      // Donate a compaction turn so crash points land inside deferred
      // L0 merges too (a merge never changes the logical state).
      if (op % 4 == 3) store_->background_turn(ctx);
    }
    store_->flush_pending(ctx);
  }

  std::string recover_and_check() override {
    sim::ThreadCtx ctx = make_thread(5);
    workload::ShardedStore store(ns_, shard_options());
    if (!store.open(ctx)) return "sharded open() failed";
    if (Status st = store.check(ctx); !st.ok()) return st.to_string();
    std::map<std::string, std::string> got[kShards];
    for (unsigned k = 0; k < kKeys; ++k) {
      const std::string key = "key" + std::to_string(k);
      std::string v;
      if (store.get(ctx, key, &v))
        got[workload::shard_of(key, kShards)][key] = v;
    }
    for (unsigned s = 0; s < kShards; ++s)
      if (got[s] != prev_[s] && got[s] != cur_[s])
        return "shard " + std::to_string(s) +
               ": recovered state matches neither its pre-op nor its "
               "post-op state (" +
               std::to_string(got[s].size()) + " live keys)";
    return "";
  }

 private:
  static constexpr unsigned kShards = 2;
  static constexpr unsigned kKeys = 8;
  static constexpr unsigned kOps = 40;

  workload::ShardOptions shard_options() const {
    workload::ShardOptions so;
    so.kind = workload::StoreKind::kLsmkv;
    // Singles must be durable at return for the per-op pre/post model,
    // so no group-commit buffering; batches still commit as one WAL
    // group burst per shard (Db::put_batch groups unconditionally).
    so.tuning.write_combine = false;
    so.tuning.background_compaction = true;
    so.tuning.memtable_bytes = 1 << 10;  // flush + merge under the run
    so.writer_lanes = true;
    return so;
  }

  std::unique_ptr<hw::Platform> platform_;
  std::vector<hw::PmemNamespace*> ns_;
  std::unique_ptr<workload::ShardedStore> store_;
  std::map<std::string, std::string> prev_[kShards], cur_[kShards];
};

// ----------------------------------------------------------- resilient --

// Self-healing replicated frontend under combined media damage and
// crash points: ShardedStore over two per-DIMM lsmkv shards with
// replicas=2, so every key is mirrored on both stores. Mid-run, store
// 0's namespace takes at-rest poison; the typed request path contains
// the resulting MediaErrors, quarantines the store, and donated
// background turns drive the online rebuild (ARS scrub, full-line
// ntstore heals, reformat, re-silver from the replica, verify) while
// writes keep flowing. Every persist event inside those heal/re-silver
// bursts is a crash point; recovery re-opens a fresh replicas=2
// frontend (whose open() re-derives quarantine from the media state via
// ARS), drives it back to healthy, and requires the served state to
// match the pre- or post-op model — run twice for double-recovery
// idempotence.
class ResilientTarget final : public Target {
 public:
  std::string name() const override { return "resilient-lsmkv"; }

  hw::Platform& reset() override {
    platform_ = std::make_unique<hw::Platform>();
    ns_ = workload::ShardedStore::make_namespaces(*platform_, kShards,
                                                  16ull << 20);
    store_ = std::make_unique<workload::ShardedStore>(ns_, shard_options());
    sim::ThreadCtx ctx = make_thread(0);
    store_->create(ctx);
    prev_.clear();
    cur_.clear();
    platform_->reset_timing();
    return *platform_;
  }

  hw::PmemNamespace& nspace() override { return *ns_[0]; }

  void run() override {
    sim::ThreadCtx ctx = make_thread(0);
    sim::Rng rng(29);
    for (unsigned op = 0; op < kOps; ++op) {
      if (op == kPoisonAt) {
        hw::FaultInjector inj(*platform_, 7);
        inj.poison_random(*ns_[0], 0, ns_[0]->size(), 3);
      }
      const std::string key = "key" + std::to_string(rng.uniform(kKeys));
      prev_ = cur_;
      workload::OpResult r;
      if (rng.uniform(4) == 0 && cur_.count(key) != 0) {
        cur_.erase(key);
        r = store_->try_del(ctx, key);
      } else {
        const std::string val =
            key + "#" + std::to_string(op) +
            std::string(4 + rng.uniform(12),
                        'a' + static_cast<char>(op % 26));
        cur_[key] = val;
        r = store_->try_put(ctx, key, val);
      }
      // An op no copy took was not acknowledged and had no effect.
      if (r.status == workload::OpStatus::kUnavailable) cur_ = prev_;
      // A few reads per op keep the degraded->quarantined budget moving.
      std::string v;
      (void)store_->try_get(ctx, key, &v);
      // Donated turns drive the scrub/heal/re-silver pipeline, so crash
      // points land inside its WAL bursts and full-line heal ntstores.
      store_->background_turn(ctx);
      store_->background_turn(ctx);
    }
    // Finish any in-flight rebuild under continued service.
    for (unsigned i = 0; i < 400 && !store_->all_healthy(); ++i)
      store_->background_turn(ctx);
    store_->flush_pending(ctx);
  }

  std::string recover_and_check() override {
    // Twice: recovering a recovered image must be a fixed point.
    for (unsigned round = 0; round < 2; ++round) {
      const std::string err = recover_once(round);
      if (!err.empty()) return err;
    }
    return "";
  }

 private:
  std::string recover_once(unsigned round) {
    sim::ThreadCtx ctx = make_thread(5 + round);
    workload::ShardedStore store(ns_, shard_options());
    if (!store.open(ctx))
      return "resilient open() failed (round " + std::to_string(round) + ")";
    // Health is re-derived from the media state at open (ARS), so a
    // crash mid-rebuild lands back in quarantine here; drive the rebuild
    // to completion before judging state.
    for (unsigned i = 0; i < 800 && !store.all_healthy(); ++i)
      store.background_turn(ctx);
    if (!store.all_healthy()) return "rebuild did not converge";
    if (Status st = store.check(ctx); !st.ok()) return st.to_string();
    std::map<std::string, std::string> got;
    for (unsigned k = 0; k < kKeys; ++k) {
      const std::string key = "key" + std::to_string(k);
      std::string v;
      const workload::OpResult r = store.try_get(ctx, key, &v);
      if (r.ok())
        got[key] = v;
      else if (r.status != workload::OpStatus::kNotFound)
        return std::string("typed error after rebuild: ") +
               workload::op_status_name(r.status) + " for " + key;
    }
    if (got != prev_ && got != cur_)
      return "recovered state matches neither the pre-op nor the post-op "
             "model (" + std::to_string(got.size()) + " live keys, round " +
             std::to_string(round) + ")";
    return "";
  }

  static constexpr unsigned kShards = 2;
  static constexpr unsigned kKeys = 8;
  static constexpr unsigned kOps = 30;
  static constexpr unsigned kPoisonAt = 10;

  workload::ShardOptions shard_options() const {
    workload::ShardOptions so;
    so.kind = workload::StoreKind::kLsmkv;
    so.replicas = 2;
    // Singles must be durable at return for the per-op pre/post model.
    so.tuning.write_combine = false;
    so.tuning.memtable_bytes = 1 << 10;  // flush + merge under the run
    so.writer_lanes = true;
    so.quarantine_after = 1;  // fail fast: one read error quarantines
    return so;
  }

  std::unique_ptr<hw::Platform> platform_;
  std::vector<hw::PmemNamespace*> ns_;
  std::unique_ptr<workload::ShardedStore> store_;
  std::map<std::string, std::string> prev_, cur_;
};

}  // namespace

std::unique_ptr<Target> make_pmemlib_target(bool inject_commit_fault) {
  return std::make_unique<PmemlibTarget>(inject_commit_fault);
}
std::unique_ptr<Target> make_lsmkv_target(kv::WalMode mode,
                                          bool wal_checksum,
                                          bool group_commit) {
  return std::make_unique<LsmkvTarget>(mode, wal_checksum, group_commit);
}
std::unique_ptr<Target> make_novafs_target(bool log_checksum,
                                           bool batch_appends) {
  return std::make_unique<NovafsTarget>(log_checksum, batch_appends);
}
std::unique_ptr<Target> make_cmap_target() {
  return std::make_unique<CmapTarget>();
}
std::unique_ptr<Target> make_sharded_target() {
  return std::make_unique<ShardedTarget>();
}
std::unique_ptr<Target> make_resilient_target() {
  return std::make_unique<ResilientTarget>();
}
std::unique_ptr<Target> make_stree_target() {
  return std::make_unique<StreeTarget>();
}

std::vector<std::unique_ptr<Target>> all_targets(bool checksums) {
  std::vector<std::unique_ptr<Target>> targets;
  targets.push_back(make_pmemlib_target());
  targets.push_back(make_lsmkv_target(kv::WalMode::kFlex, checksums));
  targets.push_back(make_lsmkv_target(kv::WalMode::kFlex, checksums,
                                      /*group_commit=*/true));
  targets.push_back(make_novafs_target(checksums));
  targets.push_back(make_novafs_target(checksums, /*batch_appends=*/true));
  targets.push_back(make_cmap_target());
  targets.push_back(make_stree_target());
  return targets;
}

}  // namespace xp::crashmc
