// Crash-point model checking over the simulator (the paper's §2.1
// persistence contract, exercised at every durability boundary).
//
// The simulator is deterministic: replaying a workload from a fresh
// Platform reproduces the exact same sequence of persist events (WPQ
// entries, ntstore drains, sfence retirements). That turns exhaustive
// crash testing into a pure-software model checker: for each enumerated
// event index k, rebuild the world, arm Platform::crash_after(k), run the
// workload until the crash fires, then re-open the store from the durable
// image, run its recovery path, and evaluate its invariants.
//
// Exhaustive below Options::max_exhaustive total events, seeded-sampled
// above it; either way every explored point is a *distinct* machine
// state, and violations carry the exact crash point for replay.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "xpsim/platform.h"

namespace xp::crashmc {

struct Options {
  // Enumerate every crash point when the workload's total persist-event
  // count is at most this; otherwise sample `samples` distinct points.
  std::uint64_t max_exhaustive = 512;
  std::uint64_t samples = 256;
  std::uint64_t seed = 1;
  // Keep exploring after a violation (collect all of them) or stop at the
  // first one.
  bool keep_going = true;
  // Optional telemetry sink attached to every platform the explorer
  // builds (each reset() makes a fresh one). Must outlive explore();
  // sinks are timing-neutral, so attaching one cannot change which
  // machine state a crash point hits.
  hw::TelemetrySink* sink = nullptr;
};

struct Violation {
  std::uint64_t point = 0;  // crash_after argument; 0 = crash-free run
  std::string detail;
};

struct Result {
  std::uint64_t total_events = 0;    // persist events in a crash-free run
  std::uint64_t points_explored = 0; // includes the crash-free baseline run
  std::uint64_t crashes_fired = 0;
  std::vector<Violation> violations;
  double seconds = 0.0;

  bool ok() const { return violations.empty(); }
  double points_per_sec() const {
    return seconds > 0 ? static_cast<double>(points_explored) / seconds : 0;
  }
};

// One store wired into the explorer. reset() must build a *fresh,
// deterministic* world each time: same platform seed, same workload
// schedule, so crash point k always hits the same machine state.
class Target {
 public:
  virtual ~Target() = default;

  virtual std::string name() const = 0;

  // Build a new platform + namespace + store and run any setup (format /
  // create / initial data). Called once per explored point, before the
  // crash trigger is armed — setup persist events are not crash points.
  virtual hw::Platform& reset() = 0;

  // The namespace holding the store's persistent image (valid after
  // reset()); tests use it to snapshot the durable image between
  // recoveries.
  virtual hw::PmemNamespace& nspace() = 0;

  // Run the mutation workload to completion. CrashPointHit may unwind it
  // at any durability boundary; the target must not catch it.
  virtual void run() = 0;

  // Post-crash: re-open the store from the durable image with fresh
  // objects (as a restarted process would), run its recovery path, and
  // check every invariant. Returns "" when all hold, else a diagnostic.
  virtual std::string recover_and_check() = 0;

  // Post-media-fault (see faultcampaign.h): re-open from the possibly
  // poisoned durable image with fresh objects, run the store's
  // repair/scrub path, and check. Media damage may cost committed data,
  // but only *reported* loss is acceptable — an unreported divergence
  // from the crash-consistent states, or any recovered value that was
  // never written, is silent corruption. Returns "" when that holds.
  virtual std::string repair_and_check() { return recover_and_check(); }
};

// Distinct points to explore in [1, total]: all of them when total <=
// max_exhaustive (or samples covers them), otherwise `samples` distinct
// seeded draws, sorted. Shared by the crash explorer and fault campaign.
std::vector<std::uint64_t> choose_points(std::uint64_t total,
                                         std::uint64_t max_exhaustive,
                                         std::uint64_t samples,
                                         std::uint64_t seed);

Result explore(Target& target, const Options& opts = {});

}  // namespace xp::crashmc
