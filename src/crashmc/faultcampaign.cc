#include "crashmc/faultcampaign.h"

#include <chrono>

#include "xpsim/fault.h"

namespace xp::crashmc {

FaultResult explore_faults(Target& target, const FaultOptions& opts) {
  FaultResult r;
  const auto t0 = std::chrono::steady_clock::now();

  // Baseline: a fault-free run measures the device-read count and must
  // pass the ordinary crash-free recovery check.
  {
    hw::Platform& platform = target.reset();
    if (opts.sink) platform.attach_telemetry(opts.sink);
    const std::uint64_t before = platform.device_reads();
    target.run();
    r.total_reads = platform.device_reads() - before;
    platform.reset_timing();
    ++r.points_explored;
    if (std::string err = target.recover_and_check(); !err.empty())
      r.violations.push_back({0, "fault-free run: " + err});
  }

  if (opts.keep_going || r.violations.empty()) {
    for (const std::uint64_t k :
         choose_points(r.total_reads, opts.max_exhaustive, opts.samples,
                       opts.seed)) {
      hw::Platform& platform = target.reset();
      if (opts.sink) platform.attach_telemetry(opts.sink);
      hw::FaultInjector injector(platform, opts.seed);
      injector.arm_nth_device_read(k);
      bool typed = false;
      try {
        target.run();
      } catch (const hw::MediaError&) {
        typed = true;
      }
      const bool fired = platform.media_fault_fired();
      platform.clear_media_fault();  // disarm/unfreeze; poison stays
      platform.reset_timing();
      if (fired) ++r.faults_fired;
      if (typed) ++r.typed_errors;
      ++r.points_explored;
      if (fired && !typed) {
        // The workload swallowed the machine check — that hides media
        // failure from the application and is itself a violation.
        r.violations.push_back({k, "MediaError was caught by the workload"});
        if (!opts.keep_going) break;
        continue;
      }
      std::string err =
          fired ? target.repair_and_check() : target.recover_and_check();
      if (!err.empty()) {
        r.violations.push_back({k, err});
        if (!opts.keep_going) break;
      }
    }
  }

  // Phase two: at-rest poison. Run cleanly, plant seeded scatter poison,
  // then recovery must contain it. Violation points are reported past the
  // read-index space as total_reads + 1 + i.
  for (std::uint64_t i = 0;
       i < opts.poison_points && (opts.keep_going || r.violations.empty());
       ++i) {
    hw::Platform& platform = target.reset();
    if (opts.sink) platform.attach_telemetry(opts.sink);
    target.run();
    platform.reset_timing();
    hw::FaultInjector injector(platform, opts.seed + 0x9e37 * (i + 1));
    const unsigned lines = 1 + static_cast<unsigned>(i % 3);
    injector.poison_random(target.nspace(), 0, target.nspace().size(), lines);
    r.lines_poisoned += lines;
    ++r.points_explored;
    if (std::string err = target.repair_and_check(); !err.empty())
      r.violations.push_back({r.total_reads + 1 + i, "at-rest poison: " + err});
  }

  r.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  return r;
}

}  // namespace xp::crashmc
