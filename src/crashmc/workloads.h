// Crash-point exploration targets for every persistent store in the
// repo, shared by tests/crashmc_test.cc and bench/crashmc_sweep.cc.
//
// Each target packages a deterministic mutation workload with a
// per-store invariant checker derived from the store's own atomicity
// analysis:
//
//  * pmemlib  — two threads in distinct undo-log lanes bump versioned
//               slots transactionally (plus allocator churn). A slot must
//               recover to its last acknowledged or last attempted
//               version, never anything else, and Pool::check() validates
//               lane/allocator metadata.
//  * lsmkv    — every put/del is WAL-synced before acknowledgment, so the
//               recovered logical state must equal the state before or
//               after the in-flight operation (committed-prefix
//               durability), with Db::check() validating manifest/tables.
//  * novafs   — single-page writes, page-aligned truncates and
//               create/unlink are each one atomic log append; the
//               recovered file set must byte-match the pre- or post-op
//               state, and NovaFs::fsck() validates logs and page
//               ownership.
//  * pmemkv   — cmap (in-place single-line updates + transactional
//               inserts/removes) and stree (slot/bitmap and val_off
//               commit points, transactional splits): recovered state is
//               pre- or post-op, with structural checks.
#pragma once

#include <memory>
#include <vector>

#include "crashmc/explorer.h"
#include "lsmkv/common.h"

namespace xp::crashmc {

// `inject_commit_fault` deliberately skips the clwb of the undo-log
// lane-retire store in Tx::commit (Pool::TestFault::kSkipCommitFlush) so
// negative tests can prove the harness catches a real protocol bug.
std::unique_ptr<Target> make_pmemlib_target(bool inject_commit_fault = false);
// `wal_checksum` turns on per-record WAL CRCs (detects torn/garbage WAL
// bytes, not just poison); used by the fault campaign. `group_commit`
// runs the workload through Db::put_batch groups — the acknowledged unit
// becomes the batch, and a crash inside a group must roll back to the
// previous group boundary.
std::unique_ptr<Target> make_lsmkv_target(
    kv::WalMode mode = kv::WalMode::kFlex, bool wal_checksum = false,
    bool group_commit = false);
// `log_checksum` appends per-entry CRC footers to the inode logs.
// `batch_appends` coalesces multi-entry operations into atomic log
// bursts and adds the operations only that mode makes atomic (renames,
// page-straddling embedded writes) to the workload.
std::unique_ptr<Target> make_novafs_target(bool log_checksum = false,
                                           bool batch_appends = false);
std::unique_ptr<Target> make_cmap_target();
std::unique_ptr<Target> make_stree_target();
// Sharded frontend (workload::ShardedStore over per-DIMM lsmkv shards,
// write-combining + deferred background compaction on): single-key ops,
// cross-shard batched dispatch, and donated compaction turns. The
// crash-atomic unit is one shard's slice of a dispatch (one WAL group
// burst); the cross-shard batch as a whole is NOT atomic, so recovery
// is checked shard by shard: each shard's recovered restriction must be
// its own pre- or post-op state. Not part of all_targets() — the
// five-family panel (and the fault campaign's loss semantics) stays
// as it was.
std::unique_ptr<Target> make_sharded_target();
// Self-healing replicated frontend (ShardedStore, 2 shards, replicas=2,
// lsmkv) under combined at-rest poison and crash points: the workload
// quarantines store 0 mid-run and crash points land inside the online
// rebuild's heal ntstores and re-silver WAL bursts. Recovery re-opens a
// fresh replicas=2 frontend, drives the rebuild to completion, and
// requires the served state to match the pre-/post-op model — twice,
// for double-recovery idempotence. Not part of all_targets(), like the
// sharded target.
std::unique_ptr<Target> make_resilient_target();

// The standard panel: pmemlib, lsmkv (FLEX WAL, per-record and group
// commit), novafs (per-entry and batched log appends), cmap, stree.
// `checksums` enables the WAL/log CRC options on the stores that have
// them (the fault campaign's configuration).
std::vector<std::unique_ptr<Target>> all_targets(bool checksums = false);

}  // namespace xp::crashmc
