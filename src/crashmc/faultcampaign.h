// Media fault-injection campaigns over the crashmc targets (the paper's
// §2.1 error model: uncorrectable XPLines surfacing as poison).
//
// The crash explorer enumerates *persist* events; this harness enumerates
// *device reads*. The simulator counts every XP cache fill and RFO, so
// arming the n-th device read to fail (FaultInjector::arm_nth_device_read)
// turns "a line goes bad under load" into an enumerable, replayable point
// space: for each chosen read index k, rebuild the world, run the
// workload until read k poisons the line it touches (the platform
// crashes and freezes, modeling the process dying at the machine check),
// then re-open the store from the poisoned durable image, run its repair
// path, and verify the containment contract:
//
//   every point ends in full recovery or a *typed*, reported error —
//   never silent corruption. Committed data may be lost to bad media,
//   but only when the store says so (RecoveryInfo / Status), and a
//   recovered value must be one the workload actually wrote.
//
// Points past the workload's read count fire nothing; the harness then
// requires byte-exact crash-free recovery, which doubles as a regression
// check that an armed-but-idle injector perturbs nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crashmc/explorer.h"

namespace xp::crashmc {

struct FaultOptions {
  // Enumerate every device read when the workload's total is at most
  // this; otherwise sample `samples` distinct read indices.
  std::uint64_t max_exhaustive = 512;
  std::uint64_t samples = 256;
  std::uint64_t seed = 1;
  // Second phase: this many at-rest points — run the workload cleanly,
  // then scatter 1-3 seeded poison lines across the namespace and demand
  // the same contract from repair. These points target the *recovery*
  // read sites (and lines the workload itself never re-reads), which the
  // armed-read phase cannot reach. 0 skips the phase.
  std::uint64_t poison_points = 0;
  bool keep_going = true;
  // Optional telemetry sink attached to every platform built (media
  // fault events land in its counters). Must outlive explore_faults().
  hw::TelemetrySink* sink = nullptr;
};

struct FaultResult {
  std::uint64_t total_reads = 0;     // device reads in a fault-free run
  std::uint64_t points_explored = 0; // includes the fault-free baseline
  std::uint64_t faults_fired = 0;    // points where the poison landed
  std::uint64_t typed_errors = 0;    // MediaError unwound the workload
  std::uint64_t lines_poisoned = 0;  // at-rest lines planted in phase two
  std::vector<Violation> violations; // silent corruption / failed repair
  double seconds = 0.0;

  bool ok() const { return violations.empty(); }
};

// Sweep media faults across `target`'s device reads. Every fired point
// runs Target::repair_and_check(); unfired points (k past the workload)
// must recover bit-exactly via Target::recover_and_check().
FaultResult explore_faults(Target& target, const FaultOptions& opts = {});

}  // namespace xp::crashmc
