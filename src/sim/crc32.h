// CRC32C (Castagnoli) with runtime-dispatched kernels.
//
// Used by the stores to checksum persistent records (WAL records, SSTable
// payloads, pool/novafs metadata) so that media corruption which escapes
// the device's poison tracking is still detected on read. Host-side only:
// computing a checksum costs no simulated time — but it does cost real
// wall-clock time on every WAL append, SSTable verify and pool header
// check, so the kernel matters for bench throughput.
//
// Three kernels, fastest available picked once at startup:
//  * the SSE4.2 `crc32` instruction (x86), 8 bytes per instruction;
//  * the ARMv8 `crc32c` instruction when compiled for it;
//  * slice-by-8 tables (8 parallel table lookups per 8 bytes) otherwise.
// All kernels implement the same polynomial (0x82f63b78, reflected) and
// the same ~seed/~crc incremental convention; crc32c_reference() keeps
// the original byte-at-a-time table loop available so tests can prove
// the dispatched kernel bit-exact against it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#include <nmmintrin.h>
#define XP_CRC32C_SSE42 1
#if defined(__SSE4_2__)
#define XP_CRC32C_TARGET  // baseline already includes SSE4.2
#else
#define XP_CRC32C_TARGET __attribute__((target("sse4.2")))
#endif
#endif
#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#include <arm_acle.h>
#define XP_CRC32C_ARMV8 1
#endif

namespace xp::sim {

namespace detail {

// Byte-at-a-time table (also the first slice of the slice-by-8 tables).
inline const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k)
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0u);
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

// Slices [1..7]: table[j][b] advances byte b through j extra zero bytes,
// so 8 lookups (one per input byte) combine into one 8-byte step.
inline const std::array<std::array<std::uint32_t, 256>, 8>& crc32c_slices() {
  static const std::array<std::array<std::uint32_t, 256>, 8> slices = [] {
    std::array<std::array<std::uint32_t, 256>, 8> s{};
    s[0] = crc32c_table();
    for (std::uint32_t i = 0; i < 256; ++i)
      for (unsigned j = 1; j < 8; ++j)
        s[j][i] = (s[j - 1][i] >> 8) ^ s[0][s[j - 1][i] & 0xffu];
    return s;
  }();
  return slices;
}

// Raw kernels operate on the internal (pre-inverted) crc state.
inline std::uint32_t crc32c_bytes_raw(std::uint32_t crc,
                                      const std::uint8_t* p, std::size_t n) {
  const auto& table = crc32c_table();
  for (std::size_t i = 0; i < n; ++i)
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xffu];
  return crc;
}

inline std::uint32_t crc32c_slice8_raw(std::uint32_t crc,
                                       const std::uint8_t* p, std::size_t n) {
  const auto& s = crc32c_slices();
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;  // fold the running crc into the low 4 bytes
    crc = s[7][word & 0xffu] ^ s[6][(word >> 8) & 0xffu] ^
          s[5][(word >> 16) & 0xffu] ^ s[4][(word >> 24) & 0xffu] ^
          s[3][(word >> 32) & 0xffu] ^ s[2][(word >> 40) & 0xffu] ^
          s[1][(word >> 48) & 0xffu] ^ s[0][(word >> 56) & 0xffu];
    p += 8;
    n -= 8;
  }
  return crc32c_bytes_raw(crc, p, n);
}

#if defined(XP_CRC32C_SSE42)
XP_CRC32C_TARGET
inline std::uint32_t crc32c_sse42_raw(std::uint32_t crc,
                                      const std::uint8_t* p, std::size_t n) {
  std::uint64_t c = crc;
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    c = _mm_crc32_u64(c, word);
    p += 8;
    n -= 8;
  }
  auto c32 = static_cast<std::uint32_t>(c);
  while (n-- > 0) c32 = _mm_crc32_u8(c32, *p++);
  return c32;
}
#endif

#if defined(XP_CRC32C_ARMV8)
inline std::uint32_t crc32c_armv8_raw(std::uint32_t crc,
                                      const std::uint8_t* p, std::size_t n) {
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    crc = __crc32cd(crc, word);
    p += 8;
    n -= 8;
  }
  while (n-- > 0) crc = __crc32cb(crc, *p++);
  return crc;
}
#endif

using Crc32cKernel = std::uint32_t (*)(std::uint32_t, const std::uint8_t*,
                                       std::size_t);

// Resolved once at first use. x86 probes CPUID at runtime (the SSE4.2
// kernel is compiled with a per-function target attribute, so the rest
// of the build needs no -msse4.2); ARMv8 is gated at compile time by
// __ARM_FEATURE_CRC32; everything else runs slice-by-8.
inline Crc32cKernel crc32c_kernel() {
#if defined(XP_CRC32C_SSE42)
  if (__builtin_cpu_supports("sse4.2")) return &crc32c_sse42_raw;
  return &crc32c_slice8_raw;
#elif defined(XP_CRC32C_ARMV8)
  return &crc32c_armv8_raw;
#else
  return &crc32c_slice8_raw;
#endif
}

}  // namespace detail

// Incremental form: pass the previous return value as `seed` to extend.
inline std::uint32_t crc32c(std::span<const std::uint8_t> data,
                            std::uint32_t seed = 0) {
  static const detail::Crc32cKernel kernel = detail::crc32c_kernel();
  return ~kernel(~seed, data.data(), data.size());
}

inline std::uint32_t crc32c(const void* p, std::size_t n,
                            std::uint32_t seed = 0) {
  return crc32c({static_cast<const std::uint8_t*>(p), n}, seed);
}

// The original byte-at-a-time table implementation, kept as the ground
// truth for equivalence tests of the dispatched kernels.
inline std::uint32_t crc32c_reference(std::span<const std::uint8_t> data,
                                      std::uint32_t seed = 0) {
  return ~detail::crc32c_bytes_raw(~seed, data.data(), data.size());
}

// Which kernel the dispatcher picked (for logging/tests).
inline const char* crc32c_impl_name() {
#if defined(XP_CRC32C_SSE42)
  return __builtin_cpu_supports("sse4.2") ? "sse4.2" : "slice8";
#elif defined(XP_CRC32C_ARMV8)
  return "armv8-crc";
#else
  return "slice8";
#endif
}

}  // namespace xp::sim
