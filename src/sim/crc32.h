// Software CRC32C (Castagnoli), table-driven, byte at a time.
//
// Used by the stores to checksum persistent records (WAL records, SSTable
// payloads, pool/novafs metadata) so that media corruption which escapes
// the device's poison tracking is still detected on read. Host-side only:
// computing a checksum costs no simulated time.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace xp::sim {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k)
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0u);
      t[i] = crc;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

// Incremental form: pass the previous return value as `seed` to extend.
inline std::uint32_t crc32c(std::span<const std::uint8_t> data,
                            std::uint32_t seed = 0) {
  const auto& table = detail::crc32c_table();
  std::uint32_t crc = ~seed;
  for (const std::uint8_t b : data)
    crc = (crc >> 8) ^ table[(crc ^ b) & 0xffu];
  return ~crc;
}

inline std::uint32_t crc32c(const void* p, std::size_t n,
                            std::uint32_t seed = 0) {
  return crc32c({static_cast<const std::uint8_t*>(p), n}, seed);
}

}  // namespace xp::sim
