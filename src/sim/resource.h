// Reservation-based contention model.
//
// A Resource models `k` identical servers (media banks, bus slots, queue
// drain ports). A request arriving at time `t` with service time `s`
// occupies the earliest-free server: it starts at max(t, server_free) and
// completes `s` later. This yields queueing delay, saturation bandwidth of
// k/s requests per unit time, and head-of-line effects without a full
// event calendar.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <queue>
#include <vector>

#include "sim/simtime.h"

namespace xp::sim {

class Resource {
 public:
  struct Grant {
    Time start;  // when service begins (>= request time)
    Time end;    // when service completes
  };

  explicit Resource(unsigned servers) : free_at_(servers, 0) {
    assert(servers > 0);
    make_heap();
  }

  // Reserve the earliest-free server at or after `earliest` for `service`.
  Grant acquire(Time earliest, Time service) {
    pop_heap();
    Time& slot = free_at_.back();
    const Time start = std::max(earliest, slot);
    const Time end = start + service;
    slot = end;
    push_heap();
    return {start, end};
  }

  // Earliest possible service start for a request arriving at `earliest`.
  Time next_free(Time earliest) const {
    return std::max(earliest, free_at_.front());
  }

  // Approximate queue depth: servers still busy at `now`.
  unsigned busy_at(Time now) const {
    unsigned n = 0;
    for (Time t : free_at_)
      if (t > now) ++n;
    return n;
  }

  unsigned servers() const { return static_cast<unsigned>(free_at_.size()); }

  void reset() { std::fill(free_at_.begin(), free_at_.end(), Time{0}); }

 private:
  // free_at_ is maintained as a min-heap on time (front = earliest free).
  struct Greater {
    bool operator()(Time a, Time b) const { return a > b; }
  };
  void make_heap() { std::make_heap(free_at_.begin(), free_at_.end(), Greater{}); }
  void pop_heap() { std::pop_heap(free_at_.begin(), free_at_.end(), Greater{}); }
  void push_heap() { std::push_heap(free_at_.begin(), free_at_.end(), Greater{}); }

  std::vector<Time> free_at_;
};

// A bounded-occupancy queue: models a pending queue whose entries drain
// through some downstream process. Callers ask for admission at time `t`;
// entries whose drain time has passed have left the queue. If the queue
// is still full, admission waits for the earliest remaining entry to
// drain. The drain time of each entry is supplied by the caller (it is
// the completion time of the downstream operation) and may be reported
// out of order — completions of concurrent requests are not FIFO.
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t depth) : depth_(depth) {}

  // Returns the time at which a free slot is available for a request
  // arriving at `t`, and reserves that slot (call exactly once per entry,
  // paired with push()).
  Time admission_time(Time t) {
    while (!heap_.empty() && heap_.top() <= t) heap_.pop();
    if (heap_.size() < depth_) return t;
    const Time freed = heap_.top();
    heap_.pop();
    return freed;
  }

  // Record that the admitted entry will drain at `drain_at`.
  void push(Time drain_at) { heap_.push(drain_at); }

  std::size_t depth() const { return depth_; }
  std::size_t occupancy() const { return heap_.size(); }

  void reset() {
    while (!heap_.empty()) heap_.pop();
  }

 private:
  std::size_t depth_;
  std::priority_queue<Time, std::vector<Time>, std::greater<Time>> heap_;
};

}  // namespace xp::sim
