// Log-linear latency histogram (HdrHistogram-style).
//
// Values are bucketed into powers of two, each subdivided into
// kSubBuckets linear sub-buckets, giving a bounded relative error of
// 1/kSubBuckets at any magnitude. Used for latency percentiles in the
// LATTester kernels and in the figure benches.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simtime.h"

namespace xp::sim {

class Histogram {
 public:
  Histogram();

  void record(Time value);
  void record_n(Time value, std::uint64_t count);

  std::uint64_t count() const { return count_; }
  Time min() const { return count_ ? min_ : 0; }
  Time max() const { return max_; }
  double mean() const;
  double stddev() const;

  // q in [0, 1]; returns a value v such that ~q of samples are <= v.
  Time percentile(double q) const;

  void merge(const Histogram& other);
  void reset();

 private:
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets => ~1.6% error
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kMaxBuckets = (64 - kSubBucketBits) * kSubBuckets;

  static int index_for(Time value);
  static Time value_for(int index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  Time min_ = ~Time{0};
  Time max_ = 0;
};

}  // namespace xp::sim
