// Unified result type for the stores' consistency checkers and repair
// paths.
//
// Every store used to report problems in its own way (empty string ==
// clean, bool, or an exception); the fault-campaign harness needs to
// classify outcomes uniformly, so `Pool::check`, `Db::check`,
// `NovaFs::fsck`, `CMap::check` and `STree::check` all return a Status:
// an error code plus a human-readable detail message.
#pragma once

#include <string>
#include <utility>

namespace xp {

enum class ErrorCode {
  kOk = 0,
  kCorruption,    // structural invariant violated (bad magic, cycle, ...)
  kMediaError,    // an uncorrectable media error (poisoned line) was hit
  kDataLoss,      // store is consistent but acknowledged data was dropped
  kNotFound,      // requested object does not exist
  kInvalid,       // bad argument / unusable configuration
};

class Status {
 public:
  Status() = default;

  static Status Ok() { return Status{}; }
  static Status Corruption(std::string msg) {
    return Status{ErrorCode::kCorruption, std::move(msg)};
  }
  static Status MediaFault(std::string msg) {
    return Status{ErrorCode::kMediaError, std::move(msg)};
  }
  static Status DataLoss(std::string msg) {
    return Status{ErrorCode::kDataLoss, std::move(msg)};
  }
  static Status NotFound(std::string msg) {
    return Status{ErrorCode::kNotFound, std::move(msg)};
  }
  static Status Invalid(std::string msg) {
    return Status{ErrorCode::kInvalid, std::move(msg)};
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  const char* code_name() const {
    switch (code_) {
      case ErrorCode::kOk: return "OK";
      case ErrorCode::kCorruption: return "CORRUPTION";
      case ErrorCode::kMediaError: return "MEDIA_ERROR";
      case ErrorCode::kDataLoss: return "DATA_LOSS";
      case ErrorCode::kNotFound: return "NOT_FOUND";
      case ErrorCode::kInvalid: return "INVALID";
    }
    return "?";
  }

  std::string to_string() const {
    if (ok()) return "OK";
    return std::string(code_name()) + ": " + msg_;
  }

 private:
  Status(ErrorCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  ErrorCode code_ = ErrorCode::kOk;
  std::string msg_;
};

}  // namespace xp
