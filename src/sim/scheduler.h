// Simulated threads and their interleaving.
//
// A simulated thread (ThreadCtx) is a logical core executing a workload.
// It carries a local clock, a seeded RNG, and a bounded memory-level-
// parallelism (MLP) window: at most `mlp` memory accesses may be
// outstanding, which is what lets a single thread achieve bandwidth far
// above 64B/latency, and what makes latency-bound mode (mlp = 1, fence
// between accesses) distinct from bandwidth mode.
//
// The Scheduler interleaves threads conservatively: it always advances the
// thread with the earliest local clock by one workload step. Shared
// resources (sim::Resource) are therefore reserved in approximately global
// time order, which produces realistic queueing without a full event
// calendar.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/rng.h"
#include "sim/simtime.h"

namespace xp::sim {

class ThreadCtx;

// ---- Schedule-exploration hook points (src/schedmc) -----------------------
//
// Concurrency-relevant boundaries in the simulator and the stores above it
// announce themselves through the owning thread's SchedHook. With no hook
// installed (the default, and every production path) a sched point is one
// predictable branch; with a hook (the schedmc interleaver) it is a yield
// point where a controlled scheduler may suspend the calling logical
// thread and run others. Hooks never touch simulated clocks, so hooked
// and unhooked runs of the same interleaving are timing-identical.
enum class SchedPoint : unsigned char {
  kOpBegin,          // workload-level operation boundary
  kFence,            // sfence/mfence retirement (every durability edge)
  kBatchCommit,      // LineBatcher publish / batched log-append burst
  kCacheInvalidate,  // a store dropped DRAM read-cache lines
  kLockAcquire,      // SchedLock acquisition (before ownership)
  kLockRelease,      // SchedLock release (after ownership dropped)
  kLaneAcquire,      // tx undo-log lane / writer-lane admission taken
  kLaneRelease,      // tx lane retired / writer lane released
  kHandoff,          // group-commit leader/follower pending-buffer edge
};
inline constexpr unsigned kNumSchedPoints = 9;

inline const char* sched_point_name(SchedPoint p) {
  static constexpr const char* kNames[kNumSchedPoints] = {
      "op_begin",     "fence",        "batch_commit",
      "cache_invalidate", "lock_acquire", "lock_release",
      "lane_acquire", "lane_release", "handoff"};
  return kNames[static_cast<unsigned>(p)];
}

// Installed per-ThreadCtx by the schedmc interleaver. yield() may block
// the calling host thread until the explored schedule grants it the run
// token again; lock()/unlock() additionally implement blocking mutual
// exclusion keyed by an opaque lock identity (see SchedLock).
class SchedHook {
 public:
  virtual ~SchedHook() = default;
  virtual void yield(ThreadCtx& ctx, SchedPoint point) = 0;
  virtual void lock(ThreadCtx& ctx, const void* id) = 0;
  virtual void unlock(ThreadCtx& ctx, const void* id) = 0;
};

class ThreadCtx {
 public:
  struct Options {
    unsigned id = 0;
    unsigned socket = 0;      // NUMA node the thread is pinned to
    unsigned mlp = 10;        // max outstanding memory accesses
    std::uint64_t seed = 1;   // per-thread RNG stream
  };

  explicit ThreadCtx(const Options& opts)
      : id_(opts.id), socket_(opts.socket), mlp_(opts.mlp ? opts.mlp : 1),
        rng_(opts.seed * 0x9e3779b97f4a7c15ULL + opts.id + 1) {}

  unsigned id() const { return id_; }
  unsigned socket() const { return socket_; }
  unsigned mlp() const { return mlp_; }
  // Temporarily rewidth the MLP window (a sequential combined burst runs
  // at streaming parallelism even in a latency-bound thread; callers
  // restore the previous width afterwards). A shrink leaves outstanding
  // completions in flight; begin_access retires them one per issue.
  void set_mlp(unsigned m) { mlp_ = m ? m : 1; }
  Rng& rng() { return rng_; }

  // Write-stream identity presented to the memory device. Defaults to the
  // thread id; software that funnels its stores through a bounded set of
  // writer lanes (paper §5.3: limit the writers per XP DIMM so its 4-entry
  // stream tracker stays hot) sets the lane id here for the duration of
  // the write, so the DIMM sees the lane, not the issuing thread.
  unsigned write_stream() const {
    return write_stream_ == kOwnStream ? id_ : write_stream_;
  }
  void set_write_stream(unsigned s) { write_stream_ = s; }
  void clear_write_stream() { write_stream_ = kOwnStream; }

  // Schedule-exploration hook (null on every production path). Announce a
  // concurrency-relevant boundary; a yield may run other logical threads
  // before returning but never changes this thread's simulated state.
  void set_sched_hook(SchedHook* h) { sched_hook_ = h; }
  SchedHook* sched_hook() const { return sched_hook_; }
  void sched_point(SchedPoint p) {
    if (sched_hook_) sched_hook_->yield(*this, p);
  }

  Time now() const { return now_; }
  void advance_to(Time t) {
    if (t > now_) now_ = t;
  }
  void advance_by(Time d) { now_ += d; }

  // --- MLP window -------------------------------------------------------
  // begin_access(): returns the time at which the next access may issue,
  // honoring the issue gap and the MLP window, and advances the clock to
  // that time. complete_access() registers the access's completion.
  Time begin_access(Time issue_gap) {
    Time t = now_ + issue_gap;
    if (inflight_.size() >= mlp_) {
      if (inflight_.front() > t) t = inflight_.front();
      inflight_.pop_front();
    }
    now_ = t;
    return t;
  }

  void complete_access(Time done) {
    // Completions are retired in order; a later access never unblocks the
    // window before an earlier one.
    if (!inflight_.empty() && done < inflight_.back()) done = inflight_.back();
    inflight_.push_back(done);
  }

  // Wait for every outstanding access (sfence/mfence semantics).
  void drain() {
    if (!inflight_.empty()) {
      advance_to(inflight_.back());
      inflight_.clear();
    }
  }

  bool has_inflight() const { return !inflight_.empty(); }

 private:
  static constexpr unsigned kOwnStream = ~0u;

  unsigned id_;
  unsigned socket_;
  unsigned mlp_;
  Rng rng_;
  Time now_ = 0;
  unsigned write_stream_ = kOwnStream;
  SchedHook* sched_hook_ = nullptr;
  std::deque<Time> inflight_;
};

// A mutual-exclusion point visible to the schedule explorer: the lock a
// real concurrent implementation of the calling store would take. On
// production paths (no hook) threads are strictly serialized by
// construction, so lock() degenerates to owner bookkeeping plus an
// assert; under the schedmc interleaver it is a blocking acquire whose
// contention the explored schedule controls. Not recursive.
class SchedLock {
 public:
  void lock(ThreadCtx& ctx) {
    if (SchedHook* h = ctx.sched_hook()) {
      h->lock(ctx, this);
    } else {
      assert(owner_ == kFree && "SchedLock: uncontended by construction "
                                "without a schedule hook");
    }
    owner_ = ctx.id();
  }

  void unlock(ThreadCtx& ctx) {
    assert(owner_ == ctx.id());
    owner_ = kFree;
    if (SchedHook* h = ctx.sched_hook()) h->unlock(ctx, this);
  }

  bool held() const { return owner_ != kFree; }

 private:
  static constexpr unsigned kFree = ~0u;
  unsigned owner_ = kFree;
};

// Scoped SchedLock holder (exception-safe across CrashPointHit unwinds).
class SchedLockGuard {
 public:
  SchedLockGuard(SchedLock& l, ThreadCtx& ctx) : lock_(l), ctx_(ctx) {
    lock_.lock(ctx_);
  }
  // The release is a yield point under the schedmc interleaver, and an
  // aborting run delivers its AbortRun exception there (never while
  // another exception is already unwinding — the hook checks).
  ~SchedLockGuard() noexcept(false) { lock_.unlock(ctx_); }
  SchedLockGuard(const SchedLockGuard&) = delete;
  SchedLockGuard& operator=(const SchedLockGuard&) = delete;

 private:
  SchedLock& lock_;
  ThreadCtx& ctx_;
};

// A workload step: performs one application-level operation on the thread
// (one memory access for microbenchmarks; one file write / KV op for the
// macro benches) and returns false when the thread is finished.
using StepFn = std::function<bool(ThreadCtx&)>;

class Scheduler {
 public:
  // Creates a thread and registers its step function. Returns the context
  // (owned by the scheduler, valid until reset()). The callable is stored
  // in its concrete type and invoked through one raw function pointer —
  // stepping is the simulator's innermost loop, and std::function's
  // extra indirection is measurable there.
  template <typename F>
  ThreadCtx& spawn(const ThreadCtx::Options& opts, F step) {
    threads_.reserve(threads_.size() + 1);
    steps_.reserve(steps_.size() + 1);
    auto ctx = std::make_unique<ThreadCtx>(opts);
    StepState state(new F(std::move(step)),
                    [](void* p) { delete static_cast<F*>(p); });
    heap_.push(Entry{ctx.get(), state.get(),
                     [](void* p, ThreadCtx& c) {
                       return (*static_cast<F*>(p))(c);
                     }});
    // Capacity is reserved and unique_ptr moves are noexcept, so the heap
    // entry's pointers cannot be orphaned past this point.
    steps_.push_back(std::move(state));
    threads_.push_back(std::move(ctx));
    return *threads_.back();
  }

  // Run until all threads have finished.
  void run();

  // Run until every live thread's clock is >= deadline (threads may be
  // stepped slightly past it) or all threads finish.
  void run_until(Time deadline);

  // Earliest local time among live threads (0 when none).
  Time frontier() const;

  std::size_t live_threads() const { return heap_.size(); }

  void reset();

 private:
  struct Entry {
    ThreadCtx* ctx;
    void* state;
    bool (*invoke)(void*, ThreadCtx&);
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.ctx->now() != b.ctx->now()) return a.ctx->now() > b.ctx->now();
      return a.ctx->id() > b.ctx->id();
    }
  };

  using StepState = std::unique_ptr<void, void (*)(void*)>;

  std::vector<std::unique_ptr<ThreadCtx>> threads_;
  std::vector<StepState> steps_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

}  // namespace xp::sim
