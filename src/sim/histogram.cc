#include "sim/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace xp::sim {

Histogram::Histogram() : buckets_(kMaxBuckets, 0) {}

int Histogram::index_for(Time value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kSubBucketBits;
  const int sub = static_cast<int>(value >> shift) - kSubBuckets;
  const int idx = (shift + 1) * kSubBuckets + sub;
  return std::min(idx, kMaxBuckets - 1);
}

Time Histogram::value_for(int index) {
  if (index < kSubBuckets) return static_cast<Time>(index);
  const int shift = index / kSubBuckets - 1;
  const int sub = index % kSubBuckets + kSubBuckets;
  // Upper edge of the sub-bucket: conservative for percentiles.
  return (static_cast<Time>(sub) << shift) + ((Time{1} << shift) - 1);
}

void Histogram::record(Time value) { record_n(value, 1); }

void Histogram::record_n(Time value, std::uint64_t count) {
  if (count == 0) return;
  buckets_[static_cast<std::size_t>(index_for(value))] += count;
  count_ += count;
  const double v = static_cast<double>(value);
  sum_ += v * static_cast<double>(count);
  sum_sq_ += v * v * static_cast<double>(count);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double Histogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

Time Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kMaxBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= target && seen > 0) return std::min(value_for(i), max_);
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  for (int i = 0; i < kMaxBuckets; ++i)
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = sum_sq_ = 0.0;
  min_ = ~Time{0};
  max_ = 0;
}

}  // namespace xp::sim
