// Simulated-time primitives.
//
// All simulator timing is expressed in picoseconds held in a 64-bit
// unsigned integer. Picosecond resolution avoids rounding artifacts for
// per-64-byte bus occupancies (a few nanoseconds) while still allowing
// simulations of ~0.2 years of virtual time before overflow.
#pragma once

#include <cstdint>

namespace xp::sim {

// A point in (or duration of) simulated time, in picoseconds.
using Time = std::uint64_t;

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1000 * kPicosecond;
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

// Convenience constructors. Declared constexpr so timing tables in
// xp::hw::Timing can live in headers.
constexpr Time ps(double v) { return static_cast<Time>(v); }
constexpr Time ns(double v) { return static_cast<Time>(v * 1e3); }
constexpr Time us(double v) { return static_cast<Time>(v * 1e6); }
constexpr Time ms(double v) { return static_cast<Time>(v * 1e9); }

constexpr double to_ns(Time t) { return static_cast<double>(t) / 1e3; }
constexpr double to_us(Time t) { return static_cast<double>(t) / 1e6; }
constexpr double to_s(Time t) { return static_cast<double>(t) / 1e12; }

// Bandwidth helper: bytes moved over a duration, in GB/s (1e9 bytes/s).
constexpr double gbps(std::uint64_t bytes, Time duration) {
  if (duration == 0) return 0.0;
  return static_cast<double>(bytes) / (static_cast<double>(duration) / 1e12) /
         1e9;
}

// Duration of moving `bytes` at `gb_per_s` (1e9 bytes/s).
constexpr Time transfer_time(std::uint64_t bytes, double gb_per_s) {
  return static_cast<Time>(static_cast<double>(bytes) / gb_per_s * 1e3);
}

}  // namespace xp::sim
