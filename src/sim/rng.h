// Deterministic pseudo-random number generation for the simulator.
//
// xoshiro256** seeded via SplitMix64. Every stochastic decision in the
// simulator draws from an Rng owned by the component or thread making the
// decision, so runs are reproducible given a seed and independent of host
// scheduling.
#pragma once

#include <cstdint>

namespace xp::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound == 0 returns 0.
  std::uint64_t uniform(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Multiplicative range reduction; bias is negligible for bound << 2^64.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) { return uniform_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace xp::sim
