#include "sim/scheduler.h"

namespace xp::sim {

// Both run loops special-case the single-live-thread regime: with one
// runnable thread there is nothing to interleave, so the heap pop/push
// per step (and its comparator calls) is pure overhead. The tight loops
// below keep stepping the lone thread directly and fall back to heap
// order the moment a step spawns a new thread (heap_ non-empty again).
// Single-thread runs dominate the figure benches (latency methodology is
// one thread by definition), so this path is hot.

void Scheduler::run() {
  while (!heap_.empty()) {
    Entry e = heap_.top();
    heap_.pop();
    if (heap_.empty()) {
      bool alive = true;
      while (alive && heap_.empty()) alive = e.invoke(e.state, *e.ctx);
      if (alive) heap_.push(e);
      continue;
    }
    if (e.invoke(e.state, *e.ctx)) heap_.push(e);
  }
}

void Scheduler::run_until(Time deadline) {
  while (!heap_.empty() && heap_.top().ctx->now() < deadline) {
    Entry e = heap_.top();
    heap_.pop();
    if (heap_.empty()) {
      bool alive = true;
      while (alive && heap_.empty() && e.ctx->now() < deadline)
        alive = e.invoke(e.state, *e.ctx);
      if (alive) heap_.push(e);
      continue;
    }
    if (e.invoke(e.state, *e.ctx)) heap_.push(e);
  }
}

Time Scheduler::frontier() const {
  return heap_.empty() ? Time{0} : heap_.top().ctx->now();
}

void Scheduler::reset() {
  while (!heap_.empty()) heap_.pop();
  threads_.clear();
  steps_.clear();
}

}  // namespace xp::sim
