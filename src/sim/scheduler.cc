#include "sim/scheduler.h"

namespace xp::sim {

ThreadCtx& Scheduler::spawn(const ThreadCtx::Options& opts, StepFn step) {
  threads_.push_back(std::make_unique<ThreadCtx>(opts));
  steps_.push_back(std::make_unique<StepFn>(std::move(step)));
  heap_.push(Entry{threads_.back().get(), steps_.back().get()});
  return *threads_.back();
}

void Scheduler::run() {
  while (!heap_.empty()) {
    Entry e = heap_.top();
    heap_.pop();
    if ((*e.step)(*e.ctx)) heap_.push(e);
  }
}

void Scheduler::run_until(Time deadline) {
  while (!heap_.empty() && heap_.top().ctx->now() < deadline) {
    Entry e = heap_.top();
    heap_.pop();
    if ((*e.step)(*e.ctx)) heap_.push(e);
  }
}

Time Scheduler::frontier() const {
  return heap_.empty() ? Time{0} : heap_.top().ctx->now();
}

void Scheduler::reset() {
  while (!heap_.empty()) heap_.pop();
  threads_.clear();
  steps_.clear();
}

}  // namespace xp::sim
