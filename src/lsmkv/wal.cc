#include "lsmkv/wal.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "sim/crc32.h"

namespace xp::kv {

void Wal::write_bytes(ThreadCtx& ctx, std::uint64_t off,
                      std::span<const std::uint8_t> data) {
  if (mode_ == WalMode::kPosix) {
    // Kernel write path: cached stores + flushes (the page-cache copy on
    // a DAX fs goes through the CPU cache).
    ns_.store_flush(ctx, off, data);
  } else {
    // FLEX: user-space non-temporal append.
    ns_.ntstore(ctx, off, data);
  }
}

void Wal::append(ThreadCtx& ctx, std::string_view key, std::string_view value,
                 bool tombstone, bool sync_now) {
  assert(key.size() < 0x10000);
  const std::uint32_t tag =
      kTagMagic | static_cast<std::uint32_t>(key.size());
  const std::uint32_t vlen = static_cast<std::uint32_t>(value.size()) |
                             (tombstone ? kTombstoneBit : 0);
  const std::size_t hdr_len = opts_.wal_checksum ? 12 : 8;
  const std::size_t rec_len = hdr_len + key.size() + value.size();
  assert(tail_ + rec_len + 8 <= capacity_ && "WAL full; truncate first");

  if (mode_ == WalMode::kPosix) ctx.advance_by(opts_.syscall);

  // Payload first (vlen [+ crc] + key + value), then the tag makes it
  // valid. scratch_ is a member so steady-state appends allocate nothing.
  scratch_.resize(rec_len);
  std::uint8_t* buf_data = scratch_.data();
  std::memcpy(buf_data, &tag, 4);
  std::memcpy(buf_data + 4, &vlen, 4);
  std::memcpy(buf_data + hdr_len, key.data(), key.size());
  if (!value.empty())  // tombstones carry a null, zero-length value view
    std::memcpy(buf_data + hdr_len + key.size(), value.data(),
                value.size());
  if (opts_.wal_checksum) {
    std::uint32_t crc = sim::crc32c(buf_data, 8);
    crc = sim::crc32c(buf_data + hdr_len, rec_len - hdr_len, crc);
    std::memcpy(buf_data + 8, &crc, 4);
  }

  const std::uint64_t at = base_ + tail_;
  // Terminator after the record, then payload, then the tag makes the
  // record valid — so recovery can never run past the true tail into
  // stale bytes from a previous log epoch.
  const std::uint32_t zero = 0;
  write_bytes(ctx, at + rec_len,
              std::span<const std::uint8_t>(
                  reinterpret_cast<const std::uint8_t*>(&zero), 4));
  write_bytes(ctx, at + 4,
              std::span<const std::uint8_t>(buf_data + 4, rec_len - 4));
  ns_.sfence(ctx);
  write_bytes(ctx, at, std::span<const std::uint8_t>(buf_data, 4));

  tail_ += rec_len;
  bytes_appended_ += rec_len;
  if (sync_now) sync(ctx);
}

void Wal::append_group(ThreadCtx& ctx, std::span<const WalRecord> recs,
                       bool sync_now) {
  if (recs.empty()) return;
  const std::size_t hdr_len = opts_.wal_checksum ? 12 : 8;

  // One gathered write() syscall for the whole group in kPosix mode.
  if (mode_ == WalMode::kPosix) ctx.advance_by(opts_.syscall);

  // Stage the whole group contiguously: [rec 1 | rec 2 | ... | rec N |
  // u32 0 terminator]. The records keep the exact per-record format, so
  // replay() needs no changes and mixed per-record/group logs replay
  // fine.
  batch_.reset(base_ + tail_);
  for (const WalRecord& r : recs) {
    assert(r.key.size() < 0x10000);
    const std::uint32_t tag =
        kTagMagic | static_cast<std::uint32_t>(r.key.size());
    const std::uint32_t vlen = static_cast<std::uint32_t>(r.value.size()) |
                               (r.tombstone ? kTombstoneBit : 0);
    const std::size_t at = batch_.append_pod(tag);
    batch_.append_pod(vlen);
    if (opts_.wal_checksum) batch_.append_zeros(4);
    batch_.append(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(r.key.data()), r.key.size()));
    if (!r.value.empty())
      batch_.append(std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(r.value.data()),
          r.value.size()));
    if (opts_.wal_checksum) {
      std::uint32_t crc = sim::crc32c(batch_.data() + at, 8);
      crc = sim::crc32c(batch_.data() + at + hdr_len,
                        batch_.size() - at - hdr_len, crc);
      std::memcpy(batch_.data() + at + 8, &crc, 4);
    }
  }
  const std::uint32_t zero = 0;
  batch_.append_pod(zero);  // terminator for the whole group
  assert(tail_ + batch_.size() + 4 <= capacity_ && "WAL full; truncate first");

  // Crash-atomic publish: everything after the first record's tag —
  // its body, all later records whole, and the terminator — is persisted
  // by one burst + fence; then the first tag makes the group visible.
  // Replay stops at that tag while it is still the old terminator, so a
  // torn group is invisible.
  batch_.commit(ctx, ns_, /*hold=*/4,
                mode_ == WalMode::kPosix ? pmem::WriteHint::kCached
                                         : pmem::WriteHint::kAuto);

  const std::uint64_t group_bytes = batch_.size() - 4;  // minus terminator
  tail_ += group_bytes;
  bytes_appended_ += group_bytes;
  if (sync_now) sync(ctx);
}

void Wal::sync(ThreadCtx& ctx) {
  if (mode_ == WalMode::kPosix) ctx.advance_by(opts_.fsync_syscall);
  ns_.sfence(ctx);
}

void Wal::truncate(ThreadCtx& ctx) {
  const std::uint32_t zero = 0;
  ns_.store_persist(ctx, base_,
                    std::span<const std::uint8_t>(
                        reinterpret_cast<const std::uint8_t*>(&zero), 4));
  tail_ = 0;
}

Wal::ReplayResult Wal::replay(ThreadCtx& ctx, const ReplayFn& fn) {
  const std::uint64_t hdr_len = opts_.wal_checksum ? 12 : 8;
  ReplayResult r;
  std::uint64_t pos = 0;
  try {
    while (pos + hdr_len <= capacity_) {
      const auto tag = ns_.load_pod<std::uint32_t>(ctx, base_ + pos);
      if ((tag & 0xFFFF0000u) != kTagMagic) break;
      const std::uint32_t klen = tag & 0xFFFFu;
      const auto vraw = ns_.load_pod<std::uint32_t>(ctx, base_ + pos + 4);
      const bool tombstone = (vraw & kTombstoneBit) != 0;
      const std::uint32_t vlen = vraw & ~kTombstoneBit;
      if (pos + hdr_len + klen + vlen > capacity_) break;
      std::string key(klen, '\0');
      std::string value(vlen, '\0');
      ns_.load(ctx, base_ + pos + hdr_len,
               std::span<std::uint8_t>(
                   reinterpret_cast<std::uint8_t*>(key.data()), klen));
      ns_.load(ctx, base_ + pos + hdr_len + klen,
               std::span<std::uint8_t>(
                   reinterpret_cast<std::uint8_t*>(value.data()), vlen));
      if (opts_.wal_checksum) {
        const auto stored =
            ns_.load_pod<std::uint32_t>(ctx, base_ + pos + 8);
        std::uint32_t crc = sim::crc32c(&tag, 4);
        crc = sim::crc32c(&vraw, 4, crc);
        crc = sim::crc32c(key.data(), klen, crc);
        crc = sim::crc32c(value.data(), vlen, crc);
        if (crc != stored) {
          r.damaged = true;
          r.damage_off = pos;
          r.reason = "wal: record crc mismatch at +" + std::to_string(pos);
          break;
        }
      }
      fn(key, value, tombstone);
      pos += hdr_len + klen + vlen;
      ++r.records;
    }
  } catch (const hw::MediaError& e) {
    r.damaged = true;
    r.damage_off = pos;
    r.reason = e.what();
  }
  tail_ = pos;
  return r;
}

}  // namespace xp::kv
