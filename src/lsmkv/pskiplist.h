// Persistent skiplist memtable: the "fine-grained persistence" design
// from paper §4.2 / Fig 8. Every insert allocates a node in persistent
// memory, persists it, and links it with an atomic 8-byte pointer update
// — eliminating the WAL entirely. The cost, on a real XP DIMM, is many
// small stores with poor locality (the paper measured EWR 0.434), which
// is why this design loses to a sequential WAL on Optane while winning on
// DRAM.
//
// Crash consistency: a node is fully persistent before it is linked; the
// level-0 link is a single atomic 64-bit persist. Crashes leak at most
// one unlinked node (reclaimed by the next flush's rebuild) and may leave
// upper-level links unset, which only affects search speed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "lsmkv/common.h"
#include "lsmkv/memtable.h"  // FindResult
#include "pmemlib/pool.h"
#include "sim/rng.h"

namespace xp::kv {

class PSkiplist {
 public:
  static constexpr int kMaxLevel = 8;

  // Root object (lives at a fixed pool offset): {u64 head_off}.
  PSkiplist(pmem::Pool& pool, std::uint64_t root_off)
      : pool_(pool), root_off_(root_off), rng_(0x5eed) {}

  // Allocate and install a fresh head tower (idempotent per root slot).
  void create(sim::ThreadCtx& ctx);

  // Attach to an existing skiplist (reads the head pointer).
  void open(sim::ThreadCtx& ctx);

  void put(sim::ThreadCtx& ctx, std::string_view key, std::string_view value,
           bool tombstone);

  FindResult get(sim::ThreadCtx& ctx, std::string_view key,
                 std::string* value);

  // Sorted, deduplicated iteration (newest version of each key):
  // fn(key, value, tombstone).
  void for_each(sim::ThreadCtx& ctx,
                const std::function<void(std::string_view, std::string_view,
                                         bool)>& fn);

  // Recompute entry count and byte footprint by walking level 0 (used
  // after recovery, when the in-DRAM accounting is gone).
  struct Footprint {
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
  };
  Footprint footprint(sim::ThreadCtx& ctx);

  std::uint64_t head() const { return head_; }

 private:
  struct NodeHeader {
    std::uint32_t klen;
    std::uint32_t vlen;  // top bit: tombstone
    std::uint32_t level;
    std::uint32_t pad;
    std::uint64_t next[kMaxLevel];
  };
  static constexpr std::uint32_t kTombstoneBit = 0x80000000u;

  std::string read_key(sim::ThreadCtx& ctx, std::uint64_t node,
                       const NodeHeader& h);
  int random_level();

  pmem::Pool& pool_;
  std::uint64_t root_off_;
  std::uint64_t head_ = 0;
  sim::Rng rng_;
};

}  // namespace xp::kv
