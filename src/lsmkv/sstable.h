// Sorted string table: the immutable on-pmem run format.
//
// Layout at `off`:
//   {u64 magic, u32 count, u32 total_bytes, u32 filter_len, u32 pad}
//   bloom filter bytes (kv::BloomBuilder, ~10 bits/key)
//   u32 entry_offsets[count]              (relative to the data area)
//   entries: {u32 klen, u32 vlen|tomb, key bytes, value bytes}
//
// Built with a single large sequential non-temporal write (guideline #2);
// point lookups consult the bloom filter first (absent keys skip the
// whole run), then binary-search the offset array with timed loads,
// giving realistic read amplification.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "lsmkv/memtable.h"  // FindResult
#include "pmemlib/linereader.h"
#include "sim/status.h"
#include "xpsim/platform.h"

namespace xp::kv {

class SsTable {
 public:
  static constexpr std::uint64_t kMagic = 0x585053535441424cULL;

  struct Entry {
    std::string key;
    std::string value;
    bool tombstone = false;
  };

  // DRAM residency of a table's read-path metadata (§5.1): the bloom
  // filter and offset array, which every point lookup consults, kept in
  // host memory so gets stop re-loading them from PM. Built for free from
  // the staging buffer at build() time, or loaded once from PM at open.
  struct Residency {
    std::uint32_t count = 0;
    std::vector<std::uint8_t> filter;
    std::vector<std::uint32_t> offsets;
  };

  // Optional read accelerators threaded through get_ex(). All-null is
  // exactly the plain get() path.
  struct ReadCtx {
    const Residency* res = nullptr;      // DRAM metadata (null = load PM)
    pmem::LineReader* reader = nullptr;  // XPLine combining (null = plain)
    std::string* keybuf = nullptr;       // reused probe-key buffer
  };

  // Serialized size of `entries` (for allocation).
  static std::uint64_t encoded_size(const std::vector<Entry>& entries);

  // Serialize sorted `entries` to ns[off..]; returns bytes written.
  // `scratch` (optional) is the staging buffer to reuse across builds —
  // every byte of it is rewritten, so callers can hand in the same
  // vector repeatedly and skip the per-build heap allocation.
  // `residency` (optional) is filled from the staged bytes — no extra PM
  // traffic.
  static std::uint64_t build(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                             std::uint64_t off,
                             const std::vector<Entry>& entries,
                             std::vector<std::uint8_t>* scratch = nullptr,
                             Residency* residency = nullptr);

  // One-time timed load of a table's residency metadata (open/recovery
  // path): three bulk loads instead of the per-get dribble.
  static Residency load_residency(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                                  std::uint64_t off);

  // `keybuf` (optional) is reused for the probe key on every binary-search
  // step, replacing a fresh heap-allocated std::string per probe. Host-side
  // only: the timed load sequence is unchanged.
  static FindResult get(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                        std::uint64_t off, std::string_view key,
                        std::string* value, std::string* keybuf = nullptr);

  // get() with the read-path accelerators (DbOptions::sst_residency /
  // read_combine). Returns exactly what get() returns for any table and
  // key; only the PM access pattern differs.
  static FindResult get_ex(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                           std::uint64_t off, std::string_view key,
                           std::string* value, const ReadCtx& rc);

  // Re-reads the whole table and verifies its content CRC (stored in the
  // header at build time). Distinguishes unreadable media (kMediaError)
  // from readable-but-wrong bytes (kCorruption).
  static Status verify_checksum(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                                std::uint64_t off);

  static std::uint32_t count(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                             std::uint64_t off);
  static std::uint64_t size_bytes(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                                  std::uint64_t off);

  // Sorted iteration: fn(key, value, tombstone).
  static void for_each(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                       std::uint64_t off,
                       const std::function<void(std::string_view,
                                                std::string_view, bool)>& fn);

 private:
  struct Header {
    std::uint64_t magic;
    std::uint32_t count;
    std::uint32_t total_bytes;
    std::uint32_t filter_len;
    std::uint32_t crc;  // CRC32C over everything after the header
  };
  static constexpr std::uint32_t kTombstoneBit = 0x80000000u;
};

}  // namespace xp::kv
