#include "lsmkv/db.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <map>

#include "pmemlib/pmem_ops.h"

namespace xp::kv {

Db::Manifest Db::load_manifest(sim::ThreadCtx& ctx) {
  // Under sst_residency the manifest is mirrored in DRAM: every
  // modification goes through store_manifest() in-process, so the mirror
  // is always the committed manifest and point lookups skip a ~560 B PM
  // load. (Recovery paths run before the mirror exists and read PM.)
  if (manifest_cache_.has_value()) return *manifest_cache_;
  return pool_.ns().load_pod<Manifest>(ctx, root_off_);
}

void Db::store_manifest(sim::ThreadCtx& ctx, pmem::Tx& tx,
                        const Manifest& m) {
  if (manifest_cache_.has_value()) *manifest_cache_ = m;
  tx.add(root_off_, sizeof(Manifest));
  tx.store(root_off_, std::span<const std::uint8_t>(
                          reinterpret_cast<const std::uint8_t*>(&m),
                          sizeof(m)));
  // Mirror into the fixed backup slot. Management-path write (untimed):
  // the mirror models firmware-level redundancy, not a data-path store.
  pool_.ns().poke(kManifestBackupOff,
                  std::span<const std::uint8_t>(
                      reinterpret_cast<const std::uint8_t*>(&m), sizeof(m)));
  (void)ctx;
}

void Db::create(sim::ThreadCtx& ctx) {
  // A volatile memtable needs a WAL for durability; a persistent memtable
  // needs none.
  assert((opts_.wal == WalMode::kNone) ==
         (opts_.memtable == MemtableMode::kPersistent));
  pool_.create(ctx, sizeof(Manifest));
  root_off_ = pool_.root(ctx);

  Manifest m{};
  m.wal_mode = static_cast<std::uint32_t>(opts_.wal);
  m.memtable_mode = static_cast<std::uint32_t>(opts_.memtable);
  m.flags = opts_.wal_checksum ? 1u : 0u;
  if (opts_.wal != WalMode::kNone) {
    m.wal_base = pool_.alloc_raw(ctx, opts_.wal_capacity);
    m.wal_capacity = opts_.wal_capacity;
  }
  if (opts_.memtable == MemtableMode::kPersistent) {
    m.pskiplist_root = pool_.alloc_raw(ctx, 64);
  }
  pool_.ns().poke(kManifestBackupOff,
                  std::span<const std::uint8_t>(
                      reinterpret_cast<const std::uint8_t*>(&m), sizeof(m)));
  pmem::store_persist_pod(ctx, pool_.ns(), root_off_, m);

  if (opts_.wal != WalMode::kNone) {
    wal_ = std::make_unique<Wal>(pool_.ns(), m.wal_base, m.wal_capacity,
                                 opts_.wal, opts_);
    wal_->truncate(ctx);
  }
  if (opts_.memtable == MemtableMode::kPersistent) {
    pskip_ = std::make_unique<PSkiplist>(pool_, m.pskiplist_root);
    pskip_->create(ctx);
  }
  init_read_path(ctx, m, /*load_tables=*/false);
}

void Db::init_read_path(sim::ThreadCtx& ctx, const Manifest& m,
                        bool load_tables) {
  reader_.discard();
  reader_.attach_cache(nullptr);
  rcache_.reset();
  residency_.clear();
  manifest_cache_.reset();
  if (opts_.read_cache_lines > 0) {
    rcache_ = std::make_unique<pmem::ReadCache>(
        pool_.ns(),
        pmem::ReadCacheOptions{.capacity_lines = opts_.read_cache_lines});
    reader_.attach_cache(rcache_.get());
  }
  if (!opts_.sst_residency) return;
  manifest_cache_ = m;
  if (load_tables) {
    for (std::uint32_t i = 0; i < m.n_l0; ++i)
      residency_.emplace(m.l0[i].off, SsTable::load_residency(
                                          ctx, pool_.ns(), m.l0[i].off));
    for (std::uint32_t i = 0; i < m.n_l1; ++i)
      residency_.emplace(m.l1[i].off, SsTable::load_residency(
                                          ctx, pool_.ns(), m.l1[i].off));
  }
}

void Db::prune_residency(const Manifest& m) {
  reader_.discard();
  if (residency_.empty()) return;
  auto live = [&](std::uint64_t off) {
    for (std::uint32_t i = 0; i < m.n_l0; ++i)
      if (m.l0[i].off == off) return true;
    for (std::uint32_t i = 0; i < m.n_l1; ++i)
      if (m.l1[i].off == off) return true;
    return false;
  };
  for (auto it = residency_.begin(); it != residency_.end();) {
    it = live(it->first) ? std::next(it) : residency_.erase(it);
  }
}

SsTable::ReadCtx Db::read_ctx(std::uint64_t table_off) {
  SsTable::ReadCtx rc;
  rc.keybuf = &key_scratch_;
  if (opts_.sst_residency) {
    const auto it = residency_.find(table_off);
    if (it != residency_.end()) rc.res = &it->second;
  }
  if (opts_.read_combine) rc.reader = &reader_;
  return rc;
}

bool Db::open(sim::ThreadCtx& ctx) {
  recovery_ = RecoveryInfo{};
  if (!pool_.open(ctx)) return false;
  root_off_ = pool_.root(ctx);
  Manifest m{};
  try {
    m = load_manifest(ctx);
  } catch (const hw::MediaError&) {
    // Primary manifest unreadable: fall back to the mirrored copy, scrub
    // the damage and rewrite the primary. The backup always holds a
    // committed manifest (it is mirrored inside store_manifest, whose
    // primary write is transactional).
    pool_.ns().peek(kManifestBackupOff,
                    std::span<std::uint8_t>(
                        reinterpret_cast<std::uint8_t*>(&m), sizeof(m)));
    if (m.wal_mode > static_cast<std::uint32_t>(WalMode::kFlex) ||
        m.n_l0 > kMaxL0 || m.n_l1 > kMaxL1)
      return false;  // backup is not a manifest either
    for (const std::uint64_t bad : pool_.ns().platform().ars(
             pool_.ns(), root_off_, sizeof(Manifest)))
      pool_.scrub_line(ctx, bad);
    pmem::store_persist_pod(ctx, pool_.ns(), root_off_, m);
    recovery_.manifest_restored = true;
    recovery_.detail = "manifest restored from backup copy";
  }
  opts_.wal = static_cast<WalMode>(m.wal_mode);
  opts_.memtable = static_cast<MemtableMode>(m.memtable_mode);
  opts_.wal_checksum = (m.flags & 1u) != 0;
  // One-time residency load for the recovered table set (a flush during
  // WAL replay keeps it current through store_manifest/flush).
  init_read_path(ctx, m, /*load_tables=*/true);
  // The deferred-compaction flag is volatile; re-derive the debt from the
  // recovered manifest so a crash between schedule and merge is harmless.
  compaction_pending_ =
      opts_.background_compaction && m.n_l0 >= opts_.l0_compaction_trigger;

  memtable_.clear();
  pending_.clear();
  if (opts_.wal != WalMode::kNone) {
    wal_ = std::make_unique<Wal>(pool_.ns(), m.wal_base, m.wal_capacity,
                                 opts_.wal, opts_);
    const Wal::ReplayResult r =
        wal_->replay(ctx, [&](std::string_view k, std::string_view v,
                              bool tomb) { memtable_.put(ctx, k, v, tomb); });
    if (r.damaged) {
      // Truncate at the damage point. Records replayed before it are made
      // durable again by flushing to an SSTable; records after it are
      // unrecoverable and reported, not silently absorbed.
      recovery_.wal_damaged = true;
      recovery_.wal_damage_off = r.damage_off;
      recovery_.wal_records_replayed = r.records;
      recovery_.detail = r.reason;
      if (pool_.recovery().heap_sealed) {
        // No allocation possible: keep the replayed records in the
        // memtable (still served) and flag that they are volatile-only.
        recovery_.wal_flush_skipped = true;
      } else {
        flush(ctx);
      }
      for (const std::uint64_t bad :
           pool_.ns().platform().ars(pool_.ns(), m.wal_base, m.wal_capacity))
        pool_.scrub_line(ctx, bad);
      wal_->truncate(ctx);
    }
  }
  if (opts_.memtable == MemtableMode::kPersistent) {
    pskip_ = std::make_unique<PSkiplist>(pool_, m.pskiplist_root);
    pskip_->open(ctx);
    pskip_bytes_ = pskip_->footprint(ctx).bytes;
  }
  return true;
}

void Db::write_record(sim::ThreadCtx& ctx, std::string_view key,
                      std::string_view value, bool tombstone) {
  if (opts_.memtable == MemtableMode::kPersistent) {
    pskip_->put(ctx, key, value, tombstone);
    pskip_bytes_ += key.size() + value.size();
  } else if (opts_.wal_group_commit) {
    // Leader/follower group commit: buffer the record (already readable
    // through the memtable) and let the write that fills the group commit
    // the whole burst. Durability is acknowledged at group boundaries.
    // The record is readable (memtable) before it is durable (group WAL
    // burst) — the leader/follower handoff edge the schedule explorer
    // perturbs and the crash-mode linearizability oracle checks.
    ctx.sched_point(sim::SchedPoint::kHandoff);
    pending_.push_back({std::string(key), std::string(value), tombstone});
    memtable_.put(ctx, key, value, tombstone);
    if (pending_.size() >= opts_.wal_group_size) commit_pending(ctx);
  } else {
    wal_->append(ctx, key, value, tombstone, opts_.sync_every_op);
    memtable_.put(ctx, key, value, tombstone);
  }
  maybe_flush(ctx);
}

void Db::commit_pending(sim::ThreadCtx& ctx) {
  if (pending_.empty()) return;
  ctx.sched_point(sim::SchedPoint::kHandoff);
  std::vector<WalRecord> recs;
  recs.reserve(pending_.size());
  for (const PendingRec& p : pending_)
    recs.push_back({p.key, p.value, p.tombstone});
  wal_->append_group(ctx, recs, opts_.sync_every_op);
  pending_.clear();
}

void Db::put_batch(sim::ThreadCtx& ctx, std::span<const WalRecord> recs) {
  if (recs.empty()) return;
  for (const WalRecord& r : recs) ++(r.tombstone ? stats_.deletes : stats_.puts);
  if (opts_.memtable == MemtableMode::kPersistent) {
    // No WAL to group; fall back to per-record persistent-memtable writes.
    for (const WalRecord& r : recs) {
      pskip_->put(ctx, r.key, r.value, r.tombstone);
      pskip_bytes_ += r.key.size() + r.value.size();
    }
    maybe_flush(ctx);
    return;
  }
  // Earlier buffered singles commit first so WAL order matches op order.
  commit_pending(ctx);
  wal_->append_group(ctx, recs, opts_.sync_every_op);
  for (const WalRecord& r : recs)
    memtable_.put(ctx, r.key, r.value, r.tombstone);
  maybe_flush(ctx);
}

void Db::put(sim::ThreadCtx& ctx, std::string_view key,
             std::string_view value) {
  ++stats_.puts;
  write_record(ctx, key, value, /*tombstone=*/false);
}

void Db::del(sim::ThreadCtx& ctx, std::string_view key) {
  ++stats_.deletes;
  write_record(ctx, key, {}, /*tombstone=*/true);
}

bool Db::get(sim::ThreadCtx& ctx, std::string_view key, std::string* value) {
  ++stats_.gets;
  FindResult r = opts_.memtable == MemtableMode::kPersistent
                     ? pskip_->get(ctx, key, value)
                     : memtable_.get(ctx, key, value);
  if (r == FindResult::kFound) {
    ++stats_.get_hits;
    return true;
  }
  if (r == FindResult::kTombstone) return false;

  const Manifest m = load_manifest(ctx);
  // L0: newest (highest index) first.
  for (std::uint32_t i = m.n_l0; i-- > 0;) {
    r = SsTable::get_ex(ctx, pool_.ns(), m.l0[i].off, key, value,
                        read_ctx(m.l0[i].off));
    if (r == FindResult::kFound) {
      ++stats_.get_hits;
      return true;
    }
    if (r == FindResult::kTombstone) return false;
  }
  for (std::uint32_t i = m.n_l1; i-- > 0;) {
    r = SsTable::get_ex(ctx, pool_.ns(), m.l1[i].off, key, value,
                        read_ctx(m.l1[i].off));
    if (r == FindResult::kFound) {
      ++stats_.get_hits;
      return true;
    }
    if (r == FindResult::kTombstone) return false;
  }
  return false;
}

std::vector<std::pair<std::string, std::string>> Db::scan(
    sim::ThreadCtx& ctx, std::string_view start_key,
    std::size_t max_results) {
  // Newest source first; the first version of each key wins.
  struct Version {
    std::string value;
    bool tombstone;
  };
  std::map<std::string, Version> merged;
  auto absorb = [&](std::string_view k, std::string_view v, bool tomb) {
    if (k < start_key) return;
    merged.try_emplace(std::string(k), Version{std::string(v), tomb});
  };

  if (opts_.memtable == MemtableMode::kPersistent) {
    pskip_->for_each(ctx, absorb);
  } else {
    memtable_.for_each([&](std::string_view k, std::string_view v,
                           bool tomb) { absorb(k, v, tomb); });
    ctx.advance_by(opts_.cpu_memtable_op);
  }
  const Manifest m = load_manifest(ctx);
  for (std::uint32_t i = m.n_l0; i-- > 0;)
    SsTable::for_each(ctx, pool_.ns(), m.l0[i].off, absorb);
  for (std::uint32_t i = m.n_l1; i-- > 0;)
    SsTable::for_each(ctx, pool_.ns(), m.l1[i].off, absorb);

  std::vector<std::pair<std::string, std::string>> out;
  for (auto& [k, ver] : merged) {
    if (out.size() >= max_results) break;
    if (!ver.tombstone) out.emplace_back(k, std::move(ver.value));
  }
  return out;
}

Status Db::check(sim::ThreadCtx& ctx) {
  try {
    if (Status s = pool_.check(ctx); !s.ok()) return s;
    const std::string err = check_impl(ctx);
    if (err.empty()) return Status::Ok();
    return Status::Corruption(err);
  } catch (const hw::MediaError& e) {
    return Status::MediaFault(e.what());
  }
}

std::string Db::check_impl(sim::ThreadCtx& ctx) {
  const Manifest m = load_manifest(ctx);
  if (m.wal_mode > static_cast<std::uint32_t>(WalMode::kNone))
    return "manifest: bad wal_mode " + std::to_string(m.wal_mode);
  if (m.memtable_mode > static_cast<std::uint32_t>(MemtableMode::kPersistent))
    return "manifest: bad memtable_mode " + std::to_string(m.memtable_mode);
  if (m.n_l0 > kMaxL0 || m.n_l1 > kMaxL1)
    return "manifest: run counts out of range";

  const std::uint64_t heap_lo = pmem::Pool::heap_base();
  const std::uint64_t heap_hi = pool_.heap_top(ctx);
  if (static_cast<WalMode>(m.wal_mode) != WalMode::kNone &&
      (m.wal_base < heap_lo || m.wal_base + m.wal_capacity > heap_hi))
    return "manifest: WAL region outside allocated heap";

  auto check_table = [&](const char* level, std::uint32_t i,
                         const TableRef& t) -> std::string {
    const std::string tag =
        std::string(level) + "[" + std::to_string(i) + "]";
    if (t.size == 0 || t.off < heap_lo || t.off + t.size > heap_hi)
      return tag + ": ref outside allocated heap";
    if (SsTable::size_bytes(ctx, pool_.ns(), t.off) > t.size)
      return tag + ": encoded size exceeds allocation";
    if (Status s = SsTable::verify_checksum(ctx, pool_.ns(), t.off); !s.ok())
      return tag + ": " + s.to_string();
    std::string prev;
    std::string err;
    bool first = true;
    SsTable::for_each(ctx, pool_.ns(), t.off,
                      [&](std::string_view k, std::string_view, bool) {
                        if (!first && !err.empty()) return;
                        if (!first && k <= prev)
                          err = tag + ": keys not strictly increasing";
                        prev = std::string(k);
                        first = false;
                      });
    return err;
  };
  for (std::uint32_t i = 0; i < m.n_l0; ++i)
    if (std::string err = check_table("l0", i, m.l0[i]); !err.empty())
      return err;
  for (std::uint32_t i = 0; i < m.n_l1; ++i)
    if (std::string err = check_table("l1", i, m.l1[i]); !err.empty())
      return err;
  return "";
}

void Db::repair(sim::ThreadCtx& ctx) {
  Manifest m = load_manifest(ctx);
  Manifest out = m;
  out.n_l0 = 0;
  out.n_l1 = 0;
  std::vector<TableRef> bad;
  auto sift = [&](const char* level, std::uint32_t i, const TableRef& t,
                  TableRef* keep, std::uint32_t* nkeep) {
    if (SsTable::verify_checksum(ctx, pool_.ns(), t.off).ok()) {
      keep[(*nkeep)++] = t;
    } else {
      recovery_.tables_quarantined.push_back(
          std::string(level) + "[" + std::to_string(i) + "]");
      bad.push_back(t);
    }
  };
  for (std::uint32_t i = 0; i < m.n_l0; ++i)
    sift("l0", i, m.l0[i], out.l0, &out.n_l0);
  for (std::uint32_t i = 0; i < m.n_l1; ++i)
    sift("l1", i, m.l1[i], out.l1, &out.n_l1);

  if (!bad.empty()) {
    // Drop the quarantined refs first — only then is it safe to scrub,
    // because scrubbing turns a table's poison into zeros a reader would
    // otherwise happily parse.
    pmem::Tx tx(pool_, ctx);
    store_manifest(ctx, tx, out);
    tx.commit();
    prune_residency(out);
  }
  pool_.repair(ctx);
  if (!bad.empty() && !pool_.recovery().heap_sealed) {
    pmem::Tx tx(pool_, ctx);
    for (const TableRef& t : bad) pool_.tx_free(tx, t.off, t.size);
    tx.commit();
  }
  // (Sealed heap: quarantined allocations leak, which is already reported
  // through recovery().tables_quarantined + the pool's heap_sealed flag.)
}

void Db::maybe_flush(sim::ThreadCtx& ctx) {
  const std::uint64_t bytes = opts_.memtable == MemtableMode::kPersistent
                                  ? pskip_bytes_
                                  : memtable_.bytes();
  if (bytes >= opts_.memtable_bytes) flush(ctx);
  // Write-stall admission gate: a writer that finds the deferred-
  // compaction debt at the stall trigger pays the merge inline rather
  // than letting L0 grow toward the manifest's fixed capacity.
  if (compaction_pending_) {
    const Manifest m = load_manifest(ctx);
    // Clamp to the manifest's capacity so a misconfigured trigger can
    // never let L0 overflow the fixed array.
    const unsigned stall_at =
        std::min<unsigned>(opts_.l0_stall_trigger, kMaxL0 - 1);
    if (m.n_l0 >= stall_at) {
      ++stats_.write_stalls;
      background_work(ctx);
    }
  }
}

void Db::flush(sim::ThreadCtx& ctx) {
  std::vector<SsTable::Entry> entries;
  if (opts_.memtable == MemtableMode::kPersistent) {
    if (pskip_bytes_ == 0) return;
    pskip_->for_each(ctx, [&](std::string_view k, std::string_view v,
                              bool tomb) {
      entries.push_back({std::string(k), std::string(v), tomb});
    });
  } else {
    if (memtable_.empty()) return;
    memtable_.for_each([&](std::string_view k, std::string_view v,
                           bool tomb) {
      entries.push_back({std::string(k), std::string(v), tomb});
    });
  }
  ++stats_.memtable_flushes;

  Manifest m = load_manifest(ctx);
  assert(m.n_l0 < kMaxL0);
  reader_.discard();
  {
    pmem::Tx tx(pool_, ctx);
    const std::uint64_t size = SsTable::encoded_size(entries);
    const std::uint64_t off = pool_.tx_alloc(tx, size);
    SsTable::Residency res;
    SsTable::build(ctx, pool_.ns(), off, entries, &sst_scratch_,
                   opts_.sst_residency ? &res : nullptr);
    if (opts_.sst_residency) residency_[off] = std::move(res);
    stats_.sst_bytes_written += size;

    m.l0[m.n_l0++] = TableRef{off, size};
    if (opts_.memtable == MemtableMode::kPersistent) {
      // Start a fresh persistent memtable: new head slot, old nodes are
      // reclaimed wholesale (arena-style) by a full compaction. The new
      // head is initialized before commit so a post-commit crash never
      // exposes an uninitialized root.
      const std::uint64_t new_root = pool_.tx_alloc(tx, 64);
      m.pskiplist_root = new_root;
      store_manifest(ctx, tx, m);
      pskip_ = std::make_unique<PSkiplist>(pool_, new_root);
      pskip_->create(ctx);
    } else {
      store_manifest(ctx, tx, m);
    }
    tx.commit();
  }

  if (opts_.memtable == MemtableMode::kPersistent) {
    pskip_bytes_ = 0;
  } else {
    memtable_.clear();
    wal_->truncate(ctx);
    // Buffered-but-uncommitted group records just became durable via the
    // SSTable (they were in the flushed memtable); nothing left to log.
    pending_.clear();
  }

  if (m.n_l0 >= opts_.l0_compaction_trigger) {
    if (opts_.background_compaction)
      compaction_pending_ = true;  // deferred to background_work()
    else
      compact(ctx, m);
  }
}

bool Db::background_work(sim::ThreadCtx& ctx) {
  if (!compaction_pending_) return false;
  compaction_pending_ = false;
  const Manifest m = load_manifest(ctx);
  if (m.n_l0 == 0) return false;  // flushed away in the meantime
  ++stats_.background_compactions;
  compact(ctx, m);
  return true;
}

void Db::compact(sim::ThreadCtx& ctx, Manifest m) {
  ++stats_.compactions;
  // Merge all runs, newest first winning; drop tombstones (full merge).
  std::map<std::string, SsTable::Entry> merged;
  auto absorb = [&](std::uint64_t off) {
    SsTable::for_each(ctx, pool_.ns(), off,
                      [&](std::string_view k, std::string_view v, bool tomb) {
                        merged.try_emplace(std::string(k),
                                           SsTable::Entry{std::string(k),
                                                          std::string(v),
                                                          tomb});
                      });
  };
  for (std::uint32_t i = m.n_l0; i-- > 0;) absorb(m.l0[i].off);
  for (std::uint32_t i = m.n_l1; i-- > 0;) absorb(m.l1[i].off);

  std::vector<SsTable::Entry> entries;
  entries.reserve(merged.size());
  for (auto& [k, e] : merged)
    if (!e.tombstone) entries.push_back(std::move(e));

  pmem::Tx tx(pool_, ctx);
  Manifest out = m;
  for (std::uint32_t i = 0; i < m.n_l0; ++i)
    pool_.tx_free(tx, m.l0[i].off, m.l0[i].size);
  for (std::uint32_t i = 0; i < m.n_l1; ++i)
    pool_.tx_free(tx, m.l1[i].off, m.l1[i].size);
  out.n_l0 = 0;
  out.n_l1 = 0;
  if (!entries.empty()) {
    const std::uint64_t size = SsTable::encoded_size(entries);
    const std::uint64_t off = pool_.tx_alloc(tx, size);
    SsTable::Residency res;
    SsTable::build(ctx, pool_.ns(), off, entries, &sst_scratch_,
                   opts_.sst_residency ? &res : nullptr);
    if (opts_.sst_residency) residency_[off] = std::move(res);
    stats_.sst_bytes_written += size;
    out.l1[out.n_l1++] = TableRef{off, size};
  }
  store_manifest(ctx, tx, out);
  tx.commit();
  prune_residency(out);
}

}  // namespace xp::kv
