// Bloom filter for SSTables.
//
// RocksDB attaches a bloom filter to every table so point lookups skip
// runs that cannot contain the key — crucial once L0 accumulates, since
// every absent-key GET would otherwise binary-search every run (and on
// Optane every probe is a ~300 ns random read). ~10 bits/key, k = 7
// double-hashed probes (<1 % false positives).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace xp::kv {

class BloomBuilder {
 public:
  static constexpr unsigned kBitsPerKey = 10;
  static constexpr unsigned kProbes = 7;

  explicit BloomBuilder(std::size_t expected_keys) {
    std::size_t bits = expected_keys * kBitsPerKey;
    bits = std::max<std::size_t>(bits, 64);
    bits_.assign((bits + 7) / 8, 0);
  }

  void add(std::string_view key) {
    const std::uint64_t h = hash(key);
    std::uint32_t a = static_cast<std::uint32_t>(h);
    const std::uint32_t b = static_cast<std::uint32_t>(h >> 32) | 1;
    for (unsigned i = 0; i < kProbes; ++i) {
      const std::size_t bit = a % (bits_.size() * 8);
      bits_[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
      a += b;
    }
  }

  const std::vector<std::uint8_t>& bits() const { return bits_; }

  // Query against a serialized filter.
  static bool may_contain(const std::uint8_t* filter, std::size_t len,
                          std::string_view key) {
    if (len == 0) return true;  // no filter: cannot exclude
    const std::uint64_t h = hash(key);
    std::uint32_t a = static_cast<std::uint32_t>(h);
    const std::uint32_t b = static_cast<std::uint32_t>(h >> 32) | 1;
    for (unsigned i = 0; i < kProbes; ++i) {
      const std::size_t bit = a % (len * 8);
      if ((filter[bit / 8] & (1u << (bit % 8))) == 0) return false;
      a += b;
    }
    return true;
  }

 private:
  static std::uint64_t hash(std::string_view s) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
    return h;
  }

  std::vector<std::uint8_t> bits_;
};

}  // namespace xp::kv
