// Mini-RocksDB: a two-level LSM tree on persistent memory.
//
// Supports the three persistence strategies the paper compares (Fig 8):
//   * WAL-POSIX + volatile memtable (stock RocksDB on a DAX file),
//   * WAL-FLEX + volatile memtable (sequential user-space pmem log),
//   * persistent skiplist memtable, no WAL (fine-grained persistence).
//
// Writes go to the memtable (+WAL); when the memtable exceeds the
// threshold it is flushed to an L0 SSTable; when L0 fills up, all runs
// are merge-compacted into a single L1 run. The manifest lives in the
// pool root and is updated transactionally, so crash-recovery resumes
// from a consistent table set plus WAL replay.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "lsmkv/common.h"
#include "lsmkv/memtable.h"
#include "lsmkv/pskiplist.h"
#include "lsmkv/sstable.h"
#include "lsmkv/wal.h"
#include "pmemlib/pool.h"
#include "sim/status.h"

namespace xp::kv {

class Db {
 public:
  static constexpr unsigned kMaxL0 = 16;
  static constexpr unsigned kMaxL1 = 16;

  Db(hw::PmemNamespace& ns, DbOptions opts)
      : opts_(opts), pool_(ns), memtable_(opts_) {}

  // Format a fresh database.
  void create(sim::ThreadCtx& ctx);

  // Open after a restart/crash: recovers the pool, reloads the manifest,
  // replays the WAL (or re-adopts the persistent memtable). Returns false
  // if the namespace holds no database.
  //
  // Media-error tolerant: a WAL that stops replaying (poison or checksum
  // failure) is truncated at the damage point — records before it are
  // flushed to an SSTable (unless the pool's heap is sealed), records
  // after it are reported lost via recovery(), never silently dropped.
  bool open(sim::ThreadCtx& ctx);

  // What open()/repair() had to do about damaged media.
  struct RecoveryInfo {
    bool manifest_restored = false;  // primary manifest rebuilt from backup
    bool wal_damaged = false;
    std::uint64_t wal_damage_off = 0;     // WAL-relative damage point
    std::uint64_t wal_records_replayed = 0;
    bool wal_flush_skipped = false;  // heap sealed: replayed records are
                                     // served but not yet re-persisted
    std::vector<std::string> tables_quarantined;  // e.g. "l0[2]"
    std::string detail;
    bool damaged() const {
      return manifest_restored || wal_damaged || !tables_quarantined.empty();
    }
  };
  const RecoveryInfo& recovery() const { return recovery_; }

  // Verify every referenced SSTable's content checksum; quarantine (drop
  // from the manifest, transactionally) any that fail, then scrub all
  // remaining poison in the namespace. Quarantined data is gone — the
  // point is that reads after repair() never return garbage for it.
  void repair(sim::ThreadCtx& ctx);

  void put(sim::ThreadCtx& ctx, std::string_view key, std::string_view value);
  void del(sim::ThreadCtx& ctx, std::string_view key);
  bool get(sim::ThreadCtx& ctx, std::string_view key, std::string* value);

  // Write a batch of records as one WAL group commit (one terminator +
  // fence + sync for the whole batch, §5.1/§5.2). The batch is
  // crash-atomic: recovery sees all of it or none of it. Falls back to
  // per-record writes when the store has no WAL (persistent memtable).
  void put_batch(sim::ThreadCtx& ctx, std::span<const WalRecord> recs);

  // With DbOptions::wal_group_commit, individual put()/del() calls buffer
  // their WAL records; the thread whose write fills the group (the
  // leader) commits the burst for everyone. Callers needing durability at
  // a specific point force the pending group out with this.
  void commit_pending(sim::ThreadCtx& ctx);
  std::size_t pending_records() const { return pending_.size(); }

  // Force a memtable flush (normally automatic at memtable_bytes).
  void flush(sim::ThreadCtx& ctx);

  // One deferred-compaction turn (DbOptions::background_compaction): runs
  // the scheduled merge if one is pending. Returns true if work was done.
  // Safe to call from any simulated thread, but like every Db entry point
  // it must be externally serialized against concurrent ops.
  bool background_work(sim::ThreadCtx& ctx);
  bool compaction_pending() const { return compaction_pending_; }

  // Recovery invariants (crashmc checker entry point). Call after open():
  // validates pool metadata, the manifest (modes, run counts, table refs
  // inside the allocated heap) and that every referenced SSTable passes
  // its content checksum and is iterable with strictly increasing keys.
  Status check(sim::ThreadCtx& ctx);

  // Range scan: up to `max_results` live key/value pairs with
  // key >= start_key, in key order, newest version winning and
  // tombstones hidden. (Merges the memtable and every run; intended for
  // moderate result counts.)
  std::vector<std::pair<std::string, std::string>> scan(
      sim::ThreadCtx& ctx, std::string_view start_key,
      std::size_t max_results);

  const DbStats& stats() const { return stats_; }
  const DbOptions& options() const { return opts_; }
  pmem::Pool& pool() { return pool_; }

 private:
  struct TableRef {
    std::uint64_t off = 0;
    std::uint64_t size = 0;
  };
  struct Manifest {
    std::uint32_t wal_mode;
    std::uint32_t memtable_mode;
    std::uint32_t flags;  // bit 0: WAL records carry checksums
    std::uint32_t reserved;
    std::uint64_t wal_base;
    std::uint64_t wal_capacity;
    std::uint64_t pskiplist_root;  // pool offset of the head pointer slot
    std::uint32_t n_l0;
    std::uint32_t n_l1;
    TableRef l0[kMaxL0];  // oldest first
    TableRef l1[kMaxL1];
  };
  // Redundant manifest copy in the pool's reserved region (between the
  // backup pool header at 2048+56 and the lanes at 4096); the manifest is
  // the only route to every table, so its primary line going bad must not
  // take the database with it. Mirrored on every manifest store.
  static constexpr std::uint64_t kManifestBackupOff = 2560;
  static_assert(sizeof(Manifest) <= 4096 - kManifestBackupOff);

  void write_record(sim::ThreadCtx& ctx, std::string_view key,
                    std::string_view value, bool tombstone);
  std::string check_impl(sim::ThreadCtx& ctx);
  void maybe_flush(sim::ThreadCtx& ctx);
  void compact(sim::ThreadCtx& ctx, Manifest m);
  Manifest load_manifest(sim::ThreadCtx& ctx);
  void store_manifest(sim::ThreadCtx& ctx, pmem::Tx& tx, const Manifest& m);

  // ---- read path (DbOptions::sst_residency / read_combine) ---------------
  // Construct the per-open read-path state: the DRAM read cache (if
  // configured) and, under sst_residency, the manifest mirror + residency
  // for every table referenced by `m`. No-op with the knobs off.
  void init_read_path(sim::ThreadCtx& ctx, const Manifest& m,
                      bool load_tables);
  // Drop residency entries for tables no longer in `m` (post-compaction /
  // repair) and the reader's staged span.
  void prune_residency(const Manifest& m);
  SsTable::ReadCtx read_ctx(std::uint64_t table_off);

  DbOptions opts_;
  pmem::Pool pool_;
  Memtable memtable_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<PSkiplist> pskip_;
  std::uint64_t root_off_ = 0;
  std::uint64_t pskip_bytes_ = 0;  // approximate, rebuilt on open
  DbStats stats_;
  RecoveryInfo recovery_;
  // Pending WAL group (wal_group_commit): records buffered since the
  // last group commit. They are already in the memtable (readable) but
  // not yet acknowledged durable.
  struct PendingRec {
    std::string key;
    std::string value;
    bool tombstone;
  };
  std::vector<PendingRec> pending_;
  std::vector<std::uint8_t> sst_scratch_;  // reused SSTable build buffer
  // A compaction scheduled by flush() but not yet run (only ever set with
  // background_compaction on). Volatile by design: open() re-derives it
  // from the recovered manifest.
  bool compaction_pending_ = false;

  // ---- read-path state (all empty/null with the knobs off) ---------------
  std::optional<Manifest> manifest_cache_;  // DRAM mirror (sst_residency)
  std::unordered_map<std::uint64_t, SsTable::Residency>
      residency_;  // by table offset
  std::unique_ptr<pmem::ReadCache> rcache_;
  pmem::LineReader reader_;
  std::string key_scratch_;  // reused binary-search probe key
};

}  // namespace xp::kv
