// Shared types for the mini-RocksDB LSM key-value store (paper §4.2).
#pragma once

#include <cstdint>
#include <string>

#include "sim/simtime.h"

namespace xp::kv {

// Which write-ahead-log strategy the store uses — the three candidates
// compared in the paper's Fig 8 (from Xu et al. [59]):
enum class WalMode {
  kPosix,  // WAL appended through a POSIX file (syscall + fsync costs)
  kFlex,   // FLEX: WAL appended to mapped pmem with ntstore, no syscalls
  kNone,   // no WAL: the memtable itself is persistent
};

enum class MemtableMode {
  kVolatile,    // DRAM skiplist, rebuilt from the WAL on recovery
  kPersistent,  // fine-grained persistent skiplist in pmem
};

struct DbOptions {
  WalMode wal = WalMode::kFlex;
  MemtableMode memtable = MemtableMode::kVolatile;
  bool sync_every_op = true;            // db_bench --sync
  std::size_t memtable_bytes = 4 << 20; // flush threshold
  unsigned l0_compaction_trigger = 4;   // L0 tables before compaction
  std::uint64_t wal_capacity = 64 << 20;

  // Checksum every WAL record (CRC32C over tag+vlen+key+value, stored in
  // the record header). Catches media garbage that still parses; off by
  // default so the Fig 8 record format and timing are unchanged.
  bool wal_checksum = false;

  // Group commit (§5.1/§5.2): coalesce WAL records into one contiguous
  // XPLine-friendly burst with a single terminator + fence (+ sync) per
  // group instead of per record. Records are acknowledged durable only at
  // the group boundary; a crash mid-group rolls back to the previous
  // group (the batch appears atomically or not at all). Off by default so
  // the Fig 8 record-at-a-time path and timing are unchanged.
  bool wal_group_commit = false;
  // Puts buffered before the filling thread commits the pending group
  // (the leader/follower pattern; Db::put_batch commits its records as
  // one explicit group regardless of this threshold).
  std::size_t wal_group_size = 8;

  // ---- Read path (§5.1), all off by default so the seed read behavior
  // ---- and timing are unchanged ----------------------------------------
  // DRAM residency for read-path metadata: the manifest plus every live
  // SSTable's bloom filter and offset array are mirrored in DRAM (built
  // from bytes already in hand at flush/compaction, loaded once at open),
  // so point gets stop re-loading ~10 KB of filter per table per lookup.
  bool sst_residency = false;
  // XPLine-granular read combining: binary-search probes and value reads
  // fetch whole 256 B lines through a pmem::LineReader instead of
  // dribbling dependent 4-64 B loads.
  bool read_combine = false;
  // DRAM read-cache capacity in 256 B lines (0 = no cache; 4096 = 1 MiB).
  // The cache backs the LineReader, so it only takes effect together with
  // read_combine.
  std::size_t read_cache_lines = 0;

  // ---- Background compaction (§5 under mixed traffic), off by default
  // ---- so the inline-compaction put path and timing are unchanged ------
  // When set, reaching l0_compaction_trigger only *schedules* the merge;
  // it runs when some thread donates a turn via Db::background_work()
  // (the workload engine runs one such thread per store). Writes keep
  // flowing against the growing L0 while the debt is pending; if L0
  // reaches l0_stall_trigger before a background turn arrives, the next
  // write pays the merge inline — the classic write-stall admission gate,
  // which also keeps the manifest's fixed L0 array from overflowing.
  bool background_compaction = false;
  unsigned l0_stall_trigger = 12;  // must stay < Db::kMaxL0

  // CPU-side costs (simulated time) for work that doesn't touch the
  // memory system model: DRAM-structure operations and syscalls.
  sim::Time cpu_memtable_op = sim::ns(250);
  sim::Time syscall = sim::ns(450);
  sim::Time fsync_syscall = sim::ns(700);
};

struct DbStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t deletes = 0;
  std::uint64_t memtable_flushes = 0;
  std::uint64_t compactions = 0;
  // Of `compactions`: how many ran on a donated background turn, and how
  // many times a writer hit the stall gate and paid the merge inline.
  std::uint64_t background_compactions = 0;
  std::uint64_t write_stalls = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t sst_bytes_written = 0;
};

}  // namespace xp::kv
