// Write-ahead log with the two placement strategies from paper §4.2.
//
// kPosix models RocksDB's stock WAL on a DAX file system: every append is
// a write() syscall (user/kernel crossing + a kernel-buffer copy done
// with cached stores) and durability needs an fsync() syscall. kFlex
// models the FLEX optimization [59]: the log file is mapped, appends are
// user-space non-temporal stores, and durability is a single sfence.
// Either way the log is strictly sequential — which is why it runs at
// EWR ~1.0 on the XP DIMM and wins over fine-grained persistence there.
//
// Record format: [u32 tag | u32 vlen | key bytes | value bytes], where
// tag = kTagMagic | klen (klen < 64 Ki). vlen's top bit marks tombstones.
// With DbOptions::wal_checksum a u32 CRC32C (over tag+vlen+key+value) sits
// between vlen and the key. The payload is persisted before the tag, so a
// torn append is invisible to recovery; a checksum mismatch or an
// uncorrectable media error stops replay at the damage point and is
// reported to the caller instead of feeding garbage into the memtable.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "lsmkv/common.h"
#include "pmemlib/linebatch.h"
#include "xpsim/platform.h"

namespace xp::kv {

using hw::PmemNamespace;
using sim::ThreadCtx;

// One record of a group append (views must outlive the call).
struct WalRecord {
  std::string_view key;
  std::string_view value;
  bool tombstone = false;
};

class Wal {
 public:
  static constexpr std::uint32_t kTagMagic = 0xA5A50000u;
  static constexpr std::uint32_t kTombstoneBit = 0x80000000u;

  // The WAL owns [base, base+capacity) of `ns`.
  Wal(PmemNamespace& ns, std::uint64_t base, std::uint64_t capacity,
      WalMode mode, const DbOptions& opts)
      : ns_(ns), base_(base), capacity_(capacity), mode_(mode), opts_(opts) {}

  // Append a record; durable when `sync` is true.
  void append(ThreadCtx& ctx, std::string_view key, std::string_view value,
              bool tombstone, bool sync);

  // Group commit (§5.1/§5.2): append `recs` as one contiguous burst with
  // a single terminator and one fence for the whole group. The group is
  // crash-atomic — the first record's tag is written only after the fence
  // that makes every body, every later tag and the terminator durable, so
  // replay sees all of the group or none of it. One syscall charge (a
  // gathered write()) in kPosix mode.
  void append_group(ThreadCtx& ctx, std::span<const WalRecord> recs,
                    bool sync);

  // Make all prior appends durable.
  void sync(ThreadCtx& ctx);

  // Reset the log after a memtable flush (records before `tail_` become
  // dead). Writes a fresh terminator at the start.
  void truncate(ThreadCtx& ctx);

  // Replay every intact record from the start, in order. Stops (with
  // damaged=true) at the first record whose media is unreadable or whose
  // checksum fails; records already delivered to `fn` stay delivered.
  using ReplayFn = std::function<void(std::string_view key,
                                      std::string_view value,
                                      bool tombstone)>;
  struct ReplayResult {
    std::uint64_t records = 0;
    bool damaged = false;
    std::uint64_t damage_off = 0;  // relative to base, where replay stopped
    std::string reason;
  };
  ReplayResult replay(ThreadCtx& ctx, const ReplayFn& fn);

  std::uint64_t base() const { return base_; }
  std::uint64_t capacity() const { return capacity_; }

  std::uint64_t tail() const { return tail_; }
  std::uint64_t bytes_appended() const { return bytes_appended_; }
  WalMode mode() const { return mode_; }

 private:
  void write_bytes(ThreadCtx& ctx, std::uint64_t off,
                   std::span<const std::uint8_t> data);

  PmemNamespace& ns_;
  std::uint64_t base_;
  std::uint64_t capacity_;
  WalMode mode_;
  const DbOptions& opts_;
  std::uint64_t tail_ = 0;  // next append offset, relative to base_
  std::uint64_t bytes_appended_ = 0;
  // Reused staging memory: append() serializes into scratch_ and
  // append_group() coalesces into batch_, so steady-state appends do no
  // heap allocation.
  std::vector<std::uint8_t> scratch_;
  pmem::LineBatcher batch_;
};

}  // namespace xp::kv
