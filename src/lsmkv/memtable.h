// Volatile (DRAM) memtable: RocksDB's default design, rebuilt from the
// WAL on recovery. Host-side data structure; each operation charges a
// fixed CPU cost in simulated time (it does not touch the modeled
// persistent-memory system — that's the whole point of the design).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "lsmkv/common.h"
#include "sim/scheduler.h"

namespace xp::kv {

enum class FindResult { kFound, kTombstone, kNotFound };

class Memtable {
 public:
  explicit Memtable(const DbOptions& opts) : opts_(opts) {}

  void put(sim::ThreadCtx& ctx, std::string_view key, std::string_view value,
           bool tombstone) {
    ctx.advance_by(opts_.cpu_memtable_op);
    auto [it, inserted] =
        map_.insert_or_assign(std::string(key),
                              Value{std::string(value), tombstone});
    if (inserted) bytes_ += key.size();
    bytes_ += value.size();
  }

  FindResult get(sim::ThreadCtx& ctx, std::string_view key,
                 std::string* value) const {
    ctx.advance_by(opts_.cpu_memtable_op);
    auto it = map_.find(std::string(key));
    if (it == map_.end()) return FindResult::kNotFound;
    if (it->second.tombstone) return FindResult::kTombstone;
    if (value != nullptr) *value = it->second.data;
    return FindResult::kFound;
  }

  std::size_t bytes() const { return bytes_; }
  std::size_t entries() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  // Sorted iteration: fn(key, value, tombstone).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [k, v] : map_) fn(k, v.data, v.tombstone);
  }

  void clear() {
    map_.clear();
    bytes_ = 0;
  }

 private:
  struct Value {
    std::string data;
    bool tombstone;
  };
  const DbOptions& opts_;
  std::map<std::string, Value, std::less<>> map_;
  std::size_t bytes_ = 0;
};

}  // namespace xp::kv
