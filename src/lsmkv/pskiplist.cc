#include "lsmkv/pskiplist.h"

#include <cstring>
#include <vector>

#include "pmemlib/pmem_ops.h"

namespace xp::kv {

namespace {
std::span<const std::uint8_t> bytes_of(const void* p, std::size_t n) {
  return {static_cast<const std::uint8_t*>(p), n};
}
}  // namespace

void PSkiplist::create(sim::ThreadCtx& ctx) {
  NodeHeader head{};
  head.level = kMaxLevel;
  head_ = pool_.ns().size();  // placeholder until allocated
  head_ = pool_.alloc_raw(ctx, sizeof(NodeHeader));
  pool_.ns().ntstore_persist(ctx, head_, bytes_of(&head, sizeof(head)));
  pmem::store_persist_pod(ctx, pool_.ns(), root_off_, head_);
}

void PSkiplist::open(sim::ThreadCtx& ctx) {
  head_ = pool_.ns().load_pod<std::uint64_t>(ctx, root_off_);
}

std::string PSkiplist::read_key(sim::ThreadCtx& ctx, std::uint64_t node,
                                const NodeHeader& h) {
  std::string key(h.klen, '\0');
  pool_.ns().load(ctx, node + sizeof(NodeHeader),
                  std::span<std::uint8_t>(
                      reinterpret_cast<std::uint8_t*>(key.data()), h.klen));
  return key;
}

int PSkiplist::random_level() {
  int level = 1;
  while (level < kMaxLevel && rng_.bernoulli(0.25)) ++level;
  return level;
}

void PSkiplist::put(sim::ThreadCtx& ctx, std::string_view key,
                    std::string_view value, bool tombstone) {
  auto& ns = pool_.ns();
  // Find predecessors at every level (new node goes *before* equal keys,
  // so the newest version of a key is found first).
  std::uint64_t preds[kMaxLevel];
  std::uint64_t succs[kMaxLevel];
  std::uint64_t cur = head_;
  NodeHeader cur_h = ns.load_pod<NodeHeader>(ctx, cur);
  for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
    while (true) {
      const std::uint64_t nxt = cur_h.next[lvl];
      if (nxt == 0) break;
      const NodeHeader nxt_h = ns.load_pod<NodeHeader>(ctx, nxt);
      if (read_key(ctx, nxt, nxt_h) >= key) break;
      cur = nxt;
      cur_h = nxt_h;
    }
    preds[lvl] = cur;
    succs[lvl] = cur_h.next[lvl];
  }

  // Build and persist the node (not yet visible).
  const int level = random_level();
  NodeHeader h{};
  h.klen = static_cast<std::uint32_t>(key.size());
  h.vlen = static_cast<std::uint32_t>(value.size()) |
           (tombstone ? kTombstoneBit : 0);
  h.level = static_cast<std::uint32_t>(level);
  for (int l = 0; l < level; ++l) h.next[l] = succs[l];

  const std::size_t node_size = sizeof(NodeHeader) + key.size() + value.size();
  const std::uint64_t node = pool_.alloc_raw(ctx, node_size);
  std::vector<std::uint8_t> buf(node_size);
  std::memcpy(buf.data(), &h, sizeof(h));
  std::memcpy(buf.data() + sizeof(h), key.data(), key.size());
  if (!value.empty())  // tombstones carry a null, zero-length value view
    std::memcpy(buf.data() + sizeof(h) + key.size(), value.data(),
                value.size());
  ns.store_flush(ctx, node, buf);
  ns.sfence(ctx);

  // Link bottom-up; each link is an atomic 8-byte persist.
  for (int l = 0; l < level; ++l) {
    pmem::store_persist_pod(
        ctx, ns, preds[l] + offsetof(NodeHeader, next) + l * 8, node);
  }
}

FindResult PSkiplist::get(sim::ThreadCtx& ctx, std::string_view key,
                          std::string* value) {
  auto& ns = pool_.ns();
  std::uint64_t cur = head_;
  NodeHeader cur_h = ns.load_pod<NodeHeader>(ctx, cur);
  for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
    while (true) {
      const std::uint64_t nxt = cur_h.next[lvl];
      if (nxt == 0) break;
      const NodeHeader nxt_h = ns.load_pod<NodeHeader>(ctx, nxt);
      if (read_key(ctx, nxt, nxt_h) >= key) break;
      cur = nxt;
      cur_h = nxt_h;
    }
  }
  const std::uint64_t cand = cur_h.next[0];
  if (cand == 0) return FindResult::kNotFound;
  const NodeHeader cand_h = ns.load_pod<NodeHeader>(ctx, cand);
  if (read_key(ctx, cand, cand_h) != key) return FindResult::kNotFound;
  if (cand_h.vlen & kTombstoneBit) return FindResult::kTombstone;
  const std::uint32_t vlen = cand_h.vlen & ~kTombstoneBit;
  if (value != nullptr) {
    value->resize(vlen);
    ns.load(ctx, cand + sizeof(NodeHeader) + cand_h.klen,
            std::span<std::uint8_t>(
                reinterpret_cast<std::uint8_t*>(value->data()), vlen));
  }
  return FindResult::kFound;
}

void PSkiplist::for_each(
    sim::ThreadCtx& ctx,
    const std::function<void(std::string_view, std::string_view, bool)>& fn) {
  auto& ns = pool_.ns();
  const NodeHeader head_h = ns.load_pod<NodeHeader>(ctx, head_);
  std::uint64_t cur = head_h.next[0];
  std::string last_key;
  bool have_last = false;
  while (cur != 0) {
    const NodeHeader h = ns.load_pod<NodeHeader>(ctx, cur);
    const std::string key = read_key(ctx, cur, h);
    if (!have_last || key != last_key) {
      const std::uint32_t vlen = h.vlen & ~kTombstoneBit;
      std::string value(vlen, '\0');
      ns.load(ctx, cur + sizeof(NodeHeader) + h.klen,
              std::span<std::uint8_t>(
                  reinterpret_cast<std::uint8_t*>(value.data()), vlen));
      fn(key, value, (h.vlen & kTombstoneBit) != 0);
      last_key = key;
      have_last = true;
    }
    cur = h.next[0];
  }
}

PSkiplist::Footprint PSkiplist::footprint(sim::ThreadCtx& ctx) {
  auto& ns = pool_.ns();
  Footprint fp;
  const NodeHeader head_h = ns.load_pod<NodeHeader>(ctx, head_);
  std::uint64_t cur = head_h.next[0];
  while (cur != 0) {
    const NodeHeader h = ns.load_pod<NodeHeader>(ctx, cur);
    ++fp.entries;
    fp.bytes += h.klen + (h.vlen & ~kTombstoneBit);
    cur = h.next[0];
  }
  return fp;
}

}  // namespace xp::kv
