#include "lsmkv/sstable.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "lsmkv/bloom.h"
#include "sim/crc32.h"

namespace xp::kv {

std::uint64_t SsTable::encoded_size(const std::vector<Entry>& entries) {
  BloomBuilder bloom(entries.size());
  std::uint64_t size =
      sizeof(Header) + bloom.bits().size() + entries.size() * 4;
  for (const Entry& e : entries) size += 8 + e.key.size() + e.value.size();
  return size;
}

std::uint64_t SsTable::build(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                             std::uint64_t off,
                             const std::vector<Entry>& entries,
                             std::vector<std::uint8_t>* scratch,
                             Residency* residency) {
  const std::uint64_t total = encoded_size(entries);
  std::vector<std::uint8_t> local;
  std::vector<std::uint8_t>& buf = scratch != nullptr ? *scratch : local;
  buf.resize(total);  // every byte below is overwritten; stale reuse is fine

  BloomBuilder bloom(entries.size());
  for (const Entry& e : entries) bloom.add(e.key);

  Header h{kMagic, static_cast<std::uint32_t>(entries.size()),
           static_cast<std::uint32_t>(total),
           static_cast<std::uint32_t>(bloom.bits().size()), 0};
  std::memcpy(buf.data() + sizeof(Header), bloom.bits().data(),
              bloom.bits().size());

  const std::size_t offsets_at = sizeof(Header) + bloom.bits().size();
  const std::size_t data_at = offsets_at + entries.size() * 4;
  std::size_t pos = data_at;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    const auto rel = static_cast<std::uint32_t>(pos - data_at);
    std::memcpy(buf.data() + offsets_at + i * 4, &rel, 4);
    const auto klen = static_cast<std::uint32_t>(e.key.size());
    const std::uint32_t vlen = static_cast<std::uint32_t>(e.value.size()) |
                               (e.tombstone ? kTombstoneBit : 0);
    std::memcpy(buf.data() + pos, &klen, 4);
    std::memcpy(buf.data() + pos + 4, &vlen, 4);
    std::memcpy(buf.data() + pos + 8, e.key.data(), e.key.size());
    std::memcpy(buf.data() + pos + 8 + e.key.size(), e.value.data(),
                e.value.size());
    pos += 8 + e.key.size() + e.value.size();
  }
  assert(pos == total);
  h.crc = sim::crc32c(buf.data() + sizeof(Header), total - sizeof(Header));
  std::memcpy(buf.data(), &h, sizeof(h));

  if (residency != nullptr) {
    residency->count = h.count;
    residency->filter.assign(buf.data() + sizeof(Header),
                             buf.data() + sizeof(Header) + h.filter_len);
    residency->offsets.resize(entries.size());
    std::memcpy(residency->offsets.data(), buf.data() + offsets_at,
                entries.size() * 4);
  }

  // One big sequential non-temporal write (chunked to bound scheduler-step
  // atomicity), then a fence.
  constexpr std::size_t kChunk = 4096;
  for (std::size_t p = 0; p < total; p += kChunk) {
    const std::size_t n = std::min(kChunk, static_cast<std::size_t>(total) - p);
    ns.ntstore(ctx, off + p,
               std::span<const std::uint8_t>(buf.data() + p, n));
  }
  ns.sfence(ctx);
  return total;
}

Status SsTable::verify_checksum(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                                std::uint64_t off) {
  Header h{};
  try {
    h = ns.load_pod<Header>(ctx, off);
  } catch (const hw::MediaError& e) {
    return Status::MediaFault(e.what());
  }
  if (h.magic != kMagic) return Status::Corruption("sstable: bad magic");
  if (h.total_bytes < sizeof(Header))
    return Status::Corruption("sstable: total_bytes smaller than header");
  std::uint32_t crc = 0;
  constexpr std::size_t kChunk = 4096;
  std::vector<std::uint8_t> buf(kChunk);
  try {
    for (std::uint64_t p = sizeof(Header); p < h.total_bytes; p += kChunk) {
      const std::size_t n = std::min<std::uint64_t>(kChunk, h.total_bytes - p);
      ns.load(ctx, off + p, std::span<std::uint8_t>(buf.data(), n));
      crc = sim::crc32c(buf.data(), n, crc);
    }
  } catch (const hw::MediaError& e) {
    return Status::MediaFault(e.what());
  }
  if (crc != h.crc) return Status::Corruption("sstable: content crc mismatch");
  return Status::Ok();
}

std::uint32_t SsTable::count(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                             std::uint64_t off) {
  const auto h = ns.load_pod<Header>(ctx, off);
  return h.magic == kMagic ? h.count : 0;
}

std::uint64_t SsTable::size_bytes(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                                  std::uint64_t off) {
  const auto h = ns.load_pod<Header>(ctx, off);
  return h.magic == kMagic ? h.total_bytes : 0;
}

FindResult SsTable::get(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                        std::uint64_t off, std::string_view key,
                        std::string* value, std::string* keybuf) {
  const auto h = ns.load_pod<Header>(ctx, off);
  assert(h.magic == kMagic);
  // Bloom check first: absent keys skip the run with high probability.
  std::vector<std::uint8_t> filter(h.filter_len);
  if (h.filter_len > 0) ns.load(ctx, off + sizeof(Header), filter);
  if (!BloomBuilder::may_contain(filter.data(), filter.size(), key))
    return FindResult::kNotFound;
  const std::uint64_t offsets_at = off + sizeof(Header) + h.filter_len;
  const std::uint64_t data_at = offsets_at + h.count * 4;

  std::string local;
  std::string& k = keybuf != nullptr ? *keybuf : local;
  std::uint32_t lo = 0, hi = h.count;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const auto rel = ns.load_pod<std::uint32_t>(ctx, offsets_at + mid * 4);
    const auto klen = ns.load_pod<std::uint32_t>(ctx, data_at + rel);
    k.resize(klen);
    ns.load(ctx, data_at + rel + 8,
            std::span<std::uint8_t>(
                reinterpret_cast<std::uint8_t*>(k.data()), klen));
    if (k < key) {
      lo = mid + 1;
    } else if (k > key) {
      hi = mid;
    } else {
      const auto vraw = ns.load_pod<std::uint32_t>(ctx, data_at + rel + 4);
      if (vraw & kTombstoneBit) return FindResult::kTombstone;
      const std::uint32_t vlen = vraw & ~kTombstoneBit;
      if (value != nullptr) {
        value->resize(vlen);
        ns.load(ctx, data_at + rel + 8 + klen,
                std::span<std::uint8_t>(
                    reinterpret_cast<std::uint8_t*>(value->data()), vlen));
      }
      return FindResult::kFound;
    }
  }
  return FindResult::kNotFound;
}

SsTable::Residency SsTable::load_residency(sim::ThreadCtx& ctx,
                                           hw::PmemNamespace& ns,
                                           std::uint64_t off) {
  const auto h = ns.load_pod<Header>(ctx, off);
  assert(h.magic == kMagic);
  Residency r;
  r.count = h.count;
  r.filter.resize(h.filter_len);
  if (h.filter_len > 0) ns.load(ctx, off + sizeof(Header), r.filter);
  r.offsets.resize(h.count);
  if (h.count > 0)
    ns.load(ctx, off + sizeof(Header) + h.filter_len,
            std::span<std::uint8_t>(
                reinterpret_cast<std::uint8_t*>(r.offsets.data()),
                std::size_t{h.count} * 4));
  return r;
}

FindResult SsTable::get_ex(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                           std::uint64_t off, std::string_view key,
                           std::string* value, const ReadCtx& rc) {
  if (rc.res == nullptr && rc.reader == nullptr)
    return get(ctx, ns, off, key, value, rc.keybuf);

  std::uint32_t count;
  std::uint32_t filter_len;
  const std::uint8_t* fbits;
  std::vector<std::uint8_t> filter_local;
  if (rc.res != nullptr) {
    count = rc.res->count;
    filter_len = static_cast<std::uint32_t>(rc.res->filter.size());
    fbits = rc.res->filter.data();
  } else {
    const auto h = rc.reader->fetch_pod<Header>(ctx, ns, off);
    assert(h.magic == kMagic);
    count = h.count;
    filter_len = h.filter_len;
    filter_local.resize(filter_len);
    if (filter_len > 0)
      rc.reader->read(ctx, ns, off + sizeof(Header), filter_local);
    fbits = filter_local.data();
  }
  if (!BloomBuilder::may_contain(fbits, filter_len, key))
    return FindResult::kNotFound;
  const std::uint64_t offsets_at = off + sizeof(Header) + filter_len;
  const std::uint64_t data_at = offsets_at + std::uint64_t{count} * 4;

  std::string local;
  std::string& k = rc.keybuf != nullptr ? *rc.keybuf : local;
  std::uint32_t lo = 0, hi = count;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const std::uint32_t rel =
        rc.res != nullptr
            ? rc.res->offsets[mid]
            : rc.reader->fetch_pod<std::uint32_t>(ctx, ns,
                                                  offsets_at + mid * 4);
    if (rc.reader != nullptr) {
      // One line-aligned fetch stages the entry header and (for the
      // expected key size) the whole probe key; klen/vraw must be copied
      // out before the next fetch invalidates the staged pointer.
      const std::uint8_t* e =
          rc.reader->fetch(ctx, ns, data_at + rel, 8, 8 + key.size());
      std::uint32_t klen, vraw;
      std::memcpy(&klen, e, 4);
      std::memcpy(&vraw, e + 4, 4);
      const std::uint8_t* kb = rc.reader->fetch(ctx, ns, data_at + rel + 8,
                                                klen);
      const std::size_t n = std::min<std::size_t>(klen, key.size());
      int c = n == 0 ? 0 : std::memcmp(kb, key.data(), n);
      if (c == 0 && klen != key.size()) c = klen < key.size() ? -1 : 1;
      if (c < 0) {
        lo = mid + 1;
      } else if (c > 0) {
        hi = mid;
      } else {
        if (vraw & kTombstoneBit) return FindResult::kTombstone;
        const std::uint32_t vlen = vraw & ~kTombstoneBit;
        if (value != nullptr) {
          value->resize(vlen);
          rc.reader->read(ctx, ns, data_at + rel + 8 + klen,
                          std::span<std::uint8_t>(
                              reinterpret_cast<std::uint8_t*>(value->data()),
                              vlen));
        }
        return FindResult::kFound;
      }
    } else {
      // Residency only: the probe itself uses the seed load sequence,
      // minus the offset-array load.
      const auto klen = ns.load_pod<std::uint32_t>(ctx, data_at + rel);
      k.resize(klen);
      ns.load(ctx, data_at + rel + 8,
              std::span<std::uint8_t>(
                  reinterpret_cast<std::uint8_t*>(k.data()), klen));
      if (k < key) {
        lo = mid + 1;
      } else if (k > key) {
        hi = mid;
      } else {
        const auto vraw = ns.load_pod<std::uint32_t>(ctx, data_at + rel + 4);
        if (vraw & kTombstoneBit) return FindResult::kTombstone;
        const std::uint32_t vlen = vraw & ~kTombstoneBit;
        if (value != nullptr) {
          value->resize(vlen);
          ns.load(ctx, data_at + rel + 8 + klen,
                  std::span<std::uint8_t>(
                      reinterpret_cast<std::uint8_t*>(value->data()), vlen));
        }
        return FindResult::kFound;
      }
    }
  }
  return FindResult::kNotFound;
}

void SsTable::for_each(
    sim::ThreadCtx& ctx, hw::PmemNamespace& ns, std::uint64_t off,
    const std::function<void(std::string_view, std::string_view, bool)>& fn) {
  const auto h = ns.load_pod<Header>(ctx, off);
  assert(h.magic == kMagic);
  const std::uint64_t offsets_at = off + sizeof(Header) + h.filter_len;
  const std::uint64_t data_at = offsets_at + h.count * 4;
  for (std::uint32_t i = 0; i < h.count; ++i) {
    const auto rel = ns.load_pod<std::uint32_t>(ctx, offsets_at + i * 4);
    const auto klen = ns.load_pod<std::uint32_t>(ctx, data_at + rel);
    const auto vraw = ns.load_pod<std::uint32_t>(ctx, data_at + rel + 4);
    const std::uint32_t vlen = vraw & ~kTombstoneBit;
    std::string k(klen, '\0');
    std::string v(vlen, '\0');
    ns.load(ctx, data_at + rel + 8,
            std::span<std::uint8_t>(
                reinterpret_cast<std::uint8_t*>(k.data()), klen));
    ns.load(ctx, data_at + rel + 8 + klen,
            std::span<std::uint8_t>(
                reinterpret_cast<std::uint8_t*>(v.data()), vlen));
    fn(k, v, (vraw & kTombstoneBit) != 0);
  }
}

}  // namespace xp::kv
