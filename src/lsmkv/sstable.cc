#include "lsmkv/sstable.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "lsmkv/bloom.h"
#include "sim/crc32.h"

namespace xp::kv {

std::uint64_t SsTable::encoded_size(const std::vector<Entry>& entries) {
  BloomBuilder bloom(entries.size());
  std::uint64_t size =
      sizeof(Header) + bloom.bits().size() + entries.size() * 4;
  for (const Entry& e : entries) size += 8 + e.key.size() + e.value.size();
  return size;
}

std::uint64_t SsTable::build(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                             std::uint64_t off,
                             const std::vector<Entry>& entries,
                             std::vector<std::uint8_t>* scratch) {
  const std::uint64_t total = encoded_size(entries);
  std::vector<std::uint8_t> local;
  std::vector<std::uint8_t>& buf = scratch != nullptr ? *scratch : local;
  buf.resize(total);  // every byte below is overwritten; stale reuse is fine

  BloomBuilder bloom(entries.size());
  for (const Entry& e : entries) bloom.add(e.key);

  Header h{kMagic, static_cast<std::uint32_t>(entries.size()),
           static_cast<std::uint32_t>(total),
           static_cast<std::uint32_t>(bloom.bits().size()), 0};
  std::memcpy(buf.data() + sizeof(Header), bloom.bits().data(),
              bloom.bits().size());

  const std::size_t offsets_at = sizeof(Header) + bloom.bits().size();
  const std::size_t data_at = offsets_at + entries.size() * 4;
  std::size_t pos = data_at;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    const auto rel = static_cast<std::uint32_t>(pos - data_at);
    std::memcpy(buf.data() + offsets_at + i * 4, &rel, 4);
    const auto klen = static_cast<std::uint32_t>(e.key.size());
    const std::uint32_t vlen = static_cast<std::uint32_t>(e.value.size()) |
                               (e.tombstone ? kTombstoneBit : 0);
    std::memcpy(buf.data() + pos, &klen, 4);
    std::memcpy(buf.data() + pos + 4, &vlen, 4);
    std::memcpy(buf.data() + pos + 8, e.key.data(), e.key.size());
    std::memcpy(buf.data() + pos + 8 + e.key.size(), e.value.data(),
                e.value.size());
    pos += 8 + e.key.size() + e.value.size();
  }
  assert(pos == total);
  h.crc = sim::crc32c(buf.data() + sizeof(Header), total - sizeof(Header));
  std::memcpy(buf.data(), &h, sizeof(h));

  // One big sequential non-temporal write (chunked to bound scheduler-step
  // atomicity), then a fence.
  constexpr std::size_t kChunk = 4096;
  for (std::size_t p = 0; p < total; p += kChunk) {
    const std::size_t n = std::min(kChunk, static_cast<std::size_t>(total) - p);
    ns.ntstore(ctx, off + p,
               std::span<const std::uint8_t>(buf.data() + p, n));
  }
  ns.sfence(ctx);
  return total;
}

Status SsTable::verify_checksum(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                                std::uint64_t off) {
  Header h{};
  try {
    h = ns.load_pod<Header>(ctx, off);
  } catch (const hw::MediaError& e) {
    return Status::MediaFault(e.what());
  }
  if (h.magic != kMagic) return Status::Corruption("sstable: bad magic");
  if (h.total_bytes < sizeof(Header))
    return Status::Corruption("sstable: total_bytes smaller than header");
  std::uint32_t crc = 0;
  constexpr std::size_t kChunk = 4096;
  std::vector<std::uint8_t> buf(kChunk);
  try {
    for (std::uint64_t p = sizeof(Header); p < h.total_bytes; p += kChunk) {
      const std::size_t n = std::min<std::uint64_t>(kChunk, h.total_bytes - p);
      ns.load(ctx, off + p, std::span<std::uint8_t>(buf.data(), n));
      crc = sim::crc32c(buf.data(), n, crc);
    }
  } catch (const hw::MediaError& e) {
    return Status::MediaFault(e.what());
  }
  if (crc != h.crc) return Status::Corruption("sstable: content crc mismatch");
  return Status::Ok();
}

std::uint32_t SsTable::count(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                             std::uint64_t off) {
  const auto h = ns.load_pod<Header>(ctx, off);
  return h.magic == kMagic ? h.count : 0;
}

std::uint64_t SsTable::size_bytes(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                                  std::uint64_t off) {
  const auto h = ns.load_pod<Header>(ctx, off);
  return h.magic == kMagic ? h.total_bytes : 0;
}

FindResult SsTable::get(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                        std::uint64_t off, std::string_view key,
                        std::string* value) {
  const auto h = ns.load_pod<Header>(ctx, off);
  assert(h.magic == kMagic);
  // Bloom check first: absent keys skip the run with high probability.
  std::vector<std::uint8_t> filter(h.filter_len);
  if (h.filter_len > 0) ns.load(ctx, off + sizeof(Header), filter);
  if (!BloomBuilder::may_contain(filter.data(), filter.size(), key))
    return FindResult::kNotFound;
  const std::uint64_t offsets_at = off + sizeof(Header) + h.filter_len;
  const std::uint64_t data_at = offsets_at + h.count * 4;

  std::uint32_t lo = 0, hi = h.count;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const auto rel = ns.load_pod<std::uint32_t>(ctx, offsets_at + mid * 4);
    const auto klen = ns.load_pod<std::uint32_t>(ctx, data_at + rel);
    std::string k(klen, '\0');
    ns.load(ctx, data_at + rel + 8,
            std::span<std::uint8_t>(
                reinterpret_cast<std::uint8_t*>(k.data()), klen));
    if (k < key) {
      lo = mid + 1;
    } else if (k > key) {
      hi = mid;
    } else {
      const auto vraw = ns.load_pod<std::uint32_t>(ctx, data_at + rel + 4);
      if (vraw & kTombstoneBit) return FindResult::kTombstone;
      const std::uint32_t vlen = vraw & ~kTombstoneBit;
      if (value != nullptr) {
        value->resize(vlen);
        ns.load(ctx, data_at + rel + 8 + klen,
                std::span<std::uint8_t>(
                    reinterpret_cast<std::uint8_t*>(value->data()), vlen));
      }
      return FindResult::kFound;
    }
  }
  return FindResult::kNotFound;
}

void SsTable::for_each(
    sim::ThreadCtx& ctx, hw::PmemNamespace& ns, std::uint64_t off,
    const std::function<void(std::string_view, std::string_view, bool)>& fn) {
  const auto h = ns.load_pod<Header>(ctx, off);
  assert(h.magic == kMagic);
  const std::uint64_t offsets_at = off + sizeof(Header) + h.filter_len;
  const std::uint64_t data_at = offsets_at + h.count * 4;
  for (std::uint32_t i = 0; i < h.count; ++i) {
    const auto rel = ns.load_pod<std::uint32_t>(ctx, offsets_at + i * 4);
    const auto klen = ns.load_pod<std::uint32_t>(ctx, data_at + rel);
    const auto vraw = ns.load_pod<std::uint32_t>(ctx, data_at + rel + 4);
    const std::uint32_t vlen = vraw & ~kTombstoneBit;
    std::string k(klen, '\0');
    std::string v(vlen, '\0');
    ns.load(ctx, data_at + rel + 8,
            std::span<std::uint8_t>(
                reinterpret_cast<std::uint8_t*>(k.data()), klen));
    ns.load(ctx, data_at + rel + 8 + klen,
            std::span<std::uint8_t>(
                reinterpret_cast<std::uint8_t*>(v.data()), vlen));
    fn(k, v, (vraw & kTombstoneBit) != 0);
  }
}

}  // namespace xp::kv
