// Low-level persistence helpers (the PMDK libpmem equivalents).
//
// Encodes the paper's §5.2 guideline directly: cached stores + clwb win
// for small transfers, non-temporal stores win for large ones (the
// crossover is ~1 KB, Fig 15); flushing right after each store keeps the
// access stream sequential at the XPBuffer.
#pragma once

#include <cstdint>
#include <span>

#include "xpsim/platform.h"

namespace xp::pmem {

using hw::PmemNamespace;
using sim::ThreadCtx;

enum class WriteHint {
  kCached,  // store + clwb (+ fence)
  kNt,      // ntstore (+ fence)
  kAuto,    // pick by size: cached below the crossover, nt above
};

// Size at which ntstore starts beating store+clwb on the XP DIMM (§5.2.1).
inline constexpr std::size_t kNtCrossoverBytes = 1024;

// Copy `data` into persistent memory and make it durable.
inline void memcpy_persist(ThreadCtx& ctx, PmemNamespace& ns,
                           std::uint64_t off,
                           std::span<const std::uint8_t> data,
                           WriteHint hint = WriteHint::kAuto) {
  const bool use_nt =
      hint == WriteHint::kNt ||
      (hint == WriteHint::kAuto && data.size() >= kNtCrossoverBytes);
  if (use_nt) {
    ns.ntstore(ctx, off, data);
  } else {
    ns.store_flush(ctx, off, data);
  }
  ns.sfence(ctx);
}

// Same, but without the trailing fence (callers batching several writes
// issue one fence at the end).
inline void memcpy_flush(ThreadCtx& ctx, PmemNamespace& ns, std::uint64_t off,
                         std::span<const std::uint8_t> data,
                         WriteHint hint = WriteHint::kAuto) {
  const bool use_nt =
      hint == WriteHint::kNt ||
      (hint == WriteHint::kAuto && data.size() >= kNtCrossoverBytes);
  if (use_nt) {
    ns.ntstore(ctx, off, data);
  } else {
    ns.store_flush(ctx, off, data);
  }
}

template <typename T>
void store_persist_pod(ThreadCtx& ctx, PmemNamespace& ns, std::uint64_t off,
                       const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  ns.store_persist(ctx, off,
                   std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(&v), sizeof(T)));
}

}  // namespace xp::pmem
