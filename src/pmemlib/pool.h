// Persistent pool: a crash-consistent heap on a PmemNamespace.
//
// Mini-PMDK (libpmemobj) equivalent: a pool has a header, a fixed array of
// per-thread transaction lanes (undo logs), and a heap managed by a
// logged first-fit free-list allocator. All mutations of pool metadata go
// through transactions, so a crash at any instruction boundary recovers to
// a consistent state (tests verify this property at random crash points).
//
// Layout:
//   [0, 4K)                 header
//   [4K, 4K + L*lane_size)  transaction lanes (undo logs)
//   [heap_base, size)       heap
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pmemlib/pmem_ops.h"
#include "sim/status.h"
#include "xpsim/platform.h"

namespace xp::pmem {

class Tx;

class Pool {
 public:
  static constexpr std::uint64_t kMagic = 0x58504d454d504f4cULL;
  static constexpr unsigned kLanes = 8;
  static constexpr std::uint64_t kLaneSize = 256 * 1024;
  static constexpr std::uint64_t kHeaderSize = 4096;

  explicit Pool(hw::PmemNamespace& ns) : ns_(ns) {}

  // Format a new pool with a zeroed root object of `root_size` bytes.
  void create(ThreadCtx& ctx, std::uint64_t root_size);

  // Open an existing pool; replays/rolls back interrupted transactions.
  // Returns false if the namespace does not hold a valid pool (neither
  // header copy readable and intact).
  //
  // Media-error tolerant: a poisoned primary header falls back to the
  // backup copy (identity restored, allocator state sealed), a lane whose
  // undo log is unreadable is scrubbed and forced idle (its unacknowledged
  // transaction is neither rolled back nor completed — every logged store
  // is individually ordered, so the pool stays structurally consistent),
  // and a poisoned rollback *target* line is scrubbed and then restored
  // from its snapshot. Everything done is reported in recovery().
  bool open(ThreadCtx& ctx);

  // What the last open()/repair() had to do to get here. Empty vectors /
  // false flags mean a clean, damage-free recovery.
  struct RecoveryInfo {
    bool header_restored = false;  // primary header rebuilt from backup
    bool heap_sealed = false;      // allocator state lost: no more allocs
    unsigned lanes_forced_idle = 0;
    bool free_list_truncated = false;
    // Every 256 B line that was zeroed because its media failed. Data on
    // these lines is gone; owners must treat it as lost, not as zeros.
    std::vector<std::uint64_t> scrubbed_lines;
    bool damaged() const {
      return header_restored || lanes_forced_idle != 0 ||
             free_list_truncated || !scrubbed_lines.empty();
    }
  };
  const RecoveryInfo& recovery() const { return recovery_; }

  // Zero the 256 B XPLine containing `line_off` with a full-line ntstore
  // (which clears its poison) and record it in recovery().scrubbed_lines.
  void scrub_line(ThreadCtx& ctx, std::uint64_t line_off);

  // Scrub every poisoned line the ARS reports over the whole namespace,
  // then repair the free list if anything was scrubbed. Store-level
  // callers that keep structure on the heap (cmap/stree) must excise
  // damaged nodes *before* calling this, because scrubbing turns poison
  // into zeros.
  void repair(ThreadCtx& ctx);

  // Recovery invariants (crashmc checker entry point). Call after open():
  // verifies the header, that every lane is durably idle, and that the
  // allocator metadata is sane — heap_top within bounds and the free list
  // acyclic, aligned, in-heap, and non-overlapping.
  Status check(ThreadCtx& ctx);

  // Test-only fault injection for crashmc's negative tests: deliberately
  // weakens the persistence protocol so the harness can demonstrate it
  // catches real bugs. Never set outside tests.
  enum class TestFault {
    kNone,
    // Tx::commit() retires the lane with a plain store (no clwb): the
    // commit record can be lost on power failure, so recovery may roll
    // back an acknowledged transaction.
    kSkipCommitFlush,
  };
  void set_test_fault(TestFault f) { test_fault_ = f; }

  std::uint64_t root(ThreadCtx& ctx);
  std::uint64_t root_size(ThreadCtx& ctx);

  // Transactional allocation (PMDK pmemobj_tx_alloc/_free equivalents).
  // Returned offsets are 64-byte aligned. Allocation metadata updates are
  // undo-logged in `tx`, so an aborted or crashed transaction leaks
  // nothing and frees nothing.
  std::uint64_t tx_alloc(Tx& tx, std::uint64_t size);
  void tx_free(Tx& tx, std::uint64_t off, std::uint64_t size);

  // Non-transactional allocation for initial data-structure setup.
  std::uint64_t alloc_raw(ThreadCtx& ctx, std::uint64_t size);

  hw::PmemNamespace& ns() { return ns_; }

  // Introspection for tests.
  std::uint64_t heap_top(ThreadCtx& ctx);
  std::uint64_t free_list_head(ThreadCtx& ctx);

  // Heap bounds, for structural checkers validating that object offsets
  // written by higher-level stores point into allocated pool memory.
  static constexpr std::uint64_t heap_base() { return kHeapBase; }

 private:
  friend class Tx;

  struct Header {
    std::uint64_t magic;
    std::uint64_t pool_size;
    std::uint64_t root_off;
    std::uint64_t root_size;
    std::uint64_t heap_top;
    std::uint64_t free_head;  // 0 = empty free list
    // CRC32C over the four identity fields above (magic..root_size),
    // written at create() and never updated — the mutable allocator
    // fields stay out so the hot-path field writes are unchanged.
    std::uint32_t identity_crc;
    std::uint32_t reserved;
  };
  // Redundant copy of the header (critical metadata), inside the header
  // page, written at create(): if the primary's XPLine goes bad, open()
  // restores identity from here.
  static constexpr std::uint64_t kBackupHeaderOff = 2048;
  // Free chunks carry {next, size} in their first 16 bytes.
  struct FreeChunk {
    std::uint64_t next;
    std::uint64_t size;
  };

  static constexpr std::uint64_t kHeapBase =
      kHeaderSize + kLanes * kLaneSize;

  Header read_header(ThreadCtx& ctx) {
    return ns_.load_pod<Header>(ctx, 0);
  }
  void write_header_field(ThreadCtx& ctx, std::uint64_t field_off,
                          std::uint64_t value) {
    store_persist_pod(ctx, ns_, field_off, value);
  }

  std::uint64_t lane_off(unsigned lane) const {
    return kHeaderSize + lane * kLaneSize;
  }

  void recover_lane(ThreadCtx& ctx, unsigned lane);

  static std::uint32_t header_crc(const Header& h);
  bool header_valid(const Header& h) const;
  std::string check_impl(ThreadCtx& ctx);
  // Drop the unreachable/damaged suffix of the free list at the first
  // chunk that is unreadable or structurally invalid.
  void repair_free_list(ThreadCtx& ctx);

  // Point `prev` (a free chunk, or the header's free_head when 0) at
  // `next`, undo-logged in `tx`.
  void relink(Tx& tx, std::uint64_t prev, std::uint64_t next);

  hw::PmemNamespace& ns_;
  TestFault test_fault_ = TestFault::kNone;
  RecoveryInfo recovery_;
};

// Undo-log transaction. Usage:
//   Tx tx(pool, ctx);            // picks a lane from the thread id
//   tx.add(off, len);            // snapshot before modifying
//   pool.ns().store_flush(...);  // or tx.store(...)
//   tx.commit();                 // durable; ~Tx() without commit aborts
class Tx {
 public:
  Tx(Pool& pool, ThreadCtx& ctx);
  ~Tx();

  Tx(const Tx&) = delete;
  Tx& operator=(const Tx&) = delete;

  // Snapshot [off, off+len) into the undo log (PMDK TX_ADD).
  void add(std::uint64_t off, std::uint32_t len);

  // add() + store + flush (fence deferred to commit).
  void store(std::uint64_t off, std::span<const std::uint8_t> data);

  void commit();
  void abort();

  // Crash-test support: drop the handle without rolling back or
  // committing, as if the process died here. The lane stays active in the
  // pool; the next open() rolls it back.
  void release() { active_ = false; }

  bool active() const { return active_; }
  unsigned lane() const { return lane_; }

 private:
  struct LaneHeader {
    std::uint32_t state;  // 0 idle, 1 active
    std::uint32_t nentries;
    std::uint64_t blob_top;  // next free byte in the blob area
  };
  struct Entry {
    std::uint64_t off;
    std::uint32_t len;
    std::uint32_t blob_off;  // within the lane's blob area
  };
  static constexpr std::uint32_t kMaxEntries = 1024;
  static constexpr std::uint64_t kEntriesOff = 64;
  static constexpr std::uint64_t kBlobOff =
      kEntriesOff + kMaxEntries * sizeof(Entry);

  friend class Pool;
  static void recover(Pool& pool, ThreadCtx& ctx, std::uint64_t lane_base);

  Pool& pool_;
  ThreadCtx& ctx_;
  unsigned lane_;
  std::uint64_t base_;  // namespace offset of the lane
  LaneHeader hdr_{};
  bool active_ = false;
};

}  // namespace xp::pmem
