// Persistent pool: a crash-consistent heap on a PmemNamespace.
//
// Mini-PMDK (libpmemobj) equivalent: a pool has a header, a fixed array of
// per-thread transaction lanes (undo logs), and a heap managed by a
// logged first-fit free-list allocator. All mutations of pool metadata go
// through transactions, so a crash at any instruction boundary recovers to
// a consistent state (tests verify this property at random crash points).
//
// Layout:
//   [0, 4K)                 header
//   [4K, 4K + L*lane_size)  transaction lanes (undo logs)
//   [heap_base, size)       heap
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "pmemlib/pmem_ops.h"
#include "xpsim/platform.h"

namespace xp::pmem {

class Tx;

class Pool {
 public:
  static constexpr std::uint64_t kMagic = 0x58504d454d504f4cULL;
  static constexpr unsigned kLanes = 8;
  static constexpr std::uint64_t kLaneSize = 256 * 1024;
  static constexpr std::uint64_t kHeaderSize = 4096;

  explicit Pool(hw::PmemNamespace& ns) : ns_(ns) {}

  // Format a new pool with a zeroed root object of `root_size` bytes.
  void create(ThreadCtx& ctx, std::uint64_t root_size);

  // Open an existing pool; replays/rolls back interrupted transactions.
  // Returns false if the namespace does not hold a valid pool.
  bool open(ThreadCtx& ctx);

  // Recovery invariants (crashmc checker entry point). Call after open():
  // verifies the header, that every lane is durably idle, and that the
  // allocator metadata is sane — heap_top within bounds and the free list
  // acyclic, aligned, in-heap, and non-overlapping. Returns "" when all
  // hold, else a diagnostic.
  std::string check(ThreadCtx& ctx);

  // Test-only fault injection for crashmc's negative tests: deliberately
  // weakens the persistence protocol so the harness can demonstrate it
  // catches real bugs. Never set outside tests.
  enum class TestFault {
    kNone,
    // Tx::commit() retires the lane with a plain store (no clwb): the
    // commit record can be lost on power failure, so recovery may roll
    // back an acknowledged transaction.
    kSkipCommitFlush,
  };
  void set_test_fault(TestFault f) { test_fault_ = f; }

  std::uint64_t root(ThreadCtx& ctx);
  std::uint64_t root_size(ThreadCtx& ctx);

  // Transactional allocation (PMDK pmemobj_tx_alloc/_free equivalents).
  // Returned offsets are 64-byte aligned. Allocation metadata updates are
  // undo-logged in `tx`, so an aborted or crashed transaction leaks
  // nothing and frees nothing.
  std::uint64_t tx_alloc(Tx& tx, std::uint64_t size);
  void tx_free(Tx& tx, std::uint64_t off, std::uint64_t size);

  // Non-transactional allocation for initial data-structure setup.
  std::uint64_t alloc_raw(ThreadCtx& ctx, std::uint64_t size);

  hw::PmemNamespace& ns() { return ns_; }

  // Introspection for tests.
  std::uint64_t heap_top(ThreadCtx& ctx);
  std::uint64_t free_list_head(ThreadCtx& ctx);

  // Heap bounds, for structural checkers validating that object offsets
  // written by higher-level stores point into allocated pool memory.
  static constexpr std::uint64_t heap_base() { return kHeapBase; }

 private:
  friend class Tx;

  struct Header {
    std::uint64_t magic;
    std::uint64_t pool_size;
    std::uint64_t root_off;
    std::uint64_t root_size;
    std::uint64_t heap_top;
    std::uint64_t free_head;  // 0 = empty free list
  };
  // Free chunks carry {next, size} in their first 16 bytes.
  struct FreeChunk {
    std::uint64_t next;
    std::uint64_t size;
  };

  static constexpr std::uint64_t kHeapBase =
      kHeaderSize + kLanes * kLaneSize;

  Header read_header(ThreadCtx& ctx) {
    return ns_.load_pod<Header>(ctx, 0);
  }
  void write_header_field(ThreadCtx& ctx, std::uint64_t field_off,
                          std::uint64_t value) {
    store_persist_pod(ctx, ns_, field_off, value);
  }

  std::uint64_t lane_off(unsigned lane) const {
    return kHeaderSize + lane * kLaneSize;
  }

  void recover_lane(ThreadCtx& ctx, unsigned lane);

  // Point `prev` (a free chunk, or the header's free_head when 0) at
  // `next`, undo-logged in `tx`.
  void relink(Tx& tx, std::uint64_t prev, std::uint64_t next);

  hw::PmemNamespace& ns_;
  TestFault test_fault_ = TestFault::kNone;
};

// Undo-log transaction. Usage:
//   Tx tx(pool, ctx);            // picks a lane from the thread id
//   tx.add(off, len);            // snapshot before modifying
//   pool.ns().store_flush(...);  // or tx.store(...)
//   tx.commit();                 // durable; ~Tx() without commit aborts
class Tx {
 public:
  Tx(Pool& pool, ThreadCtx& ctx);
  ~Tx();

  Tx(const Tx&) = delete;
  Tx& operator=(const Tx&) = delete;

  // Snapshot [off, off+len) into the undo log (PMDK TX_ADD).
  void add(std::uint64_t off, std::uint32_t len);

  // add() + store + flush (fence deferred to commit).
  void store(std::uint64_t off, std::span<const std::uint8_t> data);

  void commit();
  void abort();

  // Crash-test support: drop the handle without rolling back or
  // committing, as if the process died here. The lane stays active in the
  // pool; the next open() rolls it back.
  void release() { active_ = false; }

  bool active() const { return active_; }
  unsigned lane() const { return lane_; }

 private:
  struct LaneHeader {
    std::uint32_t state;  // 0 idle, 1 active
    std::uint32_t nentries;
    std::uint64_t blob_top;  // next free byte in the blob area
  };
  struct Entry {
    std::uint64_t off;
    std::uint32_t len;
    std::uint32_t blob_off;  // within the lane's blob area
  };
  static constexpr std::uint32_t kMaxEntries = 1024;
  static constexpr std::uint64_t kEntriesOff = 64;
  static constexpr std::uint64_t kBlobOff =
      kEntriesOff + kMaxEntries * sizeof(Entry);

  friend class Pool;
  static void recover(Pool& pool, ThreadCtx& ctx, std::uint64_t lane_base);

  Pool& pool_;
  ThreadCtx& ctx_;
  unsigned lane_;
  std::uint64_t base_;  // namespace offset of the lane
  LaneHeader hdr_{};
  bool active_ = false;
};

}  // namespace xp::pmem
