#include "pmemlib/microbuf.h"

#include "pmemlib/pmem_ops.h"

namespace xp::pmem {

void MicroBuf::update(
    ThreadCtx& ctx, std::uint64_t off, std::size_t size,
    const std::function<void(std::span<std::uint8_t>)>& mutate) {
  // Stage: object copy lives in DRAM (host memory); the loads from
  // persistent memory are the timed part.
  std::vector<std::uint8_t> staging(size);
  pool_.ns().load(ctx, off, staging);

  // Undo-log the object so a crash mid-write-back rolls back.
  Tx tx(pool_, ctx);
  tx.add(off, static_cast<std::uint32_t>(size));

  mutate(staging);

  // Write back the whole object with the configured instruction choice.
  WriteHint hint = WriteHint::kAuto;
  switch (mode_) {
    case WriteBack::kNt:
      hint = WriteHint::kNt;
      break;
    case WriteBack::kClwb:
      hint = WriteHint::kCached;
      break;
    case WriteBack::kAdaptive:
      hint = WriteHint::kAuto;
      break;
  }
  memcpy_flush(ctx, pool_.ns(), off, staging, hint);
  tx.commit();
}

}  // namespace xp::pmem
