// Micro-buffering for transactional object updates (paper §5.2.1, Fig 15).
//
// Reimplements the technique from Pangolin [64]: instead of issuing loads
// and small stores directly against persistent memory, a transaction
// copies the object into a DRAM staging buffer, mutates it there, and on
// commit writes the whole object back at once. The paper's contribution
// is the instruction-choice tuning: the original used non-temporal stores
// exclusively (PGL-NT); following guideline #2, small objects write back
// faster with store+clwb (PGL-CLWB); the crossover is ~1 KB.
//
// Crash consistency: the old object contents are undo-logged in the
// pool's transaction lane before write-back, so a crash mid-write-back
// rolls back to the pre-transaction object.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "pmemlib/pool.h"

namespace xp::pmem {

enum class WriteBack {
  kNt,       // PGL-NT: always non-temporal
  kClwb,     // PGL-CLWB: always store+clwb
  kAdaptive, // store+clwb below the crossover, nt above (guideline #2)
};

class MicroBuf {
 public:
  MicroBuf(Pool& pool, WriteBack mode) : pool_(pool), mode_(mode) {}

  // Run one transactional update of the object at [off, off+size).
  // `mutate` receives the DRAM staging copy; its effects are written back
  // and made durable before update() returns.
  void update(ThreadCtx& ctx, std::uint64_t off, std::size_t size,
              const std::function<void(std::span<std::uint8_t>)>& mutate);

  WriteBack mode() const { return mode_; }

 private:
  Pool& pool_;
  WriteBack mode_;
};

}  // namespace xp::pmem
