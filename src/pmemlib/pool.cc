#include "pmemlib/pool.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <vector>

#include "sim/crc32.h"

namespace xp::pmem {

// --------------------------------------------------------------- Pool ----

std::uint32_t Pool::header_crc(const Header& h) {
  // Identity fields only: magic, pool_size, root_off, root_size.
  return sim::crc32c(&h, 4 * sizeof(std::uint64_t));
}

bool Pool::header_valid(const Header& h) const {
  return h.magic == kMagic && h.pool_size == ns_.size() &&
         h.identity_crc == header_crc(h);
}

void Pool::create(ThreadCtx& ctx, std::uint64_t root_size) {
  assert(ns_.size() > kHeapBase + root_size + 4096);
  Header h{};
  h.magic = kMagic;
  h.pool_size = ns_.size();
  h.root_size = root_size;
  h.heap_top = kHeapBase;
  h.free_head = 0;

  // Zero + idle all lanes first, then the header last: a crash mid-create
  // leaves an invalid magic and open() reports no pool.
  for (unsigned l = 0; l < kLanes; ++l) {
    const std::uint64_t zero64[8] = {};
    ns_.ntstore_persist(
        ctx, lane_off(l),
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(zero64), 64));
  }
  // Root object: carve from the heap, zero it.
  h.root_off = h.heap_top;
  h.heap_top += (root_size + 63) / 64 * 64;
  std::vector<std::uint8_t> zeros(root_size, 0);
  if (root_size > 0) ns_.ntstore_persist(ctx, h.root_off, zeros);

  h.identity_crc = header_crc(h);
  // Redundant copy first (via the management path — untimed, so pool
  // creation costs exactly what it did without the copy), primary last:
  // a crash mid-create still leaves an invalid primary and no pool.
  ns_.poke(kBackupHeaderOff,
           std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(&h), sizeof(h)));
  store_persist_pod(ctx, ns_, 0, h);
  recovery_ = RecoveryInfo{};
}

bool Pool::open(ThreadCtx& ctx) {
  recovery_ = RecoveryInfo{};
  Header h{};
  bool primary_ok = false;
  try {
    h = read_header(ctx);
    primary_ok = header_valid(h);
  } catch (const hw::MediaError&) {
    primary_ok = false;
  }
  if (!primary_ok) {
    // Redundant-copy fallback: restore identity from the backup. The
    // mutable allocator fields in the backup are create-time stale, so
    // seal the heap — existing objects stay readable, new allocation is
    // exhausted — and drop the free list.
    Header b{};
    try {
      b = ns_.load_pod<Header>(ctx, kBackupHeaderOff);
    } catch (const hw::MediaError&) {
      return false;  // both copies unreadable: not a recoverable pool
    }
    if (!header_valid(b)) return false;
    h = b;
    h.heap_top = h.pool_size / 64 * 64;
    h.free_head = 0;
    scrub_line(ctx, 0);  // zero the damaged line, clearing its poison
    store_persist_pod(ctx, ns_, 0, h);
    recovery_.header_restored = true;
    recovery_.heap_sealed = true;
  }
  for (unsigned l = 0; l < kLanes; ++l) {
    try {
      recover_lane(ctx, l);
    } catch (const hw::MediaError&) {
      // The lane's undo log is unreadable. Its transaction was never
      // acknowledged and every logged store is individually ordered, so
      // forcing the lane idle without rollback keeps the pool
      // structurally consistent; the abandonment is reported, not hidden.
      for (const std::uint64_t bad :
           ns_.platform().ars(ns_, lane_off(l), kLaneSize))
        scrub_line(ctx, bad);
      store_persist_pod(ctx, ns_, lane_off(l), Tx::LaneHeader{0, 0, 0});
      ++recovery_.lanes_forced_idle;
    }
  }
  if (!recovery_.scrubbed_lines.empty()) repair_free_list(ctx);
  return true;
}

void Pool::recover_lane(ThreadCtx& ctx, unsigned lane) {
  Tx::recover(*this, ctx, lane_off(lane));
}

void Pool::scrub_line(ThreadCtx& ctx, std::uint64_t line_off) {
  line_off &= ~(hw::Platform::kXpLineBytes - 1);
  const std::uint8_t zeros[hw::Platform::kXpLineBytes] = {};
  ns_.ntstore_persist(ctx, line_off, zeros);
  recovery_.scrubbed_lines.push_back(line_off);
}

void Pool::repair(ThreadCtx& ctx) {
  const auto bad = ns_.platform().ars(ns_, 0, ns_.size());
  for (const std::uint64_t line : bad) scrub_line(ctx, line);
  // Always revalidate the free list: a store-level repair may have
  // scrubbed (zeroed) a free chunk before calling us, leaving a node
  // with size 0 that the walk below truncates away.
  repair_free_list(ctx);
}

void Pool::repair_free_list(ThreadCtx& ctx) {
  const Header h = read_header(ctx);  // header line is clean by now
  const std::uint64_t max_chunks = (h.heap_top - kHeapBase) / 64;
  std::uint64_t prev = 0;
  std::uint64_t cur = h.free_head;
  std::uint64_t steps = 0;
  while (cur != 0) {
    bool bad = ++steps > max_chunks || cur % 64 != 0 || cur < kHeapBase ||
               cur + sizeof(FreeChunk) > h.heap_top;
    FreeChunk chunk{};
    if (!bad) {
      try {
        chunk = ns_.load_pod<FreeChunk>(ctx, cur);
      } catch (const hw::MediaError& e) {
        scrub_line(ctx, e.line_off);
        bad = true;
      }
    }
    if (!bad && (chunk.size < 64 || chunk.size % 64 != 0 ||
                 cur + chunk.size > h.heap_top))
      bad = true;
    if (bad) {
      // Truncate at the damage point: the unreachable suffix is leaked
      // (reported), never chased into garbage.
      const std::uint64_t target = prev == 0
                                       ? offsetof(Header, free_head)
                                       : prev + offsetof(FreeChunk, next);
      store_persist_pod(ctx, ns_, target, std::uint64_t{0});
      recovery_.free_list_truncated = true;
      return;
    }
    prev = cur;
    cur = chunk.next;
  }
}

Status Pool::check(ThreadCtx& ctx) {
  try {
    const std::string err = check_impl(ctx);
    if (err.empty()) return Status::Ok();
    return Status::Corruption(err);
  } catch (const hw::MediaError& e) {
    return Status::MediaFault(e.what());
  }
}

std::string Pool::check_impl(ThreadCtx& ctx) {
  const Header h = read_header(ctx);
  if (h.magic != kMagic) return "header: bad magic";
  if (h.identity_crc != header_crc(h)) return "header: identity crc mismatch";
  if (h.pool_size != ns_.size()) return "header: pool_size != namespace size";
  if (h.heap_top < kHeapBase || h.heap_top > h.pool_size)
    return "header: heap_top outside [heap_base, pool_size]";
  if (h.heap_top % 64 != 0) return "header: heap_top misaligned";
  if (h.root_off < kHeapBase || h.root_off + h.root_size > h.heap_top)
    return "header: root object outside allocated heap";

  // After open() every lane must be durably idle: recovery retires active
  // lanes, so a state!=0 lane here means recovery was skipped or lost.
  for (unsigned l = 0; l < kLanes; ++l) {
    const auto lh = ns_.load_pod<Tx::LaneHeader>(ctx, lane_off(l));
    if (lh.state != 0)
      return "lane " + std::to_string(l) + ": not idle after recovery";
  }

  // Free list: acyclic, aligned, inside the allocated heap, chunks
  // non-overlapping. The step bound doubles as a cycle detector — the
  // heap can hold at most heap_bytes/64 distinct chunks.
  const std::uint64_t max_chunks = (h.heap_top - kHeapBase) / 64;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
  std::uint64_t cur = h.free_head;
  while (cur != 0) {
    if (spans.size() > max_chunks) return "free list: cycle";
    if (cur % 64 != 0)
      return "free chunk @" + std::to_string(cur) + ": misaligned";
    if (cur < kHeapBase || cur + sizeof(FreeChunk) > h.heap_top)
      return "free chunk @" + std::to_string(cur) + ": outside heap";
    const FreeChunk chunk = ns_.load_pod<FreeChunk>(ctx, cur);
    if (chunk.size < 64 || chunk.size % 64 != 0 ||
        cur + chunk.size > h.heap_top)
      return "free chunk @" + std::to_string(cur) + ": bad size " +
             std::to_string(chunk.size);
    spans.emplace_back(cur, cur + chunk.size);
    cur = chunk.next;
  }
  std::sort(spans.begin(), spans.end());
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].first < spans[i - 1].second)
      return "free chunks @" + std::to_string(spans[i - 1].first) + " and @" +
             std::to_string(spans[i].first) + ": overlap";
  }
  return "";
}

std::uint64_t Pool::root(ThreadCtx& ctx) { return read_header(ctx).root_off; }

std::uint64_t Pool::root_size(ThreadCtx& ctx) {
  return read_header(ctx).root_size;
}

std::uint64_t Pool::heap_top(ThreadCtx& ctx) {
  return read_header(ctx).heap_top;
}

std::uint64_t Pool::free_list_head(ThreadCtx& ctx) {
  return read_header(ctx).free_head;
}

std::uint64_t Pool::tx_alloc(Tx& tx, std::uint64_t size) {
  assert(tx.active());
  ThreadCtx& ctx = tx.ctx_;
  size = std::max<std::uint64_t>((size + 63) / 64 * 64, 64);

  // First-fit walk of the free list.
  Header h = read_header(ctx);
  std::uint64_t prev = 0;  // 0 = head pointer in the header
  std::uint64_t cur = h.free_head;
  while (cur != 0) {
    const FreeChunk chunk = ns_.load_pod<FreeChunk>(ctx, cur);
    if (chunk.size >= size) {
      // Snapshot the chunk's {next, size} header first: the caller will
      // overwrite the allocation with raw (non-undo-logged) stores, and a
      // rollback relinks this chunk into the free list — its header must
      // be restored or the list is corrupted.
      tx.add(cur, sizeof(FreeChunk));
      // Unlink. (Exact fit or carve the tail; keep the head as the
      // allocation so the remainder stays linked in place.)
      if (chunk.size >= size + 64) {
        const std::uint64_t rest = cur + size;
        tx.add(rest, sizeof(FreeChunk));
        FreeChunk rest_chunk{chunk.next, chunk.size - size};
        tx.store(rest, std::span<const std::uint8_t>(
                           reinterpret_cast<const std::uint8_t*>(&rest_chunk),
                           sizeof(rest_chunk)));
        relink(tx, prev, rest);
      } else {
        relink(tx, prev, chunk.next);
      }
      return cur;
    }
    prev = cur;
    cur = chunk.next;
  }

  // Bump allocation.
  assert(h.heap_top + size <= h.pool_size);
  const std::uint64_t off = h.heap_top;
  tx.add(offsetof(Header, heap_top), sizeof(std::uint64_t));
  const std::uint64_t new_top = off + size;
  tx.store(offsetof(Header, heap_top),
           std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(&new_top),
               sizeof(new_top)));
  return off;
}

void Pool::tx_free(Tx& tx, std::uint64_t off, std::uint64_t size) {
  assert(tx.active());
  ThreadCtx& ctx = tx.ctx_;
  size = std::max<std::uint64_t>((size + 63) / 64 * 64, 64);
  const Header h = read_header(ctx);
  FreeChunk chunk{h.free_head, size};
  tx.add(off, sizeof(FreeChunk));
  tx.store(off, std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(&chunk),
                    sizeof(chunk)));
  relink(tx, 0, off);
}

void Pool::relink(Tx& tx, std::uint64_t prev, std::uint64_t next) {
  const std::uint64_t target =
      prev == 0 ? offsetof(Header, free_head)
                : prev + offsetof(FreeChunk, next);
  tx.add(target, sizeof(std::uint64_t));
  tx.store(target, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(&next),
                       sizeof(next)));
}

std::uint64_t Pool::alloc_raw(ThreadCtx& ctx, std::uint64_t size) {
  size = std::max<std::uint64_t>((size + 63) / 64 * 64, 64);
  Header h = read_header(ctx);
  assert(h.heap_top + size <= h.pool_size);
  const std::uint64_t off = h.heap_top;
  write_header_field(ctx, offsetof(Header, heap_top), off + size);
  return off;
}

// ----------------------------------------------------------------- Tx ----

Tx::Tx(Pool& pool, ThreadCtx& ctx)
    : pool_(pool), ctx_(ctx), lane_(ctx.id() % Pool::kLanes),
      base_(pool.lane_off(lane_)) {
  // Lane admission: threads mapping to distinct lanes proceed
  // independently, which is exactly the interleaving the schedule
  // explorer wants to perturb.
  ctx.sched_point(sim::SchedPoint::kLaneAcquire);
  hdr_ = LaneHeader{1, 0, 0};
  store_persist_pod(ctx_, pool_.ns_, base_, hdr_);
  active_ = true;
}

Tx::~Tx() {
  if (!active_) return;
  try {
    abort();
  } catch (const hw::MediaError&) {
    // Rollback hit bad media mid-unwind; never throw from a destructor.
    // The lane stays active and the next open() finishes (or abandons)
    // the rollback with its scrub-and-retry machinery.
    active_ = false;
  }
}

void Tx::add(std::uint64_t off, std::uint32_t len) {
  assert(active_);
  assert(hdr_.nentries < kMaxEntries);
  assert(base_ + kBlobOff + hdr_.blob_top + len <= base_ + Pool::kLaneSize);

  // Snapshot old contents into the blob, persist blob + entry, and only
  // then bump nentries: a crash mid-append leaves the entry invisible.
  std::vector<std::uint8_t> old(len);
  pool_.ns_.load(ctx_, off, old);
  const std::uint64_t blob_at = base_ + kBlobOff + hdr_.blob_top;
  pool_.ns_.ntstore(ctx_, blob_at, old);

  Entry e{off, len, static_cast<std::uint32_t>(hdr_.blob_top)};
  const std::uint64_t entry_at =
      base_ + kEntriesOff + hdr_.nentries * sizeof(Entry);
  pool_.ns_.ntstore(ctx_, entry_at,
                    std::span<const std::uint8_t>(
                        reinterpret_cast<const std::uint8_t*>(&e), sizeof(e)));
  pool_.ns_.sfence(ctx_);

  hdr_.blob_top += (len + 7) / 8 * 8;
  hdr_.nentries += 1;
  store_persist_pod(ctx_, pool_.ns_, base_, hdr_);
}

void Tx::store(std::uint64_t off, std::span<const std::uint8_t> data) {
  assert(active_);
  pool_.ns_.store_flush(ctx_, off, data);
}

void Tx::commit() {
  assert(active_);
  // User stores were flushed as they were made; one fence makes them
  // durable, then retiring the lane (state 0) makes the commit atomic.
  pool_.ns_.sfence(ctx_);
  hdr_ = LaneHeader{0, 0, 0};
  if (pool_.test_fault_ == Pool::TestFault::kSkipCommitFlush) {
    // Deliberate bug for negative crash tests: the lane-retire store is
    // never flushed, so a crash can lose it and recovery rolls back an
    // acknowledged transaction.
    pool_.ns_.store(ctx_, base_,
                    std::span<const std::uint8_t>(
                        reinterpret_cast<const std::uint8_t*>(&hdr_),
                        sizeof(hdr_)));
    pool_.ns_.sfence(ctx_);
  } else {
    store_persist_pod(ctx_, pool_.ns_, base_, hdr_);
  }
  active_ = false;
  ctx_.sched_point(sim::SchedPoint::kLaneRelease);
}

void Tx::abort() {
  assert(active_);
  // Roll back in reverse order.
  for (std::uint32_t i = hdr_.nentries; i-- > 0;) {
    const Entry e = pool_.ns_.load_pod<Entry>(
        ctx_, base_ + kEntriesOff + i * sizeof(Entry));
    std::vector<std::uint8_t> old(e.len);
    pool_.ns_.load(ctx_, base_ + kBlobOff + e.blob_off, old);
    pool_.ns_.store_flush(ctx_, e.off, old);
  }
  pool_.ns_.sfence(ctx_);
  hdr_ = LaneHeader{0, 0, 0};
  store_persist_pod(ctx_, pool_.ns_, base_, hdr_);
  active_ = false;
}

void Tx::recover(Pool& pool, ThreadCtx& ctx, std::uint64_t lane_base) {
  const auto hdr = pool.ns_.load_pod<LaneHeader>(ctx, lane_base);
  if (hdr.state != 1) return;

  // Stage 1: read the whole undo log up front. A MediaError here means
  // the log itself is unreadable — it propagates to open(), which scrubs
  // the lane and forces it idle without a partial rollback (mixing
  // rolled-back and not-rolled-back stores is worse than abandoning an
  // unacknowledged transaction whole).
  struct Pending {
    std::uint64_t off;
    std::vector<std::uint8_t> old;
  };
  std::vector<Pending> log(hdr.nentries);
  for (std::uint32_t i = 0; i < hdr.nentries; ++i) {
    const Entry e = pool.ns_.load_pod<Entry>(
        ctx, lane_base + kEntriesOff + i * sizeof(Entry));
    log[i].off = e.off;
    log[i].old.resize(e.len);
    pool.ns_.load(ctx, lane_base + kBlobOff + e.blob_off, log[i].old);
  }

  // Stage 2: apply snapshots in reverse. A rollback *target* line may be
  // poisoned — the RFO throws — so scrub it and retry: rewriting the
  // historical snapshot over a zeroed line fabricates nothing.
  for (std::uint32_t i = hdr.nentries; i-- > 0;) {
    const int max_attempts =
        static_cast<int>(log[i].old.size() / hw::Platform::kXpLineBytes) + 2;
    for (int attempt = 0;; ++attempt) {
      try {
        pool.ns_.store_flush(ctx, log[i].off, log[i].old);
        break;
      } catch (const hw::MediaError& me) {
        if (attempt >= max_attempts) throw;
        pool.scrub_line(ctx, me.line_off);
      }
    }
  }
  pool.ns_.sfence(ctx);
  store_persist_pod(ctx, pool.ns_, lane_base, LaneHeader{0, 0, 0});
}

}  // namespace xp::pmem
