// Software write-combining for persistent appends (paper §5.2, Fig 15).
//
// The XP DIMM's combining buffer only merges stores that arrive close
// together in its 16-slot window; a store stream that dribbles sub-XPLine
// records with a fence after each one defeats it, paying a full 256 B
// media write (or an RMW) per small record. A LineBatcher coalesces the
// records in DRAM first and emits them as one contiguous burst, so the
// device sees full 256 B XPLines except at the two batch edges and the
// caller pays one drain fence per *batch* instead of one per record.
//
// Usage:
//   batcher.reset(off);             // batch starts at namespace offset
//   batcher.append(bytes); ...      // stage records back to back
//   batcher.commit(ctx, ns, hold);  // publish: everything after the
//                                   // first `hold` bytes, fence, then
//                                   // the held-back commit word
//
// `commit(hold)` implements the standard log-publish protocol: the first
// `hold` bytes (the record's magic/tag word) are written only after the
// fence that makes the rest durable, so a torn batch is invisible to
// recovery — it atomically appears whole or not at all. `flush` is the
// plain variant for callers that order durability themselves.
//
// The staging buffer is a reused member (capacity sticks across
// batches): steady-state appends allocate nothing.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "pmemlib/pmem_ops.h"

namespace xp::pmem {

class LineBatcher {
 public:
  // Start a new batch at namespace offset `off`. Keeps the buffer
  // capacity from previous batches.
  void reset(std::uint64_t off) {
    base_ = off;
    buf_.clear();
  }

  // Stage `data` at the current cursor; returns the batch-relative
  // offset it was staged at.
  std::size_t append(std::span<const std::uint8_t> data) {
    const std::size_t at = buf_.size();
    buf_.insert(buf_.end(), data.begin(), data.end());
    return at;
  }

  template <typename T>
  std::size_t append_pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return append(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(&v), sizeof(T)));
  }

  // Reserve `n` zero bytes (e.g. alignment padding inside a batch).
  std::size_t append_zeros(std::size_t n) {
    const std::size_t at = buf_.size();
    buf_.resize(buf_.size() + n, 0);
    return at;
  }

  // Staged bytes are patchable until the batch is written (checksums,
  // back-pointers).
  std::uint8_t* data() { return buf_.data(); }
  const std::uint8_t* data() const { return buf_.data(); }
  std::size_t size() const { return buf_.size(); }
  bool empty() const { return buf_.empty(); }
  std::uint64_t base() const { return base_; }
  // Namespace offset one past the staged bytes.
  std::uint64_t cursor() const { return base_ + buf_.size(); }

  // Write the whole batch (no fence; callers order durability).
  void flush(ThreadCtx& ctx, PmemNamespace& ns,
             WriteHint hint = WriteHint::kAuto) {
    if (!buf_.empty()) write(ctx, ns, base_, buf_, hint);
  }

  // Publish the batch: bytes [hold, size) first, one fence, then the
  // held-back prefix [0, hold). No trailing fence — the caller decides
  // when the commit word itself must be durable (usually its next
  // sfence/sync). `hold` = 0 degenerates to flush + fence.
  void commit(ThreadCtx& ctx, PmemNamespace& ns, std::size_t hold = 0,
              WriteHint hint = WriteHint::kAuto) {
    assert(hold <= buf_.size());
    // Batch publication is an atomicity-critical window (payload before
    // commit word): a preemption here is exactly where a racing reader or
    // a crash would land, so announce it to the schedule explorer.
    ctx.sched_point(sim::SchedPoint::kBatchCommit);
    if (buf_.size() > hold)
      write(ctx, ns, base_ + hold,
            std::span<const std::uint8_t>(buf_.data() + hold,
                                          buf_.size() - hold),
            hint);
    ns.sfence(ctx);
    if (hold > 0)
      write(ctx, ns, base_,
            std::span<const std::uint8_t>(buf_.data(), hold), hint);
  }

 private:
  static void write(ThreadCtx& ctx, PmemNamespace& ns, std::uint64_t off,
                    std::span<const std::uint8_t> data, WriteHint hint) {
    const bool use_nt =
        hint == WriteHint::kNt ||
        (hint == WriteHint::kAuto && data.size() >= kNtCrossoverBytes);
    if (use_nt) {
      ns.ntstore(ctx, off, data);
    } else {
      ns.store_flush(ctx, off, data);
    }
  }

  std::uint64_t base_ = 0;
  std::vector<std::uint8_t> buf_;
};

}  // namespace xp::pmem
