// A small sharded DRAM cache of 256 B XPLines (paper §5.1, read side).
//
// The XP media transfers whole 256 B XPLines no matter how few bytes the
// CPU asked for, so a pointer-chasing read path pays a full media line
// per 8-byte hop. Keeping recently fetched XPLines in DRAM turns repeat
// reads of hot metadata (bloom filters, bucket chains, index leaves) into
// DRAM-latency hits with zero DIMM traffic. The cache registers itself as
// the namespace's StoreObserver, so every write through any path (store,
// ntstore, poke, media-fault clobber) drops the covered lines — a cached
// line is therefore always bytewise identical to what a timed load would
// return.
//
// Eviction is per-shard clock (second chance): a lookup sets the entry's
// referenced bit; the rotating hand clears it once before reclaiming the
// slot. Sharding by line index keeps the hand's sweep short and mirrors
// how a per-core software cache would partition.
//
// Timing model: a hit is one DRAM-latency access (`hit_cost`) issued
// through the calling thread's MLP window — it pipelines like any other
// memory access but touches no simulated device, since the payload lives
// in host DRAM, not behind the DDR-T interface. Misses charge nothing —
// the PM fetch that follows pays the real cost. The cache is volatile
// state: recovery paths construct a fresh one, exactly as a DRAM cache
// empties on restart.
#pragma once

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "sim/scheduler.h"
#include "sim/simtime.h"
#include "xpsim/platform.h"

namespace xp::pmem {

struct ReadCacheOptions {
  // Total capacity in 256 B lines across all shards (4096 = 1 MiB).
  std::size_t capacity_lines = 4096;
  // Shard count, rounded up to a power of two; each shard gets an equal
  // slice of the capacity and its own clock hand.
  std::size_t shards = 8;
  // Simulated cost of serving one lookup hit from DRAM.
  sim::Time hit_cost = sim::ns(60);
  // The cache's payload is ordinary cacheable host memory, so recently
  // served lines are still CPU-cache resident: a re-hit within the last
  // `hot_lines_per_shard` distinct lines of a shard costs `hot_hit_cost`
  // (an LLC-latency access) instead of the full DRAM round trip.
  std::size_t hot_lines_per_shard = 64;
  sim::Time hot_hit_cost = sim::ns(5);
};

class ReadCache final : public hw::StoreObserver {
 public:
  static constexpr std::uint64_t kLine = hw::Platform::kXpLineBytes;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;      // clock reclaimed a valid slot
    std::uint64_t invalidations = 0;  // a write dropped a cached line
  };

  ReadCache(hw::PmemNamespace& ns, ReadCacheOptions opts = {})
      : ns_(ns), opts_(opts) {
    std::size_t n = 1;
    while (n < opts_.shards) n <<= 1;
    if (opts_.capacity_lines < n) n = 1;
    shards_.resize(n);
    const std::size_t per = opts_.capacity_lines / n;
    for (auto& s : shards_) {
      s.entries.resize(per == 0 ? 1 : per);
      s.data.resize(s.entries.size() * kLine);
    }
    ns_.set_store_observer(this);
  }

  ~ReadCache() override {
    if (ns_.store_observer() == this) ns_.set_store_observer(nullptr);
  }

  ReadCache(const ReadCache&) = delete;
  ReadCache& operator=(const ReadCache&) = delete;

  // Copy the cached line at 256 B-aligned `line_off` into `out` (256
  // bytes) and charge one DRAM access; false on miss (charges nothing).
  bool lookup(sim::ThreadCtx& ctx, std::uint64_t line_off,
              std::uint8_t* out) {
    Shard& s = shard_of(line_off);
    auto it = s.index.find(line_off);
    if (it == s.index.end()) {
      ++stats_.misses;
      return false;
    }
    Entry& e = s.entries[it->second];
    e.referenced = true;
    std::memcpy(out, s.data.data() + it->second * kLine, kLine);
    ++stats_.hits;
    // A hit is a host-memory access: CPU-cache latency if the line is in
    // the shard's recent set, DRAM latency otherwise — and it pipelines
    // through the core's MLP window like any other memory access (a
    // serial stall here would make cached reads slower than mlp-deep
    // pipelined device reads, inverting the real ordering).
    const sim::Time cost =
        touch_recent(s, line_off) ? opts_.hot_hit_cost : opts_.hit_cost;
    const sim::Time t0 =
        ctx.begin_access(ns_.platform().timing().issue_gap);
    ctx.complete_access(t0 + cost);
    if (hw::TelemetrySink* sink = ns_.platform().telemetry())
      sink->read_path(hw::ReadPathEventKind::kCacheHitLine, ctx.now(), kLine);
    return true;
  }

  // Install the content of the line at `line_off` (just fetched from PM).
  void insert(sim::ThreadCtx& ctx, std::uint64_t line_off,
              const std::uint8_t* data) {
    Shard& s = shard_of(line_off);
    auto it = s.index.find(line_off);
    std::size_t slot;
    if (it != s.index.end()) {
      slot = it->second;  // refresh in place
    } else {
      slot = reclaim(s);
      Entry& victim = s.entries[slot];
      if (victim.valid) {
        s.index.erase(victim.line_off);
        ++stats_.evictions;
      }
      victim.valid = true;
      victim.line_off = line_off;
      s.index.emplace(line_off, slot);
    }
    Entry& e = s.entries[slot];
    e.referenced = true;
    std::memcpy(s.data.data() + slot * kLine, data, kLine);
    ++stats_.insertions;
    if (hw::TelemetrySink* sink = ns_.platform().telemetry())
      sink->read_path(hw::ReadPathEventKind::kCacheFillLine, ctx.now(), kLine);
  }

  // StoreObserver: drop every cached line overlapping [off, off+len).
  void on_store(std::uint64_t off, std::size_t len) override {
    if (len == 0) return;
    const std::uint64_t first = off / kLine * kLine;
    const std::uint64_t last = (off + len - 1) / kLine * kLine;
    for (std::uint64_t line = first;; line += kLine) {
      Shard& s = shard_of(line);
      auto it = s.index.find(line);
      if (it != s.index.end()) {
        s.entries[it->second].valid = false;
        s.entries[it->second].referenced = false;
        s.index.erase(it);
        forget_recent(s, line);
        ++stats_.invalidations;
        if (hw::TelemetrySink* sink = ns_.platform().telemetry())
          sink->read_path(hw::ReadPathEventKind::kCacheInvalidate, 0, kLine);
      }
      if (line == last) break;
    }
  }

  void clear() {
    for (auto& s : shards_) {
      for (auto& e : s.entries) e = Entry{};
      s.index.clear();
      s.hand = 0;
      s.recent.clear();
      s.recent_pos = 0;
    }
  }

  const Stats& stats() const { return stats_; }
  hw::PmemNamespace& ns() { return ns_; }

 private:
  struct Entry {
    std::uint64_t line_off = 0;
    bool valid = false;
    bool referenced = false;
  };
  static constexpr std::uint64_t kNoLine = ~std::uint64_t{0};

  struct Shard {
    std::vector<Entry> entries;
    std::vector<std::uint8_t> data;  // entries.size() * kLine payload bytes
    std::unordered_map<std::uint64_t, std::size_t> index;  // line -> slot
    std::size_t hand = 0;
    // Ring of the last `hot_lines_per_shard` distinct lines served — the
    // approximation of which payload lines are still CPU-cache resident.
    std::vector<std::uint64_t> recent;
    std::size_t recent_pos = 0;
  };

  // True if `line_off` is in the shard's recent set; records it otherwise.
  bool touch_recent(Shard& s, std::uint64_t line_off) {
    if (opts_.hot_lines_per_shard == 0) return false;
    if (s.recent.empty())
      s.recent.assign(opts_.hot_lines_per_shard, kNoLine);
    for (std::uint64_t l : s.recent)
      if (l == line_off) return true;
    s.recent[s.recent_pos] = line_off;
    s.recent_pos = (s.recent_pos + 1) % s.recent.size();
    return false;
  }

  void forget_recent(Shard& s, std::uint64_t line_off) {
    for (auto& l : s.recent)
      if (l == line_off) l = kNoLine;
  }

  Shard& shard_of(std::uint64_t line_off) {
    return shards_[(line_off / kLine) & (shards_.size() - 1)];
  }

  // Clock sweep: prefer an invalid slot, give referenced entries one
  // second chance, otherwise reclaim.
  std::size_t reclaim(Shard& s) {
    for (;;) {
      Entry& e = s.entries[s.hand];
      const std::size_t slot = s.hand;
      s.hand = (s.hand + 1) % s.entries.size();
      if (!e.valid) return slot;
      if (e.referenced) {
        e.referenced = false;
        continue;
      }
      return slot;
    }
  }

  hw::PmemNamespace& ns_;
  ReadCacheOptions opts_;
  std::vector<Shard> shards_;
  Stats stats_;
};

}  // namespace xp::pmem
