// XPLine-granular read combining (paper §5.1, Fig 7) — the read twin of
// linebatch.h.
//
// The XP media serves reads in 256 B XPLines: a binary-search probe that
// issues three dependent sub-64 B loads (offset word, key length, key
// bytes) drags up to three full media lines across the DDR-T interface to
// deliver a couple dozen bytes. A LineReader fetches the XPLine-aligned
// span covering a requested range in ONE load call, stages it in DRAM,
// and slices every field that lands in the span out of the staging buffer
// for free — the device sees one line-aligned burst instead of a dribble
// of tiny reads.
//
// Usage:
//   const auto* p = reader.fetch(ctx, ns, off, len);   // staged bytes
//   auto hdr = reader.fetch_pod<Header>(ctx, ns, off); // typed slice
//   reader.fetch(ctx, ns, off, len, window);           // stage `window`
//                                                      // bytes for a scan
//
// A fetch inside the currently staged span is served from DRAM with no PM
// traffic at all; `window` lets sequential scanners (novafs log replay)
// stage a whole page's worth of lines up front and then walk it entry by
// entry. With a ReadCache attached, staged lines come from / are
// installed into the cache, so hot lines skip the device entirely.
//
// Staleness discipline: the staging buffer is NOT write-invalidated (the
// ReadCache is, via StoreObserver). Any store-side mutation path must
// call discard() before the next fetch, exactly as the write side resets
// its LineBatcher per batch. Returned pointers are valid only until the
// next fetch()/discard().
//
// Fault semantics are preserved: a fetch stages only the XPLines that
// cover the requested range (plus the caller-chosen window), and a timed
// read of any poisoned byte in those lines throws MediaError exactly as
// the uncombined loads would have.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "pmemlib/readcache.h"
#include "xpsim/platform.h"

namespace xp::pmem {

class LineReader {
 public:
  static constexpr std::uint64_t kLine = hw::Platform::kXpLineBytes;

  struct Stats {
    std::uint64_t combined_fetches = 0;  // fetches that touched PM
    std::uint64_t staged_serves = 0;     // fetches served from staging
    std::uint64_t pm_bytes = 0;          // bytes loaded from the device
  };

  // Optional DRAM line cache consulted before, and filled after, every PM
  // fetch. Not owned.
  void attach_cache(ReadCache* c) { cache_ = c; }
  ReadCache* cache() const { return cache_; }

  // Ensure [off, off+len) is staged and return a pointer to the first
  // requested byte. `window` >= len extends the staged span to
  // [off, off+window) (clamped to the namespace end) so later fetches in
  // the window are free. Pointer valid until the next fetch()/discard().
  const std::uint8_t* fetch(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                            std::uint64_t off, std::size_t len,
                            std::size_t window = 0) {
    assert(off + len <= ns.size());
    if (len_ != 0 && off >= base_ && off + len <= base_ + len_) {
      ++stats_.staged_serves;
      if (hw::TelemetrySink* sink = ns.platform().telemetry())
        sink->read_path(hw::ReadPathEventKind::kStagedServe, ctx.now(), len);
      return buf_.data() + (off - base_);
    }
    const std::uint64_t lo = off / kLine * kLine;
    const std::uint64_t hi = std::min<std::uint64_t>(
        (off + std::max<std::size_t>(len, window) + kLine - 1) / kLine * kLine,
        ns.size());
    len_ = 0;  // staging invalid until the fetch completes (MediaError)
    buf_.resize(hi - lo);

    std::uint64_t run = lo;  // start of the current not-yet-loaded run
    std::uint64_t pm_bytes = 0;
    for (std::uint64_t line = lo; line < hi; line += kLine) {
      const bool full = line + kLine <= hi;
      if (cache_ != nullptr && full &&
          cache_->lookup(ctx, line, buf_.data() + (line - lo))) {
        pm_bytes += load_run(ctx, ns, lo, run, line);
        run = line + kLine;
      }
    }
    pm_bytes += load_run(ctx, ns, lo, run, hi);
    if (pm_bytes > 0) {
      ++stats_.combined_fetches;
      stats_.pm_bytes += pm_bytes;
      if (hw::TelemetrySink* sink = ns.platform().telemetry())
        sink->read_path(hw::ReadPathEventKind::kCombinedFetch, ctx.now(),
                        pm_bytes);
    } else {
      ++stats_.staged_serves;
    }
    base_ = lo;
    len_ = hi - lo;
    return buf_.data() + (off - lo);
  }

  template <typename T>
  T fetch_pod(sim::ThreadCtx& ctx, hw::PmemNamespace& ns, std::uint64_t off,
              std::size_t window = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    std::memcpy(&v, fetch(ctx, ns, off, sizeof(T), window), sizeof(T));
    return v;
  }

  // Copy [off, off+out.size()) into a caller buffer through the staging
  // span (large reads still combine into line-aligned bursts).
  void read(sim::ThreadCtx& ctx, hw::PmemNamespace& ns, std::uint64_t off,
            std::span<std::uint8_t> out, std::size_t window = 0) {
    if (out.empty()) return;
    std::memcpy(out.data(), fetch(ctx, ns, off, out.size(), window),
                out.size());
  }

  // Drop the staged span. Mutation paths call this so the next fetch
  // refetches current bytes.
  void discard() { len_ = 0; }

  const Stats& stats() const { return stats_; }

 private:
  // Load the pending miss run [run, end) into the staging buffer (one
  // timed PM load), install full lines into the cache, and return the
  // number of bytes loaded.
  std::uint64_t load_run(sim::ThreadCtx& ctx, hw::PmemNamespace& ns,
                         std::uint64_t lo, std::uint64_t run,
                         std::uint64_t end) {
    if (run >= end) return 0;
    // A combined fetch is one sequential line-aligned burst: the line-fill
    // buffers and prefetch streams pipeline it at streaming MLP even when
    // the issuing thread is latency-bound (mlp = 1). The data dependence a
    // low-mlp thread models lives BETWEEN probes, not within one burst —
    // that is precisely the round-trip collapse of §5.1.
    const unsigned probe_mlp = ctx.mlp();
    ctx.set_mlp(std::max(probe_mlp, ns.platform().timing().default_mlp));
    ns.load(ctx, run,
            std::span<std::uint8_t>(buf_.data() + (run - lo), end - run));
    ctx.set_mlp(probe_mlp);
    if (cache_ != nullptr) {
      for (std::uint64_t line = run; line + kLine <= end; line += kLine)
        cache_->insert(ctx, line, buf_.data() + (line - lo));
    }
    return end - run;
  }

  std::uint64_t base_ = 0;
  std::size_t len_ = 0;  // 0 = nothing staged
  std::vector<std::uint8_t> buf_;
  ReadCache* cache_ = nullptr;
  Stats stats_;
};

}  // namespace xp::pmem
