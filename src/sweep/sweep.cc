#include "sweep/sweep.h"

#include <cstdlib>
#include <cstring>
#include <string>

namespace xp::sweep {

namespace {

unsigned parse_jobs(const char* s) {
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v <= 0) return 0;
  return static_cast<unsigned>(v);
}

}  // namespace

unsigned default_jobs() {
  if (unsigned env = parse_jobs(std::getenv("XP_JOBS"))) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

unsigned jobs_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--jobs") == 0 || std::strcmp(arg, "-j") == 0) {
      if (i + 1 < argc)
        if (unsigned v = parse_jobs(argv[i + 1])) return v;
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      if (unsigned v = parse_jobs(arg + 7)) return v;
    } else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
      if (unsigned v = parse_jobs(arg + 2)) return v;
    }
  }
  return default_jobs();
}

Pool::Pool(unsigned jobs) : jobs_(jobs ? jobs : default_jobs()) {
  workers_.reserve(jobs_ - 1);
  for (unsigned i = 0; i + 1 < jobs_; ++i)
    workers_.emplace_back([this] { worker(); });
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void Pool::drain(const std::function<void(std::size_t)>& fn, std::size_t n) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!error_) error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lk(mu_);
    if (++done_ == n_) done_cv_.notify_all();
  }
}

void Pool::for_each_index(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    done_ = 0;
    error_ = nullptr;
  }
  work_cv_.notify_all();
  drain(fn, n);  // the caller is worker #0
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return done_ == n_; });
    fn_ = nullptr;
    err = error_;
  }
  if (err) std::rethrow_exception(err);
}

void Pool::worker() {
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] {
        return stop_ ||
               (fn_ != nullptr &&
                next_.load(std::memory_order_relaxed) < n_);
      });
      if (stop_) return;
      fn = fn_;
      n = n_;
    }
    drain(*fn, n);
  }
}

}  // namespace xp::sweep
