#include "sweep/sweep.h"

#include <cstdlib>
#include <cstring>
#include <string>

namespace xp::sweep {

namespace {

unsigned parse_jobs(const char* s) {
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v <= 0) return 0;
  return static_cast<unsigned>(v);
}

}  // namespace

unsigned default_jobs() {
  if (unsigned env = parse_jobs(std::getenv("XP_JOBS"))) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

unsigned jobs_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--jobs") == 0 || std::strcmp(arg, "-j") == 0) {
      if (i + 1 < argc)
        if (unsigned v = parse_jobs(argv[i + 1])) return v;
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      if (unsigned v = parse_jobs(arg + 7)) return v;
    } else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
      if (unsigned v = parse_jobs(arg + 2)) return v;
    }
  }
  return default_jobs();
}

Pool::Pool(unsigned jobs) : jobs_(jobs ? jobs : default_jobs()) {
  workers_.reserve(jobs_ - 1);
  try {
    for (unsigned i = 0; i + 1 < jobs_; ++i)
      workers_.emplace_back([this] { worker(); });
  } catch (...) {
    // Thread creation can fail at high --jobs; shut down the workers we
    // did start or their joinable std::threads would terminate().
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
    throw;
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void Pool::drain(std::size_t epoch) {
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t i = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (epoch != epoch_ || next_ >= n_) return;
      i = next_++;
      fn = fn_;
    }
    try {
      (*fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!error_) error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lk(mu_);
    // The caller blocks until done_ == n_, so the epoch cannot advance
    // while a claimed point is running; the check is defense in depth.
    if (epoch == epoch_ && ++done_ == n_) done_cv_.notify_all();
  }
}

void Pool::for_each_index(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::size_t epoch = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    epoch = ++epoch_;
    fn_ = &fn;
    n_ = n;
    next_ = 0;
    done_ = 0;
    error_ = nullptr;
  }
  work_cv_.notify_all();
  drain(epoch);  // the caller is worker #0
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] { return done_ == n_; });
    fn_ = nullptr;
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void Pool::worker() {
  for (;;) {
    std::size_t epoch = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk,
                    [&] { return stop_ || (fn_ != nullptr && next_ < n_); });
      if (stop_) return;
      epoch = epoch_;
    }
    drain(epoch);
  }
}

}  // namespace xp::sweep
