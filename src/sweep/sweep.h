// Host-parallel sweep engine for the figure benches.
//
// A figure bench is a grid of independent data points: each point builds
// its own hw::Platform, runs a workload on it, and reduces to a handful
// of numbers. Nothing in the simulator is shared between Platforms (no
// mutable globals; every RNG is owned by a component), so points can be
// evaluated on host worker threads in any order without perturbing the
// simulated results. run_points() collects results *by point index* and
// benches print only after the whole grid is done, so the printed tables
// are byte-identical no matter how many jobs ran.
//
// Job count resolution: `--jobs N` / `--jobs=N` / `-jN` on the command
// line, else the XP_JOBS environment variable, else
// std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace xp::sweep {

// XP_JOBS if set to a positive integer, else hardware_concurrency()
// (which itself falls back to 1 when unknown).
unsigned default_jobs();

// Parse `--jobs N`, `--jobs=N` or `-jN` out of argv; falls back to
// default_jobs() when absent. Values are clamped to >= 1.
unsigned jobs_from_args(int argc, char** argv);

// A pool of host worker threads that splits an index range over
// `jobs` threads. The calling thread always participates, so a Pool
// with jobs == 1 owns no threads and runs every point on the caller —
// the serial baseline every parallel run must match byte-for-byte.
class Pool {
 public:
  explicit Pool(unsigned jobs = 0);  // 0 -> default_jobs()
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  unsigned jobs() const { return jobs_; }

  // Evaluate fn(i) for every i in [0, n) exactly once, distributing
  // indices over the pool. Blocks until every point is done. If any
  // point throws, the first exception is rethrown here after the batch
  // completes.
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

 private:
  void worker();
  // Claim and run points of batch `epoch` until none are left or a newer
  // batch has started. Indices are claimed under mu_ together with an
  // epoch check, so a worker that raced past the end of one batch can
  // never steal an index (or run the already-destroyed function) of the
  // next one. Each point is a whole simulation run, so the per-point
  // mutex acquisition is noise.
  void drain(std::size_t epoch);

  unsigned jobs_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a batch
  std::condition_variable done_cv_;   // caller waits for completion
  // Batch state, all guarded by mu_.
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::size_t next_ = 0;   // next unclaimed point index
  std::size_t done_ = 0;   // completed points in this batch
  std::size_t epoch_ = 0;  // batch generation counter
  std::exception_ptr error_;
  bool stop_ = false;
};

// An ordered list of point configurations — one cell of a figure's
// sweep per entry. Benches build the grid in the exact order the table
// is printed, run it through a Pool, then render rows from the result
// vector.
template <typename Config>
class Grid {
 public:
  Grid() = default;

  void add(Config c) { points_.push_back(std::move(c)); }
  void reserve(std::size_t n) { points_.reserve(n); }

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const Config& operator[](std::size_t i) const { return points_[i]; }

  auto begin() const { return points_.begin(); }
  auto end() const { return points_.end(); }

 private:
  std::vector<Config> points_;
};

// Evaluate fn(config) — or fn(config, point_index) if fn accepts the
// extra argument — for every grid point through the pool; returns
// results in grid order. fn must be callable concurrently from several
// host threads (each invocation should build its own Platform). The
// index form lets benches derive stable per-point artifacts (e.g.
// telemetry trace file names) that are independent of the job count.
template <typename Config, typename Fn>
auto run_points(Pool& pool, const Grid<Config>& grid, Fn&& fn) {
  if constexpr (std::is_invocable_v<Fn&, const Config&, std::size_t>) {
    using R = std::invoke_result_t<Fn&, const Config&, std::size_t>;
    std::vector<R> out(grid.size());
    pool.for_each_index(grid.size(),
                        [&](std::size_t i) { out[i] = fn(grid[i], i); });
    return out;
  } else {
    using R = std::invoke_result_t<Fn&, const Config&>;
    std::vector<R> out(grid.size());
    pool.for_each_index(grid.size(),
                        [&](std::size_t i) { out[i] = fn(grid[i]); });
    return out;
  }
}

}  // namespace xp::sweep
