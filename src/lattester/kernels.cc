#include "lattester/kernels.h"

#include <vector>

#include "lattester/runner.h"
#include "sim/scheduler.h"

namespace xp::lat {

double xpbuffer_write_amp_probe(hw::Platform& platform,
                                hw::PmemNamespace& ns,
                                std::uint64_t region_bytes, int rounds) {
  const std::uint64_t xpline = platform.timing().xpline;
  const std::uint64_t half = xpline / 2;
  const std::uint64_t lines = std::max<std::uint64_t>(region_bytes / xpline, 1);

  platform.reset_timing();
  sim::ThreadCtx::Options opts;
  opts.id = 0;
  opts.mlp = 1;
  sim::ThreadCtx ctx(opts);
  std::vector<std::uint8_t> buf(half, 0xab);

  hw::XpCounters start_delta;
  for (int round = 0; round < rounds; ++round) {
    if (round == 1) start_delta = ns.xp_counters();  // skip warmup round
    for (std::uint64_t i = 0; i < lines; ++i) {
      ns.ntstore(ctx, i * xpline, buf);
      ns.sfence(ctx);
    }
    for (std::uint64_t i = 0; i < lines; ++i) {
      ns.ntstore(ctx, i * xpline + half, buf);
      ns.sfence(ctx);
    }
  }
  const hw::XpCounters delta = ns.xp_counters() - start_delta;
  return delta.write_amplification();
}

IdleLatency idle_latency(hw::Platform& platform, hw::PmemNamespace& ns,
                         std::uint64_t region_bytes) {
  WorkloadSpec spec;
  spec.region_size = region_bytes;
  spec.threads = 1;
  spec.mlp = 1;
  spec.fence_each_op = true;
  spec.duration = sim::ms(1);

  IdleLatency out{};
  spec.op = Op::kLoad;
  spec.pattern = Pattern::kSeq;
  out.read_seq_ns = run(platform, ns, spec).avg_latency_ns();
  spec.pattern = Pattern::kRand;
  out.read_rand_ns = run(platform, ns, spec).avg_latency_ns();
  spec.op = Op::kNtStore;
  spec.pattern = Pattern::kSeq;
  out.write_nt_ns = run(platform, ns, spec).avg_latency_ns();
  // Paper methodology: the line is loaded into cache first, then a 64 B
  // store + clwb + fence is timed. Random pattern over a small region keeps
  // lines cache-resident after warmup.
  spec.op = Op::kStoreClwb;
  spec.pattern = Pattern::kRand;
  spec.region_size = 64 << 10;  // cache-resident working set
  out.write_clwb_ns = run(platform, ns, spec).avg_latency_ns();
  return out;
}

}  // namespace xp::lat
