// Targeted LATTester kernels that don't fit the generic sweep runner.
#pragma once

#include <cstdint>

#include "xpsim/platform.h"

namespace xp::lat {

// Paper Fig 10: infer the XPBuffer capacity. Allocates a region of N
// XPLines; each round updates the first half (128 B) of every line in
// turn, then the second half of every line. If the region fits in the
// XPBuffer the second-half updates coalesce and write amplification stays
// ~1; beyond the buffer capacity the first halves get evicted partially
// dirty and amplification jumps toward 2.
//
// Returns the measured write amplification (media bytes / iMC bytes) over
// `rounds` rounds (the first round is warmup and not measured).
double xpbuffer_write_amp_probe(hw::Platform& platform,
                                hw::PmemNamespace& ns,
                                std::uint64_t region_bytes, int rounds = 4);

// Measure idle latency (paper Fig 2 methodology): single thread, MLP of 1,
// a fence between consecutive operations. Returns mean latency in ns.
struct IdleLatency {
  double read_seq_ns;
  double read_rand_ns;
  double write_nt_ns;
  double write_clwb_ns;
};
// `region_bytes` should be much larger than the LLC so repeat accesses
// don't hit the CPU cache during the run.
IdleLatency idle_latency(hw::Platform& platform, hw::PmemNamespace& ns,
                         std::uint64_t region_bytes = 256 << 20);

}  // namespace xp::lat
