// LATTester workload specification (paper §3.1).
//
// A WorkloadSpec describes one cell of the paper's systematic sweep:
// operation x pattern x access size x thread count x fencing x NUMA
// placement x delay. The runner executes it on a Platform namespace and
// reports bandwidth, latency distribution, and the DIMM counter deltas
// (from which EWR is computed).
#pragma once

#include <cstdint>

#include "sim/simtime.h"

namespace xp::lat {

enum class Op {
  kLoad,       // 64 B-granular loads
  kNtStore,    // non-temporal stores
  kStoreClwb,  // cached stores + clwb write-back
  kStore,      // cached stores, no explicit flush
  kMixed,      // per-access read/write choice via read_fraction
};

enum class Pattern { kSeq, kRand, kStride };

struct WorkloadSpec {
  Op op = Op::kLoad;
  Pattern pattern = Pattern::kSeq;
  std::size_t access_size = 64;       // bytes per application access
  std::size_t stride = 4096;          // for kStride: gap between accesses
  std::uint64_t region_offset = 0;    // start of working set in namespace
  std::uint64_t region_size = 64 << 20;
  unsigned threads = 1;
  unsigned socket = 0;                // socket the threads are pinned to
  unsigned mlp = 0;                   // 0 = platform default
  bool fence_each_op = false;         // sfence/mfence after every access
  sim::Time delay_between_ops = 0;    // latency-under-load throttling
  // For kStoreClwb: flush granularity. 64 flushes each line right after
  // its store; 0 flushes the whole access after all stores (Fig 14).
  std::size_t flush_every = 64;
  double read_fraction = 0.5;         // only for kMixed
  // Restrict each thread to this many interleave chunks' worth of DIMMs
  // (Fig 16). 0 = no restriction.
  unsigned dimms_per_thread = 0;
  bool private_regions = true;        // slice region per thread
  sim::Time warmup = sim::us(50);
  sim::Time duration = sim::ms(2);
  std::uint64_t max_ops_per_thread = 0;  // 0 = until duration
  std::uint64_t seed = 1;
};

}  // namespace xp::lat
