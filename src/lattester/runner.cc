#include "lattester/runner.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/scheduler.h"

namespace xp::lat {

namespace {

using hw::PmemNamespace;
using sim::ThreadCtx;
using sim::Time;

// Large application accesses are executed in chunks of at most this many
// bytes per scheduler step, so one thread's multi-KB access doesn't
// execute atomically ahead of other threads' earlier operations. Eight
// cache lines per step keeps cross-thread interleaving fine enough that
// shared-resource reservations stay close to global time order.
//
// With a single thread there is nothing to interleave against, so the
// whole access runs as one scheduler step — the simulator charges time
// per 64 B line regardless of how an access is split into calls, so the
// results are identical and the per-step scheduler dispatch disappears
// from multi-MB accesses (Fig 14's 16 MB writes are 32768 steps
// otherwise). The only call-pattern dependence is kStoreClwb's
// flush_every loop, which restarts at every chunk boundary; the merge is
// applied only when flush boundaries are unchanged by it (flush_every
// divides kStepChunk, or the flush-at-end mode).
constexpr std::size_t kStepChunk = 512;

// Source/sink buffers are sized once per thread and reused for every op.
// They are capped: the pattern written (b * 131 + i, truncated to a
// byte) has period 256, so indexing a capped buffer modulo its size
// yields byte-for-byte the bytes a full access-sized buffer would, as
// long as 256 divides the cap. Before the cap, a 16 MB-access sweep with
// 24 threads allocated and patterned 384 MB of host memory per point.
constexpr std::size_t kBufCap = 64 << 10;
static_assert(kBufCap % 256 == 0 && kStepChunk % 256 == 0);

struct ThreadState {
  std::uint64_t slice_start = 0;
  std::uint64_t slice_len = 0;
  std::uint64_t cursor = 0;
  std::uint64_t ops = 0;
  std::uint64_t ops_in_window = 0;
  std::uint64_t bytes_in_window = 0;
  sim::Histogram latency;
  std::vector<std::uint8_t> buf;

  // Current (possibly chunked) access.
  bool op_active = false;
  bool op_is_read = false;  // for kMixed
  std::uint64_t op_off = 0;
  std::size_t op_pos = 0;
  Time op_start = 0;
};

std::uint64_t pick_offset(const WorkloadSpec& spec, ThreadCtx& ctx,
                          ThreadState& st, const hw::Platform& platform) {
  const std::uint64_t acc = spec.access_size;
  if (spec.dimms_per_thread > 0) {
    // Fig 16: each thread only touches `dimms_per_thread` channels.
    const unsigned channels = platform.timing().channels_per_socket;
    const std::uint64_t chunk = platform.timing().interleave_chunk;
    const unsigned n = std::min(spec.dimms_per_thread, channels);
    const unsigned channel =
        (ctx.id() + static_cast<unsigned>(ctx.rng().uniform(n))) % channels;
    const std::uint64_t stripes = spec.region_size / (chunk * channels);
    const std::uint64_t stripe =
        ctx.rng().uniform(std::max<std::uint64_t>(stripes, 1));
    const std::uint64_t within =
        ctx.rng().uniform(std::max<std::uint64_t>(chunk / acc, 1)) * acc;
    return spec.region_offset + stripe * chunk * channels + channel * chunk +
           within;
  }
  if (spec.pattern == Pattern::kRand) {
    const std::uint64_t slots = std::max<std::uint64_t>(st.slice_len / acc, 1);
    return st.slice_start + ctx.rng().uniform(slots) * acc;
  }
  const std::uint64_t step =
      spec.pattern == Pattern::kStride ? std::max(spec.stride, acc) : acc;
  const std::uint64_t off = st.slice_start + st.cursor;
  st.cursor += step;
  if (st.cursor + acc > st.slice_len) st.cursor = 0;
  return off;
}

// Execute bytes [st.op_pos, st.op_pos + len) of the current access. The
// range may exceed the buffer cap; it is walked in buffer-window pieces,
// indexing the buffer modulo its size (see kBufCap for why the bytes
// match an uncapped buffer).
void access_chunk(const WorkloadSpec& spec, PmemNamespace& ns, ThreadCtx& ctx,
                  ThreadState& st, std::size_t len) {
  const bool final_chunk = st.op_pos + len >= spec.access_size;
  std::size_t pos = st.op_pos;
  std::size_t remaining = len;
  while (remaining > 0) {
    const std::size_t win = pos % st.buf.size();
    const std::size_t n = std::min(remaining, st.buf.size() - win);
    const std::uint64_t off = st.op_off + pos;
    auto data = std::span<const std::uint8_t>(st.buf.data() + win, n);
    auto out = std::span<std::uint8_t>(st.buf.data() + win, n);
    switch (spec.op) {
      case Op::kLoad:
        ns.load(ctx, off, out);
        break;
      case Op::kNtStore:
        ns.ntstore(ctx, off, data);
        break;
      case Op::kStoreClwb: {
        if (spec.flush_every == 0) {
          // Flush the whole access only after its last chunk (Fig 14's
          // "clwb(write size)" mode).
          ns.store(ctx, off, data);
        } else {
          const std::size_t step = spec.flush_every;
          for (std::size_t p = 0; p < n; p += step) {
            const std::size_t m = std::min(step, n - p);
            ns.store(ctx, off + p, data.subspan(p, m));
            ns.clwb(ctx, off + p, m);
          }
        }
        break;
      }
      case Op::kStore:
        ns.store(ctx, off, data);
        break;
      case Op::kMixed:
        if (st.op_is_read) {
          ns.load(ctx, off, out);
        } else {
          ns.ntstore(ctx, off, data);
        }
        break;
    }
    pos += n;
    remaining -= n;
  }
  if (spec.op == Op::kStoreClwb && spec.flush_every == 0 && final_chunk)
    ns.clwb(ctx, st.op_off, spec.access_size);
}

}  // namespace

Result run(hw::Platform& platform, hw::PmemNamespace& ns,
           const WorkloadSpec& spec) {
  const Time window_start = spec.warmup;
  const Time window_end = spec.warmup + spec.duration;

  auto states = std::make_unique<ThreadState[]>(spec.threads);
  const std::uint64_t acc = spec.access_size;
  for (unsigned i = 0; i < spec.threads; ++i) {
    ThreadState& st = states[i];
    if (spec.private_regions && spec.dimms_per_thread == 0) {
      std::uint64_t slice = spec.region_size / spec.threads;
      slice = std::max<std::uint64_t>(slice / acc * acc, acc);
      st.slice_start = spec.region_offset +
                       std::min<std::uint64_t>(i * slice,
                                               spec.region_size - slice);
      st.slice_len = slice;
    } else {
      st.slice_start = spec.region_offset;
      st.slice_len = spec.region_size;
    }
    st.buf.resize(std::max<std::size_t>(std::min<std::size_t>(acc, kBufCap),
                                        64));
    for (std::size_t b = 0; b < st.buf.size(); ++b)
      st.buf[b] = static_cast<std::uint8_t>(b * 131 + i);
    // Stagger sequential cursors so same-speed threads don't phase-lock
    // on the same interleave channel.
    if (spec.pattern != Pattern::kRand) {
      const std::uint64_t slots =
          std::max<std::uint64_t>(st.slice_len / acc, 1);
      st.cursor = ((i * 2654435761ULL) % slots) * acc;
      if (st.cursor + acc > st.slice_len) st.cursor = 0;
    }
  }

  // Each run is an independent measurement epoch: simulated threads start
  // at time 0, so stale reservations from a previous run must be cleared.
  platform.reset_timing();

  const hw::XpCounters before = ns.xp_counters();

  // Single thread: run each access as one scheduler step (see kStepChunk;
  // timing is unchanged, the dispatch overhead isn't). Guarded so the
  // kStoreClwb store/clwb call pattern stays exactly as chunked execution
  // would produce it.
  const bool whole_op_steps =
      spec.threads == 1 &&
      (spec.op != Op::kStoreClwb || spec.flush_every == 0 ||
       kStepChunk % spec.flush_every == 0);
  const std::size_t step_chunk = whole_op_steps ? spec.access_size
                                                : kStepChunk;

  sim::Scheduler sched;
  for (unsigned i = 0; i < spec.threads; ++i) {
    ThreadState* st = &states[i];
    ThreadCtx::Options opts;
    opts.id = i;
    opts.socket = spec.socket;
    opts.mlp = spec.mlp ? spec.mlp : platform.timing().default_mlp;
    opts.seed = spec.seed * 7919 + i;
    sched.spawn(opts, [&, st](ThreadCtx& ctx) -> bool {
      if (!st->op_active) {
        if (ctx.now() >= window_end) return false;
        if (spec.max_ops_per_thread != 0 &&
            st->ops >= spec.max_ops_per_thread)
          return false;
        st->op_off = pick_offset(spec, ctx, *st, platform);
        st->op_pos = 0;
        st->op_start = ctx.now();
        st->op_is_read = ctx.rng().uniform_double() < spec.read_fraction;
        st->op_active = true;
      }
      const std::size_t len =
          std::min(step_chunk, spec.access_size - st->op_pos);
      access_chunk(spec, ns, ctx, *st, len);
      st->op_pos += len;
      if (st->op_pos < spec.access_size) return true;

      // Access complete.
      st->op_active = false;
      if (spec.fence_each_op) {
        if (spec.op == Op::kLoad) {
          ns.mfence(ctx);
        } else {
          ns.sfence(ctx);
        }
      }
      const Time end = ctx.now();
      ++st->ops;
      if (st->op_start >= window_start && end <= window_end) {
        ++st->ops_in_window;
        st->bytes_in_window += spec.access_size;
        st->latency.record(end - st->op_start);
      }
      if (spec.delay_between_ops != 0) ctx.advance_by(spec.delay_between_ops);
      return true;
    });
  }
  sched.run();

  // Close the telemetry interval at the measurement-window boundary so
  // timeline samplers always get a final sample (no-op when no sink).
  if (hw::TelemetrySink* sink = platform.telemetry())
    sink->run_complete("lattester", window_start, window_end);

  Result r;
  r.window = spec.duration;
  for (unsigned i = 0; i < spec.threads; ++i) {
    r.ops += states[i].ops_in_window;
    r.bytes += states[i].bytes_in_window;
    r.latency.merge(states[i].latency);
  }
  r.bandwidth_gbps = sim::gbps(r.bytes, r.window);
  r.xp_delta = ns.xp_counters() - before;
  r.ewr = r.xp_delta.ewr();
  return r;
}

}  // namespace xp::lat
