// LATTester execution engine: runs a WorkloadSpec against a namespace.
#pragma once

#include <cstdint>

#include "lattester/spec.h"
#include "sim/histogram.h"
#include "xpsim/platform.h"

namespace xp::lat {

struct Result {
  std::uint64_t ops = 0;            // accesses completed in the window
  std::uint64_t bytes = 0;          // application bytes in the window
  sim::Time window = 0;             // measured duration
  double bandwidth_gbps = 0.0;      // bytes / window
  sim::Histogram latency;           // per-access latency (ps)
  hw::XpCounters xp_delta;          // DIMM counters over the whole run
  double ewr = 1.0;                 // from xp_delta

  double avg_latency_ns() const { return latency.mean() / 1e3; }
  double p_ns(double q) const {
    return sim::to_ns(latency.percentile(q));
  }
};

// Run the workload on `ns`. Deterministic for a given spec.seed.
Result run(hw::Platform& platform, hw::PmemNamespace& ns,
           const WorkloadSpec& spec);

}  // namespace xp::lat
