// Uniform KV adapter over the four store families, so one workload
// engine (workload/engine.h), one sharded frontend (workload/shard.h)
// and one differential oracle (tests/differential_test.cc) can drive
// any of them interchangeably.
//
// Adapters are thin: each owns its store (and pool, where the store
// needs one) over a caller-provided PmemNamespace, translates the
// paper-rule tuning knobs (StoreTuning) into the store's own options,
// and leaves the store's timing untouched — driving a store through its
// adapter is telemetry-identical to driving it directly (asserted by
// tests/workload_test.cc).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/scheduler.h"
#include "sim/status.h"
#include "xpsim/platform.h"

namespace xp::workload {

enum class StoreKind : unsigned char { kLsmkv, kCmap, kStree, kNova };
const char* store_kind_name(StoreKind k);

// The §5 fast-path knobs, mapped per family by make_store. All default
// off: a default-tuned adapter drives the stock store byte-for-byte.
struct StoreTuning {
  // §5.1/§5.2 write combining: lsmkv WAL group commit / novafs batched
  // log appends. No-op for cmap/stree (their writes are line-local).
  bool write_combine = false;
  std::size_t wal_group_size = 8;
  // §5.1 read path: DRAM residency + line-granular read combining + a
  // DRAM read cache of `read_cache_lines` 256 B lines.
  bool read_path = false;
  std::size_t read_cache_lines = 2048;
  // Deferred compaction with a write-stall admission gate (lsmkv only).
  bool background_compaction = false;
  // §5.3 writer-lane cap (cmap only; the sharded frontend handles lane
  // identity for the other families).
  unsigned writers_per_dimm = 0;
  // lsmkv memtable flush threshold: small enough that mixed workloads
  // actually exercise flush + compaction, unlike the 4 MiB default.
  std::size_t memtable_bytes = 64 << 10;
};

// One element of a batched dispatch (shard.h groups these per shard and
// lsmkv commits each group as one crash-atomic WAL burst).
struct BatchOp {
  std::string key;
  std::string value;
  bool del = false;
};

// Typed per-operation outcome for the resilient request path. The
// legacy bool/void methods throw hw::MediaError out of the store on a
// poisoned-line read; the try_* methods translate that into a status so
// callers above the frontend never see an exception or silent garbage.
enum class OpStatus : unsigned char {
  kOk,          // operation applied / value returned
  kNotFound,    // clean miss (get/del of an absent key)
  kMediaError,  // a poisoned XPLine was hit and contained (typed §2.1 MCE)
  kUnavailable, // no copy could serve within the retry/deadline budget
  kDataLoss,    // every copy of this key's data was lost (replicated mode)
};
const char* op_status_name(OpStatus s);

struct OpResult {
  OpStatus status = OpStatus::kOk;
  unsigned retries = 0;  // deterministic backoff rounds consumed
  bool failover = false; // a replica copy served this read
  bool ok() const { return status == OpStatus::kOk; }
};

class StoreIface {
 public:
  virtual ~StoreIface() = default;

  virtual const char* name() const = 0;
  virtual StoreKind kind() const = 0;

  virtual void create(sim::ThreadCtx& ctx) = 0;
  virtual bool open(sim::ThreadCtx& ctx) = 0;

  virtual void put(sim::ThreadCtx& ctx, std::string_view key,
                   std::string_view value) = 0;
  virtual bool get(sim::ThreadCtx& ctx, std::string_view key,
                   std::string* value) = 0;
  // Returns whether the key existed — but only where the store reports
  // it (del_reports_found); lsmkv tombstones blindly and returns true.
  virtual bool del(sim::ThreadCtx& ctx, std::string_view key) = 0;
  virtual bool del_reports_found() const { return true; }

  // Ordered range scan; cmap is hash-ordered and reports no scan
  // support (the engine degrades scans to point reads there).
  virtual bool supports_scan() const { return true; }
  virtual std::vector<std::pair<std::string, std::string>> scan(
      sim::ThreadCtx& ctx, std::string_view start, std::size_t n) = 0;

  // Apply a batch of mutations. Default: one call per op, then
  // flush_pending. lsmkv overrides this with Db::put_batch (one
  // crash-atomic group-committed WAL burst).
  virtual void apply_batch(sim::ThreadCtx& ctx,
                           std::span<const BatchOp> ops);

  // Durability barrier for buffered group commits (no-op elsewhere).
  virtual void flush_pending(sim::ThreadCtx& ctx) { (void)ctx; }

  // Donate one background turn (deferred lsmkv compaction). Returns
  // true if the turn did work.
  virtual bool background_turn(sim::ThreadCtx& ctx) {
    (void)ctx;
    return false;
  }

  virtual Status check(sim::ThreadCtx& ctx) = 0;

  // --- Typed request path -----------------------------------------------
  // Default implementations wrap the legacy methods and translate a
  // thrown hw::MediaError into OpStatus::kMediaError. A MediaError while
  // the platform is frozen (an armed read-fault campaign: the machine
  // check killed the "process") is rethrown — containment there would
  // fake surviving a crash. crashmc::CrashPointHit always propagates.
  // The sharded frontend overrides these with replication, health
  // tracking, bounded retry and deadline budgets.
  virtual OpResult try_put(sim::ThreadCtx& ctx, std::string_view key,
                           std::string_view value);
  virtual OpResult try_get(sim::ThreadCtx& ctx, std::string_view key,
                           std::string* value);
  virtual OpResult try_del(sim::ThreadCtx& ctx, std::string_view key,
                           bool* found = nullptr);
  virtual OpResult try_scan(sim::ThreadCtx& ctx, std::string_view start,
                            std::size_t n,
                            std::vector<std::pair<std::string, std::string>>* out);
  virtual OpResult try_apply_batch(sim::ThreadCtx& ctx,
                                   std::span<const BatchOp> ops);

  // The platform backing this store's namespace(s); used by the typed
  // path to distinguish contained media errors from frozen-platform
  // machine checks. Adapters over a single namespace return its platform.
  virtual hw::Platform* platform_of() const { return nullptr; }

  // Family-specific media salvage after poisoned lines were healed
  // (zero-filled): re-derive consistency from redundant metadata where
  // the family keeps any (lsmkv RecoveryInfo repair), then re-verify.
  virtual Status repair_media(sim::ThreadCtx& ctx) { return check(ctx); }
};

std::unique_ptr<StoreIface> make_store(StoreKind kind, hw::PmemNamespace& ns,
                                       const StoreTuning& tuning = {});

}  // namespace xp::workload
