// Deterministic YCSB-style workload generation (workloads A-F).
//
// The generators are pure functions of their seeds: every simulated
// thread draws from its own xorshift64* stream, so a run's op sequence
// (and therefore its simulated timing and telemetry) is byte-identical
// no matter how many host jobs execute the surrounding sweep grid. The
// zipfian generator is the Gray et al. incremental-zeta construction
// YCSB uses, with FNV scrambling so popular ranks spread over the whole
// key space instead of clustering at the low ids.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace xp::workload {

// xorshift64* — one independent, seedable op stream per thread. Chosen
// over sim::Rng so workload draws never perturb (or depend on) the
// simulator's own per-thread RNG state.
class XorShift {
 public:
  explicit XorShift(std::uint64_t seed)
      : s_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  std::uint64_t next() {
    s_ ^= s_ >> 12;
    s_ ^= s_ << 25;
    s_ ^= s_ >> 27;
    return s_ * 0x2545f4914f6cdd1dULL;
  }
  std::uint64_t uniform(std::uint64_t bound) {
    return bound ? next() % bound : 0;
  }
  double uniform_double() {  // [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t s_;
};

std::uint64_t fnv1a64(std::string_view s);
std::uint64_t mix64(std::uint64_t x);  // splitmix64 finalizer

// Zipfian ranks over [0, items) with parameter theta (YCSB default
// 0.99). grow() extends the item count incrementally (read-latest adds
// records as the workload runs) by summing only the new zeta terms.
class Zipfian {
 public:
  static constexpr double kDefaultTheta = 0.99;

  explicit Zipfian(std::uint64_t items, double theta = kDefaultTheta);

  std::uint64_t next(XorShift& rng);
  void grow(std::uint64_t items);
  std::uint64_t items() const { return items_; }

 private:
  void refresh();

  std::uint64_t items_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

// Spread a zipfian rank over the key space (scrambled zipfian): without
// this, the hottest keys are the first inserted and every store serves
// them from one arena.
inline std::uint64_t scramble(std::uint64_t rank, std::uint64_t items) {
  return items ? mix64(rank) % items : 0;
}

// "user" + 12 zero-padded digits: sortable, and short enough for every
// store (stree caps keys at 31 bytes).
std::string key_name(std::uint64_t id);

// Deterministic value bytes for (key id, version).
std::string make_value(std::uint64_t id, std::uint64_t version,
                       std::size_t len);

enum class OpKind : unsigned char { kRead, kUpdate, kInsert, kScan, kRmw };

struct Spec {
  char tag = 'A';  // which preset this is (or '?' for custom mixes)
  // Op mix; must sum to ~1. pick_op draws against the cumulative sums.
  double read = 0.5;
  double update = 0.5;
  double insert = 0;
  double scan = 0;
  double rmw = 0;
  enum class Dist { kZipfian, kUniform, kLatest } dist = Dist::kZipfian;
  std::uint64_t records = 1000;  // preloaded keys
  std::uint64_t ops = 4000;      // total ops across all threads
  std::size_t value_len = 100;
  std::size_t scan_len = 16;  // max items per scan
  double zipf_theta = Zipfian::kDefaultTheta;
  std::uint64_t seed = 1;
};

// The six standard mixes: A 50/50 read/update zipfian, B 95/5 zipfian,
// C read-only zipfian, D 95/5 read/insert latest, E 95/5 scan/insert
// zipfian, F 50/50 read/read-modify-write zipfian.
Spec ycsb(char workload);

OpKind pick_op(const Spec& spec, XorShift& rng);

}  // namespace xp::workload
