#include "workload/engine.h"

#include <vector>

namespace xp::workload {

namespace {

struct PerThread {
  explicit PerThread(const Spec& spec, unsigned t, std::uint64_t base)
      : rng(mix64(spec.seed * 0x9e3779b97f4a7c15ULL + base) + t + 1),
        zipf(spec.records, spec.zipf_theta) {}

  XorShift rng;
  Zipfian zipf;
  std::uint64_t remaining = 0;
  std::uint64_t seq = 0;  // ops issued by this thread
  std::uint64_t checksum = 0;
  std::vector<BatchOp> batch;
  sim::Histogram hist;
};

}  // namespace

void load(StoreIface& store, const Spec& spec, sim::ThreadCtx& ctx) {
  for (std::uint64_t id = 0; id < spec.records; ++id)
    store.put(ctx, key_name(id), make_value(id, 0, spec.value_len));
  store.flush_pending(ctx);
}

Result run(StoreIface& store, const Spec& spec, const EngineOptions& opts) {
  const unsigned T = opts.threads ? opts.threads : 1;
  std::vector<PerThread> per;
  per.reserve(T);
  for (unsigned t = 0; t < T; ++t) {
    per.emplace_back(spec, t, opts.base_seed);
    per[t].remaining = spec.ops / T + (t < spec.ops % T ? 1 : 0);
  }

  // Shared across workers; mutation order is fixed by the deterministic
  // scheduler, so these do not break reproducibility.
  std::uint64_t live_records = spec.records;  // preloaded + inserted
  unsigned done_workers = 0;

  Result res;
  sim::Scheduler sched;
  std::vector<const sim::ThreadCtx*> worker_ctx;

  auto key_id = [&](PerThread& pt) -> std::uint64_t {
    switch (spec.dist) {
      case Spec::Dist::kUniform:
        return pt.rng.uniform(spec.records);
      case Spec::Dist::kLatest: {
        pt.zipf.grow(live_records);
        const std::uint64_t rank = pt.zipf.next(pt.rng);
        return live_records - 1 - rank;
      }
      case Spec::Dist::kZipfian:
      default:
        return scramble(pt.zipf.next(pt.rng), spec.records);
    }
  };

  for (unsigned t = 0; t < T; ++t) {
    sim::ThreadCtx::Options topts;
    topts.id = t + 1;
    topts.socket = opts.socket;
    topts.seed = spec.seed + t + 1;
    auto& ctx_ref = sched.spawn(topts, [&, t](sim::ThreadCtx& ctx) -> bool {
      PerThread& pt = per[t];
      ctx.sched_point(sim::SchedPoint::kOpBegin);
      const sim::Time t0 = ctx.now();
      const OpKind op = pick_op(spec, pt.rng);
      std::uint64_t h = mix64((std::uint64_t{t} << 32) | pt.seq);

      auto write = [&](std::uint64_t id, bool is_insert) {
        const std::string key = key_name(id);
        std::string value = make_value(id, pt.seq + 1, spec.value_len);
        if (opts.dispatch_batch > 0) {
          pt.batch.push_back({key, std::move(value), false});
          if (pt.batch.size() >= opts.dispatch_batch) {
            store.apply_batch(ctx, pt.batch);
            pt.batch.clear();
          }
        } else {
          store.put(ctx, key, value);
        }
        if (is_insert) ++res.inserts; else ++res.updates;
        h = mix64(h ^ id);
      };

      switch (op) {
        case OpKind::kRead: {
          const std::uint64_t id = key_id(pt);
          std::string v;
          const bool hit = store.get(ctx, key_name(id), &v);
          ++res.reads;
          if (hit) ++res.read_hits;
          h = mix64(h ^ (hit ? fnv1a64(v) : 0xdead));
          break;
        }
        case OpKind::kUpdate:
          write(key_id(pt), /*is_insert=*/false);
          break;
        case OpKind::kInsert:
          write(live_records++, /*is_insert=*/true);
          break;
        case OpKind::kScan: {
          const std::uint64_t id = key_id(pt);
          const std::size_t n = 1 + pt.rng.uniform(spec.scan_len);
          ++res.scans;
          if (store.supports_scan()) {
            const auto rows = store.scan(ctx, key_name(id), n);
            res.scanned_items += rows.size();
            for (const auto& [k, v] : rows)
              h = mix64(h ^ fnv1a64(k) ^ fnv1a64(v));
          } else {
            // Hash-ordered store: degrade to a point read.
            std::string v;
            const bool hit = store.get(ctx, key_name(id), &v);
            h = mix64(h ^ (hit ? fnv1a64(v) : 0xdead));
          }
          break;
        }
        case OpKind::kRmw: {
          const std::uint64_t id = key_id(pt);
          std::string v;
          const bool hit = store.get(ctx, key_name(id), &v);
          h = mix64(h ^ (hit ? fnv1a64(v) : 0xdead));
          store.put(ctx, key_name(id), make_value(id, pt.seq + 1,
                                                  spec.value_len));
          ++res.rmws;
          break;
        }
      }

      ++res.ops;
      ++pt.seq;
      pt.hist.record(ctx.now() - t0);
      pt.checksum ^= h;
      if (--pt.remaining == 0) {
        if (!pt.batch.empty()) {
          store.apply_batch(ctx, pt.batch);
          pt.batch.clear();
        }
        // The last worker out drains any cross-thread group buffer so
        // every acknowledged op is durable when run() returns.
        if (++done_workers == T) store.flush_pending(ctx);
        return false;
      }
      return true;
    });
    worker_ctx.push_back(&ctx_ref);
  }

  if (opts.background_thread) {
    sim::ThreadCtx::Options topts;
    topts.id = T + 1;
    topts.socket = opts.socket;
    topts.seed = spec.seed + T + 1;
    sched.spawn(topts, [&](sim::ThreadCtx& ctx) -> bool {
      if (done_workers == T) return false;
      if (store.background_turn(ctx))
        ++res.background_turns;
      else
        ctx.advance_by(opts.background_poll);  // idle poll
      return true;
    });
  }

  sched.run();

  sim::Histogram hist;
  for (unsigned t = 0; t < T; ++t) {
    hist.merge(per[t].hist);
    res.checksum ^= mix64(per[t].checksum + t + 1);
    if (worker_ctx[t]->now() > res.elapsed) res.elapsed = worker_ctx[t]->now();
  }
  res.p50 = hist.percentile(0.50);
  res.p99 = hist.percentile(0.99);
  return res;
}

}  // namespace xp::workload
