#include "workload/engine.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace xp::workload {

namespace {

// Host-side read-validation oracle (EngineOptions::validate_reads): the
// set of value hashes ever issued for each key id. A read hit outside
// the set is a silent corruption. Preloaded version-0 values are
// recognized structurally so load() needn't be replayed into it.
struct ReadOracle {
  std::size_t value_len = 0;
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>> seen;

  void record(std::uint64_t id, std::string_view v) {
    seen[id].insert(fnv1a64(v));
  }
  bool plausible(std::uint64_t id, std::uint64_t preloaded,
                 std::string_view v) const {
    if (id < preloaded && v == make_value(id, 0, value_len)) return true;
    const auto it = seen.find(id);
    return it != seen.end() && it->second.count(fnv1a64(v)) != 0;
  }
};

struct PerThread {
  explicit PerThread(const Spec& spec, unsigned t, std::uint64_t base)
      : rng(mix64(spec.seed * 0x9e3779b97f4a7c15ULL + base) + t + 1),
        zipf(spec.records, spec.zipf_theta) {}

  XorShift rng;
  Zipfian zipf;
  std::uint64_t remaining = 0;
  std::uint64_t seq = 0;  // ops issued by this thread
  std::uint64_t checksum = 0;
  std::vector<BatchOp> batch;
  sim::Histogram hist;
};

}  // namespace

void load(StoreIface& store, const Spec& spec, sim::ThreadCtx& ctx) {
  for (std::uint64_t id = 0; id < spec.records; ++id)
    store.put(ctx, key_name(id), make_value(id, 0, spec.value_len));
  store.flush_pending(ctx);
}

Result run(StoreIface& store, const Spec& spec, const EngineOptions& opts) {
  const unsigned T = opts.threads ? opts.threads : 1;
  std::vector<PerThread> per;
  per.reserve(T);
  for (unsigned t = 0; t < T; ++t) {
    per.emplace_back(spec, t, opts.base_seed);
    per[t].remaining = spec.ops / T + (t < spec.ops % T ? 1 : 0);
  }

  // Shared across workers; mutation order is fixed by the deterministic
  // scheduler, so these do not break reproducibility.
  std::uint64_t live_records = spec.records;  // preloaded + inserted
  unsigned done_workers = 0;

  Result res;
  sim::Scheduler sched;
  std::vector<const sim::ThreadCtx*> worker_ctx;

  ReadOracle oracle;
  oracle.value_len = spec.value_len;

  // Fold one typed outcome into the result counters. kNotFound is a
  // clean miss, not an error.
  auto absorb = [&res](const OpResult& r) {
    res.retries += r.retries;
    if (r.failover) ++res.failovers;
    if (r.status != OpStatus::kOk && r.status != OpStatus::kNotFound)
      ++res.typed_errors;
  };
  // Typed errors digest a status-distinct sentinel so runs differing
  // only in error outcomes have different checksums.
  auto err_token = [](const OpResult& r) -> std::uint64_t {
    return 0xbadbad00u + static_cast<unsigned>(r.status);
  };

  auto key_id = [&](PerThread& pt) -> std::uint64_t {
    switch (spec.dist) {
      case Spec::Dist::kUniform:
        return pt.rng.uniform(spec.records);
      case Spec::Dist::kLatest: {
        pt.zipf.grow(live_records);
        const std::uint64_t rank = pt.zipf.next(pt.rng);
        return live_records - 1 - rank;
      }
      case Spec::Dist::kZipfian:
      default:
        return scramble(pt.zipf.next(pt.rng), spec.records);
    }
  };

  for (unsigned t = 0; t < T; ++t) {
    sim::ThreadCtx::Options topts;
    topts.id = t + 1;
    topts.socket = opts.socket;
    topts.seed = spec.seed + t + 1;
    auto& ctx_ref = sched.spawn(topts, [&, t](sim::ThreadCtx& ctx) -> bool {
      PerThread& pt = per[t];
      ctx.sched_point(sim::SchedPoint::kOpBegin);
      const sim::Time t0 = ctx.now();
      const OpKind op = pick_op(spec, pt.rng);
      std::uint64_t h = mix64((std::uint64_t{t} << 32) | pt.seq);

      // A hit outside the issued-value set is silent corruption.
      auto validate = [&](std::uint64_t id, std::string_view v) {
        if (opts.validate_reads && !oracle.plausible(id, spec.records, v))
          ++res.corruptions;
      };
      // Point read shared by kRead, the scan degrade, and the rmw head.
      auto point_read = [&](std::uint64_t id) -> OpResult {
        std::string v;
        const OpResult r = store.try_get(ctx, key_name(id), &v);
        absorb(r);
        if (r.ok()) {
          h = mix64(h ^ fnv1a64(v));
          validate(id, v);
        } else if (r.status == OpStatus::kNotFound) {
          h = mix64(h ^ 0xdead);
        } else {
          h = mix64(h ^ err_token(r));
        }
        return r;
      };

      auto write = [&](std::uint64_t id, bool is_insert) {
        const std::string key = key_name(id);
        std::string value = make_value(id, pt.seq + 1, spec.value_len);
        if (opts.dispatch_batch > 0) {
          // Batched writes are recorded optimistically at enqueue: a
          // kUnavailable batch is partial per shard group, so holding
          // these hashes back would flag genuinely-applied values as
          // corrupt.
          if (opts.validate_reads) oracle.record(id, value);
          pt.batch.push_back({key, std::move(value), false});
          if (pt.batch.size() >= opts.dispatch_batch) {
            absorb(store.try_apply_batch(ctx, pt.batch));
            pt.batch.clear();
          }
        } else {
          const OpResult r = store.try_put(ctx, key, value);
          absorb(r);
          // Only acknowledged values are plausible: a kUnavailable put
          // was applied to no copy, so a later read matching it IS a
          // corruption and must not pass validation.
          if (opts.validate_reads && r.status != OpStatus::kUnavailable)
            oracle.record(id, value);
        }
        if (is_insert) ++res.inserts; else ++res.updates;
        h = mix64(h ^ id);
      };

      switch (op) {
        case OpKind::kRead: {
          ++res.reads;
          if (point_read(key_id(pt)).ok()) ++res.read_hits;
          break;
        }
        case OpKind::kUpdate:
          write(key_id(pt), /*is_insert=*/false);
          break;
        case OpKind::kInsert:
          write(live_records++, /*is_insert=*/true);
          break;
        case OpKind::kScan: {
          const std::uint64_t id = key_id(pt);
          const std::size_t n = 1 + pt.rng.uniform(spec.scan_len);
          ++res.scans;
          if (store.supports_scan()) {
            std::vector<std::pair<std::string, std::string>> rows;
            const OpResult r = store.try_scan(ctx, key_name(id), n, &rows);
            absorb(r);
            if (r.ok()) {
              res.scanned_items += rows.size();
              for (const auto& [k, v] : rows)
                h = mix64(h ^ fnv1a64(k) ^ fnv1a64(v));
            } else {
              h = mix64(h ^ err_token(r));
            }
          } else {
            // Hash-ordered store: degrade to a point read.
            point_read(id);
          }
          break;
        }
        case OpKind::kRmw: {
          const std::uint64_t id = key_id(pt);
          point_read(id);
          const std::string nv = make_value(id, pt.seq + 1, spec.value_len);
          const OpResult r = store.try_put(ctx, key_name(id), nv);
          absorb(r);
          if (opts.validate_reads && r.status != OpStatus::kUnavailable)
            oracle.record(id, nv);
          ++res.rmws;
          break;
        }
      }

      ++res.ops;
      ++pt.seq;
      pt.hist.record(ctx.now() - t0);
      pt.checksum ^= h;
      if (--pt.remaining == 0) {
        if (!pt.batch.empty()) {
          absorb(store.try_apply_batch(ctx, pt.batch));
          pt.batch.clear();
        }
        // The last worker out drains any cross-thread group buffer so
        // every acknowledged op is durable when run() returns.
        if (++done_workers == T) store.flush_pending(ctx);
        return false;
      }
      return true;
    });
    worker_ctx.push_back(&ctx_ref);
  }

  if (opts.background_thread) {
    sim::ThreadCtx::Options topts;
    topts.id = T + 1;
    topts.socket = opts.socket;
    topts.seed = spec.seed + T + 1;
    sched.spawn(topts, [&](sim::ThreadCtx& ctx) -> bool {
      if (done_workers == T) return false;
      if (store.background_turn(ctx))
        ++res.background_turns;
      else
        ctx.advance_by(opts.background_poll);  // idle poll
      return true;
    });
  }

  sched.run();

  sim::Histogram hist;
  for (unsigned t = 0; t < T; ++t) {
    hist.merge(per[t].hist);
    res.checksum ^= mix64(per[t].checksum + t + 1);
    if (worker_ctx[t]->now() > res.elapsed) res.elapsed = worker_ctx[t]->now();
  }
  res.p50 = hist.percentile(0.50);
  res.p99 = hist.percentile(0.99);
  return res;
}

}  // namespace xp::workload
