#include "workload/shard.h"

#include <algorithm>
#include <cassert>

namespace xp::workload {

std::vector<hw::PmemNamespace*> ShardedStore::make_namespaces(
    hw::Platform& platform, unsigned shards, std::uint64_t bytes_per_shard,
    unsigned socket) {
  std::vector<hw::PmemNamespace*> out;
  out.reserve(shards);
  const unsigned channels = platform.timing().channels_per_socket;
  for (unsigned i = 0; i < shards; ++i)
    out.push_back(
        &platform.optane_ni(bytes_per_shard, socket, i % channels));
  return out;
}

ShardedStore::ShardedStore(std::span<hw::PmemNamespace* const> shard_ns,
                           const ShardOptions& opts)
    : opts_(opts) {
  assert(!shard_ns.empty());
  shards_.reserve(shard_ns.size());
  for (hw::PmemNamespace* ns : shard_ns)
    shards_.push_back(make_store(opts_.kind, *ns, opts_.tuning));
  name_ = std::string("sharded-") + store_kind_name(opts_.kind);
}

void ShardedStore::create(sim::ThreadCtx& ctx) {
  for (auto& s : shards_) s->create(ctx);
}

bool ShardedStore::open(sim::ThreadCtx& ctx) {
  bool ok = true;
  for (auto& s : shards_) ok = s->open(ctx) && ok;
  return ok;
}

void ShardedStore::put(sim::ThreadCtx& ctx, std::string_view key,
                       std::string_view value) {
  const unsigned s = shard_of(key, shards());
  LaneGuard lane(ctx, opts_.writer_lanes, s);
  shards_[s]->put(ctx, key, value);
}

bool ShardedStore::get(sim::ThreadCtx& ctx, std::string_view key,
                       std::string* value) {
  return shards_[shard_of(key, shards())]->get(ctx, key, value);
}

bool ShardedStore::del(sim::ThreadCtx& ctx, std::string_view key) {
  const unsigned s = shard_of(key, shards());
  LaneGuard lane(ctx, opts_.writer_lanes, s);
  return shards_[s]->del(ctx, key);
}

std::vector<std::pair<std::string, std::string>> ShardedStore::scan(
    sim::ThreadCtx& ctx, std::string_view start, std::size_t n) {
  // Each shard returns its n smallest keys >= start; merging and
  // truncating yields the global n smallest.
  std::vector<std::pair<std::string, std::string>> merged;
  for (auto& s : shards_) {
    auto part = s->scan(ctx, start, n);
    merged.insert(merged.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
  }
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (merged.size() > n) merged.resize(n);
  return merged;
}

void ShardedStore::apply_batch(sim::ThreadCtx& ctx,
                               std::span<const BatchOp> ops) {
  std::vector<std::vector<BatchOp>> groups(shards());
  for (const BatchOp& op : ops)
    groups[shard_of(op.key, shards())].push_back(op);
  for (unsigned s = 0; s < shards(); ++s) {
    if (groups[s].empty()) continue;
    LaneGuard lane(ctx, opts_.writer_lanes, s);
    shards_[s]->apply_batch(ctx, groups[s]);
  }
}

void ShardedStore::flush_pending(sim::ThreadCtx& ctx) {
  for (unsigned s = 0; s < shards(); ++s) {
    LaneGuard lane(ctx, opts_.writer_lanes, s);
    shards_[s]->flush_pending(ctx);
  }
}

bool ShardedStore::background_turn(sim::ThreadCtx& ctx) {
  for (unsigned i = 0; i < shards(); ++i) {
    const unsigned s = (rr_ + i) % shards();
    LaneGuard lane(ctx, opts_.writer_lanes, s);
    if (shards_[s]->background_turn(ctx)) {
      rr_ = (s + 1) % shards();
      return true;
    }
  }
  return false;
}

Status ShardedStore::check(sim::ThreadCtx& ctx) {
  for (auto& s : shards_) {
    Status st = s->check(ctx);
    if (!st.ok()) return st;
  }
  return Status::Ok();
}

}  // namespace xp::workload
