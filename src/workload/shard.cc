#include "workload/shard.h"

#include <algorithm>
#include <cassert>

namespace xp::workload {

const char* shard_health_name(ShardHealth h) {
  switch (h) {
    case ShardHealth::kHealthy: return "healthy";
    case ShardHealth::kDegraded: return "degraded";
    case ShardHealth::kQuarantined: return "quarantined";
    case ShardHealth::kRebuilding: return "rebuilding";
  }
  return "?";
}

std::vector<hw::PmemNamespace*> ShardedStore::make_namespaces(
    hw::Platform& platform, unsigned shards, std::uint64_t bytes_per_shard,
    unsigned socket) {
  std::vector<hw::PmemNamespace*> out;
  out.reserve(shards);
  const unsigned channels = platform.timing().channels_per_socket;
  for (unsigned i = 0; i < shards; ++i)
    out.push_back(
        &platform.optane_ni(bytes_per_shard, socket, i % channels));
  return out;
}

ShardedStore::ShardedStore(std::span<hw::PmemNamespace* const> shard_ns,
                           const ShardOptions& opts)
    : opts_(opts) {
  assert(!shard_ns.empty());
  ns_.assign(shard_ns.begin(), shard_ns.end());
  shards_.reserve(shard_ns.size());
  for (hw::PmemNamespace* ns : shard_ns)
    shards_.push_back(make_store(opts_.kind, *ns, opts_.tuning));
  name_ = std::string("sharded-") + store_kind_name(opts_.kind);
  replicas_ = std::min<unsigned>(std::max(1u, opts_.replicas), shards());
  health_.assign(shards(), ShardHealth::kHealthy);
  read_errors_.assign(shards(), 0);
  owned_.resize(shards());
  pending_.resize(shards());
}

void ShardedStore::create(sim::ThreadCtx& ctx) {
  for (auto& s : shards_) s->create(ctx);
  // Fresh stores: the acked-write registry sees every key from here on,
  // so rebuilds can trust it and skip the durable-keyspace scans.
  registry_complete_ = true;
}

bool ShardedStore::open(sim::ThreadCtx& ctx) {
  bool ok = true;
  for (unsigned p = 0; p < shards(); ++p) {
    bool opened = false;
    try {
      opened = shards_[p]->open(ctx);
    } catch (const hw::MediaError&) {
      if (ns_[p]->platform().frozen()) throw;
      ++stats_.media_errors;
      start_quarantine(ctx, p);
      if (replicas_ == 1) ok = false;
      continue;
    }
    if (!opened) {
      if (replicas_ > 1)
        start_quarantine(ctx, p);
      else
        ok = false;
    }
  }
  // Health is re-derived from media state, not persisted bookkeeping: a
  // restart in the middle of a repair lands back in quarantine via this
  // scrub pass and the rebuild replays idempotently. Gated on replicated
  // mode so the default frontend emits no scrub telemetry.
  if (replicas_ > 1) {
    for (unsigned p = 0; p < shards(); ++p) {
      if (!serving(p)) continue;
      if (!ns_[p]->platform().ars(*ns_[p], 0, ns_[p]->size()).empty())
        start_quarantine(ctx, p);
    }
  }
  return ok;
}

void ShardedStore::emit(sim::Time t, hw::ResilienceEventKind kind,
                        unsigned store) const {
  if (hw::TelemetrySink* sink = ns_[0]->platform().telemetry())
    sink->resilience(kind, t, store);
}

void ShardedStore::start_quarantine(sim::ThreadCtx& ctx, unsigned store) {
  if (health_[store] == ShardHealth::kQuarantined ||
      health_[store] == ShardHealth::kRebuilding)
    return;
  health_[store] = ShardHealth::kQuarantined;
  ++stats_.quarantined;
  emit(ctx.now(), hw::ResilienceEventKind::kQuarantined, store);
  RebuildJob job;
  job.store = store;
  jobs_.push_back(std::move(job));
}

void ShardedStore::quarantine_shard(sim::ThreadCtx& ctx, unsigned i) {
  assert(i < shards());
  start_quarantine(ctx, i);
}

void ShardedStore::note_media_error(sim::ThreadCtx& ctx, unsigned store,
                                    bool is_write) {
  ++stats_.media_errors;
  switch (health_[store]) {
    case ShardHealth::kQuarantined:
      return;
    case ShardHealth::kRebuilding:
      // Fresh damage under repair: restart that store's job from scrub.
      for (RebuildJob& j : jobs_) {
        if (j.store != store) continue;
        j.phase = RebuildJob::Phase::kScrub;
        j.cursor = 0;
      }
      return;
    case ShardHealth::kHealthy:
      health_[store] = ShardHealth::kDegraded;
      ++stats_.degraded;
      emit(ctx.now(), hw::ResilienceEventKind::kDegraded, store);
      [[fallthrough]];
    case ShardHealth::kDegraded:
      ++read_errors_[store];
      if (is_write || read_errors_[store] >= opts_.quarantine_after)
        start_quarantine(ctx, store);
      return;
  }
}

bool ShardedStore::all_healthy() const {
  for (ShardHealth h : health_)
    if (h != ShardHealth::kHealthy) return false;
  return true;
}

int ShardedStore::live_source(unsigned logical, unsigned except) const {
  for (unsigned r = 0; r < replicas_; ++r) {
    const unsigned q = copy_store(logical, r);
    if (q != except && serving(q)) return static_cast<int>(q);
  }
  return -1;
}

template <typename Fn>
OpResult ShardedStore::with_retries(sim::ThreadCtx& ctx, Fn&& once) {
  const sim::Time start = ctx.now();
  sim::Time backoff = opts_.retry_backoff;
  for (unsigned attempt = 0;; ++attempt) {
    OpResult r = once();
    r.retries = attempt;
    if (r.status != OpStatus::kUnavailable) return r;
    const bool budget_left =
        attempt < opts_.max_retries &&
        (opts_.op_deadline == 0 ||
         ctx.now() - start + backoff <= opts_.op_deadline);
    if (!budget_left) {
      ++stats_.unavailable;
      emit(ctx.now(), hw::ResilienceEventKind::kUnavailable,
           hw::kResilienceNoShard);
      return r;
    }
    ++stats_.retries;
    emit(ctx.now(), hw::ResilienceEventKind::kRetry, hw::kResilienceNoShard);
    // Make the wait useful: one donated rebuild step per backoff round.
    rebuild_step(ctx);
    ctx.advance_by(backoff);
    backoff *= 2;
  }
}

OpResult ShardedStore::put_once(sim::ThreadCtx& ctx, std::string_view key,
                                std::string_view value) {
  const unsigned s = shard_of(key, shards());
  unsigned applied = 0;
  for (unsigned r = 0; r < replicas_; ++r) {
    const unsigned p = copy_store(s, r);
    if (!serving(p)) {
      if (replicas_ > 1) pending_[p].insert(std::string(key));
      continue;
    }
    try {
      LaneGuard lane(ctx, opts_.writer_lanes, p);
      shards_[p]->put(ctx, key, value);
      ++applied;
    } catch (const hw::MediaError&) {
      if (ns_[p]->platform().frozen()) throw;
      note_media_error(ctx, p, /*is_write=*/true);
      if (replicas_ > 1) pending_[p].insert(std::string(key));
    }
  }
  OpResult res;
  if (applied == 0) {
    // Nothing durable anywhere: the op is NOT acknowledged. Retryable —
    // a rebuild may bring a copy back within the deadline budget.
    res.status = OpStatus::kUnavailable;
    return res;
  }
  owned_[s].insert(std::string(key));
  if (!lost_.empty()) lost_.erase(std::string(key));
  return res;
}

OpResult ShardedStore::get_once(sim::ThreadCtx& ctx, std::string_view key,
                                std::string* value) {
  const unsigned s = shard_of(key, shards());
  bool errored = false;
  for (unsigned r = 0; r < replicas_; ++r) {
    const unsigned p = copy_store(s, r);
    if (!serving(p)) continue;
    try {
      const bool hit = shards_[p]->get(ctx, key, value);
      OpResult res;
      if (r > 0) {
        res.failover = true;
        ++stats_.failover_reads;
        emit(ctx.now(), hw::ResilienceEventKind::kFailoverRead, p);
      }
      if (!hit)
        res.status = (!lost_.empty() && lost_.count(std::string(key)) != 0)
                         ? OpStatus::kDataLoss
                         : OpStatus::kNotFound;
      return res;
    } catch (const hw::MediaError&) {
      if (ns_[p]->platform().frozen()) throw;
      note_media_error(ctx, p, /*is_write=*/false);
      errored = true;
    }
  }
  OpResult res;
  // Every copy threw: the media failed now — typed, final for this op.
  // No copy was even serving: transient, worth a bounded retry.
  res.status = errored ? OpStatus::kMediaError : OpStatus::kUnavailable;
  return res;
}

OpResult ShardedStore::del_once(sim::ThreadCtx& ctx, std::string_view key,
                                bool* found) {
  const unsigned s = shard_of(key, shards());
  unsigned applied = 0;
  bool f = false;
  bool f_set = false;
  for (unsigned r = 0; r < replicas_; ++r) {
    const unsigned p = copy_store(s, r);
    if (!serving(p)) {
      if (replicas_ > 1) pending_[p].insert(std::string(key));
      continue;
    }
    try {
      LaneGuard lane(ctx, opts_.writer_lanes, p);
      const bool fr = shards_[p]->del(ctx, key);
      if (!f_set) {
        f = fr;
        f_set = true;
      }
      ++applied;
    } catch (const hw::MediaError&) {
      if (ns_[p]->platform().frozen()) throw;
      note_media_error(ctx, p, /*is_write=*/true);
      if (replicas_ > 1) pending_[p].insert(std::string(key));
    }
  }
  OpResult res;
  if (applied == 0) {
    res.status = OpStatus::kUnavailable;
    return res;
  }
  if (found != nullptr) *found = f;
  owned_[s].erase(std::string(key));
  if (!lost_.empty()) lost_.erase(std::string(key));
  if (!f && del_reports_found()) res.status = OpStatus::kNotFound;
  return res;
}

OpResult ShardedStore::try_put(sim::ThreadCtx& ctx, std::string_view key,
                               std::string_view value) {
  return with_retries(ctx,
                      [&] { return put_once(ctx, key, value); });
}

OpResult ShardedStore::try_get(sim::ThreadCtx& ctx, std::string_view key,
                               std::string* value) {
  return with_retries(ctx, [&] { return get_once(ctx, key, value); });
}

OpResult ShardedStore::try_del(sim::ThreadCtx& ctx, std::string_view key,
                               bool* found) {
  return with_retries(ctx, [&] { return del_once(ctx, key, found); });
}

// The legacy untyped surface is fire-and-forget under faults: a typed
// error outcome has no channel back to the caller, so it is counted in
// stats_.legacy_dropped instead of vanishing (see shard.h).
void ShardedStore::note_legacy(const OpResult& r) {
  if (r.status != OpStatus::kOk && r.status != OpStatus::kNotFound)
    ++stats_.legacy_dropped;
}

void ShardedStore::put(sim::ThreadCtx& ctx, std::string_view key,
                       std::string_view value) {
  note_legacy(try_put(ctx, key, value));
}

bool ShardedStore::get(sim::ThreadCtx& ctx, std::string_view key,
                       std::string* value) {
  const OpResult r = try_get(ctx, key, value);
  note_legacy(r);
  return r.ok();
}

bool ShardedStore::del(sim::ThreadCtx& ctx, std::string_view key) {
  bool found = false;
  note_legacy(try_del(ctx, key, &found));
  return found;
}

std::vector<std::pair<std::string, std::string>> ShardedStore::scan_copy(
    sim::ThreadCtx& ctx, unsigned p, unsigned s, std::string_view start,
    std::size_t n) {
  // A physical store co-hosts replicas_ logical shards' copies, so a
  // scan capped at n can fill up with co-hosted shards' smaller keys
  // and crowd the target shard's rows out. Resume just past the last
  // key seen until n target-shard rows are in hand or the store is
  // exhausted — the cap never silently drops the target shard's rows.
  std::vector<std::pair<std::string, std::string>> rows;
  const std::size_t chunk =
      n >= static_cast<std::size_t>(-1) / replicas_ ? n : n * replicas_;
  std::string cursor(start);
  while (rows.size() < n) {
    auto part = shards_[p]->scan(ctx, cursor, chunk);
    const bool exhausted = part.size() < chunk;
    if (!part.empty()) {
      cursor = part.back().first;
      cursor.push_back('\0');  // smallest key strictly after the last row
    }
    for (auto& kv : part)
      if (rows.size() < n && shard_of(kv.first, shards()) == s)
        rows.push_back(std::move(kv));
    if (exhausted) break;
  }
  return rows;
}

OpResult ShardedStore::try_scan(
    sim::ThreadCtx& ctx, std::string_view start, std::size_t n,
    std::vector<std::pair<std::string, std::string>>* out) {
  // Each logical shard's slice comes from its first serving copy,
  // failing over like a point read; a shard with no readable copy makes
  // the scan partial, reported as a typed error (never silently short).
  out->clear();
  bool errored = false;
  bool missing = false;
  for (unsigned s = 0; s < shards(); ++s) {
    bool done = false;
    for (unsigned r = 0; r < replicas_ && !done; ++r) {
      const unsigned p = copy_store(s, r);
      if (!serving(p)) continue;
      try {
        auto part = replicas_ > 1 ? scan_copy(ctx, p, s, start, n)
                                  : shards_[p]->scan(ctx, start, n);
        if (r > 0) {
          ++stats_.failover_reads;
          emit(ctx.now(), hw::ResilienceEventKind::kFailoverRead, p);
        }
        out->insert(out->end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
        done = true;
      } catch (const hw::MediaError&) {
        if (ns_[p]->platform().frozen()) throw;
        note_media_error(ctx, p, /*is_write=*/false);
        errored = true;
      }
    }
    if (!done) missing = true;
  }
  std::sort(out->begin(), out->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (out->size() > n) out->resize(n);
  OpResult res;
  if (missing) res.status = errored ? OpStatus::kMediaError
                                    : OpStatus::kUnavailable;
  return res;
}

std::vector<std::pair<std::string, std::string>> ShardedStore::scan(
    sim::ThreadCtx& ctx, std::string_view start, std::size_t n) {
  std::vector<std::pair<std::string, std::string>> out;
  note_legacy(try_scan(ctx, start, n, &out));
  return out;
}

OpResult ShardedStore::try_apply_batch(sim::ThreadCtx& ctx,
                                       std::span<const BatchOp> ops) {
  std::vector<std::vector<BatchOp>> groups(shards());
  for (const BatchOp& op : ops)
    groups[shard_of(op.key, shards())].push_back(op);
  bool unavailable = false;
  for (unsigned s = 0; s < shards(); ++s) {
    if (groups[s].empty()) continue;
    unsigned applied = 0;
    for (unsigned r = 0; r < replicas_; ++r) {
      const unsigned p = copy_store(s, r);
      if (!serving(p)) {
        if (replicas_ > 1)
          for (const BatchOp& op : groups[s]) pending_[p].insert(op.key);
        continue;
      }
      try {
        LaneGuard lane(ctx, opts_.writer_lanes, p);
        shards_[p]->apply_batch(ctx, groups[s]);
        ++applied;
      } catch (const hw::MediaError&) {
        if (ns_[p]->platform().frozen()) throw;
        // The copy may be half-applied; the write-path quarantine pulls
        // it for rebuild, so the partial state is never read.
        note_media_error(ctx, p, /*is_write=*/true);
        if (replicas_ > 1)
          for (const BatchOp& op : groups[s]) pending_[p].insert(op.key);
      }
    }
    if (applied == 0) {
      unavailable = true;
    } else {
      for (const BatchOp& op : groups[s]) {
        if (op.del)
          owned_[s].erase(op.key);
        else
          owned_[s].insert(op.key);
        if (!lost_.empty()) lost_.erase(op.key);
      }
    }
  }
  OpResult res;
  // Per-shard groups are all-or-nothing per copy; a group no copy took
  // is reported (and not acknowledged). Batches are not auto-retried —
  // the ops are idempotent, so the caller may simply resubmit.
  if (unavailable) res.status = OpStatus::kUnavailable;
  return res;
}

void ShardedStore::apply_batch(sim::ThreadCtx& ctx,
                               std::span<const BatchOp> ops) {
  note_legacy(try_apply_batch(ctx, ops));
}

void ShardedStore::flush_pending(sim::ThreadCtx& ctx) {
  for (unsigned s = 0; s < shards(); ++s) {
    if (!serving(s)) continue;
    try {
      LaneGuard lane(ctx, opts_.writer_lanes, s);
      shards_[s]->flush_pending(ctx);
    } catch (const hw::MediaError&) {
      if (ns_[s]->platform().frozen()) throw;
      note_media_error(ctx, s, /*is_write=*/true);
    }
  }
}

std::vector<std::string> ShardedStore::hosted_keys(sim::ThreadCtx& ctx,
                                                   unsigned store) {
  std::set<std::string> keys;
  // Logical shards with a copy on `store`.
  std::vector<bool> hosted(shards(), false);
  for (unsigned r = 0; r < replicas_; ++r)
    hosted[(store + shards() - r) % shards()] = true;
  // In-run registry: complete by construction when this frontend
  // create()d the stores (every acked write registers), and the cheap
  // path — no scans competing with live traffic for the DIMMs.
  for (unsigned s = 0; s < shards(); ++s)
    if (hosted[s]) keys.insert(owned_[s].begin(), owned_[s].end());
  // After open() over pre-existing data the registry misses everything
  // written before the restart, so fall back to scanning the healthy
  // copies' durable keyspaces — but only the stores that host a copy of
  // a logical shard this rebuild needs.
  if (!registry_complete_ && shards_[store]->supports_scan()) {
    for (unsigned q = 0; q < shards(); ++q) {
      if (q == store || !serving(q)) continue;
      bool relevant = false;
      for (unsigned r = 0; r < replicas_ && !relevant; ++r)
        relevant = hosted[(q + shards() - r) % shards()];
      if (!relevant) continue;
      try {
        auto rows = shards_[q]->scan(ctx, "", static_cast<std::size_t>(-1));
        for (auto& kv : rows)
          if (hosted[shard_of(kv.first, shards())]) keys.insert(kv.first);
      } catch (const hw::MediaError&) {
        if (ns_[q]->platform().frozen()) throw;
        note_media_error(ctx, q, /*is_write=*/false);
      }
    }
  }
  keys.insert(pending_[store].begin(), pending_[store].end());
  pending_[store].clear();
  return {keys.begin(), keys.end()};
}

void ShardedStore::enter_resilver(sim::ThreadCtx& ctx, RebuildJob& job) {
  job.phase = RebuildJob::Phase::kResilver;
  job.vqueue.clear();
  auto keys = hosted_keys(ctx, job.store);
  job.queue.assign(keys.begin(), keys.end());
}

void ShardedStore::enter_verify(sim::ThreadCtx& ctx, RebuildJob& job) {
  (void)ctx;
  job.phase = RebuildJob::Phase::kVerify;
  job.cursor = 0;
}

bool ShardedStore::rebuild_step(sim::ThreadCtx& ctx) {
  if (jobs_.empty()) return false;
  RebuildJob& job = jobs_.front();
  const unsigned p = job.store;
  if (health_[p] == ShardHealth::kQuarantined) {
    health_[p] = ShardHealth::kRebuilding;
    ++stats_.rebuilding;
    emit(ctx.now(), hw::ResilienceEventKind::kRebuilding, p);
  }
  try {
    switch (job.phase) {
      case RebuildJob::Phase::kScrub: {
        job.bad_lines = ns_[p]->platform().ars(*ns_[p], 0, ns_[p]->size());
        job.cursor = 0;
        job.phase = RebuildJob::Phase::kHeal;
        return true;
      }
      case RebuildJob::Phase::kHeal: {
        // A full-XPLine ntstore clears poison (§2.1); contents become
        // zeros, and the reformat/salvage below re-derives consistency.
        const std::uint8_t zeros[hw::Platform::kXpLineBytes] = {};
        LaneGuard lane(ctx, opts_.writer_lanes, p);
        for (unsigned n = 0; job.cursor < job.bad_lines.size() &&
                             n < opts_.heal_lines_per_turn;
             ++n, ++job.cursor) {
          ns_[p]->ntstore_persist(ctx, job.bad_lines[job.cursor],
                                  {zeros, sizeof zeros});
          ++stats_.lines_healed;
        }
        if (job.cursor >= job.bad_lines.size())
          job.phase = replicas_ > 1 ? RebuildJob::Phase::kReformat
                                    : RebuildJob::Phase::kSalvage;
        return true;
      }
      case RebuildJob::Phase::kReformat: {
        shards_[p] = make_store(opts_.kind, *ns_[p], opts_.tuning);
        LaneGuard lane(ctx, opts_.writer_lanes, p);
        shards_[p]->create(ctx);
        enter_resilver(ctx, job);
        return true;
      }
      case RebuildJob::Phase::kResilver: {
        // Writes that arrived since the snapshot.
        for (const std::string& k : pending_[p]) job.queue.push_back(k);
        pending_[p].clear();
        for (unsigned n = 0;
             !job.queue.empty() && n < opts_.resilver_keys_per_turn; ++n) {
          const std::string key = std::move(job.queue.front());
          job.queue.pop_front();
          const unsigned logical = shard_of(key, shards());
          const int src = live_source(logical, p);
          if (src < 0) {
            // No surviving copy: bounded, *typed* loss (kDataLoss reads).
            ++stats_.keys_lost;
            lost_.insert(key);
            continue;
          }
          std::string v;
          bool hit = false;
          try {
            hit = shards_[src]->get(ctx, key, &v);
          } catch (const hw::MediaError&) {
            if (ns_[src]->platform().frozen()) throw;
            // The *source* is failing, not the rebuild: account it there
            // and retry this key against whichever source remains.
            note_media_error(ctx, static_cast<unsigned>(src),
                             /*is_write=*/false);
            job.queue.push_back(key);
            continue;
          }
          LaneGuard lane(ctx, opts_.writer_lanes, p);
          if (hit) {
            shards_[p]->put(ctx, key, v);
            ++stats_.keys_resilvered;
            emit(ctx.now(), hw::ResilienceEventKind::kResilverKey, p);
            job.vqueue.push_back(key);
          } else {
            // Deleted (or tombstoned) since the snapshot: mirror that.
            shards_[p]->del(ctx, key);
          }
        }
        if (job.queue.empty() && pending_[p].empty()) enter_verify(ctx, job);
        return true;
      }
      case RebuildJob::Phase::kVerify: {
        if (!pending_[p].empty()) {
          // Late writes: top up before declaring the copy whole.
          job.phase = RebuildJob::Phase::kResilver;
          return true;
        }
        for (unsigned n = 0; job.cursor < job.vqueue.size() &&
                             n < opts_.heal_lines_per_turn;
             ++n) {
          const std::string& key = job.vqueue[job.cursor];
          const int src = live_source(shard_of(key, shards()), p);
          if (src >= 0) {
            std::string mine, theirs;
            const bool ha = shards_[p]->get(ctx, key, &mine);
            bool hb = false;
            try {
              hb = shards_[src]->get(ctx, key, &theirs);
            } catch (const hw::MediaError&) {
              if (ns_[src]->platform().frozen()) throw;
              note_media_error(ctx, static_cast<unsigned>(src),
                               /*is_write=*/false);
              continue;  // same cursor, different source next turn
            }
            if (hb && (!ha || mine != theirs)) {
              ++stats_.verify_mismatches;
              LaneGuard lane(ctx, opts_.writer_lanes, p);
              shards_[p]->put(ctx, key, theirs);
            } else if (!hb && ha) {
              ++stats_.verify_mismatches;
              LaneGuard lane(ctx, opts_.writer_lanes, p);
              shards_[p]->del(ctx, key);
            }
          }
          ++job.cursor;
        }
        if (job.cursor >= job.vqueue.size() && pending_[p].empty()) {
          {
            LaneGuard lane(ctx, opts_.writer_lanes, p);
            shards_[p]->flush_pending(ctx);
          }
          health_[p] = ShardHealth::kHealthy;
          read_errors_[p] = 0;
          ++stats_.recovered;
          emit(ctx.now(), hw::ResilienceEventKind::kRecovered, p);
          jobs_.pop_front();
        }
        return true;
      }
      case RebuildJob::Phase::kSalvage: {
        // Single-copy mode: the lines are healed (zeroed); reopen in
        // place and let the family's redundant metadata (lsmkv
        // RecoveryInfo, pool backups) salvage what it can. Unsalvageable
        // state is reformatted empty — bounded loss, never garbage.
        shards_[p] = make_store(opts_.kind, *ns_[p], opts_.tuning);
        bool usable = false;
        {
          LaneGuard lane(ctx, opts_.writer_lanes, p);
          usable = shards_[p]->open(ctx) &&
                   shards_[p]->repair_media(ctx).ok();
        }
        if (!usable) {
          shards_[p] = make_store(opts_.kind, *ns_[p], opts_.tuning);
          LaneGuard lane(ctx, opts_.writer_lanes, p);
          shards_[p]->create(ctx);
        }
        // Typed loss accounting: any registered key the salvage failed
        // to bring back reads kDataLoss, never a silent kNotFound. The
        // registry only covers keys acked through this frontend (after
        // open() over pre-existing data coverage narrows, never lies).
        for (const std::string& k : owned_[p]) {
          std::string v;
          // insert().second guards the counter: fresh damage mid-probe
          // restarts salvage, which must not double-count a key.
          if (!shards_[p]->get(ctx, k, &v) && lost_.insert(k).second)
            ++stats_.keys_lost;
        }
        health_[p] = ShardHealth::kHealthy;
        read_errors_[p] = 0;
        ++stats_.recovered;
        emit(ctx.now(), hw::ResilienceEventKind::kRecovered, p);
        jobs_.pop_front();
        return true;
      }
    }
  } catch (const hw::MediaError&) {
    if (ns_[p]->platform().frozen()) throw;
    // Fresh damage on the store under repair: start over from scrub.
    ++stats_.media_errors;
    job.phase = RebuildJob::Phase::kScrub;
    job.cursor = 0;
    return true;
  }
  return true;
}

bool ShardedStore::background_turn(sim::ThreadCtx& ctx) {
  if (!jobs_.empty()) return rebuild_step(ctx);
  for (unsigned i = 0; i < shards(); ++i) {
    const unsigned s = (rr_ + i) % shards();
    if (!serving(s)) continue;
    try {
      LaneGuard lane(ctx, opts_.writer_lanes, s);
      if (shards_[s]->background_turn(ctx)) {
        rr_ = (s + 1) % shards();
        return true;
      }
    } catch (const hw::MediaError&) {
      if (ns_[s]->platform().frozen()) throw;
      // Compaction tripped on poison: pull the shard for rebuild.
      note_media_error(ctx, s, /*is_write=*/true);
      return true;
    }
  }
  return false;
}

Status ShardedStore::check(sim::ThreadCtx& ctx) {
  for (unsigned s = 0; s < shards(); ++s) {
    if (!serving(s)) continue;  // transitional by construction
    try {
      Status st = shards_[s]->check(ctx);
      if (!st.ok()) return st;
    } catch (const hw::MediaError& e) {
      if (ns_[s]->platform().frozen()) throw;
      note_media_error(ctx, s, /*is_write=*/false);
      return Status::MediaFault(e.what());
    }
  }
  return Status::Ok();
}

}  // namespace xp::workload
