#include "workload/ycsb.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace xp::workload {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
  return h;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {
double zeta_range(std::uint64_t from, std::uint64_t to, double theta) {
  double sum = 0;
  for (std::uint64_t i = from; i < to; ++i)
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  return sum;
}
}  // namespace

Zipfian::Zipfian(std::uint64_t items, double theta)
    : items_(items ? items : 1),
      theta_(theta),
      zetan_(zeta_range(0, items_, theta)),
      zeta2_(zeta_range(0, 2, theta)) {
  refresh();
}

void Zipfian::refresh() {
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

void Zipfian::grow(std::uint64_t items) {
  if (items <= items_) return;
  zetan_ += zeta_range(items_, items, theta_);
  items_ = items;
  refresh();
}

std::uint64_t Zipfian::next(XorShift& rng) {
  const double u = rng.uniform_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(items_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= items_ ? items_ - 1 : rank;
}

std::string key_name(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "user%012llu",
                static_cast<unsigned long long>(id));
  return buf;
}

std::string make_value(std::uint64_t id, std::uint64_t version,
                       std::size_t len) {
  std::string v(len, '\0');
  std::uint64_t x = mix64(id * 0x9e3779b97f4a7c15ULL + version);
  for (std::size_t i = 0; i < len; ++i) {
    if (i % 8 == 0) x = mix64(x);
    v[i] = static_cast<char>('a' + ((x >> ((i % 8) * 8)) & 0xff) % 26);
  }
  return v;
}

Spec ycsb(char workload) {
  Spec s;
  s.tag = workload;
  switch (workload) {
    case 'A': s.read = 0.5; s.update = 0.5; break;
    case 'B': s.read = 0.95; s.update = 0.05; break;
    case 'C': s.read = 1.0; s.update = 0; break;
    case 'D':
      s.read = 0.95; s.update = 0; s.insert = 0.05;
      s.dist = Spec::Dist::kLatest;
      break;
    case 'E': s.read = 0; s.update = 0; s.scan = 0.95; s.insert = 0.05; break;
    case 'F': s.read = 0.5; s.update = 0; s.rmw = 0.5; break;
    default: assert(false && "unknown YCSB workload");
  }
  return s;
}

OpKind pick_op(const Spec& spec, XorShift& rng) {
  const double u = rng.uniform_double();
  double acc = spec.read;
  if (u < acc) return OpKind::kRead;
  if (u < (acc += spec.update)) return OpKind::kUpdate;
  if (u < (acc += spec.insert)) return OpKind::kInsert;
  if (u < (acc += spec.scan)) return OpKind::kScan;
  return OpKind::kRmw;
}

}  // namespace xp::workload
