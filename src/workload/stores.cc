// StoreIface adapters for the four store families. Each translates the
// shared StoreTuning knobs into the store's own options and forwards
// ops 1:1, adding no simulated time of its own.
#include "workload/store_iface.h"

#include <cassert>

#include "lsmkv/db.h"
#include "novafs/novafs.h"
#include "pmemkv/cmap.h"
#include "pmemkv/stree.h"
#include "pmemlib/pool.h"

namespace xp::workload {

const char* store_kind_name(StoreKind k) {
  switch (k) {
    case StoreKind::kLsmkv: return "lsmkv";
    case StoreKind::kCmap: return "cmap";
    case StoreKind::kStree: return "stree";
    case StoreKind::kNova: return "nova";
  }
  return "?";
}

const char* op_status_name(OpStatus s) {
  switch (s) {
    case OpStatus::kOk: return "ok";
    case OpStatus::kNotFound: return "not_found";
    case OpStatus::kMediaError: return "media_error";
    case OpStatus::kUnavailable: return "unavailable";
    case OpStatus::kDataLoss: return "data_loss";
  }
  return "?";
}

void StoreIface::apply_batch(sim::ThreadCtx& ctx,
                             std::span<const BatchOp> ops) {
  for (const BatchOp& op : ops) {
    if (op.del)
      del(ctx, op.key);
    else
      put(ctx, op.key, op.value);
  }
  flush_pending(ctx);
}

namespace {

// Shared translation for the default try_* wrappers: run `fn`, contain a
// thrown hw::MediaError as a typed status — unless the platform froze
// (armed read-fault campaign: the machine check was fatal), in which
// case the exception keeps propagating like the process death it models.
template <typename Fn>
OpResult contain_media(const StoreIface& store, Fn&& fn) {
  OpResult r;
  try {
    fn(r);
  } catch (const hw::MediaError&) {
    const hw::Platform* p = store.platform_of();
    if (p != nullptr && p->frozen()) throw;
    r.status = OpStatus::kMediaError;
  }
  return r;
}

}  // namespace

OpResult StoreIface::try_put(sim::ThreadCtx& ctx, std::string_view key,
                             std::string_view value) {
  return contain_media(*this, [&](OpResult&) { put(ctx, key, value); });
}

OpResult StoreIface::try_get(sim::ThreadCtx& ctx, std::string_view key,
                             std::string* value) {
  return contain_media(*this, [&](OpResult& r) {
    if (!get(ctx, key, value)) r.status = OpStatus::kNotFound;
  });
}

OpResult StoreIface::try_del(sim::ThreadCtx& ctx, std::string_view key,
                             bool* found) {
  return contain_media(*this, [&](OpResult& r) {
    const bool f = del(ctx, key);
    if (found != nullptr) *found = f;
    if (!f && del_reports_found()) r.status = OpStatus::kNotFound;
  });
}

OpResult StoreIface::try_scan(
    sim::ThreadCtx& ctx, std::string_view start, std::size_t n,
    std::vector<std::pair<std::string, std::string>>* out) {
  return contain_media(*this, [&](OpResult&) { *out = scan(ctx, start, n); });
}

OpResult StoreIface::try_apply_batch(sim::ThreadCtx& ctx,
                                     std::span<const BatchOp> ops) {
  return contain_media(*this, [&](OpResult&) { apply_batch(ctx, ops); });
}

namespace {

class LsmkvStore final : public StoreIface {
 public:
  LsmkvStore(hw::PmemNamespace& ns, const StoreTuning& t)
      : ns_(ns), db_(ns, make_opts(t)) {}

  static kv::DbOptions make_opts(const StoreTuning& t) {
    kv::DbOptions o;
    // Shard namespaces are tens of MiB, not the 256 MiB single-store
    // benches use; a WAL a few times the memtable is plenty (it is
    // truncated at every flush).
    o.wal_capacity = 4 << 20;
    o.memtable_bytes = t.memtable_bytes;
    o.wal_group_commit = t.write_combine;
    o.wal_group_size = t.wal_group_size;
    o.sst_residency = t.read_path;
    o.read_combine = t.read_path;
    o.read_cache_lines = t.read_path ? t.read_cache_lines : 0;
    o.background_compaction = t.background_compaction;
    return o;
  }

  const char* name() const override { return "lsmkv"; }
  StoreKind kind() const override { return StoreKind::kLsmkv; }
  void create(sim::ThreadCtx& ctx) override { db_.create(ctx); }
  bool open(sim::ThreadCtx& ctx) override { return db_.open(ctx); }
  void put(sim::ThreadCtx& ctx, std::string_view k,
           std::string_view v) override {
    db_.put(ctx, k, v);
  }
  bool get(sim::ThreadCtx& ctx, std::string_view k,
           std::string* v) override {
    return db_.get(ctx, k, v);
  }
  bool del(sim::ThreadCtx& ctx, std::string_view k) override {
    db_.del(ctx, k);  // blind tombstone: existence is not reported
    return true;
  }
  bool del_reports_found() const override { return false; }
  std::vector<std::pair<std::string, std::string>> scan(
      sim::ThreadCtx& ctx, std::string_view start, std::size_t n) override {
    return db_.scan(ctx, start, n);
  }
  void apply_batch(sim::ThreadCtx& ctx,
                   std::span<const BatchOp> ops) override {
    std::vector<kv::WalRecord> recs;
    recs.reserve(ops.size());
    for (const BatchOp& op : ops) recs.push_back({op.key, op.value, op.del});
    db_.put_batch(ctx, recs);
  }
  void flush_pending(sim::ThreadCtx& ctx) override { db_.commit_pending(ctx); }
  bool background_turn(sim::ThreadCtx& ctx) override {
    return db_.background_work(ctx);
  }
  Status check(sim::ThreadCtx& ctx) override { return db_.check(ctx); }
  hw::Platform* platform_of() const override { return &ns_.platform(); }
  Status repair_media(sim::ThreadCtx& ctx) override {
    db_.repair(ctx);  // RecoveryInfo-driven salvage: quarantine bad SSTs
    return db_.check(ctx);
  }

 private:
  hw::PmemNamespace& ns_;
  kv::Db db_;
};

class CMapStore final : public StoreIface {
 public:
  CMapStore(hw::PmemNamespace& ns, const StoreTuning& t)
      : ns_(ns), pool_(ns), map_(pool_, make_opts(t)) {}

  static pmemkv::CMapOptions make_opts(const StoreTuning& t) {
    pmemkv::CMapOptions o;
    o.max_writers_per_dimm = t.writers_per_dimm;
    o.read_combine = t.read_path;
    o.read_cache_lines = t.read_path ? t.read_cache_lines : 0;
    return o;
  }

  const char* name() const override { return "cmap"; }
  StoreKind kind() const override { return StoreKind::kCmap; }
  void create(sim::ThreadCtx& ctx) override {
    pool_.create(ctx, 64);
    map_.create(ctx);
  }
  bool open(sim::ThreadCtx& ctx) override {
    if (!pool_.open(ctx)) return false;
    map_.open(ctx);
    return true;
  }
  void put(sim::ThreadCtx& ctx, std::string_view k,
           std::string_view v) override {
    map_.put(ctx, k, v);
  }
  bool get(sim::ThreadCtx& ctx, std::string_view k,
           std::string* v) override {
    return map_.get(ctx, k, v);
  }
  bool del(sim::ThreadCtx& ctx, std::string_view k) override {
    return map_.remove(ctx, k);
  }
  bool supports_scan() const override { return false; }  // hash-ordered
  std::vector<std::pair<std::string, std::string>> scan(
      sim::ThreadCtx&, std::string_view, std::size_t) override {
    return {};
  }
  Status check(sim::ThreadCtx& ctx) override { return map_.check(ctx); }
  hw::Platform* platform_of() const override { return &ns_.platform(); }

 private:
  hw::PmemNamespace& ns_;
  pmem::Pool pool_;
  pmemkv::CMap map_;
};

class STreeStore final : public StoreIface {
 public:
  STreeStore(hw::PmemNamespace& ns, const StoreTuning& t)
      : ns_(ns), pool_(ns), tree_(pool_, make_opts(t)) {}

  static pmemkv::STreeOptions make_opts(const StoreTuning& t) {
    pmemkv::STreeOptions o;
    o.read_combine = t.read_path;
    o.read_cache_lines = t.read_path ? t.read_cache_lines : 0;
    return o;
  }

  const char* name() const override { return "stree"; }
  StoreKind kind() const override { return StoreKind::kStree; }
  void create(sim::ThreadCtx& ctx) override {
    pool_.create(ctx, 64);
    tree_.create(ctx);
  }
  bool open(sim::ThreadCtx& ctx) override {
    if (!pool_.open(ctx)) return false;
    tree_.open(ctx);
    return true;
  }
  void put(sim::ThreadCtx& ctx, std::string_view k,
           std::string_view v) override {
    const bool ok = tree_.put(ctx, k, v);
    assert(ok && "stree keys are capped at 31 bytes");
    (void)ok;
  }
  bool get(sim::ThreadCtx& ctx, std::string_view k,
           std::string* v) override {
    return tree_.get(ctx, k, v);
  }
  bool del(sim::ThreadCtx& ctx, std::string_view k) override {
    return tree_.remove(ctx, k);
  }
  std::vector<std::pair<std::string, std::string>> scan(
      sim::ThreadCtx& ctx, std::string_view start, std::size_t n) override {
    return tree_.scan(ctx, start, n);
  }
  Status check(sim::ThreadCtx& ctx) override { return tree_.check(ctx); }
  hw::Platform* platform_of() const override { return &ns_.platform(); }

 private:
  hw::PmemNamespace& ns_;
  pmem::Pool pool_;
  pmemkv::STree tree_;
};

// KV over novafs: one file per key, value = file contents. Ordered scan
// walks the DRAM name index.
class NovaStore final : public StoreIface {
 public:
  NovaStore(hw::PmemNamespace& ns, const StoreTuning& t)
      : ns_(ns), fs_(ns, make_opts(t)) {}

  static nova::NovaOptions make_opts(const StoreTuning& t) {
    nova::NovaOptions o;
    o.datalog = true;  // values are sub-page; embed them in the log
    o.batch_log_appends = t.write_combine;
    o.read_combine = t.read_path;
    o.read_cache_lines = t.read_path ? t.read_cache_lines : 0;
    return o;
  }

  const char* name() const override { return "nova"; }
  StoreKind kind() const override { return StoreKind::kNova; }
  void create(sim::ThreadCtx& ctx) override { fs_.format(ctx); }
  bool open(sim::ThreadCtx& ctx) override { return fs_.mount(ctx); }
  void put(sim::ThreadCtx& ctx, std::string_view k,
           std::string_view v) override {
    const std::string name(k);
    int ino = fs_.open(ctx, name);
    if (ino < 0) ino = fs_.create(ctx, name);
    assert(ino >= 0);
    fs_.write(ctx, ino, 0,
              {reinterpret_cast<const std::uint8_t*>(v.data()), v.size()});
    // An overwrite by a shorter value must not leave the old tail.
    if (fs_.size(ctx, ino) != v.size()) fs_.truncate(ctx, ino, v.size());
  }
  bool get(sim::ThreadCtx& ctx, std::string_view k,
           std::string* v) override {
    const int ino = fs_.open(ctx, std::string(k));
    if (ino < 0) return false;
    v->resize(fs_.size(ctx, ino));
    const std::size_t n = fs_.read(
        ctx, ino, 0,
        {reinterpret_cast<std::uint8_t*>(v->data()), v->size()});
    v->resize(n);
    return true;
  }
  bool del(sim::ThreadCtx& ctx, std::string_view k) override {
    return fs_.unlink(ctx, std::string(k));
  }
  std::vector<std::pair<std::string, std::string>> scan(
      sim::ThreadCtx& ctx, std::string_view start, std::size_t n) override {
    std::vector<std::pair<std::string, std::string>> out;
    for (auto it = fs_.names().lower_bound(std::string(start));
         it != fs_.names().end() && out.size() < n; ++it) {
      std::string v;
      if (get(ctx, it->first, &v)) out.emplace_back(it->first, std::move(v));
    }
    return out;
  }
  Status check(sim::ThreadCtx& ctx) override { return fs_.fsck(ctx); }
  hw::Platform* platform_of() const override { return &ns_.platform(); }

 private:
  hw::PmemNamespace& ns_;
  nova::NovaFs fs_;
};

}  // namespace

std::unique_ptr<StoreIface> make_store(StoreKind kind, hw::PmemNamespace& ns,
                                       const StoreTuning& tuning) {
  switch (kind) {
    case StoreKind::kLsmkv: return std::make_unique<LsmkvStore>(ns, tuning);
    case StoreKind::kCmap: return std::make_unique<CMapStore>(ns, tuning);
    case StoreKind::kStree: return std::make_unique<STreeStore>(ns, tuning);
    case StoreKind::kNova: return std::make_unique<NovaStore>(ns, tuning);
  }
  return nullptr;
}

}  // namespace xp::workload
