// The YCSB-style workload engine: N simulated threads drive a
// StoreIface through a Spec's op mix under the cooperative scheduler,
// with per-op latency capture and an order-insensitive result checksum.
//
// Determinism contract: run() is a pure function of (store state, spec,
// options). Each thread draws ops from its own xorshift64* stream and
// the scheduler interleaves by simulated clock, so the op sequence,
// simulated timing, telemetry and checksum are byte-identical on every
// host, at any sweep `--jobs`, for any host-thread count.
#pragma once

#include "sim/histogram.h"
#include "workload/store_iface.h"
#include "workload/ycsb.h"

namespace xp::workload {

struct EngineOptions {
  unsigned threads = 4;
  unsigned socket = 0;  // NUMA node the workload threads are pinned to
  std::uint64_t base_seed = 0;  // folded with spec.seed per thread
  // Donate one extra simulated thread that polls background_turn()
  // (deferred lsmkv compaction) while the workers run.
  bool background_thread = false;
  sim::Time background_poll = sim::us(2);
  // > 0: buffer updates/inserts per thread and dispatch them in groups
  // of this size via apply_batch (the sharded frontend's batched
  // cross-shard dispatch). Reads do not see a thread's still-buffered
  // writes; the engine's checksum is over the observed results either
  // way, so determinism is unaffected.
  std::size_t dispatch_batch = 0;
  // Check every read hit against the set of values ever issued for that
  // key (host-side DRAM oracle, no simulated cost): a hit outside the
  // set is a silent corruption — the one outcome the typed error
  // surface must never allow. Off by default (costs host memory).
  bool validate_reads = false;
};

struct Result {
  std::uint64_t ops = 0;
  std::uint64_t reads = 0, read_hits = 0;
  std::uint64_t updates = 0, inserts = 0, rmws = 0;
  std::uint64_t scans = 0, scanned_items = 0;
  std::uint64_t background_turns = 0;  // bg-thread turns that did work
  // Typed resilience outcomes (all zero on fault-free runs).
  std::uint64_t typed_errors = 0;  // ops ending kMediaError/kUnavailable/...
  std::uint64_t failovers = 0;     // reads served by a replica copy
  std::uint64_t retries = 0;       // backoff rounds consumed
  std::uint64_t corruptions = 0;   // validate_reads: hit outside the oracle
  sim::Time elapsed = 0;               // latest worker clock
  sim::Time p50 = 0, p99 = 0;          // per-op simulated latency
  std::uint64_t checksum = 0;  // order-insensitive digest of results

  double kops() const {  // elapsed is ps: ops/ps * 1e9 = kops/s
    return elapsed
               ? static_cast<double>(ops) * 1e9 / static_cast<double>(elapsed)
               : 0;
  }
};

// Preload keys 0..spec.records-1 (version-0 values), then force any
// buffered group commits out.
void load(StoreIface& store, const Spec& spec, sim::ThreadCtx& ctx);

Result run(StoreIface& store, const Spec& spec, const EngineOptions& opts);

}  // namespace xp::workload
