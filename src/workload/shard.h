// Sharded concurrent frontend: a hash-partitioned router mapping N
// logical shards onto per-DIMM store instances.
//
// Why sharding helps on this hardware (paper §5.3 + §5.4): one XP DIMM
// tracks only 4 write streams and its XPBuffer thrashes under many
// interleaved writers, so a single interleaved store serializes mixed
// traffic on the device. Placing each shard on its *own* non-interleaved
// DIMM (Platform::optane_ni, round-robin over the socket's channels)
// gives every shard a private XPBuffer and stream tracker, and the
// per-shard writer lane (ThreadCtx::set_write_stream) makes all threads
// routed to a shard look like one writer to that DIMM.
//
// ShardedStore is itself a StoreIface, so the workload engine, the
// differential oracle and the schedmc/crashmc targets drive it exactly
// like a single store. Cross-shard batched dispatch (apply_batch)
// partitions a batch by the router and commits each shard's group as
// one burst through the store's write-combining path (LineBatcher);
// each per-shard group is crash-atomic, the cross-shard batch as a
// whole is not — exactly the window the crashmc target explores.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workload/store_iface.h"
#include "workload/ycsb.h"

namespace xp::workload {

// FNV-1a router: stable across runs and shard-thread counts, so the
// partition of a keyspace is a pure function of (key, nshards).
inline unsigned shard_of(std::string_view key, unsigned nshards) {
  return nshards <= 1
             ? 0
             : static_cast<unsigned>(fnv1a64(key) % nshards);
}

struct ShardOptions {
  StoreKind kind = StoreKind::kLsmkv;
  StoreTuning tuning{};
  // Present each shard's stores to its DIMM under one per-shard lane id
  // instead of the issuing thread's id (§5.3).
  bool writer_lanes = true;
};

class ShardedStore final : public StoreIface {
 public:
  // One non-interleaved per-DIMM namespace per shard, round-robin over
  // the socket's channels.
  static std::vector<hw::PmemNamespace*> make_namespaces(
      hw::Platform& platform, unsigned shards, std::uint64_t bytes_per_shard,
      unsigned socket = 0);

  // Builds one store instance per namespace. The namespaces outlive the
  // frontend (the Platform owns them), so a second ShardedStore over
  // the same span is how recovery-after-crash reattaches.
  ShardedStore(std::span<hw::PmemNamespace* const> shard_ns,
               const ShardOptions& opts);

  const char* name() const override { return name_.c_str(); }
  StoreKind kind() const override { return opts_.kind; }
  void create(sim::ThreadCtx& ctx) override;
  bool open(sim::ThreadCtx& ctx) override;
  void put(sim::ThreadCtx& ctx, std::string_view key,
           std::string_view value) override;
  bool get(sim::ThreadCtx& ctx, std::string_view key,
           std::string* value) override;
  bool del(sim::ThreadCtx& ctx, std::string_view key) override;
  bool del_reports_found() const override {
    return shards_[0]->del_reports_found();
  }
  bool supports_scan() const override { return shards_[0]->supports_scan(); }
  // Merges the per-shard ordered scans into one global key order.
  std::vector<std::pair<std::string, std::string>> scan(
      sim::ThreadCtx& ctx, std::string_view start, std::size_t n) override;
  // Batched cross-shard dispatch: partition by router (preserving each
  // shard's op order), then commit shard groups in shard order.
  void apply_batch(sim::ThreadCtx& ctx,
                   std::span<const BatchOp> ops) override;
  void flush_pending(sim::ThreadCtx& ctx) override;
  // Round-robin one deferred-compaction turn over the shards.
  bool background_turn(sim::ThreadCtx& ctx) override;
  Status check(sim::ThreadCtx& ctx) override;

  unsigned shards() const { return static_cast<unsigned>(shards_.size()); }
  StoreIface& shard(unsigned i) { return *shards_[i]; }

 private:
  // Writer-lane scope: while alive, the thread's stores carry the
  // shard's lane id, so the DIMM sees one stream per shard.
  class LaneGuard {
   public:
    LaneGuard(sim::ThreadCtx& ctx, bool on, unsigned shard) : ctx_(ctx),
                                                              on_(on) {
      if (on_) ctx_.set_write_stream(kLaneBase + shard);
    }
    ~LaneGuard() {
      if (on_) ctx_.clear_write_stream();
    }

   private:
    static constexpr unsigned kLaneBase = 0x5a00;
    sim::ThreadCtx& ctx_;
    bool on_;
  };

  ShardOptions opts_;
  std::vector<std::unique_ptr<StoreIface>> shards_;
  std::string name_;
  unsigned rr_ = 0;  // next shard offered a background turn
};

}  // namespace xp::workload
