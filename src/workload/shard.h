// Sharded concurrent frontend: a hash-partitioned router mapping N
// logical shards onto per-DIMM store instances.
//
// Why sharding helps on this hardware (paper §5.3 + §5.4): one XP DIMM
// tracks only 4 write streams and its XPBuffer thrashes under many
// interleaved writers, so a single interleaved store serializes mixed
// traffic on the device. Placing each shard on its *own* non-interleaved
// DIMM (Platform::optane_ni, round-robin over the socket's channels)
// gives every shard a private XPBuffer and stream tracker, and the
// per-shard writer lane (ThreadCtx::set_write_stream) makes all threads
// routed to a shard look like one writer to that DIMM.
//
// ShardedStore is itself a StoreIface, so the workload engine, the
// differential oracle and the schedmc/crashmc targets drive it exactly
// like a single store. Cross-shard batched dispatch (apply_batch)
// partitions a batch by the router and commits each shard's group as
// one burst through the store's write-combining path (LineBatcher);
// each per-shard group is crash-atomic, the cross-shard batch as a
// whole is not — exactly the window the crashmc target explores.
//
// Self-healing (paper §2.1 media model, per-DIMM failure domains): each
// physical store carries a health state machine
//
//   healthy -> degraded -> quarantined -> rebuilding -> healthy
//
// driven by typed MediaError outcomes. With ShardOptions::replicas == K
// > 1, every logical shard s is mirrored onto the K physical stores
// (s + r) % N — each on a different simulated DIMM — so reads fail over
// when the primary's DIMM throws and acknowledged writes survive any
// single-shard loss. A quarantined store is rebuilt online, on donated
// background_turn calls: ARS enumerates the namespace's poisoned lines,
// full-XPLine ntstores heal them, the store is reformatted and
// re-silvered key by key from a healthy copy, verified, and returned to
// service without stopping traffic. With replicas == 1 (the default)
// every replication/health structure stays empty and the frontend is
// byte-and-timing-identical to the pre-resilience frontend; a
// quarantined store is instead salvaged in place through the family's
// repair-at-open path (lsmkv RecoveryInfo), accepting bounded data loss
// but never serving garbage.
//
// The typed try_* request path adds bounded retry with deterministic
// simulated-time backoff under a per-op deadline budget: kUnavailable
// (no copy can serve *right now*) is retried, each retry first donating
// one rebuild step; kMediaError/kDataLoss are final for the op. Callers
// never see an escaped MediaError while the platform is live — an armed
// read-fault (frozen platform: the machine check killed the process) is
// rethrown, because containing it would fake surviving a crash.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "workload/store_iface.h"
#include "workload/ycsb.h"

namespace xp::workload {

// FNV-1a router: stable across runs and shard-thread counts, so the
// partition of a keyspace is a pure function of (key, nshards).
inline unsigned shard_of(std::string_view key, unsigned nshards) {
  return nshards <= 1
             ? 0
             : static_cast<unsigned>(fnv1a64(key) % nshards);
}

struct ShardOptions {
  StoreKind kind = StoreKind::kLsmkv;
  StoreTuning tuning{};
  // Present each shard's stores to its DIMM under one per-shard lane id
  // instead of the issuing thread's id (§5.3).
  bool writer_lanes = true;

  // ---- Resilience (all off-path at defaults) ---------------------------
  // K-way replication: mirror logical shard s onto physical stores
  // (s + r) % nshards for r in [0, K). 1 = off (byte-identical frontend).
  unsigned replicas = 1;
  // Contained *read* media errors a shard may take before it is pulled
  // from service; a write-path media error quarantines immediately (the
  // copy may be half-applied).
  unsigned quarantine_after = 2;
  // Bounded retry for kUnavailable outcomes: deterministic simulated
  // backoff doubling from retry_backoff, capped by max_retries and by
  // the per-op deadline budget (0 = no deadline).
  unsigned max_retries = 3;
  sim::Time retry_backoff = sim::us(5);
  sim::Time op_deadline = sim::us(200);
  // Online-rebuild chunking per donated background turn.
  unsigned heal_lines_per_turn = 8;
  unsigned resilver_keys_per_turn = 4;
};

enum class ShardHealth : unsigned char {
  kHealthy,
  kDegraded,
  kQuarantined,
  kRebuilding,
};
const char* shard_health_name(ShardHealth h);

// Host-side resilience counters (DRAM bookkeeping, no simulated cost);
// mirrors the telemetry "resilience" section for direct test access.
struct ResilienceStats {
  std::uint64_t media_errors = 0;    // MediaErrors contained (all paths)
  std::uint64_t degraded = 0;        // healthy -> degraded transitions
  std::uint64_t quarantined = 0;     // -> quarantined transitions
  std::uint64_t rebuilding = 0;      // -> rebuilding transitions
  std::uint64_t recovered = 0;       // -> healthy transitions
  std::uint64_t failover_reads = 0;  // reads served by a replica copy
  std::uint64_t retries = 0;         // backoff rounds consumed
  std::uint64_t unavailable = 0;     // ops that exhausted their budget
  std::uint64_t lines_healed = 0;    // poisoned XPLines zero-healed
  std::uint64_t keys_resilvered = 0; // keys copied back into a rebuild
  std::uint64_t keys_lost = 0;       // keys with no surviving copy
  std::uint64_t verify_mismatches = 0;  // rebuilt keys re-copied by verify
  // Typed error outcomes discarded by the legacy void/bool API (the
  // untyped wrappers have no channel to report them; see below).
  std::uint64_t legacy_dropped = 0;
};

class ShardedStore final : public StoreIface {
 public:
  // One non-interleaved per-DIMM namespace per shard, round-robin over
  // the socket's channels.
  static std::vector<hw::PmemNamespace*> make_namespaces(
      hw::Platform& platform, unsigned shards, std::uint64_t bytes_per_shard,
      unsigned socket = 0);

  // Builds one store instance per namespace. The namespaces outlive the
  // frontend (the Platform owns them), so a second ShardedStore over
  // the same span is how recovery-after-crash reattaches.
  ShardedStore(std::span<hw::PmemNamespace* const> shard_ns,
               const ShardOptions& opts);

  const char* name() const override { return name_.c_str(); }
  StoreKind kind() const override { return opts_.kind; }
  void create(sim::ThreadCtx& ctx) override;
  // With replicas > 1, a shard that fails to open (or whose namespace
  // ARS reports poisoned lines — health re-derived from media state, so
  // quarantine survives process restarts) is quarantined for online
  // rebuild and open() still succeeds; with replicas == 1 it fails.
  bool open(sim::ThreadCtx& ctx) override;
  // The untyped StoreIface surface (put/get/del/scan/apply_batch) is
  // fire-and-forget under faults: a typed error outcome (kUnavailable,
  // kMediaError, kDataLoss) is counted in resilience().legacy_dropped
  // but otherwise indistinguishable from a no-op or a miss. Code that
  // must observe fault outcomes uses the try_* surface below.
  void put(sim::ThreadCtx& ctx, std::string_view key,
           std::string_view value) override;
  bool get(sim::ThreadCtx& ctx, std::string_view key,
           std::string* value) override;
  bool del(sim::ThreadCtx& ctx, std::string_view key) override;
  bool del_reports_found() const override {
    return shards_[0]->del_reports_found();
  }
  bool supports_scan() const override { return shards_[0]->supports_scan(); }
  // Merges the per-shard ordered scans into one global key order.
  std::vector<std::pair<std::string, std::string>> scan(
      sim::ThreadCtx& ctx, std::string_view start, std::size_t n) override;
  // Batched cross-shard dispatch: partition by router (preserving each
  // shard's op order), then commit shard groups in shard order.
  void apply_batch(sim::ThreadCtx& ctx,
                   std::span<const BatchOp> ops) override;
  void flush_pending(sim::ThreadCtx& ctx) override;
  // One rebuild step if any shard is under repair, else round-robin one
  // deferred-compaction turn over the serving shards.
  bool background_turn(sim::ThreadCtx& ctx) override;
  // Verifies the serving shards; shards under repair are skipped (their
  // state is transitional by construction).
  Status check(sim::ThreadCtx& ctx) override;

  // Typed request path: replication-aware routing, health tracking,
  // bounded retry + deadline budget (see file comment).
  OpResult try_put(sim::ThreadCtx& ctx, std::string_view key,
                   std::string_view value) override;
  OpResult try_get(sim::ThreadCtx& ctx, std::string_view key,
                   std::string* value) override;
  OpResult try_del(sim::ThreadCtx& ctx, std::string_view key,
                   bool* found = nullptr) override;
  OpResult try_scan(sim::ThreadCtx& ctx, std::string_view start,
                    std::size_t n,
                    std::vector<std::pair<std::string, std::string>>* out)
      override;
  OpResult try_apply_batch(sim::ThreadCtx& ctx,
                           std::span<const BatchOp> ops) override;

  hw::Platform* platform_of() const override {
    return &ns_[0]->platform();
  }

  unsigned shards() const { return static_cast<unsigned>(shards_.size()); }
  StoreIface& shard(unsigned i) { return *shards_[i]; }
  unsigned replicas() const { return replicas_; }

  ShardHealth health(unsigned i) const { return health_[i]; }
  bool all_healthy() const;
  const ResilienceStats& resilience() const { return stats_; }

  // Operator-initiated quarantine (predictive-failure drain, admin
  // maintenance): pulls the store from service and schedules the same
  // online rebuild a media error would.
  void quarantine_shard(sim::ThreadCtx& ctx, unsigned i);

 private:
  // Writer-lane scope: while alive, the thread's stores carry the
  // shard's lane id, so the DIMM sees one stream per shard.
  class LaneGuard {
   public:
    LaneGuard(sim::ThreadCtx& ctx, bool on, unsigned shard) : ctx_(ctx),
                                                              on_(on) {
      if (on_) ctx_.set_write_stream(kLaneBase + shard);
    }
    ~LaneGuard() {
      if (on_) ctx_.clear_write_stream();
    }

   private:
    static constexpr unsigned kLaneBase = 0x5a00;
    sim::ThreadCtx& ctx_;
    bool on_;
  };

  // One online repair in flight for physical store `store`.
  struct RebuildJob {
    enum class Phase : unsigned char {
      kScrub,     // ARS the namespace for poisoned lines
      kHeal,      // full-XPLine ntstore zeros over each bad line
      kReformat,  // K>1: fresh store instance + create
      kResilver,  // K>1: copy hosted keys back from a healthy copy
      kVerify,    // K>1: byte-compare rebuilt keys against the source
      kSalvage,   // K==1: reopen in place + family repair_media
    };
    unsigned store = 0;
    Phase phase = Phase::kScrub;
    std::vector<std::uint64_t> bad_lines;
    std::size_t cursor = 0;            // progress inside the phase
    std::deque<std::string> queue;     // keys still to resilver
    std::vector<std::string> vqueue;   // keys still to verify
  };

  // Serving copies of logical shard s are physical stores
  // (s + r) % shards() for r in [0, replicas_).
  unsigned copy_store(unsigned logical, unsigned r) const {
    return (logical + r) % shards();
  }
  bool serving(unsigned store) const {
    return health_[store] == ShardHealth::kHealthy ||
           health_[store] == ShardHealth::kDegraded;
  }

  void emit(sim::Time t, hw::ResilienceEventKind kind, unsigned store) const;
  // Health transitions on a contained media error; quarantines on the
  // write path or once the read-error budget is spent. A store already
  // under repair restarts its job from kScrub (fresh damage).
  void note_media_error(sim::ThreadCtx& ctx, unsigned store, bool is_write);
  void start_quarantine(sim::ThreadCtx& ctx, unsigned store);

  // One bounded chunk of the front rebuild job; true if work was done.
  bool rebuild_step(sim::ThreadCtx& ctx);
  void enter_resilver(sim::ThreadCtx& ctx, RebuildJob& job);
  void enter_verify(sim::ThreadCtx& ctx, RebuildJob& job);
  // All keys physically hosted by `store`, recovered from healthy
  // copies' scans (survives restarts; registry-only for scanless cmap),
  // merged with the in-run registry and the store's pending set.
  std::vector<std::string> hosted_keys(sim::ThreadCtx& ctx, unsigned store);
  // First serving copy of `logical` other than `except`, or -1.
  int live_source(unsigned logical, unsigned except) const;
  // Up to n rows of logical shard `s` from physical store `p`, in key
  // order from `start`, continuing past co-hosted shards' rows so the
  // cap never drops target-shard keys (replicated mode only).
  std::vector<std::pair<std::string, std::string>> scan_copy(
      sim::ThreadCtx& ctx, unsigned p, unsigned s, std::string_view start,
      std::size_t n);
  // Counts a typed error outcome discarded by the legacy untyped API.
  void note_legacy(const OpResult& r);

  // Single-attempt op bodies (no retry); kUnavailable means no copy
  // could take the op and nothing was applied.
  OpResult put_once(sim::ThreadCtx& ctx, std::string_view key,
                    std::string_view value);
  OpResult get_once(sim::ThreadCtx& ctx, std::string_view key,
                    std::string* value);
  OpResult del_once(sim::ThreadCtx& ctx, std::string_view key, bool* found);
  // Retry wrapper: retries kUnavailable under the backoff/deadline
  // budget, donating one rebuild step before each backoff.
  template <typename Fn>
  OpResult with_retries(sim::ThreadCtx& ctx, Fn&& once);

  ShardOptions opts_;
  std::vector<hw::PmemNamespace*> ns_;
  std::vector<std::unique_ptr<StoreIface>> shards_;
  std::string name_;
  unsigned rr_ = 0;  // next shard offered a background turn
  unsigned replicas_ = 1;

  // ---- resilience state (all empty/healthy when replicas_ == 1 and no
  // faults fire, so the default path allocates three small vectors and
  // touches nothing else) ------------------------------------------------
  std::vector<ShardHealth> health_;
  std::vector<unsigned> read_errors_;
  // Keys acknowledged per logical shard: the in-run registry backing
  // resilver/data-loss tracking for scanless families and the K==1
  // salvage loss accounting. Rebuilds also scan healthy copies, so the
  // registry being DRAM (lost on restart) only narrows coverage.
  std::vector<std::set<std::string>> owned_;
  // Writes a non-serving store missed; drained by resilver.
  std::vector<std::set<std::string>> pending_;
  // Keys whose every copy was lost (reads report kDataLoss, not a miss).
  std::set<std::string> lost_;
  // True iff this frontend create()d the stores: owned_ then covers the
  // whole keyspace and rebuilds skip the durable-keyspace scans.
  bool registry_complete_ = false;
  std::deque<RebuildJob> jobs_;
  ResilienceStats stats_;
};

}  // namespace xp::workload
