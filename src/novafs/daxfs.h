// DAX file-system comparators: stand-ins for XFS-DAX and Ext4-DAX.
//
// These are the Linux file systems the paper's Fig 12 compares NOVA
// against. Both do *in-place* data writes (cached stores through the
// kernel's DAX path) and, in "-sync" mode, an fsync that flushes the
// written range and commits a metadata journal transaction. Neither
// provides data consistency across crashes — exactly the property the
// figure calls out.
//
// The two profiles differ in journal cost: the paper's Fig 12 shows
// Ext4-DAX-sync overwrites clipped at 40-57 us (jbd2 commit), while
// XFS-DAX-sync sits near 5 us (log-record insert).
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "novafs/vfs.h"

namespace xp::nova {

struct DaxProfile {
  const char* name;
  sim::Time journal_commit;  // extra cost of an fsync's metadata commit
  std::uint64_t journal_bytes;  // sequential journal record size
};

inline DaxProfile xfs_profile() {
  return {"xfs-dax", sim::ns(2800), 512};
}
inline DaxProfile ext4_profile() {
  return {"ext4-dax", sim::us(36), 4096};
}

class DaxFs final : public FileSystem {
 public:
  // Occupies all of `ns`. `sync_mode` adds fsync after every write
  // (the "-sync" bars of Fig 12).
  DaxFs(PmemNamespace& ns, DaxProfile profile, bool sync_mode,
        FsCosts costs = {})
      : ns_(ns), profile_(profile), sync_mode_(sync_mode), costs_(costs) {
    // Reserve a journal area at the front; blocks follow.
    next_block_ = (kJournalArea + kBlockSize - 1) / kBlockSize;
  }

  int create(ThreadCtx& ctx, const std::string& name) override;
  int open(ThreadCtx& ctx, const std::string& name) override;
  void write(ThreadCtx& ctx, int ino, std::uint64_t off,
             std::span<const std::uint8_t> data,
             bool charge_syscall = true) override;
  std::size_t read(ThreadCtx& ctx, int ino, std::uint64_t off,
                   std::span<std::uint8_t> out,
                   bool charge_syscall = true) override;
  void fsync(ThreadCtx& ctx, int ino) override;
  std::uint64_t size(ThreadCtx& ctx, int ino) override;
  const char* name() const override { return profile_.name; }

 private:
  static constexpr std::uint64_t kBlockSize = 4096;
  static constexpr std::uint64_t kJournalArea = 1 << 20;

  struct Inode {
    std::uint64_t size = 0;
    // file block index -> device block number (in-DRAM extent map; this
    // comparator doesn't model its own metadata persistence).
    std::map<std::uint64_t, std::uint64_t> blocks;
    // Dirty range since last fsync (for the flush in sync mode).
    std::uint64_t dirty_begin = ~std::uint64_t{0};
    std::uint64_t dirty_end = 0;
  };

  std::uint64_t block_for(ThreadCtx& ctx, Inode& inode,
                          std::uint64_t file_block);
  void do_fsync(ThreadCtx& ctx, Inode& inode);

  PmemNamespace& ns_;
  DaxProfile profile_;
  bool sync_mode_;
  FsCosts costs_;
  std::map<std::string, int> namei_;
  std::vector<Inode> inodes_;
  std::uint64_t next_block_;
  std::uint64_t journal_tail_ = 0;
};

}  // namespace xp::nova
