#include "novafs/daxfs.h"

#include <algorithm>
#include <cassert>

namespace xp::nova {

int DaxFs::create(ThreadCtx& ctx, const std::string& name) {
  ctx.advance_by(costs_.open_syscall);
  auto it = namei_.find(name);
  if (it != namei_.end()) return it->second;
  const int ino = static_cast<int>(inodes_.size());
  inodes_.emplace_back();
  namei_[name] = ino;
  return ino;
}

int DaxFs::open(ThreadCtx& ctx, const std::string& name) {
  ctx.advance_by(costs_.open_syscall);
  auto it = namei_.find(name);
  return it == namei_.end() ? -1 : it->second;
}

std::uint64_t DaxFs::block_for(ThreadCtx& ctx, Inode& inode,
                               std::uint64_t file_block) {
  auto it = inode.blocks.find(file_block);
  if (it != inode.blocks.end()) return it->second;
  const std::uint64_t blk = next_block_++;
  assert((blk + 1) * kBlockSize <= ns_.size());
  inode.blocks[file_block] = blk;
  (void)ctx;
  return blk;
}

void DaxFs::write(ThreadCtx& ctx, int ino, std::uint64_t off,
                  std::span<const std::uint8_t> data, bool charge_syscall) {
  if (charge_syscall) ctx.advance_by(costs_.write_syscall);
  Inode& inode = inodes_[static_cast<std::size_t>(ino)];
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::uint64_t foff = off + pos;
    const std::uint64_t fblock = foff / kBlockSize;
    const std::uint64_t in_block = foff % kBlockSize;
    const std::size_t n = std::min<std::size_t>(data.size() - pos,
                                                kBlockSize - in_block);
    const std::uint64_t blk = block_for(ctx, inode, fblock);
    // In-place DAX write: cached stores through the kernel mapping.
    ns_.store(ctx, blk * kBlockSize + in_block, data.subspan(pos, n));
    pos += n;
  }
  inode.size = std::max(inode.size, off + data.size());
  inode.dirty_begin = std::min(inode.dirty_begin, off);
  inode.dirty_end = std::max(inode.dirty_end, off + data.size());
  if (sync_mode_) do_fsync(ctx, inode);
}

void DaxFs::do_fsync(ThreadCtx& ctx, Inode& inode) {
  ctx.advance_by(costs_.fsync_syscall);
  if (inode.dirty_end > inode.dirty_begin) {
    // Flush the dirty file range back through the cache, block by block.
    for (std::uint64_t foff = inode.dirty_begin / kBlockSize * kBlockSize;
         foff < inode.dirty_end; foff += kBlockSize) {
      auto it = inode.blocks.find(foff / kBlockSize);
      if (it == inode.blocks.end()) continue;
      const std::uint64_t begin = std::max(inode.dirty_begin, foff);
      const std::uint64_t end =
          std::min(inode.dirty_end, foff + kBlockSize);
      ns_.clwb(ctx, it->second * kBlockSize + (begin - foff) +
                        (foff % kBlockSize),
               static_cast<std::size_t>(end - begin));
    }
    ns_.sfence(ctx);
  }
  // Metadata journal commit (sequential record + device flush).
  std::vector<std::uint8_t> rec(profile_.journal_bytes, 0x4a);
  if (journal_tail_ + rec.size() > kJournalArea) journal_tail_ = 0;
  ns_.ntstore_persist(ctx, journal_tail_, rec);
  journal_tail_ += rec.size();
  ctx.advance_by(profile_.journal_commit);
  inode.dirty_begin = ~std::uint64_t{0};
  inode.dirty_end = 0;
}

std::size_t DaxFs::read(ThreadCtx& ctx, int ino, std::uint64_t off,
                        std::span<std::uint8_t> out, bool charge_syscall) {
  if (charge_syscall) ctx.advance_by(costs_.read_syscall);
  Inode& inode = inodes_[static_cast<std::size_t>(ino)];
  if (off >= inode.size) return 0;
  const std::size_t len =
      std::min<std::uint64_t>(out.size(), inode.size - off);
  std::size_t pos = 0;
  while (pos < len) {
    const std::uint64_t foff = off + pos;
    const std::uint64_t fblock = foff / kBlockSize;
    const std::uint64_t in_block = foff % kBlockSize;
    const std::size_t n =
        std::min<std::size_t>(len - pos, kBlockSize - in_block);
    auto it = inode.blocks.find(fblock);
    if (it == inode.blocks.end()) {
      std::memset(out.data() + pos, 0, n);
    } else {
      ns_.load(ctx, it->second * kBlockSize + in_block,
               out.subspan(pos, n));
    }
    pos += n;
  }
  return len;
}

void DaxFs::fsync(ThreadCtx& ctx, int ino) {
  do_fsync(ctx, inodes_[static_cast<std::size_t>(ino)]);
}

std::uint64_t DaxFs::size(ThreadCtx& ctx, int ino) {
  (void)ctx;
  return inodes_[static_cast<std::size_t>(ino)].size;
}

}  // namespace xp::nova
