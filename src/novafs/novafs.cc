#include "novafs/novafs.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <set>

#include "pmemlib/pmem_ops.h"
#include "sim/crc32.h"

namespace xp::nova {

namespace {
std::span<const std::uint8_t> bytes_of(const void* p, std::size_t n) {
  return {static_cast<const std::uint8_t*>(p), n};
}
constexpr std::uint64_t kPage = NovaFs::kPageSize;
}  // namespace

// ---------------------------------------------------------- format/mount --

void NovaFs::format(ThreadCtx& ctx) {
  data_start_ = 4096 + kMaxInodes * sizeof(PInode);
  data_start_ = (data_start_ + kPage - 1) / kPage * kPage;

  // Zero the inode table, then write the superblock last.
  std::vector<std::uint8_t> zeros(kMaxInodes * sizeof(PInode), 0);
  for (std::size_t p = 0; p < zeros.size(); p += 4096) {
    ns_.ntstore(ctx, 4096 + p,
                std::span<const std::uint8_t>(
                    zeros.data() + p, std::min<std::size_t>(
                                          4096, zeros.size() - p)));
  }
  ns_.sfence(ctx);
  Super s{kMagic, ns_.size(), 4096, data_start_};
  // Backup copy via the management path (untimed — formatting costs what
  // it did without it), primary last so a torn format has no valid super.
  ns_.poke(kSuperBackupOff, bytes_of(&s, sizeof(s)));
  ns_.ntstore_persist(ctx, 0, bytes_of(&s, sizeof(s)));
  recovery_ = RecoveryInfo{};
  init_read_path();

  // DRAM state.
  inodes_.assign(kMaxInodes, DInode{});
  namei_.clear();
  free_pages_.clear();
  free_by_channel_.assign(6, {});
  for (std::uint64_t off = data_start_; off + kPage <= ns_.size();
       off += kPage)
    free_page(off);

  // Inode 0 is the root directory.
  PInode root{};
  root.in_use = 1;
  ns_.store_persist(ctx, inode_off(0), bytes_of(&root, sizeof(root)));
  inodes_[0].in_use = true;
}

void NovaFs::init_read_path() {
  lreader_ = pmem::LineReader{};
  rcache_.reset();
  if (opt_.read_combine && opt_.read_cache_lines > 0) {
    pmem::ReadCacheOptions co;
    co.capacity_lines = opt_.read_cache_lines;
    rcache_ = std::make_unique<pmem::ReadCache>(ns_, co);
    lreader_.attach_cache(rcache_.get());
  }
}

bool NovaFs::mount(ThreadCtx& ctx) {
  recovery_ = RecoveryInfo{};
  init_read_path();
  Super s{};
  bool primary_ok = false;
  try {
    s = ns_.load_pod<Super>(ctx, 0);
    primary_ok = s.magic == kMagic && s.fs_size == ns_.size();
  } catch (const hw::MediaError&) {
    primary_ok = false;
  }
  if (!primary_ok) {
    Super b{};
    try {
      b = ns_.load_pod<Super>(ctx, kSuperBackupOff);
    } catch (const hw::MediaError&) {
      return false;  // both copies unreadable: not a mountable fs
    }
    if (b.magic != kMagic || b.fs_size != ns_.size()) return false;
    s = b;
    scrub_line(ctx, 0);
    ns_.store_persist(ctx, 0, bytes_of(&s, sizeof(s)));
    recovery_.super_restored = true;
  }
  data_start_ = s.data_start;

  inodes_.assign(kMaxInodes, DInode{});
  namei_.clear();
  free_pages_.clear();
  free_by_channel_.assign(6, {});

  // Pass 1: replay every in-use inode's log (rebuilds page maps, sizes,
  // and the directory).
  std::vector<bool> page_used((ns_.size() - data_start_) / kPage, false);
  for (unsigned ino = 0; ino < kMaxInodes; ++ino) {
    PInode pi{};
    try {
      pi = ns_.load_pod<PInode>(ctx, inode_off(ino));
    } catch (const hw::MediaError& e) {
      // The inode-table line is gone, and with it every inode on it
      // (poison granularity is the 256 B line, which holds 4 PInodes).
      // Scrub it — subsequent loads in this loop read zeros and skip.
      const std::uint64_t line = inode_off(ino) & ~std::uint64_t{255};
      scrub_line(ctx, line);
      for (std::uint64_t o = line; o < line + 256; o += sizeof(PInode))
        recovery_.inodes_lost.push_back(
            static_cast<unsigned>((o - 4096) / sizeof(PInode)));
      recovery_.detail = e.what();
      continue;
    }
    if (pi.in_use == 0) continue;
    DInode& di = inodes_[ino];
    di.in_use = true;
    di.log_head = pi.log_head;
    di.log_tail = pi.log_tail;
    replay_inode(ctx, ino);
    // Mark pages referenced by this inode as used.
    auto mark = [&](std::uint64_t off) {
      if (off >= data_start_) page_used[(off - data_start_) / kPage] = true;
    };
    for (const auto& [idx, ps] : di.pages) {
      if (ps.page_off != 0) mark(ps.page_off);
      for (const Embed& e : ps.overlays) mark(e.data_off / kPage * kPage);
    }
    try {
      // Log-page headers were just staged/cached by the replay above, so
      // the combined walk re-serves them from DRAM.
      for (std::uint64_t lp = di.log_head; lp != 0;) {
        mark(lp);
        lp = opt_.read_combine
                 ? lreader_.fetch_pod<std::uint64_t>(ctx, ns_, lp)
                 : ns_.load_pod<std::uint64_t>(ctx, lp);
      }
    } catch (const hw::MediaError&) {
      // A link beyond the replayed (truncated) portion is unreadable; the
      // unreachable tail pages stay unmarked and return to the free pool.
      if (recovery_.logs_truncated.empty() ||
          recovery_.logs_truncated.back() != ino)
        recovery_.logs_truncated.push_back(ino);
    }
  }

  // Dirents can name inodes whose table line was lost: drop them (and
  // report), rather than serving a zeroed inode as an empty file.
  if (!recovery_.inodes_lost.empty()) {
    const std::set<unsigned> lost(recovery_.inodes_lost.begin(),
                                  recovery_.inodes_lost.end());
    for (auto it = namei_.begin(); it != namei_.end();) {
      if (lost.count(static_cast<unsigned>(it->second)) != 0) {
        recovery_.dirents_dropped.push_back(it->first);
        inodes_[static_cast<unsigned>(it->second)] = DInode{};
        it = namei_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Damaged mounts scrub every bad line *outside* live pages now, so the
  // allocator can never hand out a page that still bites. Bad lines
  // inside live data stay poisoned (reads raise MediaError) until
  // repair() excises them.
  if (recovery_.damaged()) {
    for (const std::uint64_t bad : ns_.platform().ars(ns_, 0, ns_.size())) {
      const bool live = bad >= data_start_ &&
                        page_used[(bad - data_start_) / kPage];
      if (!live) scrub_line(ctx, bad);
    }
  }

  // Pass 2: rebuild the free-page pool.
  for (std::size_t i = page_used.size(); i-- > 0;) {
    if (!page_used[i]) free_page(data_start_ + i * kPage);
  }
  return true;
}

// ------------------------------------------------------------- allocator --

std::uint64_t NovaFs::alloc_page(ThreadCtx& ctx) {
  if (opt_.alloc == AllocPolicy::kPinned) {
    auto& mine = free_by_channel_[ctx.id() % free_by_channel_.size()];
    if (!mine.empty()) {
      const std::uint64_t off = mine.back();
      mine.pop_back();
      return off;
    }
    // Fall back to any channel.
    for (auto& list : free_by_channel_) {
      if (!list.empty()) {
        const std::uint64_t off = list.back();
        list.pop_back();
        return off;
      }
    }
    assert(false && "NovaFs out of pages");
    return 0;
  }
  assert(!free_pages_.empty() && "NovaFs out of pages");
  const std::uint64_t off = free_pages_.back();
  free_pages_.pop_back();
  return off;
}

void NovaFs::free_page(std::uint64_t off) {
  if (opt_.alloc == AllocPolicy::kPinned) {
    const unsigned channel = ns_.decode(off).channel;
    free_by_channel_[channel % free_by_channel_.size()].push_back(off);
  } else {
    free_pages_.push_back(off);
  }
}

// -------------------------------------------------------------- log ------

void NovaFs::ensure_log_space(ThreadCtx& ctx, unsigned ino,
                              std::uint32_t needed) {
  DInode& di = inodes_[ino];
  auto page_end = [&](std::uint64_t pos) {
    return pos / kPage * kPage + kPage;
  };
  if (di.log_head != 0 &&
      di.log_tail + needed + 8 <= page_end(di.log_tail))
    return;
  // Allocate and link a fresh log page.
  const std::uint64_t np = alloc_page(ctx);
  const std::uint64_t zero = 0;
  ns_.store_flush(ctx, np, bytes_of(&zero, 8));  // next = 0
  // Clear the first entry slot so stale bytes can't look like a record.
  ns_.store_flush(ctx, np + kLogDataStart, bytes_of(&zero, 4));
  ns_.sfence(ctx);
  if (di.log_head == 0) {
    di.log_head = np;
    if (!suppress_head_persist_) {
      pmem::store_persist_pod(ctx, ns_,
                              inode_off(ino) + offsetof(PInode, log_head),
                              np);
    }
  } else {
    // End-of-page marker, then link from the old page.
    const std::uint32_t eop = kEntryMagic | kEndOfPage;
    ns_.store_persist(ctx, di.log_tail, bytes_of(&eop, 4));
    const std::uint64_t old_page = di.log_tail / kPage * kPage;
    pmem::store_persist_pod(ctx, ns_, old_page, np);
  }
  di.log_tail = np + kLogDataStart;
  ++di.log_page_count;
}

std::uint64_t NovaFs::log_append(ThreadCtx& ctx, unsigned ino,
                                 const LogEntry& e,
                                 std::span<const std::uint8_t> payload) {
  lreader_.discard();  // about to mutate the log: drop the staged span
  DInode& di = inodes_[ino];
  const std::uint32_t total = e.total_len;
  assert(total == entry_len(payload.size()));
  assert(total + kLogDataStart + 8 <= kPage && "entry too large for a page");

  ensure_log_space(ctx, ino, total);

  const std::uint64_t at = di.log_tail;
  // Commit protocol: terminator after the record and the record body are
  // persisted first; the entry's magic word (its first 4 bytes) last.
  // Replay scans entries until an invalid magic, so a torn append is
  // invisible and no stale bytes can be mistaken for a live entry.
  std::vector<std::uint8_t> buf(total, 0);
  std::memcpy(buf.data(), &e, sizeof(e));
  if (!payload.empty())
    std::memcpy(buf.data() + sizeof(e), payload.data(), payload.size());
  if (opt_.log_checksum) {
    const std::uint32_t crc = sim::crc32c(buf.data(), total - 8);
    std::memcpy(buf.data() + total - 8, &crc, 4);
  }
  const std::uint32_t zero = 0;
  ns_.store_flush(ctx, at + total, bytes_of(&zero, 4));
  ns_.store_flush(ctx, at + 4,
                  std::span<const std::uint8_t>(buf.data() + 4, total - 4));
  ns_.sfence(ctx);
  ns_.store_flush(ctx, at, std::span<const std::uint8_t>(buf.data(), 4));
  ns_.sfence(ctx);

  di.log_tail = at + total;
  // The persistent tail is a recovery *hint* (bounds the scan); the
  // authoritative end of log is the first invalid magic.
  pmem::store_persist_pod(ctx, ns_,
                          inode_off(ino) + offsetof(PInode, log_tail),
                          di.log_tail);
  return at;
}

std::vector<std::uint64_t> NovaFs::log_append_batch(
    ThreadCtx& ctx, unsigned ino, std::span<const PendingEntry> entries) {
  lreader_.discard();  // about to mutate the log: drop the staged span
  assert(!entries.empty());
  // Batched log publication: the window where a racing thread (or crash)
  // must see whole chunks or nothing — a schedule-explorer yield point.
  ctx.sched_point(sim::SchedPoint::kBatchCommit);
  DInode& di = inodes_[ino];
  std::vector<std::uint64_t> offs;
  offs.reserve(entries.size());

  // The batch is published in chunks of consecutive entries, each chunk
  // as large as the current log page allows. Every chunk is staged
  // contiguously — each entry keeps the exact stock format, so replay
  // needs no changes — and published with one fence pair: everything
  // after the chunk's first magic word (bodies, later entries, the
  // terminator) first, then the magic word makes the chunk visible
  // atomically. A crash leaves a durable prefix of whole chunks, never
  // a torn entry — the same entry-prefix guarantee as the stock path,
  // at a fraction of the fences.
  std::size_t i = 0;
  while (i < entries.size()) {
    assert(entries[i].e.total_len == entry_len(entries[i].payload.size()));
    ensure_log_space(ctx, ino, entries[i].e.total_len);
    // Room to the end-of-page marker slot; ensure_log_space guarantees
    // at least the first entry (plus terminator) fits.
    const std::uint64_t room =
        di.log_tail / kPage * kPage + kPage - di.log_tail - 8;
    std::uint32_t total = 0;
    std::size_t end = i;
    while (end < entries.size() &&
           total + entries[end].e.total_len <= room) {
      assert(entries[end].e.total_len ==
             entry_len(entries[end].payload.size()));
      total += entries[end].e.total_len;
      ++end;
    }
    assert(end > i && "entry too large for a page");

    const std::uint64_t at = di.log_tail;
    batch_.reset(at);
    for (std::size_t k = i; k < end; ++k) {
      const PendingEntry& pe = entries[k];
      offs.push_back(at + batch_.size());
      const std::size_t rel = batch_.append_pod(pe.e);
      if (!pe.payload.empty()) batch_.append(pe.payload);
      batch_.append_zeros(pe.e.total_len - sizeof(LogEntry) -
                          pe.payload.size());
      if (opt_.log_checksum) {
        const std::uint32_t crc =
            sim::crc32c(batch_.data() + rel, pe.e.total_len - 8);
        std::memcpy(batch_.data() + rel + pe.e.total_len - 8, &crc, 4);
      }
    }
    const std::uint32_t zero = 0;
    batch_.append_pod(zero);  // terminator for the whole chunk
    batch_.commit(ctx, ns_, /*hold=*/4, pmem::WriteHint::kAuto);
    ns_.sfence(ctx);
    di.log_tail = at + total;
    i = end;
  }

  // One tail-hint persist for the whole batch (it only bounds the
  // recovery scan; the authoritative end is the first invalid magic).
  pmem::store_persist_pod(ctx, ns_,
                          inode_off(ino) + offsetof(PInode, log_tail),
                          di.log_tail);
  return offs;
}

void NovaFs::replay_inode(ThreadCtx& ctx, unsigned ino) {
  DInode& di = inodes_[ino];
  if (di.log_head == 0) return;
  di.log_page_count = 1;
  std::uint64_t pos = di.log_head + kLogDataStart;
  // With read_combine the first fetch in each 4 KB log page stages the
  // whole page as one line burst (window = bytes to the page end); the
  // entry walk and payload reads below are then pure DRAM. Note the page
  // header (next pointer) rides along for free: kLogDataStart sits inside
  // the page's first XPLine. Under media damage the combined fetch faults
  // at the first entry whose page holds the poisoned line, so the log is
  // truncated at the page rather than the exact entry — a knob-on-only
  // difference, and still reported, never hidden.
  const bool combine = opt_.read_combine;
  const auto to_page_end = [](std::uint64_t p) {
    return static_cast<std::size_t>(kPage - p % kPage);
  };
  try {
    while (true) {
      const auto e =
          combine ? lreader_.fetch_pod<LogEntry>(ctx, ns_, pos,
                                                 to_page_end(pos))
                  : ns_.load_pod<LogEntry>(ctx, pos);
      if ((e.magic_type & 0xFFFF0000u) != kEntryMagic) break;  // end of log
      const std::uint32_t type = e.magic_type & 0xFFFFu;
      if (type == kEndOfPage) {
        const std::uint64_t page = pos / kPage * kPage;
        const auto next =
            combine ? lreader_.fetch_pod<std::uint64_t>(ctx, ns_, page)
                    : ns_.load_pod<std::uint64_t>(ctx, page);
        // A crash between the end-of-page marker persist and the old
        // page's next-pointer persist durably leaves next == 0: the entry
        // that needed the new page was never acknowledged, so this is
        // simply the end of the log.
        if (next == 0) break;
        pos = next + kLogDataStart;
        ++di.log_page_count;
        continue;
      }
      if (opt_.log_checksum && !entry_crc_ok(ctx, pos, e)) {
        truncate_log_at(ctx, ino, pos, "log entry crc mismatch");
        return;
      }
      apply_entry(ctx, ino, pos, e, /*during_replay=*/true);
      pos += e.total_len;
    }
  } catch (const hw::MediaError& e) {
    truncate_log_at(ctx, ino, pos, e.what());
    return;
  }
  di.log_tail = pos;
}

bool NovaFs::entry_crc_ok(ThreadCtx& ctx, std::uint64_t pos,
                          const LogEntry& e) {
  if (e.total_len < sizeof(LogEntry) + 8 ||
      pos % kPage + e.total_len + 8 > kPage)
    return false;
  std::vector<std::uint8_t> buf(e.total_len - 8);
  ns_.load(ctx, pos, buf);
  const auto stored =
      ns_.load_pod<std::uint32_t>(ctx, pos + e.total_len - 8);
  return sim::crc32c(buf.data(), buf.size()) == stored;
}

void NovaFs::scrub_line(ThreadCtx& ctx, std::uint64_t line_off) {
  lreader_.discard();  // the scrubbed line may sit in the staged span
  line_off &= ~(hw::Platform::kXpLineBytes - 1);
  const std::uint8_t zeros[hw::Platform::kXpLineBytes] = {};
  ns_.ntstore_persist(ctx, line_off, zeros);
  recovery_.scrubbed_lines.push_back(line_off);
}

void NovaFs::truncate_log_at(ThreadCtx& ctx, unsigned ino,
                             std::uint64_t pos, const std::string& why) {
  lreader_.discard();  // terminator store below lands in the staged page
  // Scrub the damaged page so the terminator store below can't fault,
  // then end the log durably at the damage point. Entries past it were
  // committed once — their loss is reported, not hidden.
  const std::uint64_t page = pos / kPage * kPage;
  for (const std::uint64_t bad : ns_.platform().ars(ns_, page, kPage))
    scrub_line(ctx, bad);
  const std::uint32_t zero = 0;
  ns_.store_persist(ctx, pos, bytes_of(&zero, 4));
  inodes_[ino].log_tail = pos;
  pmem::store_persist_pod(ctx, ns_,
                          inode_off(ino) + offsetof(PInode, log_tail), pos);
  recovery_.logs_truncated.push_back(ino);
  recovery_.detail = why;
}

void NovaFs::apply_entry(ThreadCtx& ctx, unsigned ino,
                         std::uint64_t entry_off, const LogEntry& e,
                         bool during_replay) {
  DInode& di = inodes_[ino];
  const std::uint32_t type = e.magic_type & 0xFFFFu;
  switch (type) {
    case kWrite: {
      PageState& ps = di.pages[e.foff / kPage];
      if (!during_replay && ps.page_off != 0) free_page(ps.page_off);
      ps.page_off = e.page;
      ps.overlays.clear();
      di.size = std::max(di.size, e.new_size);
      break;
    }
    case kEmbed: {
      PageState& ps = di.pages[e.foff / kPage];
      // The exact (unpadded) payload length rides in the `page` field,
      // unused by embed entries.
      ps.overlays.push_back(Embed{entry_off + sizeof(LogEntry),
                                  static_cast<std::uint32_t>(e.foff % kPage),
                                  static_cast<std::uint32_t>(e.page)});
      di.size = std::max(di.size, e.new_size);
      break;
    }
    case kDirent:
    case kDirentDel: {
      // Payload: u32 target_ino, u32 namelen, chars. During combined
      // replay the payload is already staged with its log page; outside
      // replay the entry was written a moment ago, so keep the stock
      // loads (the staging span would be stale anyway).
      const bool combine = during_replay && opt_.read_combine;
      std::uint32_t meta[2];
      std::span<std::uint8_t> meta_out(
          reinterpret_cast<std::uint8_t*>(meta), 8);
      if (combine) {
        lreader_.read(ctx, ns_, entry_off + sizeof(LogEntry), meta_out);
      } else {
        ns_.load(ctx, entry_off + sizeof(LogEntry), meta_out);
      }
      std::string name(meta[1], '\0');
      std::span<std::uint8_t> name_out(
          reinterpret_cast<std::uint8_t*>(name.data()), meta[1]);
      if (combine) {
        lreader_.read(ctx, ns_, entry_off + sizeof(LogEntry) + 8, name_out);
      } else {
        ns_.load(ctx, entry_off + sizeof(LogEntry) + 8, name_out);
      }
      if (type == kDirent) {
        namei_[name] = static_cast<int>(meta[0]);
        inodes_[meta[0]].in_use = true;
      } else {
        namei_.erase(name);
        // Free the inode slot for reuse (its storage is reclaimed by the
        // caller, or by mount's reachability scan after a crash).
        if (during_replay) inodes_[meta[0]].in_use = false;
      }
      break;
    }
    case kSetSize: {
      di.size = e.new_size;
      // Forget whole pages past the new size (their data is dead).
      const std::uint64_t first_dead = (e.new_size + kPage - 1) / kPage;
      for (auto it = di.pages.begin(); it != di.pages.end();) {
        if (it->first >= first_dead) {
          if (!during_replay && it->second.page_off != 0)
            free_page(it->second.page_off);
          it = di.pages.erase(it);
        } else {
          ++it;
        }
      }
      break;
    }
    default:
      assert(false && "corrupt log entry");
  }
}

// ------------------------------------------------------------- file ops --

int NovaFs::create(ThreadCtx& ctx, const std::string& name) {
  ctx.advance_by(opt_.costs.open_syscall);
  auto it = namei_.find(name);
  if (it != namei_.end()) return it->second;
  unsigned ino = 0;
  for (unsigned i = 1; i < kMaxInodes; ++i) {
    if (!inodes_[i].in_use) {
      ino = i;
      break;
    }
  }
  if (ino == 0) return -1;

  // Persist the inode, then the dirent in the directory log.
  PInode pi{};
  pi.in_use = 1;
  ns_.store_persist(ctx, inode_off(ino), bytes_of(&pi, sizeof(pi)));
  inodes_[ino].in_use = true;

  append_dirent(ctx, kDirent, ino, name);
  namei_[name] = static_cast<int>(ino);
  return static_cast<int>(ino);
}

std::uint64_t NovaFs::append_dirent(ThreadCtx& ctx, EntryType type,
                                    unsigned target_ino,
                                    const std::string& name) {
  std::vector<std::uint8_t> payload(8 + name.size());
  const std::uint32_t meta[2] = {target_ino,
                                 static_cast<std::uint32_t>(name.size())};
  std::memcpy(payload.data(), meta, 8);
  std::memcpy(payload.data() + 8, name.data(), name.size());
  LogEntry e{};
  e.magic_type = kEntryMagic | type;
  e.total_len = entry_len(payload.size());
  return log_append(ctx, 0, e, payload);
}

void NovaFs::release_inode_storage(ThreadCtx& ctx, unsigned ino) {
  DInode& di = inodes_[ino];
  for (auto& [idx, ps] : di.pages)
    if (ps.page_off != 0) free_page(ps.page_off);
  for (std::uint64_t lp = di.log_head; lp != 0;) {
    const auto next = ns_.load_pod<std::uint64_t>(ctx, lp);
    free_page(lp);
    lp = next;
  }
  di = DInode{};
}

bool NovaFs::unlink(ThreadCtx& ctx, const std::string& name) {
  ctx.advance_by(opt_.costs.open_syscall);
  auto it = namei_.find(name);
  if (it == namei_.end()) return false;
  const auto ino = static_cast<unsigned>(it->second);
  // Commit point: the deletion dirent. Then the inode slot and its
  // storage can be reclaimed (a crash in between leaks nothing: replay
  // sees the deletion and mount's reachability scan frees the pages).
  append_dirent(ctx, kDirentDel, ino, name);
  PInode pi{};
  ns_.store_persist(ctx, inode_off(ino), bytes_of(&pi, sizeof(pi)));
  release_inode_storage(ctx, ino);
  namei_.erase(it);
  return true;
}

bool NovaFs::rename(ThreadCtx& ctx, const std::string& from,
                    const std::string& to) {
  // A rename is delete+insert in the directory log; under the schedule
  // explorer a competing rename may be granted the log between the two
  // unless batch_log_appends makes the pair one atomic chunk.
  ctx.sched_point(sim::SchedPoint::kHandoff);
  ctx.advance_by(opt_.costs.open_syscall);
  auto it = namei_.find(from);
  if (it == namei_.end()) return false;
  const auto ino = static_cast<unsigned>(it->second);
  if (from == to) return true;
  const auto to_it = namei_.find(to);
  const bool replace = to_it != namei_.end();
  const unsigned old_ino =
      replace ? static_cast<unsigned>(to_it->second) : 0;

  auto dirent_payload = [](unsigned target, const std::string& name) {
    std::vector<std::uint8_t> p(8 + name.size());
    const std::uint32_t meta[2] = {target,
                                   static_cast<std::uint32_t>(name.size())};
    std::memcpy(p.data(), meta, 8);
    std::memcpy(p.data() + 8, name.data(), name.size());
    return p;
  };

  if (opt_.batch_log_appends) {
    // One crash-atomic directory-log batch: the deletion dirent(s) and
    // the insertion commit together, so recovery sees the rename whole
    // or not at all — never the name lost or doubled.
    std::vector<std::vector<std::uint8_t>> payloads;
    payloads.push_back(dirent_payload(ino, from));
    if (replace) payloads.push_back(dirent_payload(old_ino, to));
    payloads.push_back(dirent_payload(ino, to));
    std::vector<PendingEntry> entries;
    std::size_t i = 0;
    for (const EntryType type :
         replace ? std::vector<EntryType>{kDirentDel, kDirentDel, kDirent}
                 : std::vector<EntryType>{kDirentDel, kDirent}) {
      LogEntry e{};
      e.magic_type = kEntryMagic | type;
      e.total_len = entry_len(payloads[i].size());
      entries.push_back({e, payloads[i]});
      ++i;
    }
    log_append_batch(ctx, 0, entries);
  } else {
    append_dirent(ctx, kDirentDel, ino, from);
    if (replace) append_dirent(ctx, kDirentDel, old_ino, to);
    append_dirent(ctx, kDirent, ino, to);
  }

  if (replace) {
    PInode pi{};
    ns_.store_persist(ctx, inode_off(old_ino), bytes_of(&pi, sizeof(pi)));
    release_inode_storage(ctx, old_ino);
  }
  namei_.erase(from);
  namei_[to] = static_cast<int>(ino);
  return true;
}

void NovaFs::truncate(ThreadCtx& ctx, int ino_s, std::uint64_t new_size) {
  ctx.advance_by(opt_.costs.write_syscall);
  const auto ino = static_cast<unsigned>(ino_s);
  DInode& di = inodes_[ino];
  if (new_size < di.size) {
    // Zero the tail of the boundary page so a later extension reads
    // zeros, then log the authoritative size.
    const std::uint64_t boundary_page = new_size / kPage;
    const std::size_t keep = static_cast<std::size_t>(new_size % kPage);
    if (keep != 0 && di.pages.count(boundary_page) != 0) {
      std::vector<std::uint8_t> zeros(kPage - keep, 0);
      cow_page(ctx, ino, boundary_page, zeros, keep);
    }
  }
  LogEntry e{};
  e.magic_type = kEntryMagic | kSetSize;
  e.total_len = entry_len(0);
  e.new_size = new_size;
  const std::uint64_t at = log_append(ctx, ino, e, {});
  apply_entry(ctx, ino, at, e, /*during_replay=*/false);
}

int NovaFs::open(ThreadCtx& ctx, const std::string& name) {
  ctx.advance_by(opt_.costs.open_syscall);
  auto it = namei_.find(name);
  return it == namei_.end() ? -1 : it->second;
}

void NovaFs::cow_page(ThreadCtx& ctx, unsigned ino, std::uint64_t page_idx,
                      std::span<const std::uint8_t> seg,
                      std::size_t seg_in_page) {
  DInode& di = inodes_[ino];
  std::vector<std::uint8_t> buf(kPage, 0);
  // Base content + overlays (the read path's merge) — skipped when the
  // new segment covers the whole page.
  if (seg.size() < kPage) read_page(ctx, di, page_idx, 0, kPage, buf.data());
  if (!seg.empty())
    std::memcpy(buf.data() + seg_in_page, seg.data(), seg.size());

  const std::uint64_t np = alloc_page(ctx);
  ns_.ntstore(ctx, np, buf);
  ns_.sfence(ctx);

  LogEntry e{};
  e.magic_type = kEntryMagic | kWrite;
  e.total_len = entry_len(0);
  e.foff = page_idx * kPage;
  e.page = np;
  e.new_size = std::max<std::uint64_t>(
      di.size, seg.empty() ? di.size : page_idx * kPage + seg_in_page +
                                           seg.size());
  const std::uint64_t at = log_append(ctx, ino, e, {});
  apply_entry(ctx, ino, at, e, /*during_replay=*/false);
  di.size = std::max(di.size, e.new_size);
}

void NovaFs::write(ThreadCtx& ctx, int ino_s, std::uint64_t off,
                   std::span<const std::uint8_t> data, bool charge_syscall) {
  if (charge_syscall) ctx.advance_by(opt_.costs.write_syscall);
  const auto ino = static_cast<unsigned>(ino_s);
  DInode& di = inodes_[ino];

  // With batch_log_appends, consecutive embedded segments of one write()
  // coalesce into a single log burst (one terminator + fence pair + tail
  // persist for all of them) instead of committing entry by entry. Sizes
  // are tracked through `staged_size` because the entries apply only when
  // the batch commits. The batch flushes before any CoW fallback so log
  // order always matches file-write order.
  std::vector<PendingEntry> pending;
  std::uint32_t pending_bytes = 0;
  std::vector<std::uint64_t> pending_pages;
  std::uint64_t staged_size = di.size;
  auto flush_pending = [&] {
    if (pending.empty()) return;
    const auto offs = log_append_batch(ctx, ino, pending);
    for (std::size_t i = 0; i < pending.size(); ++i) {
      apply_entry(ctx, ino, offs[i], pending[i].e, /*during_replay=*/false);
      di.size = std::max(di.size, pending[i].e.new_size);
    }
    pending.clear();
    pending_bytes = 0;
    // Overlay-merge checks run after the batch lands (cow_page appends
    // its own entry; it must not interleave with the staged batch).
    for (const std::uint64_t page_idx : pending_pages) {
      PageState& ps = di.pages[page_idx];
      if (ps.overlays.size() >= opt_.merge_threshold)
        cow_page(ctx, ino, page_idx, {}, 0);
    }
    pending_pages.clear();
  };

  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::uint64_t foff = off + pos;
    const std::uint64_t page_idx = foff / kPage;
    const std::size_t in_page = static_cast<std::size_t>(foff % kPage);
    const std::size_t n =
        std::min<std::size_t>(data.size() - pos, kPage - in_page);
    const auto seg = data.subspan(pos, n);

    // Embedded entries must fit in a log page (with header, padding and
    // terminator); larger sub-page writes fall back to CoW.
    constexpr std::size_t kEmbedMax = 3072;
    if (opt_.datalog && n <= kEmbedMax && n < kPage) {
      // Embedded write entry: data rides in the log (Fig 11).
      LogEntry e{};
      e.magic_type = kEntryMagic | kEmbed;
      e.total_len = entry_len(n);
      e.foff = foff;
      e.page = n;  // exact payload length
      if (opt_.batch_log_appends) {
        e.new_size = std::max(staged_size, foff + n);
        staged_size = e.new_size;
        // A batch must fit in one log page; spill the current one first.
        if (pending_bytes + e.total_len + kLogDataStart + 8 > kPage)
          flush_pending();
        pending.push_back({e, seg});
        pending_bytes += e.total_len;
        pending_pages.push_back(page_idx);
      } else {
        e.new_size = std::max(di.size, foff + n);
        const std::uint64_t at = log_append(ctx, ino, e, seg);
        apply_entry(ctx, ino, at, e, /*during_replay=*/false);
        di.size = std::max(di.size, e.new_size);
        PageState& ps = di.pages[page_idx];
        if (ps.overlays.size() >= opt_.merge_threshold) {
          cow_page(ctx, ino, page_idx, {}, 0);  // merge overlays
        }
      }
    } else {
      flush_pending();
      cow_page(ctx, ino, page_idx, seg, in_page);
      staged_size = std::max(staged_size, di.size);
    }
    pos += n;
  }
  flush_pending();
  if (di.log_page_count > opt_.clean_threshold) clean_log(ctx, ino);
}

void NovaFs::read_page(ThreadCtx& ctx, DInode& di, std::uint64_t page_idx,
                       std::size_t begin, std::size_t len,
                       std::uint8_t* out) {
  auto it = di.pages.find(page_idx);
  if (it == di.pages.end()) {
    std::memset(out, 0, len);
    return;
  }
  const PageState& ps = it->second;
  const bool combine = opt_.read_combine;
  if (ps.page_off != 0) {
    if (combine) {
      lreader_.read(ctx, ns_, ps.page_off + begin,
                    std::span<std::uint8_t>(out, len));
    } else {
      ns_.load(ctx, ps.page_off + begin, std::span<std::uint8_t>(out, len));
    }
  } else {
    std::memset(out, 0, len);
  }
  // Apply embedded extents in log order (newest last).
  for (const Embed& e : ps.overlays) {
    const std::size_t e_begin = e.in_page;
    const std::size_t e_end = e.in_page + e.len;
    const std::size_t r_begin = std::max(begin, e_begin);
    const std::size_t r_end = std::min(begin + len, e_end);
    if (r_begin >= r_end) continue;
    std::span<std::uint8_t> dst(out + (r_begin - begin), r_end - r_begin);
    if (combine) {
      lreader_.read(ctx, ns_, e.data_off + (r_begin - e_begin), dst);
    } else {
      ns_.load(ctx, e.data_off + (r_begin - e_begin), dst);
    }
  }
}

std::size_t NovaFs::read(ThreadCtx& ctx, int ino_s, std::uint64_t off,
                         std::span<std::uint8_t> out, bool charge_syscall) {
  if (charge_syscall) ctx.advance_by(opt_.costs.read_syscall);
  DInode& di = inodes_[static_cast<unsigned>(ino_s)];
  if (off >= di.size) return 0;
  const std::size_t len =
      std::min<std::uint64_t>(out.size(), di.size - off);
  std::size_t pos = 0;
  while (pos < len) {
    const std::uint64_t foff = off + pos;
    const std::size_t in_page = static_cast<std::size_t>(foff % kPage);
    const std::size_t n = std::min<std::size_t>(len - pos, kPage - in_page);
    read_page(ctx, di, foff / kPage, in_page, n, out.data() + pos);
    pos += n;
  }
  return len;
}

void NovaFs::fsync(ThreadCtx& ctx, int) {
  // NOVA writes are synchronous by construction.
  ctx.advance_by(opt_.costs.fsync_syscall);
}

std::uint64_t NovaFs::size(ThreadCtx& ctx, int ino) {
  (void)ctx;
  return inodes_[static_cast<unsigned>(ino)].size;
}

void NovaFs::clean_log(ThreadCtx& ctx, unsigned ino) {
  // Log cleaner: merge overlays into pages (embedded data becomes dead),
  // then rewrite the log as pure kWrite entries and free the old pages.
  ++cleanings_;
  DInode& di = inodes_[ino];
  // Merge every page that still has live embedded data.
  std::vector<std::uint64_t> to_merge;
  for (const auto& [idx, ps] : di.pages)
    if (!ps.overlays.empty()) to_merge.push_back(idx);
  for (std::uint64_t idx : to_merge) cow_page(ctx, ino, idx, {}, 0);

  // Collect the old log pages.
  std::vector<std::uint64_t> old_pages;
  for (std::uint64_t lp = di.log_head; lp != 0;) {
    old_pages.push_back(lp);
    lp = ns_.load_pod<std::uint64_t>(ctx, lp);
  }

  // Build the replacement log fully (entries persisted, head persist
  // suppressed), then switch the inode's log_head atomically. A crash
  // before the switch leaves the old log authoritative; the orphaned new
  // chain is reclaimed by mount's reachability scan.
  di.log_head = 0;
  di.log_tail = 0;
  di.log_page_count = 0;
  suppress_head_persist_ = true;
  for (const auto& [idx, ps] : di.pages) {
    if (ps.page_off == 0) continue;
    LogEntry e{};
    e.magic_type = kEntryMagic | kWrite;
    e.total_len = entry_len(0);
    e.foff = idx * kPage;
    e.page = ps.page_off;
    e.new_size = di.size;
    log_append(ctx, ino, e, {});
  }
  suppress_head_persist_ = false;
  pmem::store_persist_pod(ctx, ns_,
                          inode_off(ino) + offsetof(PInode, log_head),
                          di.log_head);
  for (std::uint64_t lp : old_pages) free_page(lp);
}

void NovaFs::rebuild_dir_log(ThreadCtx& ctx) {
  // Directory analogue of clean_log(): re-emit a dirent per live name
  // into a fresh chain, switch the head atomically, free the old pages.
  DInode& di = inodes_[0];
  std::vector<std::uint64_t> old_pages;
  try {
    for (std::uint64_t lp = di.log_head; lp != 0;) {
      old_pages.push_back(lp);
      lp = ns_.load_pod<std::uint64_t>(ctx, lp);
    }
  } catch (const hw::MediaError&) {
    // Unreachable tail: reclaimed by the next mount's scan instead.
  }
  di.log_head = 0;
  di.log_tail = 0;
  di.log_page_count = 0;
  suppress_head_persist_ = true;
  for (const auto& [name, ino] : namei_)
    append_dirent(ctx, kDirent, static_cast<unsigned>(ino), name);
  suppress_head_persist_ = false;
  pmem::store_persist_pod(ctx, ns_,
                          inode_off(0) + offsetof(PInode, log_head),
                          di.log_head);
  for (const std::uint64_t lp : old_pages) free_page(lp);
}

void NovaFs::repair(ThreadCtx& ctx) {
  const auto bad = ns_.platform().ars(ns_, 0, ns_.size());
  if (bad.empty()) return;
  const std::set<std::uint64_t> bad_lines(bad.begin(), bad.end());
  std::set<std::uint64_t> bad_pages;
  for (const std::uint64_t b : bad)
    if (b >= data_start_) bad_pages.insert(b / kPage * kPage);

  // Which inodes own damaged pages? Log pages via the chains, data pages
  // and overlays via the replayed DRAM maps.
  std::set<unsigned> log_damaged;
  std::set<unsigned> data_damaged;
  for (unsigned ino = 0; ino < kMaxInodes; ++ino) {
    DInode& di = inodes_[ino];
    if (!di.in_use) continue;
    try {
      for (std::uint64_t lp = di.log_head; lp != 0;) {
        if (bad_pages.count(lp) != 0) log_damaged.insert(ino);
        lp = ns_.load_pod<std::uint64_t>(ctx, lp);
      }
    } catch (const hw::MediaError&) {
      log_damaged.insert(ino);
    }
    for (auto& [idx, ps] : di.pages) {
      if (ps.page_off != 0) {
        for (std::uint64_t l = ps.page_off; l < ps.page_off + kPage;
             l += hw::Platform::kXpLineBytes) {
          if (bad_lines.count(l) != 0) {
            data_damaged.insert(ino);
            break;
          }
        }
      }
      // Drop overlays whose embedded bytes sit on a bad line: the base
      // page's older content wins, which is historical — never garbage.
      auto& ov = ps.overlays;
      const auto old_n = ov.size();
      ov.erase(std::remove_if(ov.begin(), ov.end(),
                              [&](const Embed& e) {
                                for (std::uint64_t l =
                                         e.data_off &
                                         ~(hw::Platform::kXpLineBytes - 1);
                                     l < e.data_off + e.len;
                                     l += hw::Platform::kXpLineBytes)
                                  if (bad_lines.count(l) != 0) return true;
                                return false;
                              }),
               ov.end());
      if (ov.size() != old_n) data_damaged.insert(ino);
    }
  }

  // Scrub everything, then rebuild the damaged logs from DRAM state so a
  // later remount replays an intact chain instead of stopping at zeros.
  for (const std::uint64_t b : bad) scrub_line(ctx, b);
  for (const unsigned ino : log_damaged) {
    if (ino == 0)
      rebuild_dir_log(ctx);
    else
      clean_log(ctx, ino);
  }
  for (const unsigned ino : data_damaged)
    recovery_.inodes_damaged.push_back(ino);
  for (const unsigned ino : log_damaged)
    if (data_damaged.count(ino) == 0)
      recovery_.inodes_damaged.push_back(ino);
}

Status NovaFs::fsck(ThreadCtx& ctx) {
  try {
    const std::string err = fsck_impl(ctx);
    if (err.empty()) return Status::Ok();
    return Status::Corruption(err);
  } catch (const hw::MediaError& e) {
    return Status::MediaFault(e.what());
  }
}

std::string NovaFs::fsck_impl(ThreadCtx& ctx) {
  const auto s = ns_.load_pod<Super>(ctx, 0);
  if (s.magic != kMagic) return "super: bad magic";
  if (s.fs_size != ns_.size()) return "super: fs_size mismatch";
  if (s.data_start != data_start_ || s.data_start % kPage != 0)
    return "super: bad data_start";

  // Page ownership map: every data-area page has at most one role and at
  // most one owner. 0 = free, 'L' = log page, 'D' = base data page.
  const std::uint64_t npages = (ns_.size() - data_start_) / kPage;
  std::vector<char> role(npages, 0);
  std::vector<unsigned> owner(npages, 0);
  auto claim = [&](std::uint64_t off, char r, unsigned ino) -> std::string {
    if (off < data_start_ || off % kPage != 0 ||
        (off - data_start_) / kPage >= npages)
      return "inode " + std::to_string(ino) + ": page ref @" +
             std::to_string(off) + " outside data area";
    const std::uint64_t i = (off - data_start_) / kPage;
    if (role[i] != 0)
      return "page @" + std::to_string(off) + ": claimed as " + role[i] +
             " by inode " + std::to_string(owner[i]) + " and as " + r +
             " by inode " + std::to_string(ino);
    role[i] = r;
    owner[i] = ino;
    return "";
  };

  for (unsigned ino = 0; ino < kMaxInodes; ++ino) {
    const auto pi = ns_.load_pod<PInode>(ctx, inode_off(ino));
    if (pi.in_use == 0) continue;
    const std::string tag = "inode " + std::to_string(ino);

    // Log chain: in-bounds, acyclic (claim() rejects the second visit of
    // a page), every entry well formed up to the first invalid magic.
    std::uint64_t pages_seen = 0;
    for (std::uint64_t lp = pi.log_head; lp != 0;) {
      if (std::string err = claim(lp, 'L', ino); !err.empty())
        return tag + " log: " + err;
      if (++pages_seen > npages) return tag + " log: cycle";
      lp = ns_.load_pod<std::uint64_t>(ctx, lp);
    }
    if (pi.log_head == 0) continue;
    std::uint64_t pos = pi.log_head + kLogDataStart;
    while (true) {
      const auto e = ns_.load_pod<LogEntry>(ctx, pos);
      if ((e.magic_type & 0xFFFF0000u) != kEntryMagic) break;
      const std::uint32_t type = e.magic_type & 0xFFFFu;
      if (type == kEndOfPage) {
        const auto next =
            ns_.load_pod<std::uint64_t>(ctx, pos / kPage * kPage);
        if (next == 0) break;  // torn page link: end of log
        pos = next + kLogDataStart;
        continue;
      }
      if (type != kWrite && type != kEmbed && type != kDirent &&
          type != kDirentDel && type != kSetSize)
        return tag + ": bad entry type " + std::to_string(type) + " @" +
               std::to_string(pos);
      const std::uint32_t footer = opt_.log_checksum ? 8u : 0u;
      if (e.total_len < sizeof(LogEntry) + footer || e.total_len % 8 != 0 ||
          pos % kPage + e.total_len + 8 > kPage)
        return tag + ": bad entry length @" + std::to_string(pos);
      if (type == kEmbed &&
          sizeof(LogEntry) + e.page + footer > e.total_len)
        return tag + ": embed payload overruns entry @" +
               std::to_string(pos);
      if (opt_.log_checksum && !entry_crc_ok(ctx, pos, e))
        return tag + ": entry crc mismatch @" + std::to_string(pos);
      pos += e.total_len;
    }
  }

  // Replayed references (built by mount): base pages owned exactly once
  // and never inside a log; embedded extents inside this inode's own log.
  for (unsigned ino = 0; ino < kMaxInodes; ++ino) {
    const DInode& di = inodes_[ino];
    if (!di.in_use) continue;
    const std::string tag = "inode " + std::to_string(ino);
    for (const auto& [idx, ps] : di.pages) {
      if (ps.page_off != 0) {
        if (std::string err = claim(ps.page_off, 'D', ino); !err.empty())
          return tag + " data: " + err;
      }
      for (const Embed& em : ps.overlays) {
        const std::uint64_t host = em.data_off / kPage * kPage;
        if (host < data_start_ ||
            (host - data_start_) / kPage >= npages ||
            role[(host - data_start_) / kPage] != 'L' ||
            owner[(host - data_start_) / kPage] != ino)
          return tag + ": embedded extent @" + std::to_string(em.data_off) +
                 " not inside this inode's log";
      }
    }
  }
  return "";
}

std::size_t NovaFs::log_pages(int ino) const {
  return inodes_[static_cast<unsigned>(ino)].log_page_count;
}

std::size_t NovaFs::overlay_count(int ino) const {
  std::size_t n = 0;
  for (const auto& [idx, ps] : inodes_[static_cast<unsigned>(ino)].pages)
    n += ps.overlays.size();
  return n;
}

}  // namespace xp::nova
