// Minimal file-system interface shared by the NOVA reimplementation and
// the DAX comparators, plus the common kernel-crossing cost model.
//
// All implementations are driven by simulated threads and store real
// bytes in a PmemNamespace, so tests can verify data integrity and crash
// behavior, and FIO (src/fio) can drive any of them.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "sim/simtime.h"
#include "xpsim/platform.h"

namespace xp::nova {

using hw::PmemNamespace;
using sim::ThreadCtx;

// Per-syscall CPU costs (user/kernel crossing + VFS path); the paper's
// file-IO latencies include them on every file system.
struct FsCosts {
  sim::Time write_syscall = sim::ns(500);
  sim::Time read_syscall = sim::ns(400);
  sim::Time fsync_syscall = sim::ns(600);
  sim::Time open_syscall = sim::ns(900);
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  // Returns the inode number, or -1 on failure.
  virtual int create(ThreadCtx& ctx, const std::string& name) = 0;
  virtual int open(ThreadCtx& ctx, const std::string& name) = 0;

  // `charge_syscall=false` lets callers (e.g. the FIO engine) split one
  // logical syscall into multiple calls without multiplying the kernel-
  // crossing cost.
  virtual void write(ThreadCtx& ctx, int ino, std::uint64_t off,
                     std::span<const std::uint8_t> data,
                     bool charge_syscall = true) = 0;
  virtual std::size_t read(ThreadCtx& ctx, int ino, std::uint64_t off,
                           std::span<std::uint8_t> out,
                           bool charge_syscall = true) = 0;
  virtual void fsync(ThreadCtx& ctx, int ino) = 0;
  virtual std::uint64_t size(ThreadCtx& ctx, int ino) = 0;

  virtual const char* name() const = 0;
};

}  // namespace xp::nova
