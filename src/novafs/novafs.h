// Mini-NOVA: a log-structured file system for persistent memory
// (Xu & Swanson, FAST'16), with the paper's two optimizations:
//
//  * NOVA-datalog (§5.1.2, Figs 11/12): sub-page writes embed their data
//    in the inode log instead of copy-on-writing a whole 4 KB page,
//    turning small random writes into small *sequential* log appends
//    (EWR ~1 on the XP DIMM) while keeping atomic file updates. The read
//    path merges embedded extents over the base page; a threshold-driven
//    merge bounds read amplification, and the log cleaner tracks
//    embedded-data liveness.
//  * Multi-DIMM awareness (§5.3.1, Fig 17): the page allocator can pin
//    each thread's allocations to one interleave channel so writers don't
//    contend for the same DIMM's WPQ.
//
// Design mirrors NOVA: persistent state is the superblock, the inode
// table, per-inode logs (4 KB log pages linked by next pointers), and
// data pages; everything else (namei, per-file page maps, the allocator)
// lives in DRAM and is rebuilt by log replay on mount. The commit point
// of every operation is the 8-byte persist of the inode's log tail.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "novafs/vfs.h"
#include "pmemlib/linebatch.h"
#include "pmemlib/linereader.h"
#include "sim/status.h"

namespace xp::nova {

enum class AllocPolicy {
  kSpread,  // first-free page: files stripe across all DIMMs (stock NOVA)
  kPinned,  // per-thread channel pinning (multi-DIMM aware NOVA)
};

struct NovaOptions {
  bool datalog = false;        // enable embedded sub-page writes
  AllocPolicy alloc = AllocPolicy::kSpread;
  unsigned merge_threshold = 32;  // overlays per page before a merge
  unsigned clean_threshold = 256; // log pages per inode before cleaning
  // Append an 8-byte CRC32C footer to every log entry and verify it on
  // replay/fsck; a mismatch truncates the log at the damage point. Off by
  // default so the stock entry format and timing are unchanged.
  bool log_checksum = false;
  // Coalesce multi-entry log appends (multi-segment writes, rename) into
  // one contiguous burst per inode log: a single terminator + fence pair
  // and one tail persist for the whole batch instead of per entry
  // (§5.1/§5.2). The batch commits atomically — replay sees all of its
  // entries or none — which is also what makes rename() atomic. Off by
  // default so the stock entry-at-a-time path and timing are unchanged.
  bool batch_log_appends = false;
  // ---- Read path (§5.1), both off by default so the stock read behavior
  // ---- and timing are unchanged -----------------------------------------
  // XPLine-granular read combining: mount's log replay stages each 4 KB
  // log page as one line-aligned burst and walks its entries out of DRAM
  // (instead of a dependent 32 B load per entry), and read() fetches page
  // data and overlay extents as whole-line spans through a
  // pmem::LineReader.
  bool read_combine = false;
  // DRAM read-cache capacity in 256 B lines (0 = no cache; 4096 = 1 MiB).
  // Backs the LineReader — effective only with read_combine — so hot
  // log-page headers and data lines are re-served from DRAM with no DIMM
  // traffic. Volatile: empties on remount like any DRAM cache.
  std::size_t read_cache_lines = 0;
  FsCosts costs{};
};

class NovaFs final : public FileSystem {
 public:
  static constexpr std::uint64_t kPageSize = 4096;
  static constexpr unsigned kMaxInodes = 4096;

  NovaFs(PmemNamespace& ns, NovaOptions options)
      : ns_(ns), opt_(options) {}

  // Write a fresh file system.
  void format(ThreadCtx& ctx);
  // Mount after restart/crash: replays every inode log. Returns false if
  // the namespace holds no NOVA file system.
  //
  // Media-error tolerant: a poisoned superblock falls back to the backup
  // copy; a poisoned inode-table line loses (and reports) the up-to-4
  // inodes on it; a log that stops replaying (poison or checksum failure)
  // is truncated at the damage point. Everything is reported through
  // recovery() — committed data can be lost to bad media, but never
  // silently.
  bool mount(ThreadCtx& ctx);

  // What mount()/repair() had to do about damaged media.
  struct RecoveryInfo {
    bool super_restored = false;          // superblock rebuilt from backup
    std::vector<unsigned> inodes_lost;    // inode-table line poisoned
    std::vector<unsigned> logs_truncated; // replay stopped early
    std::vector<unsigned> inodes_damaged; // data/overlay bytes lost
    std::vector<std::string> dirents_dropped;  // named a lost inode
    std::vector<std::uint64_t> scrubbed_lines;
    std::string detail;
    bool damaged() const {
      return super_restored || !inodes_lost.empty() ||
             !logs_truncated.empty() || !inodes_damaged.empty() ||
             !dirents_dropped.empty();
    }
  };
  const RecoveryInfo& recovery() const { return recovery_; }

  // Scrub every remaining poisoned line: overlays hosted on bad lines are
  // dropped (the base page's older bytes win), inodes with damaged pages
  // or logs are reported, and damaged logs are rebuilt from the replayed
  // DRAM state so a later remount sees an intact log. Reads after
  // repair() never raise MediaError and never return unreported garbage.
  void repair(ThreadCtx& ctx);

  int create(ThreadCtx& ctx, const std::string& name) override;
  int open(ThreadCtx& ctx, const std::string& name) override;
  // Remove a file: its pages and log are reclaimed; the removal is
  // logged in the directory so it survives remount. Returns false if the
  // name does not exist.
  bool unlink(ThreadCtx& ctx, const std::string& name);
  // Rename `from` to `to`, replacing `to` if it exists. With
  // batch_log_appends the deletion and insertion dirents commit as one
  // atomic directory-log batch (a crash never loses or doubles the
  // name); without it they are two sequential appends, and a crash
  // between them can leave the file reachable under neither name.
  // Returns false if `from` does not exist.
  bool rename(ThreadCtx& ctx, const std::string& from, const std::string& to);
  // Shrink or extend the file. Shrinking discards data beyond new_size
  // (re-extension reads zeros); extension is a metadata-only size bump.
  void truncate(ThreadCtx& ctx, int ino, std::uint64_t new_size);
  void write(ThreadCtx& ctx, int ino, std::uint64_t off,
             std::span<const std::uint8_t> data,
             bool charge_syscall = true) override;
  std::size_t read(ThreadCtx& ctx, int ino, std::uint64_t off,
                   std::span<std::uint8_t> out,
                   bool charge_syscall = true) override;
  void fsync(ThreadCtx& ctx, int ino) override;
  std::uint64_t size(ThreadCtx& ctx, int ino) override;
  const char* name() const override {
    return opt_.datalog ? "nova-datalog" : "nova";
  }

  // Recovery invariants (crashmc checker entry point). Call after mount():
  // validates the superblock, every in-use inode's log chain (in-bounds,
  // acyclic, well-formed entries, checksums when enabled) and page
  // ownership — no data page referenced twice, no page serving as both
  // log and data, embedded extents inside their own inode's log.
  Status fsck(ThreadCtx& ctx);

  // Introspection for tests/benches.
  std::size_t log_pages(int ino) const;
  std::size_t overlay_count(int ino) const;
  std::uint64_t cleanings() const { return cleanings_; }

  // Directory listing (name -> inode, name order). The name index is
  // DRAM state rebuilt by mount; exposing it read-only lets the workload
  // layer's KV adapter implement ordered scans over file names.
  const std::map<std::string, int>& names() const { return namei_; }

 private:
  // ---- persistent layout -------------------------------------------------
  struct Super {
    std::uint64_t magic;
    std::uint64_t fs_size;
    std::uint64_t inode_table;
    std::uint64_t data_start;
  };
  struct PInode {  // 64 bytes in the inode table
    std::uint64_t in_use;
    std::uint64_t log_head;  // first log page (ns offset), 0 = none
    std::uint64_t log_tail;  // ns offset just past the last valid entry
    std::uint64_t size;      // advisory; authoritative size from replay
    std::uint64_t pad[4];
  };
  struct LogEntry {  // 32-byte header
    std::uint32_t magic_type;  // kEntryMagic | type
    std::uint32_t total_len;   // header + payload, 8-aligned
    std::uint64_t foff;        // file offset
    std::uint64_t page;        // kWrite: data page ns offset
    std::uint64_t new_size;    // file size after this entry
  };
  static constexpr std::uint64_t kMagic = 0x4e4f56414653ULL;  // "NOVAFS"
  static constexpr std::uint32_t kEntryMagic = 0x4e560000;
  enum EntryType : std::uint32_t {
    kWrite = 1,
    kEmbed = 2,
    kDirent = 3,     // payload: u32 target ino, u32 namelen, name chars
    kDirentDel = 4,  // same payload; removes the mapping
    kSetSize = 5,    // new_size is authoritative; pages beyond are dead
    kEndOfPage = 0xF,
  };
  static constexpr std::uint64_t kLogDataStart = 16;  // after page header
  // Redundant superblock copy, written at format() time; the primary's
  // line going bad must not take the whole file system with it.
  static constexpr std::uint64_t kSuperBackupOff = 2048;

  // ---- DRAM state ---------------------------------------------------------
  struct Embed {
    std::uint64_t data_off;  // ns offset of embedded bytes (inside a log)
    std::uint32_t in_page;
    std::uint32_t len;
  };
  struct PageState {
    std::uint64_t page_off = 0;  // 0 = hole (zeros)
    std::vector<Embed> overlays;
  };
  struct DInode {
    bool in_use = false;
    std::uint64_t size = 0;
    std::uint64_t log_head = 0;
    std::uint64_t log_tail = 0;
    std::size_t log_page_count = 0;
    std::unordered_map<std::uint64_t, PageState> pages;
  };

  // Inode table starts at the second 4 KB block.
  std::uint64_t inode_off(unsigned ino) const {
    return 4096 + ino * sizeof(PInode);
  }

  std::uint64_t alloc_page(ThreadCtx& ctx);
  void free_page(std::uint64_t off);

  // Append one log entry (+payload); persists entry then tail. Returns
  // the ns offset of the entry.
  std::uint64_t log_append(ThreadCtx& ctx, unsigned ino, const LogEntry& e,
                           std::span<const std::uint8_t> payload);

  // Batched variant (batch_log_appends): append several entries to one
  // inode's log as coalesced bursts — the batch is split into chunks of
  // consecutive entries sized to the log page, each chunk getting one
  // terminator + fence pair, with one tail persist for the whole batch.
  // Crash-atomic per chunk: a chunk's first magic word is persisted
  // after everything else in it, so replay sees a durable prefix of
  // whole chunks, never a torn entry. Returns each entry's ns offset,
  // in order.
  struct PendingEntry {
    LogEntry e;
    std::span<const std::uint8_t> payload;
  };
  std::vector<std::uint64_t> log_append_batch(
      ThreadCtx& ctx, unsigned ino, std::span<const PendingEntry> entries);

  // Make room in `ino`'s log for `needed` more bytes (+terminator):
  // allocates and links a fresh log page when the current one is full.
  void ensure_log_space(ThreadCtx& ctx, unsigned ino, std::uint32_t needed);

  void replay_inode(ThreadCtx& ctx, unsigned ino);
  void apply_entry(ThreadCtx& ctx, unsigned ino, std::uint64_t entry_off,
                   const LogEntry& e, bool during_replay);

  // Copy-on-write the page containing file offset `page_idx*4K`, merging
  // current overlays and the optional new segment.
  void cow_page(ThreadCtx& ctx, unsigned ino, std::uint64_t page_idx,
                std::span<const std::uint8_t> seg, std::size_t seg_in_page);

  void read_page(ThreadCtx& ctx, DInode& di, std::uint64_t page_idx,
                 std::size_t begin, std::size_t len, std::uint8_t* out);

  void clean_log(ThreadCtx& ctx, unsigned ino);
  void release_inode_storage(ThreadCtx& ctx, unsigned ino);
  std::uint64_t append_dirent(ThreadCtx& ctx, EntryType type,
                              unsigned target_ino, const std::string& name);

  // Total entry length for `payload` bytes (header + payload, 8-aligned,
  // plus the optional checksum footer).
  std::uint32_t entry_len(std::size_t payload) const {
    return static_cast<std::uint32_t>(
               (sizeof(LogEntry) + payload + 7) / 8 * 8) +
           (opt_.log_checksum ? 8u : 0u);
  }
  bool entry_crc_ok(ThreadCtx& ctx, std::uint64_t pos, const LogEntry& e);
  void scrub_line(ThreadCtx& ctx, std::uint64_t line_off);
  // End the log durably at `pos` after media damage: scrub the page's bad
  // lines, write a terminator, persist the tail hint, and report it.
  void truncate_log_at(ThreadCtx& ctx, unsigned ino, std::uint64_t pos,
                       const std::string& why);
  // Rebuild the directory log (inode 0) from the in-DRAM namei map; the
  // file-log equivalent is clean_log().
  void rebuild_dir_log(ThreadCtx& ctx);
  std::string fsck_impl(ThreadCtx& ctx);
  // Construct the per-format/mount read-path state (fresh LineReader and,
  // if configured, the DRAM line cache). No-op beyond the reset with the
  // read knobs off.
  void init_read_path();

  PmemNamespace& ns_;
  NovaOptions opt_;
  std::uint64_t data_start_ = 0;
  std::vector<std::uint64_t> free_pages_;  // LIFO, kSpread policy
  std::vector<std::vector<std::uint64_t>> free_by_channel_;  // kPinned
  std::map<std::string, int> namei_;
  std::vector<DInode> inodes_;
  std::uint64_t cleanings_ = 0;
  RecoveryInfo recovery_;
  // Set while the cleaner rebuilds a log so the atomic head switch can
  // happen once, after the whole replacement chain is persisted.
  bool suppress_head_persist_ = false;
  pmem::LineBatcher batch_;  // reused staging for log_append_batch
  // ---- read-path state (NovaOptions::read_combine), idle when off --------
  std::unique_ptr<pmem::ReadCache> rcache_;
  pmem::LineReader lreader_;
};

}  // namespace xp::nova
