#include "fio/fio.h"

#include <algorithm>
#include <string>
#include <vector>

#include "sim/scheduler.h"

namespace xp::fio {

namespace {
bool is_write(Rw rw) { return rw == Rw::kSeqWrite || rw == Rw::kRandWrite; }
bool is_rand(Rw rw) { return rw == Rw::kRandRead || rw == Rw::kRandWrite; }
}  // namespace

Result run(hw::Platform& platform, nova::FileSystem& fs, const Job& job) {
  // ---- setup (untimed): create and pre-fill the per-job files ----------
  std::vector<int> files(job.numjobs);
  {
    std::vector<std::uint8_t> block(job.block_size, 0x66);
    for (unsigned j = 0; j < job.numjobs; ++j) {
      // Each job lays out its own file (so allocation policies that key
      // on the writing thread — multi-DIMM pinning — see the real owner).
      sim::ThreadCtx setup({.id = j, .socket = 0, .mlp = 16, .seed = 11});
      files[j] = fs.create(setup, "fio." + std::to_string(j));
      for (std::uint64_t off = 0; off + job.block_size <= job.file_size;
           off += job.block_size)
        fs.write(setup, files[j], off, block);
    }
  }
  platform.reset_timing();

  // ---- measurement -------------------------------------------------------
  struct JobState {
    std::uint64_t cursor = 0;
    std::uint64_t ops = 0;
    std::uint64_t bytes = 0;
    sim::Histogram latency;
    std::vector<std::uint8_t> buf;
    // In-progress (chunked) op: large blocks run <=4 KB per scheduler
    // step so one job's 64 KB IO doesn't execute atomically ahead of the
    // other jobs.
    bool op_active = false;
    std::uint64_t op_off = 0;
    std::size_t op_pos = 0;
    sim::Time op_start = 0;
  };
  std::vector<JobState> states(job.numjobs);
  for (unsigned j = 0; j < job.numjobs; ++j) {
    states[j].buf.assign(job.block_size,
                         static_cast<std::uint8_t>(0x10 + j));
    states[j].cursor =
        (job.seed * (j + 1) * 2654435761ULL) %
        (job.file_size / job.block_size) * job.block_size;
  }

  const sim::Time window_start = job.warmup;
  const sim::Time window_end = job.warmup + job.runtime;
  const std::uint64_t blocks = job.file_size / job.block_size;

  sim::Scheduler sched;
  for (unsigned j = 0; j < job.numjobs; ++j) {
    JobState* st = &states[j];
    const int fd = files[j];
    sim::ThreadCtx::Options opts;
    opts.id = j;
    opts.socket = 0;
    opts.mlp = job.sync_engine
                   ? platform.timing().default_mlp
                   : platform.timing().default_mlp * std::max(1u, job.iodepth);
    opts.seed = job.seed * 31 + j;
    sched.spawn(opts, [&, st, fd](sim::ThreadCtx& ctx) -> bool {
      constexpr std::size_t kStepChunk = 4096;
      if (!st->op_active) {
        if (ctx.now() >= window_end) return false;
        if (is_rand(job.rw)) {
          st->op_off = ctx.rng().uniform(blocks) * job.block_size;
        } else {
          st->op_off = st->cursor;
          st->cursor += job.block_size;
          if (st->cursor + job.block_size > job.file_size) st->cursor = 0;
        }
        st->op_pos = 0;
        st->op_start = ctx.now();
        st->op_active = true;
      }
      const std::size_t n =
          std::min(kStepChunk, job.block_size - st->op_pos);
      const bool first = st->op_pos == 0;
      if (is_write(job.rw)) {
        fs.write(ctx, fd, st->op_off + st->op_pos,
                 std::span<const std::uint8_t>(st->buf.data() + st->op_pos,
                                               n),
                 first);
      } else {
        fs.read(ctx, fd, st->op_off + st->op_pos,
                std::span<std::uint8_t>(st->buf.data() + st->op_pos, n),
                first);
      }
      st->op_pos += n;
      if (st->op_pos < job.block_size) return true;

      st->op_active = false;
      if (is_write(job.rw) && job.sync_engine) fs.fsync(ctx, fd);
      if (job.sync_engine) ctx.drain();  // psync: op completes before next
      const sim::Time end = ctx.now();
      if (st->op_start >= window_start && end <= window_end) {
        ++st->ops;
        st->bytes += job.block_size;
        st->latency.record(end - st->op_start);
      }
      return true;
    });
  }
  sched.run();

  Result r;
  for (auto& st : states) {
    r.ops += st.ops;
    r.bytes += st.bytes;
    r.latency.merge(st.latency);
  }
  r.bandwidth_gbps = sim::gbps(r.bytes, job.runtime);
  return r;
}

}  // namespace xp::fio
