// FIO-style workload generator over the FileSystem interface (paper Fig 17).
//
// Each job is one simulated thread with a private file (FIO's default
// file-per-job). Supports the four classic patterns (seq/rand x
// read/write) and two engines: `sync` (psync: one op at a time, fsync per
// write) and `async` (libaio-style: no per-op fsync, deeper device
// pipelining per thread).
#pragma once

#include <cstdint>

#include "novafs/vfs.h"
#include "sim/histogram.h"

namespace xp::fio {

enum class Rw { kSeqRead, kRandRead, kSeqWrite, kRandWrite };

struct Job {
  Rw rw = Rw::kSeqWrite;
  std::size_t block_size = 4096;
  std::uint64_t file_size = 16 << 20;
  unsigned numjobs = 1;
  bool sync_engine = true;   // psync (fsync per write) vs libaio
  unsigned iodepth = 1;      // async engine pipelining (thread MLP boost)
  sim::Time runtime = sim::ms(2);
  sim::Time warmup = sim::us(50);
  std::uint64_t seed = 7;
};

struct Result {
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
  double bandwidth_gbps = 0.0;
  sim::Histogram latency;
};

// Pre-creates (and for reads pre-fills) one file per job, then runs the
// measurement window. `platform` is needed to reset reservation state
// after the untimed setup phase.
Result run(hw::Platform& platform, nova::FileSystem& fs, const Job& job);

}  // namespace xp::fio
