// Example: the mini-NOVA file system and the datalog optimization.
//
// Formats NOVA on an Optane namespace, demonstrates atomic small writes,
// crash-remount, and the paper's §5.1.2 point: embedding sub-page writes
// in the log makes 64 B random overwrites several times faster.
//
// Build & run:  build/examples/fsdemo
#include <cstdio>
#include <string>
#include <vector>

#include "novafs/novafs.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

double overwrite_latency_us(hw::Platform& platform, bool datalog) {
  auto& ns = platform.optane(512 << 20);
  nova::NovaOptions o;
  o.datalog = datalog;
  nova::NovaFs fs(ns, o);
  sim::ThreadCtx t({.id = 0, .socket = 0, .mlp = 16, .seed = 5});
  fs.format(t);
  const int f = fs.create(t, "hotfile");
  std::vector<std::uint8_t> mb(1 << 20, 0x11);
  fs.write(t, f, 0, mb);

  platform.reset_timing();
  sim::ThreadCtx m({.id = 1, .socket = 0, .mlp = 16, .seed = 6});
  std::vector<std::uint8_t> small(64, 0x22);
  sim::Rng rng(3);
  const int n = 400;
  const sim::Time t0 = m.now();
  for (int i = 0; i < n; ++i)
    fs.write(m, f, rng.uniform((1 << 20) / 64) * 64, small);
  return sim::to_us(m.now() - t0) / n;
}

}  // namespace

int main() {
  using namespace xp;
  hw::Platform platform;

  // --- basic usage + crash ----------------------------------------------
  auto& ns = platform.optane(512 << 20);
  nova::NovaOptions opts;
  opts.datalog = true;
  sim::ThreadCtx t({.id = 0, .socket = 0, .mlp = 16, .seed = 1});
  {
    nova::NovaFs fs(ns, opts);
    fs.format(t);
    const int f = fs.create(t, "journal.txt");
    const std::string line = "every write here is crash-atomic\n";
    fs.write(t, f, 0,
             std::span<const std::uint8_t>(
                 reinterpret_cast<const std::uint8_t*>(line.data()),
                 line.size()));
    std::printf("wrote %zu bytes, then the power fails...\n", line.size());
    platform.crash();
  }
  {
    nova::NovaFs fs(ns, opts);
    fs.mount(t);  // log replay
    const int f = fs.open(t, "journal.txt");
    std::vector<std::uint8_t> out(64);
    const std::size_t got = fs.read(t, f, 0, out);
    std::printf("after remount: %zu bytes -> %.*s", got,
                static_cast<int>(got),
                reinterpret_cast<const char*>(out.data()));
  }

  // --- the datalog speedup ----------------------------------------------
  hw::Platform p2, p3;
  const double cow = overwrite_latency_us(p2, /*datalog=*/false);
  const double datalog = overwrite_latency_us(p3, /*datalog=*/true);
  std::printf("\n64 B random overwrite latency:\n");
  std::printf("  NOVA (4 KB copy-on-write): %6.2f us\n", cow);
  std::printf("  NOVA-datalog (embedded):   %6.2f us  (%.1fx faster)\n",
              datalog, cow / datalog);
  return 0;
}
