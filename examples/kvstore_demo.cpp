// Example: the mini-RocksDB on persistent memory.
//
// Creates a store with the FLEX write-ahead log, loads data, kills the
// power mid-run, recovers, and prints the paper's Fig 8 comparison of
// the three persistence strategies on this device.
//
// Build & run:  build/examples/kvstore_demo
#include <cstdio>
#include <string>

#include "lsmkv/db.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

double set_kops(hw::PmemNamespace& ns, kv::WalMode wal,
                kv::MemtableMode mem) {
  sim::ThreadCtx t({.id = 0, .socket = 0, .mlp = 16, .seed = 7});
  kv::DbOptions o;
  o.wal = wal;
  o.memtable = mem;
  kv::Db db(ns, o);
  db.create(t);
  const std::string value(100, 'v');
  const int n = 5000;
  const sim::Time t0 = t.now();
  for (int i = 0; i < n; ++i)
    db.put(t, "user" + std::to_string(i * 37 % 100000), value);
  return n / sim::to_s(t.now() - t0) / 1e3;
}

}  // namespace

int main() {
  using namespace xp;
  hw::Platform platform;

  // --- everyday usage + crash recovery ---------------------------------
  {
    hw::PmemNamespace& ns = platform.optane(1ull << 30);
    sim::ThreadCtx t({.id = 0, .socket = 0, .mlp = 16, .seed = 1});
    kv::Db db(ns, kv::DbOptions{});  // FLEX WAL + volatile memtable
    db.create(t);

    db.put(t, "language", "C++20");
    db.put(t, "paper", "FAST'20 empirical guide");
    db.del(t, "language");

    std::printf("power failure mid-run...\n");
    platform.crash();

    kv::Db recovered(ns, kv::DbOptions{});
    recovered.open(t);  // replays the WAL
    std::string v;
    std::printf("paper    -> %s\n",
                recovered.get(t, "paper", &v) ? v.c_str() : "(missing!)");
    std::printf("language -> %s (deleted before the crash)\n",
                recovered.get(t, "language", &v) ? v.c_str() : "(gone)");
  }

  // --- the Fig 8 strategy comparison on this device ---------------------
  std::printf("\nSET throughput on simulated Optane (KOps/s):\n");
  std::printf("  WAL (POSIX file):     %7.0f\n",
              set_kops(platform.optane(1ull << 30), kv::WalMode::kPosix,
                       kv::MemtableMode::kVolatile));
  std::printf("  WAL (FLEX):           %7.0f\n",
              set_kops(platform.optane(1ull << 30), kv::WalMode::kFlex,
                       kv::MemtableMode::kVolatile));
  std::printf("  persistent skiplist:  %7.0f\n",
              set_kops(platform.optane(1ull << 30), kv::WalMode::kNone,
                       kv::MemtableMode::kPersistent));
  std::printf("(on DRAM-backed pmem the persistent skiplist would win — "
              "run bench/fig08_rocksdb for the full comparison)\n");
  return 0;
}
