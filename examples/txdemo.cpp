// Example: crash-consistent transactions with the mini-PMDK.
//
// A bank-transfer toy: two persistent account balances updated in a
// transaction. We inject a power failure between the two updates and
// show that recovery rolls the half-done transfer back.
//
// Build & run:  build/examples/txdemo
#include <cstdio>

#include "pmemlib/pool.h"
#include "xpsim/platform.h"

int main() {
  using namespace xp;
  hw::Platform platform;
  hw::PmemNamespace& ns = platform.optane(64 << 20);
  sim::ThreadCtx t({.id = 0, .socket = 0, .mlp = 16, .seed = 1});

  pmem::Pool pool(ns);
  pool.create(t, /*root_size=*/16);  // two u64 balances
  const std::uint64_t root = pool.root(t);

  auto write_balance = [&](int slot, std::uint64_t v, pmem::Tx& tx) {
    tx.add(root + slot * 8, 8);
    tx.store(root + slot * 8,
             std::span<const std::uint8_t>(
                 reinterpret_cast<const std::uint8_t*>(&v), 8));
  };
  auto balance = [&](int slot) {
    return ns.load_pod<std::uint64_t>(t, root + slot * 8);
  };

  // Initial balances, committed.
  {
    pmem::Tx tx(pool, t);
    write_balance(0, 1000, tx);
    write_balance(1, 0, tx);
    tx.commit();
  }
  std::printf("before transfer: A=%llu B=%llu\n",
              static_cast<unsigned long long>(balance(0)),
              static_cast<unsigned long long>(balance(1)));

  // Transfer 400 from A to B — power dies between the two updates.
  {
    pmem::Tx tx(pool, t);
    write_balance(0, 600, tx);
    std::printf("debited A... and the power fails here.\n");
    platform.crash();
    tx.release();  // the process is gone; no destructor rollback
  }

  // Recovery: open() rolls back the interrupted lane.
  pmem::Pool recovered(ns);
  recovered.open(t);
  std::printf("after recovery:  A=%llu B=%llu  (all-or-nothing: the "
              "half-done transfer was rolled back)\n",
              static_cast<unsigned long long>(balance(0)),
              static_cast<unsigned long long>(balance(1)));

  // Retry, completing this time.
  {
    pmem::Tx tx(pool, t);
    write_balance(0, 600, tx);
    write_balance(1, 400, tx);
    tx.commit();
  }
  platform.crash();
  std::printf("after retry + crash: A=%llu B=%llu  (committed work "
              "survives)\n",
              static_cast<unsigned long long>(balance(0)),
              static_cast<unsigned long long>(balance(1)));
  return 0;
}
