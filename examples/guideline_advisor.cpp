// Example: measure a device and print the paper's four guidelines with
// the numbers that justify them *on that device*.
//
// Useful as a template for characterizing a new (simulated) memory
// configuration: pass different hw::Timing values and see which
// guidelines still matter (compare bench/abl_* for systematic sweeps).
//
// Build & run:  build/examples/guideline_advisor
#include <cstdio>

#include "lattester/kernels.h"
#include "lattester/runner.h"
#include "xpsim/platform.h"

namespace {

using namespace xp;

lat::Result quick(hw::Platform& platform, hw::PmemNamespace& ns,
                  lat::Op op, lat::Pattern pattern, std::size_t access,
                  unsigned threads, unsigned socket = 0) {
  lat::WorkloadSpec spec;
  spec.op = op;
  spec.pattern = pattern;
  spec.access_size = access;
  spec.threads = threads;
  spec.socket = socket;
  spec.region_size = ns.size();
  spec.duration = sim::ms(1);
  return lat::run(platform, ns, spec);
}

}  // namespace

int main() {
  using namespace xp;
  std::printf("Characterizing the simulated 3D XPoint DIMM...\n\n");

  // Guideline 1: avoid random accesses smaller than 256 B.
  {
    hw::Platform p;
    hw::NamespaceOptions o;
    o.device = hw::Device::kXp;
    o.interleaved = false;
    o.size = 2ull << 30;
    o.discard_data = true;
    auto& ns = p.add_namespace(o);
    const lat::Result small =
        quick(p, ns, lat::Op::kNtStore, lat::Pattern::kRand, 64, 1);
    const lat::Result line =
        quick(p, ns, lat::Op::kNtStore, lat::Pattern::kRand, 256, 1);
    std::printf("#1 Avoid random accesses < 256 B\n");
    std::printf("   random 64 B stores:  %.2f GB/s at EWR %.2f\n",
                small.bandwidth_gbps, small.ewr);
    std::printf("   random 256 B stores: %.2f GB/s at EWR %.2f\n\n",
                line.bandwidth_gbps, line.ewr);
  }

  // Guideline 2: use ntstore for large transfers.
  {
    hw::Platform p;
    hw::NamespaceOptions o;
    o.device = hw::Device::kXp;
    o.size = 2ull << 30;
    o.discard_data = true;
    auto& ns = p.add_namespace(o);
    const lat::Result nt =
        quick(p, ns, lat::Op::kNtStore, lat::Pattern::kSeq, 4096, 6);
    const lat::Result clwb =
        quick(p, ns, lat::Op::kStoreClwb, lat::Pattern::kSeq, 4096, 6);
    std::printf("#2 Use non-temporal stores for large transfers\n");
    std::printf("   4 KB ntstore:     %.1f GB/s\n", nt.bandwidth_gbps);
    std::printf("   4 KB store+clwb:  %.1f GB/s (pays the RFO read)\n\n",
                clwb.bandwidth_gbps);
  }

  // Guideline 3: limit threads per DIMM.
  {
    hw::Platform p;
    hw::NamespaceOptions o;
    o.device = hw::Device::kXp;
    o.interleaved = false;
    o.size = 2ull << 30;
    o.discard_data = true;
    auto& ns = p.add_namespace(o);
    const lat::Result few =
        quick(p, ns, lat::Op::kNtStore, lat::Pattern::kSeq, 256, 2);
    hw::Platform p2;
    auto& ns2 = p2.add_namespace(o);
    const lat::Result many =
        quick(p2, ns2, lat::Op::kNtStore, lat::Pattern::kSeq, 256, 16);
    std::printf("#3 Limit concurrent writers per DIMM\n");
    std::printf("   2 writers:  %.2f GB/s\n", few.bandwidth_gbps);
    std::printf("   16 writers: %.2f GB/s (more threads, less bandwidth)\n\n",
                many.bandwidth_gbps);
  }

  // Guideline 4: avoid NUMA, especially mixed multi-threaded access.
  {
    auto mixed = [&](unsigned socket) {
      hw::Platform p;
      hw::NamespaceOptions o;
      o.device = hw::Device::kXp;
      o.socket = 0;
      o.size = 2ull << 30;
      o.discard_data = true;
      auto& ns = p.add_namespace(o);
      return quick(p, ns, lat::Op::kMixed, lat::Pattern::kRand, 256, 4,
                   socket)
          .bandwidth_gbps;
    };
    std::printf("#4 Avoid mixed accesses to remote NUMA nodes\n");
    std::printf("   local 1:1 mix, 4 threads:  %.2f GB/s\n", mixed(0));
    std::printf("   remote 1:1 mix, 4 threads: %.2f GB/s\n", mixed(1));
  }
  return 0;
}
