// Quickstart: the 5-minute tour of the XPMemSim public API.
//
//  1. Build a Platform (the simulated dual-socket Optane machine).
//  2. Provision an App-Direct namespace.
//  3. Store data with the persistence instructions and fence it.
//  4. Pull the power. See what survived.
//  5. Read the DIMM hardware counters (EWR).
//
// Build & run:  build/examples/quickstart
#include <cstdio>
#include <vector>

#include "xpsim/platform.h"

int main() {
  using namespace xp;

  // 1. The machine: 2 sockets x 24 cores, 6 Optane + 6 DRAM DIMMs per
  //    socket. All timing parameters live in hw::Timing.
  hw::Platform platform;

  // 2. A 1 GB interleaved Optane namespace on socket 0.
  hw::PmemNamespace& pmem = platform.optane(1ull << 30);

  // A simulated thread: core on socket 0, up to 20 outstanding accesses.
  sim::ThreadCtx thread({.id = 0, .socket = 0, .mlp = 20, .seed = 42});

  // 3. Three writes with different persistence treatment.
  std::vector<std::uint8_t> a(64, 'A'), b(64, 'B'), c(64, 'C');
  pmem.store(thread, 0, a);            // cached store only -> volatile!
  pmem.store_persist(thread, 64, b);   // store + clwb + sfence -> durable
  pmem.ntstore(thread, 128, c);        // non-temporal...
  pmem.sfence(thread);                 // ...durable after the fence

  std::printf("simulated time so far: %.1f ns\n", sim::to_ns(thread.now()));

  // 4. Power failure: CPU caches vanish, the ADR domain survives.
  platform.crash();

  std::vector<std::uint8_t> out(64);
  pmem.peek(0, out);
  std::printf("unflushed store survived?   %s\n",
              out[0] == 'A' ? "yes (bug!)" : "no  (lost with the cache)");
  pmem.peek(64, out);
  std::printf("store_persist survived?     %s\n",
              out[0] == 'B' ? "yes" : "no (bug!)");
  pmem.peek(128, out);
  std::printf("ntstore+sfence survived?    %s\n",
              out[0] == 'C' ? "yes" : "no (bug!)");

  // 5. Hardware counters: scatter small random writes over 64 MB and
  //    watch the Effective Write Ratio collapse to ~0.25 — each 64 B
  //    store costs a 256 B XPLine read-modify-write inside the DIMM.
  const hw::XpCounters before = pmem.xp_counters();
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t off =
        thread.rng().uniform((64ull << 20) / 64) * 64;
    pmem.ntstore(thread, off, a);
  }
  pmem.sfence(thread);
  const hw::XpCounters delta = pmem.xp_counters() - before;
  std::printf("\n20k random 64 B stores: iMC wrote %llu B, media wrote "
              "%llu B -> EWR %.2f\n",
              static_cast<unsigned long long>(delta.imc_write_bytes),
              static_cast<unsigned long long>(delta.media_write_bytes),
              delta.ewr());
  std::printf("(EWR < 1 is internal write amplification — the paper's "
              "guideline #1: avoid random accesses under 256 B)\n");
  return 0;
}
