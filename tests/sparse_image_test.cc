// Tests for SparseImage, in particular the one-entry last-page cache on
// the read/write path (one hash lookup per 64 B line otherwise).
#include "xpsim/sparse_image.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace xp::hw {
namespace {

constexpr std::uint64_t kPage = 64 * 1024;

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t salt) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::uint8_t>(i * 31 + salt);
  return v;
}

TEST(SparseImage, UnwrittenBytesReadZero) {
  SparseImage img(4 * kPage);
  std::vector<std::uint8_t> out(128, 0xff);
  img.read(2 * kPage - 64, out);
  for (auto b : out) EXPECT_EQ(b, 0);
  EXPECT_EQ(img.resident_pages(), 0u);
}

TEST(SparseImage, ReadAfterWriteAcrossPageBoundary) {
  SparseImage img(4 * kPage);
  // A write straddling the page-1/page-2 boundary materializes both pages
  // and must read back through the cache unchanged.
  const auto in = pattern(4096, 7);
  img.write(2 * kPage - 1000, in);
  EXPECT_EQ(img.resident_pages(), 2u);
  std::vector<std::uint8_t> out(in.size());
  img.read(2 * kPage - 1000, out);
  EXPECT_EQ(out, in);
}

TEST(SparseImage, SequentialLineReadsSeeInterleavedWrites) {
  // The regime the cache optimizes: 64 B-line traffic walking a page.
  // Interleave reads and writes so a stale cached pointer (or a stale
  // cached "absent" entry once the page materializes) would be caught.
  SparseImage img(4 * kPage);
  std::vector<std::uint8_t> line(64);
  for (std::uint64_t off = 0; off < 2 * kPage; off += 64) {
    img.read(off, line);  // caches "absent" for a fresh page
    for (auto b : line) ASSERT_EQ(b, 0);
    const auto in = pattern(64, static_cast<std::uint8_t>(off >> 6));
    img.write(off, in);  // must materialize despite the cached miss
    img.read(off, line);
    ASSERT_EQ(line, in) << "offset " << off;
  }
  EXPECT_EQ(img.resident_pages(), 2u);
}

TEST(SparseImage, CachedPointerFollowsPageSwitches) {
  SparseImage img(8 * kPage);
  const auto a = pattern(256, 1);
  const auto b = pattern(256, 2);
  img.write(0, a);              // page 0 cached
  img.write(5 * kPage, b);      // switch to page 5
  std::vector<std::uint8_t> out(256);
  img.read(0, out);             // back to page 0
  EXPECT_EQ(out, a);
  img.read(5 * kPage, out);
  EXPECT_EQ(out, b);
}

TEST(SparseImage, ClearInvalidatesCachedPointer) {
  SparseImage img(4 * kPage);
  const auto in = pattern(512, 3);
  img.write(kPage, in);
  std::vector<std::uint8_t> out(512, 0xff);
  img.read(kPage, out);  // warm the cache on page 1
  EXPECT_EQ(out, in);

  img.clear();  // Memory-Mode power failure: contents are gone
  EXPECT_EQ(img.resident_pages(), 0u);
  img.read(kPage, out);  // a stale cached pointer would return old bytes
  for (auto b : out) EXPECT_EQ(b, 0);

  // Writing after clear() re-materializes and reads back correctly.
  const auto in2 = pattern(512, 4);
  img.write(kPage, in2);
  img.read(kPage, out);
  EXPECT_EQ(out, in2);
}

TEST(SparseImage, CachedPointerSurvivesRehash) {
  // Materialize enough pages to force the unordered_map to rehash
  // several times; reads must keep returning each page's bytes (page
  // storage is heap-allocated, so pointers are stable — this guards
  // that invariant).
  constexpr unsigned kPages = 512;
  SparseImage img(kPages * kPage);
  for (unsigned p = 0; p < kPages; ++p) {
    img.write(std::uint64_t{p} * kPage,
              pattern(64, static_cast<std::uint8_t>(p)));
  }
  EXPECT_EQ(img.resident_pages(), kPages);
  std::vector<std::uint8_t> out(64);
  for (unsigned p = 0; p < kPages; ++p) {
    img.read(std::uint64_t{p} * kPage, out);
    ASSERT_EQ(out, pattern(64, static_cast<std::uint8_t>(p))) << p;
  }
}

}  // namespace
}  // namespace xp::hw
