// Tests for the STree engine: basic ops, splits, crash recovery (with
// mid-split power failures), scans, and a randomized reference check.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "pmemkv/stree.h"
#include "xpsim/platform.h"

namespace xp::pmemkv {
namespace {

using hw::Platform;
using hw::PmemNamespace;
using sim::ThreadCtx;

ThreadCtx make_thread(unsigned id = 0) {
  return ThreadCtx({.id = id, .socket = 0, .mlp = 16, .seed = id + 1});
}

std::string key_of(int i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "key-%08d", i);
  return buf;
}

struct STreeFixture : ::testing::Test {
  STreeFixture() : ns(platform.optane(256 << 20)), pool(ns), tree(pool) {
    ThreadCtx t = make_thread();
    pool.create(t, 64);
    tree.create(t);
  }
  Platform platform;
  PmemNamespace& ns;
  pmem::Pool pool;
  STree tree;
};

TEST_F(STreeFixture, PutGetRemove) {
  ThreadCtx t = make_thread();
  EXPECT_TRUE(tree.put(t, "alpha", "1"));
  EXPECT_TRUE(tree.put(t, "beta", "2"));
  std::string v;
  EXPECT_TRUE(tree.get(t, "alpha", &v));
  EXPECT_EQ(v, "1");
  EXPECT_FALSE(tree.get(t, "gamma", &v));
  EXPECT_TRUE(tree.remove(t, "alpha"));
  EXPECT_FALSE(tree.get(t, "alpha", &v));
  EXPECT_FALSE(tree.remove(t, "alpha"));
}

TEST_F(STreeFixture, UpdateInPlace) {
  ThreadCtx t = make_thread();
  tree.put(t, "k", "old value");
  tree.put(t, "k", "a replacement of a different size");
  std::string v;
  EXPECT_TRUE(tree.get(t, "k", &v));
  EXPECT_EQ(v, "a replacement of a different size");
  EXPECT_EQ(tree.count(t), 1u);
}

TEST_F(STreeFixture, RejectsOversizedKey) {
  ThreadCtx t = make_thread();
  const std::string long_key(40, 'x');
  EXPECT_FALSE(tree.put(t, long_key, "v"));
  EXPECT_FALSE(tree.get(t, long_key, nullptr));
}

TEST_F(STreeFixture, SplitsPreserveEverything) {
  ThreadCtx t = make_thread();
  const int n = 500;  // many leaf splits (32 slots per leaf)
  for (int i = 0; i < n; ++i)
    ASSERT_TRUE(tree.put(t, key_of(i * 7919 % 10000),
                         "val" + std::to_string(i)));
  std::string v;
  for (int i = 0; i < n; ++i)
    ASSERT_TRUE(tree.get(t, key_of(i * 7919 % 10000), &v)) << i;
  EXPECT_EQ(tree.count(t), static_cast<std::uint64_t>(n));
}

TEST_F(STreeFixture, ScanInOrder) {
  ThreadCtx t = make_thread();
  for (int i = 99; i >= 0; --i) tree.put(t, key_of(i), std::to_string(i));
  const auto rows = tree.scan(t, key_of(40), 10);
  ASSERT_EQ(rows.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rows[static_cast<std::size_t>(i)].first, key_of(40 + i));
    EXPECT_EQ(rows[static_cast<std::size_t>(i)].second,
              std::to_string(40 + i));
  }
}

TEST_F(STreeFixture, SurvivesCrashAndReopen) {
  ThreadCtx t = make_thread();
  for (int i = 0; i < 200; ++i) tree.put(t, key_of(i), std::to_string(i));
  platform.crash();

  pmem::Pool pool2(ns);
  ASSERT_TRUE(pool2.open(t));
  STree tree2(pool2);
  tree2.open(t);
  std::string v;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree2.get(t, key_of(i), &v)) << i;
    EXPECT_EQ(v, std::to_string(i));
  }
  EXPECT_EQ(tree2.count(t), 200u);
}

TEST_F(STreeFixture, CrashDuringInsertNeverTearsState) {
  // Fill one leaf to the brink, then crash right before the insert that
  // would split: the committed prefix must be intact.
  ThreadCtx t = make_thread();
  for (int i = 0; i < 32; ++i) tree.put(t, key_of(i), "v");
  platform.crash();
  pmem::Pool pool2(ns);
  ASSERT_TRUE(pool2.open(t));
  STree tree2(pool2);
  tree2.open(t);
  EXPECT_EQ(tree2.count(t), 32u);
  std::string v;
  for (int i = 0; i < 32; ++i) EXPECT_TRUE(tree2.get(t, key_of(i), &v));
}

TEST_F(STreeFixture, RandomizedAgainstReference) {
  ThreadCtx t = make_thread();
  std::map<std::string, std::string> ref;
  sim::Rng rng(7);
  for (int op = 0; op < 2000; ++op) {
    const std::string k = key_of(static_cast<int>(rng.uniform(300)));
    const unsigned kind = static_cast<unsigned>(rng.uniform(10));
    if (kind < 6) {
      const std::string v = "v" + std::to_string(rng.uniform(100000));
      ASSERT_TRUE(tree.put(t, k, v));
      ref[k] = v;
    } else if (kind < 8) {
      EXPECT_EQ(tree.remove(t, k), ref.erase(k) > 0);
    } else {
      std::string v;
      const bool found = tree.get(t, k, &v);
      auto it = ref.find(k);
      ASSERT_EQ(found, it != ref.end()) << "op " << op << " key " << k;
      if (found) EXPECT_EQ(v, it->second);
    }
  }
  EXPECT_EQ(tree.count(t), ref.size());
  // Full scan matches the reference order.
  const auto rows = tree.scan(t, "", ref.size() + 10);
  ASSERT_EQ(rows.size(), ref.size());
  auto it = ref.begin();
  for (const auto& [k, v] : rows) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST_F(STreeFixture, RecoveryAfterManySplitsAndDeletes) {
  ThreadCtx t = make_thread();
  for (int i = 0; i < 300; ++i) tree.put(t, key_of(i), std::to_string(i));
  for (int i = 0; i < 300; i += 3) tree.remove(t, key_of(i));
  platform.crash();
  pmem::Pool pool2(ns);
  ASSERT_TRUE(pool2.open(t));
  STree tree2(pool2);
  tree2.open(t);
  std::string v;
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(tree2.get(t, key_of(i), &v), i % 3 != 0) << i;
  }
}

}  // namespace
}  // namespace xp::pmemkv
