// Tests for the FIO workload generator, including the Fig 17
// multi-DIMM-NOVA shape.
#include <gtest/gtest.h>

#include "fio/fio.h"
#include "novafs/novafs.h"
#include "xpsim/platform.h"

namespace xp::fio {
namespace {

using hw::Platform;
using nova::NovaFs;
using nova::NovaOptions;

TEST(Fio, ProducesOps) {
  Platform platform;
  auto& ns = platform.optane(512 << 20);
  NovaFs fs(ns, NovaOptions{});
  sim::ThreadCtx t({.id = 0, .socket = 0, .mlp = 16, .seed = 1});
  fs.format(t);

  Job job;
  job.rw = Rw::kSeqWrite;
  job.numjobs = 2;
  job.file_size = 4 << 20;
  job.runtime = sim::ms(1);
  const Result r = run(platform, fs, job);
  EXPECT_GT(r.ops, 50u);
  EXPECT_EQ(r.bytes, r.ops * job.block_size);
  EXPECT_GT(r.bandwidth_gbps, 0.05);
}

TEST(Fio, ReadsFasterThanWritesOnOptane) {
  Platform platform;
  auto& ns = platform.optane(1024ull << 20);
  NovaFs fs(ns, NovaOptions{});
  sim::ThreadCtx t({.id = 0, .socket = 0, .mlp = 16, .seed = 1});
  fs.format(t);

  Job job;
  job.numjobs = 8;
  job.file_size = 8 << 20;
  job.runtime = sim::ms(1);
  job.rw = Rw::kSeqRead;
  const double rd = run(platform, fs, job).bandwidth_gbps;
  job.rw = Rw::kSeqWrite;
  const double wr = run(platform, fs, job).bandwidth_gbps;
  EXPECT_GT(rd, wr);
}

TEST(Fio, LargerBlocksFasterThanRandom4K) {
  // Fig 5's trend at the file-system level: random 4 KB IO concentrates
  // each op on one DIMM (interleave chunk), while larger blocks spread.
  Platform platform;
  auto& ns = platform.optane(2048ull << 20);
  NovaFs fs(ns, NovaOptions{});
  sim::ThreadCtx t({.id = 0, .socket = 0, .mlp = 16, .seed = 1});
  fs.format(t);

  Job job;
  job.numjobs = 8;
  job.file_size = 32 << 20;
  job.runtime = sim::ms(1);
  job.rw = Rw::kRandRead;
  job.block_size = 4096;
  const double small = run(platform, fs, job).bandwidth_gbps;
  job.block_size = 65536;
  const double large = run(platform, fs, job).bandwidth_gbps;
  EXPECT_GT(large, small * 1.1);
}

TEST(Fig17Shape, PinnedAllocationHelpsWrites) {
  // Multi-DIMM-aware NOVA (pinned page allocation) should beat the
  // spread allocator for multi-threaded writes (paper: +3..34%).
  auto bw = [&](nova::AllocPolicy policy, Rw rw) {
    Platform platform;
    auto& ns = platform.optane(2048ull << 20);
    NovaOptions o;
    o.alloc = policy;
    NovaFs fs(ns, o);
    sim::ThreadCtx t({.id = 0, .socket = 0, .mlp = 16, .seed = 1});
    fs.format(t);
    Job job;
    job.rw = rw;
    job.numjobs = 12;
    job.file_size = 16 << 20;
    job.runtime = sim::ms(1);
    return run(platform, fs, job).bandwidth_gbps;
  };
  const double spread = bw(nova::AllocPolicy::kSpread, Rw::kSeqWrite);
  const double pinned = bw(nova::AllocPolicy::kPinned, Rw::kSeqWrite);
  EXPECT_GT(pinned, spread * 1.02);
}

}  // namespace
}  // namespace xp::fio
