// Tests for mini-NOVA and the DAX comparators: data-path correctness
// (random-write property tests against a reference model), log replay and
// crash recovery, datalog merge semantics, the log cleaner, multi-DIMM
// allocation, and the Fig 12 latency ordering.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "novafs/daxfs.h"
#include "novafs/novafs.h"
#include "xpsim/platform.h"

namespace xp::nova {
namespace {

using hw::Platform;
using hw::PmemNamespace;
using sim::ThreadCtx;

ThreadCtx make_thread(unsigned id = 0) {
  return ThreadCtx({.id = id, .socket = 0, .mlp = 16, .seed = id + 1});
}

std::vector<std::uint8_t> pattern(std::size_t n, unsigned seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::uint8_t>(i * 13 + seed * 7 + 1);
  return v;
}

// ------------------------------------------------------------ basic ops --
struct NovaParam {
  bool datalog;
  const char* name;
};

class NovaBasics : public ::testing::TestWithParam<NovaParam> {
 protected:
  NovaOptions make_opts() const {
    NovaOptions o;
    o.datalog = GetParam().datalog;
    return o;
  }
};

TEST_P(NovaBasics, CreateOpenWriteRead) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  NovaFs fs(ns, make_opts());
  ThreadCtx t = make_thread();
  fs.format(t);

  const int f = fs.create(t, "hello.txt");
  ASSERT_GE(f, 0);
  EXPECT_EQ(fs.open(t, "hello.txt"), f);
  EXPECT_EQ(fs.open(t, "missing"), -1);

  const auto data = pattern(100, 1);
  fs.write(t, f, 0, data);
  EXPECT_EQ(fs.size(t, f), 100u);
  std::vector<std::uint8_t> out(100);
  EXPECT_EQ(fs.read(t, f, 0, out), 100u);
  EXPECT_EQ(out, data);
}

TEST_P(NovaBasics, SparseFileReadsZeros) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  NovaFs fs(ns, make_opts());
  ThreadCtx t = make_thread();
  fs.format(t);
  const int f = fs.create(t, "sparse");
  const auto data = pattern(64, 2);
  fs.write(t, f, 100000, data);
  std::vector<std::uint8_t> out(64);
  EXPECT_EQ(fs.read(t, f, 50000, out), 64u);
  for (auto b : out) EXPECT_EQ(b, 0);
}

TEST_P(NovaBasics, CrossPageWrite) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  NovaFs fs(ns, make_opts());
  ThreadCtx t = make_thread();
  fs.format(t);
  const int f = fs.create(t, "x");
  const auto data = pattern(10000, 3);
  fs.write(t, f, 4000, data);  // spans three pages
  std::vector<std::uint8_t> out(10000);
  EXPECT_EQ(fs.read(t, f, 4000, out), 10000u);
  EXPECT_EQ(out, data);
}

TEST_P(NovaBasics, OverwriteVisible) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  NovaFs fs(ns, make_opts());
  ThreadCtx t = make_thread();
  fs.format(t);
  const int f = fs.create(t, "x");
  fs.write(t, f, 0, pattern(4096, 1));
  const auto newer = pattern(64, 9);
  fs.write(t, f, 100, newer);
  std::vector<std::uint8_t> out(64);
  fs.read(t, f, 100, out);
  EXPECT_EQ(out, newer);
  // Neighbors keep the old data.
  std::vector<std::uint8_t> before(4);
  fs.read(t, f, 96, before);
  const auto base = pattern(4096, 1);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(before[i], base[96 + i]);
}

INSTANTIATE_TEST_SUITE_P(Modes, NovaBasics,
                         ::testing::Values(NovaParam{false, "cow"},
                                           NovaParam{true, "datalog"}),
                         [](const auto& i) { return i.param.name; });

// -------------------------------------------- randomized reference model --
class NovaRandomized : public ::testing::TestWithParam<NovaParam> {};

TEST_P(NovaRandomized, MatchesReferenceModel) {
  Platform platform;
  PmemNamespace& ns = platform.optane(512 << 20);
  NovaOptions o;
  o.datalog = GetParam().datalog;
  o.merge_threshold = 8;  // exercise merges frequently
  NovaFs fs(ns, o);
  ThreadCtx t = make_thread();
  fs.format(t);
  const int f = fs.create(t, "model");

  constexpr std::uint64_t kFileSize = 128 << 10;
  std::vector<std::uint8_t> reference(kFileSize, 0);
  sim::Rng rng(99);
  for (int op = 0; op < 400; ++op) {
    const std::size_t len = 1 + rng.uniform(6000);
    const std::uint64_t off = rng.uniform(kFileSize - len);
    std::vector<std::uint8_t> data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
    fs.write(t, f, off, data);
    std::memcpy(reference.data() + off, data.data(), len);

    // Random read-back check.
    const std::size_t rlen = 1 + rng.uniform(8000);
    const std::uint64_t roff = rng.uniform(kFileSize - rlen);
    std::vector<std::uint8_t> out(rlen);
    const std::size_t got = fs.read(t, f, roff, out);
    if (got > 0) {
      ASSERT_EQ(0, std::memcmp(out.data(), reference.data() + roff, got))
          << "op " << op << " off " << roff << " len " << rlen;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, NovaRandomized,
                         ::testing::Values(NovaParam{false, "cow"},
                                           NovaParam{true, "datalog"}),
                         [](const auto& i) { return i.param.name; });

// ------------------------------------------------------- mount / recovery --
class NovaRecovery : public ::testing::TestWithParam<NovaParam> {};

TEST_P(NovaRecovery, RemountSeesAllData) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  NovaOptions o;
  o.datalog = GetParam().datalog;
  ThreadCtx t = make_thread();
  const auto d1 = pattern(3000, 1);
  const auto d2 = pattern(64, 2);
  {
    NovaFs fs(ns, o);
    fs.format(t);
    const int f = fs.create(t, "persist.me");
    fs.write(t, f, 0, d1);
    fs.write(t, f, 500, d2);
    platform.crash();
  }
  NovaFs fs2(ns, o);
  ASSERT_TRUE(fs2.mount(t));
  const int f = fs2.open(t, "persist.me");
  ASSERT_GE(f, 0);
  std::vector<std::uint8_t> out(3000);
  EXPECT_EQ(fs2.read(t, f, 0, out), 3000u);
  for (std::size_t i = 0; i < 3000; ++i) {
    const std::uint8_t expect =
        (i >= 500 && i < 564) ? d2[i - 500] : d1[i];
    ASSERT_EQ(out[i], expect) << i;
  }
}

TEST_P(NovaRecovery, MountRejectsUnformatted) {
  Platform platform;
  PmemNamespace& ns = platform.optane(64 << 20);
  NovaOptions o;
  o.datalog = GetParam().datalog;
  NovaFs fs(ns, o);
  ThreadCtx t = make_thread();
  EXPECT_FALSE(fs.mount(t));
}

TEST_P(NovaRecovery, ManyFilesSurvive) {
  Platform platform;
  PmemNamespace& ns = platform.optane(512 << 20);
  NovaOptions o;
  o.datalog = GetParam().datalog;
  ThreadCtx t = make_thread();
  {
    NovaFs fs(ns, o);
    fs.format(t);
    for (int i = 0; i < 50; ++i) {
      const int f = fs.create(t, "file" + std::to_string(i));
      fs.write(t, f, 0, pattern(256, static_cast<unsigned>(i)));
    }
    platform.crash();
  }
  NovaFs fs2(ns, o);
  ASSERT_TRUE(fs2.mount(t));
  for (int i = 0; i < 50; ++i) {
    const int f = fs2.open(t, "file" + std::to_string(i));
    ASSERT_GE(f, 0) << i;
    std::vector<std::uint8_t> out(256);
    EXPECT_EQ(fs2.read(t, f, 0, out), 256u);
    EXPECT_EQ(out, pattern(256, static_cast<unsigned>(i)));
  }
}

TEST_P(NovaRecovery, CrashMidWriteIsAtomicPerEntry) {
  // NOVA's claim (unlike DAX fs): file updates are atomic. We crash with
  // a write's data persisted but the log entry's commit word missing is
  // impossible through the public API (the API persists before
  // returning); instead verify that *unsynced cache-resident* DAX writes
  // would be lost while every completed NOVA write survives.
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  NovaOptions o;
  o.datalog = GetParam().datalog;
  ThreadCtx t = make_thread();
  NovaFs fs(ns, o);
  fs.format(t);
  const int f = fs.create(t, "atomic");
  for (int i = 0; i < 20; ++i)
    fs.write(t, f, static_cast<std::uint64_t>(i) * 64, pattern(64, 5));
  platform.crash();
  NovaFs fs2(ns, o);
  ASSERT_TRUE(fs2.mount(t));
  const int f2 = fs2.open(t, "atomic");
  std::vector<std::uint8_t> out(64);
  for (int i = 0; i < 20; ++i) {
    fs2.read(t, f2, static_cast<std::uint64_t>(i) * 64, out);
    EXPECT_EQ(out, pattern(64, 5)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, NovaRecovery,
                         ::testing::Values(NovaParam{false, "cow"},
                                           NovaParam{true, "datalog"}),
                         [](const auto& i) { return i.param.name; });

// --------------------------------------------------------- datalog internals
TEST(NovaDatalog, SmallWritesCreateOverlays) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  NovaOptions o;
  o.datalog = true;
  o.merge_threshold = 1000;  // don't merge in this test
  NovaFs fs(ns, o);
  ThreadCtx t = make_thread();
  fs.format(t);
  const int f = fs.create(t, "x");
  fs.write(t, f, 0, pattern(4096, 1));  // base page (CoW: full page)
  EXPECT_EQ(fs.overlay_count(f), 0u);
  for (int i = 0; i < 10; ++i)
    fs.write(t, f, static_cast<std::uint64_t>(i) * 64, pattern(64, 2));
  EXPECT_EQ(fs.overlay_count(f), 10u);
}

TEST(NovaDatalog, MergeThresholdBoundsOverlays) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  NovaOptions o;
  o.datalog = true;
  o.merge_threshold = 4;
  NovaFs fs(ns, o);
  ThreadCtx t = make_thread();
  fs.format(t);
  const int f = fs.create(t, "x");
  for (int i = 0; i < 40; ++i)
    fs.write(t, f, (static_cast<std::uint64_t>(i) * 64) % 4096,
             pattern(64, static_cast<unsigned>(i)));
  EXPECT_LE(fs.overlay_count(f), 4u);
  // Data still correct after merges.
  std::vector<std::uint8_t> out(64);
  fs.read(t, f, (39ull * 64) % 4096, out);
  EXPECT_EQ(out, pattern(64, 39));
}

TEST(NovaDatalog, CowModeNeverCreatesOverlays) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  NovaOptions o;
  o.datalog = false;
  NovaFs fs(ns, o);
  ThreadCtx t = make_thread();
  fs.format(t);
  const int f = fs.create(t, "x");
  for (int i = 0; i < 10; ++i) fs.write(t, f, 0, pattern(64, 1));
  EXPECT_EQ(fs.overlay_count(f), 0u);
}

TEST(NovaCleaner, LogCleaningPreservesData) {
  Platform platform;
  PmemNamespace& ns = platform.optane(512 << 20);
  NovaOptions o;
  o.datalog = true;
  o.merge_threshold = 16;
  o.clean_threshold = 4;  // clean aggressively
  NovaFs fs(ns, o);
  ThreadCtx t = make_thread();
  fs.format(t);
  const int f = fs.create(t, "cleanme");
  const std::uint64_t file_size = 64 << 10;
  std::vector<std::uint8_t> reference(file_size, 0);
  sim::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t off = rng.uniform(file_size / 64) * 64;
    const auto data = pattern(64, static_cast<unsigned>(i));
    fs.write(t, f, off, data);
    std::memcpy(reference.data() + off, data.data(), 64);
  }
  EXPECT_GT(fs.cleanings(), 0u);
  std::vector<std::uint8_t> out(file_size);
  fs.read(t, f, 0, out);
  EXPECT_EQ(0, std::memcmp(out.data(), reference.data(), file_size));

  // And it still remounts correctly.
  platform.crash();
  NovaFs fs2(ns, o);
  ASSERT_TRUE(fs2.mount(t));
  const int f2 = fs2.open(t, "cleanme");
  std::vector<std::uint8_t> out2(file_size);
  fs2.read(t, f2, 0, out2);
  EXPECT_EQ(0, std::memcmp(out2.data(), reference.data(), file_size));
}

// --------------------------------------------------------------- DAX fs --
TEST(DaxFsTest, BasicReadWrite) {
  Platform platform;
  PmemNamespace& ns = platform.optane(64 << 20);
  DaxFs fs(ns, xfs_profile(), /*sync_mode=*/false);
  ThreadCtx t = make_thread();
  const int f = fs.create(t, "a");
  const auto data = pattern(5000, 1);
  fs.write(t, f, 123, data);
  std::vector<std::uint8_t> out(5000);
  EXPECT_EQ(fs.read(t, f, 123, out), 5000u);
  EXPECT_EQ(out, data);
}

TEST(DaxFsTest, UnsyncedWritesLostOnCrash) {
  // The paper's point: DAX file systems don't give data durability
  // without fsync.
  Platform platform;
  PmemNamespace& ns = platform.optane(64 << 20);
  DaxFs fs(ns, xfs_profile(), /*sync_mode=*/false);
  ThreadCtx t = make_thread();
  const int f = fs.create(t, "a");
  fs.write(t, f, 0, pattern(64, 1));
  platform.crash();
  std::vector<std::uint8_t> out(64);
  fs.read(t, f, 0, out);
  int nonzero = 0;
  for (auto b : out) nonzero += b != 0;
  EXPECT_EQ(nonzero, 0);  // data evaporated with the CPU cache
}

TEST(DaxFsTest, SyncedWritesSurviveCrash) {
  Platform platform;
  PmemNamespace& ns = platform.optane(64 << 20);
  DaxFs fs(ns, xfs_profile(), /*sync_mode=*/true);
  ThreadCtx t = make_thread();
  const int f = fs.create(t, "a");
  const auto data = pattern(64, 1);
  fs.write(t, f, 0, data);
  platform.crash();
  std::vector<std::uint8_t> out(64);
  fs.read(t, f, 0, out);
  EXPECT_EQ(out, data);
}

TEST(DaxFsTest, Ext4SyncSlowerThanXfsSync) {
  Platform platform;
  PmemNamespace& ns1 = platform.optane(64 << 20);
  PmemNamespace& ns2 = platform.optane(64 << 20);
  ThreadCtx t = make_thread();
  DaxFs xfs(ns1, xfs_profile(), true);
  DaxFs ext4(ns2, ext4_profile(), true);
  const int f1 = xfs.create(t, "a");
  const int f2 = ext4.create(t, "a");
  const auto data = pattern(64, 1);

  const sim::Time x0 = t.now();
  for (int i = 0; i < 10; ++i) xfs.write(t, f1, 0, data);
  const sim::Time xfs_time = t.now() - x0;
  const sim::Time e0 = t.now();
  for (int i = 0; i < 10; ++i) ext4.write(t, f2, 0, data);
  const sim::Time ext4_time = t.now() - e0;
  EXPECT_GT(ext4_time, 3 * xfs_time);
}

// --------------------------------------------------------- Fig 12 anchor --
TEST(Fig12Shape, DatalogSpeedsUpSmallOverwrites) {
  Platform platform;
  ThreadCtx t = make_thread();

  auto overwrite_latency = [&](NovaFs& fs, std::size_t size) {
    const int f = fs.open(t, "bench");
    sim::Rng rng(3);
    const sim::Time t0 = t.now();
    const int n = 200;
    for (int i = 0; i < n; ++i) {
      const std::uint64_t off = rng.uniform((1 << 20) / size) * size;
      fs.write(t, f, off, pattern(size, 1));
    }
    return sim::to_ns(t.now() - t0) / n;
  };

  PmemNamespace& ns1 = platform.optane(256 << 20);
  NovaOptions plain;
  NovaFs nova(ns1, plain);
  nova.format(t);
  const int f1 = nova.create(t, "bench");
  nova.write(t, f1, 0, std::vector<std::uint8_t>(1 << 20, 1));

  PmemNamespace& ns2 = platform.optane(256 << 20);
  NovaOptions dl;
  dl.datalog = true;
  NovaFs datalog(ns2, dl);
  datalog.format(t);
  const int f2 = datalog.create(t, "bench");
  datalog.write(t, f2, 0, std::vector<std::uint8_t>(1 << 20, 1));

  const double nova64 = overwrite_latency(nova, 64);
  const double datalog64 = overwrite_latency(datalog, 64);
  // Paper: ~7x improvement for 64 B random overwrites.
  EXPECT_GT(nova64 / datalog64, 3.0);

  // Read path pays a small merge penalty (Fig 12 right).
  auto read_latency = [&](NovaFs& fs) {
    const int f = fs.open(t, "bench");
    std::vector<std::uint8_t> out(4096);
    const sim::Time t0 = t.now();
    for (int i = 0; i < 100; ++i) fs.read(t, f, (i % 256) * 4096ull, out);
    return sim::to_ns(t.now() - t0) / 100;
  };
  (void)read_latency;  // exercised in bench/fig12
}



// --------------------------------------------- crash-point sweep (P) ----
// Write K records; crash; remount: every completed write must be fully
// visible (NOVA's per-entry atomic commit), regardless of where the
// power failed relative to the op stream.
class NovaCrashSweep : public ::testing::TestWithParam<int> {};

TEST_P(NovaCrashSweep, CompletedWritesAlwaysSurvive) {
  const int writes_before_crash = GetParam();
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  NovaOptions o;
  o.datalog = (writes_before_crash % 2) == 1;  // alternate modes
  ThreadCtx t = make_thread();
  {
    NovaFs fs(ns, o);
    fs.format(t);
    const int f = fs.create(t, "sweep");
    for (int i = 0; i < writes_before_crash; ++i) {
      fs.write(t, f, static_cast<std::uint64_t>(i) * 100,
               pattern(100, static_cast<unsigned>(i)));
    }
    platform.crash();
  }
  NovaFs fs2(ns, o);
  ASSERT_TRUE(fs2.mount(t));
  const int f = fs2.open(t, "sweep");
  if (writes_before_crash == 0) {
    ASSERT_GE(f, 0);  // create itself committed
    return;
  }
  std::vector<std::uint8_t> out(100);
  for (int i = 0; i < writes_before_crash; ++i) {
    ASSERT_EQ(fs2.read(t, f, static_cast<std::uint64_t>(i) * 100, out),
              100u)
        << i;
    EXPECT_EQ(out, pattern(100, static_cast<unsigned>(i))) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, NovaCrashSweep,
                         ::testing::Values(0, 1, 2, 3, 5, 9, 17, 40, 80));

// ------------------------------------------------------ unlink / truncate
TEST(NovaUnlink, RemovesAndReclaims) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  NovaFs fs(ns, NovaOptions{});
  ThreadCtx t = make_thread();
  fs.format(t);
  const int f = fs.create(t, "doomed");
  fs.write(t, f, 0, pattern(8192, 1));
  ASSERT_TRUE(fs.unlink(t, "doomed"));
  EXPECT_EQ(fs.open(t, "doomed"), -1);
  EXPECT_FALSE(fs.unlink(t, "doomed"));
}

TEST(NovaUnlink, SurvivesRemount) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  ThreadCtx t = make_thread();
  {
    NovaFs fs(ns, NovaOptions{});
    fs.format(t);
    const int keep = fs.create(t, "keep");
    fs.write(t, keep, 0, pattern(64, 1));
    const int gone = fs.create(t, "gone");
    fs.write(t, gone, 0, pattern(64, 2));
    fs.unlink(t, "gone");
    platform.crash();
  }
  NovaFs fs2(ns, NovaOptions{});
  ASSERT_TRUE(fs2.mount(t));
  EXPECT_GE(fs2.open(t, "keep"), 0);
  EXPECT_EQ(fs2.open(t, "gone"), -1);
}

TEST(NovaUnlink, InodeSlotReusedAfterRemount) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  ThreadCtx t = make_thread();
  int old_ino;
  {
    NovaFs fs(ns, NovaOptions{});
    fs.format(t);
    old_ino = fs.create(t, "a");
    fs.unlink(t, "a");
    platform.crash();
  }
  NovaFs fs2(ns, NovaOptions{});
  ASSERT_TRUE(fs2.mount(t));
  EXPECT_EQ(fs2.create(t, "b"), old_ino);  // slot recycled
}

TEST(NovaTruncate, ShrinkDiscardsTail) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  NovaFs fs(ns, NovaOptions{});
  ThreadCtx t = make_thread();
  fs.format(t);
  const int f = fs.create(t, "x");
  fs.write(t, f, 0, pattern(10000, 3));
  fs.truncate(t, f, 5000);
  EXPECT_EQ(fs.size(t, f), 5000u);
  std::vector<std::uint8_t> out(10000);
  EXPECT_EQ(fs.read(t, f, 0, out), 5000u);
}

TEST(NovaTruncate, ReextensionReadsZeros) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  NovaFs fs(ns, NovaOptions{});
  ThreadCtx t = make_thread();
  fs.format(t);
  const int f = fs.create(t, "x");
  fs.write(t, f, 0, pattern(8192, 4));
  fs.truncate(t, f, 1000);
  fs.truncate(t, f, 8192);  // extend again
  std::vector<std::uint8_t> out(8192);
  EXPECT_EQ(fs.read(t, f, 0, out), 8192u);
  const auto base = pattern(8192, 4);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(out[i], base[i]) << i;
  for (int i = 1000; i < 8192; ++i) ASSERT_EQ(out[i], 0) << i;
}

TEST(NovaTruncate, SurvivesRemount) {
  Platform platform;
  PmemNamespace& ns = platform.optane(256 << 20);
  ThreadCtx t = make_thread();
  {
    NovaFs fs(ns, NovaOptions{});
    fs.format(t);
    const int f = fs.create(t, "x");
    fs.write(t, f, 0, pattern(8192, 5));
    fs.truncate(t, f, 3000);
    platform.crash();
  }
  NovaFs fs2(ns, NovaOptions{});
  ASSERT_TRUE(fs2.mount(t));
  const int f = fs2.open(t, "x");
  EXPECT_EQ(fs2.size(t, f), 3000u);
}

}  // namespace
}  // namespace xp::nova
