// Crash-point model checking over every persistent store (the tentpole
// harness), plus focused crash_after()/Tx::release() interaction and
// double-recovery idempotence tests.
//
// The explorer sweeps assert zero invariant violations; together they
// enumerate well over 1000 distinct crash points across the stores. The
// negative test proves the harness has teeth: a deliberately weakened
// pmemlib commit protocol (lane retire without clwb) must be caught.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crashmc/explorer.h"
#include "crashmc/workloads.h"
#include "pmemlib/pmem_ops.h"
#include "pmemlib/pool.h"

namespace xp {
namespace {

using crashmc::Options;
using crashmc::Result;
using hw::Platform;
using hw::PmemNamespace;
using pmem::Pool;
using pmem::Tx;
using sim::ThreadCtx;

ThreadCtx make_thread(unsigned id = 0) {
  return ThreadCtx({.id = id, .socket = 0, .mlp = 8, .seed = id + 1});
}

void expect_clean_sweep(crashmc::Target& target, const Options& opts,
                        std::uint64_t min_points) {
  const Result r = crashmc::explore(target, opts);
  for (const auto& v : r.violations) {
    ADD_FAILURE() << target.name() << " @ crash point " << v.point << ": "
                  << v.detail;
  }
  EXPECT_GE(r.points_explored, min_points)
      << target.name() << ": workload too small (total events "
      << r.total_events << ")";
  EXPECT_GT(r.crashes_fired, 0u) << target.name();
}

// ---- Explorer sweeps: every store, zero violations ----------------------

TEST(CrashMcSweep, Pmemlib) {
  auto t = crashmc::make_pmemlib_target();
  expect_clean_sweep(*t, {.max_exhaustive = 350, .samples = 300}, 300);
}

TEST(CrashMcSweep, LsmkvFlex) {
  auto t = crashmc::make_lsmkv_target(kv::WalMode::kFlex);
  expect_clean_sweep(*t, {.max_exhaustive = 256, .samples = 220}, 220);
}

TEST(CrashMcSweep, LsmkvPosix) {
  auto t = crashmc::make_lsmkv_target(kv::WalMode::kPosix);
  expect_clean_sweep(*t, {.max_exhaustive = 128, .samples = 120}, 120);
}

TEST(CrashMcSweep, Novafs) {
  auto t = crashmc::make_novafs_target();
  expect_clean_sweep(*t, {.max_exhaustive = 256, .samples = 200}, 200);
}

// Group commit: a crash anywhere inside a put_batch group must recover
// to the previous group boundary — never a torn group.
TEST(CrashMcSweep, LsmkvFlexGroupCommit) {
  auto t = crashmc::make_lsmkv_target(kv::WalMode::kFlex,
                                      /*wal_checksum=*/false,
                                      /*group_commit=*/true);
  expect_clean_sweep(*t, {.max_exhaustive = 256, .samples = 220}, 220);
}

// Batched log appends: renames and page-straddling writes commit as one
// atomic burst; a crash inside the burst must not leave a half-applied
// operation (a file under neither name, a write half-visible).
TEST(CrashMcSweep, NovafsBatchedAppends) {
  auto t = crashmc::make_novafs_target(/*log_checksum=*/false,
                                       /*batch_appends=*/true);
  expect_clean_sweep(*t, {.max_exhaustive = 256, .samples = 200}, 200);
}

TEST(CrashMcSweep, Cmap) {
  auto t = crashmc::make_cmap_target();
  expect_clean_sweep(*t, {.max_exhaustive = 200, .samples = 180}, 180);
}

TEST(CrashMcSweep, Stree) {
  auto t = crashmc::make_stree_target();
  expect_clean_sweep(*t, {.max_exhaustive = 200, .samples = 150}, 150);
}

// Sharded frontend: crash points land inside cross-shard batched
// dispatch and donated background merges. Each shard's recovered
// restriction must be that shard's pre- or post-op state (a shard's
// batch slice is atomic; the cross-shard batch as a whole is not).
TEST(CrashMcSweep, ShardedLsmkv) {
  auto t = crashmc::make_sharded_target();
  expect_clean_sweep(*t, {.max_exhaustive = 256, .samples = 200}, 200);
}

// Self-healing replicated frontend: the workload quarantines a store
// mid-run (with at-rest poison planted), so sampled crash points land
// inside the online rebuild itself — ARS, heal ntstores, the reformat,
// and re-silver WAL bursts. Recovery re-opens a fresh frontend, drives
// the rebuild to completion and checks the served state against the
// pre-/post-op model twice (double-recovery idempotence: a crash during
// recovery's own rebuild must replay cleanly).
TEST(CrashMcSweep, ResilientReplicatedLsmkv) {
  auto t = crashmc::make_resilient_target();
  expect_clean_sweep(*t, {.max_exhaustive = 0, .samples = 60}, 60);
}

// A different sampling seed must explore different (still violation-free)
// points — cheap evidence the sampler isn't stuck on one subset.
TEST(CrashMcSweep, SeedVariesSampledPoints) {
  auto t = crashmc::make_stree_target();
  const Result a = crashmc::explore(*t, {.max_exhaustive = 64,
                                         .samples = 40,
                                         .seed = 1});
  const Result b = crashmc::explore(*t, {.max_exhaustive = 64,
                                         .samples = 40,
                                         .seed = 2});
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(a.total_events, b.total_events);  // workload is deterministic
}

// ---- Negative test: a broken persistence protocol must be caught --------

TEST(CrashMcNegative, SkippedCommitFlushIsDetected) {
  auto t = crashmc::make_pmemlib_target(/*inject_commit_fault=*/true);
  // Exhaustive: the vulnerable window (between a commit's fence and the
  // next durable write of the lane line) is only a few events wide.
  const Result r = crashmc::explore(*t, {.max_exhaustive = 1u << 20});
  EXPECT_FALSE(r.ok())
      << "a commit protocol that skips the lane-retire clwb must lose an "
         "acknowledged transaction at some crash point";
  for (const auto& v : r.violations) EXPECT_GT(v.point, 0u);
}

// ---- crash_after() semantics --------------------------------------------

TEST(CrashMcPlatform, EventCountIsDeterministic) {
  auto count_run = [] {
    Platform platform;
    PmemNamespace& ns = platform.optane(8 << 20);
    ThreadCtx t = make_thread();
    Pool pool(ns);
    pool.create(t, 64);
    Tx tx(pool, t);
    tx.add(pool.root(t), 8);
    const std::uint64_t v = 1;
    tx.store(pool.root(t),
             std::span<const std::uint8_t>(
                 reinterpret_cast<const std::uint8_t*>(&v), 8));
    tx.commit();
    return platform.persist_events();
  };
  EXPECT_EQ(count_run(), count_run());
  EXPECT_GT(count_run(), 0u);
}

TEST(CrashMcPlatform, FrozenPlatformIgnoresDataPath) {
  Platform platform;
  PmemNamespace& ns = platform.optane(1 << 20);
  ThreadCtx t = make_thread();
  const std::uint64_t v1 = 0x1111;
  ns.store_persist(t, 0, std::span<const std::uint8_t>(
                             reinterpret_cast<const std::uint8_t*>(&v1), 8));
  platform.crash_after(1);
  const std::uint64_t v2 = 0x2222;
  EXPECT_THROW(ns.store_persist(
                   t, 0,
                   std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(&v2), 8)),
               hw::CrashPointHit);
  ASSERT_TRUE(platform.frozen());
  // While frozen: stores are dropped, loads read zeros.
  const std::uint64_t v3 = 0x3333;
  ns.store_persist(t, 0, std::span<const std::uint8_t>(
                             reinterpret_cast<const std::uint8_t*>(&v3), 8));
  EXPECT_EQ(ns.load_pod<std::uint64_t>(t, 0), 0u);
  platform.clear_crash_trigger();
  EXPECT_FALSE(platform.frozen());
  // The durable image kept the crash-time contents (v2 hit the WPQ as its
  // flush was the armed event; v3 was dropped).
  std::uint64_t durable = 0;
  ns.peek(0, std::span<std::uint8_t>(
                 reinterpret_cast<std::uint8_t*>(&durable), 8));
  EXPECT_TRUE(durable == v1 || durable == v2) << durable;
  EXPECT_NE(durable, v3);
}

// ---- Tx::release() interaction with crash points ------------------------

struct ReleaseFixture {
  ReleaseFixture() {
    t = std::make_unique<ThreadCtx>(make_thread(0));
    pool.create(*t, 16);
    root = pool.root(*t);
    pmem::store_persist_pod(*t, ns, root, std::uint64_t{11});
    pmem::store_persist_pod(*t, ns, root + 8, std::uint64_t{33});
  }
  Platform platform;
  PmemNamespace& ns = platform.optane(8 << 20);
  Pool pool{ns};
  std::unique_ptr<ThreadCtx> t;
  std::uint64_t root = 0;
};

TEST(CrashMcRelease, ReleasedTxRollsBackExactlyOnceOnOpen) {
  ReleaseFixture f;
  {
    Tx tx(f.pool, *f.t);
    tx.add(f.root, 8);
    const std::uint64_t v = 22;
    tx.store(f.root, std::span<const std::uint8_t>(
                         reinterpret_cast<const std::uint8_t*>(&v), 8));
    tx.release();
  }
  // The dropped handle must NOT roll back: the new value is still there.
  EXPECT_EQ(f.ns.load_pod<std::uint64_t>(*f.t, f.root), 22u);

  // open() finds the lane durably active and rolls it back.
  ThreadCtx t2 = make_thread(3);
  Pool reopened(f.ns);
  ASSERT_TRUE(reopened.open(t2));
  EXPECT_EQ(f.ns.load_pod<std::uint64_t>(t2, f.root), 11u);
  EXPECT_TRUE(reopened.check(t2).ok());

  // A second open() is a no-op (the lane was retired by the first).
  Pool again(f.ns);
  ASSERT_TRUE(again.open(t2));
  EXPECT_EQ(f.ns.load_pod<std::uint64_t>(t2, f.root), 11u);
  EXPECT_TRUE(again.check(t2).ok());
}

// Sweep every crash point inside a released (never committed) tx: no
// matter where the machine dies, recovery must roll the slot back.
TEST(CrashMcRelease, ReleasedTxNeverSurvivesAnyCrashPoint) {
  // Measure the event window of the tx body once.
  std::uint64_t window = 0;
  {
    ReleaseFixture f;
    const std::uint64_t before = f.platform.persist_events();
    Tx tx(f.pool, *f.t);
    tx.add(f.root, 8);
    const std::uint64_t v = 22;
    tx.store(f.root, std::span<const std::uint8_t>(
                         reinterpret_cast<const std::uint8_t*>(&v), 8));
    tx.release();
    window = f.platform.persist_events() - before;
  }
  ASSERT_GT(window, 0u);

  for (std::uint64_t k = 1; k <= window; ++k) {
    ReleaseFixture f;
    f.platform.crash_after(k);
    try {
      Tx tx(f.pool, *f.t);
      tx.add(f.root, 8);
      const std::uint64_t v = 22;
      tx.store(f.root, std::span<const std::uint8_t>(
                           reinterpret_cast<const std::uint8_t*>(&v), 8));
      tx.release();
    } catch (const hw::CrashPointHit&) {
    }
    EXPECT_TRUE(f.platform.crash_fired()) << k;
    f.platform.clear_crash_trigger();
    f.platform.reset_timing();

    ThreadCtx t2 = make_thread(3);
    Pool reopened(f.ns);
    ASSERT_TRUE(reopened.open(t2)) << k;
    EXPECT_EQ(f.ns.load_pod<std::uint64_t>(t2, f.root), 11u) << k;
    EXPECT_TRUE(reopened.check(t2).ok()) << k;
  }
}

// Two lanes, interleaved fates: thread A's tx commits, thread B's tx is
// released (still active in its lane). At every crash point in the
// combined window the lanes must recover independently — A's slot is
// pre- or post-tx (post once A's window has passed), B's slot always
// rolls back.
TEST(CrashMcRelease, ConcurrentLanesRecoverIndependently) {
  auto body = [](ReleaseFixture& f) {
    ThreadCtx ta = make_thread(0);  // lane 0
    ThreadCtx tb = make_thread(1);  // lane 1
    {
      Tx txa(f.pool, ta);
      txa.add(f.root, 8);
      const std::uint64_t v = 22;
      txa.store(f.root, std::span<const std::uint8_t>(
                            reinterpret_cast<const std::uint8_t*>(&v), 8));
      txa.commit();
    }
    {
      Tx txb(f.pool, tb);
      txb.add(f.root + 8, 8);
      const std::uint64_t v = 44;
      txb.store(f.root + 8,
                std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(&v), 8));
      txb.release();
    }
  };

  std::uint64_t a_window = 0, total = 0;
  {
    ReleaseFixture f;
    ThreadCtx ta = make_thread(0);
    const std::uint64_t before = f.platform.persist_events();
    {
      Tx txa(f.pool, ta);
      txa.add(f.root, 8);
      const std::uint64_t v = 22;
      txa.store(f.root, std::span<const std::uint8_t>(
                            reinterpret_cast<const std::uint8_t*>(&v), 8));
      txa.commit();
    }
    a_window = f.platform.persist_events() - before;
  }
  {
    ReleaseFixture f;
    const std::uint64_t before = f.platform.persist_events();
    body(f);
    total = f.platform.persist_events() - before;
  }
  ASSERT_GT(a_window, 0u);
  ASSERT_GT(total, a_window);

  for (std::uint64_t k = 1; k <= total; ++k) {
    ReleaseFixture f;
    f.platform.crash_after(k);
    try {
      body(f);
    } catch (const hw::CrashPointHit&) {
    }
    f.platform.clear_crash_trigger();
    f.platform.reset_timing();

    ThreadCtx t2 = make_thread(3);
    Pool reopened(f.ns);
    ASSERT_TRUE(reopened.open(t2)) << k;
    const auto a = f.ns.load_pod<std::uint64_t>(t2, f.root);
    const auto b = f.ns.load_pod<std::uint64_t>(t2, f.root + 8);
    if (k > a_window) {
      EXPECT_EQ(a, 22u) << k;  // committed tx must never be rolled back
    } else {
      EXPECT_TRUE(a == 11u || a == 22u) << k << " got " << a;
    }
    EXPECT_EQ(b, 33u) << k;  // released tx must always be rolled back
    EXPECT_TRUE(reopened.check(t2).ok()) << k;
  }
}

// ---- Double-recovery idempotence ----------------------------------------

std::vector<std::uint8_t> durable_image(const PmemNamespace& ns) {
  std::vector<std::uint8_t> img(ns.size());
  ns.peek(0, img);
  return img;
}

// Crash a store mid-run, recover it twice with fresh objects: the second
// recovery must be a byte-for-byte no-op on the durable image (recovery
// itself persists everything it changes).
void expect_double_recovery_idempotent(crashmc::Target& target) {
  for (const std::uint64_t k : {5ull, 17ull, 43ull, 97ull}) {
    Platform& platform = target.reset();
    platform.crash_after(k);
    try {
      target.run();
    } catch (const hw::CrashPointHit&) {
    }
    platform.clear_crash_trigger();
    platform.reset_timing();

    EXPECT_EQ(target.recover_and_check(), "") << target.name() << " @" << k;
    const auto after_first = durable_image(target.nspace());
    EXPECT_EQ(target.recover_and_check(), "") << target.name() << " @" << k;
    const auto after_second = durable_image(target.nspace());
    EXPECT_TRUE(after_first == after_second)
        << target.name() << " @" << k
        << ": second recovery modified the durable image";
  }
}

TEST(CrashMcDoubleRecovery, PmemlibPool) {
  auto t = crashmc::make_pmemlib_target();
  expect_double_recovery_idempotent(*t);
}

TEST(CrashMcDoubleRecovery, LsmkvWal) {
  auto t = crashmc::make_lsmkv_target();
  expect_double_recovery_idempotent(*t);
}

TEST(CrashMcDoubleRecovery, Novafs) {
  auto t = crashmc::make_novafs_target();
  expect_double_recovery_idempotent(*t);
}

}  // namespace
}  // namespace xp
