// Unit tests for the discrete-event kernel: time, RNG, resources,
// histograms, scheduler/ThreadCtx.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "sim/histogram.h"
#include "sim/resource.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/simtime.h"

namespace xp::sim {
namespace {

// ---------------------------------------------------------------- simtime
TEST(SimTime, UnitsCompose) {
  EXPECT_EQ(ns(1), 1000u * kPicosecond);
  EXPECT_EQ(us(1), 1000u * ns(1));
  EXPECT_EQ(ms(1), 1000u * us(1));
  EXPECT_EQ(kSecond, 1000u * kMillisecond);
}

TEST(SimTime, Conversions) {
  EXPECT_DOUBLE_EQ(to_ns(ns(250)), 250.0);
  EXPECT_DOUBLE_EQ(to_us(us(3)), 3.0);
  EXPECT_NEAR(to_s(kSecond), 1.0, 1e-12);
}

TEST(SimTime, BandwidthHelper) {
  // 1 GB in 1 s = 1 GB/s.
  EXPECT_NEAR(gbps(1'000'000'000ULL, kSecond), 1.0, 1e-9);
  // 64 B in 4 ns = 16 GB/s.
  EXPECT_NEAR(gbps(64, ns(4)), 16.0, 1e-9);
  EXPECT_DOUBLE_EQ(gbps(100, 0), 0.0);
}

TEST(SimTime, TransferTime) {
  EXPECT_EQ(transfer_time(64, 16.0), ns(4));
  EXPECT_EQ(transfer_time(256, 1.0), ns(256));
}

// -------------------------------------------------------------------- rng
TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInBounds) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.uniform(17), 17u);
  }
  EXPECT_EQ(r.uniform(0), 0u);
  EXPECT_EQ(r.uniform(1), 0u);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng r(11);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformCoversRange) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BernoulliRate) {
  Rng r(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i)
    if (r.bernoulli(0.25)) ++hits;
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

// --------------------------------------------------------------- resource
TEST(Resource, SingleServerSerializes) {
  Resource r(1);
  auto g1 = r.acquire(0, ns(10));
  EXPECT_EQ(g1.start, 0u);
  EXPECT_EQ(g1.end, ns(10));
  auto g2 = r.acquire(0, ns(10));  // arrives at 0, must wait
  EXPECT_EQ(g2.start, ns(10));
  EXPECT_EQ(g2.end, ns(20));
}

TEST(Resource, IdleServerStartsAtArrival) {
  Resource r(1);
  r.acquire(0, ns(5));
  auto g = r.acquire(ns(100), ns(5));
  EXPECT_EQ(g.start, ns(100));
}

TEST(Resource, MultipleServersOverlap) {
  Resource r(3);
  auto a = r.acquire(0, ns(10));
  auto b = r.acquire(0, ns(10));
  auto c = r.acquire(0, ns(10));
  EXPECT_EQ(a.start, 0u);
  EXPECT_EQ(b.start, 0u);
  EXPECT_EQ(c.start, 0u);
  auto d = r.acquire(0, ns(10));  // 4th waits for earliest
  EXPECT_EQ(d.start, ns(10));
}

TEST(Resource, ThroughputMatchesServersOverService) {
  // k servers with service s sustain k/s requests per unit time.
  Resource r(6);
  const Time service = ns(231);
  Time last_end = 0;
  const int n = 6000;
  for (int i = 0; i < n; ++i) last_end = r.acquire(0, service).end;
  const double per_req = static_cast<double>(last_end) / n;
  EXPECT_NEAR(per_req, static_cast<double>(service) / 6, 1.0);
}

TEST(Resource, NextFreeReportsEarliest) {
  Resource r(2);
  r.acquire(0, ns(10));
  EXPECT_EQ(r.next_free(0), 0u);  // second server idle
  r.acquire(0, ns(20));
  EXPECT_EQ(r.next_free(0), ns(10));
  EXPECT_EQ(r.next_free(ns(15)), ns(15));
}

TEST(Resource, BusyAtCountsActive) {
  Resource r(4);
  r.acquire(0, ns(10));
  r.acquire(0, ns(20));
  EXPECT_EQ(r.busy_at(ns(5)), 2u);
  EXPECT_EQ(r.busy_at(ns(15)), 1u);
  EXPECT_EQ(r.busy_at(ns(25)), 0u);
}

TEST(Resource, ResetClears) {
  Resource r(1);
  r.acquire(0, ns(100));
  r.reset();
  EXPECT_EQ(r.acquire(0, ns(1)).start, 0u);
}

// ----------------------------------------------------------- BoundedQueue
TEST(BoundedQueue, AdmitsUpToDepthImmediately) {
  BoundedQueue q(3);
  EXPECT_EQ(q.admission_time(ns(5)), ns(5));
  q.push(ns(100));
  q.push(ns(200));
  q.push(ns(300));
  // Queue full: admission waits for the oldest entry to drain.
  EXPECT_EQ(q.admission_time(ns(5)), ns(100));
  q.push(ns(400));
  EXPECT_EQ(q.admission_time(ns(5)), ns(200));
}

TEST(BoundedQueue, AdmissionNeverBeforeArrival) {
  BoundedQueue q(1);
  q.push(ns(10));
  EXPECT_EQ(q.admission_time(ns(50)), ns(50));
}

TEST(BoundedQueue, OutOfOrderDrainsFreeEarliestSlot) {
  BoundedQueue q(2);
  q.push(ns(100));
  q.push(ns(50));  // completions may be reported out of order
  q.push(ns(60));
  // Queue over-full: admission waits for the earliest remaining drain.
  EXPECT_EQ(q.admission_time(0), ns(50));
  EXPECT_EQ(q.admission_time(0), ns(60));
}

TEST(BoundedQueue, DrainedEntriesLeaveQueue) {
  BoundedQueue q(2);
  q.push(ns(10));
  q.push(ns(20));
  // At t=30 both entries have drained: admission is immediate.
  EXPECT_EQ(q.admission_time(ns(30)), ns(30));
  EXPECT_EQ(q.occupancy(), 0u);
}

// -------------------------------------------------------------- histogram
TEST(Histogram, CountMinMaxMean) {
  Histogram h;
  h.record(ns(10));
  h.record(ns(20));
  h.record(ns(30));
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), ns(10));
  EXPECT_EQ(h.max(), ns(30));
  EXPECT_NEAR(h.mean(), static_cast<double>(ns(20)), 1.0);
}

TEST(Histogram, PercentileExactSmall) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<Time>(i));
  // Small values fall in exact linear buckets.
  EXPECT_EQ(h.percentile(0.5), 50u);
  EXPECT_EQ(h.percentile(0.99), 99u);
  EXPECT_EQ(h.percentile(1.0), 100u);
}

TEST(Histogram, PercentileBoundedRelativeError) {
  Histogram h;
  for (int i = 0; i < 100000; ++i) h.record(ns(100));
  h.record(ns(50000));  // a rare outlier
  const Time p50 = h.percentile(0.5);
  EXPECT_NEAR(static_cast<double>(p50), static_cast<double>(ns(100)),
              0.05 * static_cast<double>(ns(100)));
  EXPECT_EQ(h.percentile(1.0), ns(50000));
}

TEST(Histogram, TailPercentilesSeeOutliers) {
  Histogram h;
  for (int i = 0; i < 99990; ++i) h.record(ns(100));
  for (int i = 0; i < 10; ++i) h.record(us(50));
  // 99.99th percentile should reach into the outliers.
  EXPECT_GT(h.percentile(0.99995), ns(40000));
  EXPECT_LT(h.percentile(0.999), ns(200));
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  a.record(ns(10));
  b.record(ns(1000));
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), ns(10));
  EXPECT_EQ(a.max(), ns(1000));
}

TEST(Histogram, StddevZeroForConstant) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(ns(42));
  EXPECT_NEAR(h.stddev(), 0.0, 1e-6);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(ns(10));
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, RecordNWeighted) {
  Histogram h;
  h.record_n(ns(10), 99);
  h.record_n(ns(1000), 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_LT(h.percentile(0.5), ns(20));
  EXPECT_GT(h.percentile(0.999), ns(500));
}

// -------------------------------------------------------------- ThreadCtx
TEST(ThreadCtx, ClockAdvances) {
  ThreadCtx ctx({.id = 1, .socket = 0, .mlp = 4, .seed = 9});
  EXPECT_EQ(ctx.now(), 0u);
  ctx.advance_by(ns(10));
  EXPECT_EQ(ctx.now(), ns(10));
  ctx.advance_to(ns(5));  // never goes backward
  EXPECT_EQ(ctx.now(), ns(10));
  ctx.advance_to(ns(50));
  EXPECT_EQ(ctx.now(), ns(50));
}

TEST(ThreadCtx, MlpWindowAllowsOverlap) {
  ThreadCtx ctx({.id = 0, .socket = 0, .mlp = 4, .seed = 1});
  // 4 accesses, each taking 100 ns, issue gap 1 ns: with MLP 4 the thread
  // does not stall until the window fills.
  for (int i = 0; i < 4; ++i) {
    Time t = ctx.begin_access(ns(1));
    ctx.complete_access(t + ns(100));
  }
  EXPECT_EQ(ctx.now(), ns(4));  // only issue gaps so far
  // 5th access must wait for the first completion.
  Time t5 = ctx.begin_access(ns(1));
  EXPECT_EQ(t5, ns(101));
}

TEST(ThreadCtx, MlpOneSerializes) {
  ThreadCtx ctx({.id = 0, .socket = 0, .mlp = 1, .seed = 1});
  Time t1 = ctx.begin_access(ns(1));
  ctx.complete_access(t1 + ns(100));
  Time t2 = ctx.begin_access(ns(1));
  EXPECT_EQ(t2, t1 + ns(100));
}

TEST(ThreadCtx, DrainWaitsForAll) {
  ThreadCtx ctx({.id = 0, .socket = 0, .mlp = 8, .seed = 1});
  Time t = ctx.begin_access(ns(1));
  ctx.complete_access(t + ns(500));
  ctx.drain();
  EXPECT_EQ(ctx.now(), t + ns(500));
  EXPECT_FALSE(ctx.has_inflight());
}

TEST(ThreadCtx, CompletionsRetireInOrder) {
  ThreadCtx ctx({.id = 0, .socket = 0, .mlp = 2, .seed = 1});
  Time t1 = ctx.begin_access(ns(1));
  ctx.complete_access(t1 + ns(100));
  Time t2 = ctx.begin_access(ns(1));
  ctx.complete_access(t2 + ns(1));  // completes "before" first: clamped
  ctx.begin_access(ns(1));
  // Third access had to wait for the first completion (FIFO retire).
  EXPECT_GE(ctx.now(), t1 + ns(100));
}

// -------------------------------------------------------------- scheduler
TEST(Scheduler, RunsAllThreadsToCompletion) {
  Scheduler sched;
  int done = 0;
  for (unsigned i = 0; i < 5; ++i) {
    sched.spawn({.id = i, .socket = 0, .mlp = 1, .seed = i},
                [&done, n = 0](ThreadCtx& ctx) mutable {
                  ctx.advance_by(ns(10));
                  if (++n == 3) {
                    ++done;
                    return false;
                  }
                  return true;
                });
  }
  sched.run();
  EXPECT_EQ(done, 5);
  EXPECT_EQ(sched.live_threads(), 0u);
}

TEST(Scheduler, InterleavesByLocalTime) {
  // Thread A advances 10 ns per step, B 100 ns per step: the scheduler
  // must run A about 10x as often between B's steps. We verify global
  // time-ordering of execution.
  Scheduler sched;
  std::vector<std::pair<Time, unsigned>> trace;
  auto make_step = [&trace](Time step_len, int steps) {
    return [&trace, step_len, steps](ThreadCtx& ctx) mutable {
      trace.emplace_back(ctx.now(), ctx.id());
      ctx.advance_by(step_len);
      return --steps > 0;
    };
  };
  sched.spawn({.id = 0, .socket = 0, .mlp = 1, .seed = 1},
              make_step(ns(10), 30));
  sched.spawn({.id = 1, .socket = 0, .mlp = 1, .seed = 2},
              make_step(ns(100), 3));
  sched.run();
  // Steps were executed in nondecreasing local-time order.
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_GE(trace[i].first, trace[i - 1].first);
}

TEST(Scheduler, SpawnDuringRunLeavesFastPath) {
  // With one live thread the scheduler steps it in a tight loop; a step
  // that spawns a second thread must break out so the new thread (clock
  // 0) runs before the spawner's later steps.
  Scheduler sched;
  std::vector<std::pair<Time, unsigned>> trace;
  sched.spawn({.id = 0, .socket = 0, .mlp = 1, .seed = 1},
              [&](ThreadCtx& ctx) mutable {
                trace.emplace_back(ctx.now(), ctx.id());
                ctx.advance_by(ns(10));
                if (trace.size() == 3) {
                  sched.spawn({.id = 1, .socket = 0, .mlp = 1, .seed = 2},
                              [&](ThreadCtx& child) {
                                trace.emplace_back(child.now(), child.id());
                                child.advance_by(ns(5));
                                return child.now() < ns(15);
                              });
                }
                return ctx.now() < ns(100);
              });
  sched.run();
  EXPECT_EQ(sched.live_threads(), 0u);
  // The child starts at clock 0 — far behind the spawner — so its three
  // steps (0, 5, 10 ns) must run immediately after the spawning step,
  // before any later parent step.
  ASSERT_GE(trace.size(), 6u);
  EXPECT_EQ(trace[2], (std::pair<Time, unsigned>{ns(20), 0u}));
  EXPECT_EQ(trace[3], (std::pair<Time, unsigned>{ns(0), 1u}));
  EXPECT_EQ(trace[4], (std::pair<Time, unsigned>{ns(5), 1u}));
  EXPECT_EQ(trace[5], (std::pair<Time, unsigned>{ns(10), 1u}));
  int child_steps = 0;
  for (const auto& [t, id] : trace) child_steps += id == 1;
  EXPECT_EQ(child_steps, 3);
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler sched;
  sched.spawn({.id = 0, .socket = 0, .mlp = 1, .seed = 1},
              [](ThreadCtx& ctx) {
                ctx.advance_by(ns(10));
                return true;  // endless
              });
  sched.run_until(us(1));
  EXPECT_GE(sched.frontier(), us(1));
  EXPECT_EQ(sched.live_threads(), 1u);
}

TEST(Scheduler, FrontierTracksEarliestThread) {
  Scheduler sched;
  sched.spawn({.id = 0, .socket = 0, .mlp = 1, .seed = 1},
              [](ThreadCtx& ctx) {
                ctx.advance_by(ns(7));
                return ctx.now() < ns(70);
              });
  sched.run_until(ns(30));
  EXPECT_GE(sched.frontier(), ns(30));
  EXPECT_LE(sched.frontier(), ns(70));
}

}  // namespace
}  // namespace xp::sim
